#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "net/network.hpp"
#include "routing/routing_table.hpp"
#include "routing/zone.hpp"

/// \file bellman_ford.hpp
/// Intra-zone shortest-path routing via distributed Bellman-Ford (DBF).
///
/// "The Distributed Bellman Ford algorithm is executed in each zone to form
/// the routes … If a graphical representation of the network is considered
/// where the weight w on an edge (i,j) denotes the minimum power at which i
/// needs to transmit to reach j, DBF finds the shortest path between any two
/// nodes in the weighted graph."
///
/// The implementation runs synchronous rounds: every node broadcasts its
/// distance vector to its zone (one frame at the zone power level), every
/// node relaxes, and the algorithm stops after the first round in which no
/// table changed.  Message count and energy are charged to
/// EnergyUse::kRouting so the mobility experiment can include the cost of
/// reconvergence (Fig. 12 and the 239-packet break-even analysis).

namespace spms::routing {

/// Tunables of the DBF execution and its cost accounting.
struct DbfParams {
  std::size_t header_bytes = 2;     ///< fixed frame overhead of a DV update
  std::size_t bytes_per_entry = 6;  ///< per-destination (id + cost) payload
  bool charge_energy = true;        ///< account DV traffic on the meters
  std::size_t max_rounds = 256;     ///< safety bound (>= zone diameter + 1)
};

/// Outcome of one (re)build.
struct DbfStats {
  std::size_t rounds = 0;        ///< synchronous rounds until stability
  std::uint64_t messages = 0;    ///< DV broadcasts sent
  std::uint64_t message_bytes = 0;
  double energy_uj = 0.0;        ///< TX+RX energy charged for the build
  bool converged = false;        ///< false only if max_rounds tripped
};

/// Owns the zone map and every node's routing table; rebuilt on demand
/// (initially and after mobility epochs).
class RoutingService {
 public:
  RoutingService(net::Network& net, DbfParams params = {});

  /// Recomputes zones from current positions and reruns DBF from scratch.
  /// Returns the cost of the run (also retained in last_stats()).
  DbfStats rebuild();

  /// The most recent rebuild's statistics.
  [[nodiscard]] const DbfStats& last_stats() const { return last_stats_; }

  /// Cumulative statistics across all rebuilds.
  [[nodiscard]] const DbfStats& total_stats() const { return total_stats_; }

  /// Number of rebuild() calls (the initial build included).
  [[nodiscard]] std::uint64_t rebuild_count() const { return rebuilds_; }

  /// Route churn: cumulative best-next-hop changes across rebuilds (the
  /// initial build, which changes everything by definition, is excluded).
  /// A changed entry is a destination whose best first hop differs from the
  /// previous table, was lost, or appeared.
  [[nodiscard]] std::uint64_t route_changes() const { return route_changes_; }

  /// Churn of the most recent rebuild only.
  [[nodiscard]] std::uint64_t last_route_changes() const { return last_route_changes_; }

  [[nodiscard]] const ZoneMap& zones() const { return *zones_; }
  [[nodiscard]] const RoutingTable& table(net::NodeId id) const { return tables_.at(id.v); }

  /// Best route from `from` to `dest`; nullopt when `dest` is not in
  /// `from`'s zone.
  [[nodiscard]] std::optional<Route> route(net::NodeId from, net::NodeId dest) const {
    return tables_.at(from.v).best(dest);
  }

  /// First hop of the best route; invalid NodeId when unroutable.
  [[nodiscard]] net::NodeId next_hop(net::NodeId from, net::NodeId dest) const {
    return tables_.at(from.v).next_hop(dest);
  }

  /// True when the best path from `from` to `dest` is the direct link.
  [[nodiscard]] bool is_next_hop_neighbor(net::NodeId from, net::NodeId dest) const {
    return next_hop(from, dest) == dest;
  }

 private:
  net::Network& net_;
  DbfParams params_;
  std::unique_ptr<ZoneMap> zones_;
  std::vector<RoutingTable> tables_;
  DbfStats last_stats_;
  DbfStats total_stats_;
  std::uint64_t rebuilds_ = 0;
  std::uint64_t route_changes_ = 0;
  std::uint64_t last_route_changes_ = 0;
};

/// Reference shortest path for tests: Dijkstra over the same constrained
/// graph DBF uses — relays must themselves have `dest` in their zone (every
/// hop stays within the zone radius).  Returns the best route from `from`
/// (first hop + cost + hop count), or nullopt when `dest` is outside
/// `from`'s zone.
[[nodiscard]] std::optional<Route> dijkstra_reference(const net::Network& net, const ZoneMap& zones,
                                                      net::NodeId from, net::NodeId dest);

}  // namespace spms::routing
