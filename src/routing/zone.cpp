#include "routing/zone.hpp"

#include <algorithm>

namespace spms::routing {

ZoneMap::ZoneMap(const net::Network& net) {
  zones_.reserve(net.size());
  for (std::size_t i = 0; i < net.size(); ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    zones_.push_back(net.neighbors_within(id, net.zone_radius(), /*include_down=*/true));
  }
}

bool ZoneMap::in_zone(net::NodeId id, net::NodeId other) const {
  const auto& z = zones_.at(id.v);
  return std::binary_search(z.begin(), z.end(), other);
}

double ZoneMap::mean_zone_size() const {
  if (zones_.empty()) return 0.0;
  std::size_t total = 0;
  for (const auto& z : zones_) total += z.size();
  return static_cast<double>(total) / static_cast<double>(zones_.size());
}

}  // namespace spms::routing
