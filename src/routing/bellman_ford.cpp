#include "routing/bellman_ford.hpp"

#include <cassert>
#include <cmath>
#include <limits>
#include <queue>
#include <unordered_map>

namespace spms::routing {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Advertised distance-vector state of one node during the DBF run.
struct NodeVec {
  // dest -> (cost, hops); the node's own id maps to (0, 0).
  std::unordered_map<net::NodeId, std::pair<double, int>> dist;
};

}  // namespace

RoutingService::RoutingService(net::Network& net, DbfParams params)
    : net_(net), params_(params) {
  rebuild();
}

DbfStats RoutingService::rebuild() {
  zones_ = std::make_unique<ZoneMap>(net_);
  const std::size_t n = net_.size();
  tables_.assign(n, RoutingTable{});

  // Cache link weights w(u,v) for v in zone(u); zone membership guarantees
  // the link exists (zone radius <= max radio range).
  std::vector<std::unordered_map<net::NodeId, double>> weight(n);
  for (std::size_t u = 0; u < n; ++u) {
    const net::NodeId uid{static_cast<std::uint32_t>(u)};
    for (const net::NodeId v : zones_->zone(uid)) {
      const auto w = net_.radio().min_power_for(net_.distance_between(uid, v));
      assert(w.has_value());
      weight[u].emplace(v, *w);
    }
  }

  // Initial vectors: self at cost 0; every zone neighbor via the direct link.
  std::vector<NodeVec> vec(n);
  for (std::size_t u = 0; u < n; ++u) {
    const net::NodeId uid{static_cast<std::uint32_t>(u)};
    vec[u].dist.emplace(uid, std::make_pair(0.0, 0));
    for (const net::NodeId v : zones_->zone(uid)) {
      vec[u].dist.emplace(v, std::make_pair(weight[u].at(v), 1));
    }
  }

  DbfStats stats;
  const double energy_before = net_.energy().routing_uj();

  bool changed = true;
  while (changed && stats.rounds < params_.max_rounds) {
    ++stats.rounds;
    changed = false;

    // Every node broadcasts its vector once per round; charge the traffic.
    if (params_.charge_energy) {
      for (std::size_t u = 0; u < n; ++u) {
        const net::NodeId uid{static_cast<std::uint32_t>(u)};
        const std::size_t bytes =
            params_.header_bytes + params_.bytes_per_entry * (vec[u].dist.size() - 1);
        net_.charge_tx(uid, bytes, net_.zone_radius(), net::EnergyUse::kRouting);
        for (const net::NodeId v : zones_->zone(uid)) {
          net_.charge_rx(v, bytes, net::EnergyUse::kRouting);
        }
        ++stats.messages;
        stats.message_bytes += bytes;
      }
    } else {
      stats.messages += n;
    }

    // Synchronous relaxation against the previous round's vectors.
    std::vector<NodeVec> next = vec;
    for (std::size_t u = 0; u < n; ++u) {
      const net::NodeId uid{static_cast<std::uint32_t>(u)};
      for (auto& [dest, entry] : next[u].dist) {
        if (dest == uid) continue;
        double best = entry.first;
        int best_hops = entry.second;
        for (const net::NodeId v : zones_->zone(uid)) {
          const auto it = vec[v.v].dist.find(dest);
          if (it == vec[v.v].dist.end()) continue;  // v does not advertise dest
          const double cand = weight[u].at(v) + it->second.first;
          const int cand_hops = it->second.second + 1;
          // Tie-break on hop count then on neighbor id for determinism.
          if (cand < best || (cand == best && cand_hops < best_hops)) {
            best = cand;
            best_hops = cand_hops;
          }
        }
        if (best < entry.first || (best == entry.first && best_hops < entry.second)) {
          entry = {best, best_hops};
          changed = true;
        }
      }
    }
    vec = std::move(next);
  }
  stats.converged = !changed;

  // Final tables: best and second-best (distinct first hop) per destination,
  // derived from the converged neighbor vectors — exactly the "cost of going
  // to the destination through each of its neighbors" the paper stores.
  for (std::size_t u = 0; u < n; ++u) {
    const net::NodeId uid{static_cast<std::uint32_t>(u)};
    for (const net::NodeId dest : zones_->zone(uid)) {
      Route best, second;
      for (const net::NodeId v : zones_->zone(uid)) {
        const auto it = vec[v.v].dist.find(dest);
        if (it == vec[v.v].dist.end()) continue;
        Route cand{v, weight[u].at(v) + it->second.first, it->second.second + 1};
        const bool better_than_best =
            cand.cost < best.cost ||
            (cand.cost == best.cost && (cand.hops < best.hops ||
                                        (cand.hops == best.hops && cand.next_hop < best.next_hop)));
        if (better_than_best) {
          second = best;
          best = cand;
        } else {
          const bool better_than_second =
              cand.cost < second.cost ||
              (cand.cost == second.cost && (cand.hops < second.hops ||
                                            (cand.hops == second.hops && cand.next_hop < second.next_hop)));
          if (better_than_second) second = cand;
        }
      }
      tables_[u].set(dest, RouteEntry{best, second});
    }
  }

  stats.energy_uj = net_.energy().routing_uj() - energy_before;
  last_stats_ = stats;
  total_stats_.rounds += stats.rounds;
  total_stats_.messages += stats.messages;
  total_stats_.message_bytes += stats.message_bytes;
  total_stats_.energy_uj += stats.energy_uj;
  total_stats_.converged = stats.converged;
  return stats;
}

std::optional<Route> dijkstra_reference(const net::Network& net, const ZoneMap& zones,
                                        net::NodeId from, net::NodeId dest) {
  if (!zones.in_zone(from, dest)) return std::nullopt;

  // Vertex set: `from`, `dest`, and every node that has `dest` in its zone
  // (the only nodes that can relay toward `dest` under zone-local routing).
  const std::size_t n = net.size();
  std::vector<bool> allowed(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    allowed[i] = (id == from) || (id == dest) || zones.in_zone(id, dest);
  }

  std::vector<double> dist(n, kInf);
  std::vector<int> hops(n, 0);
  std::vector<net::NodeId> first_hop(n);
  std::vector<bool> done(n, false);
  dist[from.v] = 0.0;

  for (;;) {
    // Extract-min (linear scan: reference code favours clarity).
    std::size_t u = n;
    double best = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!done[i] && allowed[i] && dist[i] < best) {
        best = dist[i];
        u = i;
      }
    }
    if (u == n) break;
    done[u] = true;
    const net::NodeId uid{static_cast<std::uint32_t>(u)};
    if (uid == dest) break;
    for (const net::NodeId v : zones.zone(uid)) {
      if (!allowed[v.v] || done[v.v]) continue;
      const auto w = net.radio().min_power_for(net.distance_between(uid, v));
      if (!w) continue;
      const double cand = dist[u] + *w;
      const int cand_hops = hops[u] + 1;
      const net::NodeId cand_first = (uid == from) ? v : first_hop[u];
      const bool improves =
          cand < dist[v.v] ||
          (cand == dist[v.v] && (cand_hops < hops[v.v] ||
                                 (cand_hops == hops[v.v] && cand_first < first_hop[v.v])));
      if (improves) {
        dist[v.v] = cand;
        hops[v.v] = cand_hops;
        first_hop[v.v] = cand_first;
      }
    }
  }

  if (dist[dest.v] == kInf) return std::nullopt;
  return Route{first_hop[dest.v], dist[dest.v], hops[dest.v]};
}

}  // namespace spms::routing
