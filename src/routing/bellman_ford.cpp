#include "routing/bellman_ford.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <utility>

#include "obs/event_trace.hpp"

namespace spms::routing {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

constexpr std::size_t kNoEntry = static_cast<std::size_t>(-1);

/// Above this node count the dense per-node destination index (n ids per
/// node, so O(n^2) memory total) is skipped in favour of binary search over
/// the sorted destination list.
constexpr std::size_t kDenseIndexMaxNodes = 4096;

/// Advertised distance-vector state of one node during the DBF run.
///
/// A node's destination set is fixed the moment its vector is initialized
/// (itself plus its zone — synchronous relaxation never adds entries), so
/// instead of a hash map the vector is a sorted destination list with a
/// parallel (cost, hops) array.  The destination list never changes across
/// rounds, so only `val` is double-buffered and the per-round state copy is
/// a flat memcpy that reuses capacity, instead of rebuilding node-count
/// hash maps (which used to dominate the rebuild's allocation count).
/// Entry order is sorted by id rather than hash order; every
/// per-destination relaxation is independent, so results are unchanged.
struct NodeVec {
  std::vector<net::NodeId> dests;           ///< sorted; includes the node itself
  std::vector<std::size_t> slot_of;         ///< dense: slot_of[dest.v] or kNoEntry
  std::vector<std::pair<double, int>> val;  ///< (cost, hops), parallel to dests

  /// Index of `dest` or kNoEntry when the node does not advertise it.
  [[nodiscard]] std::size_t find(net::NodeId dest) const {
    if (!slot_of.empty()) return slot_of[dest.v];
    const auto it = std::lower_bound(dests.begin(), dests.end(), dest);
    if (it == dests.end() || *it != dest) return kNoEntry;
    return static_cast<std::size_t>(it - dests.begin());
  }
};

}  // namespace

RoutingService::RoutingService(net::Network& net, DbfParams params)
    : net_(net), params_(params) {
  rebuild();
}

DbfStats RoutingService::rebuild() {
  zones_ = std::make_unique<ZoneMap>(net_);
  const std::size_t n = net_.size();
  // Keep the previous tables aside so the churn diff below can compare; on
  // the initial build (constructor) this is empty and the diff is skipped.
  std::vector<RoutingTable> old_tables = std::move(tables_);
  tables_.assign(n, RoutingTable{});

  // Cache link weights w(u,v) for v in zone(u), parallel to the zone list;
  // zone membership guarantees the link exists (zone radius <= max radio
  // range).
  std::vector<std::vector<double>> weight(n);
  for (std::size_t u = 0; u < n; ++u) {
    const net::NodeId uid{static_cast<std::uint32_t>(u)};
    const auto& zone = zones_->zone(uid);
    weight[u].reserve(zone.size());
    for (const net::NodeId v : zone) {
      const auto w = net_.radio().min_power_for(net_.distance_between(uid, v));
      assert(w.has_value());
      weight[u].push_back(*w);
    }
  }

  // Initial vectors: self at cost 0; every zone neighbor via the direct link.
  // The zone list is sorted ascending, so splicing the node's own id into it
  // keeps `dests` sorted for binary-search lookup.
  std::vector<NodeVec> vec(n);
  for (std::size_t u = 0; u < n; ++u) {
    const net::NodeId uid{static_cast<std::uint32_t>(u)};
    const auto& zone = zones_->zone(uid);
    NodeVec& nv = vec[u];
    nv.dests.reserve(zone.size() + 1);
    nv.val.reserve(zone.size() + 1);
    bool self_placed = false;
    for (std::size_t j = 0; j < zone.size(); ++j) {
      if (!self_placed && uid < zone[j]) {
        nv.dests.push_back(uid);
        nv.val.emplace_back(0.0, 0);
        self_placed = true;
      }
      nv.dests.push_back(zone[j]);
      nv.val.emplace_back(weight[u][j], 1);
    }
    if (!self_placed) {
      nv.dests.push_back(uid);
      nv.val.emplace_back(0.0, 0);
    }
    if (n <= kDenseIndexMaxNodes) {
      nv.slot_of.assign(n, kNoEntry);
      for (std::size_t i = 0; i < nv.dests.size(); ++i) nv.slot_of[nv.dests[i].v] = i;
    }
  }

  DbfStats stats;
  const double energy_before = net_.energy().routing_uj();

  bool changed = true;
  // Next-round values only: dests/slot_of never change, so the round copy is
  // a capacity-reusing memcpy of the (cost, hops) arrays.
  std::vector<std::vector<std::pair<double, int>>> next_val(n);
  while (changed && stats.rounds < params_.max_rounds) {
    ++stats.rounds;
    changed = false;

    // Every node broadcasts its vector once per round; charge the traffic.
    if (params_.charge_energy) {
      for (std::size_t u = 0; u < n; ++u) {
        const net::NodeId uid{static_cast<std::uint32_t>(u)};
        const std::size_t bytes =
            params_.header_bytes + params_.bytes_per_entry * (vec[u].dests.size() - 1);
        net_.charge_tx(uid, bytes, net_.zone_radius(), net::EnergyUse::kRouting);
        for (const net::NodeId v : zones_->zone(uid)) {
          net_.charge_rx(v, bytes, net::EnergyUse::kRouting);
        }
        ++stats.messages;
        stats.message_bytes += bytes;
      }
    } else {
      stats.messages += n;
    }

    // Synchronous relaxation against the previous round's vectors.
    for (std::size_t u = 0; u < n; ++u) {
      const net::NodeId uid{static_cast<std::uint32_t>(u)};
      const auto& zone = zones_->zone(uid);
      const NodeVec& cu = vec[u];
      next_val[u] = cu.val;
      for (std::size_t di = 0; di < cu.dests.size(); ++di) {
        const net::NodeId dest = cu.dests[di];
        if (dest == uid) continue;
        auto& entry = next_val[u][di];
        double best = entry.first;
        int best_hops = entry.second;
        for (std::size_t j = 0; j < zone.size(); ++j) {
          const net::NodeId v = zone[j];
          const std::size_t vi = vec[v.v].find(dest);
          if (vi == kNoEntry) continue;  // v does not advertise dest
          const double cand = weight[u][j] + vec[v.v].val[vi].first;
          const int cand_hops = vec[v.v].val[vi].second + 1;
          // Tie-break on hop count then on neighbor id for determinism.
          if (cand < best || (cand == best && cand_hops < best_hops)) {
            best = cand;
            best_hops = cand_hops;
          }
        }
        if (best < entry.first || (best == entry.first && best_hops < entry.second)) {
          entry = {best, best_hops};
          changed = true;
        }
      }
    }
    for (std::size_t u = 0; u < n; ++u) std::swap(vec[u].val, next_val[u]);
  }
  stats.converged = !changed;

  // Final tables: best and second-best (distinct first hop) per destination,
  // derived from the converged neighbor vectors — exactly the "cost of going
  // to the destination through each of its neighbors" the paper stores.
  for (std::size_t u = 0; u < n; ++u) {
    const net::NodeId uid{static_cast<std::uint32_t>(u)};
    const auto& zone = zones_->zone(uid);
    tables_[u].reserve(zone.size());
    for (const net::NodeId dest : zone) {
      Route best, second;
      for (std::size_t j = 0; j < zone.size(); ++j) {
        const net::NodeId v = zone[j];
        const std::size_t vi = vec[v.v].find(dest);
        if (vi == static_cast<std::size_t>(-1)) continue;
        Route cand{v, weight[u][j] + vec[v.v].val[vi].first, vec[v.v].val[vi].second + 1};
        const bool better_than_best =
            cand.cost < best.cost ||
            (cand.cost == best.cost && (cand.hops < best.hops ||
                                        (cand.hops == best.hops && cand.next_hop < best.next_hop)));
        if (better_than_best) {
          second = best;
          best = cand;
        } else {
          const bool better_than_second =
              cand.cost < second.cost ||
              (cand.cost == second.cost && (cand.hops < second.hops ||
                                            (cand.hops == second.hops && cand.next_hop < second.next_hop)));
          if (better_than_second) second = cand;
        }
      }
      tables_[u].set(dest, RouteEntry{best, second});
    }
  }

  stats.energy_uj = net_.energy().routing_uj() - energy_before;
  last_stats_ = stats;
  total_stats_.rounds += stats.rounds;
  total_stats_.messages += stats.messages;
  total_stats_.message_bytes += stats.message_bytes;
  total_stats_.energy_uj += stats.energy_uj;
  total_stats_.converged = stats.converged;

  // Route churn: best-first-hop changes vs. the previous tables.  Emits one
  // typed record per node with churn when the trace is enabled; the counters
  // are maintained regardless (rebuilds are rare — mobility epochs — so the
  // diff never shows up on the event hot path).
  ++rebuilds_;
  last_route_changes_ = 0;
  if (!old_tables.empty()) {
    auto& events = net_.simulation().events();
    for (std::size_t u = 0; u < n; ++u) {
      std::uint64_t changed = 0;
      for (const auto& [dest, entry] : tables_[u].entries()) {
        const RouteEntry* old = old_tables[u].find(dest);
        if (old == nullptr ? entry.best.next_hop.valid()
                           : old->best.next_hop != entry.best.next_hop) {
          ++changed;
        }
      }
      for (const auto& [dest, entry] : old_tables[u].entries()) {
        if (tables_[u].find(dest) == nullptr && entry.best.next_hop.valid()) ++changed;
      }
      last_route_changes_ += changed;
      if (changed > 0 && events.enabled()) {
        events.emit({.at = net_.simulation().now(), .kind = obs::TraceKind::kRouteChange,
                     .node = net::NodeId{static_cast<std::uint32_t>(u)},
                     .value = static_cast<double>(changed)});
      }
    }
    route_changes_ += last_route_changes_;
  }
  return stats;
}

std::optional<Route> dijkstra_reference(const net::Network& net, const ZoneMap& zones,
                                        net::NodeId from, net::NodeId dest) {
  if (!zones.in_zone(from, dest)) return std::nullopt;

  // Vertex set: `from`, `dest`, and every node that has `dest` in its zone
  // (the only nodes that can relay toward `dest` under zone-local routing).
  const std::size_t n = net.size();
  std::vector<bool> allowed(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    allowed[i] = (id == from) || (id == dest) || zones.in_zone(id, dest);
  }

  std::vector<double> dist(n, kInf);
  std::vector<int> hops(n, 0);
  std::vector<net::NodeId> first_hop(n);
  std::vector<bool> done(n, false);
  dist[from.v] = 0.0;

  for (;;) {
    // Extract-min (linear scan: reference code favours clarity).
    std::size_t u = n;
    double best = kInf;
    for (std::size_t i = 0; i < n; ++i) {
      if (!done[i] && allowed[i] && dist[i] < best) {
        best = dist[i];
        u = i;
      }
    }
    if (u == n) break;
    done[u] = true;
    const net::NodeId uid{static_cast<std::uint32_t>(u)};
    if (uid == dest) break;
    for (const net::NodeId v : zones.zone(uid)) {
      if (!allowed[v.v] || done[v.v]) continue;
      const auto w = net.radio().min_power_for(net.distance_between(uid, v));
      if (!w) continue;
      const double cand = dist[u] + *w;
      const int cand_hops = hops[u] + 1;
      const net::NodeId cand_first = (uid == from) ? v : first_hop[u];
      const bool improves =
          cand < dist[v.v] ||
          (cand == dist[v.v] && (cand_hops < hops[v.v] ||
                                 (cand_hops == hops[v.v] && cand_first < first_hop[v.v])));
      if (improves) {
        dist[v.v] = cand;
        hops[v.v] = cand_hops;
        first_hop[v.v] = cand_first;
      }
    }
  }

  if (dist[dest.v] == kInf) return std::nullopt;
  return Route{first_hop[dest.v], dist[dest.v], hops[dest.v]};
}

}  // namespace spms::routing
