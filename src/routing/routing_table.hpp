#pragma once

#include <algorithm>
#include <limits>
#include <optional>
#include <utility>
#include <vector>

#include "net/ids.hpp"

/// \file routing_table.hpp
/// Per-node routing state produced by the distributed Bellman-Ford.
///
/// The paper: "Each entry of the routing table at each node has a
/// destination field and the cost of going to the destination through each
/// of its neighbors … In our implementation, the routing table keeps only
/// the shortest (i.e., least cost) and the second shortest path to the
/// destination which tolerates only one failure during the recovery
/// window."  We store exactly that: the best route and the best route whose
/// first hop differs from the best's.

namespace spms::routing {

/// One candidate path to a destination.
struct Route {
  net::NodeId next_hop;  ///< first hop; invalid means "no route"
  double cost = std::numeric_limits<double>::infinity();  ///< sum of per-hop minimum TX powers (mW)
  int hops = 0;  ///< path length in links

  [[nodiscard]] bool valid() const { return next_hop.valid(); }
};

/// Best and second-best (distinct first hop) routes to one destination.
struct RouteEntry {
  Route best;
  Route second;
};

/// Routes from one node to every destination in its zone.
///
/// Storage is a flat vector sorted by destination id: the destination set is
/// fixed at rebuild time (a node's zone), lookups binary-search, and a table
/// costs two allocations instead of one hash node per destination — the
/// rebuild of a large deployment was dominated by those map nodes.
class RoutingTable {
 public:
  /// Looks up the entry for `dest`; nullptr when `dest` is outside the zone.
  [[nodiscard]] const RouteEntry* find(net::NodeId dest) const {
    const auto it = lower_bound(dest);
    return (it == entries_.end() || it->first != dest) ? nullptr : &it->second;
  }

  /// Best route to `dest`, if any.
  [[nodiscard]] std::optional<Route> best(net::NodeId dest) const {
    const auto* e = find(dest);
    if (e == nullptr || !e->best.valid()) return std::nullopt;
    return e->best;
  }

  /// First hop of the best route to `dest`; invalid NodeId when unroutable.
  [[nodiscard]] net::NodeId next_hop(net::NodeId dest) const {
    const auto* e = find(dest);
    return e != nullptr ? e->best.next_hop : net::kNoNode;
  }

  /// Inserts or overwrites the entry for `dest`.  The rebuild inserts in
  /// ascending destination order, so this is an amortized push_back.
  void set(net::NodeId dest, RouteEntry entry) {
    const auto it = lower_bound(dest);
    if (it != entries_.end() && it->first == dest) {
      it->second = entry;
    } else {
      entries_.insert(it, {dest, entry});
    }
  }
  void reserve(std::size_t n) { entries_.reserve(n); }
  void clear() { entries_.clear(); }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }

  /// Entries sorted by destination id.
  [[nodiscard]] const std::vector<std::pair<net::NodeId, RouteEntry>>& entries() const {
    return entries_;
  }

 private:
  using Iter = std::vector<std::pair<net::NodeId, RouteEntry>>::iterator;
  using ConstIter = std::vector<std::pair<net::NodeId, RouteEntry>>::const_iterator;
  [[nodiscard]] ConstIter lower_bound(net::NodeId dest) const {
    return std::lower_bound(entries_.begin(), entries_.end(), dest,
                            [](const auto& e, net::NodeId d) { return e.first < d; });
  }
  [[nodiscard]] Iter lower_bound(net::NodeId dest) {
    return std::lower_bound(entries_.begin(), entries_.end(), dest,
                            [](const auto& e, net::NodeId d) { return e.first < d; });
  }

  std::vector<std::pair<net::NodeId, RouteEntry>> entries_;
};

}  // namespace spms::routing
