#pragma once

#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"

/// \file zone.hpp
/// Zone membership.
///
/// "A zone for a node is the region that the node can reach by transmitting
/// at the maximum power level.  The nodes which lie within a node's zone are
/// called its zone neighbors."  Membership is geometric (down nodes stay
/// members — transient failures are handled by protocol timers, not by
/// routing rebuilds) and symmetric, because every node uses the same zone
/// radius.

namespace spms::routing {

/// Snapshot of every node's zone-neighbor list, ascending id order.
class ZoneMap {
 public:
  /// Builds the map from current node positions and the network zone radius.
  explicit ZoneMap(const net::Network& net);

  /// Zone neighbors of `id` (excludes `id` itself).
  [[nodiscard]] const std::vector<net::NodeId>& zone(net::NodeId id) const {
    return zones_.at(id.v);
  }

  /// True when `other` lies in `id`'s zone.
  [[nodiscard]] bool in_zone(net::NodeId id, net::NodeId other) const;

  [[nodiscard]] std::size_t node_count() const { return zones_.size(); }

  /// Mean zone size (the n1 of the paper's analysis, for diagnostics).
  [[nodiscard]] double mean_zone_size() const;

 private:
  std::vector<std::vector<net::NodeId>> zones_;
};

}  // namespace spms::routing
