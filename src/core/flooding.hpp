#pragma once

#include <vector>

#include "core/interest.hpp"
#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

/// \file flooding.hpp
/// Classic flooding — the paper's Section 1 baseline: "each node retransmits
/// the data it receives to all its neighbors … it results in data implosion
/// with the destination getting multiple data packets from multiple paths."
///
/// No negotiation: the full DATA frame floods at maximum power; a node
/// rebroadcasts each item exactly once (the only state kept).  Included for
/// the ablation benches that quantify what SPIN's negotiation and SPMS's
/// power control each buy.

namespace spms::core {

/// The flooding baseline over a Network.
class FloodingProtocol final : public DisseminationProtocol {
 public:
  FloodingProtocol(sim::Simulation& sim, net::Network& net, const Interest& interest,
                   ProtocolParams params);
  ~FloodingProtocol() override;

  [[nodiscard]] std::string_view name() const override { return "FLOOD"; }
  void publish(net::NodeId source, net::DataId item) override;

 private:
  class NodeAgent final : public net::Agent {
   public:
    NodeAgent(FloodingProtocol& proto, net::NodeId self, StateArena& arena)
        : seen(ArenaSet<net::DataId>::allocator_type{arena}),
          rebroadcast(ArenaSet<net::DataId>::allocator_type{arena}),
          proto_(proto),
          self_(self) {}
    void on_receive(const net::Packet& p) override { proto_.handle_receive(self_, p); }

    ArenaSet<net::DataId> seen;        ///< items received
    ArenaSet<net::DataId> rebroadcast; ///< items already re-flooded

   private:
    FloodingProtocol& proto_;
    net::NodeId self_;
  };

  void handle_receive(net::NodeId self, const net::Packet& p);
  void flood(net::NodeId self, net::DataId item);

  sim::Simulation& sim_;
  net::Network& net_;
  const Interest& interest_;
  ProtocolParams params_;
  StateArena arena_;  ///< backs every agent's sets; must outlive agents_
  std::vector<NodeAgent> agents_;
};

}  // namespace spms::core
