#include "core/interest.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace spms::core {

namespace {

/// SplitMix64-style avalanche over the (seed, node, item) triple; gives a
/// stable pseudo-random draw without consuming RNG state.
std::uint64_t mix(std::uint64_t x) {
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

ClusterInterest::ClusterInterest(const net::Network& net, double head_spacing_m, double p_other,
                                 std::uint64_t seed)
    : net_(net), p_other_(p_other), seed_(seed) {
  const std::size_t n = net.size();
  // Bounding box of the deployment.
  double max_x = 0.0, max_y = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    const auto p = net.position(net::NodeId{static_cast<std::uint32_t>(i)});
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }
  const auto cells_x = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(max_x / head_spacing_m)));
  const auto cells_y = std::max<std::size_t>(1, static_cast<std::size_t>(std::ceil(max_y / head_spacing_m)));

  is_head_.assign(n, false);
  for (std::size_t cy = 0; cy < cells_y; ++cy) {
    for (std::size_t cx = 0; cx < cells_x; ++cx) {
      const net::Point centre{(static_cast<double>(cx) + 0.5) * head_spacing_m,
                              (static_cast<double>(cy) + 0.5) * head_spacing_m};
      net::NodeId best;
      double best_d = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < n; ++i) {
        const net::NodeId id{static_cast<std::uint32_t>(i)};
        const double d = distance(net.position(id), centre);
        if (d < best_d) {
          best_d = d;
          best = id;
        }
      }
      if (best.valid() && !is_head_[best.v]) {
        is_head_[best.v] = true;
        heads_.push_back(best);
      }
    }
  }

  // Assign each node to its nearest head.
  head_of_.assign(n, net::kNoNode);
  for (std::size_t i = 0; i < n; ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    double best_d = std::numeric_limits<double>::infinity();
    for (const net::NodeId h : heads_) {
      const double d = distance(net_.position(id), net_.position(h));
      if (d < best_d) {
        best_d = d;
        head_of_[i] = h;
      }
    }
  }
}

bool ClusterInterest::hash_wants(net::NodeId node, net::DataId item) const {
  const std::uint64_t h = mix(seed_ ^ (static_cast<std::uint64_t>(node.v) << 40) ^
                              (static_cast<std::uint64_t>(item.origin.v) << 20) ^ item.seq);
  return static_cast<double>(h >> 11) * 0x1.0p-53 < p_other_;
}

bool ClusterInterest::wants(net::NodeId node, net::DataId item) const {
  if (node == item.origin) return false;
  if (node == head_of_.at(item.origin.v)) return true;
  // Non-heads inside the origin's zone are interested with probability p.
  if (distance(net_.position(node), net_.position(item.origin)) <= net_.zone_radius()) {
    return hash_wants(node, item);
  }
  return false;
}

std::size_t ClusterInterest::expected_count(net::DataId item) const {
  std::size_t count = 0;
  for (std::size_t i = 0; i < net_.size(); ++i) {
    if (wants(net::NodeId{static_cast<std::uint32_t>(i)}, item)) ++count;
  }
  return count;
}

}  // namespace spms::core
