#pragma once

#include <vector>

#include "core/interest.hpp"
#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

/// \file spin.hpp
/// SPIN-PP baseline (Heinzelman/Kulik/Balakrishnan, as summarized in the
/// paper's Section 3.1).
///
/// Three-stage handshake, all frames at the single maximum power level
/// ("SPIN suffers from the drawback of transmitting all packets at the same
/// power level"):
///   1. a node with new data broadcasts ADV(meta) to its neighbors;
///   2. a neighbor that lacks and wants the data unicasts REQ back;
///   3. the advertiser unicasts DATA to each requester;
///   4. every receiver of DATA re-advertises it once, which spreads the item
///      through the network.
///
/// Failure handling (for the F-SPIN runs): published SPIN has no timers, so
/// a REQ or DATA lost to a transient crash would strand the requester.  We
/// add the minimal liveness mechanism: a requester re-sends its REQ if DATA
/// does not arrive within tout_dat (bounded by max_retries), and a node that
/// recovers from a crash re-issues REQs for items it still misses.  This is
/// documented as a reproduction decision in DESIGN.md.

namespace spms::core {

/// The SPIN-PP protocol over a Network.
class SpinProtocol final : public DisseminationProtocol {
 public:
  SpinProtocol(sim::Simulation& sim, net::Network& net, const Interest& interest,
               ProtocolParams params);
  ~SpinProtocol() override;

  [[nodiscard]] std::string_view name() const override { return "SPIN"; }
  void publish(net::NodeId source, net::DataId item) override;

 private:
  /// Per (node, item) protocol state.
  struct ItemState {
    bool has = false;
    bool advertised = false;     ///< ADV successfully handed to the MAC
    bool pending = false;        ///< REQ outstanding
    net::NodeId advertiser;      ///< who we last heard an ADV from
    sim::EventHandle retry;      ///< re-request timer (failure liveness)
    int attempts = 0;
    bool gave_up = false;        ///< retry budget exhausted (counted once)
    int deferrals = 0;           ///< timer expiries deferred by channel activity
  };

  /// Thin per-node adapter implementing net::Agent.
  class NodeAgent final : public net::Agent {
   public:
    NodeAgent(SpinProtocol& proto, net::NodeId self, StateArena& arena)
        : items(ArenaMap<net::DataId, ItemState>::allocator_type{arena}),
          served(ArenaMap2<net::DataId, net::NodeId, sim::TimePoint>::allocator_type{
              ArenaAllocator<std::byte>{arena}}),
          proto_(proto),
          self_(self) {}
    void on_receive(const net::Packet& p) override { proto_.handle_receive(self_, p); }
    void on_down() override { proto_.handle_down(self_); }
    void on_up() override { proto_.handle_up(self_); }

    ArenaMap<net::DataId, ItemState> items;
    /// Holder-side duplicate suppression: when each (item, requester) pair
    /// was last served.  Retries inside the service-guard window are dropped
    /// (their DATA is still queued here); later ones are served again.
    ArenaMap2<net::DataId, net::NodeId, sim::TimePoint> served;

   private:
    SpinProtocol& proto_;
    net::NodeId self_;
  };

  void handle_receive(net::NodeId self, const net::Packet& p);
  void handle_adv(net::NodeId self, const net::Packet& p);
  void handle_req(net::NodeId self, const net::Packet& p);
  void handle_data(net::NodeId self, const net::Packet& p);
  void handle_down(net::NodeId self);
  void handle_up(net::NodeId self);

  void broadcast_adv(net::NodeId self, net::DataId item);
  void send_req(net::NodeId self, net::DataId item, net::NodeId to);
  void arm_retry(net::NodeId self, net::DataId item);
  void on_retry_timeout(net::NodeId self, net::DataId item);

  [[nodiscard]] ItemState& state(net::NodeId node, net::DataId item) {
    return agents_[node.v].items[item];
  }

  sim::Simulation& sim_;
  net::Network& net_;
  const Interest& interest_;
  ProtocolParams params_;
  StateArena arena_;  ///< backs every agent's maps; must outlive agents_
  std::vector<NodeAgent> agents_;
};

}  // namespace spms::core
