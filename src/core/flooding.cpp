#include "core/flooding.hpp"

#include <cassert>

#include "obs/event_trace.hpp"

namespace spms::core {

FloodingProtocol::FloodingProtocol(sim::Simulation& sim, net::Network& net,
                                   const Interest& interest, ProtocolParams params)
    : sim_(sim), net_(net), interest_(interest), params_(params) {
  agents_.reserve(net_.size());
  for (std::size_t i = 0; i < net_.size(); ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    agents_.emplace_back(*this, id, arena_);
    net_.set_agent(id, &agents_.back());
  }
}

FloodingProtocol::~FloodingProtocol() {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    net_.set_agent(net::NodeId{static_cast<std::uint32_t>(i)}, nullptr);
  }
}

void FloodingProtocol::publish(net::NodeId source, net::DataId item) {
  assert(item.origin == source);
  agents_[source.v].seen.insert(item);
  flood(source, item);
}

void FloodingProtocol::flood(net::NodeId self, net::DataId item) {
  auto& agent = agents_[self.v];
  if (!agent.rebroadcast.insert(item).second) return;  // flooded already
  net::Packet data;
  data.type = net::PacketType::kData;
  data.item = item;
  data.holder = self;
  data.size_bytes = params_.data_bytes;
  net_.send(self, data, net_.zone_radius());
}

void FloodingProtocol::handle_receive(net::NodeId self, const net::Packet& p) {
  if (p.type != net::PacketType::kData) return;
  auto& agent = agents_[self.v];
  if (!agent.seen.insert(p.item).second) return;  // implosion duplicate
  if (sim_.events().enabled()) {
    // Emitted before the delivery record so the span's causal parent exists
    // by the time kDelivery closes it.
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kFloodData, .node = self,
                        .peer = p.src, .parent = p.holder, .item = p.item});
  }
  if (interest_.wants(self, p.item)) notify_delivered(self, p.item, sim_.now());
  flood(self, p.item);
}

}  // namespace spms::core
