#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"
#include "net/network.hpp"

/// \file interest.hpp
/// Which nodes want which data items.
///
/// The paper evaluates two communication patterns:
///  * all-to-all (Section 5.1): "each node generates 10 new packets and
///    every other node in the network is interested in receiving each
///    packet";
///  * cluster-based hierarchical (Section 5.2): "the cluster heads are
///    responsible for collecting the data … The other nodes in the zone of
///    the source node can also be interested in data with a probability of
///    5%."
///
/// wants() must be a pure function of (node, item) so that protocols,
/// collectors and tests all agree on the interested set; randomized interest
/// therefore hashes (seed, node, item) instead of consuming RNG state.

namespace spms::core {

/// Interest predicate interface.
class Interest {
 public:
  virtual ~Interest() = default;

  /// True when `node` wants `item`.  Must be deterministic.
  [[nodiscard]] virtual bool wants(net::NodeId node, net::DataId item) const = 0;

  /// Number of nodes that want `item` (the collector's expected-delivery
  /// count).
  [[nodiscard]] virtual std::size_t expected_count(net::DataId item) const = 0;
};

/// Everyone except the origin wants every item.
class AllToAllInterest final : public Interest {
 public:
  explicit AllToAllInterest(std::size_t node_count) : n_(node_count) {}

  [[nodiscard]] bool wants(net::NodeId node, net::DataId item) const override {
    return node != item.origin;
  }
  [[nodiscard]] std::size_t expected_count(net::DataId) const override { return n_ - 1; }

 private:
  std::size_t n_;
};

/// Sink-based interest: one designated sink wants every item (the paper's
/// §5.1 "source to sink" special case of all-to-all).
class SinkInterest final : public Interest {
 public:
  explicit SinkInterest(net::NodeId sink) : sink_(sink) {}

  [[nodiscard]] bool wants(net::NodeId node, net::DataId item) const override {
    return node == sink_ && node != item.origin;
  }
  [[nodiscard]] std::size_t expected_count(net::DataId item) const override {
    return item.origin == sink_ ? 0 : 1;
  }
  [[nodiscard]] net::NodeId sink() const { return sink_; }

 private:
  net::NodeId sink_;
};

/// Cluster-based hierarchical interest: the head of the origin's cluster
/// always wants the item; other nodes inside the origin's zone want it with
/// probability `p_other` (hash-derived, deterministic).
class ClusterInterest final : public Interest {
 public:
  /// Chooses cluster heads on a grid of `head_spacing_m` cells (the node
  /// nearest each cell centre) and assigns every node to its nearest head.
  ClusterInterest(const net::Network& net, double head_spacing_m, double p_other,
                  std::uint64_t seed);

  [[nodiscard]] bool wants(net::NodeId node, net::DataId item) const override;
  [[nodiscard]] std::size_t expected_count(net::DataId item) const override;

  [[nodiscard]] const std::vector<net::NodeId>& heads() const { return heads_; }
  [[nodiscard]] net::NodeId head_of(net::NodeId node) const { return head_of_.at(node.v); }

 private:
  [[nodiscard]] bool hash_wants(net::NodeId node, net::DataId item) const;

  const net::Network& net_;
  double p_other_;
  std::uint64_t seed_;
  std::vector<net::NodeId> heads_;
  std::vector<net::NodeId> head_of_;  ///< per node: its cluster head
  std::vector<bool> is_head_;
};

}  // namespace spms::core
