#pragma once

#include <cstdint>
#include <unordered_map>

#include "net/ids.hpp"
#include "sim/time.hpp"
#include "stats/percentiles.hpp"
#include "stats/summary.hpp"

/// \file collector.hpp
/// Per-run delivery and delay bookkeeping.
///
/// The paper's delay metric: "The delay is measured from the time the ADV
/// packet is sent out by the source to the time that the data packet is
/// received at the destination", averaged over all deliveries.  The
/// collector records the publish instant per item and turns each delivery
/// into one delay sample.

namespace spms::core {

/// Collects delivery events; wire record_delivery into
/// DisseminationProtocol::set_delivery_callback.
class Collector {
 public:
  Collector() = default;
  /// \param pct  engine for the delay quantiles — scale scenarios opt into
  ///        the t-digest sketch; everything else keeps exact samples.
  explicit Collector(stats::PercentileOptions pct) : delay_pct_(pct) {}

  /// Registers a published item with its expected number of deliveries.
  void record_publish(net::DataId item, sim::TimePoint at, std::size_t expected_deliveries);

  /// Registers a delivery; duplicates per (node,item) are the protocol's
  /// responsibility to prevent and are counted separately if they occur.
  /// Returns the delay sample in milliseconds, or a negative value when the
  /// item was never published here (counted in unknown_item_deliveries).
  double record_delivery(net::NodeId node, net::DataId item, sim::TimePoint at);

  [[nodiscard]] std::size_t published() const { return published_; }
  [[nodiscard]] std::size_t expected_deliveries() const { return expected_; }
  [[nodiscard]] std::size_t deliveries() const { return delivered_; }
  [[nodiscard]] std::uint64_t unknown_item_deliveries() const { return unknown_; }

  /// deliveries / expected_deliveries in [0,1]; 1.0 when nothing expected.
  [[nodiscard]] double delivery_ratio() const;
  [[nodiscard]] bool all_delivered() const { return delivered_ >= expected_; }

  /// Delay distribution over all deliveries, in milliseconds.
  [[nodiscard]] const stats::Summary& delay_ms() const { return delay_; }
  [[nodiscard]] stats::Percentiles& delay_percentiles() { return delay_pct_; }

 private:
  struct ItemRecord {
    sim::TimePoint published_at;
    std::size_t expected = 0;
    std::size_t delivered = 0;
  };

  std::unordered_map<net::DataId, ItemRecord> items_;
  std::size_t published_ = 0;
  std::size_t expected_ = 0;
  std::size_t delivered_ = 0;
  std::uint64_t unknown_ = 0;
  stats::Summary delay_;
  stats::Percentiles delay_pct_;
};

}  // namespace spms::core
