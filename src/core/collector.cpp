#include "core/collector.hpp"

namespace spms::core {

void Collector::record_publish(net::DataId item, sim::TimePoint at, std::size_t expected) {
  auto [it, inserted] = items_.emplace(item, ItemRecord{at, expected, 0});
  if (!inserted) return;  // double publish of the same id: ignore
  ++published_;
  expected_ += expected;
}

double Collector::record_delivery(net::NodeId /*node*/, net::DataId item, sim::TimePoint at) {
  const auto it = items_.find(item);
  if (it == items_.end()) {
    ++unknown_;
    return -1.0;
  }
  ++it->second.delivered;
  ++delivered_;
  const double delay_ms_sample = (at - it->second.published_at).to_ms();
  delay_.add(delay_ms_sample);
  delay_pct_.add(delay_ms_sample);
  return delay_ms_sample;
}

double Collector::delivery_ratio() const {
  if (expected_ == 0) return 1.0;
  return static_cast<double>(delivered_) / static_cast<double>(expected_);
}

}  // namespace spms::core
