#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string_view>

#include "net/ids.hpp"
#include "sim/time.hpp"

/// \file protocol.hpp
/// Common interface of the data-dissemination protocols (SPMS, SPIN,
/// flooding).  A protocol owns one agent per node, reacts to traffic
/// injected via publish(), and reports deliveries through a callback.

namespace spms::core {

/// Packet sizes and timer constants shared by the protocol family
/// (paper Table 1).
struct ProtocolParams {
  std::size_t adv_bytes = 2;   ///< ADV frame size
  std::size_t req_bytes = 2;   ///< REQ frame size
  std::size_t data_bytes = 40; ///< DATA frame size (DATA:REQ = 20)

  /// SPMS: how long a node waits to hear a relay's ADV before requesting
  /// through the shortest path (TOutADV).
  sim::Duration tout_adv = sim::Duration::ms(1.0);
  /// SPMS: how long a requester waits for DATA before escalating (TOutDAT).
  /// SPIN reuses it as its re-request timeout under failures.
  sim::Duration tout_dat = sim::Duration::ms(2.5);

  /// Bound on REQ (re)tries per item per node before giving up.
  int max_retries = 16;

  /// Retry timeouts back off exponentially: the k-th retry waits
  /// tout_dat * retry_backoff^min(k, max_backoff_exp).  The paper assumes
  /// timeouts are "adjusted properly" so they do not fire while the reply is
  /// still queued; under bursty load a fixed 2.5 ms would fire spuriously
  /// and spiral, so the backoff restores the paper's intent (see DESIGN.md).
  double retry_backoff = 2.0;
  int max_backoff_exp = 6;

  /// Holder-side service rate limit: a (item, requester) pair is served at
  /// most once per window.  Suppresses duplicate DATA when a retry races a
  /// reply that is still queued, while letting genuinely lost replies be
  /// re-served after the window.
  sim::Duration service_guard = sim::Duration::ms(25.0);

  /// Channel-activity gating of timers: an expiring tau_DAT / tau_ADV / SPIN
  /// retry timer whose owner has heard the channel busy within the last
  /// tout_dat re-arms instead of firing (the reply is plainly queued behind
  /// audible traffic, not lost).  This keeps Table 1's 1.0/2.5 ms timers
  /// meaningful under load while preserving fast failure detection on a
  /// quiet channel.  The limit bounds deferrals per item as a deadlock
  /// valve.
  int timer_defer_limit = 4000;
};

/// Invoked exactly once per (interested node, item) when the data arrives.
using DeliveryCallback =
    std::function<void(net::NodeId node, net::DataId item, sim::TimePoint at)>;

/// Base class for dissemination protocols.
class DisseminationProtocol {
 public:
  virtual ~DisseminationProtocol() = default;

  /// Protocol name for reports ("SPMS", "SPIN", ...).
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// New data sensed at `source`; starts the dissemination of `item`.
  /// `item.origin` must equal `source`.
  virtual void publish(net::NodeId source, net::DataId item) = 0;

  /// Nodes moved; protocols holding routing state refresh it here.  The
  /// scenario layer calls this from the mobility epoch hook.
  virtual void on_topology_changed() {}

  /// Installs the delivery callback (collector wiring).
  void set_delivery_callback(DeliveryCallback cb) { deliver_ = std::move(cb); }

  /// Count of (node, item) acquisitions abandoned after max_retries; used by
  /// the failure experiments to report residual losses.
  [[nodiscard]] std::uint64_t given_up() const {
    return given_up_.load(std::memory_order_relaxed);
  }

 protected:
  void notify_delivered(net::NodeId node, net::DataId item, sim::TimePoint at) const {
    if (deliver_) deliver_(node, item, at);
  }
  /// Relaxed atomic: give-ups on spatially-disjoint nodes may be counted
  /// concurrently by parallel event groups; the sum is order-independent.
  void count_give_up() { given_up_.fetch_add(1, std::memory_order_relaxed); }

 private:
  DeliveryCallback deliver_;
  std::atomic<std::uint64_t> given_up_{0};
};

}  // namespace spms::core
