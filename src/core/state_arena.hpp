#pragma once

#include <atomic>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <new>
#include <scoped_allocator>
#include <type_traits>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

/// \file state_arena.hpp
/// Bump/slab arena for per-(node, item) protocol state.
///
/// A protocol run creates thousands of tiny, long-lived objects — hash-map
/// nodes for per-item state machines, holder-side service records, seen-item
/// sets — that are never individually freed: they live until the protocol
/// object dies.  Routing each of them through the global heap costs one
/// malloc apiece (the ~4.9k allocs/run residue PR 6 left open) and scatters
/// them across memory.  The StateArena bump-allocates out of geometrically
/// growing slabs and frees everything wholesale in its destructor;
/// ArenaAllocator plugs it under the standard containers.
///
/// Determinism contract: the arena changes *where* container nodes live,
/// never *how the containers behave*.  An unordered_map's bucket-count
/// sequence, hashing and insertion order — and therefore its iteration
/// order, which several protocol paths (handle_up/handle_down) feed into
/// RNG-consuming code — are independent of the allocator, so runs stay
/// byte-identical to the heap-backed layout.  deallocate() is a deliberate
/// no-op; that is safe precisely because this state is insert-only (maps
/// grow monotonically during a run).  Rehash garbage is bounded by the
/// geometric bucket growth: all discarded bucket arrays together are
/// smaller than the final one.

namespace spms::core {

/// Geometric slab bump allocator.  One arena backs every agent of a
/// protocol instance, so during parallel batch execution (scheduler
/// worker pool) spatially-disjoint event groups can allocate concurrently:
/// a spinlock serializes the bump.  Which worker gets which address is
/// scheduling-dependent, but addresses never feed back into behaviour (the
/// determinism contract below), so results stay byte-identical.
class StateArena {
 public:
  explicit StateArena(std::size_t first_slab_bytes = 4096)
      : next_slab_bytes_(first_slab_bytes) {}

  StateArena(const StateArena&) = delete;
  StateArena& operator=(const StateArena&) = delete;

  /// Bump-allocates `bytes` aligned to `align` (a power of two).  Oversized
  /// requests get a dedicated slab, so no request can fail by slab size.
  void* allocate(std::size_t bytes, std::size_t align) {
    assert((align & (align - 1)) == 0);
    while (lock_.test_and_set(std::memory_order_acquire)) {}
    std::size_t off = (offset_ + align - 1) & ~(align - 1);
    if (slabs_.empty() || off + bytes > slabs_.back().size) {
      new_slab(bytes + align);
      off = (offset_ + align - 1) & ~(align - 1);
    }
    offset_ = off + bytes;
    used_ += bytes;
    void* p = slabs_.back().mem.get() + off;
    lock_.clear(std::memory_order_release);
    return p;
  }

  /// Individual frees are no-ops (see file comment); everything is released
  /// when the arena dies.
  static void deallocate(void* /*p*/, std::size_t /*bytes*/) noexcept {}

  /// Total bytes reserved from the heap (slab sizes).
  [[nodiscard]] std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Slab& s : slabs_) total += s.size;
    return total;
  }
  /// Bytes handed out to containers (excludes alignment + slab slack).
  [[nodiscard]] std::size_t bytes_used() const { return used_; }

 private:
  struct Slab {
    std::unique_ptr<std::byte[]> mem;
    std::size_t size = 0;
  };

  void new_slab(std::size_t min_bytes) {
    std::size_t size = next_slab_bytes_;
    while (size < min_bytes) size *= 2;
    slabs_.push_back({std::make_unique<std::byte[]>(size), size});
    offset_ = 0;
    if (next_slab_bytes_ < kMaxSlabBytes) next_slab_bytes_ *= 2;
  }

  static constexpr std::size_t kMaxSlabBytes = std::size_t{1} << 20;  // 1 MiB
  std::atomic_flag lock_ = ATOMIC_FLAG_INIT;  ///< guards the bump (uncontended when sequential)
  std::vector<Slab> slabs_;
  std::size_t offset_ = 0;
  std::size_t used_ = 0;
  std::size_t next_slab_bytes_;
};

/// Standard-allocator adapter over a StateArena.  Without an arena (default
/// construction) it degrades to the global heap, so moved-from or
/// default-built containers stay well-formed.
template <class T>
class ArenaAllocator {
 public:
  using value_type = T;
  using propagate_on_container_copy_assignment = std::true_type;
  using propagate_on_container_move_assignment = std::true_type;
  using propagate_on_container_swap = std::true_type;

  ArenaAllocator() noexcept = default;
  explicit ArenaAllocator(StateArena& arena) noexcept : arena_(&arena) {}
  template <class U>
  ArenaAllocator(const ArenaAllocator<U>& other) noexcept : arena_(other.arena()) {}

  [[nodiscard]] T* allocate(std::size_t n) {
    if (arena_ == nullptr) return static_cast<T*>(::operator new(n * sizeof(T)));
    return static_cast<T*>(arena_->allocate(n * sizeof(T), alignof(T)));
  }
  void deallocate(T* p, std::size_t n) noexcept {
    if (arena_ == nullptr) {
      ::operator delete(p);
      return;
    }
    StateArena::deallocate(p, n * sizeof(T));
  }

  [[nodiscard]] StateArena* arena() const noexcept { return arena_; }

  template <class U>
  bool operator==(const ArenaAllocator<U>& o) const noexcept {
    return arena_ == o.arena();
  }

 private:
  StateArena* arena_ = nullptr;
};

/// unordered_map/set with the default hash/equality (identical bucket
/// behaviour and iteration order to the plain std containers) but
/// arena-backed nodes and bucket arrays.
template <class K, class V>
using ArenaMap =
    std::unordered_map<K, V, std::hash<K>, std::equal_to<K>, ArenaAllocator<std::pair<const K, V>>>;
template <class K>
using ArenaSet = std::unordered_set<K, std::hash<K>, std::equal_to<K>, ArenaAllocator<K>>;

/// Two-level map whose inner maps inherit the outer arena via
/// scoped-allocator propagation (`served[item][requester]` never touches
/// the global heap).
template <class K1, class K2, class V>
using ArenaMap2 = std::unordered_map<
    K1, ArenaMap<K2, V>, std::hash<K1>, std::equal_to<K1>,
    std::scoped_allocator_adaptor<ArenaAllocator<std::pair<const K1, ArenaMap<K2, V>>>>>;

/// Small vector with inline capacity N for trivially copyable elements;
/// spills to the heap only past N (the SPMS originator list is bounded by
/// 1 + num_scones ≈ 2, so the default config never allocates).  Iterators
/// are raw pointers; semantics match the std::vector subset the protocols
/// use (ordering in particular — front() is the PRONE).
template <class T, std::size_t N>
class InlineVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  using value_type = T;
  using iterator = T*;
  using const_iterator = const T*;

  InlineVec() = default;
  InlineVec(const InlineVec& o) { assign(o); }
  InlineVec(InlineVec&& o) noexcept { steal(std::move(o)); }
  InlineVec& operator=(const InlineVec& o) {
    if (this != &o) {
      clear_storage();
      assign(o);
    }
    return *this;
  }
  InlineVec& operator=(InlineVec&& o) noexcept {
    if (this != &o) {
      clear_storage();
      steal(std::move(o));
    }
    return *this;
  }
  ~InlineVec() { clear_storage(); }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }
  [[nodiscard]] iterator begin() { return data_; }
  [[nodiscard]] iterator end() { return data_ + size_; }
  [[nodiscard]] const_iterator begin() const { return data_; }
  [[nodiscard]] const_iterator end() const { return data_ + size_; }
  [[nodiscard]] T& front() { return data_[0]; }
  [[nodiscard]] const T& front() const { return data_[0]; }
  [[nodiscard]] T& back() { return data_[size_ - 1]; }
  [[nodiscard]] T& operator[](std::size_t i) { return data_[i]; }
  [[nodiscard]] const T& operator[](std::size_t i) const { return data_[i]; }

  void push_back(const T& v) {
    grow_to(size_ + 1);
    data_[size_++] = v;
  }

  /// Inserts before `pos` (same shifting semantics as std::vector).
  void insert(iterator pos, const T& v) {
    const std::size_t at = static_cast<std::size_t>(pos - data_);
    grow_to(size_ + 1);
    std::memmove(data_ + at + 1, data_ + at, (size_ - at) * sizeof(T));
    data_[at] = v;
    ++size_;
  }

  /// Removes every element equal to `v`, preserving order
  /// (std::erase(vector, v) equivalent).
  void erase_value(const T& v) {
    T* out = data_;
    for (T* p = data_; p != data_ + size_; ++p) {
      if (!(*p == v)) *out++ = *p;
    }
    size_ = static_cast<std::size_t>(out - data_);
  }

  /// Shrinks (or value-fills up) to `n` elements.
  void resize(std::size_t n) {
    if (n > size_) {
      grow_to(n);
      for (std::size_t i = size_; i < n; ++i) data_[i] = T{};
    }
    size_ = n;
  }

  void clear() { size_ = 0; }

 private:
  void grow_to(std::size_t need) {
    if (need <= cap_) return;
    std::size_t cap = cap_ * 2;
    while (cap < need) cap *= 2;
    T* heap = static_cast<T*>(::operator new(cap * sizeof(T)));
    std::memcpy(heap, data_, size_ * sizeof(T));
    if (data_ != inline_) ::operator delete(data_);
    data_ = heap;
    cap_ = cap;
  }
  void assign(const InlineVec& o) {
    grow_to(o.size_);
    std::memcpy(data_, o.data_, o.size_ * sizeof(T));
    size_ = o.size_;
  }
  void steal(InlineVec&& o) noexcept {
    if (o.data_ != o.inline_) {
      data_ = o.data_;
      cap_ = o.cap_;
      size_ = o.size_;
      o.data_ = o.inline_;
      o.cap_ = N;
      o.size_ = 0;
      return;
    }
    std::memcpy(inline_, o.inline_, o.size_ * sizeof(T));
    size_ = o.size_;
    o.size_ = 0;
  }
  void clear_storage() {
    if (data_ != inline_) ::operator delete(data_);
    data_ = inline_;
    cap_ = N;
    size_ = 0;
  }

  T inline_[N] = {};
  T* data_ = inline_;
  std::size_t size_ = 0;
  std::size_t cap_ = N;
};

}  // namespace spms::core
