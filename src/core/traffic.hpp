#pragma once

#include <cstdint>

#include "core/collector.hpp"
#include "core/interest.hpp"
#include "core/protocol.hpp"
#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

/// \file traffic.hpp
/// Workload generation (paper Section 5.1): "each node generates 10 new
/// packets … We consider Poisson arrivals for the new packets" with
/// lambda = 1/ms (Table 1).

namespace spms::core {

/// Poisson data-generation workload.
struct TrafficParams {
  int packets_per_node = 10;
  /// Mean inter-arrival between one node's packets (Table 1: 1 ms).
  sim::Duration mean_interarrival = sim::Duration::ms(1.0);
};

/// Schedules publish() calls on a protocol and records them in a collector.
class TrafficGenerator {
 public:
  TrafficGenerator(sim::Simulation& sim, net::Network& net, DisseminationProtocol& proto,
                   const Interest& interest, Collector& collector, TrafficParams params,
                   std::uint64_t stream = 0x7AF1C);

  /// Schedules every node's arrival process starting at the current time.
  void start();

  /// Total items that will be published over the whole run.
  [[nodiscard]] std::size_t total_items() const;

  /// Time by which the last publish fires (known after start()).
  [[nodiscard]] sim::TimePoint last_publish_at() const { return last_publish_; }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  DisseminationProtocol& proto_;
  const Interest& interest_;
  Collector& collector_;
  TrafficParams params_;
  sim::Rng rng_;
  sim::TimePoint last_publish_;
};

}  // namespace spms::core
