#include "core/traffic.hpp"

#include "obs/event_trace.hpp"

namespace spms::core {

TrafficGenerator::TrafficGenerator(sim::Simulation& sim, net::Network& net,
                                   DisseminationProtocol& proto, const Interest& interest,
                                   Collector& collector, TrafficParams params,
                                   std::uint64_t stream)
    : sim_(sim),
      net_(net),
      proto_(proto),
      interest_(interest),
      collector_(collector),
      params_(params),
      rng_(sim.rng().fork(stream)) {}

std::size_t TrafficGenerator::total_items() const {
  return net_.size() * static_cast<std::size_t>(params_.packets_per_node);
}

void TrafficGenerator::start() {
  // All arrival instants are drawn up front (a renewal process per node), so
  // the schedule is independent of protocol behaviour — SPIN and SPMS see
  // identical workloads for the same seed.
  for (std::size_t i = 0; i < net_.size(); ++i) {
    const net::NodeId node{static_cast<std::uint32_t>(i)};
    auto node_rng = rng_.fork(i);
    sim::TimePoint t = sim_.now();
    for (int k = 0; k < params_.packets_per_node; ++k) {
      t = t + node_rng.exponential(params_.mean_interarrival);
      const net::DataId item{node, static_cast<std::uint32_t>(k)};
      if (t > last_publish_) last_publish_ = t;
      // The publish event runs protocol code on `node` synchronously, so its
      // conflict footprint is the node's agent disc.  Mobility after start()
      // is covered by the scheduler's spatial-epoch invalidation.
      sim_.at(t, [this, node, item] {
        const std::size_t expected = interest_.expected_count(item);
        if (sim_.in_parallel_phase()) {
          // Collector sketches are order-sensitive; replay the record in
          // canonical batch order.  (The typed trace disables parallel
          // dispatch, so the emit branch below cannot be live here.)
          const sim::TimePoint at = sim_.now();
          sim_.defer_serial([this, item, at, expected] {
            collector_.record_publish(item, at, expected);
          });
        } else {
          collector_.record_publish(item, sim_.now(), expected);
          if (sim_.events().enabled()) {
            sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kPublish, .node = node,
                                .item = item, .value = static_cast<double>(expected)});
          }
        }
        proto_.publish(node, item);
      }, net_.agent_footprint(node));
    }
  }
}

}  // namespace spms::core
