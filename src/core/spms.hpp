#pragma once

#include <atomic>
#include <vector>

#include "core/interest.hpp"
#include "core/protocol.hpp"
#include "core/state_arena.hpp"
#include "net/network.hpp"
#include "routing/bellman_ford.hpp"
#include "sim/simulation.hpp"

/// \file spms.hpp
/// SPMS — Shortest Path Minded SPIN (the paper's contribution, Section 3).
///
/// Like SPIN, a data holder advertises metadata and interested nodes pull
/// the data; unlike SPIN, the REQ and DATA travel along minimum-power
/// multi-hop routes inside the zone (distributed Bellman-Ford tables), and
/// the destination tolerates relay/source failures with two timers and a
/// pair of fallback originators:
///
///  * PRONE (primary originator node): current first choice to request from;
///  * SCONE (secondary): previous PRONE, used when the PRONE is unreachable;
///  * tau_ADV (TOutADV): after hearing an ADV whose sender is not a next-hop
///    neighbor, wait this long for a closer relay to re-advertise before
///    requesting through the shortest path;
///  * tau_DAT (TOutDAT): after sending a REQ, wait this long for DATA, then
///    escalate — multi-hop attempt -> direct to PRONE -> direct to SCONE ->
///    direct to the source (all guaranteed reachable: they are zone
///    neighbors).
///
/// Every node that *receives* the data re-advertises it once in its zone;
/// pure relays do not cache (the paper defers relay caching to future work).

namespace spms::core {

/// Optional SPMS behaviours beyond the published protocol — both flagged in
/// the paper itself as extensions.
struct SpmsExtensions {
  /// Section 6 future work: "data caching at intermediate nodes which route
  /// the data but are not receivers. This can improve the fault tolerant
  /// property of the protocol."  When on, a relay forwarding DATA keeps a
  /// copy and re-advertises it like a receiver.
  bool relay_caching = false;

  /// Section 3.4: "In a general scenario, multiple SCONES may be maintained
  /// for tolerating more than one concurrent failure."  The destination
  /// remembers the PRONE plus this many fallback originators; the
  /// escalation ladder walks all of them before resorting to the source.
  std::size_t num_scones = 1;

  /// Section 6 future work: "an extension to SPMS to disseminate data when
  /// the source and the destination are in separate zones with no
  /// interested nodes in the intermediate zones. This would require the use
  /// of zone routing … and the request phase of the protocol to go across
  /// zones."  When > 0, uninterested border nodes forward the metadata
  /// (ADV) up to this many zone crossings, accumulating a courier trail;
  /// a distant interested node sends its REQ source-routed back along the
  /// trail and the DATA returns the same way.  0 = published protocol.
  std::size_t cross_zone_ttl = 0;
};

/// The SPMS protocol over a Network + RoutingService.
class SpmsProtocol final : public DisseminationProtocol {
 public:
  SpmsProtocol(sim::Simulation& sim, net::Network& net, routing::RoutingService& routing,
               const Interest& interest, ProtocolParams params, SpmsExtensions ext = {});
  ~SpmsProtocol() override;

  [[nodiscard]] std::string_view name() const override { return "SPMS"; }
  void publish(net::NodeId source, net::DataId item) override;

  /// Drops of multi-hop frames at relays that had no route to the target
  /// (rare geometric corner; the requester's tau_DAT recovers).
  [[nodiscard]] std::uint64_t unroutable_forwards() const {
    return unroutable_.load(std::memory_order_relaxed);
  }

 private:
  /// Per (node, item) acquisition state machine.
  struct ItemState {
    bool has = false;
    bool advertised = false;  ///< ADV successfully handed to the MAC

    /// Known holders, most recently promoted first: [0] is the PRONE, the
    /// rest are SCONEs (capped at 1 + num_scones entries; inline storage —
    /// the default config never heap-allocates per item).
    InlineVec<net::NodeId, 4> originators;

    sim::EventHandle adv_timer;  ///< tau_ADV
    sim::EventHandle dat_timer;  ///< tau_DAT
    bool awaiting = false;       ///< a REQ is outstanding

    bool last_direct = false;   ///< last REQ was one direct transmission
    net::NodeId last_target;    ///< whom the last REQ addressed
    int attempts = 0;           ///< REQs sent for this item
    bool multihop_retried = false;  ///< the ladder's multi-hop re-REQ fired
    bool gave_up = false;           ///< retry budget exhausted (counted once)
    int deferrals = 0;              ///< timer expiries deferred by channel activity

    // Cross-zone extension state.
    bool adv_forwarded = false;        ///< this node couriered the metadata once
    net::NodeId cross_first_hop;       ///< first hop of the cross-zone source route
    std::vector<net::NodeId> cross_plan;  ///< remaining hops (ends at the holder)
  };

  class NodeAgent final : public net::Agent {
   public:
    NodeAgent(SpmsProtocol& proto, net::NodeId self, StateArena& arena)
        : items(ArenaMap<net::DataId, ItemState>::allocator_type{arena}),
          served(ArenaMap2<net::DataId, net::NodeId, sim::TimePoint>::allocator_type{
              ArenaAllocator<std::byte>{arena}}),
          proto_(proto),
          self_(self) {}
    void on_receive(const net::Packet& p) override { proto_.handle_receive(self_, p); }
    void on_down() override { proto_.handle_down(self_); }
    void on_up() override { proto_.handle_up(self_); }

    ArenaMap<net::DataId, ItemState> items;
    /// Holder-side duplicate suppression: when each (item, requester) pair
    /// was last served; retries inside the service-guard window are dropped.
    ArenaMap2<net::DataId, net::NodeId, sim::TimePoint> served;

   private:
    SpmsProtocol& proto_;
    net::NodeId self_;
  };

  void handle_receive(net::NodeId self, const net::Packet& p);
  void handle_adv(net::NodeId self, const net::Packet& p);
  void handle_req(net::NodeId self, const net::Packet& p);
  void handle_data(net::NodeId self, const net::Packet& p);
  void handle_down(net::NodeId self);
  void handle_up(net::NodeId self);

  // --- cross-zone extension -------------------------------------------------
  /// Handles a couriered (forwarded) ADV: request along the trail if we are
  /// an interested distant node, else consider couriering it further.
  void handle_forwarded_adv(net::NodeId self, const net::Packet& p);
  /// Re-broadcasts metadata at the zone edge if the budget allows.
  void maybe_forward_metadata(net::NodeId self, const net::Packet& p, net::NodeId holder);
  /// Sends a REQ source-routed along the ADV courier trail; arms tau_DAT.
  void send_req_cross_zone(net::NodeId self, net::DataId item, net::NodeId first_hop,
                           std::vector<net::NodeId> plan);

  void on_adv_timeout(net::NodeId self, net::DataId item);
  void on_dat_timeout(net::NodeId self, net::DataId item);

  /// Broadcasts the item's ADV in the zone (once per node per item).
  void broadcast_adv(net::NodeId self, net::DataId item);
  /// Sends a REQ to `target` through the shortest path (or directly when
  /// the target is the next hop); arms tau_DAT.
  void send_req_via_route(net::NodeId self, net::DataId item, net::NodeId target);
  /// Sends a REQ straight to `target` in one transmission; arms tau_DAT.
  void send_req_direct(net::NodeId self, net::DataId item, net::NodeId target);
  /// Answers a REQ that reached us (we hold the data).
  void answer_req(net::NodeId self, const net::Packet& req);
  /// Relays a REQ that is addressed to someone else.
  void forward_req(net::NodeId self, net::Packet req);
  /// Relays DATA along its source route.
  void forward_data(net::NodeId self, net::Packet data);

  void arm_dat_timer(net::NodeId self, net::DataId item);

  /// Cost of reaching `dest` from `self` per the routing table; +inf when
  /// unknown.  Used for the "closer node" PRONE update rule.
  [[nodiscard]] double route_cost(net::NodeId self, net::NodeId dest) const;

  /// The current PRONE of an item state (invalid when nothing heard yet).
  [[nodiscard]] static net::NodeId prone_of(const ItemState& st) {
    return st.originators.empty() ? net::kNoNode : st.originators.front();
  }

  [[nodiscard]] ItemState& state(net::NodeId node, net::DataId item) {
    return agents_[node.v].items[item];
  }

  sim::Simulation& sim_;
  net::Network& net_;
  routing::RoutingService& routing_;
  const Interest& interest_;
  ProtocolParams params_;
  SpmsExtensions ext_;
  StateArena arena_;  ///< backs every agent's maps; must outlive agents_
  std::vector<NodeAgent> agents_;
  /// Relaxed atomic: disjoint event groups may count concurrently.
  std::atomic<std::uint64_t> unroutable_{0};
};

}  // namespace spms::core
