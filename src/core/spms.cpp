#include "core/spms.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "obs/event_trace.hpp"

namespace spms::core {

namespace {

/// Quiet-window for the deferral with index `deferrals`: grows geometrically
/// so a pair stuck behind a long congested phase wakes O(log) times instead
/// of polling every tout_dat (doubles every 8 deferrals, capped at 256x).
sim::Duration defer_window(sim::Duration base, int deferrals) {
  const double growth = std::min(std::pow(2.0, static_cast<double>(deferrals) / 8.0), 256.0);
  return base * growth;
}

}  // namespace

SpmsProtocol::SpmsProtocol(sim::Simulation& sim, net::Network& net,
                           routing::RoutingService& routing, const Interest& interest,
                           ProtocolParams params, SpmsExtensions ext)
    : sim_(sim),
      net_(net),
      routing_(routing),
      interest_(interest),
      params_(params),
      ext_(ext) {
  // Agents live by value in one reserved vector (stable addresses — the
  // network keeps raw pointers) and their maps share the protocol arena.
  agents_.reserve(net_.size());
  for (std::size_t i = 0; i < net_.size(); ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    agents_.emplace_back(*this, id, arena_);
    net_.set_agent(id, &agents_.back());
  }
}

SpmsProtocol::~SpmsProtocol() {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    net_.set_agent(net::NodeId{static_cast<std::uint32_t>(i)}, nullptr);
  }
}

double SpmsProtocol::route_cost(net::NodeId self, net::NodeId dest) const {
  const auto r = routing_.route(self, dest);
  return r ? r->cost : std::numeric_limits<double>::infinity();
}

void SpmsProtocol::publish(net::NodeId source, net::DataId item) {
  assert(item.origin == source);
  ItemState& st = state(source, item);
  st.has = true;
  broadcast_adv(source, item);
}

void SpmsProtocol::broadcast_adv(net::NodeId self, net::DataId item) {
  ItemState& st = state(self, item);
  if (st.advertised) return;  // each node advertises an item once
  net::Packet adv;
  adv.type = net::PacketType::kAdv;
  adv.item = item;
  adv.size_bytes = params_.adv_bytes;
  // The ADV must reach the whole zone, so it goes out at the zone radius
  // (the node's maximum power) — the only SPMS frame that always does.
  if (net_.send(self, adv, net_.zone_radius())) {
    st.advertised = true;
    if (sim_.events().enabled()) {
      sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpmsAdv, .node = self, .item = item});
    }
  }
}

void SpmsProtocol::arm_dat_timer(net::NodeId self, net::DataId item) {
  ItemState& st = state(self, item);
  sim_.cancel(st.dat_timer);
  // Exponential backoff across retries: a spuriously short wait would
  // re-request data whose reply is merely queued behind other frames.
  const int exp = std::min(std::max(st.attempts - 1, 0), params_.max_backoff_exp);
  const auto wait = params_.tout_dat * std::pow(params_.retry_backoff, exp);
  st.dat_timer = sim_.after(wait, [this, self, item] { on_dat_timeout(self, item); });
  st.awaiting = true;
}

void SpmsProtocol::send_req_via_route(net::NodeId self, net::DataId item, net::NodeId target) {
  const net::NodeId next = routing_.next_hop(self, target);
  if (!next.valid() || next == target) {
    // Either the table has no multi-hop entry or the best path IS the direct
    // link; both collapse to a direct request.
    send_req_direct(self, item, target);
    return;
  }
  net::Packet req;
  req.type = net::PacketType::kReq;
  req.item = item;
  req.requester = self;
  req.target = target;
  req.direct = false;
  req.dst = next;
  req.size_bytes = params_.req_bytes;
  ItemState& st = state(self, item);
  req.attempt = static_cast<std::uint16_t>(st.attempts + 1);
  const bool sent = net_.send(self, req, net_.distance_between(self, next));
  if (sent && sim_.events().enabled()) {
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpmsReqMultihop, .node = self,
                        .peer = target, .via = next, .item = item});
  }
  ++st.attempts;
  st.last_direct = false;
  st.last_target = target;
  // Arm tau_DAT even when the send failed (e.g. the hop moved out of range):
  // the timeout drives the escalation ladder to another originator.
  arm_dat_timer(self, item);
  (void)sent;
}

void SpmsProtocol::send_req_direct(net::NodeId self, net::DataId item, net::NodeId target) {
  net::Packet req;
  req.type = net::PacketType::kReq;
  req.item = item;
  req.requester = self;
  req.target = target;
  req.direct = true;
  req.dst = target;
  req.size_bytes = params_.req_bytes;
  ItemState& st = state(self, item);
  req.attempt = static_cast<std::uint16_t>(st.attempts + 1);
  const bool sent = net_.send(self, req, net_.distance_between(self, target));
  if (sent && sim_.events().enabled()) {
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpmsReqDirect, .node = self,
                        .peer = target, .item = item});
  }
  ++st.attempts;
  st.last_direct = true;
  st.last_target = target;
  // A failed send (target out of range after mobility) still arms tau_DAT so
  // the escalation ladder can move on instead of stranding the item.
  arm_dat_timer(self, item);
  (void)sent;
}

void SpmsProtocol::handle_receive(net::NodeId self, const net::Packet& p) {
  switch (p.type) {
    case net::PacketType::kAdv: handle_adv(self, p); break;
    case net::PacketType::kReq: handle_req(self, p); break;
    case net::PacketType::kData: handle_data(self, p); break;
    case net::PacketType::kRouteUpdate: break;  // DBF is accounted analytically
  }
}

void SpmsProtocol::handle_adv(net::NodeId self, const net::Packet& p) {
  if (p.target.valid()) {
    // A couriered cross-zone ADV (extension), not a holder's own broadcast.
    handle_forwarded_adv(self, p);
    return;
  }
  if (!interest_.wants(self, p.item)) {
    // Negotiation: unwanted data is ignored — except that with the
    // cross-zone extension a border bystander couriers the metadata onward.
    maybe_forward_metadata(self, p, p.src);
    return;
  }

  ItemState& st = state(self, p.item);
  if (st.has) return;

  // PRONE/SCONE bookkeeping.  The first ADV initializes both to its sender
  // (for a source-zone node that is the source itself, matching the paper's
  // "both PRONE and SCONE are initialized to the data source node"); a
  // later ADV from a cheaper-to-reach holder promotes that holder to PRONE
  // and demotes the previous one to SCONE.  With the multiple-SCONEs
  // extension the demotion chain keeps up to num_scones fallbacks.
  bool prone_changed = false;
  if (st.originators.empty()) {
    st.originators.push_back(p.src);
    prone_changed = true;
  } else if (p.src != st.originators.front() &&
             route_cost(self, p.src) < route_cost(self, st.originators.front())) {
    st.originators.erase_value(p.src);  // re-promotion must not duplicate
    st.originators.insert(st.originators.begin(), p.src);
    if (st.originators.size() > ext_.num_scones + 1) {
      st.originators.resize(ext_.num_scones + 1);
    }
    prone_changed = true;
  }

  if (st.awaiting) return;  // a REQ is already outstanding; bookkeeping only

  if (st.attempts >= params_.max_retries) {
    st.attempts = 0;  // fresh holder heard: the retry budget resets
    st.multihop_retried = false;
  }

  const bool adv_armed = st.adv_timer.valid();
  if (routing_.is_next_hop_neighbor(self, prone_of(st))) {
    // The holder is one hop along the shortest path: request immediately.
    sim_.cancel(st.adv_timer);
    st.adv_timer = sim::EventHandle{};
    send_req_direct(self, p.item, prone_of(st));
    return;
  }

  // Multi-hop territory: wait for a relay to re-advertise (tau_ADV).  A
  // PRONE change restarts the countdown ("C … resets its timer tau_ADV").
  if (!adv_armed || prone_changed) {
    sim_.cancel(st.adv_timer);
    const auto item = p.item;
    st.adv_timer = sim_.after(params_.tout_adv, [this, self, item] { on_adv_timeout(self, item); });
  }
}

void SpmsProtocol::on_adv_timeout(net::NodeId self, net::DataId item) {
  ItemState& st = state(self, item);
  st.adv_timer = sim::EventHandle{};
  if (st.has || st.awaiting) return;  // raced with a delivery or a request
  // Audible traffic means relays are still working through their queues;
  // defer the verdict instead of prematurely pulling from a distant PRONE.
  // The proceed-condition uses the window this wake was scheduled with;
  // the next wake is scheduled with the (grown) next window, so a quiet
  // channel always lets the timer fire at its scheduled instant.
  if (net_.channel_quiet_at(self, defer_window(params_.tout_dat, st.deferrals)) > sim_.now() &&
      st.deferrals < params_.timer_defer_limit) {
    ++st.deferrals;
    const auto wake = net_.channel_quiet_at(self, defer_window(params_.tout_dat, st.deferrals));
    st.adv_timer = sim_.at(wake, [this, self, item] { on_adv_timeout(self, item); });
    return;
  }
  // No relay re-advertised in time: request from the PRONE through the
  // shortest path.
  send_req_via_route(self, item, prone_of(st));
}

void SpmsProtocol::on_dat_timeout(net::NodeId self, net::DataId item) {
  ItemState& st = state(self, item);
  st.dat_timer = sim::EventHandle{};
  if (st.has) {
    st.awaiting = false;
    return;
  }
  // The reply is plainly queued behind traffic we can hear; keep waiting.
  // (Same window discipline as on_adv_timeout: check with the current
  // window, schedule the next wake with the grown one.)
  if (net_.channel_quiet_at(self, defer_window(params_.tout_dat, st.deferrals)) > sim_.now() &&
      st.deferrals < params_.timer_defer_limit) {
    ++st.deferrals;
    const auto wake = net_.channel_quiet_at(self, defer_window(params_.tout_dat, st.deferrals));
    st.dat_timer = sim_.at(wake, [this, self, item] { on_dat_timeout(self, item); });
    return;
  }
  st.awaiting = false;

  if (st.attempts >= params_.max_retries) {
    if (!st.gave_up) {
      st.gave_up = true;
      count_give_up();
      if (sim_.events().enabled()) {
        sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kGiveUp, .node = self,
                            .item = item, .value = static_cast<double>(st.attempts)});
      }
    }
    return;
  }

  // Cross-zone acquisitions have no in-zone originators to escalate to; the
  // recovery is a bounded re-send along the same courier route (the holder
  // or a relay may have been down transiently).
  if (!st.cross_plan.empty()) {
    send_req_cross_zone(self, item, st.cross_first_hop, st.cross_plan);
    return;
  }

  // Escalation ladder (Sections 3.4/3.5):
  //  * a failed multi-hop attempt first re-sends the REQ to the PRONE over
  //    the shortest path ("sends a REQ packet to its PRONE using multi-hop
  //    routing which may go through NC") — the PRONE may have been promoted
  //    to a closer holder meanwhile;
  //  * if that times out too, request DIRECT from the PRONE ("finally
  //    requests the data directly from the PRONE, using a higher
  //    transmission power");
  //  * a failed direct attempt walks the remaining SCONEs, most recently
  //    promoted first;
  //  * after that, resort to the source — every originator is a zone
  //    neighbor, so a direct transmission reaches it once it is back up.
  net::NodeId target;
  if (!st.last_direct) {
    if (!st.multihop_retried) {
      st.multihop_retried = true;
      send_req_via_route(self, item, prone_of(st));
      return;
    }
    target = prone_of(st);
  } else {
    const auto it = std::find(st.originators.begin(), st.originators.end(), st.last_target);
    if (it != st.originators.end() && std::next(it) != st.originators.end()) {
      target = *std::next(it);  // next fallback originator (SCONE, SCONE2, …)
    } else {
      target = item.origin;
      // The origin may be outside our zone (we learned of the item from a
      // relay's ADV); fall back to the PRONE, which never is.
      if (net_.distance_between(self, target) > net_.radio().max_range()) {
        target = prone_of(st);
      }
    }
  }
  send_req_direct(self, item, target);
}

void SpmsProtocol::handle_forwarded_adv(net::NodeId self, const net::Packet& p) {
  const net::NodeId holder = p.target;
  if (self == holder || self == p.item.origin) return;
  ItemState& st = state(self, p.item);
  if (st.has) return;

  if (interest_.wants(self, p.item)) {
    // A distant interested node: the holder is out of our zone, so normal
    // SPMS could never serve us.  Pull along the courier trail — but only
    // when no in-zone acquisition is underway (originators would be set if
    // we had heard a real ADV).
    if (st.awaiting || !st.originators.empty()) return;
    if (st.attempts >= params_.max_retries) return;
    // Plan: reverse the trail (dropping its last element, our immediate
    // courier, which becomes the first hop), then the holder.
    std::vector<net::NodeId> plan(p.route.rbegin(), p.route.rend());
    if (!plan.empty() && plan.front() == p.src) plan.erase(plan.begin());
    plan.push_back(holder);
    send_req_cross_zone(self, p.item, p.src, std::move(plan));
    return;
  }
  maybe_forward_metadata(self, p, holder);
}

void SpmsProtocol::maybe_forward_metadata(net::NodeId self, const net::Packet& p,
                                          net::NodeId holder) {
  if (ext_.cross_zone_ttl == 0) return;
  ItemState& st = state(self, p.item);
  if (st.has || st.adv_forwarded) return;
  if (p.route.size() >= ext_.cross_zone_ttl) return;  // courier budget spent
  // Only border nodes courier: forwarding from deep inside the sender's
  // zone would mostly re-cover the same area.
  if (net_.distance_between(self, p.src) < 0.6 * net_.zone_radius()) return;

  net::Packet fwd;
  fwd.type = net::PacketType::kAdv;
  fwd.item = p.item;
  fwd.target = holder;
  fwd.route = p.route;
  fwd.route.push_back(self);
  fwd.size_bytes = params_.adv_bytes + 4 * fwd.route.size();  // trail ids on the air
  if (net_.send(self, fwd, net_.zone_radius())) {
    st.adv_forwarded = true;
    if (sim_.events().enabled()) {
      sim_.events().emit(
          {.at = sim_.now(), .kind = obs::TraceKind::kSpmsCourierAdv, .node = self, .item = p.item});
    }
  }
}

void SpmsProtocol::send_req_cross_zone(net::NodeId self, net::DataId item,
                                       net::NodeId first_hop, std::vector<net::NodeId> plan) {
  net::Packet req;
  req.type = net::PacketType::kReq;
  req.item = item;
  req.requester = self;
  req.target = plan.empty() ? first_hop : plan.back();
  req.direct = false;
  req.dst = first_hop;
  req.source_route = plan;
  req.size_bytes = params_.req_bytes + 4 * plan.size();
  ItemState& st = state(self, item);
  req.attempt = static_cast<std::uint16_t>(st.attempts + 1);
  const bool sent = net_.send(self, req, net_.distance_between(self, first_hop));
  if (sent && sim_.events().enabled()) {
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpmsReqCrosszone, .node = self,
                        .peer = req.target, .via = first_hop, .item = item});
  }
  ++st.attempts;
  st.last_direct = false;
  st.last_target = req.target;
  st.cross_first_hop = first_hop;
  st.cross_plan = std::move(plan);
  arm_dat_timer(self, item);
}

void SpmsProtocol::handle_req(net::NodeId self, const net::Packet& p) {
  if (p.target == self) {
    ItemState& st = state(self, p.item);
    if (st.has) {
      // Rate-limit service per requester; a retry whose DATA is still queued
      // here must not enqueue another copy.
      auto& served = agents_[self.v].served[p.item];
      const auto it = served.find(p.requester);
      if (it == served.end() || sim_.now() - it->second >= params_.service_guard) {
        served[p.requester] = sim_.now();
        answer_req(self, p);
      }
    }
    // else: stale request (we never had the data, or a crash wiped the
    // advertisement race); the requester's tau_DAT recovers.
    return;
  }
  forward_req(self, p);
}

void SpmsProtocol::answer_req(net::NodeId self, const net::Packet& req) {
  net::Packet data;
  data.type = net::PacketType::kData;
  data.item = req.item;
  data.requester = req.requester;
  data.holder = self;
  data.size_bytes = params_.data_bytes;
  if (req.direct) {
    // "r1 … sends the data as direct transmission because that was the
    // route followed by the REQ packet."
    data.dst = req.requester;
    net_.send(self, data, net_.distance_between(self, req.requester));
    return;
  }
  // Multi-hop: send the data back along the reverse of the REQ's relay
  // trail ("the data is sent in exactly the same manner as the received
  // request").
  data.route.assign(req.route.rbegin(), req.route.rend());
  const net::NodeId first = data.route.empty() ? req.requester : data.route.front();
  data.dst = first;
  net_.send(self, data, net_.distance_between(self, first));
}

void SpmsProtocol::forward_req(net::NodeId self, net::Packet req) {
  if (sim_.events().enabled()) {
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpmsRelayReq, .node = self,
                        .peer = req.requester, .via = req.target, .item = req.item});
  }
  if (!req.source_route.empty()) {
    // Cross-zone REQ: consume the pre-planned hop and keep the trail for the
    // DATA's return trip, exactly like a table-routed relay would.
    const net::NodeId next = req.source_route.front();
    req.source_route.erase(req.source_route.begin());
    req.route.push_back(self);
    req.dst = next;
    net_.send(self, req, net_.distance_between(self, next));
    return;
  }
  net::NodeId next = routing_.next_hop(self, req.target);
  if (!next.valid()) {
    // No zone-local route from this relay; fall back to a direct hop when
    // physically possible, otherwise drop and let tau_DAT recover.
    if (net_.distance_between(self, req.target) <= net_.radio().max_range()) {
      next = req.target;
    } else {
      unroutable_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
  }
  req.route.push_back(self);
  req.dst = next;
  net_.send(self, req, net_.distance_between(self, next));
}

void SpmsProtocol::forward_data(net::NodeId self, net::Packet data) {
  if (sim_.events().enabled()) {
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpmsRelayData, .node = self,
                        .peer = data.requester, .item = data.item});
  }
  assert(!data.route.empty() && data.route.front() == self);
  data.route.erase(data.route.begin());
  const net::NodeId next = data.route.empty() ? data.requester : data.route.front();
  data.dst = next;
  net_.send(self, data, net_.distance_between(self, next));
}

void SpmsProtocol::handle_data(net::NodeId self, const net::Packet& p) {
  if (p.requester != self) {
    // We are a relay on the source route.  The published protocol forwards
    // without caching; the relay_caching extension (the paper's Section 6
    // future work) keeps a copy and re-advertises it like a receiver, which
    // shortens recovery paths and adds originator diversity.
    if (ext_.relay_caching) {
      ItemState& st = state(self, p.item);
      if (!st.has) {
        st.has = true;
        st.awaiting = false;
        sim_.cancel(st.adv_timer);
        sim_.cancel(st.dat_timer);
        st.adv_timer = st.dat_timer = sim::EventHandle{};
        if (sim_.events().enabled()) {
          // The cached copy makes this relay a holder in its own right; its
          // span needs a data record so downstream journeys it later serves
          // chain through it back to the origin.
          sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpmsData, .node = self,
                              .peer = p.src, .parent = p.holder, .item = p.item});
        }
        if (interest_.wants(self, p.item)) notify_delivered(self, p.item, sim_.now());
        broadcast_adv(self, p.item);
      }
    }
    forward_data(self, p);
    return;
  }
  ItemState& st = state(self, p.item);
  if (st.has) return;  // duplicate (e.g. an escalated retry raced the original)
  st.has = true;
  st.awaiting = false;
  sim_.cancel(st.adv_timer);
  sim_.cancel(st.dat_timer);
  st.adv_timer = st.dat_timer = sim::EventHandle{};
  if (sim_.events().enabled()) {
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpmsData, .node = self,
                        .peer = p.src, .parent = p.holder, .item = p.item});
  }
  if (interest_.wants(self, p.item)) notify_delivered(self, p.item, sim_.now());
  // "a node [advertises] its own data as well as all received data once."
  broadcast_adv(self, p.item);
}

void SpmsProtocol::handle_down(net::NodeId self) {
  // The MAC queue is already gone; stop every timer so the crashed node
  // takes no autonomous action until repair.
  for (auto& [item, st] : agents_[self.v].items) {
    sim_.cancel(st.adv_timer);
    sim_.cancel(st.dat_timer);
    st.adv_timer = st.dat_timer = sim::EventHandle{};
    st.awaiting = false;
  }
}

void SpmsProtocol::handle_up(net::NodeId self) {
  for (auto& [item, st] : agents_[self.v].items) {
    if (st.has) {
      if (!st.advertised) broadcast_adv(self, item);  // ADV lost to the crash
      continue;
    }
    if (!interest_.wants(self, item) || st.originators.empty()) continue;
    // Recovery resets the retry budget (failures are transient, so a stale
    // cap must not strand the item forever).
    if (st.attempts >= params_.max_retries) {
      st.attempts = 0;
      st.multihop_retried = false;
    }
    // Resume the acquisition: give relays a tau_ADV window to re-advertise
    // (our state may be stale), then fall back to the shortest path.
    const auto item_copy = item;
    sim_.cancel(st.adv_timer);
    st.adv_timer =
        sim_.after(params_.tout_adv, [this, self, item_copy] { on_adv_timeout(self, item_copy); });
  }
}

}  // namespace spms::core
