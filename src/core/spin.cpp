#include "core/spin.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "obs/event_trace.hpp"

namespace spms::core {

namespace {

/// Quiet-window for the deferral with index `deferrals`; grows geometrically
/// (doubles every 8 deferrals, capped at 256x) so a requester stuck behind a
/// long congested phase wakes O(log) times instead of polling every tout_dat.
sim::Duration defer_window(sim::Duration base, int deferrals) {
  const double growth = std::min(std::pow(2.0, static_cast<double>(deferrals) / 8.0), 256.0);
  return base * growth;
}

}  // namespace

SpinProtocol::SpinProtocol(sim::Simulation& sim, net::Network& net, const Interest& interest,
                           ProtocolParams params)
    : sim_(sim), net_(net), interest_(interest), params_(params) {
  agents_.reserve(net_.size());
  for (std::size_t i = 0; i < net_.size(); ++i) {
    const net::NodeId id{static_cast<std::uint32_t>(i)};
    agents_.emplace_back(*this, id, arena_);
    net_.set_agent(id, &agents_.back());
  }
}

SpinProtocol::~SpinProtocol() {
  for (std::size_t i = 0; i < agents_.size(); ++i) {
    net_.set_agent(net::NodeId{static_cast<std::uint32_t>(i)}, nullptr);
  }
}

void SpinProtocol::publish(net::NodeId source, net::DataId item) {
  assert(item.origin == source);
  ItemState& st = state(source, item);
  st.has = true;
  broadcast_adv(source, item);
}

void SpinProtocol::broadcast_adv(net::NodeId self, net::DataId item) {
  ItemState& st = state(self, item);
  if (st.advertised) return;  // "advertise … once amongst its neighbors"
  net::Packet adv;
  adv.type = net::PacketType::kAdv;
  adv.item = item;
  adv.size_bytes = params_.adv_bytes;
  // SPIN's single power level: everything goes at the zone radius.
  if (net_.send(self, adv, net_.zone_radius())) {
    st.advertised = true;
    if (sim_.events().enabled()) {
      sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpinAdv, .node = self, .item = item});
    }
  }
}

void SpinProtocol::send_req(net::NodeId self, net::DataId item, net::NodeId to) {
  ItemState& st = state(self, item);
  ++st.attempts;
  net::Packet req;
  req.type = net::PacketType::kReq;
  req.item = item;
  req.requester = self;
  req.target = to;
  req.direct = true;
  req.attempt = static_cast<std::uint16_t>(st.attempts);
  req.dst = to;
  req.size_bytes = params_.req_bytes;
  // Full-power unicast: SPIN does not adapt the level to the distance.
  if (net_.send(self, req, net_.zone_radius())) {
    st.pending = true;
    st.advertiser = to;
    if (sim_.events().enabled()) {
      sim_.events().emit(
          {.at = sim_.now(), .kind = obs::TraceKind::kSpinReq, .node = self, .peer = to, .item = item});
    }
    arm_retry(self, item);
  }
}

void SpinProtocol::arm_retry(net::NodeId self, net::DataId item) {
  ItemState& st = state(self, item);
  sim_.cancel(st.retry);
  // Exponential backoff: under load the reply may simply still be queued.
  const int exp = std::min(std::max(st.attempts - 1, 0), params_.max_backoff_exp);
  const auto wait = params_.tout_dat * std::pow(params_.retry_backoff, exp);
  st.retry = sim_.after(wait, [this, self, item] { on_retry_timeout(self, item); });
}

void SpinProtocol::on_retry_timeout(net::NodeId self, net::DataId item) {
  ItemState& st = state(self, item);
  st.retry = sim::EventHandle{};
  if (st.has) return;
  // Audible traffic: the DATA is queued somewhere we can hear; keep waiting.
  // Check with the current window, schedule the next wake with the grown
  // one, so a quiet channel always lets the timer fire on schedule.
  if (net_.channel_quiet_at(self, defer_window(params_.tout_dat, st.deferrals)) > sim_.now() &&
      st.deferrals < params_.timer_defer_limit) {
    ++st.deferrals;
    const auto wake = net_.channel_quiet_at(self, defer_window(params_.tout_dat, st.deferrals));
    st.retry = sim_.at(wake, [this, self, item] { on_retry_timeout(self, item); });
    return;
  }
  st.pending = false;
  if (st.attempts >= params_.max_retries) {
    if (!st.gave_up) {
      st.gave_up = true;
      count_give_up();
      if (sim_.events().enabled()) {
        sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kGiveUp, .node = self,
                            .item = item, .value = static_cast<double>(st.attempts)});
      }
    }
    return;
  }
  // Re-request from the advertiser we last heard; it may have been down
  // transiently when our REQ (or its DATA) was lost.
  if (st.advertiser.valid()) send_req(self, item, st.advertiser);
}

void SpinProtocol::handle_receive(net::NodeId self, const net::Packet& p) {
  switch (p.type) {
    case net::PacketType::kAdv: handle_adv(self, p); break;
    case net::PacketType::kReq: handle_req(self, p); break;
    case net::PacketType::kData: handle_data(self, p); break;
    case net::PacketType::kRouteUpdate: break;  // SPIN has no routing layer
  }
}

void SpinProtocol::handle_adv(net::NodeId self, const net::Packet& p) {
  ItemState& st = state(self, p.item);
  if (st.has || st.pending) return;
  st.advertiser = p.src;
  if (!interest_.wants(self, p.item)) return;  // metadata negotiation: skip unwanted data
  if (st.attempts >= params_.max_retries) st.attempts = 0;  // fresh advertiser: budget resets
  send_req(self, p.item, p.src);
}

void SpinProtocol::handle_req(net::NodeId self, const net::Packet& p) {
  ItemState& st = state(self, p.item);
  if (!st.has) return;  // stale request (e.g. we crashed before acquiring it)
  // Rate-limit service per requester: a spurious retry whose DATA is still
  // in our MAC queue must not enqueue a second copy.
  auto& served = agents_[self.v].served[p.item];
  const auto it = served.find(p.requester);
  if (it != served.end() && sim_.now() - it->second < params_.service_guard) return;
  served[p.requester] = sim_.now();
  net::Packet data;
  data.type = net::PacketType::kData;
  data.item = p.item;
  data.requester = p.requester;
  data.holder = self;
  data.dst = p.requester;
  data.size_bytes = params_.data_bytes;
  net_.send(self, data, net_.zone_radius());
}

void SpinProtocol::handle_data(net::NodeId self, const net::Packet& p) {
  ItemState& st = state(self, p.item);
  if (st.has) return;  // duplicate
  st.has = true;
  st.pending = false;
  sim_.cancel(st.retry);
  st.retry = sim::EventHandle{};
  if (sim_.events().enabled()) {
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kSpinData, .node = self,
                        .peer = p.src, .parent = p.holder, .item = p.item});
  }
  if (interest_.wants(self, p.item)) notify_delivered(self, p.item, sim_.now());
  broadcast_adv(self, p.item);
}

void SpinProtocol::handle_down(net::NodeId self) {
  // "Any scheduled packet transfer is cancelled": the network cleared the
  // MAC queue; we additionally stop our timers and forget in-flight REQs.
  for (auto& [item, st] : agents_[self.v].items) {
    sim_.cancel(st.retry);
    st.retry = sim::EventHandle{};
    st.pending = false;
  }
}

void SpinProtocol::handle_up(net::NodeId self) {
  for (auto& [item, st] : agents_[self.v].items) {
    if (st.has) {
      // A publish or re-advertisement that fell into the down window never
      // made it out; advertise now so the item is not lost to the network.
      if (!st.advertised) broadcast_adv(self, item);
      continue;
    }
    if (interest_.wants(self, item) && st.advertiser.valid()) {
      // Recovery resets the retry budget: our counterparts are transient
      // failures too, so the acquisition is worth a fresh wave.
      if (st.attempts >= params_.max_retries) st.attempts = 0;
      send_req(self, item, st.advertiser);
    }
  }
}

}  // namespace spms::core
