#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

/// \file worker_pool.hpp
/// Persistent worker pool for deterministic parallel dispatch.
///
/// run(fn) invokes fn(worker) on every worker concurrently — the calling
/// thread participates as worker 0, `size() - 1` pool threads take workers
/// 1..size()-1 — and returns once all invocations finish.  The pool persists
/// across batches so the per-batch cost is one wakeup broadcast plus one
/// barrier, not thread creation.
///
/// Memory ordering: the mutex/condition-variable handoff sequences every
/// write the caller makes before run() before the workers' reads, and every
/// worker write before the caller's reads after run() returns — the batch
/// arrays and journals the scheduler shares with workers need no atomics of
/// their own across the phase boundary.

namespace spms::sim {

class WorkerPool {
 public:
  /// Spawns `threads - 1` pool threads (a 1-thread pool spawns none and
  /// run() degenerates to a plain call).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Total workers, calling thread included.
  [[nodiscard]] std::size_t size() const { return size_; }

  /// Runs fn(worker) on all workers; blocks until every one returns.
  void run(const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop(std::size_t worker);

  std::size_t size_ = 1;
  std::vector<std::thread> threads_;
  std::mutex mu_;
  std::condition_variable start_cv_;
  std::condition_variable done_cv_;
  const std::function<void(std::size_t)>* job_ = nullptr;
  std::uint64_t generation_ = 0;  ///< bumped per run(); workers wait on it
  std::size_t outstanding_ = 0;
  bool stop_ = false;
};

}  // namespace spms::sim
