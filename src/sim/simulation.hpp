#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "obs/event_trace.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"
#include "sim/worker_pool.hpp"

/// \file simulation.hpp
/// The simulation context: clock + event queue + seeded randomness + trace.
///
/// Every model object (radio medium, MAC, protocol agent, failure injector…)
/// holds a reference to one Simulation and interacts with the world only
/// through it, which keeps runs deterministic and modules decoupled.

namespace spms::sim {

/// Owns the scheduler, the root RNG and the trace hub for one run.
class Simulation {
 public:
  /// \param seed  Root seed; all randomness in the run derives from it.
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const Scheduler& scheduler() const { return sched_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }
  /// The typed event trace; emit sites guard on events().enabled().
  [[nodiscard]] obs::EventTrace& events() { return events_; }
  [[nodiscard]] const obs::EventTrace& events() const { return events_; }

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return sched_.now(); }

  /// Schedules `fn` at absolute time `t`.  The footprint overloads declare
  /// the event's conflict region for parallel dispatch (footprint.hpp); the
  /// plain overloads tag kGlobal, which is always safe.
  EventHandle at(TimePoint t, EventFn fn) { return sched_.schedule_at(t, std::move(fn)); }
  EventHandle at(TimePoint t, EventFn fn, const Footprint& fp) {
    return sched_.schedule_at(t, std::move(fn), fp);
  }

  /// Schedules `fn` after `d` from now.
  EventHandle after(Duration d, EventFn fn) { return sched_.schedule_after(d, std::move(fn)); }
  EventHandle after(Duration d, EventFn fn, const Footprint& fp) {
    return sched_.schedule_after(d, std::move(fn), fp);
  }

  /// Schedules `fn` at `base + extra + unit * U[0, slots-1]` with the slot
  /// drawn from the root RNG — in program order when sequential, in
  /// canonical commit order during parallel batches (see scheduler.hpp).
  EventHandle at_backoff(TimePoint base, Duration extra, Duration unit, int slots, EventFn fn,
                         const Footprint& fp) {
    return sched_.schedule_backoff(base, extra, unit, slots, rng_, std::move(fn), fp);
  }

  /// Cancels a pending event (no-op on invalid/fired handles).
  void cancel(EventHandle h) { sched_.cancel(h); }

  /// Runs `fn` now (sequential mode) or in the canonical commit phase of
  /// the current batch (parallel group execution).  Order-sensitive
  /// observers — collector records, fault bookkeeping — route through this.
  void defer_serial(EventFn fn) { sched_.run_serial(std::move(fn)); }

  /// True while parallel group execution is in flight; observer wiring uses
  /// this to decide between a direct call and defer_serial.
  [[nodiscard]] bool in_parallel_phase() const { return sched_.in_parallel_phase(); }

  /// Worker threads for the dispatch loop.  Purely an execution detail —
  /// results are byte-identical at any setting — so it lives outside
  /// ExperimentConfig and the store's config key, like --jobs.  0 and 1 both
  /// mean sequential; values clamp to Scheduler::kMaxWorkers.
  void set_threads(std::size_t threads) {
    threads_ = std::min(threads, Scheduler::kMaxWorkers);
  }
  [[nodiscard]] std::size_t threads() const { return threads_; }

  /// Runs to quiescence; returns number of events executed.  Dispatches to
  /// the parallel loop when threads() > 1 and nothing requires per-event
  /// sequential observation (typed trace, dispatch hook) — both paths
  /// produce byte-identical results; the sequential one is the baseline.
  std::size_t run(std::size_t max_events = Scheduler::kDefaultMaxEvents) {
    if (threads_ <= 1 || events_.enabled() || sched_.has_dispatch_hook()) {
      return sched_.run(max_events);
    }
    if (!pool_ || pool_->size() != threads_) pool_ = std::make_unique<WorkerPool>(threads_);
    return sched_.run_parallel(max_events, *pool_, rng_);
  }

  /// Runs all events up to and including time `until` (always sequential).
  std::size_t run_until(TimePoint until) { return sched_.run_until(until); }

 private:
  Scheduler sched_;
  Rng rng_;
  obs::EventTrace events_;
  Trace trace_{events_};  ///< legacy string adapter over events_
  std::size_t threads_ = 1;
  std::unique_ptr<WorkerPool> pool_;
};

}  // namespace spms::sim
