#pragma once

#include <cstdint>
#include <utility>

#include "obs/event_trace.hpp"
#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"
#include "sim/trace.hpp"

/// \file simulation.hpp
/// The simulation context: clock + event queue + seeded randomness + trace.
///
/// Every model object (radio medium, MAC, protocol agent, failure injector…)
/// holds a reference to one Simulation and interacts with the world only
/// through it, which keeps runs deterministic and modules decoupled.

namespace spms::sim {

/// Owns the scheduler, the root RNG and the trace hub for one run.
class Simulation {
 public:
  /// \param seed  Root seed; all randomness in the run derives from it.
  explicit Simulation(std::uint64_t seed = 1) : rng_(seed) {}

  Simulation(const Simulation&) = delete;
  Simulation& operator=(const Simulation&) = delete;

  [[nodiscard]] Scheduler& scheduler() { return sched_; }
  [[nodiscard]] const Scheduler& scheduler() const { return sched_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] Trace& trace() { return trace_; }
  [[nodiscard]] const Trace& trace() const { return trace_; }
  /// The typed event trace; emit sites guard on events().enabled().
  [[nodiscard]] obs::EventTrace& events() { return events_; }
  [[nodiscard]] const obs::EventTrace& events() const { return events_; }

  /// Current simulated time.
  [[nodiscard]] TimePoint now() const { return sched_.now(); }

  /// Schedules `fn` at absolute time `t`.
  EventHandle at(TimePoint t, EventFn fn) { return sched_.schedule_at(t, std::move(fn)); }

  /// Schedules `fn` after `d` from now.
  EventHandle after(Duration d, EventFn fn) { return sched_.schedule_after(d, std::move(fn)); }

  /// Cancels a pending event (no-op on invalid/fired handles).
  void cancel(EventHandle h) { sched_.cancel(h); }

  /// Runs to quiescence; returns number of events executed.
  std::size_t run(std::size_t max_events = Scheduler::kDefaultMaxEvents) { return sched_.run(max_events); }

  /// Runs all events up to and including time `until`.
  std::size_t run_until(TimePoint until) { return sched_.run_until(until); }

 private:
  Scheduler sched_;
  Rng rng_;
  obs::EventTrace events_;
  Trace trace_{events_};  ///< legacy string adapter over events_
};

}  // namespace spms::sim
