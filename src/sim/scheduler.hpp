#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <vector>

#include "sim/callback.hpp"
#include "sim/footprint.hpp"
#include "sim/time.hpp"

/// \file scheduler.hpp
/// The event loop at the heart of the discrete-event simulator.
///
/// Events are callbacks ordered by (time, insertion sequence); ties on the
/// clock break FIFO, which makes runs deterministic.  The queue is an
/// intrusive, handle-indexed 4-ary min-heap:
///
///  * heap_ holds 24-byte {time, seq, slot} entries — sift operations move
///    PODs, never callbacks;
///  * slots_ holds the callbacks plus, per slot, the entry's current heap
///    position (so cancel() can remove it in O(log n)) and a generation
///    counter;
///  * an EventHandle packs (generation << 32 | slot+1).  Firing or
///    cancelling bumps the slot's generation, so a stale handle — already
///    fired, already cancelled, or from a recycled slot — never matches and
///    cancel() on it is a harmless no-op.
///
/// Invariants:
///  * slots_[heap_[i].slot].heap_pos == i for every queued entry;
///  * a slot is queued iff its generation matches some live handle;
///    free slots chain through heap_pos as a free list;
///  * seq increases by one per schedule_*() call (never reused), so FIFO
///    tie-breaking is identical to the seed scheduler's and byte-for-byte
///    reproducibility is preserved;
///  * pending() == heap_.size() — O(1), no side tables: cancellation is
///    true removal, so there are no dead entries to discount (the seed's
///    lazy-cancel live_/cancelled_ hash sets are gone).
///
/// Parallel dispatch (run_parallel, implemented in parallel.cpp): the full
/// batch of events sharing the earliest timestamp is popped at once,
/// partitioned into spatially-independent groups by footprint (see
/// footprint.hpp), the groups execute concurrently on a WorkerPool, and all
/// side effects that feed the deterministic order — new schedules (their seq
/// numbers and backoff draws), cancellations of queued events, serial
/// closures — are journaled per worker and committed in canonical batch
/// order afterwards.  The committed sequence of seq assignments, RNG draws
/// and serial calls is exactly the one the sequential loop produces, so runs
/// are byte-identical at any thread count.

namespace spms::sim {

class Rng;
class WorkerPool;

/// Callback invoked when an event fires (small-buffer-optimized; see
/// callback.hpp — typical closures schedule without allocating).
using EventFn = InlineFn;

/// Index of the parallel-dispatch worker executing on this thread, or -1
/// outside parallel group execution (sequential mode, commit phase, and all
/// non-worker threads).  Model code uses this to select per-worker scratch.
[[nodiscard]] int current_worker();

/// Opaque handle to a scheduled event; used only for cancellation.
/// A default-constructed handle is invalid and safe to cancel (a no-op).
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Handle-indexed 4-ary-heap event scheduler.
///
/// Usage:
///   Scheduler s;
///   s.schedule_after(Duration::ms(1.0), [&]{ ... });
///   s.run();
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time (the firing time of the last executed event).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at`.  Scheduling in the past is a
  /// programming error and is clamped to `now()` (the event still runs).
  /// The footprint overloads declare the event's conflict region for
  /// parallel dispatch; the plain overloads tag kGlobal (always safe).
  EventHandle schedule_at(TimePoint at, EventFn fn) {
    return schedule_at(at, std::move(fn), Footprint::global());
  }
  EventHandle schedule_at(TimePoint at, EventFn fn, const Footprint& fp);

  /// Schedules `fn` after delay `d` from now.  Negative delays clamp to 0.
  EventHandle schedule_after(Duration d, EventFn fn) {
    return schedule_after(d, std::move(fn), Footprint::global());
  }
  EventHandle schedule_after(Duration d, EventFn fn, const Footprint& fp);

  /// Schedules `fn` at `base + extra + unit * U[0, slots-1]`, drawing the
  /// uniform backoff slot from `rng`.  `slots <= 1` draws nothing (the event
  /// fires at base + extra).  In sequential mode the draw happens here, in
  /// the caller's program order; during parallel group execution the draw is
  /// journaled and resolved at commit time in canonical batch order — which
  /// is exactly the order the sequential loop would have drawn in, because
  /// backoff values only parametrize a future firing time and are never
  /// needed before the batch completes.
  EventHandle schedule_backoff(TimePoint base, Duration extra, Duration unit, int slots,
                               Rng& rng, EventFn fn, const Footprint& fp);

  /// Cancels a pending event: O(log n) true removal from the heap.
  /// Cancelling an already-fired, already-cancelled, or invalid handle is a
  /// harmless no-op (the generation check rejects stale handles).
  void cancel(EventHandle h);

  /// Journals `fn` for execution in the canonical commit phase when called
  /// during parallel group execution; calls it immediately otherwise.
  /// Order-sensitive observers (collector records, fault bookkeeping) route
  /// through this so their call sequence matches the sequential run.
  void run_serial(EventFn fn);

  /// True while parallel group execution is in flight on some worker.
  [[nodiscard]] bool in_parallel_phase() const { return deferred_; }

  /// Runs the next pending event.  Returns false if the queue is empty.
  bool run_one();

  /// Runs events with firing time <= `until`.  Afterwards now() == `until`
  /// unless the queue drained earlier.  Returns the number executed.
  std::size_t run_until(TimePoint until);

  /// Runs until the queue is empty.  Returns the number executed.
  /// `max_events` guards against runaway feedback loops; hitting the guard
  /// stops the loop (callers treat this as a failed run).
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Parallel dispatch loop (parallel.cpp): same contract and results as
  /// run(), executing conflict-free same-time batches on `pool`.  `rng` is
  /// the root generator backoff draws resolve against at commit.  The caller
  /// guarantees no dispatch hook is set and the typed trace is disabled
  /// (Simulation::run enforces both and falls back to run() otherwise).
  std::size_t run_parallel(std::size_t max_events, WorkerPool& pool, Rng& rng);

  /// Number of pending events — O(1) off the heap size.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Cumulative events executed / cancelled over the scheduler's lifetime
  /// (observability counters; pending() is the matching depth gauge).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

  /// Parallel-dispatch observability: batches popped, batches that actually
  /// ran multi-group on the pool, events inside those batches, and groups
  /// dispatched.  All zero in sequential runs.
  struct ParallelStats {
    std::uint64_t batches = 0;           ///< same-time batches popped (size >= 1)
    std::uint64_t parallel_batches = 0;  ///< batches executed on the pool
    std::uint64_t parallel_events = 0;   ///< events inside pool batches
    std::uint64_t parallel_groups = 0;   ///< independent groups dispatched
  };
  [[nodiscard]] const ParallelStats& parallel_stats() const { return pstats_; }

  /// Invalidates every spatial footprint tagged so far (and, transitively,
  /// the soundness of grouping decisions derived from stale positions).
  /// Network::set_position calls this on every mobility teleport: events
  /// tagged before the move are treated as global until they fire, and
  /// events tagged afterwards see the new positions.
  void invalidate_spatial_footprints() { ++spatial_epoch_; }

  /// Observation hook called after each executed event, at the event's
  /// firing time.  Strictly read-only with respect to the event stream: the
  /// hook must not schedule, cancel, or draw randomness (the telemetry
  /// Sampler snapshots gauges here).  Pass nullptr to clear.  Disabled cost
  /// is a single branch per event.
  using DispatchHook = std::function<void(TimePoint)>;
  void set_dispatch_hook(DispatchHook hook) { dispatch_hook_ = std::move(hook); }
  [[nodiscard]] bool has_dispatch_hook() const { return static_cast<bool>(dispatch_hook_); }

  /// True if the guard in run() ever tripped (sticky across run() calls: a
  /// poisoned run stays poisoned even if a later drain succeeds).
  [[nodiscard]] bool event_limit_hit() const { return limit_hit_; }

  static constexpr std::size_t kDefaultMaxEvents = 500'000'000;

  /// Worker-count ceiling for parallel dispatch (the journal locator packs
  /// the worker index into 6 bits; see kPosJournal).
  static constexpr std::size_t kMaxWorkers = 64;

 private:
  friend class SchedulerBatchTestPeer;  // white-box batch-equivalence tests

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  // heap_pos tag bits.  An untagged value (< 2^30) is a real heap position
  // or, for free slots, the next-free link.  While a slot's event sits in a
  // popped batch its heap_pos becomes kPosBatch | batch-index; while its
  // schedule is journaled (deferred, not yet committed) it becomes
  // kPosJournal | worker << 24 | op-index, so cancel() can find and kill the
  // pending op in O(1).
  static constexpr std::uint32_t kPosTagMask = 0xc0000000u;
  static constexpr std::uint32_t kPosBatch = 0x80000000u;
  static constexpr std::uint32_t kPosJournal = 0x40000000u;
  static constexpr std::uint32_t kJournalWorkerShift = 24;
  static constexpr std::uint32_t kJournalOpMask = (1u << kJournalWorkerShift) - 1;

  /// One heap entry: the ordering key plus the index of its slot.  Sift
  /// operations move these 24-byte PODs; the callback never moves.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// Callback storage, handle generation, and the entry's heap position
  /// (doubles as the next-free link while the slot is on the free list).
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    std::uint32_t heap_pos = 0;
    Footprint fp;
    std::uint32_t fp_epoch = 0;  ///< spatial_epoch_ at tagging time
  };

  /// One member of a popped same-time batch.  `fn` stays in the slot until
  /// execution; ops_{worker,begin,end} locate the member's journaled side
  /// effects for the commit walk.
  struct BatchItem {
    std::uint32_t slot = 0;
    std::uint64_t seq = 0;
    Footprint fp;  ///< kGlobal here also encodes a stale spatial epoch
    std::uint32_t ops_worker = 0;
    std::uint32_t ops_begin = 0;
    std::uint32_t ops_end = 0;
    std::uint8_t dead = 0;      ///< cancelled by an earlier same-batch event
    std::uint8_t executed = 0;
  };

  /// A journaled side effect of a parallel-executing event, committed in
  /// canonical order.  kSchedule ops pre-acquired their slot (so the handle
  /// could be returned immediately) but consume their seq number — and any
  /// backoff draw — only at commit, in exactly the sequential order.
  struct DeferredOp {
    enum class Kind : std::uint8_t { kSchedule, kCancel, kSerial };
    Kind kind = Kind::kSchedule;
    std::uint8_t dead = 0;        ///< schedule cancelled before commit: burn seq + draw
    std::int32_t draw_slots = 0;  ///< > 1: uniform backoff draw at commit
    TimePoint at;                 ///< schedule: base firing time (clamped)
    Duration unit;                ///< backoff slot width
    std::uint32_t slot = 0;       ///< schedule: pre-acquired slot index
    EventHandle target;           ///< cancel
    EventFn fn;                   ///< schedule / serial payload
    Footprint fp;
    std::uint32_t fp_epoch = 0;
  };

  struct WorkerJournal {
    std::vector<DeferredOp> ops;
  };

  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t s);

  /// Moves heap_[pos] up/down to restore the heap invariant, maintaining
  /// slots_[*].heap_pos.  Returns the entry's final position.
  std::uint32_t sift_up(std::uint32_t pos);
  std::uint32_t sift_down(std::uint32_t pos);

  /// Removes the entry at heap position `pos` (swap-with-last + re-sift).
  void remove_heap_at(std::uint32_t pos);

  /// Inserts an already-slotted event into the heap (shared by the direct
  /// schedule path and the commit walk).
  void push_heap_entry(TimePoint at, std::uint64_t seq, std::uint32_t s);

  // --- parallel dispatch internals (parallel.cpp) ---------------------------
  EventHandle schedule_deferred(TimePoint at, Duration unit, int slots, EventFn fn,
                                const Footprint& fp);
  void cancel_deferred(EventHandle h);
  /// Pops every event sharing the earliest timestamp (at most `max_n`) into
  /// batch_, advancing now() to that timestamp.
  void pop_batch(std::size_t max_n);
  /// Executes the popped batch sequentially, side effects applied inline
  /// (the degenerate path: byte-identical to repeated run_one()).
  std::size_t run_batch_direct();
  /// Partitions batch_ into independent groups by footprint; returns the
  /// group count.  group_of_/groups_ reused across batches.
  std::size_t build_groups();
  /// Executes the grouped batch on the pool, then commits journals.
  std::size_t run_batch_parallel(WorkerPool& pool, Rng& rng);
  void commit_batch(Rng& rng);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  DispatchHook dispatch_hook_;
  bool limit_hit_ = false;

  // --- parallel dispatch state ----------------------------------------------
  bool deferred_ = false;  ///< workers journal side effects while true
  std::uint32_t spatial_epoch_ = 0;
  std::mutex slots_mutex_;  ///< guards slots_/free list during the parallel phase
  std::vector<BatchItem> batch_;
  std::vector<WorkerJournal> journals_;
  ParallelStats pstats_;
  // Grouping scratch (union-find over batch indices + cell buckets).
  std::vector<std::uint32_t> uf_parent_;
  std::vector<std::uint32_t> group_of_;
  std::vector<std::vector<std::uint32_t>> groups_;
  std::size_t n_groups_ = 0;  ///< groups_[0..n_groups_) valid for this batch
  std::vector<std::pair<std::uint64_t, std::uint32_t>> cell_entries_;
};

}  // namespace spms::sim
