#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

/// \file scheduler.hpp
/// The event loop at the heart of the discrete-event simulator.
///
/// Events are closures ordered by (time, insertion sequence); ties on the
/// clock break FIFO which makes runs deterministic.  Cancellation is lazy:
/// cancelled ids are skipped when popped, so cancel() is O(1).

namespace spms::sim {

/// Callback invoked when an event fires.
using EventFn = std::function<void()>;

/// Opaque handle to a scheduled event; used only for cancellation.
/// A default-constructed handle is invalid and safe to cancel (a no-op).
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Priority-queue event scheduler.
///
/// Usage:
///   Scheduler s;
///   s.schedule_after(Duration::ms(1.0), [&]{ ... });
///   s.run();
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time (the firing time of the last executed event).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at`.  Scheduling in the past is a
  /// programming error and is clamped to `now()` (the event still runs).
  EventHandle schedule_at(TimePoint at, EventFn fn);

  /// Schedules `fn` after delay `d` from now.  Negative delays clamp to 0.
  EventHandle schedule_after(Duration d, EventFn fn);

  /// Cancels a pending event.  Cancelling an already-fired, already-
  /// cancelled, or invalid handle is a harmless no-op.
  void cancel(EventHandle h);

  /// Runs the next pending event.  Returns false if the queue is empty.
  bool run_one();

  /// Runs events with firing time <= `until`.  Afterwards now() == `until`
  /// unless the queue drained earlier.  Returns the number executed.
  std::size_t run_until(TimePoint until);

  /// Runs until the queue is empty.  Returns the number executed.
  /// `max_events` guards against runaway feedback loops; hitting the guard
  /// stops the loop (callers treat this as a failed run).
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Number of live (non-cancelled) pending events.
  [[nodiscard]] std::size_t pending() const { return live_.size(); }

  /// True if the guard in run() tripped.
  [[nodiscard]] bool event_limit_hit() const { return limit_hit_; }

  static constexpr std::size_t kDefaultMaxEvents = 500'000'000;

 private:
  struct Entry {
    TimePoint at;
    std::uint64_t seq = 0;
    std::uint64_t id = 0;
    EventFn fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  /// Pops the next non-cancelled entry into `out`; false if none remain.
  bool pop_live(Entry& out);

  std::priority_queue<Entry, std::vector<Entry>, Later> queue_;
  /// Ids still in the queue and not cancelled.  cancel() consults this so a
  /// stale handle (already fired or already cancelled) never pollutes
  /// cancelled_, which must only ever name entries still queued.
  std::unordered_set<std::uint64_t> live_;
  std::unordered_set<std::uint64_t> cancelled_;
  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  bool limit_hit_ = false;
};

}  // namespace spms::sim
