#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "sim/callback.hpp"
#include "sim/time.hpp"

/// \file scheduler.hpp
/// The event loop at the heart of the discrete-event simulator.
///
/// Events are callbacks ordered by (time, insertion sequence); ties on the
/// clock break FIFO, which makes runs deterministic.  The queue is an
/// intrusive, handle-indexed 4-ary min-heap:
///
///  * heap_ holds 24-byte {time, seq, slot} entries — sift operations move
///    PODs, never callbacks;
///  * slots_ holds the callbacks plus, per slot, the entry's current heap
///    position (so cancel() can remove it in O(log n)) and a generation
///    counter;
///  * an EventHandle packs (generation << 32 | slot+1).  Firing or
///    cancelling bumps the slot's generation, so a stale handle — already
///    fired, already cancelled, or from a recycled slot — never matches and
///    cancel() on it is a harmless no-op.
///
/// Invariants:
///  * slots_[heap_[i].slot].heap_pos == i for every queued entry;
///  * a slot is queued iff its generation matches some live handle;
///    free slots chain through heap_pos as a free list;
///  * seq increases by one per schedule_*() call (never reused), so FIFO
///    tie-breaking is identical to the seed scheduler's and byte-for-byte
///    reproducibility is preserved;
///  * pending() == heap_.size() — O(1), no side tables: cancellation is
///    true removal, so there are no dead entries to discount (the seed's
///    lazy-cancel live_/cancelled_ hash sets are gone).

namespace spms::sim {

/// Callback invoked when an event fires (small-buffer-optimized; see
/// callback.hpp — typical closures schedule without allocating).
using EventFn = InlineFn;

/// Opaque handle to a scheduled event; used only for cancellation.
/// A default-constructed handle is invalid and safe to cancel (a no-op).
struct EventHandle {
  std::uint64_t id = 0;
  [[nodiscard]] bool valid() const { return id != 0; }
};

/// Handle-indexed 4-ary-heap event scheduler.
///
/// Usage:
///   Scheduler s;
///   s.schedule_after(Duration::ms(1.0), [&]{ ... });
///   s.run();
class Scheduler {
 public:
  Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Current simulated time (the firing time of the last executed event).
  [[nodiscard]] TimePoint now() const { return now_; }

  /// Schedules `fn` at absolute time `at`.  Scheduling in the past is a
  /// programming error and is clamped to `now()` (the event still runs).
  EventHandle schedule_at(TimePoint at, EventFn fn);

  /// Schedules `fn` after delay `d` from now.  Negative delays clamp to 0.
  EventHandle schedule_after(Duration d, EventFn fn);

  /// Cancels a pending event: O(log n) true removal from the heap.
  /// Cancelling an already-fired, already-cancelled, or invalid handle is a
  /// harmless no-op (the generation check rejects stale handles).
  void cancel(EventHandle h);

  /// Runs the next pending event.  Returns false if the queue is empty.
  bool run_one();

  /// Runs events with firing time <= `until`.  Afterwards now() == `until`
  /// unless the queue drained earlier.  Returns the number executed.
  std::size_t run_until(TimePoint until);

  /// Runs until the queue is empty.  Returns the number executed.
  /// `max_events` guards against runaway feedback loops; hitting the guard
  /// stops the loop (callers treat this as a failed run).
  std::size_t run(std::size_t max_events = kDefaultMaxEvents);

  /// Number of pending events — O(1) off the heap size.
  [[nodiscard]] std::size_t pending() const { return heap_.size(); }

  /// Cumulative events executed / cancelled over the scheduler's lifetime
  /// (observability counters; pending() is the matching depth gauge).
  [[nodiscard]] std::uint64_t events_executed() const { return executed_; }
  [[nodiscard]] std::uint64_t events_cancelled() const { return cancelled_; }

  /// Observation hook called after each executed event, at the event's
  /// firing time.  Strictly read-only with respect to the event stream: the
  /// hook must not schedule, cancel, or draw randomness (the telemetry
  /// Sampler snapshots gauges here).  Pass nullptr to clear.  Disabled cost
  /// is a single branch per event.
  using DispatchHook = std::function<void(TimePoint)>;
  void set_dispatch_hook(DispatchHook hook) { dispatch_hook_ = std::move(hook); }

  /// True if the guard in run() ever tripped (sticky across run() calls: a
  /// poisoned run stays poisoned even if a later drain succeeds).
  [[nodiscard]] bool event_limit_hit() const { return limit_hit_; }

  static constexpr std::size_t kDefaultMaxEvents = 500'000'000;

 private:
  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  /// One heap entry: the ordering key plus the index of its slot.  Sift
  /// operations move these 24-byte PODs; the callback never moves.
  struct HeapEntry {
    TimePoint at;
    std::uint64_t seq = 0;
    std::uint32_t slot = 0;
  };

  /// Callback storage, handle generation, and the entry's heap position
  /// (doubles as the next-free link while the slot is on the free list).
  struct Slot {
    EventFn fn;
    std::uint32_t gen = 1;
    std::uint32_t heap_pos = 0;
  };

  [[nodiscard]] static bool before(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  [[nodiscard]] std::uint32_t acquire_slot();
  void release_slot(std::uint32_t s);

  /// Moves heap_[pos] up/down to restore the heap invariant, maintaining
  /// slots_[*].heap_pos.  Returns the entry's final position.
  std::uint32_t sift_up(std::uint32_t pos);
  std::uint32_t sift_down(std::uint32_t pos);

  /// Removes the entry at heap position `pos` (swap-with-last + re-sift).
  void remove_heap_at(std::uint32_t pos);

  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  std::uint64_t executed_ = 0;
  std::uint64_t cancelled_ = 0;
  DispatchHook dispatch_hook_;
  bool limit_hit_ = false;
};

}  // namespace spms::sim
