#pragma once

#include <cstddef>
#include <memory>
#include <type_traits>
#include <utility>

/// \file callback.hpp
/// A small-buffer-optimized, move-only `void()` callable for the event loop.
///
/// `std::function` heap-allocates any closure bigger than two pointers, and
/// the simulator's protocol timers routinely capture (this, NodeId, DataId) —
/// just over that limit — so the seed core paid one allocation per scheduled
/// event.  InlineFn stores closures up to kInlineBytes in place (every MAC
/// and protocol-timer closure fits) and only falls back to the heap for the
/// rare large capture (e.g. a delivery closure carrying a Packet).
///
/// Differences from std::function, on purpose:
///  * move-only (the scheduler never copies events);
///  * no target-type introspection, no allocator support;
///  * invoking an empty InlineFn is undefined (the scheduler asserts).

namespace spms::sim {

class InlineFn {
 public:
  /// Inline storage size.  48 bytes holds a capture of six pointers — ample
  /// for (this, id, item)-style timer closures and a whole std::function.
  static constexpr std::size_t kInlineBytes = 48;

  InlineFn() = default;

  template <typename F>
    requires(!std::is_same_v<std::remove_cvref_t<F>, InlineFn> &&
             std::is_invocable_r_v<void, std::remove_cvref_t<F>&>)
  InlineFn(F&& f) {  // NOLINT(google-explicit-constructor): callable adaptor
    using T = std::remove_cvref_t<F>;
    if constexpr (sizeof(T) <= kInlineBytes && alignof(T) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<T>) {
      ::new (static_cast<void*>(buf_)) T(std::forward<F>(f));
      ops_ = &kInlineOps<T>;
    } else {
      ::new (static_cast<void*>(buf_)) T*(new T(std::forward<F>(f)));
      ops_ = &kHeapOps<T>;
    }
  }

  InlineFn(InlineFn&& other) noexcept : ops_(other.ops_) {
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  InlineFn& operator=(InlineFn&& other) noexcept {
    if (this != &other) {
      reset();
      ops_ = other.ops_;
      if (ops_ != nullptr) {
        ops_->relocate(buf_, other.buf_);
        other.ops_ = nullptr;
      }
    }
    return *this;
  }

  InlineFn(const InlineFn&) = delete;
  InlineFn& operator=(const InlineFn&) = delete;

  ~InlineFn() { reset(); }

  /// Destroys the held callable (no-op when empty).
  void reset() {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  void operator()() { ops_->invoke(buf_); }

  [[nodiscard]] explicit operator bool() const { return ops_ != nullptr; }

 private:
  struct Ops {
    void (*invoke)(void*);
    /// Move-constructs the callable from `src` storage into `dst` storage
    /// and destroys the source (both point at kInlineBytes buffers).
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename T>
  static constexpr Ops kInlineOps{
      [](void* p) { (*static_cast<T*>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) T(std::move(*static_cast<T*>(src)));
        static_cast<T*>(src)->~T();
      },
      [](void* p) { static_cast<T*>(p)->~T(); },
  };

  template <typename T>
  static constexpr Ops kHeapOps{
      [](void* p) { (**static_cast<T**>(p))(); },
      [](void* dst, void* src) {
        ::new (dst) T*(*static_cast<T**>(src));
      },
      [](void* p) { delete *static_cast<T**>(p); },
  };

  const Ops* ops_ = nullptr;
  alignas(std::max_align_t) std::byte buf_[kInlineBytes];
};

}  // namespace spms::sim
