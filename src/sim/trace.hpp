#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <utility>

#include "obs/event_trace.hpp"
#include "sim/time.hpp"

/// \file trace.hpp
/// Legacy string-trace adapter over the typed obs::EventTrace.
///
/// The simulator's emit sites produce typed obs::TraceRecord values; this
/// adapter preserves the historical (time, category, message) sink API for
/// tests and example binaries.  Installing a string sink here registers a
/// formatting sink on the typed trace (obs::format_legacy reproduces the
/// string-era renderings exactly), so consumers of either API observe the
/// same emissions.  emit() still forwards raw strings for callers that
/// never migrated to typed records.  When no sink is installed anywhere,
/// emission remains a single branch.

namespace spms::sim {

/// One legacy trace record.
struct TraceEvent {
  TimePoint at;
  std::string category;  ///< e.g. "spms", "mac", "failure"
  std::string message;
};

/// String-sink adapter: at most one sink, set by the owner of the
/// simulation.  Holds a reference to the typed trace it shadows.
class Trace {
 public:
  using Sink = std::function<void(const TraceEvent&)>;

  explicit Trace(obs::EventTrace& events) : events_(events) {}

  /// Installs (or clears, with nullptr) the sink.  While a sink is
  /// installed the typed trace is enabled and its records with a legacy
  /// rendering are delivered here as strings.
  void set_sink(Sink sink) {
    sink_ = std::move(sink);
    if (sink_) {
      events_.set_legacy_sink([this](const obs::TraceRecord& r) {
        if (auto line = obs::format_legacy(r)) {
          sink_(TraceEvent{r.at, std::move(line->category), std::move(line->message)});
        }
      });
    } else {
      events_.set_legacy_sink(nullptr);
    }
  }

  /// True when a string sink is installed; use to skip expensive formatting.
  [[nodiscard]] bool enabled() const { return static_cast<bool>(sink_); }

  /// Emits a raw string record if a sink is installed (legacy direct path;
  /// typed emit sites go through obs::EventTrace instead).
  void emit(TimePoint at, std::string_view category, std::string_view message) const {
    if (sink_) sink_(TraceEvent{at, std::string{category}, std::string{message}});
  }

 private:
  obs::EventTrace& events_;
  Sink sink_;
};

}  // namespace spms::sim
