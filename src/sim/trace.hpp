#pragma once

#include <functional>
#include <string>
#include <string_view>

#include "sim/time.hpp"

/// \file trace.hpp
/// Structured tracing for simulations.
///
/// Protocol agents emit (time, category, message) records; tests install a
/// collecting sink to assert on protocol behaviour, and the examples install
/// a printing sink.  When no sink is installed, emit() is a cheap no-op
/// (one branch), so tracing can stay in release builds.

namespace spms::sim {

/// One trace record.
struct TraceEvent {
  TimePoint at;
  std::string category;  ///< e.g. "spms", "mac", "failure"
  std::string message;
};

/// Trace hub: at most one sink, set by the owner of the simulation.
class Trace {
 public:
  using Sink = std::function<void(const TraceEvent&)>;

  /// Installs (or clears, with nullptr) the sink.
  void set_sink(Sink sink) { sink_ = std::move(sink); }

  /// True when a sink is installed; use to skip expensive formatting.
  [[nodiscard]] bool enabled() const { return static_cast<bool>(sink_); }

  /// Emits a record if a sink is installed.
  void emit(TimePoint at, std::string_view category, std::string_view message) const {
    if (sink_) sink_(TraceEvent{at, std::string{category}, std::string{message}});
  }

 private:
  Sink sink_;
};

}  // namespace spms::sim
