#pragma once

#include <cstdint>

/// \file footprint.hpp
/// Conflict footprints for deterministic parallel dispatch.
///
/// Every scheduled event may declare the region of simulation state it can
/// read or write when it fires.  Two events of the same timestamp whose
/// footprints cannot overlap are independent: executing them on different
/// threads and committing their side effects in canonical order is
/// indistinguishable from running them back to back.
///
/// Three classes:
///  * kGlobal — may touch anything (the default; untagged events).  A batch
///    containing any global event executes sequentially.
///  * kSpatial — touches only node state within `radius_m` of (x, y).  The
///    tagger is responsible for a conservative disc: for MAC/delivery events
///    the Network uses coverage + zone radius, which bounds the carrier
///    stamps, hearer set, and every synchronous neighbor/contention query a
///    receiving agent can issue (all within one zone of a hearer).
///  * kLocal — touches only state no other same-time event can see (its own
///    pooled context, the scheduler via the journal).  Always independent.
///
/// Footprints are advisory for *grouping only*: they never affect what an
/// event does, and a conservative (larger or global) footprint is always
/// correct — it merely serializes more.

namespace spms::sim {

struct Footprint {
  enum class Kind : std::uint8_t { kGlobal, kSpatial, kLocal };

  Kind kind = Kind::kGlobal;
  double x = 0.0;
  double y = 0.0;
  double radius_m = 0.0;

  [[nodiscard]] static Footprint global() { return {}; }
  [[nodiscard]] static Footprint local() { return {Kind::kLocal, 0.0, 0.0, 0.0}; }
  [[nodiscard]] static Footprint disc(double x, double y, double radius_m) {
    return {Kind::kSpatial, x, y, radius_m};
  }

  /// True when two spatial discs can interact (distance <= r1 + r2,
  /// inclusive to stay conservative under floating-point rounding).
  [[nodiscard]] static bool discs_conflict(const Footprint& a, const Footprint& b) {
    const double dx = a.x - b.x;
    const double dy = a.y - b.y;
    const double rr = a.radius_m + b.radius_m;
    return dx * dx + dy * dy <= rr * rr;
  }
};

}  // namespace spms::sim
