#include "sim/scheduler.hpp"

#include <cassert>
#include <utility>

namespace spms::sim {

EventHandle Scheduler::schedule_at(TimePoint at, EventFn fn) {
  assert(fn);
  if (at < now_) at = now_;
  const std::uint64_t id = next_seq_++;
  queue_.push(Entry{at, id, id, std::move(fn)});
  live_.insert(id);
  return EventHandle{id};
}

EventHandle Scheduler::schedule_after(Duration d, EventFn fn) {
  if (d < Duration::zero()) d = Duration::zero();
  return schedule_at(now_ + d, std::move(fn));
}

void Scheduler::cancel(EventHandle h) {
  // Only entries still queued may enter cancelled_; a stale handle (already
  // fired or cancelled) would otherwise sit there forever and corrupt
  // pending().
  if (h.valid() && live_.erase(h.id) > 0) cancelled_.insert(h.id);
}

bool Scheduler::pop_live(Entry& out) {
  while (!queue_.empty()) {
    // priority_queue::top() is const; the closure must be moved out, so we
    // const_cast the entry we are about to pop.  This is safe because the
    // entry is removed immediately afterwards.
    auto& top = const_cast<Entry&>(queue_.top());
    if (auto it = cancelled_.find(top.id); it != cancelled_.end()) {
      cancelled_.erase(it);
      queue_.pop();
      continue;
    }
    out = std::move(top);
    queue_.pop();
    live_.erase(out.id);
    return true;
  }
  return false;
}

bool Scheduler::run_one() {
  Entry e;
  if (!pop_live(e)) return false;
  assert(e.at >= now_);
  now_ = e.at;
  e.fn();
  return true;
}

std::size_t Scheduler::run_until(TimePoint until) {
  std::size_t executed = 0;
  Entry e;
  while (!queue_.empty()) {
    // Peek: stop before executing anything beyond the horizon.
    if (queue_.top().at > until) break;
    if (!pop_live(e)) break;
    if (e.at > until) {
      // The live event is beyond the horizon (a cancelled earlier one let us
      // get here); push it back untouched.
      live_.insert(e.id);
      queue_.push(std::move(e));
      break;
    }
    now_ = e.at;
    e.fn();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && run_one()) ++executed;
  limit_hit_ = executed >= max_events && pending() > 0;
  return executed;
}

}  // namespace spms::sim
