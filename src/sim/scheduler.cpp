#include "sim/scheduler.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "sim/random.hpp"

namespace spms::sim {

namespace detail {
// Worker index of the current thread during parallel group execution; -1
// everywhere else.  One scheduler runs a parallel phase at a time per
// process (Simulation::run is not reentrant), so a plain thread_local int is
// enough to route model code to its per-worker scratch.
thread_local int t_worker = -1;
}  // namespace detail

int current_worker() { return detail::t_worker; }

std::uint32_t Scheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t s = free_head_;
    free_head_ = slots_[s].heap_pos;  // next-free link
    return s;
  }
  slots_.emplace_back();
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void Scheduler::release_slot(std::uint32_t s) {
  Slot& slot = slots_[s];
  ++slot.gen;  // invalidate every outstanding handle to this slot
  slot.heap_pos = free_head_;
  free_head_ = s;
}

// The heap is 4-ary: parent of i is (i-1)/4, children are 4i+1..4i+4.
// Halving the depth (vs binary) halves the scattered slots_[].heap_pos
// writes a sift performs, and the four children sit in adjacent memory, so
// the extra compares are cheap.  Arity is invisible to callers: execution
// order is fully determined by before()'s (at, seq) total order.

std::uint32_t Scheduler::sift_up(std::uint32_t pos) {
  HeapEntry e = heap_[pos];
  while (pos > 0) {
    const std::uint32_t parent = (pos - 1) / 4;
    if (!before(e, heap_[parent])) break;
    heap_[pos] = heap_[parent];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = parent;
  }
  heap_[pos] = e;
  slots_[e.slot].heap_pos = pos;
  return pos;
}

std::uint32_t Scheduler::sift_down(std::uint32_t pos) {
  const auto size = static_cast<std::uint32_t>(heap_.size());
  HeapEntry e = heap_[pos];
  for (;;) {
    const std::uint32_t first = 4 * pos + 1;
    if (first >= size) break;
    std::uint32_t best = first;
    const std::uint32_t last = std::min(first + 4, size);
    for (std::uint32_t c = first + 1; c < last; ++c) {
      if (before(heap_[c], heap_[best])) best = c;
    }
    if (!before(heap_[best], e)) break;
    heap_[pos] = heap_[best];
    slots_[heap_[pos].slot].heap_pos = pos;
    pos = best;
  }
  heap_[pos] = e;
  slots_[e.slot].heap_pos = pos;
  return pos;
}

void Scheduler::remove_heap_at(std::uint32_t pos) {
  const auto last = static_cast<std::uint32_t>(heap_.size() - 1);
  if (pos != last) {
    heap_[pos] = heap_[last];
    heap_.pop_back();
    slots_[heap_[pos].slot].heap_pos = pos;
    if (sift_down(pos) == pos) sift_up(pos);
  } else {
    heap_.pop_back();
  }
}

void Scheduler::push_heap_entry(TimePoint at, std::uint64_t seq, std::uint32_t s) {
  heap_.push_back(HeapEntry{at, seq, s});
  slots_[s].heap_pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(slots_[s].heap_pos);
}

EventHandle Scheduler::schedule_at(TimePoint at, EventFn fn, const Footprint& fp) {
  assert(fn);
  if (at < now_) at = now_;
  if (deferred_) return schedule_deferred(at, Duration::zero(), 0, std::move(fn), fp);
  const std::uint32_t s = acquire_slot();
  Slot& slot = slots_[s];
  slot.fn = std::move(fn);
  slot.fp = fp;
  slot.fp_epoch = spatial_epoch_;
  push_heap_entry(at, next_seq_++, s);
  return EventHandle{(static_cast<std::uint64_t>(slot.gen) << 32) | (s + 1)};
}

EventHandle Scheduler::schedule_after(Duration d, EventFn fn, const Footprint& fp) {
  if (d < Duration::zero()) d = Duration::zero();
  return schedule_at(now_ + d, std::move(fn), fp);
}

EventHandle Scheduler::schedule_backoff(TimePoint base, Duration extra, Duration unit,
                                        int slots, Rng& rng, EventFn fn, const Footprint& fp) {
  TimePoint at = base + extra;
  if (at < now_) at = now_;
  if (deferred_) return schedule_deferred(at, unit, slots, std::move(fn), fp);
  if (slots > 1) at = at + unit * rng.uniform_int(0, slots - 1);
  return schedule_at(at, std::move(fn), fp);
}

void Scheduler::cancel(EventHandle h) {
  if (!h.valid()) return;
  if (deferred_) {
    cancel_deferred(h);
    return;
  }
  const std::uint32_t s = static_cast<std::uint32_t>(h.id & 0xffffffffu) - 1;
  if (s >= slots_.size()) return;
  Slot& slot = slots_[s];
  // Generation mismatch == stale handle (fired, cancelled, or the slot was
  // recycled for a newer event): strictly a no-op.
  if (slot.gen != static_cast<std::uint32_t>(h.id >> 32)) return;
  const std::uint32_t pos = slot.heap_pos;
  if ((pos & kPosTagMask) == kPosBatch) {
    // Target sits in the popped batch being executed directly and has not
    // fired yet (its seq is later than the cancelling event's).  Marking it
    // dead replicates the sequential "cancel removes it before it runs".
    batch_[pos & ~kPosTagMask].dead = 1;
    slot.fn.reset();
    release_slot(s);
    ++cancelled_;
    return;
  }
  slot.fn.reset();
  release_slot(s);
  remove_heap_at(pos);
  ++cancelled_;
}

void Scheduler::run_serial(EventFn fn) {
  if (!deferred_) {
    fn();
    return;
  }
  WorkerJournal& j = journals_[static_cast<std::uint32_t>(detail::t_worker)];
  DeferredOp op;
  op.kind = DeferredOp::Kind::kSerial;
  op.fn = std::move(fn);
  j.ops.push_back(std::move(op));
}

bool Scheduler::run_one() {
  if (heap_.empty()) return false;
  const HeapEntry top = heap_[0];
  assert(top.at >= now_);
  // Detach the callback and retire the entry *before* invoking: the callback
  // may schedule (growing slots_/heap_) or cancel, so no reference into
  // either vector may live across the call.
  EventFn fn = std::move(slots_[top.slot].fn);
  release_slot(top.slot);
  remove_heap_at(0);
  now_ = top.at;
  fn();
  ++executed_;
  if (dispatch_hook_) dispatch_hook_(now_);
  return true;
}

std::size_t Scheduler::run_until(TimePoint until) {
  std::size_t executed = 0;
  while (!heap_.empty() && heap_[0].at <= until) {
    run_one();
    ++executed;
  }
  if (now_ < until) now_ = until;
  return executed;
}

std::size_t Scheduler::run(std::size_t max_events) {
  std::size_t executed = 0;
  while (executed < max_events && run_one()) ++executed;
  if (executed >= max_events && !heap_.empty()) limit_hit_ = true;
  return executed;
}

}  // namespace spms::sim
