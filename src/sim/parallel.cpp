#include <algorithm>
#include <atomic>
#include <cassert>
#include <cmath>
#include <utility>

#include "sim/random.hpp"
#include "sim/scheduler.hpp"
#include "sim/worker_pool.hpp"

/// \file parallel.cpp
/// Deterministic parallel dispatch: the batch-pop / group / execute / commit
/// machinery of Scheduler::run_parallel.
///
/// Determinism argument, in full:
///  * A batch is every event sharing the earliest timestamp, popped in
///    (time, seq) order.  Groups partition the batch so that no two events
///    in different groups can touch the same state (footprint discs
///    disjoint, locals self-contained; one global event forces the whole
///    batch sequential).
///  * Within a group, events execute in seq order on one worker — the same
///    relative order the sequential loop uses.  Across groups there is no
///    shared state by construction, so interleaving is unobservable.
///  * Everything that feeds the global deterministic order is journaled,
///    not applied: new schedules (seq assignment + backoff draws),
///    cancellations of queued events, and serial closures.  The commit walk
///    replays journals in (batch index, op issue order) — precisely the
///    sequential execution order — so seq numbers, RNG draw sequences and
///    observer call order are byte-identical to a 1-thread run.
///  * Same-time events scheduled during the batch land in follow-on batches
///    (their seq is higher than every popped seq), which pop after commit —
///    again matching the sequential loop.
///
/// Why backoff draws can be deferred at all: the only root-RNG consumer at
/// run time is the MAC's slotted backoff, whose value parametrizes the
/// firing time of a *future* event and never influences control flow inside
/// the drawing event.  The draw is therefore not needed until the commit
/// phase, where it happens in canonical order against the same generator
/// state the sequential run would have had.

namespace spms::sim {

namespace detail {
extern thread_local int t_worker;
}

EventHandle Scheduler::schedule_deferred(TimePoint at, Duration unit, int slots, EventFn fn,
                                         const Footprint& fp) {
  const auto w = static_cast<std::uint32_t>(detail::t_worker);
  WorkerJournal& journal = journals_[w];
  const auto op_idx = static_cast<std::uint32_t>(journal.ops.size());
  assert(op_idx <= kJournalOpMask);
  std::uint32_t s = 0;
  std::uint32_t gen = 0;
  {
    // The slot is acquired now so the caller gets its handle immediately;
    // the seq number (and any backoff draw) is consumed only at commit.
    // slots_ may reallocate under other workers' acquisitions, so every
    // slots_ access during the parallel phase stays inside this mutex.
    std::lock_guard<std::mutex> lk(slots_mutex_);
    s = acquire_slot();
    gen = slots_[s].gen;
    slots_[s].heap_pos = kPosJournal | (w << kJournalWorkerShift) | op_idx;
  }
  DeferredOp op;
  op.kind = DeferredOp::Kind::kSchedule;
  op.at = at;
  op.unit = unit;
  op.draw_slots = slots;
  op.slot = s;
  op.fn = std::move(fn);
  op.fp = fp;
  op.fp_epoch = spatial_epoch_;
  journal.ops.push_back(std::move(op));
  return EventHandle{(static_cast<std::uint64_t>(gen) << 32) | (s + 1)};
}

void Scheduler::cancel_deferred(EventHandle h) {
  const std::uint32_t s = static_cast<std::uint32_t>(h.id & 0xffffffffu) - 1;
  std::lock_guard<std::mutex> lk(slots_mutex_);
  if (s >= slots_.size()) return;
  Slot& slot = slots_[s];
  if (slot.gen != static_cast<std::uint32_t>(h.id >> 32)) return;
  const std::uint32_t pos = slot.heap_pos;
  if ((pos & kPosTagMask) == kPosBatch) {
    // A live handle to a batch member implies the member has not executed
    // (execution releases the slot) and shares this event's group (handles
    // only flow through state both events touch), so the mark is seen by
    // the same worker before it reaches the member.
    batch_[pos & ~kPosTagMask].dead = 1;
    slot.fn.reset();
    release_slot(s);
    ++cancelled_;
    return;
  }
  if ((pos & kPosTagMask) == kPosJournal) {
    // Scheduled earlier in this batch and not yet committed: kill the op in
    // place.  Its seq number and backoff draw are still burned at commit,
    // exactly as the sequential schedule-then-cancel would have.
    DeferredOp& op =
        journals_[(pos & ~kPosTagMask) >> kJournalWorkerShift].ops[pos & kJournalOpMask];
    op.dead = 1;
    op.fn.reset();
    release_slot(s);
    ++cancelled_;
    return;
  }
  // Queued in the heap (scheduled before this batch): removal mutates the
  // heap, so it joins the journal and happens at commit.  Observably
  // identical — the target's firing time is strictly later than this batch.
  DeferredOp op;
  op.kind = DeferredOp::Kind::kCancel;
  op.target = h;
  journals_[static_cast<std::uint32_t>(detail::t_worker)].ops.push_back(std::move(op));
}

void Scheduler::pop_batch(std::size_t max_n) {
  batch_.clear();
  const TimePoint t = heap_[0].at;
  assert(t >= now_);
  now_ = t;
  while (!heap_.empty() && heap_[0].at == t && batch_.size() < max_n) {
    const HeapEntry top = heap_[0];
    Slot& slot = slots_[top.slot];
    BatchItem it;
    it.slot = top.slot;
    it.seq = top.seq;
    it.fp = slot.fp;
    if (it.fp.kind == Footprint::Kind::kSpatial && slot.fp_epoch != spatial_epoch_) {
      // Tagged against positions that have since moved (mobility teleport):
      // the disc may no longer bound what the event touches.  Degrade to
      // global, which serializes the batch — always sound.
      it.fp = Footprint::global();
    }
    slot.heap_pos = kPosBatch | static_cast<std::uint32_t>(batch_.size());
    remove_heap_at(0);
    batch_.push_back(std::move(it));
  }
}

std::size_t Scheduler::run_batch_direct() {
  std::size_t n = 0;
  for (BatchItem& it : batch_) {
    if (it.dead != 0) continue;
    EventFn fn = std::move(slots_[it.slot].fn);
    release_slot(it.slot);
    fn();
    ++executed_;
    ++n;
    if (dispatch_hook_) dispatch_hook_(now_);
  }
  return n;
}

std::size_t Scheduler::build_groups() {
  const auto n = static_cast<std::uint32_t>(batch_.size());
  uf_parent_.resize(n);
  for (std::uint32_t i = 0; i < n; ++i) uf_parent_[i] = i;
  const auto find = [this](std::uint32_t x) {
    while (uf_parent_[x] != x) {
      uf_parent_[x] = uf_parent_[uf_parent_[x]];  // path halving
      x = uf_parent_[x];
    }
    return x;
  };

  double max_r = 0.0;
  bool any_spatial = false;
  for (const BatchItem& it : batch_) {
    if (it.fp.kind == Footprint::Kind::kSpatial) {
      any_spatial = true;
      max_r = std::max(max_r, it.fp.radius_m);
    }
  }
  if (any_spatial && n >= 2) {
    // Bucket spatial events on a uniform grid with cell edge 2 * max_r:
    // two discs can conflict only if their centers are within r_i + r_j
    // <= 2 * max_r, i.e. within one cell in each axis, so scanning the 3x3
    // neighborhood of every entry finds every conflicting pair.
    const double cell = std::max(2.0 * max_r, 1e-9);
    const double inv = 1.0 / cell;
    const auto cell_key = [inv](double x, double y) {
      const auto cx = static_cast<std::int64_t>(std::floor(x * inv));
      const auto cy = static_cast<std::int64_t>(std::floor(y * inv));
      return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
             static_cast<std::uint32_t>(cy);
    };
    cell_entries_.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
      const Footprint& fp = batch_[i].fp;
      if (fp.kind == Footprint::Kind::kSpatial) {
        cell_entries_.emplace_back(cell_key(fp.x, fp.y), i);
      }
    }
    std::sort(cell_entries_.begin(), cell_entries_.end());
    for (const auto& [key, i] : cell_entries_) {
      const Footprint& a = batch_[i].fp;
      const auto cx = static_cast<std::int64_t>(static_cast<std::int32_t>(key >> 32));
      const auto cy = static_cast<std::int64_t>(static_cast<std::int32_t>(key & 0xffffffffu));
      for (std::int64_t dx = -1; dx <= 1; ++dx) {
        for (std::int64_t dy = -1; dy <= 1; ++dy) {
          const std::uint64_t nk =
              (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx + dx)) << 32) |
              static_cast<std::uint32_t>(cy + dy);
          auto [lo, hi] = std::equal_range(
              cell_entries_.begin(), cell_entries_.end(), std::pair{nk, std::uint32_t{0}},
              [](const auto& p, const auto& q) { return p.first < q.first; });
          for (auto it = lo; it != hi; ++it) {
            const std::uint32_t j = it->second;
            if (j >= i) continue;  // each pair tested once
            if (Footprint::discs_conflict(a, batch_[j].fp)) {
              uf_parent_[find(i)] = find(j);
            }
          }
        }
      }
    }
  }

  // Collect groups in ascending first-member order; members ascend within
  // each group (batch order == seq order).  kLocal entries never unioned:
  // they fall out as singleton groups.
  group_of_.assign(n, 0xffffffffu);
  n_groups_ = 0;
  for (std::uint32_t i = 0; i < n; ++i) {
    const std::uint32_t root = find(i);
    if (group_of_[root] == 0xffffffffu) {
      if (n_groups_ == groups_.size()) groups_.emplace_back();
      groups_[n_groups_].clear();
      group_of_[root] = static_cast<std::uint32_t>(n_groups_++);
    }
    groups_[group_of_[root]].push_back(i);
  }
  return n_groups_;
}

std::size_t Scheduler::run_batch_parallel(WorkerPool& pool, Rng& rng) {
  ++pstats_.parallel_batches;
  pstats_.parallel_events += batch_.size();
  pstats_.parallel_groups += n_groups_;
  for (WorkerJournal& j : journals_) j.ops.clear();
  deferred_ = true;
  std::atomic<std::uint32_t> next_group{0};
  const auto ngroups = static_cast<std::uint32_t>(n_groups_);
  pool.run([&](std::size_t w) {
    detail::t_worker = static_cast<int>(w);
    for (;;) {
      const std::uint32_t g = next_group.fetch_add(1, std::memory_order_relaxed);
      if (g >= ngroups) break;
      for (const std::uint32_t idx : groups_[g]) {
        BatchItem& it = batch_[idx];
        if (it.dead != 0) continue;  // cancelled by an earlier same-group event
        EventFn fn;
        {
          std::lock_guard<std::mutex> lk(slots_mutex_);
          fn = std::move(slots_[it.slot].fn);
          release_slot(it.slot);
        }
        it.ops_worker = static_cast<std::uint32_t>(w);
        it.ops_begin = static_cast<std::uint32_t>(journals_[w].ops.size());
        fn();
        it.ops_end = static_cast<std::uint32_t>(journals_[w].ops.size());
        it.executed = 1;
      }
    }
    detail::t_worker = -1;
  });
  deferred_ = false;
  commit_batch(rng);
  std::size_t n = 0;
  for (const BatchItem& it : batch_) n += it.executed;
  executed_ += n;
  return n;
}

void Scheduler::commit_batch(Rng& rng) {
  for (BatchItem& it : batch_) {
    if (it.executed == 0) continue;
    auto& ops = journals_[it.ops_worker].ops;
    for (std::uint32_t i = it.ops_begin; i < it.ops_end; ++i) {
      DeferredOp& op = ops[i];
      switch (op.kind) {
        case DeferredOp::Kind::kSchedule: {
          TimePoint at = op.at;
          if (op.draw_slots > 1) at = at + op.unit * rng.uniform_int(0, op.draw_slots - 1);
          const std::uint64_t seq = next_seq_++;
          // A dead (cancelled-in-batch) schedule still burned its seq and
          // draw above — the sequential run scheduled it (consuming both)
          // before the cancel removed it.  Its slot is already released.
          if (op.dead != 0) break;
          Slot& slot = slots_[op.slot];
          slot.fn = std::move(op.fn);
          slot.fp = op.fp;
          slot.fp_epoch = op.fp_epoch;
          push_heap_entry(at, seq, op.slot);
          break;
        }
        case DeferredOp::Kind::kCancel:
          cancel(op.target);  // direct path now: heap removal is safe
          break;
        case DeferredOp::Kind::kSerial:
          op.fn();
          break;
      }
    }
  }
}

std::size_t Scheduler::run_parallel(std::size_t max_events, WorkerPool& pool, Rng& rng) {
  assert(pool.size() <= kMaxWorkers);
  if (journals_.size() < pool.size()) journals_.resize(pool.size());
  std::size_t executed = 0;
  while (executed < max_events && !heap_.empty()) {
    pop_batch(max_events - executed);
    ++pstats_.batches;
    bool eligible = batch_.size() >= 2 && !dispatch_hook_;
    if (eligible) {
      for (const BatchItem& it : batch_) {
        if (it.fp.kind == Footprint::Kind::kGlobal) {
          eligible = false;
          break;
        }
      }
    }
    if (eligible && build_groups() >= 2) {
      executed += run_batch_parallel(pool, rng);
    } else {
      executed += run_batch_direct();
    }
  }
  if (executed >= max_events && !heap_.empty()) limit_hit_ = true;
  return executed;
}

}  // namespace spms::sim
