#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "sim/time.hpp"

/// \file random.hpp
/// Deterministic pseudo-randomness for simulations.
///
/// The generator is xoshiro256** seeded through SplitMix64, which is fast,
/// has a 2^256-1 period, and — unlike std::mt19937 with std::*_distribution —
/// produces identical streams on every platform, keeping experiment runs a
/// pure function of the seed.

namespace spms::sim {

/// Deterministic random number generator with the distribution helpers the
/// simulator needs (uniform, exponential, Bernoulli, permutations).
class Rng {
 public:
  /// Seeds the four 64-bit lanes via SplitMix64 so that any seed (including
  /// 0) yields a well-mixed state.
  explicit Rng(std::uint64_t seed);

  /// Next raw 64-bit output.
  [[nodiscard]] std::uint64_t next();

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform01();

  /// Uniform double in [lo, hi).  Requires lo <= hi.
  [[nodiscard]] double uniform(double lo, double hi);

  /// Uniform integer in the inclusive range [lo, hi] without modulo bias.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Exponentially distributed value with the given mean (not rate).
  [[nodiscard]] double exponential(double mean);

  /// Exponentially distributed duration with the given mean; used for the
  /// paper's Poisson packet arrivals and failure inter-arrival times.
  [[nodiscard]] Duration exponential(Duration mean);

  /// Uniformly distributed duration in [lo, hi); used for repair times.
  [[nodiscard]] Duration uniform(Duration lo, Duration hi);

  /// True with probability `p` (clamped to [0,1]).
  [[nodiscard]] bool bernoulli(double p);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Derives an independent generator for a sub-stream (e.g. one per node)
  /// so adding consumers does not perturb existing streams.
  [[nodiscard]] Rng fork(std::uint64_t stream) const;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;  // retained for fork()
};

}  // namespace spms::sim
