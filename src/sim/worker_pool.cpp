#include "sim/worker_pool.hpp"

namespace spms::sim {

WorkerPool::WorkerPool(std::size_t threads) : size_(threads == 0 ? 1 : threads) {
  threads_.reserve(size_ - 1);
  for (std::size_t w = 1; w < size_; ++w) {
    threads_.emplace_back([this, w] { worker_loop(w); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::run(const std::function<void(std::size_t)>& fn) {
  if (size_ == 1) {
    fn(0);
    return;
  }
  {
    std::lock_guard<std::mutex> lk(mu_);
    job_ = &fn;
    outstanding_ = size_ - 1;
    ++generation_;
  }
  start_cv_.notify_all();
  fn(0);  // the caller is worker 0
  std::unique_lock<std::mutex> lk(mu_);
  done_cv_.wait(lk, [this] { return outstanding_ == 0; });
  job_ = nullptr;
}

void WorkerPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  for (;;) {
    const std::function<void(std::size_t)>* job = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      start_cv_.wait(lk, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    (*job)(worker);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --outstanding_;
    }
    done_cv_.notify_one();
  }
}

}  // namespace spms::sim
