#pragma once
#include <concepts>

#include <cmath>
#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

/// \file time.hpp
/// Strong time types for the discrete-event kernel.
///
/// The paper quotes every constant in milliseconds (e.g. TOutADV = 1.0 ms,
/// Ttx = 0.05 ms/byte).  Internally we keep integer nanoseconds so that
/// event ordering is exact and runs are bit-reproducible; the `ms`/`us`
/// constructors and accessors do the conversion at the edges.

namespace spms::sim {

/// A signed span of simulated time with nanosecond resolution.
class Duration {
 public:
  constexpr Duration() = default;

  /// Named constructors.
  [[nodiscard]] static constexpr Duration nanos(std::int64_t n) { return Duration{n}; }
  [[nodiscard]] static constexpr Duration micros(std::int64_t n) { return Duration{n * 1000}; }
  [[nodiscard]] static constexpr Duration millis(std::int64_t n) { return Duration{n * 1'000'000}; }
  [[nodiscard]] static constexpr Duration seconds(std::int64_t n) { return Duration{n * 1'000'000'000}; }

  /// Fractional-millisecond constructor (rounds to the nearest nanosecond).
  [[nodiscard]] static Duration ms(double v) {
    return Duration{static_cast<std::int64_t>(std::llround(v * 1e6))};
  }
  /// Fractional-microsecond constructor (rounds to the nearest nanosecond).
  [[nodiscard]] static Duration us(double v) {
    return Duration{static_cast<std::int64_t>(std::llround(v * 1e3))};
  }

  [[nodiscard]] static constexpr Duration zero() { return Duration{0}; }
  [[nodiscard]] static constexpr Duration max() {
    return Duration{std::numeric_limits<std::int64_t>::max()};
  }

  [[nodiscard]] constexpr std::int64_t count_nanos() const { return ns_; }
  [[nodiscard]] constexpr double to_ms() const { return static_cast<double>(ns_) / 1e6; }
  [[nodiscard]] constexpr double to_us() const { return static_cast<double>(ns_) / 1e3; }
  [[nodiscard]] constexpr double to_seconds() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const Duration&) const = default;

  constexpr Duration& operator+=(Duration o) { ns_ += o.ns_; return *this; }
  constexpr Duration& operator-=(Duration o) { ns_ -= o.ns_; return *this; }

  [[nodiscard]] friend constexpr Duration operator+(Duration a, Duration b) { return Duration{a.ns_ + b.ns_}; }
  [[nodiscard]] friend constexpr Duration operator-(Duration a, Duration b) { return Duration{a.ns_ - b.ns_}; }
  [[nodiscard]] friend constexpr Duration operator-(Duration a) { return Duration{-a.ns_}; }
  template <std::integral I>
  [[nodiscard]] friend constexpr Duration operator*(Duration a, I k) {
    return Duration{a.ns_ * static_cast<std::int64_t>(k)};
  }
  template <std::integral I>
  [[nodiscard]] friend constexpr Duration operator*(I k, Duration a) { return a * k; }
  template <std::floating_point F>
  [[nodiscard]] friend Duration operator*(Duration a, F k) {
    return Duration{static_cast<std::int64_t>(std::llround(static_cast<double>(a.ns_) * static_cast<double>(k)))};
  }
  /// Ratio of two durations as a double (e.g. for rates).
  [[nodiscard]] friend constexpr double operator/(Duration a, Duration b) {
    return static_cast<double>(a.ns_) / static_cast<double>(b.ns_);
  }

 private:
  constexpr explicit Duration(std::int64_t ns) : ns_(ns) {}
  std::int64_t ns_ = 0;
};

/// An absolute instant on the simulated clock.  Starts at zero().
class TimePoint {
 public:
  constexpr TimePoint() = default;

  [[nodiscard]] static constexpr TimePoint zero() { return TimePoint{}; }
  [[nodiscard]] static constexpr TimePoint max() {
    return TimePoint{Duration::max()};
  }
  /// Instant `d` after the epoch.
  [[nodiscard]] static constexpr TimePoint at(Duration d) { return TimePoint{d}; }

  /// Time elapsed since the simulation epoch.
  [[nodiscard]] constexpr Duration since_epoch() const { return d_; }
  [[nodiscard]] constexpr double to_ms() const { return d_.to_ms(); }

  constexpr auto operator<=>(const TimePoint&) const = default;

  [[nodiscard]] friend constexpr TimePoint operator+(TimePoint t, Duration d) { return TimePoint{t.d_ + d}; }
  [[nodiscard]] friend constexpr TimePoint operator+(Duration d, TimePoint t) { return t + d; }
  [[nodiscard]] friend constexpr TimePoint operator-(TimePoint t, Duration d) { return TimePoint{t.d_ - d}; }
  [[nodiscard]] friend constexpr Duration operator-(TimePoint a, TimePoint b) { return a.d_ - b.d_; }

 private:
  constexpr explicit TimePoint(Duration d) : d_(d) {}
  Duration d_;
};

inline std::ostream& operator<<(std::ostream& os, Duration d) { return os << d.to_ms() << "ms"; }
inline std::ostream& operator<<(std::ostream& os, TimePoint t) { return os << "t=" << t.to_ms() << "ms"; }

}  // namespace spms::sim
