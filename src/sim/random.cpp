#include "sim/random.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spms::sim {

namespace {

constexpr std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& lane : s_) lane = splitmix64(sm);
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1) with full mantissa coverage.
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<std::int64_t>(next());  // full 64-bit range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = std::numeric_limits<std::uint64_t>::max() - std::numeric_limits<std::uint64_t>::max() % span;
  std::uint64_t r = next();
  while (r >= limit) r = next();
  return lo + static_cast<std::int64_t>(r % span);
}

double Rng::exponential(double mean) {
  assert(mean > 0);
  // Inverse CDF; 1 - uniform01() is in (0,1] so the log argument is never 0.
  return -mean * std::log(1.0 - uniform01());
}

Duration Rng::exponential(Duration mean) {
  return Duration::ms(exponential(mean.to_ms()));
}

Duration Rng::uniform(Duration lo, Duration hi) {
  return Duration::ms(uniform(lo.to_ms(), hi.to_ms()));
}

bool Rng::bernoulli(double p) {
  return uniform01() < std::clamp(p, 0.0, 1.0);
}

Rng Rng::fork(std::uint64_t stream) const {
  // Mix the parent seed with the stream id through SplitMix64 so that
  // sibling streams are decorrelated even for adjacent ids.
  std::uint64_t x = seed_ ^ (0xd1342543de82ef95ULL * (stream + 1));
  return Rng{splitmix64(x)};
}

}  // namespace spms::sim
