#include "obs/process_stats.hpp"

#include <sys/resource.h>

namespace spms::obs {

std::size_t peak_rss_bytes() {
  rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  // Linux reports ru_maxrss in KiB (BSD reports bytes; this build targets
  // Linux — see the toolchain notes in ROADMAP.md).
  return static_cast<std::size_t>(usage.ru_maxrss) * 1024u;
}

}  // namespace spms::obs
