#include "obs/flight_recorder.hpp"

#include <charconv>
#include <string>

namespace spms::obs {

namespace {

/// Open spans per dump: enough context to see what was in flight without an
/// anomaly inside a large campaign ballooning the file.
constexpr std::size_t kMaxOpenSpansPerDump = 256;

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

void append_double(std::string& s, double v) {
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

void append_item(std::string& s, net::DataId item) {
  s += 'n';
  append_u64(s, item.origin.v);
  s += '#';
  append_u64(s, item.seq);
}

}  // namespace

void FlightRecorder::observe(const TraceRecord& r) {
  if (!is_anomaly(r)) return;
  if (dumps_ >= max_dumps_) {
    ++suppressed_;
    return;
  }
  dump(r);
}

void FlightRecorder::dump(const TraceRecord& trigger) {
  ++dumps_;
  const auto ring = events_.ring_snapshot();

  std::size_t open = 0;
  for (const auto& s : spans_.spans()) {
    if (s.open()) ++open;
  }

  std::string line;
  line += R"({"type":"flight-dump","dump":)";
  append_u64(line, dumps_);
  line += R"(,"t_ms":)";
  append_double(line, trigger.at.to_ms());
  line += R"(,"trigger":")";
  line += trace_kind_name(trigger.kind);
  line += '"';
  if (const char* cause = trace_cause_name(trigger.kind, trigger.cause)) {
    line += R"(,"cause":")";
    line += cause;
    line += '"';
  }
  if (trigger.node.valid()) {
    line += R"(,"node":)";
    append_u64(line, trigger.node.v);
  }
  if (trigger.item.origin.valid()) {
    line += R"(,"item":")";
    append_item(line, trigger.item);
    line += '"';
  }
  line += R"(,"ring":)";
  append_u64(line, ring.size());
  line += R"(,"open_spans":)";
  append_u64(line, open);
  line += "}\n";
  out_ << line;

  for (const auto& rec : ring) {
    line.clear();
    line += R"({"type":"flight-record","dump":)";
    append_u64(line, dumps_);
    line += R"(,"record":)";
    append_record_json(rec, line);
    line += "}\n";
    out_ << line;
  }

  std::size_t written = 0;
  for (const auto& s : spans_.spans()) {
    if (!s.open()) continue;
    if (written >= kMaxOpenSpansPerDump) break;
    ++written;
    line.clear();
    line += R"({"type":"flight-span","dump":)";
    append_u64(line, dumps_);
    line += R"(,"item":")";
    append_item(line, s.item);
    line += R"(","node":)";
    append_u64(line, s.node.v);
    line += R"(,"t_start_ms":)";
    append_double(line, s.t_start_ms);
    line += R"(,"requests":)";
    append_u64(line, s.requests);
    line += "}\n";
    out_ << line;
  }
}

}  // namespace spms::obs
