#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>
#include <unordered_map>
#include <vector>

#include "net/ids.hpp"
#include "obs/event_trace.hpp"

/// \file span_trace.hpp
/// Causal dissemination spans assembled from the typed event trace.
///
/// One span models the lifecycle of one (item, node) pair: the node's
/// acquisition of the item from first request (or publish, at the origin) to
/// delivery, with a causal parent pointing at the upstream node the data
/// came from.  Because every protocol stamps the serving holder into
/// TraceRecord::parent, chaining parents walks a delivered item's complete
/// journey back to its publish — which is what per-hop latency breakdowns
/// and relay energy attribution need and flat counters cannot give.
///
/// Assembly is a pure fold over TraceRecords: consume() never touches the
/// simulation, so feeding a SpanTrace from the EventTrace sink keeps the
/// zero-perturbation contract (byte-identical results with spans on or off).

namespace spms::obs {

/// One (item, node) lifecycle.  Times are -1 until the phase is observed.
struct Span {
  net::DataId item;
  net::NodeId node;
  /// Upstream holder this node's copy came from; invalid for the origin's
  /// root span (and for spans whose data record was never observed).
  net::NodeId parent;
  /// Immediate transmitter of the DATA frame (== parent except when SPMS
  /// relays carried it); invalid until the data record is observed.
  net::NodeId data_src;
  double t_start_ms = -1.0;      ///< first evidence (publish / first REQ / data)
  double t_first_req_ms = -1.0;  ///< first REQ this node sent for the item
  double t_data_ms = -1.0;       ///< DATA (or publish, at the origin) observed
  double delay_ms = -1.0;        ///< collector delay at delivery (kDelivery value)
  std::uint32_t requests = 0;    ///< REQ frames sent (all escalation rungs)
  bool root = false;             ///< origin publish span
  bool has_data = false;         ///< item acquired (delivery or relay-cache)
  bool delivered = false;        ///< kDelivery observed (an interested node)
  bool gave_up = false;          ///< acquisition abandoned (kGiveUp)

  /// Open = an acquisition that started but neither completed nor gave up —
  /// what the flight recorder dumps on an anomaly.
  [[nodiscard]] bool open() const { return !has_data && !gave_up; }
};

/// Relay work tallied per node from the SPMS relay verbs.
struct RelayLoad {
  std::uint64_t req_frames = 0;   ///< REQs forwarded toward a holder
  std::uint64_t data_frames = 0;  ///< DATA frames carried back
};

/// Journey reconstruction census over the delivered spans.
struct JourneyStats {
  std::size_t spans = 0;       ///< spans assembled in total
  std::size_t delivered = 0;   ///< spans with a kDelivery record
  std::size_t complete = 0;    ///< delivered spans whose parent chain reaches a root
  std::size_t orphaned = 0;    ///< delivered spans with a broken chain (evicted parent)
  std::size_t max_depth = 0;   ///< longest complete chain (hops from the origin)

  [[nodiscard]] double completeness() const {
    return delivered == 0 ? 1.0 : static_cast<double>(complete) / static_cast<double>(delivered);
  }
};

/// Assembles spans from trace records.  Feed every record in emission order
/// (the EventTrace sink does); query or export after the run.
class SpanTrace {
 public:
  /// Folds one record into the span set.  O(1) amortized.
  void consume(const TraceRecord& r);

  [[nodiscard]] const std::vector<Span>& spans() const { return spans_; }
  [[nodiscard]] std::uint64_t records_seen() const { return records_seen_; }

  /// The span of (item, node), or nullptr when none was assembled.
  [[nodiscard]] const Span* find(net::DataId item, net::NodeId node) const;

  /// Hops from the origin's root span (root = 0), or -1 when the parent
  /// chain is broken — the parent's span was never observed (e.g. it fell
  /// off a bounded ring before assembly started).
  [[nodiscard]] int depth_of(const Span& s) const;

  [[nodiscard]] JourneyStats journey_stats() const;

  /// Per-node relay work (SPMS relay verbs), ascending node id.
  [[nodiscard]] std::vector<std::pair<net::NodeId, RelayLoad>> relay_loads() const;

  /// Queryable JSONL: one {"type":"span",...} line per span plus a final
  /// {"type":"span-summary",...} line carrying the journey census and
  /// `ring_dropped` (records the bounded ring evicted before assembly —
  /// the accounting for any sub-100% completeness).
  void write_jsonl(std::ostream& out, std::uint64_t ring_dropped = 0) const;

  /// Chrome/Perfetto trace-event JSON: one complete ("X") slice per span
  /// (pid = item, tid = node) and a flow arrow ("s"/"f") per resolved
  /// parent link, so a journey reads as a chain of slices across node
  /// tracks in the Perfetto UI.
  void write_perfetto(std::ostream& out) const;

 private:
  struct Key {
    net::DataId item;
    net::NodeId node;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      const std::size_t h = std::hash<net::DataId>{}(k.item);
      return h ^ (std::hash<net::NodeId>{}(k.node) + 0x9e3779b97f4a7c15ull + (h << 6));
    }
  };

  Span& span_of(net::DataId item, net::NodeId node);
  [[nodiscard]] const Span* parent_of(const Span& s) const;

  std::vector<Span> spans_;  ///< creation order (deterministic given the stream)
  std::unordered_map<Key, std::size_t, KeyHash> index_;
  std::unordered_map<net::NodeId, RelayLoad> relay_;
  std::uint64_t records_seen_ = 0;
};

}  // namespace spms::obs
