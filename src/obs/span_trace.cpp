#include "obs/span_trace.hpp"

#include <algorithm>
#include <charconv>
#include <string>

namespace spms::obs {

namespace {

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

void append_double(std::string& s, double v) {
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

void append_item(std::string& s, net::DataId item) {
  s += 'n';
  append_u64(s, item.origin.v);
  s += '#';
  append_u64(s, item.seq);
}

}  // namespace

Span& SpanTrace::span_of(net::DataId item, net::NodeId node) {
  const auto [it, fresh] = index_.try_emplace(Key{item, node}, spans_.size());
  if (fresh) {
    auto& s = spans_.emplace_back();
    s.item = item;
    s.node = node;
  }
  return spans_[it->second];
}

void SpanTrace::consume(const TraceRecord& r) {
  ++records_seen_;
  const double t = r.at.to_ms();
  switch (r.kind) {
    case TraceKind::kPublish: {
      Span& s = span_of(r.item, r.node);
      s.root = true;
      s.has_data = true;
      if (s.t_start_ms < 0.0) s.t_start_ms = t;
      if (s.t_data_ms < 0.0) s.t_data_ms = t;
      break;
    }
    case TraceKind::kSpmsReqDirect:
    case TraceKind::kSpmsReqMultihop:
    case TraceKind::kSpmsReqCrosszone:
    case TraceKind::kSpinReq: {
      Span& s = span_of(r.item, r.node);
      ++s.requests;
      if (s.t_start_ms < 0.0) s.t_start_ms = t;
      if (s.t_first_req_ms < 0.0) s.t_first_req_ms = t;
      break;
    }
    case TraceKind::kSpmsData:
    case TraceKind::kSpinData:
    case TraceKind::kFloodData: {
      Span& s = span_of(r.item, r.node);
      if (s.t_start_ms < 0.0) s.t_start_ms = t;
      if (!s.has_data) {
        s.has_data = true;
        s.t_data_ms = t;
        s.parent = r.parent.valid() ? r.parent : r.peer;
        s.data_src = r.peer;
      }
      break;
    }
    case TraceKind::kDelivery: {
      Span& s = span_of(r.item, r.node);
      if (s.t_start_ms < 0.0) s.t_start_ms = t;
      if (s.t_data_ms < 0.0) s.t_data_ms = t;
      s.has_data = true;
      s.delivered = true;
      s.delay_ms = r.value;
      break;
    }
    case TraceKind::kGiveUp: {
      Span& s = span_of(r.item, r.node);
      if (s.t_start_ms < 0.0) s.t_start_ms = t;
      s.gave_up = true;
      break;
    }
    case TraceKind::kSpmsRelayReq:
      ++relay_[r.node].req_frames;
      break;
    case TraceKind::kSpmsRelayData:
      ++relay_[r.node].data_frames;
      break;
    default:
      break;  // no span content (ADVs, drops, faults, battery, routing…)
  }
}

const Span* SpanTrace::find(net::DataId item, net::NodeId node) const {
  const auto it = index_.find(Key{item, node});
  return it == index_.end() ? nullptr : &spans_[it->second];
}

const Span* SpanTrace::parent_of(const Span& s) const {
  if (!s.parent.valid()) return nullptr;
  return find(s.item, s.parent);
}

int SpanTrace::depth_of(const Span& s) const {
  int depth = 0;
  const Span* cur = &s;
  // The chain length is bounded by the span count; anything longer is a
  // cycle (a corrupt stream) and reads as broken rather than looping.
  for (std::size_t guard = 0; guard <= spans_.size(); ++guard) {
    if (cur->root) return depth;
    const Span* up = parent_of(*cur);
    if (up == nullptr) return -1;
    cur = up;
    ++depth;
  }
  return -1;
}

JourneyStats SpanTrace::journey_stats() const {
  JourneyStats js;
  js.spans = spans_.size();
  for (const auto& s : spans_) {
    if (!s.delivered) continue;
    ++js.delivered;
    const int d = depth_of(s);
    if (d >= 0) {
      ++js.complete;
      js.max_depth = std::max(js.max_depth, static_cast<std::size_t>(d));
    } else {
      ++js.orphaned;
    }
  }
  return js;
}

std::vector<std::pair<net::NodeId, RelayLoad>> SpanTrace::relay_loads() const {
  std::vector<std::pair<net::NodeId, RelayLoad>> out(relay_.begin(), relay_.end());
  std::sort(out.begin(), out.end(),
            [](const auto& a, const auto& b) { return a.first.v < b.first.v; });
  return out;
}

void SpanTrace::write_jsonl(std::ostream& out, std::uint64_t ring_dropped) const {
  std::string line;
  for (const auto& s : spans_) {
    line.clear();
    line += R"({"type":"span","item":")";
    append_item(line, s.item);
    line += R"(","node":)";
    append_u64(line, s.node.v);
    if (s.parent.valid()) {
      line += R"(,"parent":)";
      append_u64(line, s.parent.v);
    }
    if (s.data_src.valid() && s.data_src != s.parent) {
      line += R"(,"data_src":)";
      append_u64(line, s.data_src.v);
    }
    line += R"(,"t_start_ms":)";
    append_double(line, s.t_start_ms);
    if (s.t_first_req_ms >= 0.0) {
      line += R"(,"t_first_req_ms":)";
      append_double(line, s.t_first_req_ms);
    }
    if (s.t_data_ms >= 0.0) {
      line += R"(,"t_data_ms":)";
      append_double(line, s.t_data_ms);
    }
    if (s.delivered) {
      line += R"(,"delay_ms":)";
      append_double(line, s.delay_ms);
    }
    line += R"(,"requests":)";
    append_u64(line, s.requests);
    const int depth = depth_of(s);
    if (depth >= 0) {
      line += R"(,"depth":)";
      append_u64(line, static_cast<std::uint64_t>(depth));
    }
    if (s.root) line += R"(,"root":1)";
    if (s.delivered) line += R"(,"delivered":1)";
    if (s.gave_up) line += R"(,"gave_up":1)";
    line += "}\n";
    out << line;
  }
  const JourneyStats js = journey_stats();
  line.clear();
  line += R"({"type":"span-summary","spans":)";
  append_u64(line, js.spans);
  line += R"(,"delivered":)";
  append_u64(line, js.delivered);
  line += R"(,"complete":)";
  append_u64(line, js.complete);
  line += R"(,"orphaned":)";
  append_u64(line, js.orphaned);
  line += R"(,"max_depth":)";
  append_u64(line, js.max_depth);
  line += R"(,"records_seen":)";
  append_u64(line, records_seen_);
  line += R"(,"ring_dropped":)";
  append_u64(line, ring_dropped);
  line += "}\n";
  out << line;
}

void SpanTrace::write_perfetto(std::ostream& out) const {
  // Chrome trace-event format: timestamps in microseconds.  Each item maps
  // to one pid (its first-seen index) so the UI groups a journey's slices;
  // tid is the node.  Flow events draw the parent->child causality arrows.
  std::string line;
  out << "{\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& ev) {
    if (!first) out << ',';
    first = false;
    out << '\n' << ev;
  };

  std::unordered_map<net::DataId, std::size_t> item_pid;
  const auto pid_of = [&](net::DataId item) {
    return item_pid.try_emplace(item, item_pid.size()).first->second;
  };

  for (std::size_t i = 0; i < spans_.size(); ++i) {
    const Span& s = spans_[i];
    if (s.t_start_ms < 0.0) continue;
    const double end_ms = s.t_data_ms >= 0.0 ? s.t_data_ms : s.t_start_ms;
    line.clear();
    line += R"({"name":")";
    append_item(line, s.item);
    line += "@n";
    append_u64(line, s.node.v);
    line += R"(","cat":"span","ph":"X","ts":)";
    append_double(line, s.t_start_ms * 1000.0);
    line += R"(,"dur":)";
    append_double(line, (end_ms - s.t_start_ms) * 1000.0);
    line += R"(,"pid":)";
    append_u64(line, pid_of(s.item));
    line += R"(,"tid":)";
    append_u64(line, s.node.v);
    line += R"(,"args":{"requests":)";
    append_u64(line, s.requests);
    if (s.parent.valid()) {
      line += R"(,"parent":)";
      append_u64(line, s.parent.v);
    }
    if (s.delivered) {
      line += R"(,"delay_ms":)";
      append_double(line, s.delay_ms);
    }
    line += s.root ? R"(,"root":1}})" : "}}";
    emit(line);

    // Flow arrow from the parent's completion to this span's completion.
    const Span* up = parent_of(s);
    if (up == nullptr || up->t_data_ms < 0.0 || s.t_data_ms < 0.0) continue;
    const std::uint64_t flow_id = static_cast<std::uint64_t>(i) + 1;
    line.clear();
    line += R"({"name":"hop","cat":"hop","ph":"s","id":)";
    append_u64(line, flow_id);
    line += R"(,"ts":)";
    append_double(line, up->t_data_ms * 1000.0);
    line += R"(,"pid":)";
    append_u64(line, pid_of(s.item));
    line += R"(,"tid":)";
    append_u64(line, up->node.v);
    line += '}';
    emit(line);
    line.clear();
    line += R"({"name":"hop","cat":"hop","ph":"f","bp":"e","id":)";
    append_u64(line, flow_id);
    line += R"(,"ts":)";
    append_double(line, s.t_data_ms * 1000.0);
    line += R"(,"pid":)";
    append_u64(line, pid_of(s.item));
    line += R"(,"tid":)";
    append_u64(line, s.node.v);
    line += '}';
    emit(line);
  }
  out << "\n]}\n";
}

}  // namespace spms::obs
