#pragma once

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

/// \file metrics.hpp
/// Named metrics with O(1) hot-path updates.
///
/// Three instrument families:
///
///  * counters — monotonically increasing u64s, updated through a
///    pre-resolved CounterHandle (a plain index; no string lookup after
///    registration);
///  * gauges — pull-style: a named callback sampled only at observation
///    points (the Sampler's dispatch hook or the final export), so the
///    layers keep their native counters as the single source of truth and
///    the hot path pays nothing;
///  * histograms — fixed bucket bounds resolved at registration, updated
///    through a HistogramHandle (one upper_bound over a handful of doubles).
///
/// A registry is per-run plumbing, not a global: TelemetrySession owns one
/// and the layers register against it when (and only when) telemetry is on.

namespace spms::obs {

/// Pre-resolved counter index.  Default-constructed handles are invalid and
/// add() through them is a checked no-op, so emit sites can keep handles
/// unconditionally and only registration is gated on telemetry.
struct CounterHandle {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t idx = kInvalid;
  [[nodiscard]] constexpr bool valid() const { return idx != kInvalid; }
};

/// Pre-resolved histogram index.
struct HistogramHandle {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;
  std::uint32_t idx = kInvalid;
  [[nodiscard]] constexpr bool valid() const { return idx != kInvalid; }
};

/// Snapshot of one histogram for export.
struct HistogramSnapshot {
  std::string name;
  std::vector<double> bounds;        ///< upper bounds, ascending; +inf implied last
  std::vector<std::uint64_t> counts; ///< bounds.size() + 1 buckets
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Detached copy of a registry's counters and histograms — what a RunResult
/// can carry after the registry (and the run that owned it) is gone.  Gauges
/// are deliberately absent: they are views into live simulation state and
/// die with it.
struct MetricsSnapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< registration order
  std::vector<HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const { return counters.empty() && histograms.empty(); }

  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    return 0;
  }
};

/// The per-run metrics registry.
class MetricsRegistry {
 public:
  using GaugeFn = std::function<double()>;

  /// Registers (or finds) a counter and returns its handle.
  CounterHandle counter(std::string_view name);

  /// O(1) hot-path add; invalid handles are ignored.
  void add(CounterHandle h, std::uint64_t delta = 1) {
    if (h.valid()) counters_[h.idx].value += delta;
  }

  /// Registers a pull gauge; re-registering a name replaces its callback.
  void register_gauge(std::string_view name, GaugeFn fn);

  /// Registers (or finds) a histogram with the given ascending upper
  /// bounds; a final +inf bucket is implicit.
  HistogramHandle histogram(std::string_view name, std::vector<double> bounds);

  /// Records one observation; invalid handles are ignored.
  void observe(HistogramHandle h, double v);

  /// Looks up a counter's current value (0 when unregistered) — test /
  /// export convenience, not the hot path.
  [[nodiscard]] std::uint64_t counter_value(std::string_view name) const;

  /// Evaluates a gauge by name; 0 when unregistered.
  [[nodiscard]] double gauge_value(std::string_view name) const;

  /// Gauge names in registration order (the Sampler's column order).
  [[nodiscard]] std::vector<std::string> gauge_names() const;

  /// Evaluates every gauge in registration order.
  [[nodiscard]] std::vector<double> sample_gauges() const;

  /// Export iteration, registration order.
  void visit_counters(const std::function<void(std::string_view, std::uint64_t)>& fn) const;
  void visit_gauges(const std::function<void(std::string_view, double)>& fn) const;
  [[nodiscard]] std::vector<HistogramSnapshot> histogram_snapshots() const;

  /// Detached counters + histograms (see MetricsSnapshot).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Prometheus text exposition (version 0.0.4): counters and evaluated
  /// gauges as single samples, histograms as the le-bucket family
  /// (`_bucket`/`_sum`/`_count`).  Metric names are sanitized to the
  /// [a-zA-Z0-9_] charset ('.' and '-' become '_').
  void write_prometheus(std::ostream& out) const;

  [[nodiscard]] std::size_t counter_count() const { return counters_.size(); }
  [[nodiscard]] std::size_t gauge_count() const { return gauges_.size(); }

 private:
  struct Counter {
    std::string name;
    std::uint64_t value = 0;
  };
  struct Gauge {
    std::string name;
    GaugeFn fn;
  };
  struct Histogram {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;
    std::uint64_t count = 0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  std::vector<Counter> counters_;
  std::vector<Gauge> gauges_;
  std::vector<Histogram> histograms_;
  std::unordered_map<std::string, std::uint32_t> counter_index_;
  std::unordered_map<std::string, std::uint32_t> gauge_index_;
  std::unordered_map<std::string, std::uint32_t> histogram_index_;
};

}  // namespace spms::obs
