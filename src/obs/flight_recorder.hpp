#pragma once

#include <cstddef>
#include <cstdint>
#include <ostream>

#include "obs/event_trace.hpp"
#include "obs/span_trace.hpp"

/// \file flight_recorder.hpp
/// Anomaly-triggered post-mortem dumps.
///
/// A FlightRecorder watches the typed trace stream for anomalies — a
/// delivery failure (kGiveUp), a node death (kFaultTransition), which is
/// also how sink churn manifests — and on each one dumps the EventTrace's
/// bounded ring (the recent past) plus every open span (acquisitions in
/// flight) to a JSONL file.  Dump count is capped so a fault storm yields
/// the first few post-mortems instead of an unbounded file.
///
/// Strictly observational: observe() only reads the ring and the span set,
/// so an attached recorder keeps the zero-perturbation contract.

namespace spms::obs {

class FlightRecorder {
 public:
  /// Anomalies after the cap only count (`suppressed()`), they don't dump.
  static constexpr std::size_t kDefaultMaxDumps = 8;

  /// `events` supplies the ring snapshot, `spans` the open spans; both must
  /// outlive the recorder.  `out` receives the JSONL dump stream.
  FlightRecorder(const EventTrace& events, const SpanTrace& spans, std::ostream& out,
                 std::size_t max_dumps = kDefaultMaxDumps)
      : events_(events), spans_(spans), out_(out), max_dumps_(max_dumps) {}

  /// Feed every trace record (after the SpanTrace consumed it, so open
  /// spans reflect the state at the trigger instant).
  void observe(const TraceRecord& r);

  [[nodiscard]] std::size_t dumps() const { return dumps_; }
  [[nodiscard]] std::size_t suppressed() const { return suppressed_; }

 private:
  [[nodiscard]] static bool is_anomaly(const TraceRecord& r) {
    return r.kind == TraceKind::kGiveUp || r.kind == TraceKind::kFaultTransition;
  }

  void dump(const TraceRecord& trigger);

  const EventTrace& events_;
  const SpanTrace& spans_;
  std::ostream& out_;
  std::size_t max_dumps_;
  std::size_t dumps_ = 0;
  std::size_t suppressed_ = 0;
};

}  // namespace spms::obs
