#include "obs/event_trace.hpp"

#include <charconv>
#include <cstdio>

namespace spms::obs {

namespace {

void append_node(std::string& s, net::NodeId id) {
  s += 'n';
  if (id.v == net::NodeId::kInvalid) {
    s += '?';
    return;
  }
  char buf[16];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, id.v);
  s.append(buf, p);
}

void append_item(std::string& s, net::DataId item) {
  append_node(s, item.origin);
  s += '#';
  char buf[16];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, item.seq);
  s.append(buf, p);
}

/// Shortest round-trip double rendering (same contract as the store's
/// canonical JSON; duplicated here because obs must not depend on exp).
void append_double(std::string& s, double v) {
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

/// message = "<verb> <node> <item>" + optional suffix pieces.
std::string verb_line(const char* verb, const TraceRecord& r) {
  std::string m{verb};
  m += ' ';
  append_node(m, r.node);
  m += ' ';
  append_item(m, r.item);
  return m;
}

}  // namespace

std::optional<LegacyLine> format_legacy(const TraceRecord& r) {
  switch (r.kind) {
    case TraceKind::kSpmsAdv:
      return LegacyLine{"spms", verb_line("adv", r)};
    case TraceKind::kSpmsReqDirect: {
      auto m = verb_line("req-direct", r);
      m += " to ";
      append_node(m, r.peer);
      return LegacyLine{"spms", std::move(m)};
    }
    case TraceKind::kSpmsReqMultihop: {
      auto m = verb_line("req-multihop", r);
      m += " to ";
      append_node(m, r.peer);
      m += " via ";
      append_node(m, r.via);
      return LegacyLine{"spms", std::move(m)};
    }
    case TraceKind::kSpmsReqCrosszone: {
      auto m = verb_line("req-crosszone", r);
      m += " to ";
      append_node(m, r.peer);
      m += " via ";
      append_node(m, r.via);
      return LegacyLine{"spms", std::move(m)};
    }
    case TraceKind::kSpmsCourierAdv:
      return LegacyLine{"spms", verb_line("courier-adv", r)};
    case TraceKind::kSpmsRelayReq: {
      auto m = verb_line("relay-req", r);
      m += " for ";
      append_node(m, r.peer);
      m += " to ";
      append_node(m, r.via);
      return LegacyLine{"spms", std::move(m)};
    }
    case TraceKind::kSpmsRelayData: {
      auto m = verb_line("relay-data", r);
      m += " for ";
      append_node(m, r.peer);
      return LegacyLine{"spms", std::move(m)};
    }
    case TraceKind::kSpmsData: {
      auto m = verb_line("data", r);
      m += " from ";
      append_node(m, r.peer);
      return LegacyLine{"spms", std::move(m)};
    }
    case TraceKind::kSpinAdv:
      return LegacyLine{"spin", verb_line("adv", r)};
    case TraceKind::kSpinReq: {
      auto m = verb_line("req", r);
      m += " to ";
      append_node(m, r.peer);
      return LegacyLine{"spin", std::move(m)};
    }
    case TraceKind::kSpinData: {
      auto m = verb_line("data", r);
      m += " from ";
      append_node(m, r.peer);
      return LegacyLine{"spin", std::move(m)};
    }
    case TraceKind::kNodeDown:
      return LegacyLine{"failure", "node down"};
    default:
      return std::nullopt;
  }
}

const char* trace_kind_name(TraceKind k) {
  switch (k) {
    case TraceKind::kPublish: return "publish";
    case TraceKind::kDelivery: return "delivery";
    case TraceKind::kFrameDrop: return "frame-drop";
    case TraceKind::kFaultTransition: return "fault-transition";
    case TraceKind::kBatteryThreshold: return "battery-threshold";
    case TraceKind::kRouteChange: return "route-change";
    case TraceKind::kSpmsAdv: return "spms-adv";
    case TraceKind::kSpmsReqDirect: return "spms-req-direct";
    case TraceKind::kSpmsReqMultihop: return "spms-req-multihop";
    case TraceKind::kSpmsReqCrosszone: return "spms-req-crosszone";
    case TraceKind::kSpmsCourierAdv: return "spms-courier-adv";
    case TraceKind::kSpmsRelayReq: return "spms-relay-req";
    case TraceKind::kSpmsRelayData: return "spms-relay-data";
    case TraceKind::kSpmsData: return "spms-data";
    case TraceKind::kSpinAdv: return "spin-adv";
    case TraceKind::kSpinReq: return "spin-req";
    case TraceKind::kSpinData: return "spin-data";
    case TraceKind::kNodeDown: return "node-down";
    case TraceKind::kFloodData: return "flood-data";
    case TraceKind::kGiveUp: return "give-up";
  }
  return "unknown";
}

const char* trace_cause_name(TraceKind k, std::uint8_t cause) {
  switch (k) {
    case TraceKind::kFrameDrop:
      switch (static_cast<DropCause>(cause)) {
        case DropCause::kSenderDown: return "sender-down";
        case DropCause::kOutOfRange: return "out-of-range";
        case DropCause::kReceiverDown: return "receiver-down";
        case DropCause::kLinkFault: return "link-fault";
        case DropCause::kBatteryDead: return "battery-dead";
      }
      return "unknown";
    case TraceKind::kFaultTransition:
      switch (static_cast<FaultPhase>(cause)) {
        case FaultPhase::kDown: return "down";
        case FaultPhase::kRepair: return "repair";
        case FaultPhase::kPermanentDeath: return "permanent-death";
      }
      return "unknown";
    case TraceKind::kBatteryThreshold:
      switch (static_cast<BatteryBucket>(cause)) {
        case BatteryBucket::kAbove50: return "above-50pct";
        case BatteryBucket::kBelow50: return "below-50pct";
        case BatteryBucket::kBelow20: return "below-20pct";
        case BatteryBucket::kBelow10: return "below-10pct";
        case BatteryBucket::kDepleted: return "depleted";
      }
      return "unknown";
    default:
      return nullptr;
  }
}

void append_record_json(const TraceRecord& r, std::string& out) {
  out += "{\"t_ms\":";
  append_double(out, r.at.to_ms());
  out += ",\"kind\":\"";
  out += trace_kind_name(r.kind);
  out += '"';
  if (const char* cause = trace_cause_name(r.kind, r.cause)) {
    out += ",\"cause\":\"";
    out += cause;
    out += '"';
  }
  if (r.node.valid()) {
    out += ",\"node\":";
    append_u64(out, r.node.v);
  }
  if (r.peer.valid()) {
    out += ",\"peer\":";
    append_u64(out, r.peer.v);
  }
  if (r.via.valid()) {
    out += ",\"via\":";
    append_u64(out, r.via.v);
  }
  if (r.parent.valid()) {
    out += ",\"parent\":";
    append_u64(out, r.parent.v);
  }
  if (r.item.origin.valid()) {
    out += ",\"item\":\"";
    append_node(out, r.item.origin);
    out += '#';
    append_u64(out, r.item.seq);
    out += '"';
  }
  out += ",\"value\":";
  append_double(out, r.value);
  out += '}';
}

std::vector<TraceRecord> EventTrace::ring_snapshot() const {
  std::vector<TraceRecord> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(ring_head_ + i) % ring_.size()]);
  }
  return out;
}

}  // namespace spms::obs
