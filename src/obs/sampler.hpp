#pragma once

#include <utility>

#include "obs/metrics.hpp"
#include "obs/series.hpp"
#include "sim/time.hpp"

/// \file sampler.hpp
/// Time-series sampling at event-dispatch boundaries.
///
/// The Sampler never schedules events of its own: it observes the clock
/// through the Scheduler's dispatch hook (called after each executed
/// event), and whenever the run has advanced past the next due instant it
/// snapshots every registered gauge.  Because it neither schedules nor
/// draws randomness, enabling it cannot perturb the event stream — the
/// sample instants are simply the firing times of whatever events the run
/// already had (so intervals are lower bounds: a quiet queue samples late).

namespace spms::obs {

class Sampler {
 public:
  /// Samples every `interval` (first sample at the first dispatch).
  Sampler(const MetricsRegistry& registry, sim::Duration interval)
      : registry_(registry), interval_(interval) {}

  /// Dispatch-hook body: snapshots gauges when `now` has reached the next
  /// due instant, then advances the due instant past `now`.
  void observe(sim::TimePoint now) {
    if (now < next_due_) return;
    if (series_.names.empty()) series_.names = registry_.gauge_names();
    series_.t_ms.push_back(now.to_ms());
    series_.rows.push_back(registry_.sample_gauges());
    // Advance on a fixed grid so a burst of events yields one sample, and
    // long event gaps don't produce catch-up duplicates.
    do {
      next_due_ = next_due_ + interval_;
    } while (next_due_ <= now);
  }

  [[nodiscard]] const SeriesSet& series() const { return series_; }
  [[nodiscard]] SeriesSet take_series() { return std::exchange(series_, SeriesSet{}); }
  [[nodiscard]] sim::Duration interval() const { return interval_; }

 private:
  const MetricsRegistry& registry_;
  sim::Duration interval_;
  sim::TimePoint next_due_;  ///< zero(): sample on the very first dispatch
  SeriesSet series_;
};

}  // namespace spms::obs
