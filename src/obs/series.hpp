#pragma once

#include <string>
#include <vector>

/// \file series.hpp
/// Time-series container filled by the Sampler: one row of gauge values per
/// sample instant.  Carried on RunResult when sampling was requested (empty
/// otherwise) but never serialized into the result store — series are
/// per-run diagnostics, not part of the canonical result record.

namespace spms::obs {

struct SeriesSet {
  std::vector<std::string> names;          ///< gauge names, column order
  std::vector<double> t_ms;                ///< sample instants
  std::vector<std::vector<double>> rows;   ///< rows[i] parallel to names

  [[nodiscard]] bool empty() const { return t_ms.empty(); }
  [[nodiscard]] std::size_t samples() const { return t_ms.size(); }

  /// Column `c` across all samples (copy; export convenience).
  [[nodiscard]] std::vector<double> column(std::size_t c) const {
    std::vector<double> out;
    out.reserve(rows.size());
    for (const auto& row : rows) out.push_back(row[c]);
    return out;
  }
};

}  // namespace spms::obs
