#include "obs/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <charconv>
#include <cmath>

namespace spms::obs {

namespace {

/// Prometheus metric names allow [a-zA-Z_:][a-zA-Z0-9_:]*; our registry
/// names use '.' and '-' as separators, which map to '_'.
std::string prom_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out.front() >= '0' && out.front() <= '9')) out.insert(out.begin(), '_');
  return out;
}

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

void append_double(std::string& s, double v) {
  if (std::isinf(v)) {
    s += v > 0 ? "+Inf" : "-Inf";
    return;
  }
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

}  // namespace

CounterHandle MetricsRegistry::counter(std::string_view name) {
  const auto it = counter_index_.find(std::string{name});
  if (it != counter_index_.end()) return CounterHandle{it->second};
  const auto idx = static_cast<std::uint32_t>(counters_.size());
  counters_.push_back(Counter{std::string{name}, 0});
  counter_index_.emplace(std::string{name}, idx);
  return CounterHandle{idx};
}

void MetricsRegistry::register_gauge(std::string_view name, GaugeFn fn) {
  const auto it = gauge_index_.find(std::string{name});
  if (it != gauge_index_.end()) {
    gauges_[it->second].fn = std::move(fn);
    return;
  }
  const auto idx = static_cast<std::uint32_t>(gauges_.size());
  gauges_.push_back(Gauge{std::string{name}, std::move(fn)});
  gauge_index_.emplace(std::string{name}, idx);
}

HistogramHandle MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  assert(std::is_sorted(bounds.begin(), bounds.end()));
  const auto it = histogram_index_.find(std::string{name});
  if (it != histogram_index_.end()) return HistogramHandle{it->second};
  const auto idx = static_cast<std::uint32_t>(histograms_.size());
  Histogram h;
  h.name = std::string{name};
  h.counts.assign(bounds.size() + 1, 0);
  h.bounds = std::move(bounds);
  histograms_.push_back(std::move(h));
  histogram_index_.emplace(std::string{name}, idx);
  return HistogramHandle{idx};
}

void MetricsRegistry::observe(HistogramHandle h, double v) {
  if (!h.valid()) return;
  Histogram& hist = histograms_[h.idx];
  // Inclusive upper bounds (v == bound lands in that bound's bucket), the
  // usual le-bucket convention: lower_bound finds the first bound >= v.
  const auto it = std::lower_bound(hist.bounds.begin(), hist.bounds.end(), v);
  ++hist.counts[static_cast<std::size_t>(it - hist.bounds.begin())];
  if (hist.count == 0) {
    hist.min = hist.max = v;
  } else {
    hist.min = std::min(hist.min, v);
    hist.max = std::max(hist.max, v);
  }
  ++hist.count;
  hist.sum += v;
}

std::uint64_t MetricsRegistry::counter_value(std::string_view name) const {
  const auto it = counter_index_.find(std::string{name});
  return it == counter_index_.end() ? 0 : counters_[it->second].value;
}

double MetricsRegistry::gauge_value(std::string_view name) const {
  const auto it = gauge_index_.find(std::string{name});
  return it == gauge_index_.end() ? 0.0 : gauges_[it->second].fn();
}

std::vector<std::string> MetricsRegistry::gauge_names() const {
  std::vector<std::string> names;
  names.reserve(gauges_.size());
  for (const Gauge& g : gauges_) names.push_back(g.name);
  return names;
}

std::vector<double> MetricsRegistry::sample_gauges() const {
  std::vector<double> out;
  out.reserve(gauges_.size());
  for (const Gauge& g : gauges_) out.push_back(g.fn());
  return out;
}

void MetricsRegistry::visit_counters(
    const std::function<void(std::string_view, std::uint64_t)>& fn) const {
  for (const Counter& c : counters_) fn(c.name, c.value);
}

void MetricsRegistry::visit_gauges(const std::function<void(std::string_view, double)>& fn) const {
  for (const Gauge& g : gauges_) fn(g.name, g.fn());
}

std::vector<HistogramSnapshot> MetricsRegistry::histogram_snapshots() const {
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const Histogram& h : histograms_) {
    out.push_back(HistogramSnapshot{h.name, h.bounds, h.counts, h.count, h.sum, h.min, h.max});
  }
  return out;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  MetricsSnapshot out;
  out.counters.reserve(counters_.size());
  for (const Counter& c : counters_) out.counters.emplace_back(c.name, c.value);
  out.histograms = histogram_snapshots();
  return out;
}

void MetricsRegistry::write_prometheus(std::ostream& out) const {
  std::string buf;
  for (const Counter& c : counters_) {
    const std::string name = prom_name(c.name);
    buf.clear();
    buf += "# TYPE ";
    buf += name;
    buf += " counter\n";
    buf += name;
    buf += ' ';
    append_u64(buf, c.value);
    buf += '\n';
    out << buf;
  }
  for (const Gauge& g : gauges_) {
    const std::string name = prom_name(g.name);
    buf.clear();
    buf += "# TYPE ";
    buf += name;
    buf += " gauge\n";
    buf += name;
    buf += ' ';
    append_double(buf, g.fn());
    buf += '\n';
    out << buf;
  }
  for (const Histogram& h : histograms_) {
    const std::string name = prom_name(h.name);
    buf.clear();
    buf += "# TYPE ";
    buf += name;
    buf += " histogram\n";
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cumulative += h.counts[i];
      buf += name;
      buf += "_bucket{le=\"";
      if (i < h.bounds.size()) {
        append_double(buf, h.bounds[i]);
      } else {
        buf += "+Inf";
      }
      buf += "\"} ";
      append_u64(buf, cumulative);
      buf += '\n';
    }
    buf += name;
    buf += "_sum ";
    append_double(buf, h.sum);
    buf += '\n';
    buf += name;
    buf += "_count ";
    append_u64(buf, h.count);
    buf += '\n';
    out << buf;
  }
}

}  // namespace spms::obs
