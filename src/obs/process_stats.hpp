#pragma once

#include <cstddef>

/// \file process_stats.hpp
/// OS-level process statistics shared by the observability layer and the
/// benches.  Kept dependency-free (no sim/net includes) so anything — the
/// telemetry gauge catalog, bench binaries, tests — can pull a number
/// without dragging the simulator in.

namespace spms::obs {

/// Peak resident set size of this process, in bytes.  Monotonic over the
/// process lifetime (the kernel high-water mark never decreases), so
/// per-workload peaks require running workloads in ascending size order.
/// Returns 0 when the platform cannot report it.
[[nodiscard]] std::size_t peak_rss_bytes();

}  // namespace spms::obs
