#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

/// \file event_trace.hpp
/// Typed event tracing for simulations.
///
/// Every layer emits fixed-size tagged records (publish, delivery, frame
/// drop, fault transition, battery threshold, route change, protocol
/// verbs) instead of formatted strings.  Consumers choose their view:
///
///  * a bounded ring buffer keeps the last N records in memory (post-mortem
///    of long runs without unbounded growth);
///  * a telemetry sink streams records (e.g. to a JSONL file);
///  * a legacy sink receives the records that have a string-era rendering,
///    formatted on demand by format_legacy() — this is what keeps the old
///    `sim::Trace` string API alive as a thin adapter.
///
/// When no consumer is installed, enabled() is false and every emit site is
/// a single branch — records are never even constructed.  Emission never
/// touches the scheduler or the RNG, so enabling tracing leaves the event
/// stream byte-identical (the zero-perturbation contract, pinned by the
/// telemetry determinism suite).

namespace spms::obs {

/// Discriminator of one trace record.
enum class TraceKind : std::uint8_t {
  // Cross-layer lifecycle records.
  kPublish = 0,           ///< traffic source published an item at `node`
  kDelivery,              ///< protocol delivered `item` to `node`; value = delay ms
  kFrameDrop,             ///< MAC/PHY dropped a frame; cause = DropCause
  kFaultTransition,       ///< node went down / was repaired / died; cause = FaultPhase
  kBatteryThreshold,      ///< residual crossed a bucket; cause = BatteryBucket
  kRouteChange,           ///< DBF rebuild changed `value` entries at `node`
  // Protocol verbs (the records behind the legacy string trace).
  kSpmsAdv,               ///< zone-wide ADV of `item` by `node`
  kSpmsReqDirect,         ///< REQ to `peer` (single hop)
  kSpmsReqMultihop,       ///< REQ to `peer` via `via`
  kSpmsReqCrosszone,      ///< cross-zone REQ to `peer` via `via`
  kSpmsCourierAdv,        ///< courier re-ADV after crossing zones
  kSpmsRelayReq,          ///< relayed REQ for `peer` toward `via`
  kSpmsRelayData,         ///< relayed DATA for `peer`
  kSpmsData,              ///< DATA for `item` sent by `node` (src = `peer`)
  kSpinAdv,
  kSpinReq,               ///< REQ of `item` to `peer`
  kSpinData,              ///< DATA of `item` from `peer`
  kNodeDown,              ///< legacy FailureInjector crash notice
  kFloodData,             ///< flooding: first copy of `item` reached `node` from `peer`
  kGiveUp,                ///< acquisition abandoned after max retries; value = attempts
};

/// Number of TraceKind values (sized for per-kind lookup tables).
inline constexpr std::size_t kTraceKindCount =
    static_cast<std::size_t>(TraceKind::kGiveUp) + 1;

/// Cause codes for kFrameDrop; mirrors net::NetCounters' dropped_* fields.
enum class DropCause : std::uint8_t {
  kSenderDown = 0,
  kOutOfRange,
  kReceiverDown,
  kLinkFault,
  kBatteryDead,
};

/// Cause codes for kFaultTransition.
enum class FaultPhase : std::uint8_t {
  kDown = 0,
  kRepair,
  kPermanentDeath,
};

/// Cause codes for kBatteryThreshold: the bucket just *entered*.  Ordered so
/// that a node's bucket only ever increases; one record per crossing.
enum class BatteryBucket : std::uint8_t {
  kAbove50 = 0,  ///< initial state, never emitted
  kBelow50,
  kBelow20,
  kBelow10,
  kDepleted,
};

/// One fixed-size trace record.  `cause` is interpreted per kind (DropCause,
/// FaultPhase or BatteryBucket); unused fields stay at their invalid /
/// zero defaults and are omitted from the JSONL rendering.
struct TraceRecord {
  sim::TimePoint at;
  TraceKind kind = TraceKind::kPublish;
  std::uint8_t cause = 0;
  net::NodeId node;   ///< primary subject
  net::NodeId peer;   ///< counterpart (REQ target, DATA source, requester…)
  net::NodeId via;    ///< relay / next hop where applicable
  /// Causal parent of this record's (item, node) span: the upstream node
  /// whose span the data came from (the answering holder for SPMS — which
  /// may differ from `peer` when relays carried the DATA — the serving
  /// advertiser for SPIN, the rebroadcaster for flooding).  Invalid on
  /// records that carry no causality; SpanTrace links journeys through it.
  net::NodeId parent;
  net::DataId item;
  double value = 0.0;  ///< delay ms, residual fraction, changed entries…
};

/// A legacy (category, message) rendering of a typed record.
struct LegacyLine {
  std::string category;
  std::string message;
};

/// Renders `r` exactly as the string-based trace used to (e.g. kSpmsAdv ->
/// ("spms", "adv n3 n0#1")), or nullopt for kinds the string era never had.
[[nodiscard]] std::optional<LegacyLine> format_legacy(const TraceRecord& r);

/// Stable kind name used in the JSONL rendering ("frame-drop", …).
[[nodiscard]] const char* trace_kind_name(TraceKind k);

/// Stable cause name for the record's kind, or nullptr when the kind
/// carries no cause.
[[nodiscard]] const char* trace_cause_name(TraceKind k, std::uint8_t cause);

/// Appends the single-line JSON rendering of `r` (no trailing newline).
void append_record_json(const TraceRecord& r, std::string& out);

/// The typed trace hub.  At most one telemetry sink, one legacy sink and
/// one optional ring buffer; enabled() is true when any consumer exists.
class EventTrace {
 public:
  using Sink = std::function<void(const TraceRecord&)>;

  /// Installs (or clears, with nullptr) the telemetry sink.
  void set_sink(Sink sink) {
    sink_ = std::move(sink);
    refresh_enabled();
  }

  /// Installs (or clears) the legacy-adapter sink (see sim::Trace).
  void set_legacy_sink(Sink sink) {
    legacy_sink_ = std::move(sink);
    refresh_enabled();
  }

  /// Keeps the most recent `capacity` records in memory (0 disables).
  void enable_ring(std::size_t capacity) {
    ring_.clear();
    ring_.reserve(capacity);
    ring_capacity_ = capacity;
    ring_head_ = 0;
    dropped_ = 0;
    refresh_enabled();
  }

  /// True when any consumer is installed; emit sites use this to skip
  /// record construction entirely.
  [[nodiscard]] bool enabled() const { return enabled_; }

  /// Records `r`: appends to the ring (evicting the oldest when full) and
  /// forwards to both sinks.  No-op when nothing is installed.
  void emit(const TraceRecord& r) {
    if (!enabled_) return;
    ++emitted_;
    if (ring_capacity_ > 0) {
      if (ring_.size() < ring_capacity_) {
        ring_.push_back(r);
      } else {
        ring_[ring_head_] = r;
        ring_head_ = (ring_head_ + 1) % ring_capacity_;
        ++dropped_;
      }
    }
    if (sink_) sink_(r);
    if (legacy_sink_) legacy_sink_(r);
  }

  /// Records currently retained, oldest first.
  [[nodiscard]] std::vector<TraceRecord> ring_snapshot() const;

  /// Total records emitted while enabled.
  [[nodiscard]] std::uint64_t emitted() const { return emitted_; }
  /// Records evicted from the ring because it was full.
  [[nodiscard]] std::uint64_t dropped() const { return dropped_; }

 private:
  void refresh_enabled() {
    enabled_ = static_cast<bool>(sink_) || static_cast<bool>(legacy_sink_) || ring_capacity_ > 0;
  }

  Sink sink_;
  Sink legacy_sink_;
  std::vector<TraceRecord> ring_;
  std::size_t ring_capacity_ = 0;
  std::size_t ring_head_ = 0;
  std::uint64_t emitted_ = 0;
  std::uint64_t dropped_ = 0;
  bool enabled_ = false;
};

}  // namespace spms::obs
