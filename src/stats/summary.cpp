#include "stats/summary.hpp"

#include <cmath>

namespace spms::stats {

double Summary::stddev() const { return std::sqrt(variance()); }

double Summary::sample_stddev() const { return std::sqrt(sample_variance()); }

double Summary::stderr_mean() const {
  return n_ > 1 ? sample_stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

std::ostream& operator<<(std::ostream& os, const Summary& s) {
  return os << "n=" << s.count() << " mean=" << s.mean() << " sd=" << s.stddev()
            << " min=" << s.min() << " max=" << s.max();
}

}  // namespace spms::stats
