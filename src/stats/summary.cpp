#include "stats/summary.hpp"

#include <cmath>

namespace spms::stats {

double Summary::stddev() const { return std::sqrt(variance()); }

std::ostream& operator<<(std::ostream& os, const Summary& s) {
  return os << "n=" << s.count() << " mean=" << s.mean() << " sd=" << s.stddev()
            << " min=" << s.min() << " max=" << s.max();
}

}  // namespace spms::stats
