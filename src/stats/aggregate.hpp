#pragma once

#include <cstddef>
#include <ostream>

#include "stats/summary.hpp"

/// \file aggregate.hpp
/// Dispersion statistics of one metric across repeated observations
/// (typically: one experiment metric across seeds).  A frozen snapshot of a
/// Summary, cheap to copy into result tables.

namespace spms::stats {

/// mean / stddev / stderr / min / max of a metric over n observations.
/// stddev is the unbiased (n-1) sample deviation; stderr is the standard
/// error of the mean.  All fields are 0 for n == 0 (and the dispersion
/// fields for n == 1), matching Summary's conventions.
struct Aggregate {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double stderr_mean = 0.0;
  double min = 0.0;
  double max = 0.0;

  [[nodiscard]] static Aggregate of(const Summary& s);

  /// Accumulates observations one by one (convenience over a loop+Summary).
  [[nodiscard]] static Aggregate of_values(const double* xs, std::size_t n);
};

std::ostream& operator<<(std::ostream& os, const Aggregate& a);

}  // namespace spms::stats
