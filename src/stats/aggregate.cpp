#include "stats/aggregate.hpp"

namespace spms::stats {

Aggregate Aggregate::of(const Summary& s) {
  Aggregate a;
  a.n = s.count();
  a.mean = s.mean();
  a.stddev = s.sample_stddev();
  a.stderr_mean = s.stderr_mean();
  a.min = s.min();
  a.max = s.max();
  return a;
}

Aggregate Aggregate::of_values(const double* xs, std::size_t n) {
  Summary s;
  for (std::size_t i = 0; i < n; ++i) s.add(xs[i]);
  return of(s);
}

std::ostream& operator<<(std::ostream& os, const Aggregate& a) {
  return os << a.mean << " ± " << a.stderr_mean << " (sd=" << a.stddev << ", n=" << a.n
            << ", range [" << a.min << ", " << a.max << "])";
}

}  // namespace spms::stats
