#include "stats/tdigest.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>

namespace spms::stats {

TDigest::TDigest(double compression)
    : compression_(std::max(compression, 10.0)),
      buffer_cap_(static_cast<std::size_t>(8.0 * compression_)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  buffer_.reserve(buffer_cap_);
}

void TDigest::add(double x) {
  buffer_.push_back(x);
  ++count_;
  if (x < min_) min_ = x;
  if (x > max_) max_ = x;
  if (buffer_.size() >= buffer_cap_) flush();
}

double TDigest::k_scale(double q) const {
  return compression_ * (std::asin(2.0 * q - 1.0) / (2.0 * std::numbers::pi));
}

void TDigest::flush() {
  if (buffer_.empty()) return;
  std::sort(buffer_.begin(), buffer_.end());

  // Merge the sorted buffer with the sorted centroid list into `merged`
  // (classic two-way merge; buffered points are weight-1 centroids).
  std::vector<Centroid> merged;
  merged.reserve(centroids_.size() + buffer_.size());
  std::size_t ci = 0, bi = 0;
  while (ci < centroids_.size() || bi < buffer_.size()) {
    if (bi >= buffer_.size() ||
        (ci < centroids_.size() && centroids_[ci].mean <= buffer_[bi])) {
      merged.push_back(centroids_[ci++]);
    } else {
      merged.push_back({buffer_[bi++], 1.0});
    }
  }
  buffer_.clear();

  const double total = total_weight_ + static_cast<double>(bi);
  total_weight_ = total;

  // One compression pass: greedily absorb neighbors while the k-scale span
  // of the combined centroid stays under one unit.
  centroids_.clear();
  Centroid cur = merged.front();
  double w_before = 0.0;  // weight fully emitted before `cur`
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const Centroid& next = merged[i];
    const double q0 = w_before / total;
    const double q2 = (w_before + cur.weight + next.weight) / total;
    if (k_scale(q2) - k_scale(q0) <= 1.0) {
      // Weighted mean; accumulate in the numerically stable incremental form.
      const double w = cur.weight + next.weight;
      cur.mean += (next.mean - cur.mean) * (next.weight / w);
      cur.weight = w;
    } else {
      w_before += cur.weight;
      centroids_.push_back(cur);
      cur = next;
    }
  }
  centroids_.push_back(cur);
}

void TDigest::merge(const TDigest& other) {
  // Feed the other digest's state through the buffer path: centroids keep
  // their weights, buffered points arrive as weight-1 singletons.  Flushing
  // first keeps the merge one compression pass.
  flush();
  std::vector<Centroid> incoming = other.centroids_;
  for (const double x : other.buffer_) incoming.push_back({x, 1.0});
  if (incoming.empty()) return;
  std::sort(incoming.begin(), incoming.end(),
            [](const Centroid& a, const Centroid& b) { return a.mean < b.mean; });

  std::vector<Centroid> merged;
  merged.reserve(centroids_.size() + incoming.size());
  std::size_t ci = 0, ii = 0;
  while (ci < centroids_.size() || ii < incoming.size()) {
    if (ii >= incoming.size() ||
        (ci < centroids_.size() && centroids_[ci].mean <= incoming[ii].mean)) {
      merged.push_back(centroids_[ci++]);
    } else {
      merged.push_back(incoming[ii++]);
    }
  }
  double incoming_weight = 0.0;
  for (const Centroid& c : incoming) incoming_weight += c.weight;
  const double total = total_weight_ + incoming_weight;
  total_weight_ = total;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);

  centroids_.clear();
  Centroid cur = merged.front();
  double w_before = 0.0;
  for (std::size_t i = 1; i < merged.size(); ++i) {
    const Centroid& next = merged[i];
    const double q0 = w_before / total;
    const double q2 = (w_before + cur.weight + next.weight) / total;
    if (k_scale(q2) - k_scale(q0) <= 1.0) {
      const double w = cur.weight + next.weight;
      cur.mean += (next.mean - cur.mean) * (next.weight / w);
      cur.weight = w;
    } else {
      w_before += cur.weight;
      centroids_.push_back(cur);
      cur = next;
    }
  }
  centroids_.push_back(cur);
}

std::size_t TDigest::count() const { return count_; }

double TDigest::quantile(double q) {
  assert(q >= 0.0 && q <= 1.0 && "TDigest::quantile: q outside [0,1]");
  q = std::clamp(q, 0.0, 1.0);
  flush();
  if (centroids_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (centroids_.size() == 1) return centroids_.front().mean;
  if (q <= 0.0) return min_;
  if (q >= 1.0) return max_;

  const double target = q * total_weight_;
  // Walk centroids treating each as a mass at its mean, interpolating
  // between adjacent centroid midpoints (standard t-digest estimation with
  // exact min/max endpoints).
  double cum = 0.0;  // weight strictly before centroid i
  for (std::size_t i = 0; i < centroids_.size(); ++i) {
    const Centroid& c = centroids_[i];
    const double mid = cum + c.weight / 2.0;
    if (target < mid) {
      if (i == 0) {
        // Inside the first centroid: interpolate from the true minimum.
        const double span = mid;
        const double frac = span > 0.0 ? target / span : 0.0;
        return min_ + (c.mean - min_) * frac;
      }
      const Centroid& prev = centroids_[i - 1];
      const double prev_mid = cum - prev.weight / 2.0;
      const double frac = (target - prev_mid) / (mid - prev_mid);
      return prev.mean + (c.mean - prev.mean) * frac;
    }
    cum += c.weight;
  }
  // Past the last midpoint: interpolate toward the true maximum.
  const Centroid& last = centroids_.back();
  const double last_mid = total_weight_ - last.weight / 2.0;
  const double span = total_weight_ - last_mid;
  const double frac = span > 0.0 ? (target - last_mid) / span : 1.0;
  return last.mean + (max_ - last.mean) * std::clamp(frac, 0.0, 1.0);
}

std::size_t TDigest::memory_bytes() const {
  return centroids_.capacity() * sizeof(Centroid) + buffer_.capacity() * sizeof(double);
}

}  // namespace spms::stats
