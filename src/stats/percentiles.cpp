#include "stats/percentiles.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace spms::stats {

double Percentiles::quantile(double q) {
  assert(q >= 0.0 && q <= 1.0);
  if (xs_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return xs_[lo];
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

}  // namespace spms::stats
