#include "stats/percentiles.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace spms::stats {

double Percentiles::quantile(double q) {
  assert(q >= 0.0 && q <= 1.0 && "quantile: q outside [0,1]");
  q = std::clamp(q, 0.0, 1.0);  // release builds: clamp instead of UB below
  if (digest_) return digest_->quantile(q);
  if (xs_.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (!sorted_) {
    std::sort(xs_.begin(), xs_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(xs_.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  if (lo == hi) return xs_[lo];
  const double frac = pos - static_cast<double>(lo);
  return xs_[lo] * (1.0 - frac) + xs_[hi] * frac;
}

}  // namespace spms::stats
