#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "stats/tdigest.hpp"

/// \file percentiles.hpp
/// Quantile estimation behind one interface, with two engines:
///
///  * exact (default): retains every sample and interpolates between order
///    statistics (numpy's default convention).  Fits all the paper-scale
///    experiments and is byte-stable, so it stays the default everywhere.
///  * sketch (opt-in): a stats::TDigest — O(compression) memory no matter
///    how many samples arrive.  The scale-* scenario family opts in via
///    ExperimentConfig::stats, which participates in the config key (a
///    sketched run never shares cache entries with an exact run).
///
/// The exact engine reserves geometrically (explicit doubling from a fixed
/// floor) instead of relying on push_back's growth policy, and both engines
/// report sample_count()/memory_bytes() so collectors can expose footprint.

namespace spms::stats {

/// Engine selection for a Percentiles instance.
struct PercentileOptions {
  bool sketch = false;          ///< true: t-digest; false: exact samples
  double compression = 100.0;   ///< t-digest delta (ignored when exact)
};

/// Accumulates observations and answers arbitrary quantile queries.
class Percentiles {
 public:
  Percentiles() = default;  ///< exact engine (historical behaviour)
  explicit Percentiles(PercentileOptions opts) {
    if (opts.sketch) digest_.emplace(opts.compression);
  }

  /// Adds one observation.
  void add(double x) {
    if (digest_) {
      digest_->add(x);
      return;
    }
    if (xs_.size() == xs_.capacity()) {
      xs_.reserve(xs_.empty() ? kReserveFloor : xs_.capacity() * 2);
    }
    xs_.push_back(x);
    sorted_ = false;
  }

  /// Number of observations.
  [[nodiscard]] std::size_t count() const {
    return digest_ ? digest_->count() : xs_.size();
  }
  /// Alias of count() named for footprint reporting alongside
  /// memory_bytes().
  [[nodiscard]] std::size_t sample_count() const { return count(); }

  /// Heap bytes held by the engine (exact: the sample buffer capacity;
  /// sketch: centroids + insert buffer — bounded by the compression).
  [[nodiscard]] std::size_t memory_bytes() const {
    return digest_ ? digest_->memory_bytes() : xs_.capacity() * sizeof(double);
  }

  /// True when quantiles are t-digest estimates rather than exact.
  [[nodiscard]] bool is_sketch() const { return digest_.has_value(); }

  /// q-quantile for q in [0,1].  Hardened edges: zero observations return
  /// quiet NaN (a defined "no data" answer rather than a fabricated 0 that
  /// could be mistaken for a real measurement — callers that need a number
  /// must check count() first, as exp::run_experiment does), and q outside
  /// [0,1] asserts in debug builds and clamps in release builds.
  /// Not const: sorts (exact) or flushes (sketch) lazily.
  [[nodiscard]] double quantile(double q);

  /// Convenience accessors.
  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] double p95() { return quantile(0.95); }
  [[nodiscard]] double p99() { return quantile(0.99); }

  /// Read-only view of the raw samples (unsorted order not guaranteed).
  /// Empty under the sketch engine — samples are not retained there.
  [[nodiscard]] const std::vector<double>& samples() const { return xs_; }

 private:
  /// First exact-engine allocation, in samples; doubles thereafter.
  static constexpr std::size_t kReserveFloor = 1024;

  std::vector<double> xs_;
  bool sorted_ = false;
  std::optional<TDigest> digest_;
};

}  // namespace spms::stats
