#pragma once

#include <cstddef>
#include <vector>

/// \file percentiles.hpp
/// Exact percentile computation over a retained sample vector.
///
/// The experiment sizes in this repository (≤ a few million delay samples)
/// fit comfortably in memory, so we keep exact samples instead of a sketch;
/// quantile() uses linear interpolation between order statistics (the same
/// convention as numpy's default).

namespace spms::stats {

/// Retains samples and answers arbitrary quantile queries.
class Percentiles {
 public:
  /// Adds one observation.
  void add(double x) { xs_.push_back(x); sorted_ = false; }

  /// Number of observations.
  [[nodiscard]] std::size_t count() const { return xs_.size(); }

  /// q-quantile for q in [0,1].  Hardened edges: zero observations return
  /// quiet NaN (a defined "no data" answer rather than a fabricated 0 that
  /// could be mistaken for a real measurement — callers that need a number
  /// must check count() first, as exp::run_experiment does), and q outside
  /// [0,1] asserts in debug builds and clamps in release builds.
  /// Not const: sorts lazily on first query after inserts.
  [[nodiscard]] double quantile(double q);

  /// Convenience accessors.
  [[nodiscard]] double median() { return quantile(0.5); }
  [[nodiscard]] double p95() { return quantile(0.95); }
  [[nodiscard]] double p99() { return quantile(0.99); }

  /// Read-only view of the raw samples (unsorted order not guaranteed).
  [[nodiscard]] const std::vector<double>& samples() const { return xs_; }

 private:
  std::vector<double> xs_;
  bool sorted_ = false;
};

}  // namespace spms::stats
