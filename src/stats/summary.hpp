#pragma once

#include <cstddef>
#include <limits>
#include <ostream>

/// \file summary.hpp
/// Streaming scalar statistics (Welford's algorithm).

namespace spms::stats {

/// Accumulates count / mean / variance / min / max in O(1) memory.
/// Numerically stable for long runs (Welford update).
class Summary {
 public:
  /// Adds one observation.
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merges another summary into this one (parallel Welford combine).
  void merge(const Summary& o) {
    if (o.n_ == 0) return;
    if (n_ == 0) { *this = o; return; }
    const double delta = o.mean_ - mean_;
    const auto n = static_cast<double>(n_), m = static_cast<double>(o.n_);
    m2_ += o.m2_ + delta * delta * n * m / (n + m);
    mean_ = (n * mean_ + m * o.mean_) / (n + m);
    n_ += o.n_;
    sum_ += o.sum_;
    if (o.min_ < min_) min_ = o.min_;
    if (o.max_ > max_) max_ = o.max_;
  }

  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double sum() const { return sum_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than two observations.
  [[nodiscard]] double variance() const { return n_ > 1 ? m2_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double stddev() const;
  /// Unbiased (n-1) sample variance; 0 for fewer than two observations.
  [[nodiscard]] double sample_variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double sample_stddev() const;
  /// Standard error of the mean (sample stddev / sqrt(n)); 0 below two.
  [[nodiscard]] double stderr_mean() const;
  [[nodiscard]] double min() const { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const { return n_ ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

std::ostream& operator<<(std::ostream& os, const Summary& s);

}  // namespace spms::stats
