#pragma once

#include <cstddef>
#include <vector>

/// \file tdigest.hpp
/// Streaming quantile sketch — the merging t-digest variant (Dunning &
/// Ertl, "Computing extremely accurate quantiles using t-digests").
///
/// Million-node runs produce far more delay samples than an exact
/// sample-retaining buffer should hold; the t-digest summarizes any stream
/// in O(compression) centroids with relative accuracy concentrated at the
/// tails (exactly where p95/p99 live).  This implementation is the
/// buffer-and-merge variant: points accumulate in a bounded buffer and are
/// folded into the sorted centroid list by one merge pass governed by the
/// k1 (arcsine) scale function.
///
/// Determinism: no randomness anywhere — the sketch is a pure function of
/// the insertion sequence (buffered points are sorted with std::sort on
/// (value) before merging, and ties collapse into weights, so equal inputs
/// cannot reorder results).  Two runs feeding identical sample sequences
/// produce bit-identical centroids and therefore bit-identical quantiles,
/// which is what keeps sketched aggregates stable across --jobs settings
/// (per-seed runs are single-threaded and bit-identical; the sketch only
/// ever sees one run's stream).
///
/// merge(other) folds another digest in; it is deterministic but — like
/// every t-digest — only approximately associative: (A+B)+C and A+(B+C)
/// agree within the sketch's accuracy bound, not bit-for-bit.

namespace spms::stats {

class TDigest {
 public:
  /// \param compression  the delta parameter: the digest keeps at most
  ///        ~2*compression centroids.  100 gives ~0.1-1% quantile error at
  ///        the mid-range and much tighter tails.
  explicit TDigest(double compression = 100.0);

  /// Adds one observation with weight 1.
  void add(double x);

  /// Folds `other` into this digest (centroid-wise, then recompresses).
  void merge(const TDigest& other);

  /// Total number of observations added.
  [[nodiscard]] std::size_t count() const;

  /// q-quantile estimate for q in [0,1]; NaN when empty.  Non-const: flushes
  /// the insert buffer.
  [[nodiscard]] double quantile(double q);

  /// Exact stream extremes (tracked outside the centroids).
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

  [[nodiscard]] double compression() const { return compression_; }
  /// Centroids currently held (diagnostic; post-flush bound ~2*compression).
  [[nodiscard]] std::size_t centroid_count() const { return centroids_.size(); }
  /// Heap footprint of the sketch state (buffer + centroid storage).
  [[nodiscard]] std::size_t memory_bytes() const;

 private:
  struct Centroid {
    double mean = 0.0;
    double weight = 0.0;
  };

  /// Sorts the buffer and merges it (plus existing centroids) into a fresh
  /// compressed centroid list.
  void flush();

  /// The k1 scale function: k(q) = delta/(2*pi) * asin(2q-1).  Its unit
  /// steps bound centroid weights tightly near q=0 and q=1.
  [[nodiscard]] double k_scale(double q) const;

  double compression_;
  std::vector<Centroid> centroids_;  ///< sorted by mean, weights sum to total_
  std::vector<double> buffer_;       ///< unmerged points
  std::size_t buffer_cap_;
  double total_weight_ = 0.0;  ///< merged weight (excludes buffer)
  std::size_t count_ = 0;      ///< all observations (includes buffer)
  double min_;
  double max_;
};

}  // namespace spms::stats
