#pragma once

#include <memory>
#include <string>
#include <vector>

#include "exp/config.hpp"
#include "exp/scenario.hpp"
#include "exp/telemetry.hpp"
#include "faults/observer.hpp"
#include "net/energy.hpp"
#include "net/network.hpp"
#include "obs/series.hpp"
#include "routing/bellman_ford.hpp"

/// \file runner.hpp
/// Executes experiments and condenses each run into the numbers the paper's
/// tables and figures report.

namespace spms::exp {

/// Aggregated outcome of one run.
struct RunResult {
  std::string protocol;
  std::string label;
  std::size_t nodes = 0;
  double zone_radius_m = 0.0;

  // Workload / delivery.
  std::size_t items_published = 0;
  std::size_t expected_deliveries = 0;
  std::size_t deliveries = 0;
  double delivery_ratio = 0.0;

  // Delay (ms): the paper's metric — ADV sent at the source to DATA at the
  // destination, averaged over all deliveries.
  double mean_delay_ms = 0.0;
  double p95_delay_ms = 0.0;
  double max_delay_ms = 0.0;

  // Energy (uJ = mW*ms).
  net::EnergyBreakdown energy;
  double energy_per_item_uj = 0.0;           ///< total (incl. routing) / items
  double protocol_energy_per_item_uj = 0.0;  ///< dissemination traffic only

  /// Residual-charge statistics of the finite-battery fleet at the end of
  /// the run (all zeros with the default infinite battery).  Together with
  /// fault_stats' time-to-first-death / half-life these are the
  /// network-lifetime metrics of the lifetime-* scenarios.
  net::BatterySummary battery;

  // Diagnostics.
  net::NetCounters net_counters;
  routing::DbfStats dbf_total;   ///< zeros for protocols without routing
  /// Recovery metrics of the run's FaultPlan (all zeros without faults).
  faults::FaultStats fault_stats;
  /// Node-level crash transitions (== fault_stats.node_downs; kept as the
  /// legacy headline metric).
  std::uint64_t failures_injected = 0;
  std::uint64_t mobility_epochs = 0;
  std::uint64_t given_up = 0;
  /// Deliveries of items the collector never saw published.  Always zero for
  /// a healthy protocol; serialized (schema v4) so a regression shows up in
  /// stored results instead of vanishing into a private counter.
  std::uint64_t unknown_item_deliveries = 0;
  double sim_time_ms = 0.0;
  std::size_t events_executed = 0;
  bool event_limit_hit = false;

  /// Gauge time series sampled by an attached TelemetrySession (empty
  /// without one).  In-memory only — never serialized to the result store,
  /// so cached and fresh results stay byte-identical whatever the telemetry
  /// options were.
  obs::SeriesSet series;

  /// Causal span assembly of the run (nullptr unless the session's
  /// span_assembly() was on).  In-memory only, like `series`.
  std::shared_ptr<const obs::SpanTrace> spans;

  /// Final counter/histogram values (empty unless telemetry.metrics was
  /// on).  In-memory only, like `series`.
  obs::MetricsSnapshot metrics;

  /// Per-node total energy spend (uJ), indexed by node id — the raw input
  /// to relay energy attribution (analysis::build_trace_report).  Filled
  /// only when `spans` is: without an assembly there is nothing to
  /// attribute.  In-memory only, like `series`.
  std::vector<double> node_energy_uj;
};

/// Process-wide intra-run worker count for the simulator's parallel event
/// dispatch (sim::Simulation::set_threads).  Deliberately OUTSIDE
/// ExperimentConfig: like --jobs it is an execution detail — results are
/// byte-identical at any setting — so it must never reach the result
/// store's config key.  0 means "unset": fall back to SPMS_SIM_THREADS
/// (parse_jobs_env syntax), then to 1 (sequential).
void set_sim_threads(std::size_t threads);
/// The worker count run_experiment will hand each Simulation.
[[nodiscard]] std::size_t effective_sim_threads();

/// Builds, runs and summarizes one experiment.
[[nodiscard]] RunResult run_experiment(const ExperimentConfig& config);

/// Same run with telemetry attached for its duration.  Telemetry observes
/// without perturbing — the event stream, and with it every serialized field
/// of the result, is byte-identical to the plain overload; only the
/// in-memory `series` and any requested output files are added.
[[nodiscard]] RunResult run_experiment(const ExperimentConfig& config,
                                       const TelemetryOptions& telemetry);

/// Runs the same config across `seeds` and returns the per-seed results
/// (callers average what they need; benches report means).
[[nodiscard]] std::vector<RunResult> run_seeds(ExperimentConfig config,
                                               const std::vector<std::uint64_t>& seeds);

/// Averages the headline metrics of several runs of the same config.
[[nodiscard]] RunResult average(const std::vector<RunResult>& runs);

}  // namespace spms::exp
