#pragma once

#include <optional>
#include <string>
#include <string_view>

#include "exp/config.hpp"
#include "exp/runner.hpp"

/// \file canonical.hpp
/// Canonical (stable, versioned) serialization of ExperimentConfig and
/// RunResult for the persistent result store.
///
/// A run is a pure function of its ExperimentConfig (EXPERIMENTS.md's
/// determinism contract), so a content hash of the canonical config bytes
/// identifies its result forever.  Canonical means: every field, fixed
/// declaration order, fixed key names, durations as integer nanoseconds,
/// doubles in shortest round-trip form — two equal configs always produce
/// byte-identical JSON, and a RunResult survives a JSON round trip
/// bit-exactly (the warm-vs-cold byte-identity guarantee rests on this).

namespace spms::exp::store {

/// Bump whenever the canonical serialization changes shape or meaning, or
/// whenever a simulator change alters results for an unchanged config.
/// Every config key changes with it, so old store entries simply stop
/// matching — cache invalidation by schema version.
/// v2: the failure block became the five-model faults.* plan and results
/// grew the faults.* recovery metrics + net.dropped_link_fault.
/// v3: configs grew the battery.* finite-budget block (and the battery
/// fault model lost its death_fraction — deaths are energy-driven now);
/// results grew energy.idle_uj, net.dropped_battery_dead, the
/// faults.time_to_* lifetime metrics, and the battery.* residual block.
/// `store gc` evicts the stale v1/v2 lines.
/// v4: results grew unknown_item_deliveries (deliveries of never-published
/// items — previously tracked by the collector but dropped on the floor).
/// Telemetry (TelemetryOptions, RunResult::series) deliberately left no
/// mark here: it is not part of the config key and the series is never
/// serialized, so a result is the same bytes with telemetry on or off.
/// v5: configs grew the percentiles.* block (quantile-engine selection —
/// exact vs. t-digest sketch; sketched quantiles are estimates, so the two
/// engines must never share a cache entry).
inline constexpr int kSchemaVersion = 5;

/// Stable field-ordered JSON object describing `config` completely.
[[nodiscard]] std::string canonical_config_json(const ExperimentConfig& config);

/// Content hash (64-bit FNV-1a over schema version + canonical bytes) as a
/// 16-digit lower-case hex string.  The store key of the config's result.
[[nodiscard]] std::string config_key(const ExperimentConfig& config);

/// Same hash over an already-canonicalized config (avoids re-serializing;
/// also used by the loader to validate stored keys against stored configs).
[[nodiscard]] std::string key_for_canonical(std::string_view canonical_config);

/// Stable field-ordered JSON object holding every RunResult field.
[[nodiscard]] std::string result_to_json(const RunResult& result);

/// Parses result_to_json output.  Returns nullopt on malformed input
/// (corruption tolerance: the caller skips the record).  Doubles recover
/// bit-exactly; absent fields keep their defaults.
[[nodiscard]] std::optional<RunResult> result_from_json(std::string_view json);

/// One store record as parsed off a JSONL line (schema/key/raw config
/// object/raw result object).  Exposed for the store and its tests.
struct RawRecord {
  long long schema = 0;
  std::string key;
  std::string config_json;
  std::string result_json;
};

/// Parses one `{"schema":..,"key":..,"config":{..},"result":{..}}` line.
/// Returns nullopt on any syntax error or missing member.
[[nodiscard]] std::optional<RawRecord> parse_record_line(std::string_view line);

/// Assembles the JSONL line `put` appends (no trailing newline).
[[nodiscard]] std::string make_record_line(std::string_view key,
                                           std::string_view canonical_config,
                                           std::string_view result_json);

}  // namespace spms::exp::store
