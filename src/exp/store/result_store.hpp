#pragma once

#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>

#include "exp/runner.hpp"
#include "exp/store/canonical.hpp"

/// \file result_store.hpp
/// Persistent experiment results, keyed by config content hash.
///
/// Layout: a store is a directory of append-only JSONL files; every line is
/// one `{"schema":..,"key":..,"config":{..},"result":{..}}` record.  Writers
/// only ever append-and-flush to `results.jsonl`, so a crash costs at most
/// the last line; the loader skips anything it cannot parse (truncated
/// tails, editor accidents, foreign schema versions) and keeps the rest.
/// Duplicate keys are legal on disk — the last complete record wins, and
/// compact() rewrites the directory as one sorted, deduplicated file.
///
/// Because a run is a pure function of its config, stores compose: N hosts
/// can run disjoint sweep shards into N stores and merge them into one
/// (`run_experiment_cli merge`), and a warm BatchRunner pass over the merged
/// store reproduces the unsharded BatchResult byte-identically.

namespace spms::exp::store {

/// Eviction policy of ResultStore::gc.
struct GcOptions {
  /// Evict parseable record lines whose schema version differs from
  /// kSchemaVersion (stale v1/v2 cache entries: invisible to load() but
  /// still occupying disk).  Corrupt lines are always dropped by a live gc.
  bool evict_foreign_schema = true;

  /// When set, additionally evict current-schema records from files whose
  /// last-write time is older than this many days (line granularity is
  /// file granularity: JSONL lines carry no timestamps, so a file's mtime
  /// dates every line in it).  unset = no age eviction.
  std::optional<double> max_age_days;

  /// Report what would be evicted without rewriting anything.
  bool dry_run = false;
};

/// What ResultStore::gc did (or, under dry_run, would do).
struct GcReport {
  std::size_t files = 0;           ///< *.jsonl files scanned
  std::size_t kept = 0;            ///< record lines surviving
  std::size_t evicted_schema = 0;  ///< foreign-schema lines evicted
  std::size_t evicted_age = 0;     ///< current-schema lines evicted by age
  std::size_t dropped_corrupt = 0; ///< unparseable/mismatched lines dropped
  bool dry_run = false;
};

/// What a store directory holds, by scenario and schema version — the
/// `run_experiment_cli store ls` introspection view.  Produced by scanning
/// the disk files directly, so foreign-schema records (invisible to load())
/// are reported instead of hidden.
struct StoreInventory {
  std::size_t files = 0;          ///< *.jsonl files scanned
  std::size_t total_lines = 0;    ///< non-blank lines
  std::size_t corrupt_lines = 0;  ///< unparseable or key-mismatched lines
  /// Parseable record lines per schema version (current and foreign).
  std::map<long long, std::size_t> schema_lines;
  /// Current-schema entries (deduplicated by key, last record wins) per
  /// scenario — the prefix of the result label before the first '/', or
  /// "(unlabeled)" for single-run configs without one.
  std::map<std::string, std::size_t> scenarios;
};

class ResultStore {
 public:
  /// Opens (and creates, if needed) the store directory.  Call load() to
  /// read what is already there; a fresh instance starts empty in memory.
  explicit ResultStore(std::filesystem::path dir);

  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  /// Reads every `*.jsonl` file in the directory (filename order, so
  /// later-named files win ties within equal keys' last-wins rule).
  /// Corrupt or truncated lines and records whose stored key does not hash
  /// from their stored config are counted and skipped; records of a foreign
  /// schema version are silently invisible (cache invalidation).
  void load();

  /// The cached result for `key`, provided the stored config matches
  /// `canonical_config` byte-for-byte (a hash collision or a stale hash
  /// scheme therefore reads as a miss, never as a wrong result).
  [[nodiscard]] std::optional<RunResult> find(const std::string& key,
                                              std::string_view canonical_config) const;

  /// Inserts or replaces a record and appends it to disk (flushed).
  /// Thread-safe: BatchRunner workers call this concurrently.
  void put(const std::string& key, std::string canonical_config, const RunResult& result);

  /// Records currently loaded/written (deduplicated by key).
  [[nodiscard]] std::size_t size() const;

  /// Lines the last load() skipped as unparseable or key-mismatched.
  [[nodiscard]] std::size_t corrupt_lines() const;

  /// Copies every record `other` has and this store lacks (both in memory
  /// and onto disk).  Records present on both sides are kept as-is — equal
  /// keys mean equal configs mean equal results.  Returns the number added.
  std::size_t merge_from(const ResultStore& other);

  /// Scans the directory's files and summarizes them (see StoreInventory).
  /// Reads disk only; the in-memory view is untouched.
  [[nodiscard]] StoreInventory inventory() const;

  /// Evicts stale lines per `options`: foreign-schema records (the v1/v2
  /// leftovers a schema bump orphans), optionally whole files' worth of
  /// current-schema records older than max_age_days, and — on a live run —
  /// corrupt lines.  A live gc rewrites the directory like compact()
  /// (crash-safe rename, key-sorted, deduplicated) and refreshes the
  /// in-memory view from the survivors; a dry run only counts.
  GcReport gc(const GcOptions& options);

  /// Rewrites the whole store as a single `results.jsonl`, key-sorted, one
  /// record per key, dropping corrupt lines and superseded duplicates.
  /// Safe without a prior load(): disk records missing from memory are
  /// folded in first (memory wins ties), so compact can only add, never
  /// lose.  The replacement is crash-safe: the new file is renamed over the
  /// old one before any sibling file is removed.
  void compact();

  [[nodiscard]] const std::filesystem::path& dir() const { return dir_; }

 private:
  struct Record {
    std::string config;  ///< canonical config JSON
    RunResult result;
  };

  void append_line_locked(const std::string& key, const Record& rec);
  /// Parses every *.jsonl record into `into` (last complete record wins);
  /// returns the count of corrupt lines skipped.  Caller holds mu_.
  std::size_t read_disk_locked(std::map<std::string, Record>& into) const;

  std::filesystem::path dir_;
  std::map<std::string, Record> records_;
  std::size_t corrupt_ = 0;
  mutable std::mutex mu_;
  std::ofstream out_;  ///< lazily opened append handle for results.jsonl
};

}  // namespace spms::exp::store
