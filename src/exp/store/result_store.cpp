#include "exp/store/result_store.hpp"

#include <algorithm>
#include <chrono>
#include <ratio>
#include <stdexcept>
#include <vector>

namespace spms::exp::store {

namespace fs = std::filesystem;

namespace {

constexpr const char* kResultsFile = "results.jsonl";

std::vector<fs::path> jsonl_files(const fs::path& dir) {
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator{dir}) {
    if (entry.is_regular_file() && entry.path().extension() == ".jsonl") {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

ResultStore::ResultStore(fs::path dir) : dir_(std::move(dir)) {
  fs::create_directories(dir_);
}

void ResultStore::load() {
  const std::lock_guard<std::mutex> lock{mu_};
  records_.clear();
  corrupt_ = read_disk_locked(records_);
}

std::size_t ResultStore::read_disk_locked(std::map<std::string, Record>& into) const {
  std::size_t corrupt = 0;
  for (const auto& file : jsonl_files(dir_)) {
    std::ifstream in{file};
    std::string line;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const auto rec = parse_record_line(line);
      if (!rec) {
        ++corrupt;
        continue;
      }
      if (rec->schema != kSchemaVersion) continue;  // foreign schema: invisible, not corrupt
      if (key_for_canonical(rec->config_json) != rec->key) {
        ++corrupt;  // config bytes and key disagree: bit rot or a hand edit
        continue;
      }
      auto result = result_from_json(rec->result_json);
      if (!result) {
        ++corrupt;
        continue;
      }
      into.insert_or_assign(rec->key, Record{std::move(rec->config_json), *std::move(result)});
    }
  }
  return corrupt;
}

std::optional<RunResult> ResultStore::find(const std::string& key,
                                           std::string_view canonical_config) const {
  const std::lock_guard<std::mutex> lock{mu_};
  const auto it = records_.find(key);
  if (it == records_.end() || it->second.config != canonical_config) return std::nullopt;
  return it->second.result;
}

void ResultStore::put(const std::string& key, std::string canonical_config,
                      const RunResult& result) {
  // Keep only the serialization-faithful view in memory: the telemetry
  // payloads (sampled series, span assembly, metrics snapshot, per-node
  // energy) never round-trip through the schema, so an in-process hit must
  // replay exactly what a fresh instance would read back from disk.
  RunResult stored = result;
  stored.series = {};
  stored.spans.reset();
  stored.metrics = {};
  stored.node_energy_uj.clear();
  const std::lock_guard<std::mutex> lock{mu_};
  const auto [it, inserted] =
      records_.insert_or_assign(key, Record{std::move(canonical_config), std::move(stored)});
  static_cast<void>(inserted);
  append_line_locked(key, it->second);
}

std::size_t ResultStore::size() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return records_.size();
}

std::size_t ResultStore::corrupt_lines() const {
  const std::lock_guard<std::mutex> lock{mu_};
  return corrupt_;
}

std::size_t ResultStore::merge_from(const ResultStore& other) {
  if (&other == this) return 0;
  const std::scoped_lock lock{mu_, other.mu_};
  std::size_t added = 0;
  for (const auto& [key, rec] : other.records_) {
    const auto [it, inserted] = records_.try_emplace(key, rec);
    static_cast<void>(it);
    if (!inserted) continue;
    append_line_locked(key, rec);
    ++added;
  }
  return added;
}

StoreInventory ResultStore::inventory() const {
  const std::lock_guard<std::mutex> lock{mu_};
  StoreInventory inv;
  // key -> scenario of the last complete current-schema record (last wins,
  // matching load()'s dedup rule).
  std::map<std::string, std::string> scenario_of_key;
  for (const auto& file : jsonl_files(dir_)) {
    ++inv.files;
    std::ifstream in{file};
    std::string line;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      ++inv.total_lines;
      const auto rec = parse_record_line(line);
      if (!rec) {
        ++inv.corrupt_lines;
        continue;
      }
      ++inv.schema_lines[rec->schema];
      if (rec->schema != kSchemaVersion) continue;
      if (key_for_canonical(rec->config_json) != rec->key) {
        ++inv.corrupt_lines;
        continue;
      }
      const auto result = result_from_json(rec->result_json);
      if (!result) {
        ++inv.corrupt_lines;
        continue;
      }
      const auto slash = result->label.find('/');
      std::string scenario =
          slash == std::string::npos ? result->label : result->label.substr(0, slash);
      if (scenario.empty()) scenario = "(unlabeled)";
      scenario_of_key.insert_or_assign(rec->key, std::move(scenario));
    }
  }
  for (const auto& [key, scenario] : scenario_of_key) {
    static_cast<void>(key);
    ++inv.scenarios[scenario];
  }
  return inv;
}

GcReport ResultStore::gc(const GcOptions& options) {
  const std::lock_guard<std::mutex> lock{mu_};
  GcReport report;
  report.dry_run = options.dry_run;

  const auto now = fs::file_time_type::clock::now();
  std::map<std::string, Record> keep;     // current-schema survivors, deduplicated
  std::vector<std::string> keep_foreign;  // raw foreign-schema lines (when not evicting)
  for (const auto& file : jsonl_files(dir_)) {
    ++report.files;
    bool aged_out = false;
    if (options.max_age_days) {
      // JSONL lines carry no timestamps, so the file's mtime dates every
      // line in it — a compacted store ages as one unit, shard files age
      // individually.
      const auto age = now - fs::last_write_time(file);
      const double days =
          std::chrono::duration<double, std::ratio<86400>>(age).count();
      aged_out = days > *options.max_age_days;
    }
    std::ifstream in{file};
    std::string line;
    while (std::getline(in, line)) {
      if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
      const auto rec = parse_record_line(line);
      if (!rec) {
        ++report.dropped_corrupt;
        continue;
      }
      if (rec->schema != kSchemaVersion) {
        if (options.evict_foreign_schema) {
          ++report.evicted_schema;
        } else {
          keep_foreign.push_back(line);
        }
        continue;
      }
      if (key_for_canonical(rec->config_json) != rec->key) {
        ++report.dropped_corrupt;
        continue;
      }
      auto result = result_from_json(rec->result_json);
      if (!result) {
        ++report.dropped_corrupt;
        continue;
      }
      if (aged_out) {
        ++report.evicted_age;
        continue;
      }
      keep.insert_or_assign(rec->key, Record{std::move(rec->config_json), *std::move(result)});
    }
  }
  report.kept = keep.size() + keep_foreign.size();
  if (options.dry_run) return report;

  // Rewrite like compact(): tmp file, atomic rename, then drop siblings.
  out_.close();
  const fs::path tmp = dir_ / "results.jsonl.tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    for (const auto& [key, rec] : keep) {
      out << make_record_line(key, rec.config, result_to_json(rec.result)) << '\n';
    }
    for (const auto& raw : keep_foreign) out << raw << '\n';
    out.flush();
    if (!out) throw std::runtime_error{"ResultStore: cannot write " + tmp.string()};
  }
  fs::rename(tmp, dir_ / kResultsFile);
  for (const auto& file : jsonl_files(dir_)) {
    if (file.filename() != kResultsFile) fs::remove(file);
  }
  records_ = std::move(keep);
  corrupt_ = 0;
  return report;
}

void ResultStore::compact() {
  const std::lock_guard<std::mutex> lock{mu_};
  out_.close();
  // Fold in whatever is on disk but not in memory, so compacting a store
  // that was never load()ed (or was written to by another process) can only
  // ever add records, never erase them.  Memory wins ties: it is newest.
  std::map<std::string, Record> all;
  read_disk_locked(all);
  for (const auto& [key, rec] : records_) all.insert_or_assign(key, rec);
  records_ = std::move(all);
  const fs::path tmp = dir_ / "results.jsonl.tmp";
  {
    std::ofstream out{tmp, std::ios::trunc};
    for (const auto& [key, rec] : records_) {
      out << make_record_line(key, rec.config, result_to_json(rec.result)) << '\n';
    }
    out.flush();
    if (!out) throw std::runtime_error{"ResultStore: cannot write " + tmp.string()};
  }
  // Atomically replace the main file first; only then drop the others.  A
  // crash anywhere in between leaves every record reachable (at worst both
  // the compacted file and a superseded sibling, which load() tolerates).
  fs::rename(tmp, dir_ / kResultsFile);
  for (const auto& file : jsonl_files(dir_)) {
    if (file.filename() != kResultsFile) fs::remove(file);
  }
}

void ResultStore::append_line_locked(const std::string& key, const Record& rec) {
  if (!out_.is_open()) {
    out_.open(dir_ / kResultsFile, std::ios::app);
    if (!out_) throw std::runtime_error{"ResultStore: cannot append to " +
                                        (dir_ / kResultsFile).string()};
  }
  out_ << make_record_line(key, rec.config, result_to_json(rec.result)) << '\n' << std::flush;
  if (!out_) {
    // A silent no-op here would break the resume promise (the caller thinks
    // the result is durable); fail loudly instead — disk full, quota, …
    throw std::runtime_error{"ResultStore: write failed on " + (dir_ / kResultsFile).string()};
  }
}

}  // namespace spms::exp::store
