#include "exp/store/canonical.hpp"

#include <charconv>
#include <cstdint>
#include <cstdio>
#include <system_error>

namespace spms::exp::store {

namespace {

// --- canonical value formatting ---------------------------------------------

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_double(std::string& out, double v) {
  // Shortest round-trip form: canonical (one spelling per value) and
  // bit-exact through from_chars on the way back in.
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, res.ptr);
}

/// Emits `"key":value` members in call order; the callers fix the order.
class ObjWriter {
 public:
  void str(std::string_view key, std::string_view v) { member(key); append_escaped(out_, v); }
  void b(std::string_view key, bool v) { member(key); out_ += v ? "true" : "false"; }
  void u64(std::string_view key, std::uint64_t v) { member(key); out_ += std::to_string(v); }
  void i64(std::string_view key, std::int64_t v) { member(key); out_ += std::to_string(v); }
  void d(std::string_view key, double v) { member(key); append_double(out_, v); }

  [[nodiscard]] std::string finish() && {
    out_ += '}';
    return std::move(out_);
  }

 private:
  void member(std::string_view key) {
    out_ += first_ ? '{' : ',';
    first_ = false;
    append_escaped(out_, key);
    out_ += ':';
  }

  std::string out_;
  bool first_ = true;
};

constexpr const char* pattern_name(TrafficPattern p) {
  switch (p) {
    case TrafficPattern::kAllToAll: return "all-to-all";
    case TrafficPattern::kCluster: return "cluster";
    case TrafficPattern::kSink: return "sink";
  }
  return "?";
}

constexpr const char* deployment_name(Deployment d) {
  switch (d) {
    case Deployment::kGrid: return "grid";
    case Deployment::kUniformRandom: return "uniform-random";
  }
  return "?";
}

// --- minimal JSON scanning ---------------------------------------------------
//
// The store only ever reads what it wrote: flat objects of string / number /
// bool members, plus one record level whose "config" / "result" values are
// such objects.  The scanner below covers exactly that; anything else is a
// parse failure, which the store treats as a corrupt line.

struct Cursor {
  std::string_view s;
  std::size_t pos = 0;

  [[nodiscard]] bool eof() const { return pos >= s.size(); }
  [[nodiscard]] char peek() const { return s[pos]; }
  void skip_ws() {
    while (!eof() && (s[pos] == ' ' || s[pos] == '\t' || s[pos] == '\r' || s[pos] == '\n')) ++pos;
  }
  bool consume(char c) {
    skip_ws();
    if (eof() || s[pos] != c) return false;
    ++pos;
    return true;
  }
};

/// Parses a JSON string literal at the cursor into its unescaped value.
bool parse_string(Cursor& c, std::string& out) {
  if (!c.consume('"')) return false;
  out.clear();
  while (!c.eof()) {
    const char ch = c.s[c.pos++];
    if (ch == '"') return true;
    if (ch != '\\') {
      out += ch;
      continue;
    }
    if (c.eof()) return false;
    const char esc = c.s[c.pos++];
    switch (esc) {
      case '"': out += '"'; break;
      case '\\': out += '\\'; break;
      case '/': out += '/'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      case 't': out += '\t'; break;
      case 'b': out += '\b'; break;
      case 'f': out += '\f'; break;
      case 'u': {
        if (c.pos + 4 > c.s.size()) return false;
        unsigned v = 0;
        for (int i = 0; i < 4; ++i) {
          const char h = c.s[c.pos++];
          v <<= 4;
          if (h >= '0' && h <= '9') v |= static_cast<unsigned>(h - '0');
          else if (h >= 'a' && h <= 'f') v |= static_cast<unsigned>(h - 'a' + 10);
          else if (h >= 'A' && h <= 'F') v |= static_cast<unsigned>(h - 'A' + 10);
          else return false;
        }
        if (v > 0xFF) return false;  // the writer only escapes control bytes
        out += static_cast<char>(v);
        break;
      }
      default: return false;
    }
  }
  return false;  // unterminated
}

/// Returns the raw text of the next value (string, balanced object, or bare
/// primitive token) without interpreting it.
bool scan_raw_value(Cursor& c, std::string_view& raw) {
  c.skip_ws();
  if (c.eof()) return false;
  const std::size_t start = c.pos;
  if (c.peek() == '"') {
    std::string ignored;
    if (!parse_string(c, ignored)) return false;
  } else if (c.peek() == '{') {
    int depth = 0;
    bool in_string = false;
    while (!c.eof()) {
      const char ch = c.s[c.pos++];
      if (in_string) {
        if (ch == '\\') {
          if (c.eof()) return false;
          ++c.pos;
        } else if (ch == '"') {
          in_string = false;
        }
      } else if (ch == '"') {
        in_string = true;
      } else if (ch == '{') {
        ++depth;
      } else if (ch == '}') {
        if (--depth == 0) break;
      }
    }
    if (depth != 0) return false;
  } else {
    while (!c.eof()) {
      const char ch = c.peek();
      if (ch == ',' || ch == '}' || ch == ' ' || ch == '\t' || ch == '\r' || ch == '\n') break;
      ++c.pos;
    }
    if (c.pos == start) return false;
  }
  raw = c.s.substr(start, c.pos - start);
  return true;
}

/// Walks the members of one object, invoking `member(key, raw_value)`.
/// Returns false on any syntax error.
template <typename Fn>
bool scan_object(std::string_view json, Fn&& member) {
  Cursor c{json};
  if (!c.consume('{')) return false;
  c.skip_ws();
  if (c.consume('}')) {
    c.skip_ws();
    return c.eof();
  }
  for (;;) {
    std::string key;
    if (!parse_string(c, key)) return false;
    if (!c.consume(':')) return false;
    std::string_view raw;
    if (!scan_raw_value(c, raw)) return false;
    if (!member(key, raw)) return false;
    if (c.consume(',')) continue;
    if (!c.consume('}')) return false;
    c.skip_ws();
    return c.eof();
  }
}

bool parse_raw_string(std::string_view raw, std::string& out) {
  Cursor c{raw};
  if (!parse_string(c, out)) return false;
  c.skip_ws();
  return c.eof();
}

bool parse_raw_bool(std::string_view raw, bool& out) {
  if (raw == "true") out = true;
  else if (raw == "false") out = false;
  else return false;
  return true;
}

template <typename Int>
bool parse_raw_int(std::string_view raw, Int& out) {
  const auto res = std::from_chars(raw.data(), raw.data() + raw.size(), out);
  return res.ec == std::errc{} && res.ptr == raw.data() + raw.size();
}

bool parse_raw_double(std::string_view raw, double& out) {
  const auto res = std::from_chars(raw.data(), raw.data() + raw.size(), out);
  return res.ec == std::errc{} && res.ptr == raw.data() + raw.size();
}

std::uint64_t fnv1a(std::string_view bytes, std::uint64_t h = 14695981039346656037ULL) {
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

std::string canonical_config_json(const ExperimentConfig& c) {
  ObjWriter w;
  w.str("label", c.label);
  w.str("protocol", to_string(c.protocol));
  w.str("pattern", pattern_name(c.pattern));
  w.str("deployment", deployment_name(c.deployment));
  w.u64("node_count", c.node_count);
  w.d("grid_pitch_m", c.grid_pitch_m);
  w.d("zone_radius_m", c.zone_radius_m);
  w.b("mac.carrier_sense", c.mac.carrier_sense);
  w.b("mac.infinite_parallelism", c.mac.infinite_parallelism);
  w.d("mac.contention_g_ms", c.mac.contention_g_ms);
  w.i64("mac.slot_time_ns", c.mac.slot_time.count_nanos());
  w.i64("mac.num_slots", c.mac.num_slots);
  w.i64("mac.t_tx_per_byte_ns", c.mac.t_tx_per_byte.count_nanos());
  w.i64("mac.t_proc_ns", c.mac.t_proc.count_nanos());
  w.d("energy.rx_power_mw", c.energy.rx_power_mw);
  w.b("energy.charge_overhearing", c.energy.charge_overhearing);
  w.b("battery.finite", c.battery.finite);
  w.d("battery.capacity_uj", c.battery.capacity_uj);
  w.d("battery.heterogeneity", c.battery.heterogeneity);
  w.d("battery.idle_drain_mw", c.battery.idle_drain_mw);
  w.i64("battery.idle_tick_ns", c.battery.idle_tick.count_nanos());
  w.u64("proto.adv_bytes", c.proto.adv_bytes);
  w.u64("proto.req_bytes", c.proto.req_bytes);
  w.u64("proto.data_bytes", c.proto.data_bytes);
  w.i64("proto.tout_adv_ns", c.proto.tout_adv.count_nanos());
  w.i64("proto.tout_dat_ns", c.proto.tout_dat.count_nanos());
  w.i64("proto.max_retries", c.proto.max_retries);
  w.d("proto.retry_backoff", c.proto.retry_backoff);
  w.i64("proto.max_backoff_exp", c.proto.max_backoff_exp);
  w.i64("proto.service_guard_ns", c.proto.service_guard.count_nanos());
  w.i64("proto.timer_defer_limit", c.proto.timer_defer_limit);
  w.b("spms_ext.relay_caching", c.spms_ext.relay_caching);
  w.u64("spms_ext.num_scones", c.spms_ext.num_scones);
  w.u64("spms_ext.cross_zone_ttl", c.spms_ext.cross_zone_ttl);
  w.i64("traffic.packets_per_node", c.traffic.packets_per_node);
  w.i64("traffic.mean_interarrival_ns", c.traffic.mean_interarrival.count_nanos());
  w.u64("dbf.header_bytes", c.dbf.header_bytes);
  w.u64("dbf.bytes_per_entry", c.dbf.bytes_per_entry);
  w.b("dbf.charge_energy", c.dbf.charge_energy);
  w.u64("dbf.max_rounds", c.dbf.max_rounds);
  const auto& f = c.faults;
  w.b("faults.crash.enabled", f.crash.enabled);
  w.i64("faults.crash.mtbf_ns", f.crash.mean_time_between_failures.count_nanos());
  w.i64("faults.crash.repair_min_ns", f.crash.repair_min.count_nanos());
  w.i64("faults.crash.repair_max_ns", f.crash.repair_max.count_nanos());
  w.b("faults.region.enabled", f.region.enabled);
  w.i64("faults.region.mtbo_ns", f.region.mean_time_between_outages.count_nanos());
  w.d("faults.region.radius_m", f.region.radius_m);
  w.i64("faults.region.repair_min_ns", f.region.repair_min.count_nanos());
  w.i64("faults.region.repair_max_ns", f.region.repair_max.count_nanos());
  w.b("faults.battery.enabled", f.battery.enabled);
  w.b("faults.link.enabled", f.link.enabled);
  w.d("faults.link.drop_start", f.link.drop_start);
  w.d("faults.link.drop_end", f.link.drop_end);
  w.b("faults.sink_churn.enabled", f.sink_churn.enabled);
  w.u64("faults.sink_churn.hops", f.sink_churn.hops);
  w.i64("faults.sink_churn.mtbf_ns", f.sink_churn.mean_time_between_failures.count_nanos());
  w.i64("faults.sink_churn.repair_min_ns", f.sink_churn.repair_min.count_nanos());
  w.i64("faults.sink_churn.repair_max_ns", f.sink_churn.repair_max.count_nanos());
  w.b("mobility", c.mobility);
  w.i64("mobility.epoch_interval_ns", c.mobility_params.epoch_interval.count_nanos());
  w.d("mobility.move_fraction", c.mobility_params.move_fraction);
  w.d("mobility.field_side_m", c.mobility_params.field_side_m);
  w.d("cluster_p_other", c.cluster_p_other);
  w.b("percentiles.sketch", c.percentiles.sketch);
  w.d("percentiles.compression", c.percentiles.compression);
  w.u64("seed", c.seed);
  w.i64("activity_horizon_ns", c.activity_horizon.count_nanos());
  w.u64("max_events", c.max_events);
  return std::move(w).finish();
}

std::string key_for_canonical(std::string_view canonical_config) {
  const std::string salt = "spms-exp-store/v" + std::to_string(kSchemaVersion) + "\n";
  const std::uint64_t h = fnv1a(canonical_config, fnv1a(salt));
  char buf[17];
  std::snprintf(buf, sizeof buf, "%016llx", static_cast<unsigned long long>(h));
  return std::string{buf};
}

std::string config_key(const ExperimentConfig& config) {
  return key_for_canonical(canonical_config_json(config));
}

std::string result_to_json(const RunResult& r) {
  ObjWriter w;
  w.str("protocol", r.protocol);
  w.str("label", r.label);
  w.u64("nodes", r.nodes);
  w.d("zone_radius_m", r.zone_radius_m);
  w.u64("items_published", r.items_published);
  w.u64("expected_deliveries", r.expected_deliveries);
  w.u64("deliveries", r.deliveries);
  w.d("delivery_ratio", r.delivery_ratio);
  w.d("mean_delay_ms", r.mean_delay_ms);
  w.d("p95_delay_ms", r.p95_delay_ms);
  w.d("max_delay_ms", r.max_delay_ms);
  w.d("energy.protocol_tx_uj", r.energy.protocol_tx_uj);
  w.d("energy.protocol_rx_uj", r.energy.protocol_rx_uj);
  w.d("energy.routing_tx_uj", r.energy.routing_tx_uj);
  w.d("energy.routing_rx_uj", r.energy.routing_rx_uj);
  w.d("energy.idle_uj", r.energy.idle_uj);
  w.d("energy_per_item_uj", r.energy_per_item_uj);
  w.d("protocol_energy_per_item_uj", r.protocol_energy_per_item_uj);
  w.u64("battery.depleted_nodes", r.battery.depleted_nodes);
  w.d("battery.initial_total_uj", r.battery.initial_total_uj);
  w.d("battery.spent_total_uj", r.battery.spent_total_uj);
  w.d("battery.residual_mean_uj", r.battery.residual_mean_uj);
  w.d("battery.residual_stddev_uj", r.battery.residual_stddev_uj);
  w.d("battery.residual_min_uj", r.battery.residual_min_uj);
  w.d("battery.residual_gini", r.battery.residual_gini);
  w.u64("net.tx_adv", r.net_counters.tx_adv);
  w.u64("net.tx_req", r.net_counters.tx_req);
  w.u64("net.tx_data", r.net_counters.tx_data);
  w.u64("net.tx_route", r.net_counters.tx_route);
  w.u64("net.tx_bytes", r.net_counters.tx_bytes);
  w.u64("net.deliveries", r.net_counters.deliveries);
  w.u64("net.dropped_sender_down", r.net_counters.dropped_sender_down);
  w.u64("net.dropped_out_of_range", r.net_counters.dropped_out_of_range);
  w.u64("net.dropped_receiver_down", r.net_counters.dropped_receiver_down);
  w.u64("net.dropped_link_fault", r.net_counters.dropped_link_fault);
  w.u64("net.dropped_battery_dead", r.net_counters.dropped_battery_dead);
  w.u64("dbf.rounds", r.dbf_total.rounds);
  w.u64("dbf.messages", r.dbf_total.messages);
  w.u64("dbf.message_bytes", r.dbf_total.message_bytes);
  w.d("dbf.energy_uj", r.dbf_total.energy_uj);
  w.b("dbf.converged", r.dbf_total.converged);
  w.u64("faults.events", r.fault_stats.fault_events);
  w.u64("faults.node_downs", r.fault_stats.node_downs);
  w.u64("faults.node_repairs", r.fault_stats.node_repairs);
  w.u64("faults.permanent_deaths", r.fault_stats.permanent_deaths);
  w.u64("faults.max_concurrent_down", r.fault_stats.max_concurrent_down);
  w.d("faults.total_downtime_ms", r.fault_stats.total_downtime_ms);
  w.d("faults.outage_time_ms", r.fault_stats.outage_time_ms);
  w.u64("faults.outage_deliveries", r.fault_stats.deliveries_during_outage);
  w.u64("faults.recoveries_sampled", r.fault_stats.recoveries_sampled);
  w.d("faults.mean_recovery_latency_ms", r.fault_stats.mean_recovery_latency_ms);
  w.u64("faults.repairs_unrecovered", r.fault_stats.repairs_unrecovered);
  w.d("faults.time_to_first_death_ms", r.fault_stats.time_to_first_death_ms);
  w.d("faults.time_to_10pct_dead_ms", r.fault_stats.time_to_10pct_dead_ms);
  w.d("faults.half_life_ms", r.fault_stats.half_life_ms);
  w.u64("failures_injected", r.failures_injected);
  w.u64("mobility_epochs", r.mobility_epochs);
  w.u64("given_up", r.given_up);
  w.u64("unknown_item_deliveries", r.unknown_item_deliveries);
  w.d("sim_time_ms", r.sim_time_ms);
  w.u64("events_executed", r.events_executed);
  w.b("event_limit_hit", r.event_limit_hit);
  return std::move(w).finish();
}

std::optional<RunResult> result_from_json(std::string_view json) {
  RunResult r;
  const bool ok = scan_object(json, [&](const std::string& key, std::string_view raw) {
    if (key == "protocol") return parse_raw_string(raw, r.protocol);
    if (key == "label") return parse_raw_string(raw, r.label);
    if (key == "nodes") return parse_raw_int(raw, r.nodes);
    if (key == "zone_radius_m") return parse_raw_double(raw, r.zone_radius_m);
    if (key == "items_published") return parse_raw_int(raw, r.items_published);
    if (key == "expected_deliveries") return parse_raw_int(raw, r.expected_deliveries);
    if (key == "deliveries") return parse_raw_int(raw, r.deliveries);
    if (key == "delivery_ratio") return parse_raw_double(raw, r.delivery_ratio);
    if (key == "mean_delay_ms") return parse_raw_double(raw, r.mean_delay_ms);
    if (key == "p95_delay_ms") return parse_raw_double(raw, r.p95_delay_ms);
    if (key == "max_delay_ms") return parse_raw_double(raw, r.max_delay_ms);
    if (key == "energy.protocol_tx_uj") return parse_raw_double(raw, r.energy.protocol_tx_uj);
    if (key == "energy.protocol_rx_uj") return parse_raw_double(raw, r.energy.protocol_rx_uj);
    if (key == "energy.routing_tx_uj") return parse_raw_double(raw, r.energy.routing_tx_uj);
    if (key == "energy.routing_rx_uj") return parse_raw_double(raw, r.energy.routing_rx_uj);
    if (key == "energy.idle_uj") return parse_raw_double(raw, r.energy.idle_uj);
    if (key == "energy_per_item_uj") return parse_raw_double(raw, r.energy_per_item_uj);
    if (key == "protocol_energy_per_item_uj")
      return parse_raw_double(raw, r.protocol_energy_per_item_uj);
    if (key == "battery.depleted_nodes") return parse_raw_int(raw, r.battery.depleted_nodes);
    if (key == "battery.initial_total_uj")
      return parse_raw_double(raw, r.battery.initial_total_uj);
    if (key == "battery.spent_total_uj") return parse_raw_double(raw, r.battery.spent_total_uj);
    if (key == "battery.residual_mean_uj")
      return parse_raw_double(raw, r.battery.residual_mean_uj);
    if (key == "battery.residual_stddev_uj")
      return parse_raw_double(raw, r.battery.residual_stddev_uj);
    if (key == "battery.residual_min_uj")
      return parse_raw_double(raw, r.battery.residual_min_uj);
    if (key == "battery.residual_gini") return parse_raw_double(raw, r.battery.residual_gini);
    if (key == "net.tx_adv") return parse_raw_int(raw, r.net_counters.tx_adv);
    if (key == "net.tx_req") return parse_raw_int(raw, r.net_counters.tx_req);
    if (key == "net.tx_data") return parse_raw_int(raw, r.net_counters.tx_data);
    if (key == "net.tx_route") return parse_raw_int(raw, r.net_counters.tx_route);
    if (key == "net.tx_bytes") return parse_raw_int(raw, r.net_counters.tx_bytes);
    if (key == "net.deliveries") return parse_raw_int(raw, r.net_counters.deliveries);
    if (key == "net.dropped_sender_down")
      return parse_raw_int(raw, r.net_counters.dropped_sender_down);
    if (key == "net.dropped_out_of_range")
      return parse_raw_int(raw, r.net_counters.dropped_out_of_range);
    if (key == "net.dropped_receiver_down")
      return parse_raw_int(raw, r.net_counters.dropped_receiver_down);
    if (key == "net.dropped_link_fault")
      return parse_raw_int(raw, r.net_counters.dropped_link_fault);
    if (key == "net.dropped_battery_dead")
      return parse_raw_int(raw, r.net_counters.dropped_battery_dead);
    if (key == "dbf.rounds") return parse_raw_int(raw, r.dbf_total.rounds);
    if (key == "dbf.messages") return parse_raw_int(raw, r.dbf_total.messages);
    if (key == "dbf.message_bytes") return parse_raw_int(raw, r.dbf_total.message_bytes);
    if (key == "dbf.energy_uj") return parse_raw_double(raw, r.dbf_total.energy_uj);
    if (key == "dbf.converged") return parse_raw_bool(raw, r.dbf_total.converged);
    if (key == "faults.events") return parse_raw_int(raw, r.fault_stats.fault_events);
    if (key == "faults.node_downs") return parse_raw_int(raw, r.fault_stats.node_downs);
    if (key == "faults.node_repairs") return parse_raw_int(raw, r.fault_stats.node_repairs);
    if (key == "faults.permanent_deaths")
      return parse_raw_int(raw, r.fault_stats.permanent_deaths);
    if (key == "faults.max_concurrent_down")
      return parse_raw_int(raw, r.fault_stats.max_concurrent_down);
    if (key == "faults.total_downtime_ms")
      return parse_raw_double(raw, r.fault_stats.total_downtime_ms);
    if (key == "faults.outage_time_ms")
      return parse_raw_double(raw, r.fault_stats.outage_time_ms);
    if (key == "faults.outage_deliveries")
      return parse_raw_int(raw, r.fault_stats.deliveries_during_outage);
    if (key == "faults.recoveries_sampled")
      return parse_raw_int(raw, r.fault_stats.recoveries_sampled);
    if (key == "faults.mean_recovery_latency_ms")
      return parse_raw_double(raw, r.fault_stats.mean_recovery_latency_ms);
    if (key == "faults.repairs_unrecovered")
      return parse_raw_int(raw, r.fault_stats.repairs_unrecovered);
    if (key == "faults.time_to_first_death_ms")
      return parse_raw_double(raw, r.fault_stats.time_to_first_death_ms);
    if (key == "faults.time_to_10pct_dead_ms")
      return parse_raw_double(raw, r.fault_stats.time_to_10pct_dead_ms);
    if (key == "faults.half_life_ms")
      return parse_raw_double(raw, r.fault_stats.half_life_ms);
    if (key == "failures_injected") return parse_raw_int(raw, r.failures_injected);
    if (key == "mobility_epochs") return parse_raw_int(raw, r.mobility_epochs);
    if (key == "given_up") return parse_raw_int(raw, r.given_up);
    if (key == "unknown_item_deliveries")
      return parse_raw_int(raw, r.unknown_item_deliveries);
    if (key == "sim_time_ms") return parse_raw_double(raw, r.sim_time_ms);
    if (key == "events_executed") return parse_raw_int(raw, r.events_executed);
    if (key == "event_limit_hit") return parse_raw_bool(raw, r.event_limit_hit);
    return true;  // unknown member: tolerated (forward compatibility)
  });
  if (!ok) return std::nullopt;
  return r;
}

std::optional<RawRecord> parse_record_line(std::string_view line) {
  RawRecord rec;
  bool have_schema = false, have_key = false, have_config = false, have_result = false;
  const bool ok = scan_object(line, [&](const std::string& key, std::string_view raw) {
    if (key == "schema") {
      have_schema = true;
      return parse_raw_int(raw, rec.schema);
    }
    if (key == "key") {
      have_key = true;
      return parse_raw_string(raw, rec.key);
    }
    if (key == "config") {
      have_config = true;
      if (raw.empty() || raw.front() != '{') return false;
      rec.config_json.assign(raw);
      return true;
    }
    if (key == "result") {
      have_result = true;
      if (raw.empty() || raw.front() != '{') return false;
      rec.result_json.assign(raw);
      return true;
    }
    return true;
  });
  if (!ok || !have_schema || !have_key || !have_config || !have_result) return std::nullopt;
  return rec;
}

std::string make_record_line(std::string_view key, std::string_view canonical_config,
                             std::string_view result_json) {
  std::string line = "{\"schema\":" + std::to_string(kSchemaVersion) + ",\"key\":";
  append_escaped(line, key);
  line += ",\"config\":";
  line += canonical_config;
  line += ",\"result\":";
  line += result_json;
  line += '}';
  return line;
}

}  // namespace spms::exp::store
