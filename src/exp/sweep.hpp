#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/config.hpp"

/// \file sweep.hpp
/// Declarative experiment grids.  A SweepSpec names the axes the paper's
/// evaluation varies — protocol, network size, zone radius, a named config
/// variant (failure / mobility / MAC regime), and seeds — and expands into
/// the flat job list the batch engine executes.  Expansion is purely
/// deterministic: the job order is a function of the spec alone, so results
/// can be matched back to grid points regardless of how many workers ran
/// them.

namespace spms::exp {

/// A named mutation of the base config (e.g. "failures" switches the
/// transient-failure regime on).  An empty `apply` is the identity.
struct ConfigVariant {
  std::string name;
  std::function<void(ExperimentConfig&)> apply;
};

/// One fully resolved unit of work: a config plus the axis coordinates it
/// came from.  `point` indexes the grid point (all seeds of a point share
/// it); `index` is the position in expansion order.
struct SweepJob {
  std::size_t index = 0;
  std::size_t point = 0;
  ProtocolKind protocol = ProtocolKind::kSpms;
  std::size_t node_count = 0;
  double zone_radius_m = 0.0;
  std::string variant;
  std::uint64_t seed = 0;
  ExperimentConfig config;
};

/// An experiment grid: base config x axes.  An empty axis means "use the
/// base config's value" (a single implicit entry), so a spec with all axes
/// empty expands to exactly one job.
struct SweepSpec {
  std::string name;        ///< scenario tag, prefixed onto job labels
  ExperimentConfig base;   ///< values not swept come from here
  std::vector<ProtocolKind> protocols;
  std::vector<std::size_t> node_counts;
  std::vector<double> zone_radii;
  std::vector<ConfigVariant> variants;
  std::vector<std::uint64_t> seeds;

  /// When nonzero, stamped over every job's config.max_events after its
  /// variant ran (so the operator's runaway guard beats any variant).  The
  /// CLI's --max-events; part of the config, so it feeds the store key.
  std::size_t max_events_override = 0;

  /// Replaces the seed axis with `count` consecutive seeds starting at
  /// base.seed — the convention shared by the CLI's --seeds and the
  /// benches' SPMS_BENCH_SEEDS.
  void use_consecutive_seeds(std::size_t count);

  /// Number of grid points (product of the non-seed axes).
  [[nodiscard]] std::size_t point_count() const;

  /// Number of jobs (points x seeds).
  [[nodiscard]] std::size_t job_count() const;

  /// Expands the grid in deterministic order: node_count (outer), then
  /// zone_radius, then variant, then protocol, then seed (inner).  The
  /// variant's apply runs after the axis fields are set and before the seed
  /// is stamped, so variants may override any other knob.
  [[nodiscard]] std::vector<SweepJob> expand() const;
};

/// Deterministic shard filter for cross-process / cross-host sweeps: keeps
/// the jobs whose expansion index is congruent to `shard_index` mod
/// `shard_count` and renumbers `index` contiguously (`point` and the labels
/// keep their canonical values, so shard results merge back losslessly).
/// The round-robin slicing interleaves the seeds of each grid point across
/// shards, which balances load when some points are much heavier than
/// others.  Throws std::invalid_argument unless shard_index < shard_count.
[[nodiscard]] std::vector<SweepJob> filter_shard(std::vector<SweepJob> jobs,
                                                 std::size_t shard_index,
                                                 std::size_t shard_count);

}  // namespace spms::exp
