#pragma once

#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "stats/aggregate.hpp"

/// \file aggregate.hpp
/// Cross-seed dispersion statistics of a RunResult population.  Where
/// runner.hpp's average() collapses several runs into one synthetic
/// RunResult (kept for the legacy point-estimate callers), AggregateResult
/// keeps mean / stddev / stderr / min / max per metric so figures can carry
/// error bars, as the multi-seed methodology of the related evaluations
/// requires.

namespace spms::exp {

/// Per-metric statistics across the runs of one experiment point.
/// Identity fields are copied from the first run (all runs of a point share
/// them by construction).
struct AggregateResult {
  std::string protocol;
  std::string label;
  std::size_t nodes = 0;
  double zone_radius_m = 0.0;
  std::size_t runs = 0;

  stats::Aggregate delivery_ratio;
  stats::Aggregate mean_delay_ms;
  stats::Aggregate p95_delay_ms;
  stats::Aggregate max_delay_ms;
  stats::Aggregate energy_per_item_uj;
  stats::Aggregate protocol_energy_per_item_uj;
  stats::Aggregate routing_energy_uj;
  stats::Aggregate total_energy_uj;
  stats::Aggregate failures_injected;
  stats::Aggregate mobility_epochs;
  stats::Aggregate given_up;
  stats::Aggregate unknown_item_deliveries;
  stats::Aggregate sim_time_ms;
  stats::Aggregate events_executed;

  // Fault-campaign recovery metrics (all zero-mean without faults).
  stats::Aggregate fault_events;
  stats::Aggregate fault_downtime_ms;
  stats::Aggregate fault_outage_time_ms;
  stats::Aggregate fault_recovery_latency_ms;
  stats::Aggregate fault_permanent_deaths;
  stats::Aggregate fault_outage_deliveries;

  // Network-lifetime metrics (finite-battery runs; the -1 "never happened"
  // sentinel of FaultStats flows through, so means are only meaningful when
  // every seed of the point reached the milestone).
  stats::Aggregate time_to_first_death_ms;
  stats::Aggregate time_to_10pct_dead_ms;
  stats::Aggregate half_life_ms;
  stats::Aggregate depleted_nodes;
  stats::Aggregate residual_mean_uj;
  stats::Aggregate residual_stddev_uj;
  stats::Aggregate residual_gini;
};

/// Computes per-metric statistics across `runs` (typically one per seed).
/// Throws std::invalid_argument on an empty population.
[[nodiscard]] AggregateResult aggregate(const std::vector<RunResult>& runs);

}  // namespace spms::exp
