#include "exp/sweep.hpp"

#include <sstream>
#include <stdexcept>

namespace spms::exp {

namespace {

template <typename T>
std::vector<T> axis_or(const std::vector<T>& axis, T fallback) {
  if (!axis.empty()) return axis;
  return {std::move(fallback)};
}

std::string job_label(const std::string& scenario, const SweepJob& job) {
  std::ostringstream os;
  if (!scenario.empty()) os << scenario << '/';
  os << to_string(job.protocol) << "/n" << job.node_count << "/r" << job.zone_radius_m;
  if (!job.variant.empty()) os << '/' << job.variant;
  os << "/s" << job.seed;
  return os.str();
}

}  // namespace

void SweepSpec::use_consecutive_seeds(std::size_t count) {
  seeds.clear();
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(base.seed + i);
}

std::size_t SweepSpec::point_count() const {
  const auto n = [](std::size_t axis) { return axis == 0 ? 1 : axis; };
  return n(protocols.size()) * n(node_counts.size()) * n(zone_radii.size()) *
         n(variants.size());
}

std::size_t SweepSpec::job_count() const {
  return point_count() * (seeds.empty() ? 1 : seeds.size());
}

std::vector<SweepJob> SweepSpec::expand() const {
  const auto protocol_axis = axis_or(protocols, base.protocol);
  const auto node_axis = axis_or(node_counts, base.node_count);
  const auto radius_axis = axis_or(zone_radii, base.zone_radius_m);
  const auto seed_axis = axis_or(seeds, base.seed);
  auto variant_axis = variants;
  if (variant_axis.empty()) variant_axis.push_back({"", nullptr});

  std::vector<SweepJob> jobs;
  jobs.reserve(job_count());
  std::size_t point = 0;
  for (const auto nodes : node_axis) {
    for (const auto radius : radius_axis) {
      for (const auto& variant : variant_axis) {
        for (const auto protocol : protocol_axis) {
          for (const auto seed : seed_axis) {
            SweepJob job;
            job.index = jobs.size();
            job.point = point;
            job.protocol = protocol;
            job.node_count = nodes;
            job.zone_radius_m = radius;
            job.variant = variant.name;
            job.seed = seed;
            job.config = base;
            job.config.protocol = protocol;
            job.config.node_count = nodes;
            job.config.zone_radius_m = radius;
            if (variant.apply) variant.apply(job.config);
            if (max_events_override != 0) job.config.max_events = max_events_override;
            job.config.seed = seed;
            job.config.label = job_label(name, job);
            jobs.push_back(std::move(job));
          }
          ++point;
        }
      }
    }
  }
  return jobs;
}

std::vector<SweepJob> filter_shard(std::vector<SweepJob> jobs, std::size_t shard_index,
                                   std::size_t shard_count) {
  if (shard_count == 0 || shard_index >= shard_count) {
    throw std::invalid_argument{"filter_shard: require shard_index < shard_count"};
  }
  if (shard_count == 1) return jobs;
  std::vector<SweepJob> out;
  out.reserve(jobs.size() / shard_count + 1);
  for (auto& job : jobs) {
    if (job.index % shard_count != shard_index) continue;
    job.index = out.size();
    out.push_back(std::move(job));
  }
  return out;
}

}  // namespace spms::exp
