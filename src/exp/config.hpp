#pragma once

#include <cstdint>
#include <string>

#include "core/protocol.hpp"
#include "core/spms.hpp"
#include "core/traffic.hpp"
#include "faults/plan.hpp"
#include "net/mobility.hpp"
#include "net/params.hpp"
#include "routing/bellman_ford.hpp"
#include "sim/time.hpp"
#include "stats/percentiles.hpp"

/// \file config.hpp
/// One struct describes a complete experiment run (Table 1 of the paper
/// plus deployment / protocol / fault-model switches).  A run is a pure
/// function of this struct — same config, same seed, same result.

namespace spms::exp {

/// Which dissemination protocol the run exercises.
enum class ProtocolKind { kSpms, kSpin, kFlooding };

[[nodiscard]] constexpr const char* to_string(ProtocolKind k) {
  switch (k) {
    case ProtocolKind::kSpms: return "SPMS";
    case ProtocolKind::kSpin: return "SPIN";
    case ProtocolKind::kFlooding: return "FLOOD";
  }
  return "?";
}

/// Which communication pattern (paper Sections 5.1 / 5.2; kSink is the
/// §5.1 "source to sink" special case — every node reports to one sink).
enum class TrafficPattern { kAllToAll, kCluster, kSink };

/// Node placement (the paper deploys a uniform-density grid; the random
/// variant exercises the protocols off the lattice).
enum class Deployment { kGrid, kUniformRandom };

/// Full experiment description.  Defaults reproduce the paper's Table 1 on
/// the reference deployment (5 m grid pitch; see DESIGN.md Section 6).
struct ExperimentConfig {
  std::string label;  ///< free-form tag echoed in reports

  ProtocolKind protocol = ProtocolKind::kSpms;
  TrafficPattern pattern = TrafficPattern::kAllToAll;

  // --- deployment -----------------------------------------------------------
  Deployment deployment = Deployment::kGrid;
  std::size_t node_count = 169;
  double grid_pitch_m = 5.0;  ///< grid pitch; also sets the random field's density
  double zone_radius_m = 20.0;

  // --- substrate models (Table 1) --------------------------------------------
  net::MacParams mac;
  net::EnergyModelParams energy;
  /// Finite-budget battery model (net/energy.hpp).  Default: the historical
  /// infinite battery.  With `battery.finite` and `faults.battery.enabled`,
  /// nodes that spend their charge die permanently through the fault layer —
  /// the lifetime-* scenario family's regime.
  net::BatteryParams battery;
  core::ProtocolParams proto;
  core::SpmsExtensions spms_ext;  ///< future-work extensions (off by default)
  core::TrafficParams traffic;
  routing::DbfParams dbf;

  // --- faults -----------------------------------------------------------------
  /// Stacked fault processes (crash/repair renewal, region blackouts,
  /// battery deaths, link degradation, sink churn); see faults/plan.hpp.
  /// Every parameter feeds the store's config key.
  faults::FaultPlan faults;

  // --- mobility ---------------------------------------------------------------
  bool mobility = false;
  net::MobilityParams mobility_params;  ///< field_side_m is overridden by the builder

  // --- cluster pattern ---------------------------------------------------------
  double cluster_p_other = 0.05;  ///< interest probability for zone bystanders

  // --- statistics engines -------------------------------------------------------
  /// Delay-quantile engine.  Exact sample retention is the default (and the
  /// byte-identity contract for every paper scenario); the scale-* family
  /// opts into the t-digest sketch so 10^6-node runs hold O(compression)
  /// memory instead of one double per delivery.  Participates in the config
  /// key: a sketched run never shares a cache entry with an exact one.
  stats::PercentileOptions percentiles;

  // --- run control ---------------------------------------------------------------
  std::uint64_t seed = 1;
  /// Failure/mobility processes stop initiating events at this horizon;
  /// protocol traffic then drains to quiescence.
  sim::Duration activity_horizon = sim::Duration::ms(100.0);
  /// Hard event budget (runaway guard).
  std::size_t max_events = 200'000'000;
};

}  // namespace spms::exp
