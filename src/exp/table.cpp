#include "exp/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spms::exp {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table: row width does not match header"};
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Matches the JSON number grammar exactly; strtod alone also accepts "nan",
// "inf", hex floats, "+1", "0123", "1." and ".5", all invalid bare JSON.
bool is_number(const std::string& s) {
  const char* p = s.c_str();
  const auto digits = [&] {
    const char* start = p;
    while (*p >= '0' && *p <= '9') ++p;
    return p != start;
  };
  if (*p == '-') ++p;
  if (*p == '0') {
    ++p;  // a leading zero may not be followed by more digits
  } else if (!digits()) {
    return false;
  }
  if (*p == '.') {
    ++p;
    if (!digits()) return false;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (!digits()) return false;
  }
  return *p == '\0';
}

}  // namespace

void Table::print_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      os << '"' << json_escape(headers_[c]) << "\": ";
      if (is_number(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        os << '"' << json_escape(rows_[r][c]) << '"';
      }
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

bool Table::column_is_numeric(const std::string& column) const {
  const auto it = std::find(headers_.begin(), headers_.end(), column);
  if (it == headers_.end()) return false;
  const auto c = static_cast<std::size_t>(it - headers_.begin());
  for (const auto& row : rows_) {
    if (!is_number(row[c])) return false;
  }
  return true;
}

void Table::print_gnuplot(std::ostream& os, const std::string& title, const std::string& x_col,
                          const std::string& y_col) const {
  const auto col_of = [&](const std::string& name) {
    const auto it = std::find(headers_.begin(), headers_.end(), name);
    if (it == headers_.end()) {
      throw std::invalid_argument{"Table::print_gnuplot: no column '" + name + "'"};
    }
    return static_cast<std::size_t>(it - headers_.begin());
  };
  const std::size_t xc = col_of(x_col);
  const std::size_t yc = col_of(y_col);
  // A non-numeric x (e.g. the variant of a budget sweep) plots as a
  // category axis: row index as abscissa, the cell text as the tic label.
  const bool categorical_x = !column_is_numeric(x_col);

  // A series is one distinct combination of the non-numeric columns
  // (protocol, variant, …), in first-appearance order.
  std::vector<std::size_t> key_cols;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c != xc && c != yc && !column_is_numeric(headers_[c])) key_cols.push_back(c);
  }
  std::vector<std::string> series_names;                 // first-appearance order
  std::vector<std::vector<std::size_t>> series_rows;     // parallel to series_names
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    std::string key;
    for (const auto c : key_cols) {
      if (!key.empty()) key += '/';
      key += rows_[r][c];
    }
    if (key.empty()) key = "all";
    const auto it = std::find(series_names.begin(), series_names.end(), key);
    if (it == series_names.end()) {
      series_names.push_back(key);
      series_rows.emplace_back();
      series_rows.back().push_back(r);
    } else {
      series_rows[static_cast<std::size_t>(it - series_names.begin())].push_back(r);
    }
  }

  os << "# generated by run_experiment_cli --format gnuplot; pipe into gnuplot\n";
  os << "# columns:";
  for (const auto& h : headers_) os << ' ' << h;
  os << "\n\n";
  if (rows_.empty()) {
    // Reachable via e.g. a shard slice beyond the point count; a bare
    // `plot \` with no elements would be a gnuplot syntax error, so emit a
    // valid no-op script instead.
    os << "# no data rows: nothing to plot\n";
    return;
  }
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    os << "$series" << s << " << EOD\n#";
    for (const auto& h : headers_) os << ' ' << h;
    os << '\n';
    for (const auto r : series_rows[s]) {
      for (std::size_t c = 0; c < rows_[r].size(); ++c) {
        if (c > 0) os << '\t';
        // Non-numeric cells are quoted so embedded spaces keep the column
        // count stable for gnuplot's whitespace splitting.
        if (is_number(rows_[r][c])) {
          os << rows_[r][c];
        } else {
          os << '"' << rows_[r][c] << '"';
        }
      }
      os << '\n';
    }
    os << "EOD\n";
  }
  os << "\nset title \"" << title << "\"\n";
  os << "set xlabel \"" << x_col << "\"\n";
  os << "set ylabel \"" << y_col << "\"\n";
  os << "set key outside right\n";
  os << "plot \\\n";
  for (std::size_t s = 0; s < series_names.size(); ++s) {
    os << "  $series" << s << " using ";
    if (categorical_x) {
      os << "0:" << (yc + 1) << ":xtic(" << (xc + 1) << ')';
    } else {
      os << (xc + 1) << ':' << (yc + 1);
    }
    os << " with linespoints title \"" << series_names[s] << '"';
    os << (s + 1 < series_names.size() ? ", \\\n" : "\n");
  }
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

}  // namespace spms::exp
