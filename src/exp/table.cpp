#include "exp/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spms::exp {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table: row width does not match header"};
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

}  // namespace spms::exp
