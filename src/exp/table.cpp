#include "exp/table.hpp"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace spms::exp {

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument{"Table: row width does not match header"};
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) width[c] = std::max(width[c], row[c].size());
  }
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(width[c]) + 2) << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (const auto w : width) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  const auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  return out;
}

// Matches the JSON number grammar exactly; strtod alone also accepts "nan",
// "inf", hex floats, "+1", "0123", "1." and ".5", all invalid bare JSON.
bool is_number(const std::string& s) {
  const char* p = s.c_str();
  const auto digits = [&] {
    const char* start = p;
    while (*p >= '0' && *p <= '9') ++p;
    return p != start;
  };
  if (*p == '-') ++p;
  if (*p == '0') {
    ++p;  // a leading zero may not be followed by more digits
  } else if (!digits()) {
    return false;
  }
  if (*p == '.') {
    ++p;
    if (!digits()) return false;
  }
  if (*p == 'e' || *p == 'E') {
    ++p;
    if (*p == '+' || *p == '-') ++p;
    if (!digits()) return false;
  }
  return *p == '\0';
}

}  // namespace

void Table::print_json(std::ostream& os) const {
  os << "[\n";
  for (std::size_t r = 0; r < rows_.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      if (c > 0) os << ", ";
      os << '"' << json_escape(headers_[c]) << "\": ";
      if (is_number(rows_[r][c])) {
        os << rows_[r][c];
      } else {
        os << '"' << json_escape(rows_[r][c]) << '"';
      }
    }
    os << (r + 1 < rows_.size() ? "},\n" : "}\n");
  }
  os << "]\n";
}

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string fmt_pct(double ratio, int precision) {
  return fmt(ratio * 100.0, precision) + "%";
}

}  // namespace spms::exp
