#pragma once

#include <array>
#include <cstddef>
#include <fstream>
#include <memory>
#include <string>

#include "obs/event_trace.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"
#include "obs/span_trace.hpp"

/// \file telemetry.hpp
/// Per-run telemetry wiring: one TelemetrySession observes one Scenario.
///
/// The session owns the run's MetricsRegistry, registers the cross-layer
/// gauge catalog (scheduler, net, routing, faults, battery, trace), feeds
/// per-kind counters and the delivery-delay histogram from the typed trace
/// sink, and optionally samples a gauge time series through the scheduler's
/// dispatch hook.  Everything is strictly observational — no events, no
/// cancellations, no RNG draws — so attaching a session leaves the run's
/// event stream (and therefore its serialized result) byte-identical; the
/// telemetry determinism suite pins this.

namespace spms::exp {

class Scenario;
struct RunResult;

/// Per-run telemetry switches.  Everything defaults to off, and the struct
/// lives OUTSIDE ExperimentConfig on purpose: telemetry never influences
/// the simulation, so it must never feed the store's config key either.
struct TelemetryOptions {
  /// Build the metric catalog even when nothing below asks for it (the
  /// catalog is always built when any option is set; this flag alone turns
  /// the session on for callers that only want the final registry values).
  bool metrics = false;

  /// > 0: snapshot every gauge each time the clock passes another multiple
  /// of this interval, observed at event-dispatch boundaries (see
  /// obs::Sampler).  The series lands in RunResult::series.
  double sample_every_ms = 0.0;

  /// > 0: keep the most recent N typed trace records in memory
  /// (EventTrace::ring_snapshot() on the scenario's trace).
  std::size_t trace_ring = 0;

  /// Non-empty: stream every typed trace record to this JSONL file.
  std::string trace_out;

  /// Non-empty: write final counters/gauges/histograms plus the sampled
  /// series to this JSONL file.
  std::string metrics_out;

  /// Format of metrics_out: JSONL (the default) or Prometheus text
  /// exposition.  A format alone does not activate the session.
  enum class MetricsFormat { kJson, kProm };
  MetricsFormat metrics_format = MetricsFormat::kJson;

  /// Assemble causal dissemination spans in memory (obs::SpanTrace); the
  /// result lands in RunResult::spans.  Implied by the three outputs below.
  bool spans = false;

  /// Non-empty: write the assembled spans as queryable JSONL.
  std::string spans_out;

  /// Non-empty: write the assembled spans as Chrome/Perfetto trace-event
  /// JSON (load in ui.perfetto.dev).
  std::string perfetto_out;

  /// Non-empty: attach an obs::FlightRecorder dumping ring + open spans to
  /// this JSONL file on anomalies.  Forces a default ring of 256 records
  /// when trace_ring is 0 (a flight dump with no ring is pointless).
  std::string flight_out;

  [[nodiscard]] bool span_assembly() const {
    return spans || !spans_out.empty() || !perfetto_out.empty() || !flight_out.empty();
  }

  [[nodiscard]] bool any() const {
    return metrics || sample_every_ms > 0.0 || trace_ring > 0 || !trace_out.empty() ||
           !metrics_out.empty() || span_assembly();
  }
};

/// Observes one Scenario for one run.  Construct after the Scenario (and
/// before start(), so the first event is seen); call finish() once the run
/// is over.  Inert when options.any() is false.  The scenario must outlive
/// the session.
class TelemetrySession {
 public:
  TelemetrySession(Scenario& scenario, const TelemetryOptions& options);
  ~TelemetrySession();
  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  [[nodiscard]] bool active() const { return active_; }
  [[nodiscard]] const obs::MetricsRegistry& registry() const { return registry_; }
  [[nodiscard]] const obs::Sampler* sampler() const { return sampler_.get(); }
  /// The span assembly, or nullptr when span_assembly() was off.
  [[nodiscard]] const obs::SpanTrace* spans() const { return span_trace_.get(); }
  /// The flight recorder, or nullptr when flight_out was empty.
  [[nodiscard]] const obs::FlightRecorder* flight() const { return flight_.get(); }

  /// Moves the sampled series into `result`, writes metrics_out if
  /// requested, and detaches every hook/sink.  Idempotent; the destructor
  /// detaches too, so a session abandoned by an exception never leaves a
  /// dangling hook on the scenario.
  void finish(RunResult& result);

 private:
  void register_catalog();
  void install_sink();
  void detach();
  void write_metrics_file(const RunResult& result);

  Scenario& scenario_;
  TelemetryOptions options_;
  bool active_ = false;
  bool finished_ = false;
  bool detached_ = false;
  obs::MetricsRegistry registry_;
  /// trace.<kind> counter per TraceKind, pre-resolved at construction so
  /// the sink's hot path is two array index operations.
  std::array<obs::CounterHandle, obs::kTraceKindCount> kind_counters_{};
  obs::HistogramHandle delay_hist_;
  std::unique_ptr<obs::Sampler> sampler_;
  /// shared_ptr because finish() hands the assembly to RunResult::spans
  /// without copying it.
  std::shared_ptr<obs::SpanTrace> span_trace_;
  std::unique_ptr<obs::FlightRecorder> flight_;
  std::ofstream trace_file_;
  std::ofstream flight_file_;
  std::string scratch_;  ///< reused JSONL line buffer
};

}  // namespace spms::exp
