#include "exp/batch.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

namespace spms::exp {

BatchResult::BatchResult(std::vector<SweepJob> jobs, std::vector<RunResult> runs)
    : jobs_(std::move(jobs)), runs_(std::move(runs)) {
  // Group the flat results by grid point.  Jobs of a point are contiguous in
  // expansion order except for the protocol axis sitting between variant and
  // seed, so group by the point index rather than assuming contiguity.
  std::size_t num_points = 0;
  for (const auto& job : jobs_) num_points = std::max(num_points, job.point + 1);
  points_.resize(num_points);
  for (const auto& job : jobs_) {
    auto& p = points_[job.point];
    if (p.runs.empty()) {
      p.protocol = job.protocol;
      p.node_count = job.node_count;
      p.zone_radius_m = job.zone_radius_m;
      p.variant = job.variant;
    }
    p.runs.push_back(runs_[job.index]);
  }
  for (auto& p : points_) p.stats = aggregate(p.runs);
}

const PointResult& BatchResult::point(ProtocolKind protocol, std::size_t node_count,
                                      double zone_radius_m, std::string_view variant) const {
  for (const auto& p : points_) {
    if (p.protocol == protocol && p.node_count == node_count &&
        p.zone_radius_m == zone_radius_m && p.variant == variant) {
      return p;
    }
  }
  throw std::out_of_range{"BatchResult::point: no such grid point"};
}

BatchResult BatchRunner::run(const SweepSpec& spec) const {
  auto jobs = spec.expand();
  std::vector<RunResult> runs(jobs.size());

  const std::size_t workers =
      std::min(options_.jobs == 0 ? default_jobs() : options_.jobs, jobs.size());

  std::mutex mu;  // guards on_result + done counter
  std::size_t done = 0;
  const auto execute = [&](const SweepJob& job) {
    auto result = run_experiment(job.config);
    if (options_.on_result) {
      const std::lock_guard<std::mutex> lock{mu};
      runs[job.index] = std::move(result);
      options_.on_result(job, runs[job.index], ++done, jobs.size());
    } else {
      // Distinct slots; no lock needed for the write itself.
      runs[job.index] = std::move(result);
    }
  };

  if (workers <= 1) {
    for (const auto& job : jobs) execute(job);
    return BatchResult{std::move(jobs), std::move(runs)};
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= jobs.size()) return;
        try {
          execute(jobs[i]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock{error_mu};
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return BatchResult{std::move(jobs), std::move(runs)};
}

std::size_t default_jobs() {
  if (const char* env = std::getenv("SPMS_JOBS")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace spms::exp
