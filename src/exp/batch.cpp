#include "exp/batch.hpp"

#include <atomic>
#include <cstdlib>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "exp/store/result_store.hpp"

namespace spms::exp {

BatchResult::BatchResult(std::vector<SweepJob> jobs, std::vector<RunResult> runs,
                         std::size_t cached)
    : jobs_(std::move(jobs)), runs_(std::move(runs)), cached_(cached) {
  // Group the flat results by grid point, first-seen order (== grid order,
  // since expansion emits each point's jobs before the next point's; shard
  // slices preserve that order and may simply skip points entirely).
  std::unordered_map<std::size_t, std::size_t> slot_of_point;
  for (const auto& job : jobs_) {
    const auto [it, fresh] = slot_of_point.try_emplace(job.point, points_.size());
    if (fresh) {
      auto& p = points_.emplace_back();
      p.protocol = job.protocol;
      p.node_count = job.node_count;
      p.zone_radius_m = job.zone_radius_m;
      p.variant = job.variant;
    }
    points_[it->second].runs.push_back(runs_[job.index]);
  }
  for (auto& p : points_) p.stats = aggregate(p.runs);
}

const PointResult& BatchResult::point(ProtocolKind protocol, std::size_t node_count,
                                      double zone_radius_m, std::string_view variant) const {
  for (const auto& p : points_) {
    if (p.protocol == protocol && p.node_count == node_count &&
        p.zone_radius_m == zone_radius_m && p.variant == variant) {
      return p;
    }
  }
  throw std::out_of_range{"BatchResult::point: no such grid point"};
}

BatchResult BatchRunner::run(const SweepSpec& spec) const {
  auto jobs = spec.expand();
  if (options_.shard_count != 1) {
    jobs = filter_shard(std::move(jobs), options_.shard_index, options_.shard_count);
  } else if (options_.shard_index != 0) {
    throw std::invalid_argument{"BatchRunner: shard_index requires shard_count > 1"};
  }
  std::vector<RunResult> runs(jobs.size());

  // Resolve against the store first: cache hits fill their expansion-order
  // slots directly, and only the misses go to the worker pool.  The final
  // runs vector is therefore identical however the hit/miss split falls —
  // run_experiment is a pure function of the config and the serialization
  // round-trips bit-exactly, so a replayed result IS the fresh result.
  std::vector<std::string> canonical(jobs.size());
  std::vector<std::string> keys(jobs.size());
  if (options_.store != nullptr) {
    for (const auto& job : jobs) {
      canonical[job.index] = store::canonical_config_json(job.config);
      keys[job.index] = store::key_for_canonical(canonical[job.index]);
    }
  }
  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  std::size_t cached = 0;
  for (const auto& job : jobs) {
    if (options_.store != nullptr && options_.use_cache) {
      if (auto hit = options_.store->find(keys[job.index], canonical[job.index])) {
        runs[job.index] = *std::move(hit);
        ++cached;
        continue;
      }
    }
    pending.push_back(job.index);
  }

  const std::size_t workers =
      std::min(options_.jobs == 0 ? default_jobs() : options_.jobs, pending.size());

  // Per-job telemetry, minus the file outputs (workers would race on them).
  TelemetryOptions job_telemetry = options_.telemetry;
  job_telemetry.trace_out.clear();
  job_telemetry.metrics_out.clear();

  std::mutex mu;  // guards on_result + done counter
  std::size_t done = 0;
  const auto execute = [&](const SweepJob& job) {
    auto result = run_experiment(job.config, job_telemetry);
    if (options_.store != nullptr) {
      options_.store->put(keys[job.index], canonical[job.index], result);
    }
    if (options_.on_result) {
      const std::lock_guard<std::mutex> lock{mu};
      runs[job.index] = std::move(result);
      options_.on_result(job, runs[job.index], ++done, pending.size());
    } else {
      // Distinct slots; no lock needed for the write itself.
      runs[job.index] = std::move(result);
    }
  };

  if (workers <= 1) {
    for (const auto i : pending) execute(jobs[i]);
    return BatchResult{std::move(jobs), std::move(runs), cached};
  }

  std::atomic<std::size_t> next{0};
  std::exception_ptr first_error;
  std::mutex error_mu;
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= pending.size()) return;
        try {
          execute(jobs[pending[i]]);
        } catch (...) {
          const std::lock_guard<std::mutex> lock{error_mu};
          if (!first_error) first_error = std::current_exception();
        }
      }
    });
  }
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
  return BatchResult{std::move(jobs), std::move(runs), cached};
}

std::size_t parse_jobs_env(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  // Validate the whole string before clamping, so "2048x" is rejected like
  // "4x" rather than sneaking through once the clamp saturates.
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
  }
  std::size_t v = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    v = v * 10 + static_cast<std::size_t>(*p - '0');
    if (v > kMaxJobs) return kMaxJobs;  // clamp absurd values (and stop any overflow)
  }
  return v;
}

std::size_t default_jobs() {
  if (const std::size_t v = parse_jobs_env(std::getenv("SPMS_JOBS")); v > 0) return v;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace spms::exp
