#include "exp/batch.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <exception>
#include <fstream>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <unordered_map>
#include <utility>

#include "exp/store/result_store.hpp"

namespace spms::exp {

namespace {

void append_u64(std::string& s, std::uint64_t v) {
  char buf[24];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

void append_double(std::string& s, double v) {
  if (!std::isfinite(v)) {
    s += '0';
    return;
  }
  char buf[32];
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  s.append(buf, p);
}

/// Per-point rollup sidecar.  Counters sum and histograms merge over the
/// point's executed runs in expansion order (the runs vector's order), so
/// the bytes never depend on worker scheduling; names are emitted sorted.
void write_rollups(const SweepSpec& spec, const BatchResult& result, const std::string& path) {
  std::ofstream out{path, std::ios::out | std::ios::trunc};
  if (!out) throw std::runtime_error{"BatchRunner: cannot open rollup file " + path};

  std::string line;
  for (const auto& p : result.points()) {
    std::map<std::string, std::uint64_t> counters;           // sorted by name
    std::map<std::string, obs::HistogramSnapshot> histograms;
    std::size_t executed = 0;
    for (const auto& r : p.runs) {
      if (r.metrics.empty()) continue;  // a cache hit: no metrics travelled
      ++executed;
      for (const auto& [name, value] : r.metrics.counters) counters[name] += value;
      for (const auto& h : r.metrics.histograms) {
        auto [it, fresh] = histograms.try_emplace(h.name, h);
        if (fresh) continue;
        auto& m = it->second;
        if (m.bounds != h.bounds) {
          throw std::runtime_error{"BatchRunner: histogram bounds mismatch for " + h.name};
        }
        for (std::size_t i = 0; i < m.counts.size(); ++i) m.counts[i] += h.counts[i];
        if (h.count > 0) {
          m.min = m.count > 0 ? std::min(m.min, h.min) : h.min;
          m.max = m.count > 0 ? std::max(m.max, h.max) : h.max;
        }
        m.count += h.count;
        m.sum += h.sum;
      }
    }

    line.clear();
    line += R"({"type":"rollup","scenario":")";
    line += spec.name;
    line += R"(","protocol":")";
    line += p.runs.empty() ? std::string{} : p.runs.front().protocol;
    line += R"(","nodes":)";
    append_u64(line, p.node_count);
    line += R"(,"radius_m":)";
    append_double(line, p.zone_radius_m);
    if (!p.variant.empty()) {
      line += R"(,"variant":")";
      line += p.variant;
      line += '"';
    }
    line += R"(,"seeds":)";
    append_u64(line, p.runs.size());
    line += R"(,"executed":)";
    append_u64(line, executed);
    line += R"(,"counters":{)";
    bool first = true;
    for (const auto& [name, value] : counters) {
      if (!first) line += ',';
      first = false;
      line += '"';
      line += name;
      line += "\":";
      append_u64(line, value);
    }
    line += R"(},"histograms":[)";
    first = true;
    for (const auto& [name, h] : histograms) {
      if (!first) line += ',';
      first = false;
      line += R"({"name":")";
      line += name;
      line += R"(","count":)";
      append_u64(line, h.count);
      line += R"(,"sum":)";
      append_double(line, h.sum);
      line += R"(,"min":)";
      append_double(line, h.min);
      line += R"(,"max":)";
      append_double(line, h.max);
      line += R"(,"bounds":[)";
      for (std::size_t i = 0; i < h.bounds.size(); ++i) {
        if (i > 0) line += ',';
        append_double(line, h.bounds[i]);
      }
      line += R"(],"counts":[)";
      for (std::size_t i = 0; i < h.counts.size(); ++i) {
        if (i > 0) line += ',';
        append_u64(line, h.counts[i]);
      }
      line += "]}";
    }
    line += "]}\n";
    out << line;
  }
}

}  // namespace

BatchResult::BatchResult(std::vector<SweepJob> jobs, std::vector<RunResult> runs,
                         std::size_t cached)
    : jobs_(std::move(jobs)), runs_(std::move(runs)), cached_(cached) {
  // Group the flat results by grid point, first-seen order (== grid order,
  // since expansion emits each point's jobs before the next point's; shard
  // slices preserve that order and may simply skip points entirely).
  std::unordered_map<std::size_t, std::size_t> slot_of_point;
  for (const auto& job : jobs_) {
    const auto [it, fresh] = slot_of_point.try_emplace(job.point, points_.size());
    if (fresh) {
      auto& p = points_.emplace_back();
      p.protocol = job.protocol;
      p.node_count = job.node_count;
      p.zone_radius_m = job.zone_radius_m;
      p.variant = job.variant;
    }
    points_[it->second].runs.push_back(runs_[job.index]);
  }
  for (auto& p : points_) p.stats = aggregate(p.runs);
}

const PointResult& BatchResult::point(ProtocolKind protocol, std::size_t node_count,
                                      double zone_radius_m, std::string_view variant) const {
  for (const auto& p : points_) {
    if (p.protocol == protocol && p.node_count == node_count &&
        p.zone_radius_m == zone_radius_m && p.variant == variant) {
      return p;
    }
  }
  throw std::out_of_range{"BatchResult::point: no such grid point"};
}

BatchResult BatchRunner::run(const SweepSpec& spec) const {
  auto jobs = spec.expand();
  if (options_.shard_count != 1) {
    jobs = filter_shard(std::move(jobs), options_.shard_index, options_.shard_count);
  } else if (options_.shard_index != 0) {
    throw std::invalid_argument{"BatchRunner: shard_index requires shard_count > 1"};
  }
  std::vector<RunResult> runs(jobs.size());

  // Resolve against the store first: cache hits fill their expansion-order
  // slots directly, and only the misses go to the worker pool.  The final
  // runs vector is therefore identical however the hit/miss split falls —
  // run_experiment is a pure function of the config and the serialization
  // round-trips bit-exactly, so a replayed result IS the fresh result.
  std::vector<std::string> canonical(jobs.size());
  std::vector<std::string> keys(jobs.size());
  if (options_.store != nullptr) {
    for (const auto& job : jobs) {
      canonical[job.index] = store::canonical_config_json(job.config);
      keys[job.index] = store::key_for_canonical(canonical[job.index]);
    }
  }
  std::vector<std::size_t> pending;
  pending.reserve(jobs.size());
  std::size_t cached = 0;
  for (const auto& job : jobs) {
    if (options_.store != nullptr && options_.use_cache) {
      if (auto hit = options_.store->find(keys[job.index], canonical[job.index])) {
        runs[job.index] = *std::move(hit);
        ++cached;
        continue;
      }
    }
    pending.push_back(job.index);
  }

  const std::size_t workers =
      std::min(options_.jobs == 0 ? default_jobs() : options_.jobs, pending.size());

  // Per-job telemetry, minus the file outputs (workers would race on them).
  TelemetryOptions job_telemetry = options_.telemetry;
  job_telemetry.trace_out.clear();
  job_telemetry.metrics_out.clear();
  job_telemetry.spans_out.clear();
  job_telemetry.perfetto_out.clear();
  job_telemetry.flight_out.clear();
  // The rollup aggregates each executed job's final counters/histograms.
  if (!options_.rollup_out.empty()) job_telemetry.metrics = true;

  std::mutex mu;  // guards on_result + done counter
  std::size_t done = 0;
  const auto execute = [&](const SweepJob& job) {
    auto result = run_experiment(job.config, job_telemetry);
    if (options_.store != nullptr) {
      options_.store->put(keys[job.index], canonical[job.index], result);
    }
    if (options_.on_result) {
      const std::lock_guard<std::mutex> lock{mu};
      runs[job.index] = std::move(result);
      options_.on_result(job, runs[job.index], ++done, pending.size());
    } else {
      // Distinct slots; no lock needed for the write itself.
      runs[job.index] = std::move(result);
    }
  };

  if (workers <= 1) {
    for (const auto i : pending) execute(jobs[i]);
  } else {
    std::atomic<std::size_t> next{0};
    std::exception_ptr first_error;
    std::mutex error_mu;
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      pool.emplace_back([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= pending.size()) return;
          try {
            execute(jobs[pending[i]]);
          } catch (...) {
            const std::lock_guard<std::mutex> lock{error_mu};
            if (!first_error) first_error = std::current_exception();
          }
        }
      });
    }
    for (auto& t : pool) t.join();
    if (first_error) std::rethrow_exception(first_error);
  }

  BatchResult result{std::move(jobs), std::move(runs), cached};
  if (!options_.rollup_out.empty()) write_rollups(spec, result, options_.rollup_out);
  return result;
}

std::size_t parse_jobs_env(const char* value) {
  if (value == nullptr || *value == '\0') return 0;
  // Validate the whole string before clamping, so "2048x" is rejected like
  // "4x" rather than sneaking through once the clamp saturates.
  for (const char* p = value; *p != '\0'; ++p) {
    if (*p < '0' || *p > '9') return 0;
  }
  std::size_t v = 0;
  for (const char* p = value; *p != '\0'; ++p) {
    v = v * 10 + static_cast<std::size_t>(*p - '0');
    if (v > kMaxJobs) return kMaxJobs;  // clamp absurd values (and stop any overflow)
  }
  return v;
}

std::size_t default_jobs() {
  if (const std::size_t v = parse_jobs_env(std::getenv("SPMS_JOBS")); v > 0) return v;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

}  // namespace spms::exp
