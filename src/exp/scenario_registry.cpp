#include "exp/scenario_registry.hpp"

#include <algorithm>
#include <cstdlib>

namespace spms::exp {

namespace {

constexpr std::size_t kNodesAxis[] = {25, 49, 100, 169, 225};
constexpr double kRadiiAxis[] = {5.0, 10.0, 15.0, 20.0, 25.0, 30.0};

/// Battery budget of the scaled faults-* regime: near the 90th percentile
/// of per-node spend on the reference 169-node / 2-packet deployment, so
/// roughly a tenth of the fleet (the busy relays) dies of depletion.
constexpr double kScaledBatteryCapacityUj = 900.0;

std::vector<std::size_t> nodes_axis(std::size_t upto = 225) {
  std::vector<std::size_t> out;
  for (const auto n : kNodesAxis) {
    if (n <= upto) out.push_back(n);
  }
  return out;
}

std::vector<double> radii_axis(double from = 5.0, double upto = 30.0) {
  std::vector<double> out;
  for (const auto r : kRadiiAxis) {
    if (r >= from && r <= upto) out.push_back(r);
  }
  return out;
}

std::vector<ProtocolKind> pair_axis() {
  return {ProtocolKind::kSpms, ProtocolKind::kSpin};
}

ConfigVariant clean() { return {"clean", nullptr}; }
ConfigVariant failures() { return {"failures", scaled_failures}; }

SweepSpec fig06() {
  SweepSpec spec;
  spec.name = "fig06";
  spec.base = reference_config();
  spec.protocols = pair_axis();
  spec.node_counts = nodes_axis();
  return spec;
}

SweepSpec fig07() {
  SweepSpec spec;
  spec.name = "fig07";
  spec.base = reference_config();
  spec.protocols = pair_axis();
  spec.zone_radii = radii_axis();
  return spec;
}

SweepSpec fig08() {
  auto spec = fig06();
  spec.name = "fig08";
  return spec;
}

SweepSpec fig09() {
  SweepSpec spec;
  spec.name = "fig09";
  spec.base = reference_config();
  spec.protocols = pair_axis();
  spec.zone_radii = radii_axis();
  spec.variants = {{"shared", nullptr}, {"round-mac", round_dominated_mac}};
  return spec;
}

SweepSpec fig10() {
  SweepSpec spec;
  spec.name = "fig10";
  spec.base = reference_config();
  spec.protocols = pair_axis();
  spec.node_counts = nodes_axis(/*upto=*/169);
  spec.variants = {clean(), failures()};
  return spec;
}

SweepSpec fig11() {
  SweepSpec spec;
  spec.name = "fig11";
  spec.base = reference_config();
  spec.protocols = pair_axis();
  spec.zone_radii = radii_axis();
  spec.variants = {clean(), failures()};
  return spec;
}

SweepSpec fig12() {
  SweepSpec spec;
  spec.name = "fig12";
  spec.base = reference_config();
  // The paper's full traffic load: the break-even analysis (Section 5.1.3)
  // shows one full-zone DBF rebuild costs several hundred packets' worth of
  // savings, so the figure only lands in the paper's 5-21% winning band when
  // enough packets flow between reconvergences.
  spec.base.traffic.packets_per_node = 10;
  spec.base.mobility = true;
  spec.base.mobility_params.epoch_interval = sim::Duration::ms(400);
  spec.base.mobility_params.move_fraction = 0.05;
  spec.base.activity_horizon = sim::Duration::ms(700);
  spec.protocols = pair_axis();
  spec.zone_radii = radii_axis(10.0, 25.0);
  return spec;
}

SweepSpec fig13() {
  SweepSpec spec;
  spec.name = "fig13";
  spec.base = reference_config();
  spec.base.pattern = TrafficPattern::kCluster;
  // The paper's stated reception assumption Er = Em: with so few deliveries
  // per item a realistic receive draw would be dominated by zone-wide ADV
  // reception that both protocols pay identically, flattening the figure;
  // the 35-59% band is only consistent with Er = Em here (EXPERIMENTS.md).
  spec.base.energy.rx_power_mw = 0.0125;
  spec.base.traffic.packets_per_node = 5;
  spec.protocols = pair_axis();
  spec.zone_radii = radii_axis(10.0);
  spec.variants = {clean(), failures()};
  return spec;
}

SweepSpec ablation_mac() {
  SweepSpec spec;
  spec.name = "ablation_mac";
  spec.base = reference_config();
  spec.base.node_count = 49;
  spec.protocols = pair_axis();
  spec.variants = {
      {"base", nullptr},
      {"no-carrier-sense", [](ExperimentConfig& c) { c.mac.carrier_sense = false; }},
      {"overhearing-charged", [](ExperimentConfig& c) { c.energy.charge_overhearing = true; }},
      {"rx-0.0125", [](ExperimentConfig& c) { c.energy.rx_power_mw = 0.0125; }},
      {"rx-0.05", [](ExperimentConfig& c) { c.energy.rx_power_mw = 0.05; }},
      {"rx-0.2", [](ExperimentConfig& c) { c.energy.rx_power_mw = 0.2; }},
      {"rx-0.8", [](ExperimentConfig& c) { c.energy.rx_power_mw = 0.8; }},
  };
  return spec;
}

SweepSpec flooding_baseline() {
  SweepSpec spec;
  spec.name = "flooding_baseline";
  spec.base = reference_config();
  spec.base.node_count = 49;
  spec.base.protocol = ProtocolKind::kFlooding;
  return spec;
}

SweepSpec mobility_breakeven() {
  SweepSpec spec;
  spec.name = "mobility_breakeven";
  spec.base = reference_config();
  spec.protocols = pair_axis();
  spec.zone_radii = radii_axis(15.0, 25.0);
  return spec;
}

SweepSpec extensions() {
  SweepSpec spec;
  spec.name = "extensions";
  spec.base = reference_config();
  spec.base.node_count = 100;
  spec.base.protocol = ProtocolKind::kSpms;
  spec.base.faults.crash.enabled = true;
  spec.base.activity_horizon = sim::Duration::ms(2000);
  const auto caching = [](ExperimentConfig& c) { c.spms_ext.relay_caching = true; };
  const auto scones = [](ExperimentConfig& c) { c.spms_ext.num_scones = 2; };
  const auto both = [=](ExperimentConfig& c) { caching(c); scones(c); };
  const auto no_fail = [](ExperimentConfig& c) { c.faults.crash.enabled = false; };
  spec.variants = {
      {"published", nullptr},
      {"relay-caching", caching},
      {"scones-2", scones},
      {"caching+scones-2", both},
      {"published-clean", no_fail},
      {"relay-caching-clean", [=](ExperimentConfig& c) { caching(c); no_fail(c); }},
      {"scones-2-clean", [=](ExperimentConfig& c) { scones(c); no_fail(c); }},
      {"caching+scones-2-clean", [=](ExperimentConfig& c) { both(c); no_fail(c); }},
  };
  return spec;
}

SweepSpec smoke() {
  SweepSpec spec;
  spec.name = "smoke";
  spec.base = reference_config();
  spec.base.node_count = 16;
  spec.base.zone_radius_m = 12.0;
  spec.base.traffic.packets_per_node = 1;
  spec.protocols = pair_axis();
  return spec;
}

// --- faults-* campaign family ------------------------------------------------

/// One variant per fault model plus the stacked worst case; the shared axis
/// of the whole family.
std::vector<ConfigVariant> fault_model_axis(bool with_clean) {
  std::vector<ConfigVariant> v;
  if (with_clean) v.push_back({"clean", nullptr});
  v.push_back({"crash", scaled_failures});
  v.push_back({"region", scaled_region_outages});
  v.push_back({"battery", scaled_battery_depletion});
  v.push_back({"link", scaled_link_degradation});
  v.push_back({"sink-churn", scaled_sink_churn});
  v.push_back({"stacked", scaled_stacked_faults});
  return v;
}

SweepSpec faults_smoke() {
  SweepSpec spec;
  spec.name = "faults-smoke";
  spec.base = reference_config();
  spec.base.node_count = 16;
  spec.base.zone_radius_m = 12.0;
  spec.base.traffic.packets_per_node = 1;
  // CI-sized regimes: the scaled 6 s campaign compressed onto a 1 s horizon
  // so every model still fires a handful of events while the whole sweep
  // stays seconds-cheap.
  spec.base.activity_horizon = sim::Duration::ms(1000.0);
  const auto mini_crash = [](ExperimentConfig& c) {
    c.faults.crash.enabled = true;
    c.faults.crash.mean_time_between_failures = sim::Duration::ms(300.0);
    c.faults.crash.repair_min = sim::Duration::ms(40.0);
    c.faults.crash.repair_max = sim::Duration::ms(80.0);
  };
  const auto mini_region = [](ExperimentConfig& c) {
    c.faults.region.enabled = true;
    c.faults.region.mean_time_between_outages = sim::Duration::ms(250.0);
    c.faults.region.radius_m = 8.0;
    c.faults.region.repair_min = sim::Duration::ms(50.0);
    c.faults.region.repair_max = sim::Duration::ms(100.0);
  };
  const auto mini_battery = [](ExperimentConfig& c) {
    // CI-sized energy budget: tight enough that the busiest couple of the
    // 16 nodes drain within the 1 s horizon.
    energy_budget(c, 30.0);
  };
  const auto mini_link = [](ExperimentConfig& c) {
    c.faults.link.enabled = true;
    c.faults.link.drop_start = 0.0;
    c.faults.link.drop_end = 0.3;
  };
  const auto mini_sink = [](ExperimentConfig& c) {
    c.faults.sink_churn.enabled = true;
    c.faults.sink_churn.hops = 2;
    c.faults.sink_churn.mean_time_between_failures = sim::Duration::ms(150.0);
    c.faults.sink_churn.repair_min = sim::Duration::ms(30.0);
    c.faults.sink_churn.repair_max = sim::Duration::ms(60.0);
  };
  spec.variants = {
      {"crash", mini_crash},
      {"region", mini_region},
      {"battery", mini_battery},
      {"link", mini_link},
      {"sink-churn", mini_sink},
      {"stacked",
       [=](ExperimentConfig& c) {
         mini_crash(c);
         mini_region(c);
         mini_battery(c);
         mini_link(c);
         mini_sink(c);
       }},
  };
  return spec;
}

SweepSpec faults_models() {
  SweepSpec spec;
  spec.name = "faults-models";
  spec.base = reference_config();
  spec.protocols = pair_axis();
  spec.node_counts = {49, 100, 169};
  spec.variants = fault_model_axis(/*with_clean=*/true);
  return spec;
}

SweepSpec faults_intensity() {
  SweepSpec spec;
  spec.name = "faults-intensity";
  spec.base = reference_config();
  spec.base.node_count = 100;
  spec.protocols = pair_axis();
  // One knob, the whole stacked plan: event rates scale with k, battery
  // budgets shrink with k (more pressure, more depletion deaths), peak link
  // loss scales (clamped) with k.
  const auto intensity = [](double k) {
    return [k](ExperimentConfig& c) {
      scaled_stacked_faults(c);
      auto& f = c.faults;
      f.crash.mean_time_between_failures = f.crash.mean_time_between_failures * (1.0 / k);
      f.region.mean_time_between_outages = f.region.mean_time_between_outages * (1.0 / k);
      c.battery.capacity_uj = c.battery.capacity_uj / k;
      f.link.drop_end = std::min(0.9, f.link.drop_end * k);
      f.sink_churn.mean_time_between_failures =
          f.sink_churn.mean_time_between_failures * (1.0 / k);
    };
  };
  spec.variants = {
      {"x0.5", intensity(0.5)},
      {"x1", intensity(1.0)},
      {"x2", intensity(2.0)},
      {"x4", intensity(4.0)},
  };
  return spec;
}

// --- lifetime-* family -------------------------------------------------------
//
// Network lifetime under a finite energy budget: the evaluation axis the
// energy-aware literature ranks protocols by (time-to-first-death, half-life,
// residual-energy variance/Gini) and the paper's premise made measurable.
// All lifetime scenarios run the 49-node reference field with a heavier
// 4-packet load so consumption differences between protocols accumulate
// into visibly different death schedules.

/// Shared base of the lifetime scenarios (before the battery budget).
ExperimentConfig lifetime_base() {
  auto cfg = reference_config();
  cfg.node_count = 49;
  cfg.traffic.packets_per_node = 4;
  cfg.activity_horizon = sim::Duration::ms(4000.0);
  return cfg;
}

/// Budget that lands in the interesting regime on the 49-node base: a
/// minority of nodes dies mid-run, the network stays partly functional.
constexpr double kLifetimeReferenceCapacityUj = 320.0;

SweepSpec lifetime_capacity() {
  SweepSpec spec;
  spec.name = "lifetime-capacity";
  spec.base = lifetime_base();
  spec.protocols = pair_axis();
  const auto cap = [](double uj) {
    return [uj](ExperimentConfig& c) { energy_budget(c, uj); };
  };
  spec.variants = {
      {"starved", cap(kLifetimeReferenceCapacityUj * 0.5)},
      {"tight", cap(kLifetimeReferenceCapacityUj)},
      {"ample", cap(kLifetimeReferenceCapacityUj * 2.0)},
      {"infinite", nullptr},  // the historical no-budget baseline
  };
  return spec;
}

SweepSpec lifetime_hetero() {
  SweepSpec spec;
  spec.name = "lifetime-hetero";
  spec.base = lifetime_base();
  spec.protocols = pair_axis();
  const auto hetero = [](double h) {
    return [h](ExperimentConfig& c) { energy_budget(c, kLifetimeReferenceCapacityUj, h); };
  };
  spec.variants = {
      {"h0", hetero(0.0)},
      {"h0.2", hetero(0.2)},
      {"h0.4", hetero(0.4)},
      {"h0.6", hetero(0.6)},
  };
  return spec;
}

SweepSpec lifetime_race() {
  SweepSpec spec;
  spec.name = "lifetime-race";
  spec.base = lifetime_base();
  energy_budget(spec.base, kLifetimeReferenceCapacityUj);
  // All three protocols on the same budget: the race the paper's
  // energy-aware claim implies but never runs.
  spec.protocols = {ProtocolKind::kSpms, ProtocolKind::kSpin, ProtocolKind::kFlooding};
  return spec;
}

SweepSpec lifetime_smoke() {
  SweepSpec spec;
  spec.name = "lifetime-smoke";
  spec.base = reference_config();
  spec.base.node_count = 16;
  spec.base.zone_radius_m = 12.0;
  spec.base.traffic.packets_per_node = 2;
  spec.base.activity_horizon = sim::Duration::ms(800.0);
  spec.protocols = pair_axis();
  // Tight enough that several of the 16 nodes deplete mid-run: the CI
  // acceptance pin for energy-driven deaths.
  energy_budget(spec.base, 38.0);
  return spec;
}

// --- scale-* family ----------------------------------------------------------
//
// Throughput/memory scaling harness, not a paper figure.  One packet per
// node toward the central sink on the reference grid, zone radius 10 m
// (~12 neighbours), so protocol traffic stays zone-local and the event
// count grows linearly with node count — the regime where events/sec and
// bytes-per-node are meaningful.  The two big sizes opt into the t-digest
// delay sketch: exact sample retention is pointless ballast at 10^5+
// deliveries and the sketch is what those runs exist to exercise
// (EXPERIMENTS.md "Scaling").

SweepSpec scale_spec(const char* name, std::size_t nodes, bool sketch) {
  SweepSpec spec;
  spec.name = name;
  spec.base = reference_config();
  spec.base.node_count = nodes;
  spec.base.zone_radius_m = 10.0;
  spec.base.pattern = TrafficPattern::kSink;
  spec.base.traffic.packets_per_node = 1;
  spec.base.percentiles.sketch = sketch;
  return spec;
}

SweepSpec scale_1k() { return scale_spec("scale-1k", 1'000, /*sketch=*/false); }
SweepSpec scale_10k() { return scale_spec("scale-10k", 10'000, /*sketch=*/false); }
SweepSpec scale_100k() { return scale_spec("scale-100k", 100'000, /*sketch=*/true); }
SweepSpec scale_1m() { return scale_spec("scale-1m", 1'000'000, /*sketch=*/true); }

}  // namespace

ExperimentConfig reference_config() {
  ExperimentConfig cfg;
  cfg.node_count = 169;
  cfg.grid_pitch_m = 5.0;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 2;
  cfg.seed = 2004;  // DSN 2004
  if (const char* env = std::getenv("SPMS_BENCH_PACKETS")) {
    cfg.traffic.packets_per_node = std::max(1, std::atoi(env));
  }
  if (const char* env = std::getenv("SPMS_BENCH_SEED")) {
    cfg.seed = static_cast<std::uint64_t>(std::atoll(env));
  }
  return cfg;
}

void scaled_failures(ExperimentConfig& cfg) {
  cfg.faults.crash.enabled = true;
  cfg.faults.crash.mean_time_between_failures = sim::Duration::ms(2500.0);
  cfg.faults.crash.repair_min = sim::Duration::ms(250.0);
  cfg.faults.crash.repair_max = sim::Duration::ms(750.0);
  cfg.activity_horizon = sim::Duration::ms(6000.0);
}

void scaled_region_outages(ExperimentConfig& cfg) {
  cfg.faults.region.enabled = true;
  cfg.faults.region.mean_time_between_outages = sim::Duration::ms(1500.0);
  cfg.faults.region.radius_m = 12.0;
  cfg.faults.region.repair_min = sim::Duration::ms(300.0);
  cfg.faults.region.repair_max = sim::Duration::ms(700.0);
  cfg.activity_horizon = sim::Duration::ms(6000.0);
}

void energy_budget(ExperimentConfig& cfg, double capacity_uj, double heterogeneity) {
  cfg.battery.finite = true;
  cfg.battery.capacity_uj = capacity_uj;
  cfg.battery.heterogeneity = heterogeneity;
  // A whisper of sleep drain: enough that lightly-loaded nodes are on the
  // clock too, small enough that traffic stays the dominant consumer.
  cfg.battery.idle_drain_mw = 0.01;
  cfg.battery.idle_tick = sim::Duration::ms(50.0);
  cfg.faults.battery.enabled = true;
}

void scaled_battery_depletion(ExperimentConfig& cfg) {
  // Energy-driven counterpart of the old 10%-die regime: the budget sits
  // near the 90th percentile of per-node spend on the reference 169-node
  // deployment (EXPERIMENTS.md), so the busiest ~tenth of the fleet — the
  // relays — actually runs dry.
  energy_budget(cfg, kScaledBatteryCapacityUj);
  cfg.activity_horizon = sim::Duration::ms(6000.0);
}

void scaled_link_degradation(ExperimentConfig& cfg) {
  cfg.faults.link.enabled = true;
  cfg.faults.link.drop_start = 0.0;
  cfg.faults.link.drop_end = 0.25;
  cfg.activity_horizon = sim::Duration::ms(6000.0);
}

void scaled_sink_churn(ExperimentConfig& cfg) {
  cfg.faults.sink_churn.enabled = true;
  cfg.faults.sink_churn.hops = 2;
  cfg.faults.sink_churn.mean_time_between_failures = sim::Duration::ms(1000.0);
  cfg.faults.sink_churn.repair_min = sim::Duration::ms(150.0);
  cfg.faults.sink_churn.repair_max = sim::Duration::ms(450.0);
  cfg.activity_horizon = sim::Duration::ms(6000.0);
}

void scaled_stacked_faults(ExperimentConfig& cfg) {
  scaled_failures(cfg);
  scaled_region_outages(cfg);
  scaled_battery_depletion(cfg);
  scaled_link_degradation(cfg);
  scaled_sink_churn(cfg);
}

void round_dominated_mac(ExperimentConfig& cfg) {
  cfg.mac.infinite_parallelism = true;
  cfg.proto.tout_adv = sim::Duration::ms(10.0);
  cfg.proto.tout_dat = sim::Duration::ms(20.0);
}

const std::vector<ScenarioInfo>& scenario_registry() {
  static const std::vector<ScenarioInfo> registry = {
      {"fig06", "energy per packet vs number of nodes (all-to-all, static)",
       "SPMS saves 26-43%; gap widens with the field", fig06},
      {"fig07", "energy per packet vs transmission radius (169 nodes)",
       "gap grows with radius; small at r<=10 m", fig07},
      {"fig08", "mean delay vs number of nodes (all-to-all, static)",
       "SPMS ~10x faster; gap widens with node count", fig08},
      {"fig09", "mean delay vs transmission radius (169 nodes), two MAC regimes",
       "delay falls with radius for both; SPMS below SPIN", fig09},
      {"fig10", "mean delay vs number of nodes, with transient failures",
       "failures raise delay; effect grows with node count", fig10},
      {"fig11", "mean delay vs transmission radius, with transient failures",
       "failure penalty grows with radius (more relays to lose)", fig11},
      {"fig12", "energy per packet vs radius, mobile nodes (all-to-all)",
       "SPMS wins by only 5-21% once DBF reconvergence is paid", fig12},
      {"fig13", "energy per packet vs radius, cluster-based traffic",
       "SPMS saves 35-59% failure-free; failures cost both more energy", fig13},
      {"ablation_mac", "MAC / energy-model choices on the 49-node reference",
       "not a paper figure; quantifies DESIGN.md decisions", ablation_mac},
      {"flooding_baseline", "classic flooding on the 49-node reference",
       "Section 1's baseline: full DATA frames from every node", flooding_baseline},
      {"mobility_breakeven", "packets needed between mobility events (Section 5.1.3)",
       "paper's calibration: 239.18 packets", mobility_breakeven},
      {"extensions", "SPMS future-work features under failure churn",
       "paper Section 6: relay caching should improve fault tolerance", extensions},
      {"smoke", "16-node quick check (CI smoke; not a paper figure)",
       "both protocols deliver everything on a small static grid", smoke},
      {"faults-models", "every fault model vs the crash-only baseline, 49-169 nodes",
       "resilience claims must survive regimes beyond independent crashes", faults_models},
      {"faults-intensity", "stacked worst-case faults at 0.5x-4x intensity, 100 nodes",
       "graceful degradation: delivery and recovery latency vs fault pressure",
       faults_intensity},
      {"faults-smoke", "16-node fault-model quick check (CI smoke; not a paper figure)",
       "all five fault models run, cache, and resume deterministically", faults_smoke},
      {"lifetime-capacity", "network lifetime vs battery budget, 49 nodes",
       "finite budgets turn energy savings into longer time-to-first-death",
       lifetime_capacity},
      {"lifetime-hetero", "network lifetime vs battery heterogeneity, 49 nodes",
       "uneven initial charge advances first death; half-life degrades gracefully",
       lifetime_hetero},
      {"lifetime-race", "SPMS vs SPIN vs flooding on one finite budget, 49 nodes",
       "the energy-aware protocol outlives its rivals on the same batteries",
       lifetime_race},
      {"lifetime-smoke", "16-node energy-death quick check (CI smoke; not a paper figure)",
       "energy-driven deaths fire, cache, and resume deterministically", lifetime_smoke},
      {"scale-1k", "1k-node sink-pattern scaling run (exact quantiles)",
       "throughput harness, not a paper figure; events grow linearly", scale_1k},
      {"scale-10k", "10k-node sink-pattern scaling run (exact quantiles; CI scale-smoke)",
       "throughput harness, not a paper figure; events grow linearly", scale_10k},
      {"scale-100k", "100k-node sink-pattern scaling run (t-digest sketch)",
       "memory stays O(compression) per run, not O(deliveries)", scale_100k},
      {"scale-1m", "10^6-node sink-pattern scaling run (t-digest sketch)",
       "the million-node pass: SoA + arena hot state at full scale", scale_1m},
  };
  return registry;
}

const ScenarioInfo* find_scenario(std::string_view name) {
  const auto& registry = scenario_registry();
  const auto it = std::find_if(registry.begin(), registry.end(),
                               [&](const ScenarioInfo& s) { return s.name == name; });
  return it == registry.end() ? nullptr : &*it;
}

std::vector<std::string> scenario_names() {
  std::vector<std::string> names;
  names.reserve(scenario_registry().size());
  for (const auto& s : scenario_registry()) names.push_back(s.name);
  return names;
}

}  // namespace spms::exp
