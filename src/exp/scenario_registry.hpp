#pragma once

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/config.hpp"
#include "exp/sweep.hpp"

/// \file scenario_registry.hpp
/// Named experiment scenarios: the paper's figures/tables and this repo's
/// ablations as declarative SweepSpecs.  Benches, tests and the CLI all pull
/// their grids from here, so a figure's definition lives in exactly one
/// place.  EXPERIMENTS.md documents every entry and its calibration.

namespace spms::exp {

/// One registry entry.  `make` builds a fresh SweepSpec each call (it
/// re-reads the SPMS_BENCH_* calibration env vars via reference_config).
struct ScenarioInfo {
  std::string name;         ///< registry key, e.g. "fig08"
  std::string title;        ///< what the sweep measures
  std::string paper_claim;  ///< the claim the figure reproduces
  std::function<SweepSpec()> make;
};

/// All registered scenarios, in presentation order.
[[nodiscard]] const std::vector<ScenarioInfo>& scenario_registry();

/// Looks up a scenario by name; nullptr if unknown.
[[nodiscard]] const ScenarioInfo* find_scenario(std::string_view name);

/// Names of every registered scenario, registry order.
[[nodiscard]] std::vector<std::string> scenario_names();

/// Reference experiment configuration (paper Table 1 + DESIGN.md Section 6).
/// packets_per_node defaults to 2 instead of Table 1's 10 so the whole bench
/// suite completes in minutes; SPMS_BENCH_PACKETS / SPMS_BENCH_SEED override
/// (see EXPERIMENTS.md).
[[nodiscard]] ExperimentConfig reference_config();

/// Transient-failure regime scaled to this MAC's timescale: ≈20% downtime
/// duty cycle, a couple of failures per node while traffic is in flight —
/// the paper's relative churn on our stretched clock (EXPERIMENTS.md).
void scaled_failures(ExperimentConfig& cfg);

/// The other fault models' scaled regimes for the faults-* campaign
/// (EXPERIMENTS.md documents each): region blackouts every ~1.5 s over a
/// 12 m disk, energy-driven battery deaths on a finite budget sized so
/// roughly a tenth of the reference fleet runs dry, link drops ramping
/// 0 → 25%, and crash churn confined to the sink's 2-hop neighborhood.
/// Each also stretches the activity horizon to the 6 s failure timescale.
void scaled_region_outages(ExperimentConfig& cfg);
void scaled_battery_depletion(ExperimentConfig& cfg);
void scaled_link_degradation(ExperimentConfig& cfg);
void scaled_sink_churn(ExperimentConfig& cfg);

/// Arms the energy-coupled death path: finite per-node budget of
/// `capacity_uj` (optionally heterogeneous), a small idle/sleep drain, and
/// the fault layer's battery model so depletions become permanent deaths
/// with lifetime metrics.  The building block of the lifetime-* family.
void energy_budget(ExperimentConfig& cfg, double capacity_uj, double heterogeneity = 0.0);

/// All five scaled regimes stacked — the worst-case composite plan.
void scaled_stacked_faults(ExperimentConfig& cfg);

/// Round-dominated regime (paper-style MAC): no queueing, backoff + airtime
/// only.  Isolates the paper's falling-delay-with-radius mechanism (Fig. 9).
void round_dominated_mac(ExperimentConfig& cfg);

}  // namespace spms::exp
