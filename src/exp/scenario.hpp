#pragma once

#include <memory>

#include "core/collector.hpp"
#include "core/interest.hpp"
#include "core/protocol.hpp"
#include "core/traffic.hpp"
#include "exp/config.hpp"
#include "faults/controller.hpp"
#include "net/mobility.hpp"
#include "net/network.hpp"
#include "routing/bellman_ford.hpp"
#include "sim/simulation.hpp"

/// \file scenario.hpp
/// Assembles a runnable experiment from an ExperimentConfig: simulation,
/// network, routing (for SPMS), interest, protocol, collector, traffic, and
/// the optional failure/mobility processes — fully wired, ready to start().

namespace spms::exp {

/// Owns every object of one experiment run.  Members are declared in
/// dependency order; destruction runs in reverse, so referees outlive
/// referrers.
class Scenario {
 public:
  /// Builds and wires everything (including the initial DBF run for SPMS).
  explicit Scenario(const ExperimentConfig& config);

  /// Starts traffic and the configured fault/mobility processes.
  void start();

  /// Runs the simulation to quiescence (bounded by config.max_events).
  /// Returns the number of events executed.
  std::size_t run();

  [[nodiscard]] const ExperimentConfig& config() const { return config_; }
  [[nodiscard]] sim::Simulation& simulation() { return *sim_; }
  [[nodiscard]] net::Network& network() { return *net_; }
  /// Null for protocols without a routing layer (SPIN, flooding).
  [[nodiscard]] routing::RoutingService* routing() { return routing_.get(); }
  [[nodiscard]] core::Interest& interest() { return *interest_; }
  [[nodiscard]] core::DisseminationProtocol& protocol() { return *protocol_; }
  [[nodiscard]] core::Collector& collector() { return *collector_; }
  [[nodiscard]] core::TrafficGenerator& traffic() { return *traffic_; }
  /// Null unless the config's FaultPlan enables at least one model.
  [[nodiscard]] faults::FaultController* faults() { return faults_.get(); }
  [[nodiscard]] net::MobilityProcess* mobility() { return mobility_.get(); }

  /// Side length of the deployed square field, metres.
  [[nodiscard]] double field_side_m() const { return field_side_m_; }

  /// The node nearest the field centre: the sink of the kSink pattern and
  /// the anchor of the sink-churn fault model.
  [[nodiscard]] net::NodeId central_node() const { return central_node_; }

 private:
  ExperimentConfig config_;
  std::unique_ptr<sim::Simulation> sim_;
  std::unique_ptr<net::Network> net_;
  std::unique_ptr<routing::RoutingService> routing_;
  std::unique_ptr<core::Interest> interest_;
  std::unique_ptr<core::DisseminationProtocol> protocol_;
  std::unique_ptr<core::Collector> collector_;
  std::unique_ptr<core::TrafficGenerator> traffic_;
  std::unique_ptr<faults::FaultController> faults_;
  std::unique_ptr<net::MobilityProcess> mobility_;
  double field_side_m_ = 0.0;
  net::NodeId central_node_{0};
};

}  // namespace spms::exp
