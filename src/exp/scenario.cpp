#include "exp/scenario.hpp"

#include <limits>
#include <stdexcept>

#include "core/flooding.hpp"
#include "core/spin.hpp"
#include "core/spms.hpp"
#include "net/topology.hpp"

namespace spms::exp {

Scenario::Scenario(const ExperimentConfig& config) : config_(config) {
  sim_ = std::make_unique<sim::Simulation>(config_.seed);

  // Uniform-density deployment: a square grid sized to hold node_count
  // points (extra grid slots simply unpopulated), or a uniform random
  // scatter over a field of the same density.
  const std::size_t side = net::grid_side_for(config_.node_count);
  field_side_m_ = static_cast<double>(side - 1) * config_.grid_pitch_m;
  std::vector<net::Point> positions;
  switch (config_.deployment) {
    case Deployment::kGrid:
      positions = net::grid_deployment(side, config_.grid_pitch_m);
      positions.resize(config_.node_count);
      break;
    case Deployment::kUniformRandom: {
      auto rng = sim_->rng().fork(0xDE9107);
      positions = net::random_deployment(config_.node_count, field_side_m_, rng);
      break;
    }
  }

  net_ = std::make_unique<net::Network>(*sim_, net::RadioTable::mica2(), config_.mac,
                                        config_.energy, std::move(positions),
                                        config_.zone_radius_m, config_.battery);

  // The node nearest the field centre: sink of the kSink pattern, anchor of
  // the sink-churn fault model.
  {
    const net::Point centre{field_side_m_ / 2.0, field_side_m_ / 2.0};
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t i = 0; i < net_->size(); ++i) {
      const double d = distance(net_->position(net::NodeId{i}), centre);
      if (d < best) {
        best = d;
        central_node_ = net::NodeId{i};
      }
    }
  }

  switch (config_.pattern) {
    case TrafficPattern::kAllToAll:
      interest_ = std::make_unique<core::AllToAllInterest>(net_->size());
      break;
    case TrafficPattern::kCluster:
      interest_ = std::make_unique<core::ClusterInterest>(*net_, config_.zone_radius_m,
                                                          config_.cluster_p_other,
                                                          config_.seed ^ 0xC1057E8ull);
      break;
    case TrafficPattern::kSink:
      interest_ = std::make_unique<core::SinkInterest>(central_node_);
      break;
  }

  switch (config_.protocol) {
    case ProtocolKind::kSpms:
      // SPMS is the only protocol that runs DBF; the constructor performs
      // the initial table build (charging its energy as kRouting).
      routing_ = std::make_unique<routing::RoutingService>(*net_, config_.dbf);
      protocol_ = std::make_unique<core::SpmsProtocol>(*sim_, *net_, *routing_, *interest_,
                                                       config_.proto, config_.spms_ext);
      break;
    case ProtocolKind::kSpin:
      protocol_ = std::make_unique<core::SpinProtocol>(*sim_, *net_, *interest_, config_.proto);
      break;
    case ProtocolKind::kFlooding:
      protocol_ =
          std::make_unique<core::FloodingProtocol>(*sim_, *net_, *interest_, config_.proto);
      break;
  }

  collector_ = std::make_unique<core::Collector>(config_.percentiles);
  if (config_.faults.any()) {
    faults_ = std::make_unique<faults::FaultController>(*sim_, *net_, config_.faults,
                                                        central_node_);
  }
  protocol_->set_delivery_callback(
      [sim = sim_.get(), collector = collector_.get(), faults = faults_.get()](
          net::NodeId node, net::DataId item, sim::TimePoint at) {
        if (sim->in_parallel_phase()) {
          // Collector percentile sketches and fault bookkeeping are
          // order-sensitive; replay in canonical batch order during the
          // commit phase.  (The typed trace disables parallel dispatch
          // entirely, so the emit branch below is unreachable here.)
          sim->defer_serial([collector, faults, node, item, at] {
            collector->record_delivery(node, item, at);
            if (faults != nullptr) faults->record_delivery(node, at);
          });
          return;
        }
        const double delay_ms = collector->record_delivery(node, item, at);
        if (sim->events().enabled()) {
          sim->events().emit({.at = at, .kind = obs::TraceKind::kDelivery, .node = node,
                              .item = item, .value = delay_ms});
        }
        if (faults != nullptr) faults->record_delivery(node, at);
      });

  traffic_ = std::make_unique<core::TrafficGenerator>(*sim_, *net_, *protocol_, *interest_,
                                                      *collector_, config_.traffic,
                                                      config_.seed ^ 0x7AFF1Cu);

  if (config_.mobility) {
    if (config_.pattern == TrafficPattern::kCluster) {
      // ClusterInterest::wants() depends on positions; combining it with
      // mobility would make interest time-varying, which the paper never
      // does.
      throw std::invalid_argument{"Scenario: mobility requires the all-to-all pattern"};
    }
    auto params = config_.mobility_params;
    params.field_side_m = field_side_m_;
    mobility_ = std::make_unique<net::MobilityProcess>(*sim_, *net_, params);
    mobility_->set_on_moved([this] {
      // "When a node moves …, the routing tables of its zone neighbors get
      // updated through re-execution of the DBF."  SPIN keeps no tables.
      if (routing_) routing_->rebuild();
      protocol_->on_topology_changed();
    });
  }
}

void Scenario::start() {
  const auto horizon = sim_->now() + config_.activity_horizon;
  traffic_->start();
  // Idle/sleep drain ticks until the horizon (a no-op for infinite
  // batteries), after which the run drains to quiescence like any other
  // activity-initiating process.
  net_->start_idle_drain(horizon);
  if (faults_) faults_->start(horizon);
  if (mobility_) mobility_->start(horizon);
}

std::size_t Scenario::run() { return sim_->run(config_.max_events); }

}  // namespace spms::exp
