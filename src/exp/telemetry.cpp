#include "exp/telemetry.hpp"

#include <charconv>
#include <cmath>
#include <stdexcept>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "obs/process_stats.hpp"

namespace spms::exp {

namespace {

/// Shortest round-trip double rendering (JSON has no inf/nan; callers only
/// feed finite values — gauges and counters — so the guard is a plain 0).
void append_double(double v, std::string& out) {
  if (!std::isfinite(v)) {
    out += "0";
    return;
  }
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

void append_u64(std::uint64_t v, std::string& out) {
  char buf[24];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, static_cast<std::size_t>(ptr - buf));
}

/// Metric names are fixed identifiers ([a-z0-9._-]); no escaping needed.
void append_name(std::string_view name, std::string& out) {
  out += '"';
  out += name;
  out += '"';
}

const std::vector<double>& delay_bounds() {
  static const std::vector<double> bounds{1.0,   2.0,   5.0,    10.0,   20.0,   50.0,
                                          100.0, 200.0, 500.0,  1000.0, 2000.0, 5000.0};
  return bounds;
}

}  // namespace

TelemetrySession::TelemetrySession(Scenario& scenario, const TelemetryOptions& options)
    : scenario_(scenario), options_(options) {
  if (!options_.any()) return;
  active_ = true;

  // A flight dump with no ring would carry no recent past, so an explicit
  // flight_out implies a default-sized ring.
  if (!options_.flight_out.empty() && options_.trace_ring == 0) options_.trace_ring = 256;

  if (options_.trace_ring > 0) {
    scenario_.simulation().events().enable_ring(options_.trace_ring);
  }
  if (!options_.trace_out.empty()) {
    trace_file_.open(options_.trace_out, std::ios::out | std::ios::trunc);
    if (!trace_file_) {
      throw std::runtime_error{"TelemetrySession: cannot open trace file " + options_.trace_out};
    }
  }
  if (options_.span_assembly()) {
    span_trace_ = std::make_shared<obs::SpanTrace>();
  }
  if (!options_.flight_out.empty()) {
    flight_file_.open(options_.flight_out, std::ios::out | std::ios::trunc);
    if (!flight_file_) {
      throw std::runtime_error{"TelemetrySession: cannot open flight file " + options_.flight_out};
    }
    flight_ = std::make_unique<obs::FlightRecorder>(scenario_.simulation().events(), *span_trace_,
                                                    flight_file_);
  }

  register_catalog();
  install_sink();

  if (options_.sample_every_ms > 0.0) {
    sampler_ = std::make_unique<obs::Sampler>(registry_,
                                              sim::Duration::ms(options_.sample_every_ms));
    scenario_.simulation().scheduler().set_dispatch_hook(
        [s = sampler_.get()](sim::TimePoint now) { s->observe(now); });
  }
}

TelemetrySession::~TelemetrySession() { detach(); }

void TelemetrySession::register_catalog() {
  // Pull gauges: each reads a layer's native counter on demand, so the
  // layers pay nothing until a sample or the final export asks.  Lambdas
  // capture raw layer pointers; the scenario outlives the session by
  // contract.
  auto& sched = scenario_.simulation().scheduler();
  registry_.register_gauge("sched.pending", [&sched] {
    return static_cast<double>(sched.pending());
  });
  registry_.register_gauge("sched.events_executed", [&sched] {
    return static_cast<double>(sched.events_executed());
  });
  registry_.register_gauge("sched.events_cancelled", [&sched] {
    return static_cast<double>(sched.events_cancelled());
  });

  auto* nw = &scenario_.network();
  const auto net_counter = [this, nw](std::string_view name,
                                      std::uint64_t net::NetCounters::*field) {
    registry_.register_gauge(name, [nw, field] {
      return static_cast<double>(nw->counters().*field);
    });
  };
  net_counter("net.tx_adv", &net::NetCounters::tx_adv);
  net_counter("net.tx_req", &net::NetCounters::tx_req);
  net_counter("net.tx_data", &net::NetCounters::tx_data);
  net_counter("net.tx_route", &net::NetCounters::tx_route);
  net_counter("net.tx_bytes", &net::NetCounters::tx_bytes);
  net_counter("net.deliveries", &net::NetCounters::deliveries);
  net_counter("net.dropped_sender_down", &net::NetCounters::dropped_sender_down);
  net_counter("net.dropped_out_of_range", &net::NetCounters::dropped_out_of_range);
  net_counter("net.dropped_receiver_down", &net::NetCounters::dropped_receiver_down);
  net_counter("net.dropped_link_fault", &net::NetCounters::dropped_link_fault);
  net_counter("net.dropped_battery_dead", &net::NetCounters::dropped_battery_dead);
  registry_.register_gauge("net.mac_queue_depth_max", [nw] {
    return static_cast<double>(nw->max_mac_queue_depth());
  });
  registry_.register_gauge("net.grid_queries", [nw] {
    return static_cast<double>(nw->grid_queries());
  });
  registry_.register_gauge("energy.protocol_uj", [nw] { return nw->energy().protocol_uj(); });
  registry_.register_gauge("energy.total_uj", [nw] { return nw->energy().total_uj(); });

  auto* col = &scenario_.collector();
  registry_.register_gauge("delivery.published", [col] {
    return static_cast<double>(col->published());
  });
  registry_.register_gauge("delivery.delivered", [col] {
    return static_cast<double>(col->deliveries());
  });
  registry_.register_gauge("delivery.unknown_item", [col] {
    return static_cast<double>(col->unknown_item_deliveries());
  });

  if (auto* routing = scenario_.routing(); routing != nullptr) {
    registry_.register_gauge("routing.dbf_rebuilds", [routing] {
      return static_cast<double>(routing->rebuild_count());
    });
    registry_.register_gauge("routing.route_changes", [routing] {
      return static_cast<double>(routing->route_changes());
    });
    registry_.register_gauge("routing.dbf_messages", [routing] {
      return static_cast<double>(routing->total_stats().messages);
    });
  }

  if (auto* faults = scenario_.faults(); faults != nullptr) {
    registry_.register_gauge("faults.node_downs", [faults] {
      return static_cast<double>(faults->stats().node_downs);
    });
    registry_.register_gauge("faults.node_repairs", [faults] {
      return static_cast<double>(faults->stats().node_repairs);
    });
    registry_.register_gauge("faults.permanent_deaths", [faults] {
      return static_cast<double>(faults->stats().permanent_deaths);
    });
  }

  if (nw->battery_params().finite) {
    registry_.register_gauge("battery.depleted_nodes", [nw] {
      return static_cast<double>(nw->depleted_count());
    });
    registry_.register_gauge("battery.residual_mean_uj", [nw] {
      return nw->battery_summary().residual_mean_uj;
    });
  }

  auto& events = scenario_.simulation().events();
  registry_.register_gauge("trace.emitted", [&events] {
    return static_cast<double>(events.emitted());
  });
  registry_.register_gauge("trace.ring_dropped", [&events] {
    return static_cast<double>(events.dropped());
  });

  // OS-level process view (obs/process_stats.hpp); monotonic over the
  // process, so in a batch it reflects the fattest run so far, not this one.
  registry_.register_gauge("process.peak_rss_bytes", [] {
    return static_cast<double>(obs::peak_rss_bytes());
  });
}

void TelemetrySession::install_sink() {
  for (std::size_t k = 0; k < obs::kTraceKindCount; ++k) {
    std::string name = "trace.";
    name += obs::trace_kind_name(static_cast<obs::TraceKind>(k));
    kind_counters_[k] = registry_.counter(name);
  }
  delay_hist_ = registry_.histogram("delivery.delay_ms", delay_bounds());

  scenario_.simulation().events().set_sink([this](const obs::TraceRecord& r) {
    registry_.add(kind_counters_[static_cast<std::size_t>(r.kind)]);
    if (r.kind == obs::TraceKind::kDelivery && r.value >= 0.0) {
      registry_.observe(delay_hist_, r.value);
    }
    // Span assembly first, recorder second: a dump triggered by this record
    // must see the span set as of this instant (including this record).
    if (span_trace_) span_trace_->consume(r);
    if (flight_) flight_->observe(r);
    if (trace_file_.is_open()) {
      scratch_.clear();
      obs::append_record_json(r, scratch_);
      scratch_ += '\n';
      trace_file_.write(scratch_.data(), static_cast<std::streamsize>(scratch_.size()));
    }
  });
}

void TelemetrySession::finish(RunResult& result) {
  if (!active_ || finished_) return;
  finished_ = true;
  if (sampler_) result.series = sampler_->take_series();
  if (options_.metrics) result.metrics = registry_.snapshot();
  if (span_trace_) {
    if (!options_.spans_out.empty()) {
      std::ofstream out{options_.spans_out, std::ios::out | std::ios::trunc};
      if (!out) {
        throw std::runtime_error{"TelemetrySession: cannot open spans file " + options_.spans_out};
      }
      span_trace_->write_jsonl(out, scenario_.simulation().events().dropped());
    }
    if (!options_.perfetto_out.empty()) {
      std::ofstream out{options_.perfetto_out, std::ios::out | std::ios::trunc};
      if (!out) {
        throw std::runtime_error{"TelemetrySession: cannot open perfetto file " +
                                 options_.perfetto_out};
      }
      span_trace_->write_perfetto(out);
    }
    result.spans = span_trace_;
  }
  if (!options_.metrics_out.empty()) write_metrics_file(result);
  detach();
}

void TelemetrySession::detach() {
  if (!active_ || detached_) return;
  detached_ = true;
  scenario_.simulation().scheduler().set_dispatch_hook(nullptr);
  scenario_.simulation().events().set_sink(nullptr);
  // The ring (if any) stays attached so post-run code can still read
  // ring_snapshot() off the scenario.
  if (trace_file_.is_open()) trace_file_.close();
  if (flight_file_.is_open()) flight_file_.close();
}

void TelemetrySession::write_metrics_file(const RunResult& result) {
  std::ofstream out{options_.metrics_out, std::ios::out | std::ios::trunc};
  if (!out) {
    throw std::runtime_error{"TelemetrySession: cannot open metrics file " +
                             options_.metrics_out};
  }

  if (options_.metrics_format == TelemetryOptions::MetricsFormat::kProm) {
    // The exposition format has no series/sample concept; the final state
    // is what a scrape would see.
    registry_.write_prometheus(out);
    return;
  }

  std::string line;
  registry_.visit_counters([&](std::string_view name, std::uint64_t value) {
    line = R"({"type":"counter","name":)";
    append_name(name, line);
    line += R"(,"value":)";
    append_u64(value, line);
    line += "}\n";
    out << line;
  });
  registry_.visit_gauges([&](std::string_view name, double value) {
    line = R"({"type":"gauge","name":)";
    append_name(name, line);
    line += R"(,"value":)";
    append_double(value, line);
    line += "}\n";
    out << line;
  });
  for (const auto& h : registry_.histogram_snapshots()) {
    line = R"({"type":"histogram","name":)";
    append_name(h.name, line);
    line += R"(,"count":)";
    append_u64(h.count, line);
    line += R"(,"sum":)";
    append_double(h.sum, line);
    line += R"(,"min":)";
    append_double(h.min, line);
    line += R"(,"max":)";
    append_double(h.max, line);
    line += R"(,"bounds":[)";
    for (std::size_t i = 0; i < h.bounds.size(); ++i) {
      if (i > 0) line += ',';
      append_double(h.bounds[i], line);
    }
    line += R"(],"counts":[)";
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (i > 0) line += ',';
      append_u64(h.counts[i], line);
    }
    line += "]}\n";
    out << line;
  }

  const auto& series = result.series;
  for (std::size_t s = 0; s < series.samples(); ++s) {
    line = R"({"type":"sample","t_ms":)";
    append_double(series.t_ms[s], line);
    line += R"(,"values":{)";
    for (std::size_t c = 0; c < series.names.size(); ++c) {
      if (c > 0) line += ',';
      append_name(series.names[c], line);
      line += ':';
      append_double(series.rows[s][c], line);
    }
    line += "}}\n";
    out << line;
  }
}

}  // namespace spms::exp
