#include "exp/runner.hpp"

#include <algorithm>
#include <cstdlib>
#include <stdexcept>

#include "exp/batch.hpp"
#include "sim/scheduler.hpp"

namespace spms::exp {

namespace {
std::size_t g_sim_threads = 0;  ///< 0 = unset; see set_sim_threads
}  // namespace

void set_sim_threads(std::size_t threads) { g_sim_threads = threads; }

std::size_t effective_sim_threads() {
  std::size_t t = g_sim_threads;
  if (t == 0) t = parse_jobs_env(std::getenv("SPMS_SIM_THREADS"));
  if (t == 0) t = 1;
  return std::min(t, sim::Scheduler::kMaxWorkers);
}

RunResult run_experiment(const ExperimentConfig& config) {
  return run_experiment(config, TelemetryOptions{});
}

RunResult run_experiment(const ExperimentConfig& config, const TelemetryOptions& telemetry) {
  Scenario s{config};
  // Intra-run parallelism is an execution detail: byte-identical results at
  // any thread count, so it is set here — after construction, outside the
  // config and its store key.
  s.simulation().set_threads(effective_sim_threads());
  // Attached before start() so the very first event is observed; inert (and
  // cost-free on the hot path) when every option is off.
  TelemetrySession session{s, telemetry};
  s.start();
  const std::size_t events = s.run();

  RunResult r;
  r.protocol = std::string{s.protocol().name()};
  r.label = config.label;
  r.nodes = s.network().size();
  r.zone_radius_m = config.zone_radius_m;

  auto& col = s.collector();
  r.items_published = col.published();
  r.expected_deliveries = col.expected_deliveries();
  r.deliveries = col.deliveries();
  r.delivery_ratio = col.delivery_ratio();
  r.unknown_item_deliveries = col.unknown_item_deliveries();
  r.mean_delay_ms = col.delay_ms().mean();
  r.max_delay_ms = col.delay_ms().max();
  // Guarded: quantile() over an empty sample is NaN by contract, and a run
  // with zero deliveries (e.g. everything dead) must still serialize.
  r.p95_delay_ms = col.delay_percentiles().count() > 0 ? col.delay_percentiles().p95() : 0.0;

  r.energy = s.network().energy();
  r.battery = s.network().battery_summary();
  if (r.items_published > 0) {
    r.energy_per_item_uj = r.energy.total_uj() / static_cast<double>(r.items_published);
    r.protocol_energy_per_item_uj =
        r.energy.protocol_uj() / static_cast<double>(r.items_published);
  }

  r.net_counters = s.network().counters();
  if (s.routing() != nullptr) r.dbf_total = s.routing()->total_stats();
  if (s.faults() != nullptr) {
    s.faults()->finalize();  // close open downtime / outage intervals
    r.fault_stats = s.faults()->stats();
    r.failures_injected = r.fault_stats.node_downs;
  }
  if (s.mobility() != nullptr) r.mobility_epochs = s.mobility()->epochs();
  r.given_up = s.protocol().given_up();
  r.sim_time_ms = s.simulation().now().to_ms();
  r.events_executed = events;
  r.event_limit_hit = s.simulation().scheduler().event_limit_hit();
  if (session.spans() != nullptr) {
    // Captured while the Scenario is still alive; the span assembly's relay
    // attribution needs per-node spend after the network itself is gone.
    r.node_energy_uj.reserve(s.network().size());
    for (std::size_t i = 0; i < s.network().size(); ++i) {
      r.node_energy_uj.push_back(
          s.network().node_energy_uj(net::NodeId{static_cast<std::uint32_t>(i)}));
    }
  }
  session.finish(r);  // moves the sampled series in, writes output files
  return r;
}

std::vector<RunResult> run_seeds(ExperimentConfig config, const std::vector<std::uint64_t>& seeds) {
  std::vector<RunResult> out;
  out.reserve(seeds.size());
  for (const auto seed : seeds) {
    config.seed = seed;
    out.push_back(run_experiment(config));
  }
  return out;
}

RunResult average(const std::vector<RunResult>& runs) {
  if (runs.empty()) throw std::invalid_argument{"average: no runs"};
  RunResult avg = runs.front();
  const auto n = static_cast<double>(runs.size());
  double delivery = 0, mean_delay = 0, p95 = 0, max_delay = 0, e_item = 0, pe_item = 0;
  net::EnergyBreakdown energy;
  std::uint64_t given_up = 0, failures = 0, unknown = 0;
  for (const auto& r : runs) {
    delivery += r.delivery_ratio;
    mean_delay += r.mean_delay_ms;
    p95 += r.p95_delay_ms;
    max_delay += r.max_delay_ms;
    e_item += r.energy_per_item_uj;
    pe_item += r.protocol_energy_per_item_uj;
    energy.protocol_tx_uj += r.energy.protocol_tx_uj;
    energy.protocol_rx_uj += r.energy.protocol_rx_uj;
    energy.routing_tx_uj += r.energy.routing_tx_uj;
    energy.routing_rx_uj += r.energy.routing_rx_uj;
    given_up += r.given_up;
    failures += r.failures_injected;
    unknown += r.unknown_item_deliveries;
  }
  avg.delivery_ratio = delivery / n;
  avg.mean_delay_ms = mean_delay / n;
  avg.p95_delay_ms = p95 / n;
  avg.max_delay_ms = max_delay / n;
  avg.energy_per_item_uj = e_item / n;
  avg.protocol_energy_per_item_uj = pe_item / n;
  avg.energy.protocol_tx_uj = energy.protocol_tx_uj / n;
  avg.energy.protocol_rx_uj = energy.protocol_rx_uj / n;
  avg.energy.routing_tx_uj = energy.routing_tx_uj / n;
  avg.energy.routing_rx_uj = energy.routing_rx_uj / n;
  avg.given_up = given_up;
  avg.failures_injected = failures;
  avg.unknown_item_deliveries = unknown;
  return avg;
}

}  // namespace spms::exp
