#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"

/// \file batch.hpp
/// The parallel batch engine.  A BatchRunner expands a SweepSpec and
/// executes the jobs on a worker pool; each job builds and runs its own
/// private Simulation, so jobs share nothing and the per-seed RunResults are
/// bit-identical whatever the worker count.  Results come back both flat (in
/// expansion order) and grouped per grid point with cross-seed statistics.

namespace spms::exp {

namespace store {
class ResultStore;
}

/// Results of one grid point: the per-seed runs (in seed order) plus their
/// cross-seed dispersion statistics.
struct PointResult {
  ProtocolKind protocol = ProtocolKind::kSpms;
  std::size_t node_count = 0;
  double zone_radius_m = 0.0;
  std::string variant;
  std::vector<RunResult> runs;
  AggregateResult stats;
};

/// Everything a batch produced.
class BatchResult {
 public:
  BatchResult(std::vector<SweepJob> jobs, std::vector<RunResult> runs, std::size_t cached = 0);

  /// Per-job results, expansion order (parallel to `jobs()`).
  [[nodiscard]] const std::vector<RunResult>& runs() const { return runs_; }
  [[nodiscard]] const std::vector<SweepJob>& jobs() const { return jobs_; }

  /// Per-grid-point results, grid order.  A sharded batch carries only the
  /// points its job slice touched.
  [[nodiscard]] const std::vector<PointResult>& points() const { return points_; }

  /// How many of runs() were resolved from the result store without
  /// simulating, and how many were actually executed this invocation.
  [[nodiscard]] std::size_t cached() const { return cached_; }
  [[nodiscard]] std::size_t executed() const { return runs_.size() - cached_; }

  /// Looks up one grid point by its axis coordinates.  Throws
  /// std::out_of_range if the batch holds no such point.
  [[nodiscard]] const PointResult& point(ProtocolKind protocol, std::size_t node_count,
                                         double zone_radius_m,
                                         std::string_view variant = "") const;

 private:
  std::vector<SweepJob> jobs_;
  std::vector<RunResult> runs_;
  std::vector<PointResult> points_;
  std::size_t cached_ = 0;
};

/// Engine knobs.
struct BatchOptions {
  /// Worker threads; 0 means one per hardware thread.  1 runs inline.
  std::size_t jobs = 1;

  /// Persistent result store (not owned; must outlive the run).  Before
  /// executing anything, the runner resolves every job against the store by
  /// config key and simulates only the misses; every fresh result is written
  /// through.  Cache hits land in the same expansion-order slots a live run
  /// would fill, so warm output is byte-identical to cold at any `jobs`.
  store::ResultStore* store = nullptr;

  /// When false, store lookups are skipped (every job re-executes) but
  /// results are still written through — a forced refresh of the store.
  bool use_cache = true;

  /// Deterministic sweep sharding (see filter_shard): this invocation runs
  /// only the jobs with index % shard_count == shard_index.  Defaults to
  /// the whole sweep.
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;

  /// Invoked after each *executed* job completes (serialized; any thread's
  /// jobs).  `total` counts the executed jobs only — cache hits never pass
  /// through, so `done/total` is real progress, not replayed history.
  std::function<void(const SweepJob&, const RunResult&, std::size_t done, std::size_t total)>
      on_result;

  /// Telemetry attached to every *executed* job (cache hits carry none).
  /// Zero-perturbation by construction, so results — and therefore store
  /// contents and cache keys — are identical with or without it.  The
  /// single-file outputs (trace_out / metrics_out / spans_out / perfetto_out
  /// / flight_out) are ignored here: jobs run concurrently and would race on
  /// the paths; use the in-memory series / ring / spans, or run_experiment
  /// directly for file capture of a single run.
  TelemetryOptions telemetry;

  /// Non-empty: after the pool drains, write one {"type":"rollup"} JSONL
  /// line per grid point — counters summed and histograms merged across the
  /// point's *executed* seeds (cache hits carry no metrics; the line's
  /// seeds/executed fields account for the split).  Implies
  /// telemetry.metrics.  A sidecar next to the store, never part of it:
  /// store bytes stay byte-identical with rollups on or off, and the
  /// aggregation folds the expansion-order runs vector, so the sidecar is
  /// byte-identical at any `jobs`.
  std::string rollup_out;
};

/// Executes sweeps.  Stateless apart from its options; reusable.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {}) : options_(std::move(options)) {}

  /// Expands and runs the spec.  Exceptions thrown by a job are rethrown on
  /// the calling thread (the first one, after all workers drain).
  [[nodiscard]] BatchResult run(const SweepSpec& spec) const;

 private:
  BatchOptions options_;
};

/// Worker count used when the caller passes 0: SPMS_JOBS env var if it
/// parses to something sane, else std::thread::hardware_concurrency (min 1).
[[nodiscard]] std::size_t default_jobs();

/// Upper bound a worker-count override is clamped to; far above any machine
/// this runs on, low enough that a stray "999999999" cannot fork-bomb it.
inline constexpr std::size_t kMaxJobs = 1024;

/// Parses an SPMS_JOBS-style override.  Accepts plain decimal digits only;
/// anything else — null, empty, signs, spaces, hex, trailing junk — and the
/// value zero yield 0, meaning "no valid override, use the hardware
/// default".  Values above kMaxJobs clamp to kMaxJobs.
[[nodiscard]] std::size_t parse_jobs_env(const char* value);

}  // namespace spms::exp
