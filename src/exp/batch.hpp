#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"

/// \file batch.hpp
/// The parallel batch engine.  A BatchRunner expands a SweepSpec and
/// executes the jobs on a worker pool; each job builds and runs its own
/// private Simulation, so jobs share nothing and the per-seed RunResults are
/// bit-identical whatever the worker count.  Results come back both flat (in
/// expansion order) and grouped per grid point with cross-seed statistics.

namespace spms::exp {

/// Results of one grid point: the per-seed runs (in seed order) plus their
/// cross-seed dispersion statistics.
struct PointResult {
  ProtocolKind protocol = ProtocolKind::kSpms;
  std::size_t node_count = 0;
  double zone_radius_m = 0.0;
  std::string variant;
  std::vector<RunResult> runs;
  AggregateResult stats;
};

/// Everything a batch produced.
class BatchResult {
 public:
  BatchResult(std::vector<SweepJob> jobs, std::vector<RunResult> runs);

  /// Per-job results, expansion order (parallel to `jobs()`).
  [[nodiscard]] const std::vector<RunResult>& runs() const { return runs_; }
  [[nodiscard]] const std::vector<SweepJob>& jobs() const { return jobs_; }

  /// Per-grid-point results, grid order.
  [[nodiscard]] const std::vector<PointResult>& points() const { return points_; }

  /// Looks up one grid point by its axis coordinates.  Throws
  /// std::out_of_range if the batch holds no such point.
  [[nodiscard]] const PointResult& point(ProtocolKind protocol, std::size_t node_count,
                                         double zone_radius_m,
                                         std::string_view variant = "") const;

 private:
  std::vector<SweepJob> jobs_;
  std::vector<RunResult> runs_;
  std::vector<PointResult> points_;
};

/// Engine knobs.
struct BatchOptions {
  /// Worker threads; 0 means one per hardware thread.  1 runs inline.
  std::size_t jobs = 1;
  /// Invoked after each job completes (serialized; any thread's jobs).
  std::function<void(const SweepJob&, const RunResult&, std::size_t done, std::size_t total)>
      on_result;
};

/// Executes sweeps.  Stateless apart from its options; reusable.
class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {}) : options_(std::move(options)) {}

  /// Expands and runs the spec.  Exceptions thrown by a job are rethrown on
  /// the calling thread (the first one, after all workers drain).
  [[nodiscard]] BatchResult run(const SweepSpec& spec) const;

 private:
  BatchOptions options_;
};

/// Worker count used when the caller passes 0: SPMS_JOBS env var if set,
/// else std::thread::hardware_concurrency (min 1).
[[nodiscard]] std::size_t default_jobs();

}  // namespace spms::exp
