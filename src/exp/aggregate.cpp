#include "exp/aggregate.hpp"

#include <stdexcept>

#include "stats/summary.hpp"

namespace spms::exp {

namespace {

template <typename Get>
stats::Aggregate over(const std::vector<RunResult>& runs, Get get) {
  stats::Summary s;
  for (const auto& r : runs) s.add(static_cast<double>(get(r)));
  return stats::Aggregate::of(s);
}

}  // namespace

AggregateResult aggregate(const std::vector<RunResult>& runs) {
  if (runs.empty()) throw std::invalid_argument{"aggregate: no runs"};
  AggregateResult a;
  a.protocol = runs.front().protocol;
  a.label = runs.front().label;
  a.nodes = runs.front().nodes;
  a.zone_radius_m = runs.front().zone_radius_m;
  a.runs = runs.size();

  a.delivery_ratio = over(runs, [](const RunResult& r) { return r.delivery_ratio; });
  a.mean_delay_ms = over(runs, [](const RunResult& r) { return r.mean_delay_ms; });
  a.p95_delay_ms = over(runs, [](const RunResult& r) { return r.p95_delay_ms; });
  a.max_delay_ms = over(runs, [](const RunResult& r) { return r.max_delay_ms; });
  a.energy_per_item_uj = over(runs, [](const RunResult& r) { return r.energy_per_item_uj; });
  a.protocol_energy_per_item_uj =
      over(runs, [](const RunResult& r) { return r.protocol_energy_per_item_uj; });
  a.routing_energy_uj = over(runs, [](const RunResult& r) { return r.energy.routing_uj(); });
  a.total_energy_uj = over(runs, [](const RunResult& r) { return r.energy.total_uj(); });
  a.failures_injected = over(runs, [](const RunResult& r) { return r.failures_injected; });
  a.mobility_epochs = over(runs, [](const RunResult& r) { return r.mobility_epochs; });
  a.given_up = over(runs, [](const RunResult& r) { return r.given_up; });
  a.unknown_item_deliveries =
      over(runs, [](const RunResult& r) { return r.unknown_item_deliveries; });
  a.sim_time_ms = over(runs, [](const RunResult& r) { return r.sim_time_ms; });
  a.events_executed = over(runs, [](const RunResult& r) { return r.events_executed; });
  a.fault_events = over(runs, [](const RunResult& r) { return r.fault_stats.fault_events; });
  a.fault_downtime_ms =
      over(runs, [](const RunResult& r) { return r.fault_stats.total_downtime_ms; });
  a.fault_outage_time_ms =
      over(runs, [](const RunResult& r) { return r.fault_stats.outage_time_ms; });
  a.fault_recovery_latency_ms =
      over(runs, [](const RunResult& r) { return r.fault_stats.mean_recovery_latency_ms; });
  a.fault_permanent_deaths =
      over(runs, [](const RunResult& r) { return r.fault_stats.permanent_deaths; });
  a.fault_outage_deliveries =
      over(runs, [](const RunResult& r) { return r.fault_stats.deliveries_during_outage; });
  a.time_to_first_death_ms =
      over(runs, [](const RunResult& r) { return r.fault_stats.time_to_first_death_ms; });
  a.time_to_10pct_dead_ms =
      over(runs, [](const RunResult& r) { return r.fault_stats.time_to_10pct_dead_ms; });
  a.half_life_ms = over(runs, [](const RunResult& r) { return r.fault_stats.half_life_ms; });
  a.depleted_nodes = over(runs, [](const RunResult& r) { return r.battery.depleted_nodes; });
  a.residual_mean_uj =
      over(runs, [](const RunResult& r) { return r.battery.residual_mean_uj; });
  a.residual_stddev_uj =
      over(runs, [](const RunResult& r) { return r.battery.residual_stddev_uj; });
  a.residual_gini = over(runs, [](const RunResult& r) { return r.battery.residual_gini; });
  return a;
}

}  // namespace spms::exp
