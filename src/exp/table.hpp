#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file table.hpp
/// Minimal aligned-table / CSV emitters for the bench binaries, which print
/// the rows the paper's figures plot.

namespace spms::exp {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Appends a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Prints with padded columns, a header underline, and a trailing newline.
  void print(std::ostream& os) const;

  /// Prints as comma-separated values (quotes are the caller's problem —
  /// cells here are numbers and plain words).
  void print_csv(std::ostream& os) const;

  /// Prints as a JSON array of objects keyed by the headers.  Cells that
  /// parse fully as numbers are emitted bare; everything else is a string.
  void print_json(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helper ("12.345").
[[nodiscard]] std::string fmt(double v, int precision = 3);

/// Percentage formatting helper ("12.3%").
[[nodiscard]] std::string fmt_pct(double ratio, int precision = 1);

}  // namespace spms::exp
