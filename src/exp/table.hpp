#pragma once

#include <ostream>
#include <string>
#include <vector>

/// \file table.hpp
/// Minimal aligned-table / CSV emitters for the bench binaries, which print
/// the rows the paper's figures plot.

namespace spms::exp {

/// Column-aligned text table.
class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  /// Appends a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Prints with padded columns, a header underline, and a trailing newline.
  void print(std::ostream& os) const;

  /// Prints as comma-separated values (quotes are the caller's problem —
  /// cells here are numbers and plain words).
  void print_csv(std::ostream& os) const;

  /// Prints as a JSON array of objects keyed by the headers.  Cells that
  /// parse fully as numbers are emitted bare; everything else is a string.
  void print_json(std::ostream& os) const;

  /// Emits a self-contained gnuplot script: one inline datablock per series
  /// plus a `plot` command of `y_col` against `x_col` — figure sweeps render
  /// with `run_experiment_cli --format gnuplot ... | gnuplot` and no
  /// hand-written scripts.  A series is one distinct combination of the
  /// non-numeric columns (protocol, variant, …); a non-numeric `x_col`
  /// (e.g. "variant" for a budget sweep) plots as a category axis via
  /// xtic labels; every column rides along in the datablocks with a
  /// commented header, so editing the script to plot a different metric is
  /// a one-line change.  A rowless table emits a valid no-op script.
  /// \throws std::invalid_argument when x_col/y_col is not a header.
  void print_gnuplot(std::ostream& os, const std::string& title, const std::string& x_col,
                     const std::string& y_col) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const { return headers_; }

  /// True when every row's cell in `column` parses as a bare JSON number —
  /// the same test the JSON emitter applies (used to pick plottable axes).
  [[nodiscard]] bool column_is_numeric(const std::string& column) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Fixed-precision formatting helper ("12.345").
[[nodiscard]] std::string fmt(double v, int precision = 3);

/// Percentage formatting helper ("12.3%").
[[nodiscard]] std::string fmt_pct(double ratio, int precision = 1);

}  // namespace spms::exp
