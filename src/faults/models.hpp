#pragma once

#include <cstdint>
#include <vector>

#include "faults/fault_model.hpp"
#include "faults/plan.hpp"
#include "net/ids.hpp"
#include "sim/random.hpp"
#include "sim/time.hpp"

/// \file models.hpp
/// The five built-in fault models.  Each is constructed with its plan
/// params and a private RNG (forked by the FaultController with the model's
/// stream id) and drives node state exclusively through the controller.

namespace spms::faults {

class FaultController;

/// (a) Per-node transient crash/repair renewal — the paper's Section 5.1.2
/// process (net::FailureInjector) refactored behind the FaultModel
/// interface.  Same stream, same draw order: a crash-only plan reproduces
/// the legacy injector's timeline exactly.
class CrashRepairModel final : public FaultModel {
 public:
  CrashRepairModel(FaultController& ctrl, CrashRepairParams params, sim::Rng rng);

  [[nodiscard]] std::string_view name() const override { return "crash"; }
  void start(sim::TimePoint horizon) override;
  [[nodiscard]] std::uint64_t events_injected() const override { return events_; }

 private:
  void schedule_failure(net::NodeId id);
  void crash(net::NodeId id);

  FaultController& ctrl_;
  CrashRepairParams params_;
  sim::Rng rng_;
  sim::TimePoint horizon_;
  std::uint64_t events_ = 0;
};

/// (b) Spatially correlated region blackouts: every node inside a disk
/// around a uniformly drawn epicentre fails together and is restored
/// together.
class RegionOutageModel final : public FaultModel {
 public:
  RegionOutageModel(FaultController& ctrl, RegionOutageParams params, sim::Rng rng);

  [[nodiscard]] std::string_view name() const override { return "region"; }
  void start(sim::TimePoint horizon) override;
  [[nodiscard]] std::uint64_t events_injected() const override { return events_; }

 private:
  void schedule_outage();
  void blackout();

  FaultController& ctrl_;
  RegionOutageParams params_;
  sim::Rng rng_;
  sim::TimePoint horizon_;
  std::uint64_t events_ = 0;
};

/// (c) Permanent battery-depletion deaths, energy-driven: the model
/// subscribes to the network's depletion notification and converts every
/// drained battery into a permanent death through the controller — the
/// energy layer pushes deaths *up* into the fault layer, instead of the
/// fault layer sampling victims.  Deaths therefore track actual consumption
/// (airtime + idle drain vs the configured capacity) and the model draws
/// nothing from its sub-stream: toggling it can never perturb another
/// model's timeline, and no other stream can perturb the death order beyond
/// what it does to consumption itself.  The horizon does not apply —
/// batteries that dry out while the run drains still die (physics does not
/// honor the activity horizon); only event *initiating* processes stop.
class BatteryDepletionModel final : public FaultModel {
 public:
  BatteryDepletionModel(FaultController& ctrl, BatteryDepletionParams params, sim::Rng rng);

  [[nodiscard]] std::string_view name() const override { return "battery"; }
  void start(sim::TimePoint horizon) override;
  [[nodiscard]] std::uint64_t events_injected() const override { return events_; }

  /// Nodes that have died of depletion so far, in death order.
  [[nodiscard]] const std::vector<net::NodeId>& deaths() const { return deaths_; }

 private:
  void on_depleted(net::NodeId id);

  FaultController& ctrl_;
  BatteryDepletionParams params_;
  sim::Rng rng_;  ///< reserved sub-stream (kBatteryStream); currently drawless
  std::vector<net::NodeId> deaths_;
  std::uint64_t events_ = 0;
};

/// (d) Link-level degradation: installs a per-reception drop draw on the
/// network whose probability ramps linearly from drop_start (at start) to
/// drop_end (at the horizon), then heals to zero.  events_injected() counts
/// dropped receptions.
class LinkDegradationModel final : public FaultModel {
 public:
  LinkDegradationModel(FaultController& ctrl, LinkDegradationParams params, sim::Rng rng);

  [[nodiscard]] std::string_view name() const override { return "link"; }
  void start(sim::TimePoint horizon) override;
  [[nodiscard]] std::uint64_t events_injected() const override { return drops_; }

  /// The instantaneous drop probability at `at` (zero outside the ramp).
  [[nodiscard]] double drop_probability(sim::TimePoint at) const;

 private:
  FaultController& ctrl_;
  LinkDegradationParams params_;
  sim::Rng rng_;
  sim::TimePoint start_;
  sim::TimePoint horizon_;
  bool started_ = false;
  std::uint64_t drops_ = 0;
};

/// (e) Sink-neighborhood churn: the crash/repair renewal restricted to the
/// nodes within `hops` zone-radius hops of the sink (sink excluded),
/// computed by BFS on the deployment at start().
class SinkChurnModel final : public FaultModel {
 public:
  SinkChurnModel(FaultController& ctrl, SinkChurnParams params, net::NodeId sink, sim::Rng rng);

  [[nodiscard]] std::string_view name() const override { return "sink-churn"; }
  void start(sim::TimePoint horizon) override;
  [[nodiscard]] std::uint64_t events_injected() const override { return events_; }

  /// The churned node set, ascending id (known after start()).
  [[nodiscard]] const std::vector<net::NodeId>& targets() const { return targets_; }

 private:
  void schedule_failure(net::NodeId id);
  void crash(net::NodeId id);

  FaultController& ctrl_;
  SinkChurnParams params_;
  net::NodeId sink_;
  sim::Rng rng_;
  sim::TimePoint horizon_;
  std::vector<net::NodeId> targets_;
  std::uint64_t events_ = 0;
};

}  // namespace spms::faults
