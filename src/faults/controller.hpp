#pragma once

#include <memory>
#include <string_view>
#include <vector>

#include "faults/fault_model.hpp"
#include "faults/observer.hpp"
#include "faults/plan.hpp"
#include "net/network.hpp"
#include "sim/simulation.hpp"

/// \file controller.hpp
/// The FaultPlan runtime: builds one FaultModel per enabled plan entry,
/// composes their node transitions, and feeds the FaultObserver.
///
/// Composition semantics: each node carries a down ref-count.  A model's
/// fail() increments it, its paired repair() decrements it; the node is up
/// iff the count is zero and it has not died permanently.  Two overlapping
/// outages therefore keep the node down until the *last* one repairs, and a
/// battery death wins over any pending repair — models stay oblivious to
/// one another.

namespace spms::faults {

class FaultController {
 public:
  /// \param focus  the sink / field-centre node the sink-churn model
  ///        anchors its k-hop neighborhood on.
  FaultController(sim::Simulation& sim, net::Network& net, const FaultPlan& plan,
                  net::NodeId focus);
  ~FaultController();

  FaultController(const FaultController&) = delete;
  FaultController& operator=(const FaultController&) = delete;

  /// Starts every enabled model (plan order: crash, region, battery, link,
  /// sink-churn).  No model initiates a fault at or after `horizon`.
  void start(sim::TimePoint horizon);

  /// Closes the observer's open intervals at the current simulation time.
  /// Call once after the run drains, before reading stats().
  void finalize();

  /// Forward protocol-level deliveries here (recovery-latency sampling).
  void record_delivery(net::NodeId node, sim::TimePoint at);

  [[nodiscard]] FaultObserver& observer() { return observer_; }
  [[nodiscard]] const FaultObserver& observer() const { return observer_; }
  [[nodiscard]] const FaultStats& stats() const { return observer_.stats(); }

  /// Node-level crash transitions — the legacy "failures injected" metric.
  [[nodiscard]] std::uint64_t failures_injected() const { return observer_.stats().node_downs; }

  [[nodiscard]] const std::vector<std::unique_ptr<FaultModel>>& models() const {
    return models_;
  }
  /// The model with the given name(), or nullptr when not enabled.
  [[nodiscard]] FaultModel* model(std::string_view name) const;

  // --- model-facing API -------------------------------------------------------
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }
  [[nodiscard]] net::Network& network() { return net_; }

  /// One model observed this node fault.  First active fault takes the node
  /// down.  Must be paired with exactly one repair().
  void fail(net::NodeId id);
  /// The matching repair: the node comes back up only when every model's
  /// fault window has closed and it is not permanently dead.
  void repair(net::NodeId id);
  /// Permanent death: the node goes (or stays) down and no repair — from
  /// any model — ever brings it back.
  void kill(net::NodeId id);
  [[nodiscard]] bool permanently_dead(net::NodeId id) const { return permanent_[id.v] != 0; }

 private:
  sim::Simulation& sim_;
  net::Network& net_;
  FaultObserver observer_;
  std::vector<std::unique_ptr<FaultModel>> models_;
  // Dense per-node fault state (index == NodeId.v); permanent_ is bytes, not
  // vector<bool>, so the hot liveness checks stay branch-light loads.
  std::vector<std::uint32_t> down_count_;
  std::vector<std::uint8_t> permanent_;
};

}  // namespace spms::faults
