#pragma once

#include <cstdint>

#include "sim/time.hpp"

/// \file plan.hpp
/// Declarative fault configuration: one data-only struct per fault model
/// plus the FaultPlan that stacks them.  A plan is part of ExperimentConfig,
/// so it serializes into the canonical config (exp::store::canonical) and
/// every parameter feeds the store's config key — fault campaigns are
/// cacheable and shardable like any other sweep.
///
/// The runtime counterparts (faults::FaultModel implementations, built by
/// faults::FaultController) live in models.hpp; this header stays light so
/// the experiment layer can describe faults without pulling in the network.

namespace spms::faults {

/// Per-node transient crash/repair renewal (paper Section 5.1.2): failures
/// with exponential inter-arrival, repair ~ U(repair_min, repair_max),
/// recovery always succeeds.  Defaults are the paper's Table 1 values.
struct CrashRepairParams {
  bool enabled = false;
  sim::Duration mean_time_between_failures = sim::Duration::ms(50.0);
  sim::Duration repair_min = sim::Duration::ms(5.0);
  sim::Duration repair_max = sim::Duration::ms(15.0);
};

/// Spatially correlated blackouts (environmental damage): outage events
/// arrive with exponential inter-arrival; each picks a uniformly random
/// epicentre node and takes down every node within `radius_m` together.
/// The whole region is restored together after ~U(repair_min, repair_max).
struct RegionOutageParams {
  bool enabled = false;
  sim::Duration mean_time_between_outages = sim::Duration::ms(200.0);
  double radius_m = 10.0;
  sim::Duration repair_min = sim::Duration::ms(10.0);
  sim::Duration repair_max = sim::Duration::ms(30.0);
};

/// Permanent battery-depletion deaths, driven by the energy layer: when a
/// node's finite `net::Battery` (ExperimentConfig::battery) runs dry, the
/// model turns the network's depletion notification into a permanent death
/// through the controller.  Which nodes die, and when, is decided by actual
/// consumption — radio airtime plus idle drain against the configured
/// capacity — not by a configured fraction.  With an infinite battery the
/// model is armed but can never fire.
struct BatteryDepletionParams {
  bool enabled = false;
};

/// Link-level degradation: every frame reception independently fails with a
/// probability that ramps linearly from `drop_start` at process start to
/// `drop_end` at the activity horizon, after which the channel heals (drop
/// probability returns to zero) so the run drains to quiescence.  A dropped
/// reception charges no receive energy and reaches no agent — the frame
/// faded below the decode threshold for that receiver.
struct LinkDegradationParams {
  bool enabled = false;
  double drop_start = 0.0;
  double drop_end = 0.2;
};

/// Sink-neighborhood churn: the crash/repair renewal process restricted to
/// the nodes within `hops` zone-radius hops of the sink (the sink itself is
/// excluded) — the paper's worst placement for transient failures, since
/// every route funnels through that neighborhood.
struct SinkChurnParams {
  bool enabled = false;
  std::uint32_t hops = 2;
  sim::Duration mean_time_between_failures = sim::Duration::ms(50.0);
  sim::Duration repair_min = sim::Duration::ms(5.0);
  sim::Duration repair_max = sim::Duration::ms(15.0);
};

/// A stack of fault processes for one run.  Every enabled model runs
/// concurrently on its own RNG sub-stream, so toggling one model never
/// perturbs another's event timeline (tests/faults pin this).
struct FaultPlan {
  CrashRepairParams crash;
  RegionOutageParams region;
  BatteryDepletionParams battery;
  LinkDegradationParams link;
  SinkChurnParams sink_churn;

  [[nodiscard]] bool any() const {
    return crash.enabled || region.enabled || battery.enabled || link.enabled ||
           sink_churn.enabled;
  }
};

}  // namespace spms::faults
