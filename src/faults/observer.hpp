#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "net/ids.hpp"
#include "sim/time.hpp"

/// \file observer.hpp
/// Recovery-metric bookkeeping for fault campaigns.
///
/// The observer watches node up/down transitions (via the network's
/// state-change hook), model-level fault events, and protocol deliveries,
/// and condenses them into the FaultStats block that RunResult carries:
/// downtime, outage-window delivery counts, and post-repair recovery
/// latency (time from a node's repair to its next successful delivery).

namespace spms::faults {

/// Aggregate fault/recovery metrics of one run.  Serialized into the
/// canonical result JSON, so fault campaigns resume from the store like any
/// other sweep.
struct FaultStats {
  /// Model-level fault events initiated (one region blackout = one event).
  /// Link-fade drops are not events — they are per-reception and counted in
  /// NetCounters::dropped_link_fault / LinkDegradationModel::events_injected.
  std::uint64_t fault_events = 0;
  /// Node-level up->down transitions (a blackout over k nodes counts k).
  std::uint64_t node_downs = 0;
  /// Node-level down->up transitions.
  std::uint64_t node_repairs = 0;
  /// Nodes that died permanently (battery depletion).
  std::uint64_t permanent_deaths = 0;
  /// Peak number of simultaneously-down nodes.
  std::uint64_t max_concurrent_down = 0;
  /// Sum over nodes of time spent down (node-milliseconds).
  double total_downtime_ms = 0.0;
  /// Wall-clock time with at least one node down (union of outage windows).
  double outage_time_ms = 0.0;
  /// Protocol deliveries that completed while at least one node was down.
  std::uint64_t deliveries_during_outage = 0;
  /// Repairs whose node received at least one delivery afterwards.
  std::uint64_t recoveries_sampled = 0;
  /// Mean time from a repair to that node's next delivery (over sampled
  /// recoveries; zero when none were sampled).
  double mean_recovery_latency_ms = 0.0;
  /// Repairs still waiting for a first delivery when the run ended.
  std::uint64_t repairs_unrecovered = 0;

  // --- network-lifetime metrics (energy-driven deaths) -----------------------
  // -1 means "never happened during the run"; comparable across protocols
  // only when every compared run shares the battery configuration.
  /// Instant of the first permanent death (the classical time-to-first-death
  /// lifetime definition).
  double time_to_first_death_ms = -1.0;
  /// Instant at which >= 10% of the deployment was permanently dead.
  double time_to_10pct_dead_ms = -1.0;
  /// Instant at which >= 50% of the deployment was permanently dead (the
  /// network half-life).
  double half_life_ms = -1.0;
};

/// One model-level fault event, kept in memory for tests and diagnostics
/// (not serialized — per-event logs are unbounded; FaultStats is the
/// persistent summary).
struct FaultEvent {
  std::string model;
  sim::TimePoint at;
  std::size_t nodes_affected = 0;
};

/// Accumulates FaultStats over one run.  finalize() closes open downtime /
/// outage intervals at the end instant and freezes the stats.
class FaultObserver {
 public:
  explicit FaultObserver(std::size_t node_count) : nodes_(node_count) {}

  /// A fault model initiated one event touching `nodes_affected` nodes.
  void record_event(std::string_view model, sim::TimePoint at, std::size_t nodes_affected);

  /// A node actually transitioned (wired to net::Network's state hook).
  void on_state_change(net::NodeId id, bool up, sim::TimePoint at);

  /// A node will never come back (battery depletion).  Death instants feed
  /// the lifetime metrics (time-to-first-death / 10%-dead / half-life).
  void on_permanent_death(net::NodeId id, sim::TimePoint at);

  /// A protocol-level delivery completed at `node`.
  void on_delivery(net::NodeId node, sim::TimePoint at);

  /// Closes open intervals at `end` and computes the derived means.
  /// Idempotent; stats() is meaningful only afterwards for interval metrics.
  void finalize(sim::TimePoint end);

  [[nodiscard]] const FaultStats& stats() const { return stats_; }
  [[nodiscard]] const std::vector<FaultEvent>& events() const { return events_; }

 private:
  struct NodeState {
    bool down = false;
    sim::TimePoint down_since;
    bool awaiting_recovery = false;
    sim::TimePoint repaired_at;
  };

  FaultStats stats_;
  std::vector<FaultEvent> events_;
  std::vector<NodeState> nodes_;
  std::vector<sim::TimePoint> death_times_;  ///< permanent deaths, death order
  std::size_t down_now_ = 0;
  sim::TimePoint outage_since_;
  double recovery_latency_sum_ms_ = 0.0;
  bool finalized_ = false;
};

}  // namespace spms::faults
