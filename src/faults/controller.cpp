#include "faults/controller.hpp"

#include "faults/models.hpp"
#include "obs/event_trace.hpp"

namespace spms::faults {

FaultController::FaultController(sim::Simulation& sim, net::Network& net,
                                 const FaultPlan& plan, net::NodeId focus)
    : sim_(sim),
      net_(net),
      observer_(net.size()),
      down_count_(net.size(), 0),
      permanent_(net.size(), 0) {
  net_.set_on_state_change([this](net::NodeId id, bool up) {
    observer_.on_state_change(id, up, sim_.now());
    if (sim_.events().enabled()) {
      sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kFaultTransition,
                          .cause = static_cast<std::uint8_t>(up ? obs::FaultPhase::kRepair
                                                                : obs::FaultPhase::kDown),
                          .node = id});
    }
  });

  // Fixed construction order = fixed start order; each model forks its own
  // sub-stream (fork() is const, so construction consumes no parent draws).
  const auto& root = sim_.rng();
  if (plan.crash.enabled) {
    models_.push_back(
        std::make_unique<CrashRepairModel>(*this, plan.crash, root.fork(kCrashStream)));
  }
  if (plan.region.enabled) {
    models_.push_back(
        std::make_unique<RegionOutageModel>(*this, plan.region, root.fork(kRegionStream)));
  }
  if (plan.battery.enabled) {
    models_.push_back(std::make_unique<BatteryDepletionModel>(*this, plan.battery,
                                                              root.fork(kBatteryStream)));
  }
  if (plan.link.enabled) {
    models_.push_back(
        std::make_unique<LinkDegradationModel>(*this, plan.link, root.fork(kLinkStream)));
  }
  if (plan.sink_churn.enabled) {
    models_.push_back(std::make_unique<SinkChurnModel>(*this, plan.sink_churn, focus,
                                                       root.fork(kSinkChurnStream)));
  }
}

FaultController::~FaultController() {
  // Detach the hooks: the network outlives this controller in Scenario's
  // member order, and the closures capture `this` / the models.
  net_.set_on_state_change(nullptr);
  net_.set_link_fault(nullptr);
  net_.set_on_depleted(nullptr);
}

void FaultController::start(sim::TimePoint horizon) {
  for (auto& model : models_) model->start(horizon);
}

void FaultController::finalize() { observer_.finalize(sim_.now()); }

void FaultController::record_delivery(net::NodeId node, sim::TimePoint at) {
  observer_.on_delivery(node, at);
}

FaultModel* FaultController::model(std::string_view name) const {
  for (const auto& m : models_) {
    if (m->name() == name) return m.get();
  }
  return nullptr;
}

void FaultController::fail(net::NodeId id) {
  if (down_count_[id.v]++ == 0) net_.set_up(id, false);
}

void FaultController::repair(net::NodeId id) {
  if (down_count_[id.v] == 0) return;  // unpaired repair: defensive no-op
  if (--down_count_[id.v] == 0 && permanent_[id.v] == 0) net_.set_up(id, true);
}

void FaultController::kill(net::NodeId id) {
  if (permanent_[id.v] != 0) return;
  permanent_[id.v] = 1;
  observer_.on_permanent_death(id, sim_.now());
  if (sim_.events().enabled()) {
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kFaultTransition,
                        .cause = static_cast<std::uint8_t>(obs::FaultPhase::kPermanentDeath),
                        .node = id});
  }
  net_.set_up(id, false);
}

}  // namespace spms::faults
