#include "faults/models.hpp"

#include <algorithm>
#include <cmath>

#include "faults/controller.hpp"

namespace spms::faults {

// --- CrashRepairModel --------------------------------------------------------

CrashRepairModel::CrashRepairModel(FaultController& ctrl, CrashRepairParams params,
                                   sim::Rng rng)
    : ctrl_(ctrl), params_(params), rng_(rng) {}

void CrashRepairModel::start(sim::TimePoint horizon) {
  horizon_ = horizon;
  auto& net = ctrl_.network();
  for (std::size_t i = 0; i < net.size(); ++i) {
    schedule_failure(net::NodeId{static_cast<std::uint32_t>(i)});
  }
}

void CrashRepairModel::schedule_failure(net::NodeId id) {
  auto& sim = ctrl_.simulation();
  const auto wait = rng_.exponential(params_.mean_time_between_failures);
  const auto when = sim.now() + wait;
  if (when >= horizon_) return;  // never initiate at or past the horizon
  sim.at(when, [this, id] { crash(id); });
}

void CrashRepairModel::crash(net::NodeId id) {
  auto& sim = ctrl_.simulation();
  ++events_;
  ctrl_.observer().record_event(name(), sim.now(), 1);
  ctrl_.fail(id);
  const auto repair = rng_.uniform(params_.repair_min, params_.repair_max);
  sim.after(repair, [this, id] {
    ctrl_.repair(id);
    schedule_failure(id);
  });
}

// --- RegionOutageModel -------------------------------------------------------

RegionOutageModel::RegionOutageModel(FaultController& ctrl, RegionOutageParams params,
                                     sim::Rng rng)
    : ctrl_(ctrl), params_(params), rng_(rng) {}

void RegionOutageModel::start(sim::TimePoint horizon) {
  horizon_ = horizon;
  schedule_outage();
}

void RegionOutageModel::schedule_outage() {
  auto& sim = ctrl_.simulation();
  const auto wait = rng_.exponential(params_.mean_time_between_outages);
  const auto when = sim.now() + wait;
  if (when >= horizon_) return;
  sim.at(when, [this] { blackout(); });
}

void RegionOutageModel::blackout() {
  auto& sim = ctrl_.simulation();
  auto& net = ctrl_.network();
  // Epicentre and repair are drawn unconditionally, so the outage timeline
  // is a pure function of this model's stream; only the disk membership
  // depends on (deterministic) world state such as mobility.
  const auto centre = net::NodeId{static_cast<std::uint32_t>(
      rng_.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1))};
  const auto repair = rng_.uniform(params_.repair_min, params_.repair_max);
  auto affected = net.neighbors_within(centre, params_.radius_m, /*include_down=*/true);
  affected.push_back(centre);
  ++events_;
  ctrl_.observer().record_event(name(), sim.now(), affected.size());
  for (const auto id : affected) ctrl_.fail(id);
  sim.after(repair, [this, affected = std::move(affected)] {
    for (const auto id : affected) ctrl_.repair(id);
  });
  schedule_outage();
}

// --- BatteryDepletionModel ---------------------------------------------------

BatteryDepletionModel::BatteryDepletionModel(FaultController& ctrl,
                                             BatteryDepletionParams params, sim::Rng rng)
    : ctrl_(ctrl), params_(params), rng_(rng) {}

void BatteryDepletionModel::start(sim::TimePoint horizon) {
  static_cast<void>(horizon);  // depletion is physics, not an arrival process
  static_cast<void>(params_);
  ctrl_.network().set_on_depleted([this](net::NodeId id) { on_depleted(id); });
}

void BatteryDepletionModel::on_depleted(net::NodeId id) {
  if (ctrl_.permanently_dead(id)) return;  // defensive: one death per node
  ++events_;
  deaths_.push_back(id);
  ctrl_.observer().record_event(name(), ctrl_.simulation().now(), 1);
  ctrl_.kill(id);
}

// --- LinkDegradationModel ----------------------------------------------------

LinkDegradationModel::LinkDegradationModel(FaultController& ctrl,
                                           LinkDegradationParams params, sim::Rng rng)
    : ctrl_(ctrl), params_(params), rng_(rng) {}

void LinkDegradationModel::start(sim::TimePoint horizon) {
  start_ = ctrl_.simulation().now();
  horizon_ = horizon;
  started_ = true;
  ctrl_.network().set_link_fault([this](net::NodeId /*from*/, net::NodeId /*to*/) {
    const double p = drop_probability(ctrl_.simulation().now());
    if (p <= 0.0) return false;
    const bool drop = rng_.bernoulli(p);
    if (drop) ++drops_;
    return drop;
  });
}

double LinkDegradationModel::drop_probability(sim::TimePoint at) const {
  if (!started_ || at >= horizon_ || horizon_ <= start_) return 0.0;
  const double f = (at - start_) / (horizon_ - start_);
  return params_.drop_start + (params_.drop_end - params_.drop_start) * f;
}

// --- SinkChurnModel ----------------------------------------------------------

SinkChurnModel::SinkChurnModel(FaultController& ctrl, SinkChurnParams params,
                               net::NodeId sink, sim::Rng rng)
    : ctrl_(ctrl), params_(params), sink_(sink), rng_(rng) {}

void SinkChurnModel::start(sim::TimePoint horizon) {
  horizon_ = horizon;
  auto& net = ctrl_.network();
  // BFS over the zone-radius connectivity graph, depth params_.hops, on the
  // deployment as it stands at start time.
  std::vector<bool> seen(net.size(), false);
  seen[sink_.v] = true;
  std::vector<net::NodeId> frontier{sink_};
  std::vector<net::NodeId> zone;  // scratch reused across the whole BFS
  for (std::uint32_t depth = 0; depth < params_.hops && !frontier.empty(); ++depth) {
    std::vector<net::NodeId> next;
    for (const auto id : frontier) {
      net.neighbors_within(id, net.zone_radius(), /*include_down=*/true, zone);
      for (const auto nb : zone) {
        if (seen[nb.v]) continue;
        seen[nb.v] = true;
        next.push_back(nb);
        targets_.push_back(nb);
      }
    }
    frontier = std::move(next);
  }
  std::sort(targets_.begin(), targets_.end(),
            [](net::NodeId a, net::NodeId b) { return a.v < b.v; });
  for (const auto id : targets_) schedule_failure(id);
}

void SinkChurnModel::schedule_failure(net::NodeId id) {
  auto& sim = ctrl_.simulation();
  const auto wait = rng_.exponential(params_.mean_time_between_failures);
  const auto when = sim.now() + wait;
  if (when >= horizon_) return;
  sim.at(when, [this, id] { crash(id); });
}

void SinkChurnModel::crash(net::NodeId id) {
  auto& sim = ctrl_.simulation();
  ++events_;
  ctrl_.observer().record_event(name(), sim.now(), 1);
  ctrl_.fail(id);
  const auto repair = rng_.uniform(params_.repair_min, params_.repair_max);
  sim.after(repair, [this, id] {
    ctrl_.repair(id);
    schedule_failure(id);
  });
}

}  // namespace spms::faults
