#pragma once

#include <cstdint>
#include <string_view>

#include "sim/time.hpp"

/// \file fault_model.hpp
/// The pluggable fault-process interface.
///
/// A FaultModel is one deterministic, seedable stressor (crash/repair
/// renewal, region blackouts, battery deaths, link fades, sink churn…).
/// Models never touch node state directly: they route every transition
/// through the FaultController, whose ref-counted down-state composes
/// overlapping faults from different models correctly.
///
/// Determinism contract: each model owns a private RNG sub-stream forked
/// from the run's root seed with a model-specific stream id, and draws from
/// it unconditionally on its own schedule.  A model's fault-initiation
/// timeline is therefore a pure function of its own stream — enabling or
/// disabling any other model never perturbs it (tests/faults pins this).

namespace spms::faults {

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  /// Stable model id; also the tag on observer events.
  [[nodiscard]] virtual std::string_view name() const = 0;

  /// Starts the process.  No fault is initiated at or after `horizon`
  /// (repairs in flight still complete, so transient models leave the
  /// network fully up at the end of the run).
  virtual void start(sim::TimePoint horizon) = 0;

  /// Fault events initiated by this model so far.
  [[nodiscard]] virtual std::uint64_t events_injected() const = 0;
};

/// RNG sub-stream ids, one per model.  kCrashStream deliberately matches
/// net::FailureInjector's historical stream so a crash-only FaultPlan
/// reproduces the legacy injector's timeline exactly.
inline constexpr std::uint64_t kCrashStream = 0xFA11;
inline constexpr std::uint64_t kRegionStream = 0xFA12;
inline constexpr std::uint64_t kBatteryStream = 0xFA13;
inline constexpr std::uint64_t kLinkStream = 0xFA14;
inline constexpr std::uint64_t kSinkChurnStream = 0xFA15;

}  // namespace spms::faults
