#include "faults/observer.hpp"

#include <algorithm>

namespace spms::faults {

void FaultObserver::record_event(std::string_view model, sim::TimePoint at,
                                 std::size_t nodes_affected) {
  ++stats_.fault_events;
  events_.push_back({std::string{model}, at, nodes_affected});
}

void FaultObserver::on_state_change(net::NodeId id, bool up, sim::TimePoint at) {
  NodeState& n = nodes_.at(id.v);
  if (up == !n.down) return;  // no transition (defensive; the network filters)
  if (!up) {
    n.down = true;
    n.down_since = at;
    if (down_now_++ == 0) outage_since_ = at;
    stats_.max_concurrent_down = std::max<std::uint64_t>(stats_.max_concurrent_down, down_now_);
    ++stats_.node_downs;
  } else {
    n.down = false;
    stats_.total_downtime_ms += (at - n.down_since).to_ms();
    if (--down_now_ == 0) stats_.outage_time_ms += (at - outage_since_).to_ms();
    ++stats_.node_repairs;
    n.awaiting_recovery = true;
    n.repaired_at = at;
  }
}

void FaultObserver::on_permanent_death(net::NodeId id, sim::TimePoint at) {
  static_cast<void>(id);
  ++stats_.permanent_deaths;
  death_times_.push_back(at);
  // Death order is chronological (the controller reports at kill time), so
  // the k%-dead thresholds are crossed by the k%-th recorded death.
  const auto dead = death_times_.size();
  const auto total = nodes_.size();
  if (dead == 1) stats_.time_to_first_death_ms = at.to_ms();
  if (stats_.time_to_10pct_dead_ms < 0.0 && dead * 10 >= total) {
    stats_.time_to_10pct_dead_ms = at.to_ms();
  }
  if (stats_.half_life_ms < 0.0 && dead * 2 >= total) {
    stats_.half_life_ms = at.to_ms();
  }
}

void FaultObserver::on_delivery(net::NodeId node, sim::TimePoint at) {
  if (down_now_ > 0) ++stats_.deliveries_during_outage;
  NodeState& n = nodes_.at(node.v);
  if (n.awaiting_recovery) {
    n.awaiting_recovery = false;
    recovery_latency_sum_ms_ += (at - n.repaired_at).to_ms();
    ++stats_.recoveries_sampled;
  }
}

void FaultObserver::finalize(sim::TimePoint end) {
  if (finalized_) return;
  finalized_ = true;
  for (NodeState& n : nodes_) {
    if (n.down) stats_.total_downtime_ms += (end - n.down_since).to_ms();
    if (n.awaiting_recovery) ++stats_.repairs_unrecovered;
  }
  if (down_now_ > 0) stats_.outage_time_ms += (end - outage_since_).to_ms();
  if (stats_.recoveries_sampled > 0) {
    stats_.mean_recovery_latency_ms =
        recovery_latency_sum_ms_ / static_cast<double>(stats_.recoveries_sampled);
  }
}

}  // namespace spms::faults
