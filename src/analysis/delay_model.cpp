#include "analysis/delay_model.hpp"

#include <cmath>

namespace spms::analysis {

double csma_delay(const DelayParams& p, double n) { return p.g * n * n; }

double spin_pair_delay(const DelayParams& p, double n1) {
  // Three channel accesses (ADV, REQ, DATA), all at the maximum power level;
  // processing at the destination (ADV) and the source (REQ).
  return 3.0 * csma_delay(p, n1) + (p.adv + p.req + p.data) * p.ttx + 2.0 * p.tproc;
}

double spms_pair_delay(const DelayParams& p, double n1, double n2) {
  // ADV still goes at maximum power; REQ and DATA contend only with the n2
  // stations of the lower level.
  return csma_delay(p, n1) + 2.0 * csma_delay(p, n2) + (p.adv + p.req + p.data) * p.ttx +
         2.0 * p.tproc;
}

double spms_round_time(const DelayParams& p, double n1, double ns) {
  return spms_pair_delay(p, n1, ns);
}

double spms_two_hop_delay(const DelayParams& p, double n1, double ns) {
  // "The entire A-B sequence is repeated twice for the two hops."
  return 2.0 * spms_round_time(p, n1, ns);
}

double spms_relay_no_request_delay(const DelayParams& p, double n1, double ns) {
  // ADV at max power, TOutADV at the destination, then REQ and DATA each
  // cross two low-power hops (4 channel accesses, 2R and 2D of airtime,
  // processing at both relaying ends).
  return csma_delay(p, n1) + 4.0 * csma_delay(p, ns) +
         (p.adv + 2.0 * p.req + 2.0 * p.data) * p.ttx + 4.0 * p.tproc + p.tout_adv;
}

double spms_k_relay_worst_delay(const DelayParams& p, std::size_t k, double n1, double ns) {
  // "For the first (k-1) nodes the data ripples through for a time of
  // (k-1) T_round and then it is the same case … when B doesn't request."
  if (k == 0) return spms_pair_delay(p, n1, ns);
  return static_cast<double>(k - 1) * spms_round_time(p, n1, ns) +
         spms_relay_no_request_delay(p, n1, ns);
}

double spms_failure_before_adv_delay(const DelayParams& p, double n1, double n2, double ns) {
  return csma_delay(p, n1) + csma_delay(p, ns) + 2.0 * csma_delay(p, n2) +
         (p.adv + p.req + p.data) * p.ttx + p.tout_adv + p.tout_dat + 2.0 * p.tproc;
}

double spms_failure_after_adv_delay(const DelayParams& p, double n1, double n2, double ns) {
  // One full round gets the data to the relay; its re-ADV arrives; the REQ
  // to the (now dead) relay burns TOutDAT; then a direct pull from the
  // SCONE at the n2 level.
  return spms_round_time(p, n1, ns) + csma_delay(p, ns) + (p.adv + p.req) * p.ttx +
         p.tout_dat + csma_delay(p, n2) + (p.adv + p.data) * p.ttx + 2.0 * p.tproc;
}

double spms_failure_jth_from_last_delay(const DelayParams& p, std::size_t k, std::size_t j,
                                        double n1, double ns, double nj) {
  return static_cast<double>(k - j) * spms_round_time(p, n1, ns) + p.tout_adv +
         csma_delay(p, ns) + p.tout_dat + 2.0 * csma_delay(p, nj) + (p.req + p.data) * p.ttx +
         2.0 * p.tproc;
}

double spin_to_spms_delay_ratio(const DelayParams& p, double n1, double ns) {
  return spin_pair_delay(p, n1) / spms_pair_delay(p, n1, ns);
}

std::size_t grid_disc_count(double r_m, double pitch_m) {
  // Count lattice points (i*pitch, j*pitch) with 0 < sqrt(i^2+j^2)*pitch <= r.
  const auto reach = static_cast<long>(std::floor(r_m / pitch_m));
  std::size_t count = 0;
  const double r2 = r_m * r_m;
  for (long i = -reach; i <= reach; ++i) {
    for (long j = -reach; j <= reach; ++j) {
      if (i == 0 && j == 0) continue;
      const double d2 = (static_cast<double>(i) * pitch_m) * (static_cast<double>(i) * pitch_m) +
                        (static_cast<double>(j) * pitch_m) * (static_cast<double>(j) * pitch_m);
      if (d2 <= r2) ++count;
    }
  }
  return count;
}

}  // namespace spms::analysis
