#pragma once

/// \file energy_model.hpp
/// Closed-form energy model of the paper's Section 4.2 and the mobility
/// break-even of Section 5.1.3.
///
/// Setting: source and destination with (k-1) equally spaced relays in
/// between, per-bit transmit energies E1 > E2 > ... > Em for the power
/// levels, receive energy Er (the paper takes Er = Em, citing [16]), and
/// the propagation-law assumption E(d) ∝ d^alpha with alpha = 3.5 (the
/// 2-ray ground model beyond ~7 m).

namespace spms::analysis {

/// Parameters of the Section 4.2 ratio.
struct EnergyRatioParams {
  double alpha = 3.5;        ///< path-loss exponent
  double f = 1.0 / 34.0;     ///< A/(A+D+R); the motes give D ≈ 32A, R = A
};

/// Per-item energy of SPIN for the chain scenario, in units of per-bit
/// energy: E_SPIN = (A+D+R) (E1 + Er).  Relay count is irrelevant — SPIN
/// always transmits at maximum power.
[[nodiscard]] double spin_chain_energy(double adv, double data, double req, double e1, double er);

/// Per-item energy of SPMS over k low-power hops:
/// E_SPMS = k A E1 + k (D+R) Em + k (A+D+R) Er
/// (each hop's holder re-advertises at maximum power; REQ/DATA go at the
/// lowest level; every hop pays reception).
[[nodiscard]] double spms_chain_energy(double k, double adv, double data, double req, double e1,
                                       double em, double er);

/// The paper's closed-form ratio with E1 = k^alpha Em and Er = Em:
/// E_SPIN : E_SPMS = (k^alpha + 1) / (k (f k^alpha + 2 - f)).
/// Fig. 5 plots this against k (grid granularity 1 => k = radius).
[[nodiscard]] double spin_to_spms_energy_ratio(double k, const EnergyRatioParams& p = {});

/// Radius (k) at which the Fig. 5 ratio peaks, found numerically on a unit
/// grid; used by the ablation bench to discuss the curve's shape.
[[nodiscard]] double energy_ratio_peak_k(const EnergyRatioParams& p = {}, double k_max = 64.0);

/// Section 5.1.3 break-even: the minimum number of successfully transmitted
/// packets between two mobility events for SPMS to still save energy,
/// breakeven = E_DBF / (E_SPIN_per_packet - E_SPMS_per_packet).
/// Returns +inf when SPMS does not save per-packet energy.  The paper's
/// calibration arrives at 239.18 packets.
[[nodiscard]] double mobility_breakeven_packets(double dbf_energy_uj, double spin_per_packet_uj,
                                                double spms_per_packet_uj);

}  // namespace spms::analysis
