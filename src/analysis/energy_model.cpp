#include "analysis/energy_model.hpp"

#include <cmath>
#include <limits>

namespace spms::analysis {

double spin_chain_energy(double adv, double data, double req, double e1, double er) {
  return (adv + data + req) * (e1 + er);
}

double spms_chain_energy(double k, double adv, double data, double req, double e1, double em,
                         double er) {
  return k * adv * e1 + k * (data + req) * em + k * (adv + data + req) * er;
}

double spin_to_spms_energy_ratio(double k, const EnergyRatioParams& p) {
  const double ka = std::pow(k, p.alpha);
  return (ka + 1.0) / (k * (p.f * ka + 2.0 - p.f));
}

double energy_ratio_peak_k(const EnergyRatioParams& p, double k_max) {
  // The curve is unimodal in k; a fine scan is plenty for a diagnostic.
  double best_k = 1.0;
  double best = -std::numeric_limits<double>::infinity();
  for (double k = 1.0; k <= k_max; k += 0.01) {
    const double r = spin_to_spms_energy_ratio(k, p);
    if (r > best) {
      best = r;
      best_k = k;
    }
  }
  return best_k;
}

double mobility_breakeven_packets(double dbf_energy_uj, double spin_per_packet_uj,
                                  double spms_per_packet_uj) {
  const double gain = spin_per_packet_uj - spms_per_packet_uj;
  if (gain <= 0.0) return std::numeric_limits<double>::infinity();
  return dbf_energy_uj / gain;
}

}  // namespace spms::analysis
