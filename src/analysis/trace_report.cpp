#include "analysis/trace_report.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace spms::analysis {

TraceReport build_trace_report(const obs::SpanTrace& spans,
                               const std::vector<double>& node_energy_uj) {
  TraceReport report;
  report.journeys = spans.journey_stats();

  // Per-depth accumulation.  The hop latency is child t_data minus parent
  // t_data — the wait for THIS hop, independent of how long the upstream
  // chain took; the total is measured against the chain's root.
  struct Acc {
    std::size_t count = 0;
    double hop_sum = 0.0;
    double hop_max = 0.0;
    double total_sum = 0.0;
  };
  std::map<int, Acc> per_depth;
  std::unordered_map<net::NodeId, std::uint64_t> served;

  for (const auto& s : spans.spans()) {
    if (s.parent.valid()) ++served[s.parent];
    if (!s.delivered) continue;
    const int depth = spans.depth_of(s);
    if (depth <= 0) continue;  // roots have no hop; broken chains have no depth
    const obs::Span* parent = spans.find(s.item, s.parent);
    if (parent == nullptr || parent->t_data_ms < 0.0 || s.t_data_ms < 0.0) continue;
    const obs::Span* root = spans.find(s.item, s.item.origin);
    const double hop_ms = s.t_data_ms - parent->t_data_ms;
    const double total_ms =
        (root != nullptr && root->t_data_ms >= 0.0) ? s.t_data_ms - root->t_data_ms : hop_ms;
    Acc& a = per_depth[depth];
    ++a.count;
    a.hop_sum += hop_ms;
    a.hop_max = std::max(a.hop_max, hop_ms);
    a.total_sum += total_ms;
  }

  report.per_depth.reserve(per_depth.size());
  for (const auto& [depth, a] : per_depth) {
    HopLatencyStat stat;
    stat.depth = depth;
    stat.count = a.count;
    stat.mean_hop_ms = a.hop_sum / static_cast<double>(a.count);
    stat.max_hop_ms = a.hop_max;
    stat.mean_total_ms = a.total_sum / static_cast<double>(a.count);
    report.per_depth.push_back(stat);
  }

  // Relay table: union of nodes with relay frames and nodes that served.
  std::unordered_map<net::NodeId, RelayEnergyRow> rows;
  for (const auto& [node, load] : spans.relay_loads()) {
    auto& row = rows[node];
    row.node = node;
    row.relayed_req = load.req_frames;
    row.relayed_data = load.data_frames;
  }
  for (const auto& [node, count] : served) {
    auto& row = rows[node];
    row.node = node;
    row.served = count;
  }
  report.relays.reserve(rows.size());
  for (auto& [node, row] : rows) {
    if (node.v < node_energy_uj.size()) row.energy_uj = node_energy_uj[node.v];
    report.relays.push_back(row);
  }
  std::sort(report.relays.begin(), report.relays.end(), [](const auto& a, const auto& b) {
    const auto la = a.relayed_req + a.relayed_data;
    const auto lb = b.relayed_req + b.relayed_data;
    if (la != lb) return la > lb;
    if (a.served != b.served) return a.served > b.served;
    return a.node.v < b.node.v;
  });
  return report;
}

}  // namespace spms::analysis
