#pragma once

#include <cstddef>

/// \file delay_model.hpp
/// Closed-form delay model of the paper's Section 4.1.
///
/// Conventions (all times in ms, packet lengths in abstract units):
///  * Ttx — transmission time per unit of data;
///  * Tproc — per-packet processing delay at a receiver;
///  * Tcsma = G * n^2 — channel-access delay with n stations in the
///    transmission radius (paper's MAC model, refs [8][9]);
///  * A, R, D — lengths of ADV, REQ and DATA packets (paper: A:D = 1:30);
///  * n1 — stations inside the *maximum*-power radius; ns — stations inside
///    the *lowest*-power radius; n2 — an intermediate level where needed.
///
/// Every function mirrors one printed equation or case of Section 4.1 and
/// is cross-checked against the paper's spot value
/// Delay_SPIN : Delay_SPMS = 2.7865 at n1=45, ns=5.

namespace spms::analysis {

/// Model constants (defaults are the paper's: Ttx=0.05, Tproc=0.02, G=0.01,
/// A:R:D = 1:1:30, TOutADV=1.0, TOutDAT=2.5).
struct DelayParams {
  double ttx = 0.05;       ///< ms per data unit
  double tproc = 0.02;     ///< ms per packet
  double g = 0.01;         ///< Tcsma proportionality constant
  double adv = 1.0;        ///< A
  double req = 1.0;        ///< R
  double data = 30.0;      ///< D
  double tout_adv = 1.0;   ///< TOutADV, ms
  double tout_dat = 2.5;   ///< TOutDAT, ms
};

/// Channel-access delay Tcsma = G * n^2.
[[nodiscard]] double csma_delay(const DelayParams& p, double n);

/// Eq. (1): SPIN failure-free delay for one source-destination pair,
/// Tb = 3 G n1^2 + (A+R+D) Ttx + 2 Tproc.
[[nodiscard]] double spin_pair_delay(const DelayParams& p, double n1);

/// Eq. (2): SPMS failure-free delay when the destination is one (low-power)
/// hop away, Tb = G n1^2 + 2 G n2^2 + (A+R+D) Ttx + 2 Tproc.
[[nodiscard]] double spms_pair_delay(const DelayParams& p, double n1, double n2);

/// T_round = G n1^2 + 2 G ns^2 + (A+R+D) Ttx + 2 Tproc — one full
/// ADV/REQ/DATA exchange with low-power REQ/DATA.
[[nodiscard]] double spms_round_time(const DelayParams& p, double n1, double ns);

/// Case a.a: two hops, the relay requests the data too: Tc = 2 T_round.
[[nodiscard]] double spms_two_hop_delay(const DelayParams& p, double n1, double ns);

/// Case a.b: the relay does not request; the destination times out and
/// pulls through it: Tc = G n1^2 + 4 G ns^2 + (A+2R+2D) Ttx + 4 Tproc +
/// TOutADV.
[[nodiscard]] double spms_relay_no_request_delay(const DelayParams& p, double n1, double ns);

/// Eq. (3): worst case with k relay nodes (the last relay does not
/// request): Tc <= (k-1) T_round + TOutADV + [case a.b tail].
[[nodiscard]] double spms_k_relay_worst_delay(const DelayParams& p, std::size_t k, double n1,
                                              double ns);

/// Failure case b.a: the relay fails *before* re-advertising.  The
/// destination burns TOutADV, requests through the dead relay, burns
/// TOutDAT, then pulls directly from the PRONE:
/// Tc = G n1^2 + G ns^2 + 2 G n2^2 + (A+R+D) Ttx + TOutADV + TOutDAT + 2 Tproc.
[[nodiscard]] double spms_failure_before_adv_delay(const DelayParams& p, double n1, double n2,
                                                   double ns);

/// Failure case b.b: the relay fails *after* re-advertising; the
/// destination's REQ goes unanswered, then it pulls from the SCONE:
/// Tc = T_round + 2 G ns^2 + (A+R) Ttx + TOutDAT + G n2^2 + (A+D) Ttx + 2 Tproc.
[[nodiscard]] double spms_failure_after_adv_delay(const DelayParams& p, double n1, double n2,
                                                  double ns);

/// General failure position (Fig. 4): in a chain of k relays the (j-th from
/// last) relay fails:
/// Delay = (k-j) T_round + TOutADV + G ns^2 + TOutDAT + 2 G nj^2 +
///         (R+D) Ttx + 2 Tproc.
[[nodiscard]] double spms_failure_jth_from_last_delay(const DelayParams& p, std::size_t k,
                                                      std::size_t j, double n1, double ns,
                                                      double nj);

/// The paper's headline comparison: SPIN/SPMS failure-free delay ratio for
/// one pair with the destination in the lowest-power radius (n2 = ns).
/// At the paper's sample values (n1=45, ns=5) this returns 2.7865.
[[nodiscard]] double spin_to_spms_delay_ratio(const DelayParams& p, double n1, double ns);

/// Number of grid points (pitch `pitch_m`) strictly within distance `r_m`
/// of a grid point, excluding the point itself — the paper's "uniform
/// density of nodes on the grid" station count n(r) for Fig. 3.
[[nodiscard]] std::size_t grid_disc_count(double r_m, double pitch_m);

}  // namespace spms::analysis
