#pragma once

#include <cstdint>
#include <vector>

#include "net/ids.hpp"
#include "obs/span_trace.hpp"

/// \file trace_report.hpp
/// Post-run analysis over a causal span assembly: per-hop latency breakdown
/// and per-relay energy attribution.
///
/// The SpanTrace holds the raw parent-linked journeys; this module condenses
/// them into the two tables a dissemination study actually reads — how long
/// each hop ring away from the origin waited for its copy, and which nodes
/// carried the relay load (and how much energy that cost them).

namespace spms::analysis {

/// Latency of delivered spans at one causal depth (hops from the origin).
struct HopLatencyStat {
  int depth = 0;
  std::size_t count = 0;       ///< delivered spans at this depth
  double mean_hop_ms = 0.0;    ///< mean of (t_data - parent's t_data)
  double max_hop_ms = 0.0;
  double mean_total_ms = 0.0;  ///< mean of (t_data - root's t_data)
};

/// One node's relay work and what it cost.
struct RelayEnergyRow {
  net::NodeId node;
  std::uint64_t relayed_req = 0;   ///< REQ frames forwarded (SPMS relays)
  std::uint64_t relayed_data = 0;  ///< DATA frames carried back
  std::uint64_t served = 0;        ///< spans naming this node as causal parent
  double energy_uj = 0.0;          ///< the node's total energy spend
};

struct TraceReport {
  obs::JourneyStats journeys;
  std::vector<HopLatencyStat> per_depth;  ///< ascending depth, depth >= 1
  /// Nodes that relayed or served at least once, descending combined relay
  /// frames (the busiest carriers first).
  std::vector<RelayEnergyRow> relays;
};

/// Builds the report.  `node_energy_uj` is indexed by node id (e.g.
/// RunResult::node_energy_uj); pass an empty vector when energy attribution
/// is not wanted — the rows then carry 0.
[[nodiscard]] TraceReport build_trace_report(const obs::SpanTrace& spans,
                                             const std::vector<double>& node_energy_uj);

}  // namespace spms::analysis
