#include "net/spatial_grid.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace spms::net {

void SpatialGrid::reset(double cell_size_m, std::size_t expected_nodes) {
  if (cell_size_m <= 0.0) throw std::invalid_argument{"SpatialGrid: cell size must be positive"};
  cell_ = cell_size_m;
  inv_cell_ = 1.0 / cell_size_m;
  queries_ = 0;
  cells_.clear();
  // A zone-radius cell holds O(zone population) nodes; sizing the map for
  // one node per bucket is a safe overestimate that avoids rehash churn.
  cells_.reserve(expected_nodes);
}

void SpatialGrid::insert(std::uint32_t id, Point p) {
  cells_[key_of(p)].push_back(id);
}

void SpatialGrid::move(std::uint32_t id, Point from, Point to) {
  const std::uint64_t k_from = key_of(from);
  const std::uint64_t k_to = key_of(to);
  if (k_from == k_to) return;
  auto it = cells_.find(k_from);
  assert(it != cells_.end());
  auto& bucket = it->second;
  const auto pos = std::find(bucket.begin(), bucket.end(), id);
  assert(pos != bucket.end());
  // Swap-erase: within-cell order is unspecified by contract, and callers
  // sort, so the O(1) removal never shows through.
  *pos = bucket.back();
  bucket.pop_back();
  // The emptied vector stays in the map keeping its capacity: a node moving
  // back pays no allocation.
  cells_[k_to].push_back(id);
}

}  // namespace spms::net
