#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

#include "net/energy.hpp"
#include "net/packet.hpp"

/// \file frame_queue.hpp
/// The per-node MAC transmit queue: a grow-only ring buffer of frames.
///
/// The seed used std::deque, which allocates a block the moment a queue goes
/// non-empty and frees it when it drains — and a lightly loaded MAC queue
/// oscillates around empty once per transmission, so the deque churned an
/// allocation per frame.  The ring grows by doubling to the deployment's
/// high-water mark and never shrinks; frame slots are reused in place, so
/// steady-state queueing performs no allocation.

namespace spms::net {

/// One frame queued at a node's MAC, with its engineered coverage disc.
struct OutgoingFrame {
  Packet packet;
  std::size_t level = 0;    ///< radio table index used (for TX power)
  double coverage_m = 0.0;  ///< disc radius the transmission must cover
  EnergyUse use = EnergyUse::kProtocol;
};

/// FIFO ring buffer of OutgoingFrames (power-of-two capacity, index mask).
class FrameQueue {
 public:
  [[nodiscard]] bool empty() const { return count_ == 0; }
  [[nodiscard]] std::size_t size() const { return count_; }

  [[nodiscard]] OutgoingFrame& front() {
    assert(count_ > 0);
    return buf_[head_];
  }
  [[nodiscard]] const OutgoingFrame& front() const {
    assert(count_ > 0);
    return buf_[head_];
  }

  void push_back(OutgoingFrame&& f) {
    if (count_ == buf_.size()) grow();
    buf_[(head_ + count_) & (buf_.size() - 1)] = std::move(f);
    ++count_;
  }

  OutgoingFrame pop_front() {
    assert(count_ > 0);
    OutgoingFrame f = std::move(buf_[head_]);
    head_ = (head_ + 1) & (buf_.size() - 1);
    --count_;
    return f;
  }

  /// Drops all queued frames (node crash / battery death), releasing their
  /// packet payloads but keeping the ring's capacity.
  void clear() {
    for (std::size_t i = 0; i < count_; ++i) {
      buf_[(head_ + i) & (buf_.size() - 1)] = OutgoingFrame{};
    }
    head_ = 0;
    count_ = 0;
  }

 private:
  void grow() {
    const std::size_t cap = buf_.empty() ? 4 : buf_.size() * 2;
    std::vector<OutgoingFrame> next(cap);
    for (std::size_t i = 0; i < count_; ++i) {
      next[i] = std::move(buf_[(head_ + i) & (buf_.size() - 1)]);
    }
    buf_ = std::move(next);
    head_ = 0;
  }

  std::vector<OutgoingFrame> buf_;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
};

}  // namespace spms::net
