#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>

/// \file ids.hpp
/// Strong identifier types shared across the network and protocol layers.

namespace spms::net {

/// Identifies a node; also its index into the Network's node vector.
struct NodeId {
  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  std::uint32_t v = kInvalid;

  constexpr NodeId() = default;
  constexpr explicit NodeId(std::uint32_t value) : v(value) {}

  [[nodiscard]] constexpr bool valid() const { return v != kInvalid; }
  auto operator<=>(const NodeId&) const = default;
};

/// Sentinel meaning "no node" / "broadcast destination".
inline constexpr NodeId kNoNode{};

/// Names one data item network-wide: the node that sensed it plus a per-node
/// sequence number.  This doubles as the item's metadata descriptor — in the
/// paper metadata "names the data"; equality of descriptors is all SPIN/SPMS
/// need from the negotiation.
struct DataId {
  NodeId origin;
  std::uint32_t seq = 0;

  auto operator<=>(const DataId&) const = default;
};

inline std::ostream& operator<<(std::ostream& os, NodeId id) {
  if (!id.valid()) return os << "n?";
  return os << "n" << id.v;
}

inline std::ostream& operator<<(std::ostream& os, DataId d) {
  return os << d.origin << "#" << d.seq;
}

}  // namespace spms::net

template <>
struct std::hash<spms::net::NodeId> {
  std::size_t operator()(spms::net::NodeId id) const noexcept {
    return std::hash<std::uint32_t>{}(id.v);
  }
};

template <>
struct std::hash<spms::net::DataId> {
  std::size_t operator()(spms::net::DataId d) const noexcept {
    const std::uint64_t key = (static_cast<std::uint64_t>(d.origin.v) << 32) | d.seq;
    return std::hash<std::uint64_t>{}(key);
  }
};
