#include "net/failure.hpp"

#include "obs/event_trace.hpp"

namespace spms::net {

FailureInjector::FailureInjector(sim::Simulation& sim, Network& net, FailureParams params,
                                 std::uint64_t stream)
    : sim_(sim), net_(net), params_(params), rng_(sim.rng().fork(stream)) {}

void FailureInjector::start(sim::TimePoint horizon) {
  horizon_ = horizon;
  for (std::size_t i = 0; i < net_.size(); ++i) {
    schedule_failure(NodeId{static_cast<std::uint32_t>(i)});
  }
}

void FailureInjector::schedule_failure(NodeId id) {
  const auto wait = rng_.exponential(params_.mean_time_between_failures);
  const auto when = sim_.now() + wait;
  // The renewal process ends at the horizon: a failure landing *exactly* on
  // it is not initiated either ("no failure is initiated after `horizon`"
  // treats the horizon itself as past; regression-pinned in
  // tests/net/failure_mobility_test.cpp).
  if (when >= horizon_) return;
  sim_.at(when, [this, id] { crash(id); });
}

void FailureInjector::crash(NodeId id) {
  if (!net_.is_up(id)) return;  // already down (shouldn't happen, but harmless)
  ++failures_;
  net_.set_up(id, false);
  if (net_.simulation().events().enabled()) {
    net_.simulation().events().emit(
        {.at = sim_.now(), .kind = obs::TraceKind::kNodeDown, .node = id});
  }
  const auto repair = rng_.uniform(params_.repair_min, params_.repair_max);
  sim_.after(repair, [this, id] {
    net_.set_up(id, true);
    schedule_failure(id);
  });
}

}  // namespace spms::net
