#pragma once

#include <cstddef>
#include <vector>

#include "net/geometry.hpp"
#include "sim/random.hpp"

/// \file topology.hpp
/// Node deployment generators.
///
/// The paper uses "a sensor field with uniform density of nodes … as the
/// number of nodes increases, the sensor field area increases".  A uniform
/// grid gives exactly that and makes zone sizes predictable (the paper's
/// n1=45 corresponds to a 5 m pitch at the 22.86 m radius); a uniform random
/// deployment is provided for robustness experiments.

namespace spms::net {

/// Positions for a side x side grid with the given pitch (metres), lower
/// left corner at the origin.
[[nodiscard]] std::vector<Point> grid_deployment(std::size_t side, double pitch_m);

/// `count` positions uniformly random in a square field of the given side
/// length.
[[nodiscard]] std::vector<Point> random_deployment(std::size_t count, double field_side_m,
                                                   sim::Rng& rng);

/// Smallest side s with s*s >= count (grid sizing helper).
[[nodiscard]] std::size_t grid_side_for(std::size_t count);

}  // namespace spms::net
