#pragma once

#include <cstddef>

/// \file energy.hpp
/// Per-node energy accounting.
///
/// Energy is tracked in microjoules (mW x ms).  Transmit energy is the
/// level's RF output power times the airtime; receive energy uses a fixed
/// receive power (the paper adopts Er = Em, the weakest level's power,
/// citing [16]; it is configurable here).  Routing-protocol energy (the
/// distributed Bellman-Ford traffic) is attributed separately so the
/// mobility experiment (Fig. 12) can charge and report it.

namespace spms::net {

/// What a joule was spent on; used to split dissemination vs routing cost.
enum class EnergyUse {
  kProtocol,  ///< ADV/REQ/DATA traffic
  kRouting,   ///< distance-vector (DBF) table building
};

/// Accumulates one node's energy expenditure in microjoules.
class EnergyMeter {
 public:
  void add_tx(double uj, EnergyUse use) {
    (use == EnergyUse::kProtocol ? protocol_tx_uj_ : routing_tx_uj_) += uj;
  }
  void add_rx(double uj, EnergyUse use) {
    (use == EnergyUse::kProtocol ? protocol_rx_uj_ : routing_rx_uj_) += uj;
  }

  [[nodiscard]] double protocol_tx_uj() const { return protocol_tx_uj_; }
  [[nodiscard]] double protocol_rx_uj() const { return protocol_rx_uj_; }
  [[nodiscard]] double routing_tx_uj() const { return routing_tx_uj_; }
  [[nodiscard]] double routing_rx_uj() const { return routing_rx_uj_; }

  [[nodiscard]] double protocol_uj() const { return protocol_tx_uj_ + protocol_rx_uj_; }
  [[nodiscard]] double routing_uj() const { return routing_tx_uj_ + routing_rx_uj_; }
  [[nodiscard]] double total_uj() const { return protocol_uj() + routing_uj(); }

  void reset() { *this = EnergyMeter{}; }

 private:
  double protocol_tx_uj_ = 0.0;
  double protocol_rx_uj_ = 0.0;
  double routing_tx_uj_ = 0.0;
  double routing_rx_uj_ = 0.0;
};

/// Network-wide totals (sum of the per-node meters), produced by Network.
struct EnergyBreakdown {
  double protocol_tx_uj = 0.0;
  double protocol_rx_uj = 0.0;
  double routing_tx_uj = 0.0;
  double routing_rx_uj = 0.0;

  [[nodiscard]] double protocol_uj() const { return protocol_tx_uj + protocol_rx_uj; }
  [[nodiscard]] double routing_uj() const { return routing_tx_uj + routing_rx_uj; }
  [[nodiscard]] double total_uj() const { return protocol_uj() + routing_uj(); }
};

}  // namespace spms::net
