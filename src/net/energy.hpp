#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>

#include "sim/time.hpp"

/// \file energy.hpp
/// Per-node energy accounting and the finite-battery model.
///
/// Energy is tracked in microjoules (mW x ms).  Transmit energy is the
/// level's RF output power times the airtime; receive energy uses a fixed
/// receive power (the paper adopts Er = Em, the weakest level's power,
/// citing [16]; it is configurable here).  Routing-protocol energy (the
/// distributed Bellman-Ford traffic) is attributed separately so the
/// mobility experiment (Fig. 12) can charge and report it.
///
/// A Battery extends the passive meter with a finite charge budget: every
/// spend is clamped against the remaining charge (so spend + residual equals
/// the initial charge, to floating-point rounding), and the first spend that
/// drains the charge
/// marks the battery depleted.  The Network consults that flag — a depleted
/// node can neither transmit nor receive — and pushes a depletion
/// notification up into the fault layer, which turns it into a permanent
/// death (see faults/models.hpp).  Infinite batteries (the default) behave
/// exactly like the historical write-only meter.

namespace spms::net {

/// What a joule was spent on; used to split dissemination vs routing cost.
enum class EnergyUse {
  kProtocol,  ///< ADV/REQ/DATA traffic
  kRouting,   ///< distance-vector (DBF) table building
};

/// Accumulates one node's energy expenditure in microjoules.
class EnergyMeter {
 public:
  void add_tx(double uj, EnergyUse use) {
    (use == EnergyUse::kProtocol ? protocol_tx_uj_ : routing_tx_uj_) += uj;
  }
  void add_rx(double uj, EnergyUse use) {
    (use == EnergyUse::kProtocol ? protocol_rx_uj_ : routing_rx_uj_) += uj;
  }

  [[nodiscard]] double protocol_tx_uj() const { return protocol_tx_uj_; }
  [[nodiscard]] double protocol_rx_uj() const { return protocol_rx_uj_; }
  [[nodiscard]] double routing_tx_uj() const { return routing_tx_uj_; }
  [[nodiscard]] double routing_rx_uj() const { return routing_rx_uj_; }

  [[nodiscard]] double protocol_uj() const { return protocol_tx_uj_ + protocol_rx_uj_; }
  [[nodiscard]] double routing_uj() const { return routing_tx_uj_ + routing_rx_uj_; }
  [[nodiscard]] double total_uj() const { return protocol_uj() + routing_uj(); }

  void reset() { *this = EnergyMeter{}; }

 private:
  double protocol_tx_uj_ = 0.0;
  double protocol_rx_uj_ = 0.0;
  double routing_tx_uj_ = 0.0;
  double routing_rx_uj_ = 0.0;
};

/// Battery configuration of a deployment (part of ExperimentConfig; every
/// field feeds the store's config key).  The default is the historical
/// infinite battery: nodes spend forever and never die of depletion.
struct BatteryParams {
  /// Finite charge budget.  When false every other field is inert.
  bool finite = false;

  /// Initial charge per node, microjoules (homogeneous deployments).
  double capacity_uj = 0.0;

  /// Per-node heterogeneity: each node's initial charge is drawn uniformly
  /// from [capacity*(1-h), capacity*(1+h)] on a dedicated RNG sub-stream
  /// (ascending node id), so deployments with mixed battery health are one
  /// seeded knob.  0 keeps the fleet homogeneous (and draws nothing).
  double heterogeneity = 0.0;

  /// Idle/sleep drain power in mW, charged on a deterministic tick (below)
  /// to every non-depleted node — radios leak even when silent, which is
  /// what ultimately bounds lifetime for lightly-loaded nodes.  0 disables
  /// the tick entirely.
  double idle_drain_mw = 0.0;

  /// Idle drain tick period.  Coarser ticks mean fewer events; the drain
  /// charged per tick is idle_drain_mw * tick, so the total is
  /// tick-granularity-exact, not approximate.
  sim::Duration idle_tick = sim::Duration::ms(50.0);
};

/// RNG sub-stream id of the heterogeneous initial-charge draws (forked from
/// the run's root seed by Network's constructor; fork() is const, so the
/// battery config can never perturb any other stream in the run).
inline constexpr std::uint64_t kBatteryInitStream = 0xBA77E21;

/// One node's energy state: the spend meter plus an optional finite charge.
/// All spend paths clamp against the remaining charge, so
///   meter totals + idle spend + residual == initial charge
/// holds to floating-point rounding (the conservation invariant
/// tests/net/battery_test and tests/exp/lifetime_test pin).
class Battery {
 public:
  /// Infinite battery: pure meter behaviour, never depletes.
  Battery() = default;

  /// Gives the battery a finite initial charge (microjoules).
  void init_finite(double initial_charge_uj) {
    finite_ = true;
    initial_charge_uj_ = initial_charge_uj;
    remaining_uj_ = initial_charge_uj;
    depleted_ = remaining_uj_ <= 0.0;
  }

  /// Spend paths: each clamps to the remaining charge and flips `depleted`
  /// when the charge hits zero.  Returns the amount actually spent.
  double add_tx(double uj, EnergyUse use) {
    const double spent = drain(uj);
    meter_.add_tx(spent, use);
    return spent;
  }
  double add_rx(double uj, EnergyUse use) {
    const double spent = drain(uj);
    meter_.add_rx(spent, use);
    return spent;
  }
  double add_idle(double uj) {
    const double spent = drain(uj);
    idle_uj_ += spent;
    return spent;
  }

  [[nodiscard]] bool finite() const { return finite_; }
  [[nodiscard]] bool depleted() const { return depleted_; }
  [[nodiscard]] double initial_charge_uj() const {
    return finite_ ? initial_charge_uj_ : std::numeric_limits<double>::infinity();
  }
  [[nodiscard]] double remaining_uj() const {
    return finite_ ? remaining_uj_ : std::numeric_limits<double>::infinity();
  }

  /// Idle/sleep drain spent so far (not part of the meter's use classes).
  [[nodiscard]] double idle_uj() const { return idle_uj_; }
  /// Everything spent: protocol + routing + idle.
  [[nodiscard]] double spent_uj() const { return meter_.total_uj() + idle_uj_; }

  /// The protocol/routing spend meter.
  [[nodiscard]] const EnergyMeter& meter() const { return meter_; }

 private:
  /// Clamps a spend against the remaining charge; marks depletion.
  double drain(double uj) {
    if (!finite_) return uj;
    if (depleted_) return 0.0;
    const double spent = uj < remaining_uj_ ? uj : remaining_uj_;
    remaining_uj_ -= spent;
    if (remaining_uj_ <= 0.0) {
      remaining_uj_ = 0.0;
      depleted_ = true;
    }
    return spent;
  }

  EnergyMeter meter_;
  double idle_uj_ = 0.0;
  bool finite_ = false;
  bool depleted_ = false;
  double initial_charge_uj_ = 0.0;
  double remaining_uj_ = 0.0;
};

/// Network-wide totals (sum of the per-node meters), produced by Network.
struct EnergyBreakdown {
  double protocol_tx_uj = 0.0;
  double protocol_rx_uj = 0.0;
  double routing_tx_uj = 0.0;
  double routing_rx_uj = 0.0;
  double idle_uj = 0.0;  ///< idle/sleep drain (finite-battery deployments)

  [[nodiscard]] double protocol_uj() const { return protocol_tx_uj + protocol_rx_uj; }
  [[nodiscard]] double routing_uj() const { return routing_tx_uj + routing_rx_uj; }
  [[nodiscard]] double total_uj() const { return protocol_uj() + routing_uj() + idle_uj; }
};

/// Residual-charge statistics of a finite-battery deployment at the end of a
/// run (all zeros for infinite batteries) — the lifetime-comparison metrics
/// of the energy-aware evaluations (mean/stddev of what is left, plus the
/// Gini coefficient of the residuals: 0 = perfectly even power distribution,
/// 1 = one node holds everything).
struct BatterySummary {
  std::uint64_t depleted_nodes = 0;
  double initial_total_uj = 0.0;
  double spent_total_uj = 0.0;
  double residual_mean_uj = 0.0;
  double residual_stddev_uj = 0.0;
  double residual_min_uj = 0.0;
  double residual_gini = 0.0;
};

}  // namespace spms::net
