#pragma once

#include <cstdint>
#include <functional>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

/// \file mobility.hpp
/// Epoch mobility model (paper Section 5.1.3).
///
/// "At some discrete times in the simulator clock, a predefined fraction of
/// nodes move. The nodes which are to move and their destination are chosen
/// randomly. Once the routing tables converge, the data transmission starts
/// all over again."  After each epoch the injector invokes a callback; the
/// scenario layer uses it to re-run the distributed Bellman-Ford (charging
/// its energy, which Fig. 12 includes in the measurement).

namespace spms::net {

/// Parameters of the epoch-teleport mobility model.
struct MobilityParams {
  /// Time between movement epochs.
  sim::Duration epoch_interval = sim::Duration::ms(20.0);
  /// Fraction of nodes that relocate each epoch (chosen uniformly).
  double move_fraction = 0.10;
  /// Moved nodes land uniformly in [0, field_side]^2.
  double field_side_m = 100.0;
};

/// Teleports random node subsets on a fixed cadence.
class MobilityProcess {
 public:
  MobilityProcess(sim::Simulation& sim, Network& net, MobilityParams params,
                  std::uint64_t stream = 0x30B1);

  /// Invoked after every epoch's moves; wire the routing rebuild here.
  void set_on_moved(std::function<void()> cb) { on_moved_ = std::move(cb); }

  /// Schedules epochs at interval boundaries up to `horizon`.
  void start(sim::TimePoint horizon);

  [[nodiscard]] std::uint64_t epochs() const { return epochs_; }
  [[nodiscard]] std::uint64_t moves() const { return moves_; }

 private:
  void epoch();

  sim::Simulation& sim_;
  Network& net_;
  MobilityParams params_;
  sim::Rng rng_;
  sim::TimePoint horizon_;
  std::function<void()> on_moved_;
  std::uint64_t epochs_ = 0;
  std::uint64_t moves_ = 0;
};

}  // namespace spms::net
