#pragma once

#include <cstddef>
#include <ostream>
#include <vector>

#include "net/ids.hpp"

/// \file packet.hpp
/// The over-the-air packet.
///
/// One struct covers all protocol packet kinds (ADV/REQ/DATA plus the
/// routing layer's distance-vector updates).  Fields unused by a kind stay
/// at their defaults; a tagged variant hierarchy would buy type safety at
/// the cost of making the hot delivery path allocate/dispatch — the packet
/// count in a run reaches millions, so we keep it a flat value type.

namespace spms::net {

/// Packet kind, per the SPIN/SPMS protocol families.
enum class PacketType {
  kAdv,          ///< metadata advertisement (broadcast in the sender's zone)
  kReq,          ///< request for a data item
  kData,         ///< the data item itself
  kRouteUpdate,  ///< distance-vector exchange of the routing layer
};

[[nodiscard]] constexpr const char* to_string(PacketType t) {
  switch (t) {
    case PacketType::kAdv: return "ADV";
    case PacketType::kReq: return "REQ";
    case PacketType::kData: return "DATA";
    case PacketType::kRouteUpdate: return "RTUP";
  }
  return "?";
}

/// One frame in flight.
struct Packet {
  PacketType type = PacketType::kAdv;
  DataId item;  ///< the data item this packet concerns

  NodeId src;  ///< immediate transmitter (stamped by the network on send)
  NodeId dst;  ///< immediate receiver; kNoNode == local broadcast

  // --- REQ bookkeeping -----------------------------------------------------
  NodeId requester;  ///< node that wants the data
  NodeId target;     ///< node the REQ is ultimately addressed to (a holder)
  /// DATA only: the holder that served the item.  Survives relay forwarding
  /// unchanged (relays rewrite src/dst but not holder), so the receiver can
  /// stamp the causal parent of its acquisition even when relays carried the
  /// frame.  Pure observability — no protocol logic reads it.
  NodeId holder;
  bool direct = false;  ///< REQ sent as one direct (possibly high-power) hop;
                        ///< the holder answers with a direct DATA (§3.5)
  std::uint16_t attempt = 0;  ///< requester's (re)try counter; holders use it
                              ///< to suppress duplicate service of stale REQs

  /// Relay trail: node ids the packet has traversed so far (REQ) or the
  /// remaining source route (DATA travelling back along the REQ's path).
  /// Forwarded cross-zone ADVs use it as the metadata-courier trail.
  std::vector<NodeId> route;

  /// Pre-planned remaining hops of a cross-zone REQ (the reverse of the
  /// courier trail that delivered the ADV, ending at the holder).  Relays
  /// consume it front-first; empty means route by table toward `target`.
  std::vector<NodeId> source_route;

  std::size_t size_bytes = 0;  ///< frame size used for airtime and energy

  [[nodiscard]] bool is_broadcast() const { return !dst.valid(); }
};

std::ostream& operator<<(std::ostream& os, const Packet& p);

}  // namespace spms::net
