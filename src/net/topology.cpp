#include "net/topology.hpp"

#include <cmath>

namespace spms::net {

std::vector<Point> grid_deployment(std::size_t side, double pitch_m) {
  std::vector<Point> pts;
  pts.reserve(side * side);
  for (std::size_t row = 0; row < side; ++row) {
    for (std::size_t col = 0; col < side; ++col) {
      pts.push_back(Point{static_cast<double>(col) * pitch_m, static_cast<double>(row) * pitch_m});
    }
  }
  return pts;
}

std::vector<Point> random_deployment(std::size_t count, double field_side_m, sim::Rng& rng) {
  std::vector<Point> pts;
  pts.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    pts.push_back(Point{rng.uniform(0.0, field_side_m), rng.uniform(0.0, field_side_m)});
  }
  return pts;
}

std::size_t grid_side_for(std::size_t count) {
  auto side = static_cast<std::size_t>(std::floor(std::sqrt(static_cast<double>(count))));
  while (side * side < count) ++side;
  return side;
}

}  // namespace spms::net
