#pragma once

#include "sim/time.hpp"

/// \file params.hpp
/// MAC / PHY / energy model parameters (Table 1 of the paper).

namespace spms::net {

/// CSMA/CA channel-access model.
///
/// The paper models channel-access delay as T_csma = G * n^2, where n is the
/// number of nodes inside the transmission radius (Section 4.1, citing
/// [8][9]), on top of a slotted random backoff (Table 1: 20 slots of
/// 0.1 ms).  We implement both terms; either can be disabled by zeroing it.
struct MacParams {
  /// Carrier sensing with spatial reuse: a transmission occupies the channel
  /// for every node inside its coverage disc until it ends; senders defer
  /// (with a fresh backoff) while their local channel is busy.  This is the
  /// physical effect behind the paper's delay result — SPMS's low-power
  /// frames contend only in a small disc, SPIN's max-power frames block the
  /// whole zone.  Disable for the ablation bench.
  bool carrier_sense = true;

  /// Paper-style MAC: every frame contends and airs independently — no
  /// per-node queue, no carrier sensing; the only delays are the backoff,
  /// the (optional) G*n^2 term and the airtime.  This reproduces the
  /// resource-free simulator the paper's absolute delay figures come from
  /// (delay drops with radius because fewer zone-by-zone rounds are needed).
  /// Overrides carrier_sense.
  bool infinite_parallelism = false;

  /// Optional explicit quadratic contention term (ms): the Section 4.1
  /// analysis models access delay as G*n^2.  The simulator gets contention
  /// emergently from carrier sensing, so this defaults to 0; set it (and
  /// disable carrier_sense) to run the analysis-style MAC.
  double contention_g_ms = 0.0;

  /// Random backoff: uniformly 0..(num_slots-1) slots before each access
  /// attempt (Table 1: 20 slots of 0.1 ms).
  sim::Duration slot_time = sim::Duration::ms(0.1);
  int num_slots = 20;

  /// Airtime per byte (Table 1: 0.05 ms/byte).
  sim::Duration t_tx_per_byte = sim::Duration::ms(0.05);

  /// Per-packet processing delay at a receiver (Table 1: 0.02 ms).
  sim::Duration t_proc = sim::Duration::ms(0.02);
};

/// Energy model parameters.
struct EnergyModelParams {
  /// Receive power in mW.  The paper's *analysis* simplifies to Er = Em
  /// (0.0125 mW, the weakest level); a real MICA2 spends receive power
  /// comparable to a mid TX level, and only with such a cost do the paper's
  /// simulated savings bands (26-43% all-to-all) come out — with Er = Em the
  /// savings overshoot to ~70%+.  Default: 0.15 mW (between levels 2 and 3).
  /// EXPERIMENTS.md documents the calibration; the ablation bench sweeps it.
  double rx_power_mw = 0.15;

  /// When true, every node inside the coverage disc of a unicast pays
  /// receive energy (promiscuous overhearing); when false only addressed
  /// receivers (and all hearers of broadcasts) pay.  The paper's analysis
  /// "omit[s] the energy wasted in redundant reception", so false is the
  /// default; the flag exists to quantify that choice (ablation bench).
  bool charge_overhearing = false;
};

}  // namespace spms::net
