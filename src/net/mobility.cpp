#include "net/mobility.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace spms::net {

MobilityProcess::MobilityProcess(sim::Simulation& sim, Network& net, MobilityParams params,
                                 std::uint64_t stream)
    : sim_(sim), net_(net), params_(params), rng_(sim.rng().fork(stream)) {}

void MobilityProcess::start(sim::TimePoint horizon) {
  horizon_ = horizon;
  const auto first = sim_.now() + params_.epoch_interval;
  if (first <= horizon_) sim_.at(first, [this] { epoch(); });
}

void MobilityProcess::epoch() {
  ++epochs_;
  const auto n = net_.size();
  const auto movers =
      std::max<std::size_t>(1, static_cast<std::size_t>(std::llround(params_.move_fraction * static_cast<double>(n))));

  // Choose `movers` distinct nodes by shuffling the id universe.
  std::vector<std::uint32_t> ids(n);
  for (std::uint32_t i = 0; i < n; ++i) ids[i] = i;
  rng_.shuffle(ids);
  for (std::size_t i = 0; i < movers; ++i) {
    const Point dest{rng_.uniform(0.0, params_.field_side_m), rng_.uniform(0.0, params_.field_side_m)};
    net_.set_position(NodeId{ids[i]}, dest);
    ++moves_;
  }
  if (on_moved_) on_moved_();

  const auto next = sim_.now() + params_.epoch_interval;
  if (next <= horizon_) sim_.at(next, [this] { epoch(); });
}

}  // namespace spms::net
