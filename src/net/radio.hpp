#pragma once

#include <cstddef>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

/// \file radio.hpp
/// Transmit power model.
///
/// Sensor radios expose a small set of discrete output power levels; the
/// paper (Table 1) uses the five levels of the MICA2 mote together with the
/// distance each level covers.  SPMS's whole premise is picking the cheapest
/// level that covers the next hop instead of always using the maximum.

namespace spms::net {

/// One transmit power setting: RF output power and the range it covers.
struct PowerLevel {
  double power_mw = 0.0;  ///< RF output power in milliwatts
  double range_m = 0.0;   ///< reliable communication range in metres
};

/// An ordered table of power levels, strongest first (index 0 = level 1 of
/// the paper).  Invariant: power and range are strictly decreasing.
class RadioTable {
 public:
  /// \throws std::invalid_argument if levels are empty or not strictly
  ///         decreasing in both power and range.
  explicit RadioTable(std::vector<PowerLevel> levels);

  /// The five MICA2 levels of the paper's Table 1:
  /// 3.1622/0.7943/0.1995/0.05/0.0125 mW covering 91.44/45.72/22.86/11.28/5.48 m.
  [[nodiscard]] static RadioTable mica2();

  [[nodiscard]] std::size_t num_levels() const { return levels_.size(); }
  [[nodiscard]] const PowerLevel& level(std::size_t idx) const { return levels_.at(idx); }
  [[nodiscard]] std::span<const PowerLevel> levels() const { return levels_; }

  /// Strongest level's range: the zone radius upper bound.
  [[nodiscard]] double max_range() const { return levels_.front().range_m; }
  /// Weakest level (E_m of the paper's analysis).
  [[nodiscard]] const PowerLevel& weakest() const { return levels_.back(); }

  /// Cheapest (weakest) level whose range covers `distance_m`; nullopt when
  /// the distance exceeds the maximum range.
  [[nodiscard]] std::optional<std::size_t> cheapest_level_for(double distance_m) const;

  /// Minimum transmit power (mW) needed to cover `distance_m`; nullopt when
  /// out of range.  This is the link weight used by the routing layer
  /// ("the weight w on an edge (i,j) denotes the minimum power at which i
  /// needs to transmit to reach j").
  [[nodiscard]] std::optional<double> min_power_for(double distance_m) const;

 private:
  std::vector<PowerLevel> levels_;
};

}  // namespace spms::net
