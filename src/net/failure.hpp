#pragma once

#include <cstdint>

#include "net/network.hpp"
#include "sim/random.hpp"
#include "sim/simulation.hpp"

/// \file failure.hpp
/// Transient node-failure injection (paper Section 5.1.2).
///
/// "Nodes fail with an exponential inter-arrival time and stay failed for a
/// time drawn from a uniform distribution (repair_min, repair_max). During
/// the time of repair, any received message is dropped and any scheduled
/// packet transfer is cancelled. We assume recovery is always successful."
///
/// For experiment runs this process now lives behind the pluggable fault
/// interface as faults::CrashRepairModel (same stream, same draw order, so
/// a crash-only FaultPlan reproduces this injector's timeline exactly);
/// FailureInjector remains the standalone driver for direct network-level
/// use and the paper-Section-5.1.2 tests.

namespace spms::net {

/// Parameters of the per-node crash/repair renewal process.
struct FailureParams {
  /// Mean time between failures of one node (Table 1: 50 ms).
  sim::Duration mean_time_between_failures = sim::Duration::ms(50.0);
  /// Repair time ~ Uniform(repair_min, repair_max); Table 1's MTTR of 10 ms
  /// maps to Uniform(5 ms, 15 ms).
  sim::Duration repair_min = sim::Duration::ms(5.0);
  sim::Duration repair_max = sim::Duration::ms(15.0);
};

/// Drives independent transient-failure processes on every node.
class FailureInjector {
 public:
  /// \param stream  RNG sub-stream id; keeps failure randomness independent
  ///        of MAC backoff and traffic randomness.
  FailureInjector(sim::Simulation& sim, Network& net, FailureParams params,
                  std::uint64_t stream = 0xFA11);

  /// Starts the process on every node.  No failure is *initiated* after
  /// `horizon`, but a repair in flight always completes, so the network ends
  /// the run fully up.
  void start(sim::TimePoint horizon);

  /// Number of crashes injected so far.
  [[nodiscard]] std::uint64_t failures_injected() const { return failures_; }

 private:
  void schedule_failure(NodeId id);
  void crash(NodeId id);

  sim::Simulation& sim_;
  Network& net_;
  FailureParams params_;
  sim::Rng rng_;
  sim::TimePoint horizon_;
  std::uint64_t failures_ = 0;
};

}  // namespace spms::net
