#include "net/radio.hpp"

namespace spms::net {

RadioTable::RadioTable(std::vector<PowerLevel> levels) : levels_(std::move(levels)) {
  if (levels_.empty()) throw std::invalid_argument{"RadioTable: no levels"};
  for (std::size_t i = 1; i < levels_.size(); ++i) {
    if (levels_[i].power_mw >= levels_[i - 1].power_mw ||
        levels_[i].range_m >= levels_[i - 1].range_m) {
      throw std::invalid_argument{"RadioTable: levels must be strictly decreasing"};
    }
  }
  for (const auto& l : levels_) {
    if (l.power_mw <= 0 || l.range_m <= 0) {
      throw std::invalid_argument{"RadioTable: power and range must be positive"};
    }
  }
}

RadioTable RadioTable::mica2() {
  return RadioTable{{
      {3.1622, 91.44},
      {0.7943, 45.72},
      {0.1995, 22.86},
      {0.05, 11.28},
      {0.0125, 5.48},
  }};
}

std::optional<std::size_t> RadioTable::cheapest_level_for(double distance_m) const {
  if (distance_m > max_range()) return std::nullopt;
  // Walk from weakest to strongest; tables have ~5 entries so linear is fine.
  for (std::size_t i = levels_.size(); i-- > 0;) {
    if (levels_[i].range_m >= distance_m) return i;
  }
  return std::nullopt;  // unreachable given the max_range() check
}

std::optional<double> RadioTable::min_power_for(double distance_m) const {
  const auto lvl = cheapest_level_for(distance_m);
  if (!lvl) return std::nullopt;
  return levels_[*lvl].power_mw;
}

}  // namespace spms::net
