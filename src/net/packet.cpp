#include "net/packet.hpp"

namespace spms::net {

std::ostream& operator<<(std::ostream& os, const Packet& p) {
  os << to_string(p.type) << "[" << p.item << "] " << p.src << "->";
  if (p.is_broadcast()) {
    os << "*";
  } else {
    os << p.dst;
  }
  if (p.type == PacketType::kReq) {
    os << " req=" << p.requester << " tgt=" << p.target << (p.direct ? " direct" : "");
  }
  return os;
}

}  // namespace spms::net
