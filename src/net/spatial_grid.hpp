#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "net/geometry.hpp"

/// \file spatial_grid.hpp
/// Uniform-grid spatial index over node positions.
///
/// The network keys the grid on the deployment's zone radius, so the
/// dominant query (a zone-radius disc) touches at most a 3x3 block of cells
/// instead of scanning every node — neighbor lookup, contention counting and
/// frame delivery drop from O(n) to O(nodes in the disc's cell block).
///
/// Invariants (the Network maintains them; the property suite in
/// tests/net/spatial_grid_test.cpp checks them against brute force):
///  * every inserted id lives in exactly one cell — the cell of the position
///    the caller last declared for it (insert() or move());
///  * visit_disc() enumerates a conservative superset of the disc: every id
///    whose declared position lies within `radius_m` (Euclidean) of the
///    center is visited; ids slightly outside may be visited too, so callers
///    must apply the exact distance_sq(p, c) <= r*r test themselves — this
///    keeps membership decisions bit-identical to the brute-force scan;
///  * within-cell order is insertion order perturbed by removals
///    (swap-erase), hence unspecified: callers needing deterministic output
///    sort the survivors (Network::neighbors_within returns ascending id);
///  * liveness/up-down state is *not* tracked here — a down node keeps its
///    cell (zone membership ignores transient failures); callers filter.
///
/// Complexity: insert O(1) amortized, move O(cell occupancy) for the
/// swap-erase, visit O(cells overlapped + candidates).  Cell vectors are
/// recycled by the map, so a settled deployment queries without allocating.

namespace spms::net {

class SpatialGrid {
 public:
  SpatialGrid() = default;

  /// Re-keys the grid: `cell_size_m` (> 0) becomes the bucket edge length.
  /// Drops all entries; callers re-insert.
  void reset(double cell_size_m, std::size_t expected_nodes);

  /// Registers `id` at `p`.  Each id must be inserted at most once.
  void insert(std::uint32_t id, Point p);

  /// Moves `id` from its declared position `from` to `to` (mobility
  /// teleport).  `from` must be the position previously declared.
  void move(std::uint32_t id, Point from, Point to);

  /// Invokes `visit(id)` for every id whose cell overlaps the axis-aligned
  /// bounding box of the disc (center, radius_m).  Superset semantics: see
  /// the file comment.
  template <typename Visit>
  void visit_disc(Point center, double radius_m, Visit&& visit) const {
    // Relaxed: a pure statistics counter, queried only between runs.  The
    // atomic makes concurrent disc queries from parallel event groups safe.
    queries_.fetch_add(1, std::memory_order_relaxed);
    const std::int64_t cx0 = coord(center.x - radius_m);
    const std::int64_t cx1 = coord(center.x + radius_m);
    const std::int64_t cy0 = coord(center.y - radius_m);
    const std::int64_t cy1 = coord(center.y + radius_m);
    for (std::int64_t cx = cx0; cx <= cx1; ++cx) {
      for (std::int64_t cy = cy0; cy <= cy1; ++cy) {
        const auto it = cells_.find(key(cx, cy));
        if (it == cells_.end()) continue;
        for (const std::uint32_t id : it->second) visit(id);
      }
    }
  }

  [[nodiscard]] double cell_size() const { return cell_; }

  /// Cumulative visit_disc() calls (observability gauge; reset() clears it).
  [[nodiscard]] std::uint64_t query_count() const {
    return queries_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] std::int64_t coord(double v) const {
    return static_cast<std::int64_t>(std::floor(v * inv_cell_));
  }
  [[nodiscard]] static std::uint64_t key(std::int64_t cx, std::int64_t cy) {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cx)) << 32) |
           static_cast<std::uint32_t>(cy);
  }
  [[nodiscard]] std::uint64_t key_of(Point p) const { return key(coord(p.x), coord(p.y)); }

  double cell_ = 1.0;
  double inv_cell_ = 1.0;
  mutable std::atomic<std::uint64_t> queries_{0};
  std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> cells_;
};

}  // namespace spms::net
