#pragma once

#include "net/packet.hpp"

/// \file node.hpp
/// The callback interface protocol agents implement, one agent per node.
///
/// Per-node state itself (position, liveness, battery, MAC bookkeeping)
/// lives in dense structure-of-arrays storage inside net::Network — the
/// scheduler/DBF/spatial-grid hot loops walk contiguous arrays instead of
/// hopping across one heavyweight struct per node (see network.hpp).

namespace spms::net {

/// Interface the protocol layer implements, one agent per node.
/// The network invokes on_receive after the receiver-side processing delay
/// (T_proc); on_down/on_up bracket transient failures.
class Agent {
 public:
  virtual ~Agent() = default;

  /// A frame addressed to this node (or broadcast) finished arriving and
  /// has been processed by the radio/MAC.  Only called while the node is up.
  virtual void on_receive(const Packet& packet) = 0;

  /// The node just crashed: all its queued transmissions were discarded and
  /// future receptions will be dropped until on_up().
  virtual void on_down() {}

  /// The node just recovered.
  virtual void on_up() {}
};

}  // namespace spms::net
