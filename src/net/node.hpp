#pragma once

#include "net/energy.hpp"
#include "net/frame_queue.hpp"
#include "net/geometry.hpp"
#include "net/ids.hpp"
#include "net/packet.hpp"
#include "sim/scheduler.hpp"

/// \file node.hpp
/// A sensor node and the callback interface protocol agents implement.

namespace spms::net {

/// Interface the protocol layer implements, one agent per node.
/// The network invokes on_receive after the receiver-side processing delay
/// (T_proc); on_down/on_up bracket transient failures.
class Agent {
 public:
  virtual ~Agent() = default;

  /// A frame addressed to this node (or broadcast) finished arriving and
  /// has been processed by the radio/MAC.  Only called while the node is up.
  virtual void on_receive(const Packet& packet) = 0;

  /// The node just crashed: all its queued transmissions were discarded and
  /// future receptions will be dropped until on_up().
  virtual void on_down() {}

  /// The node just recovered.
  virtual void on_up() {}
};

/// Per-node state owned by the Network.
struct Node {
  NodeId id;
  Point pos;
  bool up = true;

  Battery battery;
  /// Last residual-charge bucket reported to the typed trace (an
  /// obs::BatteryBucket value; only advances).  Observability bookkeeping —
  /// never read by the simulation itself.
  std::uint8_t battery_bucket = 0;
  Agent* agent = nullptr;  ///< non-owning; protocols outlive the run

  // MAC state: one transmission at a time, FIFO queue behind it (a grow-only
  // ring; see frame_queue.hpp).
  FrameQueue mac_queue;
  bool mac_busy = false;
  sim::EventHandle mac_event;  ///< pending access-delay or tx-complete event

  /// Carrier sense: the local channel is occupied until this instant
  /// (stamped by every transmission whose coverage disc includes the node).
  /// Initialized far in the past so "never heard anything" counts as quiet
  /// for any window the protocols might ask about.
  sim::TimePoint channel_busy_until = sim::TimePoint::zero() - sim::Duration::seconds(3600);
};

}  // namespace spms::net
