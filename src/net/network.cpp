#include "net/network.hpp"

#include <cassert>
#include <stdexcept>
#include <utility>

namespace spms::net {

Network::Network(sim::Simulation& sim, RadioTable radio, MacParams mac, EnergyModelParams energy,
                 std::vector<Point> positions, double zone_radius_m)
    : sim_(sim),
      radio_(std::move(radio)),
      mac_(mac),
      energy_(energy),
      zone_radius_m_(zone_radius_m) {
  if (positions.empty()) throw std::invalid_argument{"Network: empty deployment"};
  if (zone_radius_m <= 0 || zone_radius_m > radio_.max_range()) {
    throw std::invalid_argument{"Network: zone radius outside the radio's reach"};
  }
  nodes_.resize(positions.size());
  for (std::size_t i = 0; i < positions.size(); ++i) {
    nodes_[i].id = NodeId{static_cast<std::uint32_t>(i)};
    nodes_[i].pos = positions[i];
  }
}

std::vector<NodeId> Network::neighbors_within(NodeId center, double radius_m,
                                              bool include_down) const {
  const Point c = position(center);
  const double r2 = radius_m * radius_m;
  std::vector<NodeId> out;
  for (const auto& n : nodes_) {
    if (n.id == center) continue;
    if (!include_down && !n.up) continue;
    if (distance_sq(n.pos, c) <= r2) out.push_back(n.id);
  }
  return out;
}

std::size_t Network::contention_count(NodeId center, double radius_m) const {
  const Point c = position(center);
  const double r2 = radius_m * radius_m;
  std::size_t count = 0;
  for (const auto& n : nodes_) {
    if (n.id == center || !n.up) continue;
    if (distance_sq(n.pos, c) <= r2) ++count;
  }
  return count;
}

sim::Duration Network::airtime(std::size_t bytes) const {
  return mac_.t_tx_per_byte * static_cast<std::int64_t>(bytes);
}

double Network::tx_energy_uj(std::size_t bytes, std::size_t lvl) const {
  return radio_.level(lvl).power_mw * airtime(bytes).to_ms();
}

double Network::rx_energy_uj(std::size_t bytes) const {
  return energy_.rx_power_mw * airtime(bytes).to_ms();
}

bool Network::send(NodeId from, Packet packet, double coverage_m, EnergyUse use) {
  Node& n = nodes_.at(from.v);
  if (!n.up) {
    ++counters_.dropped_sender_down;
    return false;
  }
  // Pad the engineered disc by a hair: unicast coverage is usually the
  // exact receiver distance (send_to), and the sqrt/square round trip of
  // that distance can land one ulp short of the delivery test, silently
  // excluding the intended receiver on non-lattice deployments.
  coverage_m += 1e-6;
  const auto lvl = radio_.cheapest_level_for(coverage_m);
  if (!lvl) {
    ++counters_.dropped_out_of_range;
    return false;
  }
  packet.src = from;
  OutgoingFrame frame{std::move(packet), *lvl, coverage_m, use};
  if (mac_.infinite_parallelism) {
    send_unqueued(n, std::move(frame));
    return true;
  }
  n.mac_queue.push_back(std::move(frame));
  if (!n.mac_busy) mac_start_access(n);
  return true;
}

sim::Duration Network::access_delay(const Node& n, const OutgoingFrame& f) {
  sim::Duration wait = draw_backoff();
  if (mac_.contention_g_ms > 0.0) {
    // Analysis-style explicit contention term (Section 4.1's T_csma = G n^2).
    const std::size_t contenders = contention_count(n.id, f.coverage_m);
    wait += sim::Duration::ms(mac_.contention_g_ms * static_cast<double>(contenders) *
                              static_cast<double>(contenders));
  }
  return wait;
}

void Network::send_unqueued(Node& n, OutgoingFrame frame) {
  // Paper-style MAC: the frame neither waits for the node's earlier frames
  // nor occupies the channel; it simply takes access-delay + airtime.
  const NodeId id = n.id;
  sim_.after(access_delay(n, frame), [this, id, frame = std::move(frame)] {
    Node& sender = nodes_[id.v];
    if (!sender.up) {
      ++counters_.dropped_sender_down;  // crashed during the backoff
      return;
    }
    sender.meter.add_tx(tx_energy_uj(frame.packet.size_bytes, frame.level), frame.use);
    count_tx(frame.packet);
    sim_.after(airtime(frame.packet.size_bytes),
               [this, id, frame] { deliver_frame(nodes_[id.v], frame); });
  });
}

bool Network::send_to(NodeId from, Packet packet, NodeId to, EnergyUse use) {
  packet.dst = to;
  return send(from, std::move(packet), distance_between(from, to), use);
}

sim::Duration Network::draw_backoff() {
  if (mac_.num_slots <= 1) return sim::Duration::zero();
  return mac_.slot_time * sim_.rng().uniform_int(0, mac_.num_slots - 1);
}

void Network::mac_start_access(Node& n) {
  assert(!n.mac_queue.empty());
  n.mac_busy = true;
  NodeId id = n.id;
  n.mac_event =
      sim_.after(access_delay(n, n.mac_queue.front()), [this, id] { mac_try_send(nodes_[id.v]); });
}

void Network::mac_try_send(Node& n) {
  assert(n.mac_busy && !n.mac_queue.empty());
  if (mac_.carrier_sense && sim_.now() < n.channel_busy_until) {
    // Channel busy: defer to the end of the busy period plus a fresh backoff
    // (CSMA/CA without collision modelling; see DESIGN.md).
    const auto retry_at = n.channel_busy_until + draw_backoff();
    NodeId id = n.id;
    n.mac_event = sim_.at(retry_at, [this, id] { mac_try_send(nodes_[id.v]); });
    return;
  }
  mac_begin_tx(n);
}

void Network::mac_begin_tx(Node& n) {
  assert(n.mac_busy && !n.mac_queue.empty());
  const OutgoingFrame& f = n.mac_queue.front();
  n.meter.add_tx(tx_energy_uj(f.packet.size_bytes, f.level), f.use);
  count_tx(f.packet);
  const auto end = sim_.now() + airtime(f.packet.size_bytes);
  if (mac_.carrier_sense) {
    // Occupy the channel across the coverage disc (the transmitter included).
    if (end > n.channel_busy_until) n.channel_busy_until = end;
    const double r2 = f.coverage_m * f.coverage_m;
    for (auto& other : nodes_) {
      if (other.id == n.id) continue;
      if (distance_sq(other.pos, n.pos) <= r2 && end > other.channel_busy_until) {
        other.channel_busy_until = end;
      }
    }
  }
  NodeId id = n.id;
  n.mac_event = sim_.at(end, [this, id] { mac_complete_tx(nodes_[id.v]); });
}

void Network::deliver_frame(const Node& sender, const OutgoingFrame& frame) {
  // Every alive node inside the engineered disc hears the frame.
  const auto hearers = neighbors_within(sender.id, frame.coverage_m, /*include_down=*/false);
  const Packet& p = frame.packet;
  std::vector<NodeId> processors;
  processors.reserve(hearers.size());
  for (NodeId h : hearers) {
    if (link_fault_ && link_fault_(sender.id, h)) {
      // Faded below the decode threshold for this receiver: no rx charge,
      // no processing (ascending-id hearer order keeps the draws
      // deterministic).
      ++counters_.dropped_link_fault;
      continue;
    }
    const bool addressed = p.is_broadcast() || p.dst == h;
    if (addressed || energy_.charge_overhearing) {
      nodes_[h.v].meter.add_rx(rx_energy_uj(p.size_bytes), frame.use);
    }
    if (addressed) processors.push_back(h);
  }
  if (processors.empty()) return;
  // One event covers all receivers: t_proc is a constant, so their
  // callbacks fire at the same instant; iteration order (ascending id)
  // keeps runs deterministic.
  sim_.after(mac_.t_proc, [this, processors = std::move(processors), pkt = frame.packet] {
    for (NodeId h : processors) {
      Node& r = nodes_[h.v];
      if (!r.up) {
        ++counters_.dropped_receiver_down;
        continue;
      }
      if (r.agent != nullptr) {
        ++counters_.deliveries;
        r.agent->on_receive(pkt);
      }
    }
  });
}

void Network::mac_complete_tx(Node& n) {
  assert(n.mac_busy && !n.mac_queue.empty());
  OutgoingFrame frame = std::move(n.mac_queue.front());
  n.mac_queue.pop_front();

  deliver_frame(n, frame);

  // Advance the queue.
  if (!n.mac_queue.empty()) {
    mac_start_access(n);
  } else {
    n.mac_busy = false;
    n.mac_event = sim::EventHandle{};
  }
}

void Network::set_up(NodeId id, bool up) {
  Node& n = nodes_.at(id.v);
  if (n.up == up) return;
  n.up = up;
  if (!up) {
    // Crash: lose the MAC queue and whatever phase was in progress.
    sim_.cancel(n.mac_event);
    n.mac_event = sim::EventHandle{};
    n.mac_queue.clear();
    n.mac_busy = false;
    if (n.agent != nullptr) n.agent->on_down();
  } else {
    if (n.agent != nullptr) n.agent->on_up();
  }
  if (on_state_change_) on_state_change_(id, up);
}

void Network::charge_tx(NodeId id, std::size_t bytes, double coverage_m, EnergyUse use) {
  const auto lvl = radio_.cheapest_level_for(coverage_m);
  if (!lvl) return;
  nodes_.at(id.v).meter.add_tx(tx_energy_uj(bytes, *lvl), use);
  counters_.tx_bytes += bytes;
  ++counters_.tx_route;
}

void Network::charge_rx(NodeId id, std::size_t bytes, EnergyUse use) {
  nodes_.at(id.v).meter.add_rx(rx_energy_uj(bytes), use);
}

EnergyBreakdown Network::energy() const {
  EnergyBreakdown total;
  for (const auto& n : nodes_) {
    total.protocol_tx_uj += n.meter.protocol_tx_uj();
    total.protocol_rx_uj += n.meter.protocol_rx_uj();
    total.routing_tx_uj += n.meter.routing_tx_uj();
    total.routing_rx_uj += n.meter.routing_rx_uj();
  }
  return total;
}

void Network::count_tx(const Packet& p) {
  switch (p.type) {
    case PacketType::kAdv: ++counters_.tx_adv; break;
    case PacketType::kReq: ++counters_.tx_req; break;
    case PacketType::kData: ++counters_.tx_data; break;
    case PacketType::kRouteUpdate: ++counters_.tx_route; break;
  }
  counters_.tx_bytes += p.size_bytes;
}

}  // namespace spms::net
