#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/event_trace.hpp"

namespace spms::net {

namespace {

/// Typed frame-drop record; call only when sim.events().enabled().
void emit_drop(sim::Simulation& sim, obs::DropCause cause, NodeId node, NodeId peer, DataId item,
               double value = 0.0) {
  sim.events().emit({.at = sim.now(), .kind = obs::TraceKind::kFrameDrop,
                     .cause = static_cast<std::uint8_t>(cause), .node = node, .peer = peer,
                     .item = item, .value = value});
}

}  // namespace

Network::Network(sim::Simulation& sim, RadioTable radio, MacParams mac, EnergyModelParams energy,
                 std::vector<Point> positions, double zone_radius_m, BatteryParams battery)
    : sim_(sim),
      radio_(std::move(radio)),
      mac_(mac),
      energy_(energy),
      battery_(battery),
      zone_radius_m_(zone_radius_m) {
  if (positions.empty()) throw std::invalid_argument{"Network: empty deployment"};
  if (zone_radius_m <= 0 || zone_radius_m > radio_.max_range()) {
    throw std::invalid_argument{"Network: zone radius outside the radio's reach"};
  }
  if (battery_.finite && battery_.capacity_uj <= 0.0) {
    throw std::invalid_argument{"Network: finite battery needs a positive capacity"};
  }
  if (battery_.heterogeneity < 0.0 || battery_.heterogeneity >= 1.0) {
    throw std::invalid_argument{"Network: battery heterogeneity must be in [0, 1)"};
  }
  nodes_.resize(positions.size());
  // The grid's cell edge is the zone radius: the dominant disc query (a
  // zone) then overlaps at most a 3x3 cell block.  Below kGridMinNodes the
  // linear scan over the contiguous node array is cheaper than the grid's
  // cell-block hash lookups, so tiny deployments keep the brute-force path
  // (the grid stays coherent either way — the cutover is query-side only
  // and both paths produce identical results in identical order).
  use_grid_ = positions.size() >= kGridMinNodes;
  grid_.reset(zone_radius_m, positions.size());
  // Heterogeneous charges come from a dedicated sub-stream in ascending node
  // id, so the draw sequence is a pure function of (seed, capacity, h).
  auto init_rng = sim_.rng().fork(kBatteryInitStream);
  for (std::size_t i = 0; i < positions.size(); ++i) {
    nodes_[i].id = NodeId{static_cast<std::uint32_t>(i)};
    nodes_[i].pos = positions[i];
    grid_.insert(static_cast<std::uint32_t>(i), positions[i]);
    if (battery_.finite) {
      double charge = battery_.capacity_uj;
      if (battery_.heterogeneity > 0.0) {
        charge = init_rng.uniform(battery_.capacity_uj * (1.0 - battery_.heterogeneity),
                                  battery_.capacity_uj * (1.0 + battery_.heterogeneity));
      }
      nodes_[i].battery.init_finite(charge);
    }
  }
}

void Network::neighbors_within(NodeId center, double radius_m, bool include_down,
                               std::vector<NodeId>& out) const {
  out.clear();
  const Point c = position(center);
  const double r2 = radius_m * radius_m;
  if (!use_grid_) {
    // Tiny deployment: a linear pass over the contiguous node array beats
    // the grid's hash lookups, and it yields ascending ids for free.
    for (const Node& n : nodes_) {
      if (n.id == center) continue;
      if (!include_down && !n.up) continue;
      if (distance_sq(n.pos, c) <= r2) out.push_back(n.id);
    }
    return;
  }
  grid_.visit_disc(c, radius_m, [&](std::uint32_t v) {
    const Node& n = nodes_[v];
    if (n.id == center) return;
    if (!include_down && !n.up) return;
    // The exact inclusion test matches the historical brute-force scan
    // bit-for-bit; the grid only pre-filters candidates.
    if (distance_sq(n.pos, c) <= r2) out.push_back(n.id);
  });
  // Cell visitation order is spatial, not by id: restore the ascending-id
  // contract every consumer (and every RNG draw sequence) depends on.
  std::sort(out.begin(), out.end());
}

std::size_t Network::contention_count(NodeId center, double radius_m) const {
  const Point c = position(center);
  const double r2 = radius_m * radius_m;
  std::size_t count = 0;
  if (!use_grid_) {
    for (const Node& n : nodes_) {
      if (n.id == center || !n.up) continue;
      if (distance_sq(n.pos, c) <= r2) ++count;
    }
    return count;
  }
  grid_.visit_disc(c, radius_m, [&](std::uint32_t v) {
    const Node& n = nodes_[v];
    if (n.id == center || !n.up) return;
    if (distance_sq(n.pos, c) <= r2) ++count;
  });
  return count;
}

sim::Duration Network::airtime(std::size_t bytes) const {
  return mac_.t_tx_per_byte * static_cast<std::int64_t>(bytes);
}

double Network::tx_energy_uj(std::size_t bytes, std::size_t lvl) const {
  return radio_.level(lvl).power_mw * airtime(bytes).to_ms();
}

double Network::rx_energy_uj(std::size_t bytes) const {
  return energy_.rx_power_mw * airtime(bytes).to_ms();
}

bool Network::send(NodeId from, Packet packet, double coverage_m, EnergyUse use) {
  Node& n = nodes_.at(from.v);
  if (n.battery.depleted()) {
    // A drained node cannot key its radio, even before the fault layer has
    // processed the (zero-delay) depletion notification.
    ++counters_.dropped_battery_dead;
    if (sim_.events().enabled()) {
      emit_drop(sim_, obs::DropCause::kBatteryDead, from, packet.dst, packet.item);
    }
    return false;
  }
  if (!n.up) {
    ++counters_.dropped_sender_down;
    if (sim_.events().enabled()) {
      emit_drop(sim_, obs::DropCause::kSenderDown, from, packet.dst, packet.item);
    }
    return false;
  }
  // Pad the engineered disc by a hair: unicast coverage is usually the
  // exact receiver distance (send_to), and the sqrt/square round trip of
  // that distance can land one ulp short of the delivery test, silently
  // excluding the intended receiver on non-lattice deployments.
  coverage_m += 1e-6;
  const auto lvl = radio_.cheapest_level_for(coverage_m);
  if (!lvl) {
    ++counters_.dropped_out_of_range;
    if (sim_.events().enabled()) {
      emit_drop(sim_, obs::DropCause::kOutOfRange, from, packet.dst, packet.item, coverage_m);
    }
    return false;
  }
  packet.src = from;
  OutgoingFrame frame{std::move(packet), *lvl, coverage_m, use};
  if (mac_.infinite_parallelism) {
    send_unqueued(n, std::move(frame));
    return true;
  }
  n.mac_queue.push_back(std::move(frame));
  if (!n.mac_busy) mac_start_access(n);
  return true;
}

sim::Duration Network::access_delay(const Node& n, const OutgoingFrame& f) {
  sim::Duration wait = draw_backoff();
  if (mac_.contention_g_ms > 0.0) {
    // Analysis-style explicit contention term (Section 4.1's T_csma = G n^2).
    const std::size_t contenders = contention_count(n.id, f.coverage_m);
    wait += sim::Duration::ms(mac_.contention_g_ms * static_cast<double>(contenders) *
                              static_cast<double>(contenders));
  }
  return wait;
}

void Network::send_unqueued(Node& n, OutgoingFrame frame) {
  // Paper-style MAC: the frame neither waits for the node's earlier frames
  // nor occupies the channel; it simply takes access-delay + airtime.  The
  // frame rides a pooled context so both events capture three words.
  const NodeId id = n.id;
  const sim::Duration delay = access_delay(n, frame);
  FrameCtx* ctx = acquire_frame_ctx();
  ctx->frame = std::move(frame);
  sim_.after(delay, [this, id, ctx] {
    Node& sender = nodes_[id.v];
    if (sender.battery.depleted()) {
      ++counters_.dropped_battery_dead;  // drained during the backoff
      if (sim_.events().enabled()) {
        emit_drop(sim_, obs::DropCause::kBatteryDead, id, ctx->frame.packet.dst,
                  ctx->frame.packet.item);
      }
      release_frame_ctx(ctx);
      return;
    }
    if (!sender.up) {
      ++counters_.dropped_sender_down;  // crashed during the backoff
      if (sim_.events().enabled()) {
        emit_drop(sim_, obs::DropCause::kSenderDown, id, ctx->frame.packet.dst,
                  ctx->frame.packet.item);
      }
      release_frame_ctx(ctx);
      return;
    }
    const OutgoingFrame& f = ctx->frame;
    charge_node_tx(sender, tx_energy_uj(f.packet.size_bytes, f.level), f.use);
    count_tx(f.packet);
    sim_.after(airtime(f.packet.size_bytes), [this, id, ctx] {
      deliver_frame(nodes_[id.v], ctx->frame);
      release_frame_ctx(ctx);
    });
  });
}

bool Network::send_to(NodeId from, Packet packet, NodeId to, EnergyUse use) {
  packet.dst = to;
  return send(from, std::move(packet), distance_between(from, to), use);
}

sim::Duration Network::draw_backoff() {
  if (mac_.num_slots <= 1) return sim::Duration::zero();
  return mac_.slot_time * sim_.rng().uniform_int(0, mac_.num_slots - 1);
}

void Network::mac_start_access(Node& n) {
  assert(!n.mac_queue.empty());
  n.mac_busy = true;
  NodeId id = n.id;
  n.mac_event =
      sim_.after(access_delay(n, n.mac_queue.front()), [this, id] { mac_try_send(nodes_[id.v]); });
}

void Network::mac_try_send(Node& n) {
  assert(n.mac_busy && !n.mac_queue.empty());
  if (mac_.carrier_sense && sim_.now() < n.channel_busy_until) {
    // Channel busy: defer to the end of the busy period plus a fresh backoff
    // (CSMA/CA without collision modelling; see DESIGN.md).
    const auto retry_at = n.channel_busy_until + draw_backoff();
    NodeId id = n.id;
    n.mac_event = sim_.at(retry_at, [this, id] { mac_try_send(nodes_[id.v]); });
    return;
  }
  mac_begin_tx(n);
}

void Network::mac_begin_tx(Node& n) {
  assert(n.mac_busy && !n.mac_queue.empty());
  if (n.battery.depleted()) {
    // Drained while waiting for the channel: the queue dies with the radio.
    counters_.dropped_battery_dead += n.mac_queue.size();
    if (sim_.events().enabled()) {
      // One aggregate record; value carries how many queued frames died.
      emit_drop(sim_, obs::DropCause::kBatteryDead, n.id, NodeId{}, DataId{},
                static_cast<double>(n.mac_queue.size()));
    }
    n.mac_queue.clear();
    n.mac_busy = false;
    n.mac_event = sim::EventHandle{};
    return;
  }
  const OutgoingFrame& f = n.mac_queue.front();
  charge_node_tx(n, tx_energy_uj(f.packet.size_bytes, f.level), f.use);
  count_tx(f.packet);
  const auto end = sim_.now() + airtime(f.packet.size_bytes);
  if (mac_.carrier_sense) {
    // Occupy the channel across the coverage disc (the transmitter included).
    // Visitation order is irrelevant: stamping a max is commutative.
    if (end > n.channel_busy_until) n.channel_busy_until = end;
    const double r2 = f.coverage_m * f.coverage_m;
    if (!use_grid_) {
      for (Node& other : nodes_) {
        if (other.id == n.id) continue;
        if (distance_sq(other.pos, n.pos) <= r2 && end > other.channel_busy_until) {
          other.channel_busy_until = end;
        }
      }
    } else {
      grid_.visit_disc(n.pos, f.coverage_m, [&](std::uint32_t v) {
        Node& other = nodes_[v];
        if (other.id == n.id) return;
        if (distance_sq(other.pos, n.pos) <= r2 && end > other.channel_busy_until) {
          other.channel_busy_until = end;
        }
      });
    }
  }
  NodeId id = n.id;
  n.mac_event = sim_.at(end, [this, id] { mac_complete_tx(nodes_[id.v]); });
}

Network::DeliveryCtx* Network::acquire_delivery_ctx() {
  if (delivery_free_.empty()) {
    delivery_store_.push_back(std::make_unique<DeliveryCtx>());
    return delivery_store_.back().get();
  }
  DeliveryCtx* ctx = delivery_free_.back();
  delivery_free_.pop_back();
  return ctx;
}

void Network::release_delivery_ctx(DeliveryCtx* ctx) {
  ctx->processors.clear();
  delivery_free_.push_back(ctx);
}

Network::FrameCtx* Network::acquire_frame_ctx() {
  if (frame_free_.empty()) {
    frame_store_.push_back(std::make_unique<FrameCtx>());
    return frame_store_.back().get();
  }
  FrameCtx* ctx = frame_free_.back();
  frame_free_.pop_back();
  return ctx;
}

void Network::release_frame_ctx(FrameCtx* ctx) { frame_free_.push_back(ctx); }

void Network::deliver_frame(const Node& sender, const OutgoingFrame& frame) {
  // Every alive node inside the engineered disc hears the frame.  The
  // hearer list lives in a per-Network scratch buffer (delivery never
  // nests) and the receiver list comes from the vector pool, so a settled
  // run delivers without allocating.
  neighbors_within(sender.id, frame.coverage_m, /*include_down=*/false, scratch_hearers_);
  const Packet& p = frame.packet;
  DeliveryCtx* ctx = acquire_delivery_ctx();
  std::vector<NodeId>& processors = ctx->processors;
  processors.reserve(scratch_hearers_.size());
  for (NodeId h : scratch_hearers_) {
    if (nodes_[h.v].battery.depleted()) {
      // A drained receiver cannot decode: no rx charge, no processing, and
      // no link-fault draw (keeping the fault stream's draw sequence a
      // function of the *live* hearer set).
      ++counters_.dropped_battery_dead;
      if (sim_.events().enabled()) {
        emit_drop(sim_, obs::DropCause::kBatteryDead, h, sender.id, p.item);
      }
      continue;
    }
    if (link_fault_ && link_fault_(sender.id, h)) {
      // Faded below the decode threshold for this receiver: no rx charge,
      // no processing (ascending-id hearer order keeps the draws
      // deterministic).
      ++counters_.dropped_link_fault;
      if (sim_.events().enabled()) {
        emit_drop(sim_, obs::DropCause::kLinkFault, h, sender.id, p.item);
      }
      continue;
    }
    const bool addressed = p.is_broadcast() || p.dst == h;
    if (addressed || energy_.charge_overhearing) {
      charge_node_rx(nodes_[h.v], rx_energy_uj(p.size_bytes), frame.use);
    }
    if (addressed) processors.push_back(h);
  }
  if (processors.empty()) {
    release_delivery_ctx(ctx);
    return;
  }
  // One event covers all receivers: t_proc is a constant, so their
  // callbacks fire at the same instant; iteration order (ascending id)
  // keeps runs deterministic.  The context returns to the pool once the
  // event has run; copy-assigning the packet reuses pooled capacity.
  ctx->pkt = frame.packet;
  sim_.after(mac_.t_proc, [this, ctx] {
    for (NodeId h : ctx->processors) {
      Node& r = nodes_[h.v];
      if (r.battery.depleted()) {
        ++counters_.dropped_battery_dead;  // drained between rx and t_proc
        if (sim_.events().enabled()) {
          emit_drop(sim_, obs::DropCause::kBatteryDead, h, ctx->pkt.src, ctx->pkt.item);
        }
        continue;
      }
      if (!r.up) {
        ++counters_.dropped_receiver_down;
        if (sim_.events().enabled()) {
          emit_drop(sim_, obs::DropCause::kReceiverDown, h, ctx->pkt.src, ctx->pkt.item);
        }
        continue;
      }
      if (r.agent != nullptr) {
        ++counters_.deliveries;
        r.agent->on_receive(ctx->pkt);
      }
    }
    release_delivery_ctx(ctx);
  });
}

void Network::mac_complete_tx(Node& n) {
  assert(n.mac_busy && !n.mac_queue.empty());
  OutgoingFrame frame = n.mac_queue.pop_front();

  deliver_frame(n, frame);

  // Advance the queue.
  if (!n.mac_queue.empty()) {
    mac_start_access(n);
  } else {
    n.mac_busy = false;
    n.mac_event = sim::EventHandle{};
  }
}

void Network::set_up(NodeId id, bool up) {
  Node& n = nodes_.at(id.v);
  if (n.up == up) return;
  n.up = up;
  if (!up) {
    // Crash: lose the MAC queue and whatever phase was in progress.
    sim_.cancel(n.mac_event);
    n.mac_event = sim::EventHandle{};
    n.mac_queue.clear();
    n.mac_busy = false;
    if (n.agent != nullptr) n.agent->on_down();
  } else {
    if (n.agent != nullptr) n.agent->on_up();
  }
  if (on_state_change_) on_state_change_(id, up);
}

void Network::charge_tx(NodeId id, std::size_t bytes, double coverage_m, EnergyUse use) {
  const auto lvl = radio_.cheapest_level_for(coverage_m);
  if (!lvl) return;
  charge_node_tx(nodes_.at(id.v), tx_energy_uj(bytes, *lvl), use);
  counters_.tx_bytes += bytes;
  ++counters_.tx_route;
}

void Network::charge_rx(NodeId id, std::size_t bytes, EnergyUse use) {
  charge_node_rx(nodes_.at(id.v), rx_energy_uj(bytes), use);
}

void Network::charge_node_tx(Node& n, double uj, EnergyUse use) {
  const bool was = n.battery.depleted();
  n.battery.add_tx(uj, use);
  if (!was && n.battery.depleted()) dispatch_depletion(n);
  if (battery_.finite && sim_.events().enabled()) note_battery_level(n);
}

void Network::charge_node_rx(Node& n, double uj, EnergyUse use) {
  const bool was = n.battery.depleted();
  n.battery.add_rx(uj, use);
  if (!was && n.battery.depleted()) dispatch_depletion(n);
  if (battery_.finite && sim_.events().enabled()) note_battery_level(n);
}

void Network::charge_node_idle(Node& n, double uj) {
  const bool was = n.battery.depleted();
  n.battery.add_idle(uj);
  if (!was && n.battery.depleted()) dispatch_depletion(n);
  if (battery_.finite && sim_.events().enabled()) note_battery_level(n);
}

void Network::note_battery_level(Node& n) {
  const double init = n.battery.initial_charge_uj();
  const double frac = init > 0.0 ? n.battery.remaining_uj() / init : 0.0;
  std::uint8_t bucket;
  if (n.battery.depleted()) {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kDepleted);
  } else if (frac < 0.10) {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kBelow10);
  } else if (frac < 0.20) {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kBelow20);
  } else if (frac < 0.50) {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kBelow50);
  } else {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kAbove50);
  }
  // One record per bucket entered, even when a single charge crosses
  // several (the per-crossing semantics consumers rely on).
  while (n.battery_bucket < bucket) {
    ++n.battery_bucket;
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kBatteryThreshold,
                        .cause = n.battery_bucket, .node = n.id, .value = frac});
  }
}

std::size_t Network::max_mac_queue_depth() const {
  std::size_t depth = 0;
  for (const Node& n : nodes_) depth = std::max(depth, n.mac_queue.size());
  return depth;
}

void Network::dispatch_depletion(Node& n) {
  // Zero-delay deferral: the charge sites sit inside MAC/delivery loops, and
  // the fault layer's kill path (Network::set_up) tears down exactly the
  // structures those loops are iterating.  The battery's depleted flag
  // already gates all traffic in the meantime.
  const NodeId id = n.id;
  sim_.after(sim::Duration::zero(), [this, id] {
    if (on_depleted_) on_depleted_(id);
  });
}

void Network::start_idle_drain(sim::TimePoint until) {
  if (!battery_.finite || battery_.idle_drain_mw <= 0.0) return;
  if (battery_.idle_tick <= sim::Duration::zero()) return;
  idle_drain_until_ = until;
  const auto first = sim_.now() + battery_.idle_tick;
  if (first > idle_drain_until_) return;
  sim_.at(first, [this] { idle_drain_tick(); });
}

void Network::idle_drain_tick() {
  const double uj = battery_.idle_drain_mw * battery_.idle_tick.to_ms();
  // Ascending node id; down-but-not-depleted nodes leak too (crashed
  // hardware still holds its charge budget against the clock).
  for (auto& n : nodes_) {
    if (!n.battery.depleted()) charge_node_idle(n, uj);
  }
  const auto next = sim_.now() + battery_.idle_tick;
  if (next > idle_drain_until_) return;  // horizon reached: let the run drain
  sim_.at(next, [this] { idle_drain_tick(); });
}

std::size_t Network::depleted_count() const {
  std::size_t n = 0;
  for (const auto& node : nodes_) {
    if (node.battery.depleted()) ++n;
  }
  return n;
}

BatterySummary Network::battery_summary() const {
  BatterySummary s;
  if (!battery_.finite) return s;
  std::vector<double> residuals;
  residuals.reserve(nodes_.size());
  for (const auto& n : nodes_) {
    if (n.battery.depleted()) ++s.depleted_nodes;
    s.initial_total_uj += n.battery.initial_charge_uj();
    s.spent_total_uj += n.battery.spent_uj();
    residuals.push_back(n.battery.remaining_uj());
  }
  std::sort(residuals.begin(), residuals.end());
  const auto count = static_cast<double>(residuals.size());
  double sum = 0.0;
  double weighted = 0.0;  // sum of rank * x over ascending residuals
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    sum += residuals[i];
    weighted += static_cast<double>(i + 1) * residuals[i];
  }
  s.residual_min_uj = residuals.front();
  s.residual_mean_uj = sum / count;
  double var = 0.0;
  for (const double r : residuals) var += (r - s.residual_mean_uj) * (r - s.residual_mean_uj);
  s.residual_stddev_uj = std::sqrt(var / count);
  // Gini over the residual charges: 0 = perfectly even, 1 = one node holds
  // everything.  All-zero residuals (everyone dead) read as perfectly even.
  if (sum > 0.0) s.residual_gini = (2.0 * weighted) / (count * sum) - (count + 1.0) / count;
  return s;
}

EnergyBreakdown Network::energy() const {
  EnergyBreakdown total;
  for (const auto& n : nodes_) {
    total.protocol_tx_uj += n.battery.meter().protocol_tx_uj();
    total.protocol_rx_uj += n.battery.meter().protocol_rx_uj();
    total.routing_tx_uj += n.battery.meter().routing_tx_uj();
    total.routing_rx_uj += n.battery.meter().routing_rx_uj();
    total.idle_uj += n.battery.idle_uj();
  }
  return total;
}

void Network::count_tx(const Packet& p) {
  switch (p.type) {
    case PacketType::kAdv: ++counters_.tx_adv; break;
    case PacketType::kReq: ++counters_.tx_req; break;
    case PacketType::kData: ++counters_.tx_data; break;
    case PacketType::kRouteUpdate: ++counters_.tx_route; break;
  }
  counters_.tx_bytes += p.size_bytes;
}

}  // namespace spms::net
