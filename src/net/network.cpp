#include "net/network.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "obs/event_trace.hpp"

namespace spms::net {

namespace {

/// Typed frame-drop record; call only when sim.events().enabled().
void emit_drop(sim::Simulation& sim, obs::DropCause cause, NodeId node, NodeId peer, DataId item,
               double value = 0.0) {
  sim.events().emit({.at = sim.now(), .kind = obs::TraceKind::kFrameDrop,
                     .cause = static_cast<std::uint8_t>(cause), .node = node, .peer = peer,
                     .item = item, .value = value});
}

}  // namespace

Network::Network(sim::Simulation& sim, RadioTable radio, MacParams mac, EnergyModelParams energy,
                 std::vector<Point> positions, double zone_radius_m, BatteryParams battery)
    : sim_(sim),
      radio_(std::move(radio)),
      mac_(mac),
      energy_(energy),
      battery_(battery),
      zone_radius_m_(zone_radius_m) {
  if (positions.empty()) throw std::invalid_argument{"Network: empty deployment"};
  if (zone_radius_m <= 0 || zone_radius_m > radio_.max_range()) {
    throw std::invalid_argument{"Network: zone radius outside the radio's reach"};
  }
  if (battery_.finite && battery_.capacity_uj <= 0.0) {
    throw std::invalid_argument{"Network: finite battery needs a positive capacity"};
  }
  if (battery_.heterogeneity < 0.0 || battery_.heterogeneity >= 1.0) {
    throw std::invalid_argument{"Network: battery heterogeneity must be in [0, 1)"};
  }
  const std::size_t n = positions.size();
  pos_ = std::move(positions);
  up_.assign(n, 1);
  channel_busy_until_.assign(n, sim::TimePoint::zero() - sim::Duration::seconds(3600));
  battery_state_.resize(n);
  battery_bucket_.assign(n, 0);
  agent_.assign(n, nullptr);
  mac_queue_.resize(n);
  mac_busy_.assign(n, 0);
  mac_event_.resize(n);
  // The grid's cell edge is the zone radius: the dominant disc query (a
  // zone) then overlaps at most a 3x3 cell block.  Below kGridMinNodes the
  // linear scan over the contiguous position array is cheaper than the
  // grid's cell-block hash lookups, so tiny deployments keep the
  // brute-force path (the grid stays coherent either way — the cutover is
  // query-side only and both paths produce identical results in identical
  // order).
  use_grid_ = n >= kGridMinNodes;
  grid_.reset(zone_radius_m, n);
  // One context per possible dispatch worker, allocated up front so the
  // parallel phase indexes a stable vector (the contexts themselves stay
  // empty until a worker first touches them).
  worker_ctx_.resize(sim::Scheduler::kMaxWorkers);
  // Heterogeneous charges come from a dedicated sub-stream in ascending node
  // id, so the draw sequence is a pure function of (seed, capacity, h).
  auto init_rng = sim_.rng().fork(kBatteryInitStream);
  for (std::size_t i = 0; i < n; ++i) {
    grid_.insert(static_cast<std::uint32_t>(i), pos_[i]);
    if (battery_.finite) {
      double charge = battery_.capacity_uj;
      if (battery_.heterogeneity > 0.0) {
        charge = init_rng.uniform(battery_.capacity_uj * (1.0 - battery_.heterogeneity),
                                  battery_.capacity_uj * (1.0 + battery_.heterogeneity));
      }
      battery_state_[i].init_finite(charge);
    }
  }
}

void Network::neighbors_within(NodeId center, double radius_m, bool include_down,
                               std::vector<NodeId>& out) const {
  out.clear();
  const Point c = position(center);
  const double r2 = radius_m * radius_m;
  if (!use_grid_) {
    // Tiny deployment: a linear pass over the contiguous position array
    // beats the grid's hash lookups, and it yields ascending ids for free.
    for (std::uint32_t v = 0; v < pos_.size(); ++v) {
      if (v == center.v) continue;
      if (!include_down && up_[v] == 0) continue;
      if (distance_sq(pos_[v], c) <= r2) out.push_back(NodeId{v});
    }
    return;
  }
  grid_.visit_disc(c, radius_m, [&](std::uint32_t v) {
    if (v == center.v) return;
    if (!include_down && up_[v] == 0) return;
    // The exact inclusion test matches the historical brute-force scan
    // bit-for-bit; the grid only pre-filters candidates.
    if (distance_sq(pos_[v], c) <= r2) out.push_back(NodeId{v});
  });
  // Cell visitation order is spatial, not by id: restore the ascending-id
  // contract every consumer (and every RNG draw sequence) depends on.
  std::sort(out.begin(), out.end());
}

std::size_t Network::contention_count(NodeId center, double radius_m) const {
  const Point c = position(center);
  const double r2 = radius_m * radius_m;
  std::size_t count = 0;
  if (!use_grid_) {
    for (std::uint32_t v = 0; v < pos_.size(); ++v) {
      if (v == center.v || up_[v] == 0) continue;
      if (distance_sq(pos_[v], c) <= r2) ++count;
    }
    return count;
  }
  grid_.visit_disc(c, radius_m, [&](std::uint32_t v) {
    if (v == center.v || up_[v] == 0) return;
    if (distance_sq(pos_[v], c) <= r2) ++count;
  });
  return count;
}

sim::Duration Network::airtime(std::size_t bytes) const {
  return mac_.t_tx_per_byte * static_cast<std::int64_t>(bytes);
}

double Network::tx_energy_uj(std::size_t bytes, std::size_t lvl) const {
  return radio_.level(lvl).power_mw * airtime(bytes).to_ms();
}

double Network::rx_energy_uj(std::size_t bytes) const {
  return energy_.rx_power_mw * airtime(bytes).to_ms();
}

bool Network::send(NodeId from, Packet packet, double coverage_m, EnergyUse use) {
  const std::uint32_t v = from.v;
  if (v >= pos_.size()) throw std::out_of_range{"Network::send: bad node id"};
  if (battery_state_[v].depleted()) {
    // A drained node cannot key its radio, even before the fault layer has
    // processed the (zero-delay) depletion notification.
    ++ctr().dropped_battery_dead;
    if (sim_.events().enabled()) {
      emit_drop(sim_, obs::DropCause::kBatteryDead, from, packet.dst, packet.item);
    }
    return false;
  }
  if (up_[v] == 0) {
    ++ctr().dropped_sender_down;
    if (sim_.events().enabled()) {
      emit_drop(sim_, obs::DropCause::kSenderDown, from, packet.dst, packet.item);
    }
    return false;
  }
  // Pad the engineered disc by a hair: unicast coverage is usually the
  // exact receiver distance (send_to), and the sqrt/square round trip of
  // that distance can land one ulp short of the delivery test, silently
  // excluding the intended receiver on non-lattice deployments.
  coverage_m += 1e-6;
  const auto lvl = radio_.cheapest_level_for(coverage_m);
  if (!lvl) {
    ++ctr().dropped_out_of_range;
    if (sim_.events().enabled()) {
      emit_drop(sim_, obs::DropCause::kOutOfRange, from, packet.dst, packet.item, coverage_m);
    }
    return false;
  }
  packet.src = from;
  OutgoingFrame frame{std::move(packet), *lvl, coverage_m, use};
  if (mac_.infinite_parallelism) {
    send_unqueued(v, std::move(frame));
    return true;
  }
  mac_queue_[v].push_back(std::move(frame));
  if (mac_busy_[v] == 0) mac_start_access(v);
  return true;
}

sim::Duration Network::contention_delay(std::uint32_t v, const OutgoingFrame& f) const {
  if (mac_.contention_g_ms <= 0.0) return sim::Duration::zero();
  // Analysis-style explicit contention term (Section 4.1's T_csma = G n^2).
  // Computed before the backoff draw the scheduler adds on top; contention
  // counting never draws, so hoisting it ahead of the draw leaves the RNG
  // sequence untouched.
  const std::size_t contenders = contention_count(NodeId{v}, f.coverage_m);
  return sim::Duration::ms(mac_.contention_g_ms * static_cast<double>(contenders) *
                           static_cast<double>(contenders));
}

sim::Footprint Network::event_footprint(std::uint32_t v, double coverage_m) const {
  if (!spatial_tags_) return sim::Footprint::global();
  // coverage bounds the hearer set and carrier stamps; + zone bounds every
  // synchronous query a receiving agent can issue (its sends and contention
  // scans reach at most one zone from a hearer).  The pad absorbs rounding
  // in the conflict test's squared-distance comparison.
  const Point p = pos_[v];
  return sim::Footprint::disc(p.x, p.y, coverage_m + zone_radius_m_ + 1e-6);
}

void Network::send_unqueued(std::uint32_t v, OutgoingFrame frame) {
  // Paper-style MAC: the frame neither waits for the node's earlier frames
  // nor occupies the channel; it simply takes access-delay + airtime.  The
  // frame rides a pooled context so both events capture three words.
  const NodeId id{v};
  const sim::Duration extra = contention_delay(v, frame);
  const double coverage = frame.coverage_m;
  FrameCtx* ctx = acquire_frame_ctx();
  ctx->frame = std::move(frame);
  sim_.at_backoff(sim_.now(), extra, mac_.slot_time, mac_.num_slots, [this, id, ctx] {
    if (battery_state_[id.v].depleted()) {
      ++ctr().dropped_battery_dead;  // drained during the backoff
      if (sim_.events().enabled()) {
        emit_drop(sim_, obs::DropCause::kBatteryDead, id, ctx->frame.packet.dst,
                  ctx->frame.packet.item);
      }
      release_frame_ctx(ctx);
      return;
    }
    if (up_[id.v] == 0) {
      ++ctr().dropped_sender_down;  // crashed during the backoff
      if (sim_.events().enabled()) {
        emit_drop(sim_, obs::DropCause::kSenderDown, id, ctx->frame.packet.dst,
                  ctx->frame.packet.item);
      }
      release_frame_ctx(ctx);
      return;
    }
    const OutgoingFrame& f = ctx->frame;
    charge_node_tx(id.v, tx_energy_uj(f.packet.size_bytes, f.level), f.use);
    count_tx(f.packet);
    sim_.after(airtime(f.packet.size_bytes), [this, id, ctx] {
      deliver_frame(id.v, ctx->frame);
      release_frame_ctx(ctx);
    }, event_footprint(id.v, f.coverage_m));
  }, event_footprint(v, coverage));
}

bool Network::send_to(NodeId from, Packet packet, NodeId to, EnergyUse use) {
  packet.dst = to;
  return send(from, std::move(packet), distance_between(from, to), use);
}

void Network::mac_start_access(std::uint32_t v) {
  assert(!mac_queue_[v].empty());
  mac_busy_[v] = 1;
  const OutgoingFrame& f = mac_queue_[v].front();
  mac_event_[v] = sim_.at_backoff(sim_.now(), contention_delay(v, f), mac_.slot_time,
                                  mac_.num_slots, [this, v] { mac_try_send(v); },
                                  event_footprint(v, f.coverage_m));
}

void Network::mac_try_send(std::uint32_t v) {
  assert(mac_busy_[v] != 0 && !mac_queue_[v].empty());
  if (mac_.carrier_sense && sim_.now() < channel_busy_until_[v]) {
    // Channel busy: defer to the end of the busy period plus a fresh backoff
    // (CSMA/CA without collision modelling; see DESIGN.md).
    const OutgoingFrame& f = mac_queue_[v].front();
    mac_event_[v] = sim_.at_backoff(channel_busy_until_[v], sim::Duration::zero(),
                                    mac_.slot_time, mac_.num_slots,
                                    [this, v] { mac_try_send(v); },
                                    event_footprint(v, f.coverage_m));
    return;
  }
  mac_begin_tx(v);
}

void Network::mac_begin_tx(std::uint32_t v) {
  assert(mac_busy_[v] != 0 && !mac_queue_[v].empty());
  if (battery_state_[v].depleted()) {
    // Drained while waiting for the channel: the queue dies with the radio.
    ctr().dropped_battery_dead += mac_queue_[v].size();
    if (sim_.events().enabled()) {
      // One aggregate record; value carries how many queued frames died.
      emit_drop(sim_, obs::DropCause::kBatteryDead, NodeId{v}, NodeId{}, DataId{},
                static_cast<double>(mac_queue_[v].size()));
    }
    mac_queue_[v].clear();
    mac_busy_[v] = 0;
    mac_event_[v] = sim::EventHandle{};
    return;
  }
  const OutgoingFrame& f = mac_queue_[v].front();
  charge_node_tx(v, tx_energy_uj(f.packet.size_bytes, f.level), f.use);
  count_tx(f.packet);
  const auto end = sim_.now() + airtime(f.packet.size_bytes);
  if (mac_.carrier_sense) {
    // Occupy the channel across the coverage disc (the transmitter included).
    // Visitation order is irrelevant: stamping a max is commutative.
    if (end > channel_busy_until_[v]) channel_busy_until_[v] = end;
    const Point sender_pos = pos_[v];
    const double r2 = f.coverage_m * f.coverage_m;
    if (!use_grid_) {
      for (std::uint32_t o = 0; o < pos_.size(); ++o) {
        if (o == v) continue;
        if (distance_sq(pos_[o], sender_pos) <= r2 && end > channel_busy_until_[o]) {
          channel_busy_until_[o] = end;
        }
      }
    } else {
      grid_.visit_disc(sender_pos, f.coverage_m, [&](std::uint32_t o) {
        if (o == v) return;
        if (distance_sq(pos_[o], sender_pos) <= r2 && end > channel_busy_until_[o]) {
          channel_busy_until_[o] = end;
        }
      });
    }
  }
  mac_event_[v] = sim_.at(end, [this, v] { mac_complete_tx(v); },
                          event_footprint(v, f.coverage_m));
}

Network::DeliveryCtx* Network::acquire_delivery_ctx() {
  // Worker-aware: during parallel group execution each worker draws from a
  // private pool so acquisitions never race.  A context released on a
  // different thread than it was acquired on simply migrates pools — both
  // store and free-list entries are plain pointers into stable unique_ptrs.
  const int w = sim::current_worker();
  auto& store = w < 0 ? delivery_store_ : worker_ctx_[w].delivery_store;
  auto& free_list = w < 0 ? delivery_free_ : worker_ctx_[w].delivery_free;
  if (free_list.empty()) {
    store.push_back(std::make_unique<DeliveryCtx>());
    return store.back().get();
  }
  DeliveryCtx* ctx = free_list.back();
  free_list.pop_back();
  return ctx;
}

void Network::release_delivery_ctx(DeliveryCtx* ctx) {
  const int w = sim::current_worker();
  ctx->processors.clear();
  (w < 0 ? delivery_free_ : worker_ctx_[w].delivery_free).push_back(ctx);
}

Network::FrameCtx* Network::acquire_frame_ctx() {
  const int w = sim::current_worker();
  auto& store = w < 0 ? frame_store_ : worker_ctx_[w].frame_store;
  auto& free_list = w < 0 ? frame_free_ : worker_ctx_[w].frame_free;
  if (free_list.empty()) {
    store.push_back(std::make_unique<FrameCtx>());
    return store.back().get();
  }
  FrameCtx* ctx = free_list.back();
  free_list.pop_back();
  return ctx;
}

void Network::release_frame_ctx(FrameCtx* ctx) {
  const int w = sim::current_worker();
  (w < 0 ? frame_free_ : worker_ctx_[w].frame_free).push_back(ctx);
}

void Network::deliver_frame(std::uint32_t sender, const OutgoingFrame& frame) {
  // Every alive node inside the engineered disc hears the frame.  The
  // hearer list lives in a per-Network scratch buffer (delivery never
  // nests) and the receiver list comes from the vector pool, so a settled
  // run delivers without allocating.
  const NodeId sender_id{sender};
  std::vector<NodeId>& hearers = hearer_scratch();
  neighbors_within(sender_id, frame.coverage_m, /*include_down=*/false, hearers);
  const Packet& p = frame.packet;
  DeliveryCtx* ctx = acquire_delivery_ctx();
  std::vector<NodeId>& processors = ctx->processors;
  processors.reserve(hearers.size());
  for (NodeId h : hearers) {
    if (battery_state_[h.v].depleted()) {
      // A drained receiver cannot decode: no rx charge, no processing, and
      // no link-fault draw (keeping the fault stream's draw sequence a
      // function of the *live* hearer set).
      ++ctr().dropped_battery_dead;
      if (sim_.events().enabled()) {
        emit_drop(sim_, obs::DropCause::kBatteryDead, h, sender_id, p.item);
      }
      continue;
    }
    if (link_fault_ && link_fault_(sender_id, h)) {
      // Faded below the decode threshold for this receiver: no rx charge,
      // no processing (ascending-id hearer order keeps the draws
      // deterministic).
      ++ctr().dropped_link_fault;
      if (sim_.events().enabled()) {
        emit_drop(sim_, obs::DropCause::kLinkFault, h, sender_id, p.item);
      }
      continue;
    }
    const bool addressed = p.is_broadcast() || p.dst == h;
    if (addressed || energy_.charge_overhearing) {
      charge_node_rx(h.v, rx_energy_uj(p.size_bytes), frame.use);
    }
    if (addressed) processors.push_back(h);
  }
  if (processors.empty()) {
    release_delivery_ctx(ctx);
    return;
  }
  // One event covers all receivers: t_proc is a constant, so their
  // callbacks fire at the same instant; iteration order (ascending id)
  // keeps runs deterministic.  The context returns to the pool once the
  // event has run; copy-assigning the packet reuses pooled capacity.
  ctx->pkt = frame.packet;
  sim_.after(mac_.t_proc, [this, ctx] {
    for (NodeId h : ctx->processors) {
      if (battery_state_[h.v].depleted()) {
        ++ctr().dropped_battery_dead;  // drained between rx and t_proc
        if (sim_.events().enabled()) {
          emit_drop(sim_, obs::DropCause::kBatteryDead, h, ctx->pkt.src, ctx->pkt.item);
        }
        continue;
      }
      if (up_[h.v] == 0) {
        ++ctr().dropped_receiver_down;
        if (sim_.events().enabled()) {
          emit_drop(sim_, obs::DropCause::kReceiverDown, h, ctx->pkt.src, ctx->pkt.item);
        }
        continue;
      }
      if (agent_[h.v] != nullptr) {
        ++ctr().deliveries;
        agent_[h.v]->on_receive(ctx->pkt);
      }
    }
    release_delivery_ctx(ctx);
  }, event_footprint(sender, frame.coverage_m));
}

void Network::mac_complete_tx(std::uint32_t v) {
  assert(mac_busy_[v] != 0 && !mac_queue_[v].empty());
  OutgoingFrame frame = mac_queue_[v].pop_front();

  deliver_frame(v, frame);

  // Advance the queue.
  if (!mac_queue_[v].empty()) {
    mac_start_access(v);
  } else {
    mac_busy_[v] = 0;
    mac_event_[v] = sim::EventHandle{};
  }
}

void Network::set_up(NodeId id, bool up) {
  const std::uint32_t v = id.v;
  if (v >= pos_.size()) throw std::out_of_range{"Network::set_up: bad node id"};
  if ((up_[v] != 0) == up) return;
  up_[v] = up ? 1 : 0;
  if (!up) {
    // Crash: lose the MAC queue and whatever phase was in progress.
    sim_.cancel(mac_event_[v]);
    mac_event_[v] = sim::EventHandle{};
    mac_queue_[v].clear();
    mac_busy_[v] = 0;
    if (agent_[v] != nullptr) agent_[v]->on_down();
  } else {
    if (agent_[v] != nullptr) agent_[v]->on_up();
  }
  if (on_state_change_) on_state_change_(id, up);
}

void Network::charge_tx(NodeId id, std::size_t bytes, double coverage_m, EnergyUse use) {
  const auto lvl = radio_.cheapest_level_for(coverage_m);
  if (!lvl) return;
  charge_node_tx(id.v, tx_energy_uj(bytes, *lvl), use);
  ctr().tx_bytes += bytes;
  ++ctr().tx_route;
}

void Network::charge_rx(NodeId id, std::size_t bytes, EnergyUse use) {
  charge_node_rx(id.v, rx_energy_uj(bytes), use);
}

void Network::charge_node_tx(std::uint32_t v, double uj, EnergyUse use) {
  Battery& b = battery_state_.at(v);
  const bool was = b.depleted();
  b.add_tx(uj, use);
  if (!was && b.depleted()) dispatch_depletion(v);
  if (battery_.finite && sim_.events().enabled()) note_battery_level(v);
}

void Network::charge_node_rx(std::uint32_t v, double uj, EnergyUse use) {
  Battery& b = battery_state_.at(v);
  const bool was = b.depleted();
  b.add_rx(uj, use);
  if (!was && b.depleted()) dispatch_depletion(v);
  if (battery_.finite && sim_.events().enabled()) note_battery_level(v);
}

void Network::charge_node_idle(std::uint32_t v, double uj) {
  Battery& b = battery_state_[v];
  const bool was = b.depleted();
  b.add_idle(uj);
  if (!was && b.depleted()) dispatch_depletion(v);
  if (battery_.finite && sim_.events().enabled()) note_battery_level(v);
}

void Network::note_battery_level(std::uint32_t v) {
  const Battery& b = battery_state_[v];
  const double init = b.initial_charge_uj();
  const double frac = init > 0.0 ? b.remaining_uj() / init : 0.0;
  std::uint8_t bucket;
  if (b.depleted()) {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kDepleted);
  } else if (frac < 0.10) {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kBelow10);
  } else if (frac < 0.20) {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kBelow20);
  } else if (frac < 0.50) {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kBelow50);
  } else {
    bucket = static_cast<std::uint8_t>(obs::BatteryBucket::kAbove50);
  }
  // One record per bucket entered, even when a single charge crosses
  // several (the per-crossing semantics consumers rely on).
  while (battery_bucket_[v] < bucket) {
    ++battery_bucket_[v];
    sim_.events().emit({.at = sim_.now(), .kind = obs::TraceKind::kBatteryThreshold,
                        .cause = battery_bucket_[v], .node = NodeId{v}, .value = frac});
  }
}

std::size_t Network::max_mac_queue_depth() const {
  std::size_t depth = 0;
  for (const FrameQueue& q : mac_queue_) depth = std::max(depth, q.size());
  return depth;
}

void Network::dispatch_depletion(std::uint32_t v) {
  // Zero-delay deferral: the charge sites sit inside MAC/delivery loops, and
  // the fault layer's kill path (Network::set_up) tears down exactly the
  // structures those loops are iterating.  The battery's depleted flag
  // already gates all traffic in the meantime.
  const NodeId id{v};
  sim_.after(sim::Duration::zero(), [this, id] {
    if (on_depleted_) on_depleted_(id);
  });
}

void Network::start_idle_drain(sim::TimePoint until) {
  if (!battery_.finite || battery_.idle_drain_mw <= 0.0) return;
  if (battery_.idle_tick <= sim::Duration::zero()) return;
  idle_drain_until_ = until;
  const auto first = sim_.now() + battery_.idle_tick;
  if (first > idle_drain_until_) return;
  sim_.at(first, [this] { idle_drain_tick(); });
}

void Network::idle_drain_tick() {
  const double uj = battery_.idle_drain_mw * battery_.idle_tick.to_ms();
  // Ascending node id; down-but-not-depleted nodes leak too (crashed
  // hardware still holds its charge budget against the clock).
  for (std::uint32_t v = 0; v < battery_state_.size(); ++v) {
    if (!battery_state_[v].depleted()) charge_node_idle(v, uj);
  }
  const auto next = sim_.now() + battery_.idle_tick;
  if (next > idle_drain_until_) return;  // horizon reached: let the run drain
  sim_.at(next, [this] { idle_drain_tick(); });
}

std::size_t Network::depleted_count() const {
  std::size_t n = 0;
  for (const Battery& b : battery_state_) {
    if (b.depleted()) ++n;
  }
  return n;
}

BatterySummary Network::battery_summary() const {
  BatterySummary s;
  if (!battery_.finite) return s;
  std::vector<double> residuals;
  residuals.reserve(battery_state_.size());
  for (const Battery& b : battery_state_) {
    if (b.depleted()) ++s.depleted_nodes;
    s.initial_total_uj += b.initial_charge_uj();
    s.spent_total_uj += b.spent_uj();
    residuals.push_back(b.remaining_uj());
  }
  std::sort(residuals.begin(), residuals.end());
  const auto count = static_cast<double>(residuals.size());
  double sum = 0.0;
  double weighted = 0.0;  // sum of rank * x over ascending residuals
  for (std::size_t i = 0; i < residuals.size(); ++i) {
    sum += residuals[i];
    weighted += static_cast<double>(i + 1) * residuals[i];
  }
  s.residual_min_uj = residuals.front();
  s.residual_mean_uj = sum / count;
  double var = 0.0;
  for (const double r : residuals) var += (r - s.residual_mean_uj) * (r - s.residual_mean_uj);
  s.residual_stddev_uj = std::sqrt(var / count);
  // Gini over the residual charges: 0 = perfectly even, 1 = one node holds
  // everything.  All-zero residuals (everyone dead) read as perfectly even.
  if (sum > 0.0) s.residual_gini = (2.0 * weighted) / (count * sum) - (count + 1.0) / count;
  return s;
}

EnergyBreakdown Network::energy() const {
  EnergyBreakdown total;
  for (const Battery& b : battery_state_) {
    total.protocol_tx_uj += b.meter().protocol_tx_uj();
    total.protocol_rx_uj += b.meter().protocol_rx_uj();
    total.routing_tx_uj += b.meter().routing_tx_uj();
    total.routing_rx_uj += b.meter().routing_rx_uj();
    total.idle_uj += b.idle_uj();
  }
  return total;
}

const NetCounters& Network::counters() const {
  // Fold per-worker deltas into the master copy.  Every field is a u64 sum,
  // so folding commutes and the result is independent of which worker
  // incremented what.  Zeroing each delta keeps the fold idempotent.
  for (WorkerCtx& ctx : worker_ctx_) {
    NetCounters& d = ctx.counters;
    counters_.tx_adv += d.tx_adv;
    counters_.tx_req += d.tx_req;
    counters_.tx_data += d.tx_data;
    counters_.tx_route += d.tx_route;
    counters_.tx_bytes += d.tx_bytes;
    counters_.deliveries += d.deliveries;
    counters_.dropped_sender_down += d.dropped_sender_down;
    counters_.dropped_out_of_range += d.dropped_out_of_range;
    counters_.dropped_receiver_down += d.dropped_receiver_down;
    counters_.dropped_link_fault += d.dropped_link_fault;
    counters_.dropped_battery_dead += d.dropped_battery_dead;
    d = NetCounters{};
  }
  return counters_;
}

void Network::count_tx(const Packet& p) {
  NetCounters& c = ctr();
  switch (p.type) {
    case PacketType::kAdv: ++c.tx_adv; break;
    case PacketType::kReq: ++c.tx_req; break;
    case PacketType::kData: ++c.tx_data; break;
    case PacketType::kRouteUpdate: ++c.tx_route; break;
  }
  c.tx_bytes += p.size_bytes;
}

}  // namespace spms::net
