#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "net/energy.hpp"
#include "net/frame_queue.hpp"
#include "net/geometry.hpp"
#include "net/ids.hpp"
#include "net/node.hpp"
#include "net/packet.hpp"
#include "net/params.hpp"
#include "net/radio.hpp"
#include "net/spatial_grid.hpp"
#include "sim/scheduler.hpp"
#include "sim/simulation.hpp"

/// \file network.hpp
/// The wireless network: nodes + medium + MAC + energy accounting.
///
/// Model (documented in DESIGN.md):
///  * Transmissions use the cheapest discrete power level covering the
///    requested distance; the "engineered coverage disc" of a transmission
///    is exactly that distance — every alive node inside it hears the frame.
///  * Channel access costs T_csma = G*n^2 (n = alive nodes in the disc)
///    plus a uniform slotted backoff; a node transmits one frame at a time.
///  * Airtime = bytes * t_tx_per_byte; propagation delay is zero (paper
///    Section 4.1).  Receivers process a frame t_proc after it arrives.
///  * A down node transmits nothing, hears nothing, and loses its MAC queue
///    the moment it fails ("any scheduled packet transfer is cancelled").
///
/// Hot-path notes: every disc query (neighbor lookup, contention count,
/// carrier-sense occupation, frame delivery) runs over a SpatialGrid keyed
/// on the zone radius instead of scanning all nodes; set_position() keeps
/// the grid coherent under mobility.  Per-node state is structure-of-arrays:
/// the disc scans touch only the dense position/liveness/busy-until arrays
/// (16/1/8 bytes per node) instead of one padded struct per node, so a
/// million-node field streams through cache.  Results are exactly those of
/// the historical per-object layout — same inclusive d^2 <= r^2 test,
/// ascending-id order — so RNG draw sequences and run results stay
/// byte-identical.
///
/// Parallel dispatch: MAC and delivery events are tagged with a spatial
/// conflict footprint of radius coverage + zone around the sender — a
/// conservative bound on everything the event chain touches (carrier stamps
/// and hearers within coverage; a receiving agent's synchronous sends and
/// contention scans within one zone of a hearer).  The scheduler uses the
/// tags to run provably-independent same-time events concurrently
/// (scheduler.hpp); per-worker scratch buffers, context pools and counter
/// deltas keep those executions disjoint, and footprint tagging shuts off
/// (kGlobal, i.e. serialize) when a link-fault hook is installed, because
/// link faults draw from an order-sensitive RNG stream inside delivery.

namespace spms::net {

/// Aggregate traffic counters for a run (used by tests and benches).
struct NetCounters {
  std::uint64_t tx_adv = 0;
  std::uint64_t tx_req = 0;
  std::uint64_t tx_data = 0;
  std::uint64_t tx_route = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t deliveries = 0;           ///< agent on_receive invocations
  std::uint64_t dropped_sender_down = 0;  ///< send() while the sender is down
  std::uint64_t dropped_out_of_range = 0; ///< requested disc beyond max range
  std::uint64_t dropped_receiver_down = 0;///< receiver failed before processing
  std::uint64_t dropped_link_fault = 0;   ///< reception lost to a link fault
  std::uint64_t dropped_battery_dead = 0; ///< frame lost to a drained battery

  [[nodiscard]] std::uint64_t tx_total() const { return tx_adv + tx_req + tx_data + tx_route; }
};

/// Owns all nodes and simulates the shared wireless medium.
class Network {
 public:
  /// \param zone_radius_m  the node's maximum transmission radius for this
  ///        deployment (the paper's "zone" radius); must be covered by the
  ///        radio table's strongest level.
  /// \param battery  finite-budget battery model; the default is the
  ///        historical infinite battery.  Heterogeneous initial charges are
  ///        drawn here on a dedicated RNG sub-stream (ascending node id), so
  ///        no other stream in the run is perturbed by the battery config.
  /// \throws std::invalid_argument on an empty deployment or a zone radius
  ///         beyond the radio's maximum range.
  Network(sim::Simulation& sim, RadioTable radio, MacParams mac, EnergyModelParams energy,
          std::vector<Point> positions, double zone_radius_m, BatteryParams battery = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- queries ---------------------------------------------------------------
  [[nodiscard]] std::size_t size() const { return pos_.size(); }
  [[nodiscard]] Point position(NodeId id) const { return pos_.at(id.v); }
  [[nodiscard]] bool is_up(NodeId id) const { return up_.at(id.v) != 0; }
  [[nodiscard]] double zone_radius() const { return zone_radius_m_; }
  [[nodiscard]] const RadioTable& radio() const { return radio_; }
  [[nodiscard]] const MacParams& mac_params() const { return mac_; }
  [[nodiscard]] const EnergyModelParams& energy_params() const { return energy_; }
  [[nodiscard]] sim::Simulation& simulation() { return sim_; }

  /// Ids of nodes within `radius_m` of `center` (excluding `center` itself),
  /// in ascending id order.  `include_down` keeps failed nodes in the list
  /// (zone membership ignores transient failures; contention does not).
  [[nodiscard]] std::vector<NodeId> neighbors_within(NodeId center, double radius_m,
                                                     bool include_down = true) const {
    std::vector<NodeId> out;
    neighbors_within(center, radius_m, include_down, out);
    return out;
  }

  /// Allocation-free variant: clears and refills `out` (reusing its
  /// capacity).  Same contents and ascending-id order as the value overload.
  void neighbors_within(NodeId center, double radius_m, bool include_down,
                        std::vector<NodeId>& out) const;

  /// Number of alive nodes strictly other than `center` within the disc;
  /// the contention count n of the MAC model.
  [[nodiscard]] std::size_t contention_count(NodeId center, double radius_m) const;

  /// Euclidean distance between two nodes, metres.
  [[nodiscard]] double distance_between(NodeId a, NodeId b) const {
    return distance(position(a), position(b));
  }

  /// True when the node's local channel is idle and has been idle for at
  /// least `window`.  Protocol timers use this to distinguish "my reply is
  /// stuck behind traffic I can hear" from "my counterpart is dead": a
  /// timeout on a channel that has been quiet for a full window indicates
  /// loss, one during audible traffic merely indicates queueing.
  [[nodiscard]] bool channel_quiet_for(NodeId id, sim::Duration window) const {
    return sim_.now() - channel_busy_until_.at(id.v) >= window;
  }

  /// Earliest instant at which channel_quiet_for(id, window) could become
  /// true given what has been heard so far; deferring timers sleep until
  /// this instant instead of polling.
  [[nodiscard]] sim::TimePoint channel_quiet_at(NodeId id, sim::Duration window) const {
    return channel_busy_until_.at(id.v) + window;
  }

  // --- wiring ----------------------------------------------------------------
  /// Installs the protocol agent for a node (non-owning).
  void set_agent(NodeId id, Agent* agent) { agent_.at(id.v) = agent; }

  /// Invoked after every actual up/down transition (set_up no-ops excluded),
  /// after the agent hooks ran.  The fault observer hangs here; pass nullptr
  /// to detach.
  using StateChangeFn = std::function<void(NodeId, bool up)>;
  void set_on_state_change(StateChangeFn fn) { on_state_change_ = std::move(fn); }

  /// Per-reception fault draw (link degradation): consulted once per hearer
  /// of every delivered frame; returning true fades that reception — no
  /// receive energy is charged and no agent sees the packet (counted in
  /// NetCounters::dropped_link_fault).  Pass nullptr to detach.  Installing
  /// a hook disables spatial footprint tagging: the fault draws consume an
  /// order-sensitive RNG stream inside delivery, so those events must stay
  /// on the sequential path.
  using LinkFaultFn = std::function<bool(NodeId from, NodeId to)>;
  void set_link_fault(LinkFaultFn fn) {
    link_fault_ = std::move(fn);
    spatial_tags_ = !static_cast<bool>(link_fault_);
  }

  /// Invoked (via a zero-delay event, so never from inside MAC bookkeeping)
  /// when a node's finite battery runs dry.  The energy-driven death model
  /// hangs here and turns the depletion into a permanent fault-layer death;
  /// pass nullptr to detach.  Fires at most once per node.
  using DepletionFn = std::function<void(NodeId)>;
  void set_on_depleted(DepletionFn fn) { on_depleted_ = std::move(fn); }

  // --- transmission ----------------------------------------------------------
  /// Broadcasts `packet` so that the disc of `coverage_m` metres around the
  /// sender is covered.  Returns false (and counts a drop) if the sender is
  /// down or the distance exceeds the radio's maximum range.
  bool send(NodeId from, Packet packet, double coverage_m,
            EnergyUse use = EnergyUse::kProtocol);

  /// Unicast helper: addresses `packet` to `to` and engineers the coverage
  /// disc to exactly the current sender-receiver distance.
  bool send_to(NodeId from, Packet packet, NodeId to, EnergyUse use = EnergyUse::kProtocol);

  /// Conflict footprint for an event that runs protocol code on `id`
  /// synchronously: everything such code touches (sends, contention scans,
  /// neighbor queries) stays within one zone of the node, so a disc of two
  /// zone radii around it covers the event plus everything its sends reach.
  /// kGlobal while spatial tagging is off (link-fault hook installed).
  [[nodiscard]] sim::Footprint agent_footprint(NodeId id) const {
    return event_footprint(id.v, zone_radius_m_);
  }

  // --- failures & mobility -----------------------------------------------------
  /// Crashes or repairs a node, firing the agent hooks.  Idempotent.
  void set_up(NodeId id, bool up);

  /// Teleports a node (mobility model), keeping the spatial index coherent;
  /// routing rebuild is the caller's job.  Every pending spatial footprint
  /// was computed from pre-move positions, so the move invalidates them all
  /// (they degrade to global until they fire — always sound, merely less
  /// parallel).
  void set_position(NodeId id, Point p) {
    Point& pos = pos_.at(id.v);
    grid_.move(id.v, pos, p);
    pos = p;
    sim_.scheduler().invalidate_spatial_footprints();
  }

  // --- direct energy charging (used by the routing layer's DBF accounting) ----
  /// Charges transmit energy for `bytes` at the cheapest level covering
  /// `coverage_m`, without simulating a frame.
  void charge_tx(NodeId id, std::size_t bytes, double coverage_m, EnergyUse use);
  /// Charges receive energy for `bytes` at a node.
  void charge_rx(NodeId id, std::size_t bytes, EnergyUse use);

  // --- battery -----------------------------------------------------------------
  /// Starts the deterministic idle-drain tick: every `battery.idle_tick`,
  /// each non-depleted node is charged idle_drain_mw * tick until (and
  /// including no tick after) `until`, so the run still drains to
  /// quiescence.  No-op for infinite batteries or zero drain.
  void start_idle_drain(sim::TimePoint until);

  [[nodiscard]] const BatteryParams& battery_params() const { return battery_; }
  [[nodiscard]] const Battery& battery(NodeId id) const { return battery_state_.at(id.v); }
  /// Nodes whose finite charge has run dry.
  [[nodiscard]] std::size_t depleted_count() const;
  /// Residual-charge statistics (all zeros for infinite batteries).
  [[nodiscard]] BatterySummary battery_summary() const;

  // --- accounting --------------------------------------------------------------
  [[nodiscard]] EnergyBreakdown energy() const;
  /// Aggregate counters; folds per-worker deltas accumulated by parallel
  /// batches into the master copy first (all-u64 sums, so the fold order is
  /// irrelevant).  Must not be called during parallel group execution.
  [[nodiscard]] const NetCounters& counters() const;
  [[nodiscard]] double node_energy_uj(NodeId id) const {
    return battery_state_.at(id.v).spent_uj();
  }
  /// Cumulative spatial-grid disc queries (observability gauge; stays at 0
  /// for deployments below the grid cutover).
  [[nodiscard]] std::uint64_t grid_queries() const { return grid_.query_count(); }
  /// Deepest MAC queue across nodes right now (observability gauge).
  [[nodiscard]] std::size_t max_mac_queue_depth() const;

 private:
  /// Airtime of `bytes` at the configured rate.
  [[nodiscard]] sim::Duration airtime(std::size_t bytes) const;
  /// TX energy (uJ) for `bytes` at level `lvl`.
  [[nodiscard]] double tx_energy_uj(std::size_t bytes, std::size_t lvl) const;
  /// RX energy (uJ) for `bytes`.
  [[nodiscard]] double rx_energy_uj(std::size_t bytes) const;

  /// The deterministic G*n^2 contention term of the access delay; the
  /// random slotted backoff is added by Simulation::at_backoff so the draw
  /// can be deferred to the canonical commit phase under parallel dispatch.
  [[nodiscard]] sim::Duration contention_delay(std::uint32_t v, const OutgoingFrame& f) const;
  /// Conflict footprint for a MAC/delivery event of node `v`: a disc of
  /// coverage + zone (+ a rounding pad) around the sender, or kGlobal while
  /// spatial tagging is off (link-fault hook installed).
  [[nodiscard]] sim::Footprint event_footprint(std::uint32_t v, double coverage_m) const;
  /// Paper-style independent transmission (infinite_parallelism mode).
  void send_unqueued(std::uint32_t v, OutgoingFrame frame);
  /// Delivers a finished transmission to every alive node in its disc.
  void deliver_frame(std::uint32_t sender, const OutgoingFrame& frame);
  /// Starts the CSMA access procedure for the head-of-queue frame.
  void mac_start_access(std::uint32_t v);
  /// Backoff elapsed: if the local channel is free, transmit; otherwise
  /// defer to the end of the busy period plus a fresh backoff.
  void mac_try_send(std::uint32_t v);
  /// Channel acquired: charge energy, occupy the disc, start the airtime.
  void mac_begin_tx(std::uint32_t v);
  /// Airtime elapsed: deliver to the coverage disc, advance the queue.
  void mac_complete_tx(std::uint32_t v);
  void count_tx(const Packet& p);

  /// Clamped battery charges.  Each checks for a fresh depletion and, when
  /// one happened, dispatches the on_depleted hook on a zero-delay event
  /// (never synchronously: the charge sites sit inside MAC/delivery
  /// bookkeeping that a synchronous kill would corrupt).
  void charge_node_tx(std::uint32_t v, double uj, EnergyUse use);
  void charge_node_rx(std::uint32_t v, double uj, EnergyUse use);
  void charge_node_idle(std::uint32_t v, double uj);
  void dispatch_depletion(std::uint32_t v);

  /// Emits typed battery-threshold records for every residual bucket the
  /// node crossed since the last check.  Called only while the typed trace
  /// is enabled and the battery model is finite; pure observation (updates
  /// only the node's bookkeeping byte).
  void note_battery_level(std::uint32_t v);

  /// One idle-drain tick: charge every non-depleted node, reschedule.
  void idle_drain_tick();

  /// Pooled delivery context: the receiver list plus the packet a t_proc
  /// event processes.  The event captures only the context pointer (so the
  /// callback fits the scheduler's inline buffer) and copy-assignment into
  /// the pooled packet reuses its route-vector capacity, so a settled run
  /// delivers frames without allocating.  Pointers stay stable because the
  /// pool owns contexts through unique_ptr.
  struct DeliveryCtx {
    std::vector<NodeId> processors;
    Packet pkt;
  };
  [[nodiscard]] DeliveryCtx* acquire_delivery_ctx();
  void release_delivery_ctx(DeliveryCtx* ctx);

  /// Pooled in-flight frame for the infinite-parallelism MAC path, for the
  /// same reason: the backoff and airtime events capture a pointer instead
  /// of the frame itself.
  struct FrameCtx {
    OutgoingFrame frame;
  };
  [[nodiscard]] FrameCtx* acquire_frame_ctx();
  void release_frame_ctx(FrameCtx* ctx);

  /// Per-worker execution state for parallel dispatch: scratch buffers,
  /// context pools and a counter delta, so concurrently-executing events
  /// never share mutable Network plumbing.  Contexts acquired by one worker
  /// may be released into another's free list (ownership stays with the
  /// acquiring store's unique_ptr, so pointers remain stable); counter
  /// deltas fold into counters_ on read — u64 sums commute, so totals are
  /// independent of which worker counted what.
  struct WorkerCtx {
    std::vector<NodeId> scratch_hearers;
    std::vector<std::unique_ptr<DeliveryCtx>> delivery_store;
    std::vector<DeliveryCtx*> delivery_free;
    std::vector<std::unique_ptr<FrameCtx>> frame_store;
    std::vector<FrameCtx*> frame_free;
    NetCounters counters;
  };
  /// Counter sink for the current thread: the per-worker delta during
  /// parallel group execution, the master copy otherwise.
  [[nodiscard]] NetCounters& ctr() {
    const int w = sim::current_worker();
    return w < 0 ? counters_ : worker_ctx_[static_cast<std::size_t>(w)].counters;
  }
  [[nodiscard]] std::vector<NodeId>& hearer_scratch() const {
    const int w = sim::current_worker();
    return w < 0 ? scratch_hearers_ : worker_ctx_[static_cast<std::size_t>(w)].scratch_hearers;
  }

  sim::Simulation& sim_;
  RadioTable radio_;
  MacParams mac_;
  EnergyModelParams energy_;
  BatteryParams battery_;

  // --- structure-of-arrays node state (index == NodeId.v) --------------------
  // Grouped by access pattern: the disc scans read pos_/up_, the
  // carrier-sense stamp writes channel_busy_until_, energy charging touches
  // battery_state_, and the MAC state machine owns the queue/busy/event
  // triple.  Each array is dense, so the hot loops stream contiguous memory.
  std::vector<Point> pos_;                      ///< positions (mirrors grid_)
  std::vector<std::uint8_t> up_;                ///< liveness flags (1 = up)
  std::vector<sim::TimePoint> channel_busy_until_;  ///< carrier-sense horizon
  std::vector<Battery> battery_state_;          ///< charge meters + depletion
  std::vector<std::uint8_t> battery_bucket_;    ///< last traced residual bucket
  std::vector<Agent*> agent_;                   ///< non-owning protocol agents
  std::vector<FrameQueue> mac_queue_;           ///< per-node FIFO behind the radio
  std::vector<std::uint8_t> mac_busy_;          ///< a transmission is in progress
  std::vector<sim::EventHandle> mac_event_;     ///< pending access/tx-complete event

  double zone_radius_m_;
  /// Spatial index over node positions, keyed on the zone radius (the
  /// dominant query).  Membership covers *all* nodes, up or down — queries
  /// filter liveness — and set_position keeps it coherent.
  SpatialGrid grid_;
  /// Query-side cutover: deployments below this size answer disc queries by
  /// scanning the contiguous position array (cheaper than cell hashing,
  /// same results in the same order).  The grid is maintained regardless.
  static constexpr std::size_t kGridMinNodes = 64;
  bool use_grid_ = true;
  /// Scratch hearer list reused by every deliver_frame call.  Safe because
  /// delivery is non-reentrant: nothing inside the hearer loop queries
  /// neighbors (agents only run later, on the t_proc event).
  mutable std::vector<NodeId> scratch_hearers_;
  std::vector<std::unique_ptr<DeliveryCtx>> delivery_store_;
  std::vector<DeliveryCtx*> delivery_free_;
  std::vector<std::unique_ptr<FrameCtx>> frame_store_;
  std::vector<FrameCtx*> frame_free_;
  mutable NetCounters counters_;  ///< mutable: counters() folds worker deltas
  /// Indexed by sim::current_worker(); sized for the scheduler's worker
  /// ceiling up front so parallel phases never resize it.
  mutable std::vector<WorkerCtx> worker_ctx_;
  /// False once a link-fault hook is installed: those runs must not tag
  /// spatial footprints (order-sensitive draws inside delivery).
  bool spatial_tags_ = true;
  StateChangeFn on_state_change_;
  LinkFaultFn link_fault_;
  DepletionFn on_depleted_;
  sim::TimePoint idle_drain_until_;
};

}  // namespace spms::net
