#pragma once

#include <cmath>
#include <compare>
#include <ostream>

/// \file geometry.hpp
/// 2-D geometry for node deployments.  Coordinates are metres.

namespace spms::net {

/// A point (or displacement) in the sensor field, in metres.
struct Point {
  double x = 0.0;
  double y = 0.0;

  auto operator<=>(const Point&) const = default;

  friend constexpr Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend constexpr Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
};

/// Squared Euclidean distance (avoids the sqrt in hot inner loops).
[[nodiscard]] inline double distance_sq(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

/// Euclidean distance in metres.
[[nodiscard]] inline double distance(Point a, Point b) {
  return std::sqrt(distance_sq(a, b));
}

inline std::ostream& operator<<(std::ostream& os, Point p) {
  return os << "(" << p.x << "," << p.y << ")";
}

}  // namespace spms::net
