#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "exp/batch.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_registry.hpp"
#include "exp/store/canonical.hpp"
#include "exp/store/result_store.hpp"

/// Lifetime-family invariants at the experiment layer: energy-driven deaths
/// actually fire (the ISSUE 4 acceptance pin), network-wide energy is
/// conserved to floating-point rounding, lifetime metrics flow through RunResult into the
/// canonical store and back bit-exactly, runs are byte-identical at any
/// worker count, and battery configuration can never perturb another fault
/// model's RNG timeline.

namespace spms::exp {
namespace {

/// The lifetime-smoke base cell: small, fast, and lethal to a few nodes.
ExperimentConfig smoke_config() {
  auto spec = find_scenario("lifetime-smoke")->make();
  const auto jobs = spec.expand();
  return jobs.front().config;  // SPMS cell
}

TEST(LifetimeScenarioTest, LifetimeFamilyIsRegistered) {
  for (const char* name :
       {"lifetime-capacity", "lifetime-hetero", "lifetime-race", "lifetime-smoke"}) {
    const auto* info = find_scenario(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_GT(info->make().job_count(), 0u) << name;
  }
  // The race covers all three protocols on one finite budget.
  const auto race = find_scenario("lifetime-race")->make();
  std::set<ProtocolKind> protos(race.protocols.begin(), race.protocols.end());
  EXPECT_EQ(protos.size(), 3u);
  EXPECT_TRUE(race.base.battery.finite);
  EXPECT_TRUE(race.base.faults.battery.enabled);
}

TEST(LifetimeScenarioTest, EnergyDrivenDeathsFireAndSurfaceEverywhere) {
  // Acceptance pin: with a finite budget, nodes die of *depletion* — the
  // deaths show up in the fault observer's permanent-death count, in the
  // lifetime metrics, and in the battery summary, and they are energy-driven
  // (the depleted-node count matches the death count).
  const auto r = run_experiment(smoke_config());
  EXPECT_GT(r.fault_stats.permanent_deaths, 0u);
  EXPECT_EQ(r.fault_stats.permanent_deaths, r.battery.depleted_nodes);
  EXPECT_GT(r.fault_stats.time_to_first_death_ms, 0.0);
  EXPECT_GE(r.fault_stats.time_to_10pct_dead_ms, r.fault_stats.time_to_first_death_ms);
  EXPECT_GT(r.battery.initial_total_uj, 0.0);
  EXPECT_GT(r.battery.spent_total_uj, 0.0);
  EXPECT_GE(r.battery.residual_gini, 0.0);
  EXPECT_LE(r.battery.residual_gini, 1.0);
  // The run is degraded but alive: deaths did not take delivery to zero.
  EXPECT_GT(r.delivery_ratio, 0.0);
  // And the metrics serialize: the canonical JSON carries the lifetime block.
  const auto json = store::result_to_json(r);
  EXPECT_NE(json.find("faults.time_to_first_death_ms"), std::string::npos);
  EXPECT_NE(json.find("battery.residual_gini"), std::string::npos);
}

TEST(LifetimeScenarioTest, NetworkWideEnergyConservationIsExact) {
  // Sum of per-node spend + residual equals the fleet's initial charge,
  // to floating-point rounding: clamped spending can lose at most
  // accumulation error, never energy.
  auto cfg = smoke_config();
  Scenario s{cfg};
  s.start();
  s.run();
  double initial = 0.0;
  double spent = 0.0;
  double residual = 0.0;
  for (std::uint32_t i = 0; i < s.network().size(); ++i) {
    const auto& b = s.network().battery(net::NodeId{i});
    EXPECT_NEAR(b.spent_uj() + b.remaining_uj(), b.initial_charge_uj(),
                1e-9 * b.initial_charge_uj())
        << i;
    initial += b.initial_charge_uj();
    spent += b.spent_uj();
    residual += b.remaining_uj();
  }
  EXPECT_NEAR(spent + residual, initial, 1e-9 * initial);
  // The breakdown's idle bucket matches the batteries' idle spend, and the
  // summary agrees with the hand-computed totals.
  const auto summary = s.network().battery_summary();
  EXPECT_DOUBLE_EQ(summary.initial_total_uj, initial);
  EXPECT_DOUBLE_EQ(summary.spent_total_uj, spent);
  EXPECT_GT(s.network().energy().idle_uj, 0.0);
}

TEST(LifetimeScenarioTest, LifetimeSmokeIsBitIdenticalAtAnyWorkerCount) {
  auto spec = find_scenario("lifetime-smoke")->make();
  spec.seeds = {2004, 2005};
  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions parallel;
  parallel.jobs = 8;
  const auto a = BatchRunner{serial}.run(spec);
  const auto b = BatchRunner{parallel}.run(spec);
  ASSERT_EQ(a.runs().size(), b.runs().size());
  ASSERT_EQ(a.runs().size(), spec.job_count());
  bool saw_death = false;
  for (std::size_t i = 0; i < a.runs().size(); ++i) {
    EXPECT_EQ(store::result_to_json(a.runs()[i]), store::result_to_json(b.runs()[i]))
        << a.runs()[i].label;
    if (a.runs()[i].fault_stats.permanent_deaths > 0) saw_death = true;
  }
  EXPECT_TRUE(saw_death);
}

TEST(LifetimeScenarioTest, WarmStoreRerunIsByteIdenticalWithZeroExecutions) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::path{::testing::TempDir()} / "spms_lifetime_store";
  fs::remove_all(dir);
  auto spec = find_scenario("lifetime-smoke")->make();
  spec.seeds = {2004};
  store::ResultStore store{dir};
  BatchOptions opts;
  opts.jobs = 2;
  opts.store = &store;
  const auto cold = BatchRunner{opts}.run(spec);
  EXPECT_EQ(cold.cached(), 0u);
  const auto warm = BatchRunner{opts}.run(spec);
  EXPECT_EQ(warm.executed(), 0u);
  ASSERT_EQ(cold.runs().size(), warm.runs().size());
  for (std::size_t i = 0; i < cold.runs().size(); ++i) {
    EXPECT_EQ(store::result_to_json(cold.runs()[i]), store::result_to_json(warm.runs()[i]));
  }
  fs::remove_all(dir);
}

TEST(LifetimeScenarioTest, BatteryConfigNeverPerturbsOtherModelsTimelines) {
  // Stream discipline: the energy-death model draws nothing and the initial
  // charges come from a dedicated fork, so switching the whole battery
  // subsystem on cannot move a single crash/region event.
  auto base = smoke_config();
  base.faults.crash.enabled = true;
  base.faults.crash.mean_time_between_failures = sim::Duration::ms(200.0);
  base.faults.region.enabled = true;
  base.faults.region.mean_time_between_outages = sim::Duration::ms(250.0);

  const auto event_times = [](const ExperimentConfig& cfg, std::string_view model) {
    Scenario s{cfg};
    s.start();
    s.run();
    std::vector<double> times;
    for (const auto& e : s.faults()->observer().events()) {
      if (e.model == model) times.push_back(e.at.to_ms());
    }
    return times;
  };

  auto without_battery = base;
  without_battery.battery = net::BatteryParams{};  // infinite again
  without_battery.faults.battery.enabled = false;

  ASSERT_FALSE(event_times(base, "crash").empty());
  EXPECT_EQ(event_times(base, "crash"), event_times(without_battery, "crash"));
  EXPECT_EQ(event_times(base, "region"), event_times(without_battery, "region"));
}

}  // namespace
}  // namespace spms::exp
