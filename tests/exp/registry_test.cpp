#include "exp/scenario_registry.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "exp/runner.hpp"
#include "exp/store/canonical.hpp"

/// Registry-wide guarantees: every scenario expands to a usable,
/// duplicate-free job list (distinct labels AND distinct store keys — the
/// result cache depends on the latter), and each scenario's smallest grid
/// point actually runs end to end under a tight event budget.

namespace spms::exp {
namespace {

TEST(RegistryExpansionTest, EveryScenarioExpandsNonEmptyAndDuplicateFree) {
  for (const auto& info : scenario_registry()) {
    const auto jobs = info.make().expand();
    ASSERT_FALSE(jobs.empty()) << info.name;
    std::set<std::string> labels;
    std::set<std::string> keys;
    for (const auto& job : jobs) {
      labels.insert(job.config.label);
      keys.insert(store::config_key(job.config));
    }
    EXPECT_EQ(labels.size(), jobs.size()) << info.name << ": duplicate job labels";
    EXPECT_EQ(keys.size(), jobs.size())
        << info.name << ": duplicate config keys — the result store would collapse cells";
  }
}

TEST(RegistrySmokeTest, SmallestGridPointRunsUnderATightEventBudget) {
  for (const auto& info : scenario_registry()) {
    auto spec = info.make();
    // The runaway guard under test doubles as the budget that keeps this
    // sweep-of-sweeps fast: truncation is fine, crashing is not.
    spec.max_events_override = 150'000;
    const auto jobs = spec.expand();
    const auto smallest = std::min_element(
        jobs.begin(), jobs.end(), [](const SweepJob& a, const SweepJob& b) {
          return std::tie(a.node_count, a.zone_radius_m) < std::tie(b.node_count, b.zone_radius_m);
        });
    ASSERT_NE(smallest, jobs.end()) << info.name;
    EXPECT_EQ(smallest->config.max_events, 150'000u) << info.name;
    const auto r = run_experiment(smallest->config);
    EXPECT_EQ(r.nodes, smallest->config.node_count) << info.name;
    EXPECT_GT(r.events_executed, 0u) << info.name;
    EXPECT_LE(r.events_executed, 150'000u) << info.name;
  }
}

TEST(RegistrySmokeTest, MaxEventsOverrideBeatsVariants) {
  SweepSpec spec;
  spec.variants = {{"greedy", [](ExperimentConfig& c) { c.max_events = 77; }}};
  spec.max_events_override = 1234;
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].config.max_events, 1234u);
  // And without the override the variant's value stands.
  spec.max_events_override = 0;
  EXPECT_EQ(spec.expand()[0].config.max_events, 77u);
}

}  // namespace
}  // namespace spms::exp
