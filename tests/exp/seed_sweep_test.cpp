#include <gtest/gtest.h>

#include "exp/runner.hpp"

/// Seed-sweep invariants: the paper's correctness properties must hold for
/// any seed, not just the ones the other tests happen to use.

namespace spms::exp {
namespace {

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, FailureFreeInvariantsHoldForEverySeed) {
  for (const auto kind : {ProtocolKind::kSpms, ProtocolKind::kSpin}) {
    ExperimentConfig cfg;
    cfg.protocol = kind;
    cfg.node_count = 16;
    cfg.zone_radius_m = 15.0;
    cfg.traffic.packets_per_node = 1;
    cfg.seed = GetParam();
    const auto r = run_experiment(cfg);
    // Completeness: every interested node gets every item.
    EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0) << to_string(kind) << " seed " << GetParam();
    EXPECT_EQ(r.given_up, 0u);
    // Conservation-style sanity: energy strictly positive, bounded per item;
    // one ADV per holder at minimum.
    EXPECT_GT(r.protocol_energy_per_item_uj, 0.0);
    EXPECT_LT(r.protocol_energy_per_item_uj, 1e4);
    EXPECT_GE(r.net_counters.tx_adv, r.items_published);
    // No runaway loops.
    EXPECT_FALSE(r.event_limit_hit);
    EXPECT_GT(r.mean_delay_ms, 0.0);
    EXPECT_GE(r.max_delay_ms, r.mean_delay_ms);
  }
}

TEST_P(SeedSweep, SpmsBeatsSpinOnProtocolEnergyForEverySeed) {
  ExperimentConfig cfg;
  cfg.node_count = 36;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 1;
  cfg.seed = GetParam();
  cfg.protocol = ProtocolKind::kSpms;
  const auto spms_run = run_experiment(cfg);
  cfg.protocol = ProtocolKind::kSpin;
  const auto spin_run = run_experiment(cfg);
  EXPECT_LT(spms_run.protocol_energy_per_item_uj, spin_run.protocol_energy_per_item_uj)
      << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeedSweep, ::testing::Range<std::uint64_t>(1, 9));

}  // namespace
}  // namespace spms::exp
