#include "exp/runner.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "exp/table.hpp"

namespace spms::exp {
namespace {

ExperimentConfig small_config(ProtocolKind kind) {
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.node_count = 16;
  cfg.zone_radius_m = 12.0;
  cfg.traffic.packets_per_node = 1;
  cfg.seed = 5;
  return cfg;
}

TEST(RunnerTest, SpmsRunDeliversEverything) {
  const auto r = run_experiment(small_config(ProtocolKind::kSpms));
  EXPECT_EQ(r.protocol, "SPMS");
  EXPECT_EQ(r.nodes, 16u);
  EXPECT_EQ(r.items_published, 16u);
  EXPECT_EQ(r.expected_deliveries, 16u * 15u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0);
  EXPECT_GT(r.mean_delay_ms, 0.0);
  EXPECT_GE(r.p95_delay_ms, r.mean_delay_ms * 0.1);
  EXPECT_GE(r.max_delay_ms, r.p95_delay_ms);
  EXPECT_GT(r.energy_per_item_uj, 0.0);
  EXPECT_GT(r.energy.routing_uj(), 0.0);  // DBF charged
  EXPECT_GT(r.protocol_energy_per_item_uj, 0.0);
  EXPECT_LT(r.protocol_energy_per_item_uj, r.energy_per_item_uj);
  EXPECT_FALSE(r.event_limit_hit);
  EXPECT_EQ(r.given_up, 0u);
  EXPECT_GT(r.dbf_total.rounds, 0u);
}

TEST(RunnerTest, SpinRunHasNoRoutingCost) {
  const auto r = run_experiment(small_config(ProtocolKind::kSpin));
  EXPECT_EQ(r.protocol, "SPIN");
  EXPECT_DOUBLE_EQ(r.energy.routing_uj(), 0.0);
  EXPECT_DOUBLE_EQ(r.energy_per_item_uj, r.protocol_energy_per_item_uj);
  EXPECT_EQ(r.dbf_total.rounds, 0u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0);
}

TEST(RunnerTest, RunsAreDeterministic) {
  const auto cfg = small_config(ProtocolKind::kSpms);
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_DOUBLE_EQ(a.energy_per_item_uj, b.energy_per_item_uj);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.net_counters.tx_total(), b.net_counters.tx_total());
}

TEST(RunnerTest, SeedsChangeTheRun) {
  auto cfg = small_config(ProtocolKind::kSpms);
  const auto a = run_experiment(cfg);
  cfg.seed = 6;
  const auto b = run_experiment(cfg);
  EXPECT_NE(a.mean_delay_ms, b.mean_delay_ms);
}

TEST(RunnerTest, RunSeedsAndAverage) {
  const auto cfg = small_config(ProtocolKind::kSpms);
  const auto runs = run_seeds(cfg, {1, 2, 3});
  ASSERT_EQ(runs.size(), 3u);
  const auto avg = average(runs);
  EXPECT_DOUBLE_EQ(avg.delivery_ratio, 1.0);
  const double mean = (runs[0].mean_delay_ms + runs[1].mean_delay_ms + runs[2].mean_delay_ms) / 3;
  EXPECT_NEAR(avg.mean_delay_ms, mean, 1e-9);
  EXPECT_THROW(average({}), std::invalid_argument);
}

TEST(RunnerTest, ClusterPatternRuns) {
  auto cfg = small_config(ProtocolKind::kSpms);
  cfg.pattern = TrafficPattern::kCluster;
  const auto r = run_experiment(cfg);
  // Cluster traffic wants far fewer deliveries than all-to-all.
  EXPECT_LT(r.expected_deliveries, 16u * 15u);
  EXPECT_GT(r.expected_deliveries, 0u);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0);
}

TEST(RunnerTest, MobilityWithClusterThrows) {
  auto cfg = small_config(ProtocolKind::kSpms);
  cfg.pattern = TrafficPattern::kCluster;
  cfg.mobility = true;
  EXPECT_THROW(run_experiment(cfg), std::invalid_argument);
}

TEST(RunnerTest, FailureRunReportsInjections) {
  auto cfg = small_config(ProtocolKind::kSpms);
  cfg.faults.crash.enabled = true;
  cfg.activity_horizon = sim::Duration::ms(200);
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.failures_injected, 0u);
  EXPECT_EQ(r.failures_injected, r.fault_stats.node_downs);
  EXPECT_GT(r.fault_stats.total_downtime_ms, 0.0);
  EXPECT_GT(r.delivery_ratio, 0.5);
}

TEST(RunnerTest, MobilityRunReportsEpochsAndDbfCost) {
  auto cfg = small_config(ProtocolKind::kSpms);
  cfg.mobility = true;
  cfg.mobility_params.epoch_interval = sim::Duration::ms(30);
  cfg.activity_horizon = sim::Duration::ms(100);
  const auto r = run_experiment(cfg);
  EXPECT_GE(r.mobility_epochs, 3u);
  // Rebuilds accumulate routing energy beyond the initial build.
  const auto base = run_experiment(small_config(ProtocolKind::kSpms));
  EXPECT_GT(r.energy.routing_uj(), base.energy.routing_uj());
}

TEST(TableTest, AlignedOutput) {
  Table t({"col", "value"});
  t.add_row({"a", "1"});
  t.add_row({"long-name", "2.5"});
  std::ostringstream os;
  t.print(os);
  const auto s = os.str();
  EXPECT_NE(s.find("col"), std::string::npos);
  EXPECT_NE(s.find("long-name"), std::string::npos);
  EXPECT_NE(s.find("----"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TableTest, JsonOutputQuotesOnlyValidJsonNumbers) {
  Table t({"a", "b"});
  // Left cells are valid bare JSON numbers; right cells look numeric to
  // strtod but are not valid JSON and must stay quoted.
  t.add_row({"-1.25e3", "nan"});
  t.add_row({"0.5", "+1"});
  t.add_row({"0", "0123"});
  t.add_row({"12", "1."});
  t.add_row({"3e8", ".5"});
  std::ostringstream os;
  t.print_json(os);
  const auto s = os.str();
  EXPECT_NE(s.find("\"a\": -1.25e3,"), std::string::npos);
  EXPECT_NE(s.find("\"a\": 0.5,"), std::string::npos);
  EXPECT_NE(s.find("\"a\": 0,"), std::string::npos);
  EXPECT_NE(s.find("\"b\": \"nan\""), std::string::npos);
  EXPECT_NE(s.find("\"b\": \"+1\""), std::string::npos);
  EXPECT_NE(s.find("\"b\": \"0123\""), std::string::npos);
  EXPECT_NE(s.find("\"b\": \"1.\""), std::string::npos);
  EXPECT_NE(s.find("\"b\": \".5\""), std::string::npos);
  // Escaping: quotes and backslashes survive round-trippably.
  Table t2({"k"});
  t2.add_row({"say \"hi\"\\now"});
  std::ostringstream os2;
  t2.print_json(os2);
  EXPECT_NE(os2.str().find("\"say \\\"hi\\\"\\\\now\""), std::string::npos);
}

TEST(TableTest, CsvOutput) {
  Table t({"a", "b"});
  t.add_row({"1", "2"});
  std::ostringstream os;
  t.print_csv(os);
  EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(TableTest, RowWidthMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.add_row({"1"}), std::invalid_argument);
}

TEST(TableTest, FormattingHelpers) {
  EXPECT_EQ(fmt(3.14159, 2), "3.14");
  EXPECT_EQ(fmt(2.0, 0), "2");
  EXPECT_EQ(fmt_pct(0.345), "34.5%");
}

}  // namespace
}  // namespace spms::exp
