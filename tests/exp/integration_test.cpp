#include <gtest/gtest.h>

#include <tuple>

#include "exp/runner.hpp"

/// Cross-module property sweeps: full protocol stacks on real deployments.
/// These are the repository's end-to-end invariants — delivery completeness,
/// energy ordering, fault survival — parameterized over protocol, network
/// size and zone radius.

namespace spms::exp {
namespace {

using StackParam = std::tuple<ProtocolKind, std::size_t /*nodes*/, double /*radius*/>;

class FullStackSweep : public ::testing::TestWithParam<StackParam> {};

TEST_P(FullStackSweep, FailureFreeRunsDeliverEverythingDeterministically) {
  const auto [kind, nodes, radius] = GetParam();
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.node_count = nodes;
  cfg.zone_radius_m = radius;
  cfg.traffic.packets_per_node = 2;
  cfg.seed = 11;

  const auto r = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0)
      << r.protocol << " nodes=" << nodes << " r=" << radius;
  EXPECT_EQ(r.given_up, 0u);
  EXPECT_FALSE(r.event_limit_hit);
  EXPECT_GT(r.mean_delay_ms, 0.0);
  EXPECT_GT(r.protocol_energy_per_item_uj, 0.0);

  // Determinism across identical configs.
  const auto again = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(r.mean_delay_ms, again.mean_delay_ms);
  EXPECT_DOUBLE_EQ(r.energy_per_item_uj, again.energy_per_item_uj);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolsSizesRadii, FullStackSweep,
    ::testing::Combine(::testing::Values(ProtocolKind::kSpms, ProtocolKind::kSpin,
                                         ProtocolKind::kFlooding),
                       ::testing::Values(std::size_t{9}, std::size_t{25}),
                       ::testing::Values(12.0, 20.0)),
    [](const auto& info) {
      return std::string(to_string(std::get<0>(info.param))) + "_" +
             std::to_string(std::get<1>(info.param)) + "n_" +
             std::to_string(static_cast<int>(std::get<2>(info.param))) + "m";
    });

class FailureSweep : public ::testing::TestWithParam<ProtocolKind> {};

TEST_P(FailureSweep, SurvivesTransientFailureChurn) {
  ExperimentConfig cfg;
  cfg.protocol = GetParam();
  cfg.node_count = 16;
  cfg.zone_radius_m = 12.0;
  cfg.traffic.packets_per_node = 1;
  cfg.faults.crash.enabled = true;
  cfg.activity_horizon = sim::Duration::ms(300);
  cfg.seed = 3;

  const auto r = run_experiment(cfg);
  EXPECT_GT(r.failures_injected, 0u);
  // Transient churn costs some deliveries but the protocol must not collapse.
  EXPECT_GT(r.delivery_ratio, 0.5) << r.protocol;
  EXPECT_FALSE(r.event_limit_hit);
}

INSTANTIATE_TEST_SUITE_P(Protocols, FailureSweep,
                         ::testing::Values(ProtocolKind::kSpms, ProtocolKind::kSpin),
                         [](const auto& info) { return std::string(to_string(info.param)); });

TEST(HeadlineComparison, SpmsBeatsSpinOnEnergyInTheReferenceSetup) {
  // The paper's headline: on the static failure-free all-to-all workload
  // SPMS consumes substantially less dissemination energy than SPIN.
  ExperimentConfig cfg;
  cfg.node_count = 49;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 2;
  cfg.seed = 21;

  cfg.protocol = ProtocolKind::kSpms;
  const auto spms_run = run_experiment(cfg);
  cfg.protocol = ProtocolKind::kSpin;
  const auto spin_run = run_experiment(cfg);

  ASSERT_DOUBLE_EQ(spms_run.delivery_ratio, 1.0);
  ASSERT_DOUBLE_EQ(spin_run.delivery_ratio, 1.0);
  EXPECT_LT(spms_run.protocol_energy_per_item_uj, spin_run.protocol_energy_per_item_uj);
  // And on delay ("somewhat counter-intuitively, SPMS reduces the end-to-end
  // data latency").
  EXPECT_LT(spms_run.mean_delay_ms, spin_run.mean_delay_ms);
}

TEST(HeadlineComparison, SpinBeatsFloodingOnEnergy) {
  // Sanity of the baseline ordering: metadata negotiation saves energy over
  // blind flooding (SPIN's raison d'etre).
  ExperimentConfig cfg;
  cfg.node_count = 25;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 2;
  cfg.seed = 21;

  cfg.protocol = ProtocolKind::kSpin;
  const auto spin_run = run_experiment(cfg);
  cfg.protocol = ProtocolKind::kFlooding;
  const auto flood_run = run_experiment(cfg);

  ASSERT_DOUBLE_EQ(spin_run.delivery_ratio, 1.0);
  ASSERT_DOUBLE_EQ(flood_run.delivery_ratio, 1.0);
  // Flooding transmits the full DATA from every node; with all-to-all
  // interest both deliver everywhere, but flooding pays DATA airtime per
  // node without any unicast targeting.
  EXPECT_LT(spin_run.net_counters.tx_data, flood_run.net_counters.tx_data * 2);
}

TEST(HeadlineComparison, FailuresIncreaseDelay) {
  // Fig. 10/11's qualitative claim: transient failures push delay up.
  ExperimentConfig cfg;
  cfg.protocol = ProtocolKind::kSpms;
  cfg.node_count = 25;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 2;
  cfg.seed = 13;

  const auto clean = run_experiment(cfg);
  cfg.faults.crash.enabled = true;
  cfg.activity_horizon = sim::Duration::ms(500);
  const auto faulty = run_experiment(cfg);
  ASSERT_GT(faulty.failures_injected, 0u);
  EXPECT_GT(faulty.mean_delay_ms, clean.mean_delay_ms);
}

}  // namespace
}  // namespace spms::exp
