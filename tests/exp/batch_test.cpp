#include "exp/batch.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>

#include "exp/scenario_registry.hpp"

/// Batch-engine invariants: deterministic expansion, bit-identical results
/// whatever the worker count, correct grouping/lookup, and registry sanity.

namespace spms::exp {
namespace {

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "test";
  spec.base.node_count = 16;
  spec.base.zone_radius_m = 12.0;
  spec.base.traffic.packets_per_node = 1;
  spec.protocols = {ProtocolKind::kSpms, ProtocolKind::kSpin};
  spec.seeds = {1, 2, 3, 4};
  return spec;
}

void expect_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.items_published, b.items_published);
  EXPECT_EQ(a.expected_deliveries, b.expected_deliveries);
  EXPECT_EQ(a.deliveries, b.deliveries);
  // Exact bit equality: parallel runs share nothing, so the doubles must
  // match to the last ulp, not just approximately.
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_EQ(a.p95_delay_ms, b.p95_delay_ms);
  EXPECT_EQ(a.max_delay_ms, b.max_delay_ms);
  EXPECT_EQ(a.energy_per_item_uj, b.energy_per_item_uj);
  EXPECT_EQ(a.protocol_energy_per_item_uj, b.protocol_energy_per_item_uj);
  EXPECT_EQ(a.energy.protocol_tx_uj, b.energy.protocol_tx_uj);
  EXPECT_EQ(a.energy.protocol_rx_uj, b.energy.protocol_rx_uj);
  EXPECT_EQ(a.energy.routing_tx_uj, b.energy.routing_tx_uj);
  EXPECT_EQ(a.energy.routing_rx_uj, b.energy.routing_rx_uj);
  EXPECT_EQ(a.net_counters.tx_adv, b.net_counters.tx_adv);
  EXPECT_EQ(a.net_counters.tx_req, b.net_counters.tx_req);
  EXPECT_EQ(a.net_counters.tx_data, b.net_counters.tx_data);
  EXPECT_EQ(a.net_counters.tx_route, b.net_counters.tx_route);
  EXPECT_EQ(a.net_counters.tx_bytes, b.net_counters.tx_bytes);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.given_up, b.given_up);
  EXPECT_EQ(a.sim_time_ms, b.sim_time_ms);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.event_limit_hit, b.event_limit_hit);
}

TEST(SweepSpecTest, EmptyAxesExpandToOneJobFromBase) {
  SweepSpec spec;
  spec.base.node_count = 25;
  spec.base.seed = 7;
  EXPECT_EQ(spec.point_count(), 1u);
  EXPECT_EQ(spec.job_count(), 1u);
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_EQ(jobs[0].config.node_count, 25u);
  EXPECT_EQ(jobs[0].config.seed, 7u);
  EXPECT_EQ(jobs[0].point, 0u);
}

TEST(SweepSpecTest, ExpansionOrderIsDeterministicAndComplete) {
  SweepSpec spec;
  spec.name = "grid";
  spec.protocols = {ProtocolKind::kSpms, ProtocolKind::kSpin};
  spec.node_counts = {16, 25};
  spec.zone_radii = {10.0, 20.0};
  spec.variants = {{"a", nullptr}, {"b", nullptr}};
  spec.seeds = {1, 2, 3};
  EXPECT_EQ(spec.point_count(), 16u);
  EXPECT_EQ(spec.job_count(), 48u);
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 48u);
  // Seeds are innermost: consecutive jobs of one point share everything but
  // the seed; points are numbered contiguously.
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    EXPECT_EQ(jobs[i].index, i);
    EXPECT_EQ(jobs[i].point, i / 3);
    EXPECT_EQ(jobs[i].seed, spec.seeds[i % 3]);
  }
  // Every (point, seed) combination appears exactly once, and the label
  // encodes the full coordinates.
  std::set<std::string> labels;
  for (const auto& job : jobs) labels.insert(job.config.label);
  EXPECT_EQ(labels.size(), 48u);
  EXPECT_EQ(jobs[0].config.label, "grid/SPMS/n16/r10/a/s1");
}

TEST(SweepSpecTest, VariantsMayOverrideAnyKnobButNotSeed) {
  SweepSpec spec;
  spec.variants = {{"hot", [](ExperimentConfig& c) {
                      c.faults.crash.enabled = true;
                      c.seed = 999;  // stamped over by the seed axis
                    }}};
  spec.seeds = {5};
  const auto jobs = spec.expand();
  ASSERT_EQ(jobs.size(), 1u);
  EXPECT_TRUE(jobs[0].config.faults.crash.enabled);
  EXPECT_EQ(jobs[0].config.seed, 5u);
}

TEST(BatchRunnerTest, ParallelRunsAreBitIdenticalToSerial) {
  const auto spec = small_spec();
  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions parallel;
  parallel.jobs = 8;
  const auto a = BatchRunner{serial}.run(spec);
  const auto b = BatchRunner{parallel}.run(spec);
  ASSERT_EQ(a.runs().size(), 8u);
  ASSERT_EQ(b.runs().size(), 8u);
  for (std::size_t i = 0; i < a.runs().size(); ++i) {
    expect_identical(a.runs()[i], b.runs()[i]);
  }
}

TEST(BatchRunnerTest, PointLookupGroupsSeedsInOrder) {
  const auto spec = small_spec();
  BatchOptions options;
  options.jobs = 4;
  const auto batch = BatchRunner{options}.run(spec);
  ASSERT_EQ(batch.points().size(), 2u);
  const auto& spms_pt = batch.point(ProtocolKind::kSpms, 16, 12.0);
  ASSERT_EQ(spms_pt.runs.size(), 4u);
  EXPECT_EQ(spms_pt.stats.runs, 4u);
  EXPECT_EQ(spms_pt.stats.protocol, "SPMS");
  // Seed order within a point matches the spec's seed list: rerunning seed 3
  // alone must reproduce runs[2].
  ExperimentConfig cfg = spec.base;
  cfg.protocol = ProtocolKind::kSpms;
  cfg.seed = 3;
  const auto lone = run_experiment(cfg);
  EXPECT_EQ(lone.mean_delay_ms, spms_pt.runs[2].mean_delay_ms);
  EXPECT_EQ(lone.events_executed, spms_pt.runs[2].events_executed);
  EXPECT_THROW((void)batch.point(ProtocolKind::kFlooding, 16, 12.0), std::out_of_range);
}

TEST(BatchRunnerTest, OnResultReportsEveryJobExactlyOnce) {
  const auto spec = small_spec();
  BatchOptions options;
  options.jobs = 3;
  std::set<std::size_t> seen;
  std::size_t max_done = 0;
  options.on_result = [&](const SweepJob& job, const RunResult&, std::size_t done,
                          std::size_t total) {
    seen.insert(job.index);
    max_done = std::max(max_done, done);
    EXPECT_EQ(total, 8u);
  };
  const auto batch = BatchRunner{options}.run(spec);
  EXPECT_EQ(batch.runs().size(), 8u);
  EXPECT_EQ(seen.size(), 8u);
  EXPECT_EQ(max_done, 8u);
}

TEST(AggregateTest, MatchesHandComputedStatistics) {
  // Three synthetic runs with known delays: 2, 4, 9.
  std::vector<RunResult> runs(3);
  runs[0].mean_delay_ms = 2.0;
  runs[1].mean_delay_ms = 4.0;
  runs[2].mean_delay_ms = 9.0;
  runs[0].protocol = runs[1].protocol = runs[2].protocol = "SPMS";
  const auto a = aggregate(runs);
  EXPECT_EQ(a.runs, 3u);
  EXPECT_EQ(a.protocol, "SPMS");
  EXPECT_NEAR(a.mean_delay_ms.mean, 5.0, 1e-12);
  // Sample variance: ((2-5)^2 + (4-5)^2 + (9-5)^2) / 2 = 13.
  EXPECT_NEAR(a.mean_delay_ms.stddev, std::sqrt(13.0), 1e-12);
  EXPECT_NEAR(a.mean_delay_ms.stderr_mean, std::sqrt(13.0 / 3.0), 1e-12);
  EXPECT_EQ(a.mean_delay_ms.min, 2.0);
  EXPECT_EQ(a.mean_delay_ms.max, 9.0);
  EXPECT_THROW(aggregate({}), std::invalid_argument);
}

TEST(DefaultJobsTest, ParseJobsEnvRejectsGarbageAndClampsAbsurdValues) {
  EXPECT_EQ(parse_jobs_env(nullptr), 0u);
  EXPECT_EQ(parse_jobs_env(""), 0u);
  EXPECT_EQ(parse_jobs_env("0"), 0u);       // zero workers is never valid
  EXPECT_EQ(parse_jobs_env("8"), 8u);
  EXPECT_EQ(parse_jobs_env("1024"), 1024u);
  EXPECT_EQ(parse_jobs_env("-1"), 0u);      // strtoul would wrap this to 2^64-1
  EXPECT_EQ(parse_jobs_env("+4"), 0u);
  EXPECT_EQ(parse_jobs_env(" 4"), 0u);
  EXPECT_EQ(parse_jobs_env("4 "), 0u);
  EXPECT_EQ(parse_jobs_env("4x"), 0u);      // strtol-style prefix parsing would take 4
  EXPECT_EQ(parse_jobs_env("2048x"), 0u);   // garbage past the clamp point is still garbage
  EXPECT_EQ(parse_jobs_env("abc"), 0u);
  EXPECT_EQ(parse_jobs_env("1e3"), 0u);
  EXPECT_EQ(parse_jobs_env("0x10"), 0u);
  EXPECT_EQ(parse_jobs_env("2048"), kMaxJobs);
  EXPECT_EQ(parse_jobs_env("99999999999999999999999"), kMaxJobs);  // would overflow u64
}

TEST(DefaultJobsTest, EnvOverrideIsHonoredAndGarbageFallsBack) {
  const char* saved = std::getenv("SPMS_JOBS");
  const std::string saved_value = saved ? saved : "";

  ASSERT_EQ(setenv("SPMS_JOBS", "3", /*overwrite=*/1), 0);
  EXPECT_EQ(default_jobs(), 3u);
  ASSERT_EQ(setenv("SPMS_JOBS", "not-a-number", 1), 0);
  EXPECT_GE(default_jobs(), 1u);  // falls back to hardware concurrency
  ASSERT_EQ(setenv("SPMS_JOBS", "0", 1), 0);
  EXPECT_GE(default_jobs(), 1u);

  if (saved) {
    setenv("SPMS_JOBS", saved_value.c_str(), 1);
  } else {
    unsetenv("SPMS_JOBS");
  }
}

TEST(ScenarioRegistryTest, AllScenariosExpandAndCarryMetadata) {
  const auto& registry = scenario_registry();
  ASSERT_FALSE(registry.empty());
  std::set<std::string> names;
  for (const auto& s : registry) {
    EXPECT_FALSE(s.title.empty()) << s.name;
    EXPECT_FALSE(s.paper_claim.empty()) << s.name;
    const auto spec = s.make();
    EXPECT_GT(spec.job_count(), 0u) << s.name;
    EXPECT_EQ(spec.name, s.name);
    names.insert(s.name);
  }
  EXPECT_EQ(names.size(), registry.size()) << "duplicate scenario names";
  EXPECT_EQ(find_scenario("nope"), nullptr);
  ASSERT_NE(find_scenario("fig08"), nullptr);
}

TEST(ScenarioRegistryTest, Fig08GridMatchesThePaper) {
  const auto spec = find_scenario("fig08")->make();
  EXPECT_EQ(spec.node_counts, (std::vector<std::size_t>{25, 49, 100, 169, 225}));
  EXPECT_EQ(spec.protocols, (std::vector<ProtocolKind>{ProtocolKind::kSpms,
                                                       ProtocolKind::kSpin}));
  EXPECT_EQ(spec.base.zone_radius_m, 20.0);
  EXPECT_EQ(spec.point_count(), 10u);
}

TEST(ScenarioRegistryTest, FailureVariantsApplyTheScaledRegime) {
  const auto spec = find_scenario("fig10")->make();
  const auto jobs = spec.expand();
  bool saw_failures = false, saw_clean = false;
  for (const auto& job : jobs) {
    if (job.variant == "failures") {
      saw_failures = true;
      EXPECT_TRUE(job.config.faults.crash.enabled);
    } else {
      saw_clean = true;
      EXPECT_FALSE(job.config.faults.crash.enabled);
    }
  }
  EXPECT_TRUE(saw_failures);
  EXPECT_TRUE(saw_clean);
}

}  // namespace
}  // namespace spms::exp
