#include <gtest/gtest.h>

#include <set>
#include <string>

#include "exp/batch.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_registry.hpp"
#include "exp/store/canonical.hpp"

/// Fault-campaign invariants at the experiment layer: every fault parameter
/// feeds the store's config key, the faults-* scenarios are registered and
/// deterministic at any worker count, stacked plans exercise all five
/// models, and the recovery metrics surface through RunResult.

namespace spms::exp {
namespace {

ExperimentConfig tiny_config() {
  ExperimentConfig cfg;
  cfg.node_count = 16;
  cfg.zone_radius_m = 12.0;
  cfg.traffic.packets_per_node = 1;
  cfg.seed = 5;
  return cfg;
}

TEST(FaultCampaignTest, ConfigKeyReactsToEveryFaultModelParameter) {
  // Acceptance pin: all five fault models round-trip through config_key —
  // changing any parameter of any model changes the key.
  const ExperimentConfig base;
  const auto mutated_key = [&](auto&& mutate) {
    ExperimentConfig c = base;
    mutate(c.faults);
    return store::config_key(c);
  };
  std::set<std::string> keys{store::config_key(base)};
  keys.insert(mutated_key([](auto& f) { f.crash.enabled = true; }));
  keys.insert(mutated_key([](auto& f) {
    f.crash.mean_time_between_failures = sim::Duration::ms(51.0);
  }));
  keys.insert(mutated_key([](auto& f) { f.crash.repair_min = sim::Duration::ms(6.0); }));
  keys.insert(mutated_key([](auto& f) { f.crash.repair_max = sim::Duration::ms(16.0); }));
  keys.insert(mutated_key([](auto& f) { f.region.enabled = true; }));
  keys.insert(mutated_key([](auto& f) {
    f.region.mean_time_between_outages = sim::Duration::ms(201.0);
  }));
  keys.insert(mutated_key([](auto& f) { f.region.radius_m = 10.5; }));
  keys.insert(mutated_key([](auto& f) { f.region.repair_min = sim::Duration::ms(11.0); }));
  keys.insert(mutated_key([](auto& f) { f.region.repair_max = sim::Duration::ms(31.0); }));
  keys.insert(mutated_key([](auto& f) { f.battery.enabled = true; }));
  keys.insert(mutated_key([](auto& f) { f.link.enabled = true; }));
  keys.insert(mutated_key([](auto& f) { f.link.drop_start = 0.01; }));
  keys.insert(mutated_key([](auto& f) { f.link.drop_end = 0.21; }));
  keys.insert(mutated_key([](auto& f) { f.sink_churn.enabled = true; }));
  keys.insert(mutated_key([](auto& f) { f.sink_churn.hops = 3; }));
  keys.insert(mutated_key([](auto& f) {
    f.sink_churn.mean_time_between_failures = sim::Duration::ms(51.0);
  }));
  keys.insert(mutated_key([](auto& f) { f.sink_churn.repair_min = sim::Duration::ms(6.0); }));
  keys.insert(mutated_key([](auto& f) { f.sink_churn.repair_max = sim::Duration::ms(16.0); }));
  EXPECT_EQ(keys.size(), 19u) << "some fault parameter did not change the config key";
  // The battery *budget* parameters live in ExperimentConfig::battery and
  // are covered by the canonical key test in tests/exp/store_test.cpp.
}

TEST(FaultCampaignTest, FaultsScenariosAreRegistered) {
  for (const char* name : {"faults-smoke", "faults-models", "faults-intensity"}) {
    const auto* info = find_scenario(name);
    ASSERT_NE(info, nullptr) << name;
    EXPECT_GT(info->make().job_count(), 0u) << name;
  }
  // The smoke grid carries one variant per model plus the stacked case.
  const auto spec = find_scenario("faults-smoke")->make();
  std::set<std::string> variants;
  for (const auto& v : spec.variants) variants.insert(v.name);
  EXPECT_EQ(variants, (std::set<std::string>{"crash", "region", "battery", "link",
                                             "sink-churn", "stacked"}));
}

TEST(FaultCampaignTest, FaultsSmokeIsBitIdenticalAtAnyWorkerCount) {
  // Same seed + same FaultPlan => byte-identical serialized RunResult at
  // --jobs 1 vs --jobs 8 (the canonical JSON covers every field, so byte
  // equality is full bit equality).
  auto spec = find_scenario("faults-smoke")->make();
  spec.seeds = {2004, 2005};
  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions parallel;
  parallel.jobs = 8;
  const auto a = BatchRunner{serial}.run(spec);
  const auto b = BatchRunner{parallel}.run(spec);
  ASSERT_EQ(a.runs().size(), b.runs().size());
  ASSERT_EQ(a.runs().size(), spec.job_count());
  for (std::size_t i = 0; i < a.runs().size(); ++i) {
    EXPECT_EQ(store::result_to_json(a.runs()[i]), store::result_to_json(b.runs()[i]))
        << a.runs()[i].label;
  }
}

TEST(FaultCampaignTest, StackedPlanExercisesAllFiveModels) {
  auto cfg = tiny_config();
  cfg.faults.crash.enabled = true;
  cfg.faults.crash.mean_time_between_failures = sim::Duration::ms(60.0);
  cfg.faults.crash.repair_min = sim::Duration::ms(10.0);
  cfg.faults.crash.repair_max = sim::Duration::ms(20.0);
  cfg.faults.region.enabled = true;
  cfg.faults.region.mean_time_between_outages = sim::Duration::ms(80.0);
  cfg.faults.region.radius_m = 8.0;
  energy_budget(cfg, 30.0);  // finite budget: the battery model fires too
  cfg.faults.link.enabled = true;
  cfg.faults.link.drop_start = 0.05;
  cfg.faults.link.drop_end = 0.3;
  cfg.faults.sink_churn.enabled = true;
  cfg.faults.sink_churn.mean_time_between_failures = sim::Duration::ms(60.0);
  cfg.activity_horizon = sim::Duration::ms(500);

  Scenario s{cfg};
  ASSERT_NE(s.faults(), nullptr);
  ASSERT_EQ(s.faults()->models().size(), 5u);
  s.start();
  s.run();
  s.faults()->finalize();
  for (const auto& model : s.faults()->models()) {
    EXPECT_GT(model->events_injected(), 0u) << model->name();
  }
  const auto& stats = s.faults()->stats();
  EXPECT_GT(stats.node_downs, 0u);
  EXPECT_GT(stats.total_downtime_ms, 0.0);
  // Energy-driven deaths: the 30 uJ budget dries out at least one node, and
  // every death carries a lifetime timestamp.
  EXPECT_GT(stats.permanent_deaths, 0u);
  EXPECT_GT(stats.time_to_first_death_ms, 0.0);
}

TEST(FaultCampaignTest, LinkDegradationDropsFramesButTrafficSurvives) {
  auto cfg = tiny_config();
  cfg.faults.link.enabled = true;
  cfg.faults.link.drop_start = 0.3;
  cfg.faults.link.drop_end = 0.3;
  cfg.activity_horizon = sim::Duration::ms(500);
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.net_counters.dropped_link_fault, 0u);
  // The channel heals at the horizon, so retries eventually get through.
  EXPECT_GT(r.delivery_ratio, 0.3);
  const auto clean = run_experiment(tiny_config());
  EXPECT_EQ(clean.net_counters.dropped_link_fault, 0u);
}

TEST(FaultCampaignTest, RecoveryMetricsSurfaceThroughRunResult) {
  auto cfg = tiny_config();
  cfg.faults.crash.enabled = true;
  cfg.faults.crash.mean_time_between_failures = sim::Duration::ms(50.0);
  cfg.faults.crash.repair_min = sim::Duration::ms(10.0);
  cfg.faults.crash.repair_max = sim::Duration::ms(20.0);
  cfg.traffic.packets_per_node = 2;
  cfg.activity_horizon = sim::Duration::ms(400);
  const auto r = run_experiment(cfg);
  EXPECT_GT(r.fault_stats.node_downs, 0u);
  EXPECT_GT(r.fault_stats.node_repairs, 0u);
  EXPECT_GT(r.fault_stats.total_downtime_ms, 0.0);
  EXPECT_GE(r.fault_stats.outage_time_ms, r.fault_stats.total_downtime_ms /
                                              static_cast<double>(r.nodes));
  EXPECT_GE(r.fault_stats.max_concurrent_down, 1u);
  // Transient-only plan: every down transition eventually repaired.
  EXPECT_EQ(r.fault_stats.node_downs, r.fault_stats.node_repairs);
  EXPECT_EQ(r.fault_stats.permanent_deaths, 0u);
  // With traffic in flight during churn, some repairs see later deliveries.
  EXPECT_GT(r.fault_stats.recoveries_sampled, 0u);
  EXPECT_GT(r.fault_stats.mean_recovery_latency_ms, 0.0);
}

TEST(FaultCampaignTest, FaultStatsAggregateAcrossSeeds) {
  auto spec = find_scenario("faults-smoke")->make();
  spec.seeds = {1, 2, 3};
  BatchOptions opts;
  opts.jobs = 4;
  const auto batch = BatchRunner{opts}.run(spec);
  bool saw_faulty_point = false;
  for (const auto& p : batch.points()) {
    if (p.stats.failures_injected.mean > 0.0 || p.stats.fault_permanent_deaths.mean > 0.0) {
      saw_faulty_point = true;
      EXPECT_GE(p.stats.fault_downtime_ms.mean, 0.0);
    }
  }
  EXPECT_TRUE(saw_faulty_point);
}

}  // namespace
}  // namespace spms::exp
