#include "exp/store/result_store.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <set>

#include "exp/batch.hpp"
#include "exp/store/canonical.hpp"

/// Persistent-store invariants: canonical serialization is stable and
/// bit-exact, the config key reacts to every knob, the store survives
/// corruption and composes under merge, and a warm BatchRunner pass
/// reproduces a cold one byte-identically while executing nothing.

namespace spms::exp::store {
namespace {

namespace fs = std::filesystem;

class StoreTest : public ::testing::Test {
 protected:
  /// A fresh empty directory, unique per test and per call, removed on exit.
  fs::path temp_dir() {
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    fs::path dir = fs::path{::testing::TempDir()} / "spms_store" /
                   (std::string{info->name()} + "_" + std::to_string(dirs_.size()));
    fs::remove_all(dir);
    dirs_.push_back(dir);
    return dir;
  }

  void TearDown() override {
    for (const auto& dir : dirs_) fs::remove_all(dir);
  }

  std::vector<fs::path> dirs_;
};

RunResult awkward_result() {
  RunResult r;
  r.protocol = "SPMS";
  r.label = "edge \"quotes\"\\back\nslash\tand control \x01 bytes";
  r.nodes = 169;
  r.zone_radius_m = 20.0;
  r.items_published = 338;
  r.expected_deliveries = 56784;
  r.deliveries = 56783;
  r.delivery_ratio = 56783.0 / 56784.0;  // not representable exactly in decimal
  r.mean_delay_ms = 1.0 / 3.0;
  r.p95_delay_ms = 0.1;
  r.max_delay_ms = 1e-308;  // almost-denormal magnitude
  r.energy.protocol_tx_uj = 1234.5678901234567;
  r.energy.protocol_rx_uj = 2.2250738585072014e-308;
  r.energy.routing_tx_uj = 9e18;
  r.energy.routing_rx_uj = 0.0;
  r.energy.idle_uj = 0.7000000000000001;
  r.energy_per_item_uj = 3.3333333333333335;
  r.protocol_energy_per_item_uj = 0.30000000000000004;
  r.battery.depleted_nodes = 5;
  r.battery.initial_total_uj = 16900.000000000002;
  r.battery.spent_total_uj = 1.0 / 7.0;
  r.battery.residual_mean_uj = 99.30000000000001;
  r.battery.residual_stddev_uj = 2.5e-308;
  r.battery.residual_min_uj = 1e-12;
  r.battery.residual_gini = 0.6180339887498949;
  r.net_counters.tx_adv = 1;
  r.net_counters.tx_req = 2;
  r.net_counters.tx_data = 3;
  r.net_counters.tx_route = 4;
  r.net_counters.tx_bytes = 5;
  r.net_counters.deliveries = 6;
  r.net_counters.dropped_sender_down = 7;
  r.net_counters.dropped_out_of_range = 8;
  r.net_counters.dropped_receiver_down = 9;
  r.net_counters.dropped_link_fault = 17;
  r.net_counters.dropped_battery_dead = 23;
  r.dbf_total.rounds = 10;
  r.dbf_total.messages = 11;
  r.dbf_total.message_bytes = 12;
  r.dbf_total.energy_uj = 0.1 + 0.2;  // the canonical 0.30000000000000004
  r.dbf_total.converged = true;
  r.fault_stats.fault_events = 21;
  r.fault_stats.node_downs = 13;
  r.fault_stats.node_repairs = 12;
  r.fault_stats.permanent_deaths = 1;
  r.fault_stats.max_concurrent_down = 4;
  r.fault_stats.total_downtime_ms = 123.45000000000002;
  r.fault_stats.outage_time_ms = 98.7;
  r.fault_stats.deliveries_during_outage = 222;
  r.fault_stats.recoveries_sampled = 11;
  r.fault_stats.mean_recovery_latency_ms = 2.0 / 7.0;
  r.fault_stats.repairs_unrecovered = 1;
  r.fault_stats.time_to_first_death_ms = 41.99999999999999;
  r.fault_stats.time_to_10pct_dead_ms = 123.00000000000001;
  r.fault_stats.half_life_ms = -1.0;  // the "never reached" sentinel round-trips
  r.failures_injected = 13;
  r.mobility_epochs = 14;
  r.given_up = 15;
  r.sim_time_ms = 12345.000000000001;
  r.events_executed = 1'000'000'007;
  r.event_limit_hit = true;
  return r;
}

void expect_bit_identical(const RunResult& a, const RunResult& b) {
  EXPECT_EQ(a.protocol, b.protocol);
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.nodes, b.nodes);
  EXPECT_EQ(a.zone_radius_m, b.zone_radius_m);
  EXPECT_EQ(a.items_published, b.items_published);
  EXPECT_EQ(a.expected_deliveries, b.expected_deliveries);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.delivery_ratio, b.delivery_ratio);
  EXPECT_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_EQ(a.p95_delay_ms, b.p95_delay_ms);
  EXPECT_EQ(a.max_delay_ms, b.max_delay_ms);
  EXPECT_EQ(a.energy.protocol_tx_uj, b.energy.protocol_tx_uj);
  EXPECT_EQ(a.energy.protocol_rx_uj, b.energy.protocol_rx_uj);
  EXPECT_EQ(a.energy.routing_tx_uj, b.energy.routing_tx_uj);
  EXPECT_EQ(a.energy.routing_rx_uj, b.energy.routing_rx_uj);
  EXPECT_EQ(a.energy_per_item_uj, b.energy_per_item_uj);
  EXPECT_EQ(a.protocol_energy_per_item_uj, b.protocol_energy_per_item_uj);
  EXPECT_EQ(a.net_counters.tx_adv, b.net_counters.tx_adv);
  EXPECT_EQ(a.net_counters.tx_req, b.net_counters.tx_req);
  EXPECT_EQ(a.net_counters.tx_data, b.net_counters.tx_data);
  EXPECT_EQ(a.net_counters.tx_route, b.net_counters.tx_route);
  EXPECT_EQ(a.net_counters.tx_bytes, b.net_counters.tx_bytes);
  EXPECT_EQ(a.net_counters.deliveries, b.net_counters.deliveries);
  EXPECT_EQ(a.net_counters.dropped_sender_down, b.net_counters.dropped_sender_down);
  EXPECT_EQ(a.net_counters.dropped_out_of_range, b.net_counters.dropped_out_of_range);
  EXPECT_EQ(a.net_counters.dropped_receiver_down, b.net_counters.dropped_receiver_down);
  EXPECT_EQ(a.net_counters.dropped_link_fault, b.net_counters.dropped_link_fault);
  EXPECT_EQ(a.net_counters.dropped_battery_dead, b.net_counters.dropped_battery_dead);
  EXPECT_EQ(a.energy.idle_uj, b.energy.idle_uj);
  EXPECT_EQ(a.battery.depleted_nodes, b.battery.depleted_nodes);
  EXPECT_EQ(a.battery.initial_total_uj, b.battery.initial_total_uj);
  EXPECT_EQ(a.battery.spent_total_uj, b.battery.spent_total_uj);
  EXPECT_EQ(a.battery.residual_mean_uj, b.battery.residual_mean_uj);
  EXPECT_EQ(a.battery.residual_stddev_uj, b.battery.residual_stddev_uj);
  EXPECT_EQ(a.battery.residual_min_uj, b.battery.residual_min_uj);
  EXPECT_EQ(a.battery.residual_gini, b.battery.residual_gini);
  EXPECT_EQ(a.fault_stats.time_to_first_death_ms, b.fault_stats.time_to_first_death_ms);
  EXPECT_EQ(a.fault_stats.time_to_10pct_dead_ms, b.fault_stats.time_to_10pct_dead_ms);
  EXPECT_EQ(a.fault_stats.half_life_ms, b.fault_stats.half_life_ms);
  EXPECT_EQ(a.fault_stats.fault_events, b.fault_stats.fault_events);
  EXPECT_EQ(a.fault_stats.node_downs, b.fault_stats.node_downs);
  EXPECT_EQ(a.fault_stats.node_repairs, b.fault_stats.node_repairs);
  EXPECT_EQ(a.fault_stats.permanent_deaths, b.fault_stats.permanent_deaths);
  EXPECT_EQ(a.fault_stats.max_concurrent_down, b.fault_stats.max_concurrent_down);
  EXPECT_EQ(a.fault_stats.total_downtime_ms, b.fault_stats.total_downtime_ms);
  EXPECT_EQ(a.fault_stats.outage_time_ms, b.fault_stats.outage_time_ms);
  EXPECT_EQ(a.fault_stats.deliveries_during_outage, b.fault_stats.deliveries_during_outage);
  EXPECT_EQ(a.fault_stats.recoveries_sampled, b.fault_stats.recoveries_sampled);
  EXPECT_EQ(a.fault_stats.mean_recovery_latency_ms, b.fault_stats.mean_recovery_latency_ms);
  EXPECT_EQ(a.fault_stats.repairs_unrecovered, b.fault_stats.repairs_unrecovered);
  EXPECT_EQ(a.dbf_total.rounds, b.dbf_total.rounds);
  EXPECT_EQ(a.dbf_total.messages, b.dbf_total.messages);
  EXPECT_EQ(a.dbf_total.message_bytes, b.dbf_total.message_bytes);
  EXPECT_EQ(a.dbf_total.energy_uj, b.dbf_total.energy_uj);
  EXPECT_EQ(a.dbf_total.converged, b.dbf_total.converged);
  EXPECT_EQ(a.failures_injected, b.failures_injected);
  EXPECT_EQ(a.mobility_epochs, b.mobility_epochs);
  EXPECT_EQ(a.given_up, b.given_up);
  EXPECT_EQ(a.sim_time_ms, b.sim_time_ms);
  EXPECT_EQ(a.events_executed, b.events_executed);
  EXPECT_EQ(a.event_limit_hit, b.event_limit_hit);
}

SweepSpec small_spec() {
  SweepSpec spec;
  spec.name = "store-test";
  spec.base.node_count = 16;
  spec.base.zone_radius_m = 12.0;
  spec.base.traffic.packets_per_node = 1;
  spec.protocols = {ProtocolKind::kSpms, ProtocolKind::kSpin};
  spec.seeds = {1, 2};
  return spec;
}

// --- canonical serialization -------------------------------------------------

TEST(CanonicalTest, EqualConfigsSerializeAndHashIdentically) {
  const ExperimentConfig a, b;
  EXPECT_EQ(canonical_config_json(a), canonical_config_json(b));
  EXPECT_EQ(config_key(a), config_key(b));
  EXPECT_EQ(config_key(a).size(), 16u);
  EXPECT_EQ(config_key(a), key_for_canonical(canonical_config_json(a)));
}

TEST(CanonicalTest, KeyReactsToEveryKindOfKnob) {
  const ExperimentConfig base;
  const auto mutated_key = [&](auto&& mutate) {
    ExperimentConfig c = base;
    mutate(c);
    return config_key(c);
  };
  const std::string k0 = config_key(base);
  std::set<std::string> keys{k0};
  keys.insert(mutated_key([](auto& c) { c.seed += 1; }));
  keys.insert(mutated_key([](auto& c) { c.label = "x"; }));
  keys.insert(mutated_key([](auto& c) { c.protocol = ProtocolKind::kSpin; }));
  keys.insert(mutated_key([](auto& c) { c.pattern = TrafficPattern::kCluster; }));
  keys.insert(mutated_key([](auto& c) { c.deployment = Deployment::kUniformRandom; }));
  keys.insert(mutated_key([](auto& c) { c.node_count = 170; }));
  keys.insert(mutated_key([](auto& c) { c.zone_radius_m += 0.5; }));
  keys.insert(mutated_key([](auto& c) { c.mac.carrier_sense = false; }));
  keys.insert(mutated_key([](auto& c) { c.mac.num_slots += 1; }));
  keys.insert(mutated_key([](auto& c) { c.energy.rx_power_mw *= 2; }));
  keys.insert(mutated_key([](auto& c) { c.proto.tout_dat = sim::Duration::ms(9.0); }));
  keys.insert(mutated_key([](auto& c) { c.spms_ext.num_scones = 2; }));
  keys.insert(mutated_key([](auto& c) { c.traffic.packets_per_node += 1; }));
  keys.insert(mutated_key([](auto& c) { c.dbf.charge_energy = false; }));
  keys.insert(mutated_key([](auto& c) { c.faults.crash.enabled = true; }));
  keys.insert(
      mutated_key([](auto& c) { c.faults.crash.repair_max = sim::Duration::ms(16.0); }));
  keys.insert(mutated_key([](auto& c) { c.faults.region.enabled = true; }));
  keys.insert(mutated_key([](auto& c) { c.faults.region.radius_m = 11.0; }));
  keys.insert(mutated_key([](auto& c) { c.faults.battery.enabled = true; }));
  keys.insert(mutated_key([](auto& c) { c.battery.finite = true; }));
  keys.insert(mutated_key([](auto& c) { c.battery.capacity_uj = 123.0; }));
  keys.insert(mutated_key([](auto& c) { c.battery.heterogeneity = 0.25; }));
  keys.insert(mutated_key([](auto& c) { c.battery.idle_drain_mw = 0.02; }));
  keys.insert(mutated_key([](auto& c) { c.battery.idle_tick = sim::Duration::ms(51.0); }));
  keys.insert(mutated_key([](auto& c) { c.faults.link.enabled = true; }));
  keys.insert(mutated_key([](auto& c) { c.faults.link.drop_end = 0.5; }));
  keys.insert(mutated_key([](auto& c) { c.faults.sink_churn.enabled = true; }));
  keys.insert(mutated_key([](auto& c) { c.faults.sink_churn.hops = 3; }));
  keys.insert(mutated_key([](auto& c) { c.mobility = true; }));
  keys.insert(mutated_key([](auto& c) { c.mobility_params.move_fraction = 0.2; }));
  keys.insert(mutated_key([](auto& c) { c.cluster_p_other = 0.06; }));
  keys.insert(mutated_key([](auto& c) { c.activity_horizon = sim::Duration::ms(101.0); }));
  keys.insert(mutated_key([](auto& c) { c.max_events = 1; }));
  EXPECT_EQ(keys.size(), 34u) << "some mutation did not change the config key";
}

TEST(CanonicalTest, ResultRoundTripsBitExactly) {
  const RunResult original = awkward_result();
  const std::string json = result_to_json(original);
  const auto parsed = result_from_json(json);
  ASSERT_TRUE(parsed.has_value());
  expect_bit_identical(original, *parsed);
  // Canonical: re-serializing the parse reproduces the bytes.
  EXPECT_EQ(result_to_json(*parsed), json);
}

TEST(CanonicalTest, MalformedResultJsonIsRejected) {
  const std::string good = result_to_json(awkward_result());
  EXPECT_FALSE(result_from_json("").has_value());
  EXPECT_FALSE(result_from_json("{").has_value());
  EXPECT_FALSE(result_from_json(good.substr(0, good.size() / 2)).has_value());
  EXPECT_FALSE(result_from_json(good + "x").has_value());
  EXPECT_FALSE(result_from_json("{\"nodes\":\"not a number\"}").has_value());
}

TEST(CanonicalTest, RecordLineRoundTrips) {
  const ExperimentConfig cfg;
  const std::string canonical = canonical_config_json(cfg);
  const std::string key = config_key(cfg);
  const std::string result_json = result_to_json(awkward_result());
  const auto rec = parse_record_line(make_record_line(key, canonical, result_json));
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(rec->schema, kSchemaVersion);
  EXPECT_EQ(rec->key, key);
  EXPECT_EQ(rec->config_json, canonical);
  EXPECT_EQ(rec->result_json, result_json);
  EXPECT_FALSE(parse_record_line("not json at all").has_value());
  EXPECT_FALSE(parse_record_line("{\"schema\":1,\"key\":\"k\"}").has_value());
}

// --- ResultStore -------------------------------------------------------------

TEST_F(StoreTest, PersistsAndReloads) {
  const auto dir = temp_dir();
  ExperimentConfig cfg_a;
  ExperimentConfig cfg_b;
  cfg_b.seed = 99;
  const auto result = awkward_result();
  {
    ResultStore store{dir};
    store.put(config_key(cfg_a), canonical_config_json(cfg_a), result);
    store.put(config_key(cfg_b), canonical_config_json(cfg_b), result);
    EXPECT_EQ(store.size(), 2u);
  }
  ResultStore reloaded{dir};
  reloaded.load();
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_EQ(reloaded.corrupt_lines(), 0u);
  const auto hit = reloaded.find(config_key(cfg_a), canonical_config_json(cfg_a));
  ASSERT_TRUE(hit.has_value());
  expect_bit_identical(result, *hit);
  // Unknown key and key/config mismatch both read as misses.
  EXPECT_FALSE(reloaded.find("0000000000000000", canonical_config_json(cfg_a)).has_value());
  EXPECT_FALSE(reloaded.find(config_key(cfg_a), canonical_config_json(cfg_b)).has_value());
}

TEST_F(StoreTest, SkipsCorruptAndForeignLinesButKeepsTheRest) {
  const auto dir = temp_dir();
  ExperimentConfig cfg;
  {
    ResultStore store{dir};
    store.put(config_key(cfg), canonical_config_json(cfg), awkward_result());
  }
  {
    // Simulate a crash-truncated tail, editor noise, a key/config mismatch,
    // and a foreign schema version, all appended after the good record.
    std::ofstream out{dir / "results.jsonl", std::ios::app};
    out << "{\"schema\":1,\"key\":\"dead\",\"config\":{\"trunca";  // no newline needed
    out << "\nnot json\n\n";
    out << make_record_line("beefbeefbeefbeef", canonical_config_json(cfg),
                            result_to_json(awkward_result()))
        << "\n";  // key does not hash from config
    std::string foreign = make_record_line(config_key(cfg), canonical_config_json(cfg),
                                           result_to_json(awkward_result()));
    const std::string current = "\"schema\":" + std::to_string(kSchemaVersion);
    foreign.replace(foreign.find(current), current.size(), "\"schema\":0");
    out << foreign << "\n";
  }
  ResultStore store{dir};
  store.load();
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.corrupt_lines(), 3u);  // truncated + noise + key mismatch; foreign is invisible
  EXPECT_TRUE(store.find(config_key(cfg), canonical_config_json(cfg)).has_value());
}

TEST_F(StoreTest, LastCompleteRecordWinsAndCompactDeduplicates) {
  const auto dir = temp_dir();
  ExperimentConfig cfg;
  RunResult first = awkward_result();
  RunResult second = awkward_result();
  second.deliveries += 1;
  {
    ResultStore store{dir};
    store.put(config_key(cfg), canonical_config_json(cfg), first);
    store.put(config_key(cfg), canonical_config_json(cfg), second);
  }
  ResultStore store{dir};
  store.load();
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.find(config_key(cfg), canonical_config_json(cfg))->deliveries,
            second.deliveries);
  store.compact();
  // One file, one line, still the winning record.
  std::size_t files = 0;
  for (const auto& e : fs::directory_iterator{dir}) {
    ++files;
    EXPECT_EQ(e.path().filename(), "results.jsonl");
  }
  EXPECT_EQ(files, 1u);
  ResultStore compacted{dir};
  compacted.load();
  EXPECT_EQ(compacted.size(), 1u);
  expect_bit_identical(second, *compacted.find(config_key(cfg), canonical_config_json(cfg)));
}

TEST_F(StoreTest, CompactWithoutLoadPreservesDiskRecords) {
  const auto dir = temp_dir();
  ExperimentConfig on_disk;
  ExperimentConfig in_memory;
  in_memory.seed = 42;
  {
    ResultStore store{dir};
    store.put(config_key(on_disk), canonical_config_json(on_disk), awkward_result());
  }
  // A fresh handle that never load()ed: compact must fold the disk record
  // in rather than erase it with its (partial) in-memory view.
  ResultStore store{dir};
  store.put(config_key(in_memory), canonical_config_json(in_memory), awkward_result());
  store.compact();
  ResultStore reloaded{dir};
  reloaded.load();
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.find(config_key(on_disk), canonical_config_json(on_disk)).has_value());
  EXPECT_TRUE(
      reloaded.find(config_key(in_memory), canonical_config_json(in_memory)).has_value());
}

TEST_F(StoreTest, MergeUnionsDisjointAndOverlappingStores) {
  const auto dir_a = temp_dir();
  const auto dir_b = temp_dir();
  ExperimentConfig shared;
  ExperimentConfig only_b;
  only_b.seed = 77;
  ResultStore a{dir_a};
  a.put(config_key(shared), canonical_config_json(shared), awkward_result());
  ResultStore b{dir_b};
  b.put(config_key(shared), canonical_config_json(shared), awkward_result());
  b.put(config_key(only_b), canonical_config_json(only_b), awkward_result());
  EXPECT_EQ(a.merge_from(b), 1u);  // the shared record is not duplicated
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a.merge_from(a), 0u);  // self-merge is a no-op
  // The merge reached disk, not just memory.
  ResultStore reloaded{dir_a};
  reloaded.load();
  EXPECT_EQ(reloaded.size(), 2u);
  EXPECT_TRUE(reloaded.find(config_key(only_b), canonical_config_json(only_b)).has_value());
}

TEST_F(StoreTest, InventoryReportsScenariosSchemasAndCorruption) {
  const auto dir = temp_dir();
  ExperimentConfig a;
  a.label = "figX/SPMS/n16/r12/s1";
  ExperimentConfig b = a;
  b.label = "figX/SPMS/n16/r12/s2";
  b.seed = 2;
  ExperimentConfig c;
  c.label = "faults-smoke/SPMS/n16/r12/crash/s1";
  ExperimentConfig unlabeled;  // single-run config: empty label
  {
    ResultStore store{dir};
    const auto with_label = [&](const ExperimentConfig& cfg) {
      RunResult r = awkward_result();
      r.label = cfg.label;
      store.put(config_key(cfg), canonical_config_json(cfg), r);
    };
    with_label(a);
    with_label(b);
    with_label(b);  // duplicate key: must count once
    with_label(c);
    with_label(unlabeled);
  }
  {
    // One corrupt line and one foreign-schema line.
    std::ofstream out{dir / "results.jsonl", std::ios::app};
    out << "garbage\n";
    std::string foreign = make_record_line(config_key(a), canonical_config_json(a),
                                           result_to_json(awkward_result()));
    const std::string current = "\"schema\":" + std::to_string(kSchemaVersion);
    foreign.replace(foreign.find(current), current.size(), "\"schema\":1");
    out << foreign << "\n";
  }
  ResultStore store{dir};
  const auto inv = store.inventory();
  EXPECT_EQ(inv.files, 1u);
  EXPECT_EQ(inv.total_lines, 7u);
  EXPECT_EQ(inv.corrupt_lines, 1u);
  EXPECT_EQ(inv.schema_lines.at(kSchemaVersion), 5u);
  EXPECT_EQ(inv.schema_lines.at(1), 1u);
  EXPECT_EQ(inv.scenarios.at("figX"), 2u);
  EXPECT_EQ(inv.scenarios.at("faults-smoke"), 1u);
  EXPECT_EQ(inv.scenarios.at("(unlabeled)"), 1u);
}

// --- BatchRunner integration -------------------------------------------------

TEST_F(StoreTest, WarmRunExecutesNothingAndIsBitIdenticalAtAnyJobs) {
  const auto spec = small_spec();
  ResultStore store{temp_dir()};

  BatchOptions cold_opts;
  cold_opts.jobs = 4;
  cold_opts.store = &store;
  const auto cold = BatchRunner{cold_opts}.run(spec);
  EXPECT_EQ(cold.executed(), 4u);
  EXPECT_EQ(cold.cached(), 0u);
  EXPECT_EQ(store.size(), 4u);

  for (const std::size_t jobs : {std::size_t{1}, std::size_t{8}}) {
    BatchOptions warm_opts;
    warm_opts.jobs = jobs;
    warm_opts.store = &store;
    std::size_t callbacks = 0;
    warm_opts.on_result = [&](const SweepJob&, const RunResult&, std::size_t, std::size_t) {
      ++callbacks;
    };
    const auto warm = BatchRunner{warm_opts}.run(spec);
    EXPECT_EQ(warm.executed(), 0u) << "jobs=" << jobs;
    EXPECT_EQ(warm.cached(), 4u);
    EXPECT_EQ(callbacks, 0u) << "cache hits must not replay through on_result";
    ASSERT_EQ(warm.runs().size(), cold.runs().size());
    for (std::size_t i = 0; i < cold.runs().size(); ++i) {
      expect_bit_identical(cold.runs()[i], warm.runs()[i]);
    }
    // Aggregates are recomputed from bit-identical inputs, so they match too.
    ASSERT_EQ(warm.points().size(), cold.points().size());
    for (std::size_t p = 0; p < cold.points().size(); ++p) {
      EXPECT_EQ(warm.points()[p].stats.mean_delay_ms.mean,
                cold.points()[p].stats.mean_delay_ms.mean);
      EXPECT_EQ(warm.points()[p].stats.protocol_energy_per_item_uj.stddev,
                cold.points()[p].stats.protocol_energy_per_item_uj.stddev);
    }
  }
}

TEST_F(StoreTest, PartialStoreRunsOnlyTheMissingCells) {
  const auto spec = small_spec();
  ResultStore store{temp_dir()};
  const auto jobs = spec.expand();
  // Pre-populate two of the four cells with genuine results.
  for (const std::size_t i : {std::size_t{0}, std::size_t{3}}) {
    store.put(config_key(jobs[i].config), canonical_config_json(jobs[i].config),
              run_experiment(jobs[i].config));
  }
  BatchOptions opts;
  opts.jobs = 2;
  opts.store = &store;
  std::size_t reported_total = 0;
  opts.on_result = [&](const SweepJob&, const RunResult&, std::size_t, std::size_t total) {
    reported_total = total;
  };
  const auto batch = BatchRunner{opts}.run(spec);
  EXPECT_EQ(batch.executed(), 2u);
  EXPECT_EQ(batch.cached(), 2u);
  EXPECT_EQ(reported_total, 2u) << "on_result totals must count executed jobs only";
  EXPECT_EQ(store.size(), 4u);
}

TEST_F(StoreTest, NoCacheReexecutesButStillWritesThrough) {
  const auto spec = small_spec();
  ResultStore store{temp_dir()};
  BatchOptions opts;
  opts.jobs = 2;
  opts.store = &store;
  const auto cold = BatchRunner{opts}.run(spec);
  opts.use_cache = false;
  const auto forced = BatchRunner{opts}.run(spec);
  EXPECT_EQ(forced.executed(), 4u);
  EXPECT_EQ(forced.cached(), 0u);
  for (std::size_t i = 0; i < cold.runs().size(); ++i) {
    expect_bit_identical(cold.runs()[i], forced.runs()[i]);
  }
  EXPECT_EQ(store.size(), 4u);
}

// --- sharding ----------------------------------------------------------------

TEST(ShardTest, FilterShardPartitionsJobsExactly) {
  SweepSpec spec = small_spec();
  spec.node_counts = {16, 25};  // 4 points x 2 seeds = 8 jobs
  const auto all = spec.expand();
  EXPECT_THROW((void)filter_shard(spec.expand(), 2, 2), std::invalid_argument);
  EXPECT_THROW((void)filter_shard(spec.expand(), 0, 0), std::invalid_argument);
  std::set<std::string> seen;
  std::size_t total = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const auto shard = filter_shard(spec.expand(), s, 3);
    total += shard.size();
    for (std::size_t i = 0; i < shard.size(); ++i) {
      EXPECT_EQ(shard[i].index, i) << "shard indices must be contiguous";
      seen.insert(shard[i].config.label);  // labels keep canonical coordinates
    }
  }
  EXPECT_EQ(total, all.size());
  EXPECT_EQ(seen.size(), all.size()) << "shards must partition the sweep";
}

TEST_F(StoreTest, MergedShardStoresReproduceTheUnshardedRunExactly) {
  const auto spec = small_spec();
  const auto unsharded = BatchRunner{{}}.run(spec);

  ResultStore shard0{temp_dir()};
  ResultStore shard1{temp_dir()};
  for (std::size_t s = 0; s < 2; ++s) {
    BatchOptions opts;
    opts.jobs = 2;
    opts.store = s == 0 ? &shard0 : &shard1;
    opts.shard_index = s;
    opts.shard_count = 2;
    const auto part = BatchRunner{opts}.run(spec);
    EXPECT_EQ(part.runs().size(), 2u);
    EXPECT_EQ(part.executed(), 2u);
  }

  ResultStore merged{temp_dir()};
  EXPECT_EQ(merged.merge_from(shard0), 2u);
  EXPECT_EQ(merged.merge_from(shard1), 2u);

  BatchOptions warm_opts;
  warm_opts.store = &merged;
  const auto warm = BatchRunner{warm_opts}.run(spec);
  EXPECT_EQ(warm.executed(), 0u);
  EXPECT_EQ(warm.cached(), 4u);
  ASSERT_EQ(warm.runs().size(), unsharded.runs().size());
  for (std::size_t i = 0; i < warm.runs().size(); ++i) {
    expect_bit_identical(unsharded.runs()[i], warm.runs()[i]);
  }
}

// --- store gc ----------------------------------------------------------------

/// Writes one good record plus one schema-v1 line and one corrupt line.
void seed_mixed_store(const fs::path& dir, const ExperimentConfig& cfg) {
  {
    ResultStore store{dir};
    store.put(config_key(cfg), canonical_config_json(cfg), awkward_result());
  }
  std::ofstream out{dir / "results.jsonl", std::ios::app};
  std::string foreign = make_record_line(config_key(cfg), canonical_config_json(cfg),
                                         result_to_json(awkward_result()));
  const std::string current = "\"schema\":" + std::to_string(kSchemaVersion);
  foreign.replace(foreign.find(current), current.size(), "\"schema\":1");
  out << foreign << "\n";
  out << "corrupt, not json\n";
}

TEST_F(StoreTest, GcEvictsForeignSchemaAndCorruptLines) {
  const auto dir = temp_dir();
  ExperimentConfig cfg;
  seed_mixed_store(dir, cfg);

  ResultStore store{dir};
  const auto report = store.gc({});
  EXPECT_FALSE(report.dry_run);
  EXPECT_EQ(report.kept, 1u);
  EXPECT_EQ(report.evicted_schema, 1u);
  EXPECT_EQ(report.evicted_age, 0u);
  EXPECT_EQ(report.dropped_corrupt, 1u);

  // Only the clean record survives, and a reload sees nothing corrupt.
  ResultStore reloaded{dir};
  reloaded.load();
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_EQ(reloaded.corrupt_lines(), 0u);
  expect_bit_identical(awkward_result(),
                       *reloaded.find(config_key(cfg), canonical_config_json(cfg)));
  EXPECT_EQ(reloaded.inventory().schema_lines.count(1), 0u);
}

TEST_F(StoreTest, GcDryRunReportsButTouchesNothing) {
  const auto dir = temp_dir();
  ExperimentConfig cfg;
  seed_mixed_store(dir, cfg);

  GcOptions options;
  options.dry_run = true;
  ResultStore store{dir};
  const auto report = store.gc(options);
  EXPECT_TRUE(report.dry_run);
  EXPECT_EQ(report.kept, 1u);
  EXPECT_EQ(report.evicted_schema, 1u);
  EXPECT_EQ(report.dropped_corrupt, 1u);

  // The stale lines are still on disk: a fresh inventory sees the v1 record
  // and the corrupt line exactly as before.
  const auto inv = ResultStore{dir}.inventory();
  EXPECT_EQ(inv.schema_lines.at(1), 1u);
  EXPECT_EQ(inv.corrupt_lines, 1u);
}

TEST_F(StoreTest, GcAgeEvictionDropsOldFilesRecords) {
  const auto dir = temp_dir();
  ExperimentConfig old_cfg;
  ExperimentConfig new_cfg;
  new_cfg.seed = 77;
  {
    // Old records live in their own shard file whose mtime we age by hand.
    ResultStore store{dir};
    store.put(config_key(old_cfg), canonical_config_json(old_cfg), awkward_result());
  }
  fs::rename(dir / "results.jsonl", dir / "aged.jsonl");
  fs::last_write_time(dir / "aged.jsonl",
                      fs::file_time_type::clock::now() - std::chrono::hours{10 * 24});
  {
    ResultStore store{dir};
    store.put(config_key(new_cfg), canonical_config_json(new_cfg), awkward_result());
  }

  GcOptions options;
  options.max_age_days = 7.0;
  ResultStore store{dir};
  const auto report = store.gc(options);
  EXPECT_EQ(report.evicted_age, 1u);
  EXPECT_EQ(report.kept, 1u);

  ResultStore reloaded{dir};
  reloaded.load();
  EXPECT_EQ(reloaded.size(), 1u);
  EXPECT_FALSE(reloaded.find(config_key(old_cfg), canonical_config_json(old_cfg)).has_value());
  EXPECT_TRUE(reloaded.find(config_key(new_cfg), canonical_config_json(new_cfg)).has_value());
}

TEST(ShardTest, ShardedBatchCarriesOnlyTouchedPoints) {
  SweepSpec spec = small_spec();
  spec.seeds = {1};  // 2 points x 1 seed: shard 0/2 sees exactly one point
  BatchOptions opts;
  opts.shard_count = 2;
  const auto batch = BatchRunner{opts}.run(spec);
  ASSERT_EQ(batch.runs().size(), 1u);
  ASSERT_EQ(batch.points().size(), 1u);
  EXPECT_EQ(batch.points()[0].protocol, ProtocolKind::kSpms);
  EXPECT_THROW((void)batch.point(ProtocolKind::kSpin, 16, 12.0), std::out_of_range);
}

}  // namespace
}  // namespace spms::exp::store
