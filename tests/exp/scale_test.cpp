#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "exp/batch.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_registry.hpp"
#include "exp/store/canonical.hpp"

/// The scale-* scenario family and the sketched-quantile engine behind it:
/// registry shape, config-key separation of the two engines, worker-count
/// independence of sketched aggregates, and sketch-vs-exact agreement on a
/// real protocol run.

namespace spms::exp {
namespace {

TEST(ScaleFamilyTest, RegistryCarriesTheFourSizesWithSketchOnTheBigOnes) {
  const struct {
    const char* name;
    std::size_t nodes;
    bool sketch;
  } expected[] = {
      {"scale-1k", 1'000, false},
      {"scale-10k", 10'000, false},
      {"scale-100k", 100'000, true},
      {"scale-1m", 1'000'000, true},
  };
  for (const auto& e : expected) {
    const auto* info = find_scenario(e.name);
    ASSERT_NE(info, nullptr) << e.name;
    const auto spec = info->make();
    EXPECT_EQ(spec.base.node_count, e.nodes) << e.name;
    EXPECT_EQ(spec.base.percentiles.sketch, e.sketch) << e.name;
    EXPECT_EQ(spec.base.pattern, TrafficPattern::kSink) << e.name;
    EXPECT_EQ(spec.base.traffic.packets_per_node, 1u) << e.name;
  }
}

TEST(ScaleFamilyTest, SketchFlagParticipatesInTheConfigKey) {
  // A sketched run answers quantile queries with estimates; it must never
  // share a store entry with an exact run of the same experiment.
  ExperimentConfig exact;
  ExperimentConfig sketched = exact;
  sketched.percentiles.sketch = true;
  EXPECT_NE(store::config_key(exact), store::config_key(sketched));
  ExperimentConfig tighter = sketched;
  tighter.percentiles.compression = 50.0;
  EXPECT_NE(store::config_key(sketched), store::config_key(tighter));
}

TEST(ScaleFamilyTest, SketchedAggregatesAreWorkerCountIndependent) {
  // Per-seed runs are single-threaded and the t-digest is a pure function
  // of its insertion sequence, so the full RunResult serialization — the
  // sketched p95 included — must be byte-identical at --jobs 1 and 8.
  auto spec = find_scenario("scale-1k")->make();
  spec.use_consecutive_seeds(4);
  BatchOptions serial;
  serial.jobs = 1;
  BatchOptions wide;
  wide.jobs = 8;
  const auto r1 = BatchRunner{serial}.run(spec);
  const auto r8 = BatchRunner{wide}.run(spec);
  ASSERT_EQ(r1.runs().size(), 4u);
  ASSERT_EQ(r1.runs().size(), r8.runs().size());
  for (std::size_t i = 0; i < r1.runs().size(); ++i) {
    EXPECT_EQ(store::result_to_json(r1.runs()[i]), store::result_to_json(r8.runs()[i])) << i;
  }
}

TEST(ScaleFamilyTest, SketchedDelayQuantilesTrackTheExactEngine) {
  // Same experiment through both engines: the sketched p95 is an estimate,
  // but on a few hundred delay samples it should sit within a few percent
  // of the exact order statistic.
  ExperimentConfig cfg;
  cfg.node_count = 49;
  cfg.zone_radius_m = 15.0;
  cfg.traffic.packets_per_node = 2;
  const auto exact = run_experiment(cfg);
  cfg.percentiles.sketch = true;
  const auto sketched = run_experiment(cfg);
  // The simulation itself is untouched by the quantile engine.
  EXPECT_EQ(exact.events_executed, sketched.events_executed);
  EXPECT_EQ(exact.deliveries, sketched.deliveries);
  EXPECT_DOUBLE_EQ(exact.mean_delay_ms, sketched.mean_delay_ms);
  EXPECT_DOUBLE_EQ(exact.max_delay_ms, sketched.max_delay_ms);
  ASSERT_GT(exact.p95_delay_ms, 0.0);
  EXPECT_NEAR(sketched.p95_delay_ms, exact.p95_delay_ms, 0.05 * exact.p95_delay_ms);
}

}  // namespace
}  // namespace spms::exp
