#include <gtest/gtest.h>

#include <cstddef>
#include <string>
#include <vector>

#include "exp/batch.hpp"
#include "exp/runner.hpp"
#include "exp/scenario.hpp"
#include "exp/scenario_registry.hpp"
#include "exp/store/canonical.hpp"
#include "sim/simulation.hpp"

/// \file parallel_determinism_test.cpp
/// End-to-end byte-identity across sim-thread counts: every pinned scenario
/// family — the three CI smokes, a paper figure, and a 1k-node scale run —
/// must serialize to exactly the same store record at --sim-threads 1, 2
/// and 8.  result_to_json is the line the result store appends verbatim, so
/// string equality here is store byte-identity (records carry no
/// timestamps).  A direct Scenario run then asserts the full-load mobile
/// figure actually exercises the pool, keeping the suite non-vacuous.

namespace spms::exp {
namespace {

/// Restores the process-wide thread override even on assertion failure
/// (tests share the process with every other suite).
struct ThreadsGuard {
  ~ThreadsGuard() { set_sim_threads(0); }
};

/// Runs the named scenario's whole sweep grid at `threads` sim threads and
/// returns one store line per run.  `max_events` caps each run when nonzero
/// (applied identically at every thread count, so equality still means
/// byte-identity — it just bounds the heavyweight figure grids).
std::vector<std::string> run_scenario_json(const std::string& name, std::size_t threads,
                                           int seeds, std::size_t max_events) {
  auto spec = find_scenario(name)->make();
  spec.use_consecutive_seeds(seeds);
  if (max_events != 0) spec.base.max_events = max_events;
  set_sim_threads(threads);
  BatchOptions options;
  options.jobs = 1;
  const auto batch = BatchRunner{options}.run(spec);
  std::vector<std::string> json;
  json.reserve(batch.runs().size());
  for (const auto& r : batch.runs()) json.push_back(store::result_to_json(r));
  return json;
}

/// Shared body: store records at sim-threads 2 and 8 must equal the
/// sequential baseline, run by run.
void expect_byte_identical(const std::string& name, int seeds, std::size_t max_events) {
  ThreadsGuard guard;
  const auto base = run_scenario_json(name, 1, seeds, max_events);
  ASSERT_FALSE(base.empty()) << name;
  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    const auto wide = run_scenario_json(name, threads, seeds, max_events);
    ASSERT_EQ(base.size(), wide.size()) << name << " threads " << threads;
    for (std::size_t i = 0; i < base.size(); ++i) {
      EXPECT_EQ(base[i], wide[i])
          << name << " run " << i << " diverges at " << threads << " sim threads";
    }
  }
}

// One TEST per family so each fits comfortably inside the per-test ctest
// timeout; fig12's grid is capped (full-load mobility runs ~20M events per
// cell, and the grid spans protocols x radii x seeds).

TEST(ParallelDeterminismTest, SmokeScenarioIsByteIdenticalAcrossThreadCounts) {
  expect_byte_identical("smoke", /*seeds=*/2, /*max_events=*/0);
}

TEST(ParallelDeterminismTest, FaultsSmokeIsByteIdenticalAcrossThreadCounts) {
  expect_byte_identical("faults-smoke", /*seeds=*/2, /*max_events=*/0);
}

TEST(ParallelDeterminismTest, LifetimeSmokeIsByteIdenticalAcrossThreadCounts) {
  expect_byte_identical("lifetime-smoke", /*seeds=*/2, /*max_events=*/0);
}

TEST(ParallelDeterminismTest, Fig12GridIsByteIdenticalAcrossThreadCounts) {
  // The one family that demonstrably reaches the pool (see the pool-reach
  // test below), so its coverage matters most: mobility epochs, spatial-tag
  // invalidation, and full-load MAC contention all in play.
  expect_byte_identical("fig12", /*seeds=*/1, /*max_events=*/500'000);
}

TEST(ParallelDeterminismTest, Scale1kIsByteIdenticalAcrossThreadCounts) {
  expect_byte_identical("scale-1k", /*seeds=*/2, /*max_events=*/0);
}

TEST(ParallelDeterminismTest, FullLoadScenarioReachesTheWorkerPool) {
  // Byte-identity above would be vacuously true if every batch degenerated
  // to the sequential path.  The sink-pattern scale family barely ties
  // (measured: ~1.02 events per batch — one packet per node at continuous
  // exponential instants), but fig12's full-load all-to-all traffic forms
  // multi-group same-time batches within the first few hundred thousand
  // events (measured: 5+ pool batches by 200k).
  auto config = find_scenario("fig12")->make().base;
  config.max_events = 500'000;
  Scenario s{config};
  s.simulation().set_threads(4);
  s.start();
  s.run();
  const auto& stats = s.simulation().scheduler().parallel_stats();
  EXPECT_GT(stats.batches, 0u);
  EXPECT_GT(stats.parallel_batches, 0u) << "no batch ever ran on the pool";
  EXPECT_GT(stats.parallel_groups, stats.parallel_batches)
      << "pool batches never split into multiple groups";
}

TEST(ParallelDeterminismTest, ThreadCountStaysOutOfTheConfigKey) {
  // The knob is an execution detail like --jobs: two runs of the same
  // experiment at different thread counts must share one store entry.
  const ExperimentConfig config = find_scenario("smoke")->make().base;
  const auto key = store::config_key(config);
  ThreadsGuard guard;
  set_sim_threads(8);
  EXPECT_EQ(store::config_key(config), key);
}

}  // namespace
}  // namespace spms::exp
