#include <gtest/gtest.h>

#include "exp/runner.hpp"
#include "exp/scenario.hpp"

/// Tests for the sink traffic pattern (§5.1's "source to sink" special
/// case) and the uniform-random deployment variant.

namespace spms::exp {
namespace {

TEST(SinkPatternTest, CentralSinkCollectsEverythingInOneZone) {
  // 25 nodes on a 20 m-wide field with a 20 m zone: every source reaches the
  // central sink's zone, so the published protocol suffices.
  ExperimentConfig cfg;
  cfg.pattern = TrafficPattern::kSink;
  cfg.node_count = 25;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 1;
  cfg.seed = 3;
  for (const auto kind : {ProtocolKind::kSpms, ProtocolKind::kSpin}) {
    cfg.protocol = kind;
    const auto r = run_experiment(cfg);
    EXPECT_EQ(r.expected_deliveries, 24u) << to_string(kind);  // sink's own item excluded
    EXPECT_DOUBLE_EQ(r.delivery_ratio, 1.0) << to_string(kind);
  }
}

TEST(SinkPatternTest, InterestIsSinkOnly) {
  ExperimentConfig cfg;
  cfg.pattern = TrafficPattern::kSink;
  cfg.node_count = 25;
  cfg.zone_radius_m = 20.0;
  Scenario s{cfg};
  const auto& interest = dynamic_cast<const core::SinkInterest&>(s.interest());
  const auto sink = interest.sink();
  EXPECT_TRUE(sink.valid());
  std::size_t wanters = 0;
  const net::DataId item{net::NodeId{0}, 0};
  for (std::uint32_t i = 0; i < s.network().size(); ++i) {
    wanters += interest.wants(net::NodeId{i}, item);
  }
  EXPECT_EQ(wanters, sink == item.origin ? 0u : 1u);
}

TEST(SinkPatternTest, FarSourcesNeedTheCrossZoneExtension) {
  // A 60 m-wide field with a 15 m zone: corner sources cannot reach the
  // central sink under the published protocol; the cross-zone couriers fix
  // it.  This is exactly the scenario the paper's Section 6 motivates.
  ExperimentConfig cfg;
  cfg.pattern = TrafficPattern::kSink;
  cfg.protocol = ProtocolKind::kSpms;
  cfg.node_count = 169;
  cfg.zone_radius_m = 15.0;
  cfg.traffic.packets_per_node = 1;
  cfg.seed = 3;

  const auto published = run_experiment(cfg);
  EXPECT_LT(published.delivery_ratio, 0.5) << "published SPMS should strand far sources";

  cfg.spms_ext.cross_zone_ttl = 6;
  const auto extended = run_experiment(cfg);
  EXPECT_GT(extended.delivery_ratio, 0.95)
      << "couriered metadata should reach the sink from everywhere";
}

TEST(RandomDeploymentTest, RunsDeliverOnDenseRandomFields) {
  ExperimentConfig cfg;
  cfg.deployment = Deployment::kUniformRandom;
  cfg.node_count = 49;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 1;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    cfg.seed = seed;
    cfg.protocol = ProtocolKind::kSpms;
    const auto r = run_experiment(cfg);
    // Random fields can have isolated corners; demand near-complete
    // delivery rather than bitwise 100%.
    EXPECT_GT(r.delivery_ratio, 0.95) << "seed " << seed;
    EXPECT_FALSE(r.event_limit_hit);
  }
}

TEST(RandomDeploymentTest, DeterministicPerSeed) {
  ExperimentConfig cfg;
  cfg.deployment = Deployment::kUniformRandom;
  cfg.node_count = 36;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 1;
  cfg.seed = 9;
  const auto a = run_experiment(cfg);
  const auto b = run_experiment(cfg);
  EXPECT_DOUBLE_EQ(a.mean_delay_ms, b.mean_delay_ms);
  EXPECT_EQ(a.events_executed, b.events_executed);
}

TEST(RandomDeploymentTest, DiffersFromGrid) {
  ExperimentConfig cfg;
  cfg.node_count = 36;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 1;
  cfg.seed = 9;
  cfg.deployment = Deployment::kGrid;
  const auto grid = run_experiment(cfg);
  cfg.deployment = Deployment::kUniformRandom;
  const auto random = run_experiment(cfg);
  EXPECT_NE(grid.mean_delay_ms, random.mean_delay_ms);
}

}  // namespace
}  // namespace spms::exp
