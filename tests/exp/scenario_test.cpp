#include "exp/scenario.hpp"

#include <gtest/gtest.h>

namespace spms::exp {
namespace {

ExperimentConfig tiny(ProtocolKind kind) {
  ExperimentConfig cfg;
  cfg.protocol = kind;
  cfg.node_count = 9;
  cfg.zone_radius_m = 12.0;
  cfg.traffic.packets_per_node = 1;
  return cfg;
}

TEST(ScenarioTest, BuildsAllComponentsForSpms) {
  Scenario s{tiny(ProtocolKind::kSpms)};
  EXPECT_EQ(s.network().size(), 9u);
  EXPECT_NE(s.routing(), nullptr);
  EXPECT_EQ(s.protocol().name(), "SPMS");
  EXPECT_EQ(s.faults(), nullptr);
  EXPECT_EQ(s.mobility(), nullptr);
  // 3x3 grid at 5 m pitch spans 10 m.
  EXPECT_DOUBLE_EQ(s.field_side_m(), 10.0);
  // The initial DBF build ran in the constructor.
  EXPECT_GT(s.routing()->total_stats().rounds, 0u);
  EXPECT_GT(s.network().energy().routing_uj(), 0.0);
}

TEST(ScenarioTest, SpinHasNoRoutingService) {
  Scenario s{tiny(ProtocolKind::kSpin)};
  EXPECT_EQ(s.routing(), nullptr);
  EXPECT_EQ(s.protocol().name(), "SPIN");
  EXPECT_DOUBLE_EQ(s.network().energy().routing_uj(), 0.0);
}

TEST(ScenarioTest, NonSquareNodeCountTruncatesGrid) {
  auto cfg = tiny(ProtocolKind::kSpin);
  cfg.node_count = 7;  // grid side 3, last two slots unpopulated
  Scenario s{cfg};
  EXPECT_EQ(s.network().size(), 7u);
}

TEST(ScenarioTest, StartThenRunDeliversTraffic) {
  auto cfg = tiny(ProtocolKind::kSpms);
  Scenario s{cfg};
  s.start();
  const auto events = s.run();
  EXPECT_GT(events, 0u);
  EXPECT_TRUE(s.collector().all_delivered());
  EXPECT_EQ(s.collector().published(), 9u);
}

TEST(ScenarioTest, FaultControllerWiredWhenConfigured) {
  auto cfg = tiny(ProtocolKind::kSpms);
  cfg.faults.crash.enabled = true;
  cfg.activity_horizon = sim::Duration::ms(300);
  Scenario s{cfg};
  ASSERT_NE(s.faults(), nullptr);
  s.start();
  s.run();
  EXPECT_GT(s.faults()->failures_injected(), 0u);
  // All repairs completed: network ends fully up.
  for (std::uint32_t i = 0; i < s.network().size(); ++i) {
    EXPECT_TRUE(s.network().is_up(net::NodeId{i}));
  }
}

TEST(ScenarioTest, MobilityRebuildsRouting) {
  auto cfg = tiny(ProtocolKind::kSpms);
  cfg.mobility = true;
  cfg.mobility_params.epoch_interval = sim::Duration::ms(20);
  cfg.activity_horizon = sim::Duration::ms(70);
  Scenario s{cfg};
  ASSERT_NE(s.mobility(), nullptr);
  const auto initial_rounds = s.routing()->total_stats().rounds;
  s.start();
  s.run();
  EXPECT_GE(s.mobility()->epochs(), 3u);
  EXPECT_GT(s.routing()->total_stats().rounds, initial_rounds);
}

TEST(ScenarioTest, SpmsExtensionsReachTheProtocol) {
  auto cfg = tiny(ProtocolKind::kSpms);
  cfg.spms_ext.relay_caching = true;
  cfg.spms_ext.num_scones = 3;
  Scenario s{cfg};  // must construct cleanly and run
  s.start();
  s.run();
  EXPECT_TRUE(s.collector().all_delivered());
}

TEST(ScenarioTest, PaperMacModeRuns) {
  auto cfg = tiny(ProtocolKind::kSpms);
  cfg.mac.infinite_parallelism = true;
  cfg.mac.contention_g_ms = 0.01;
  cfg.proto.tout_adv = sim::Duration::ms(60.0);
  cfg.proto.tout_dat = sim::Duration::ms(120.0);
  Scenario s{cfg};
  s.start();
  s.run();
  EXPECT_TRUE(s.collector().all_delivered());
}

}  // namespace
}  // namespace spms::exp
