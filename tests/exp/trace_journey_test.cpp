#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "analysis/trace_report.hpp"
#include "exp/batch.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_registry.hpp"
#include "exp/store/result_store.hpp"
#include "exp/telemetry.hpp"

/// End-to-end contracts of the causal tracing layer: every delivered item on
/// the smoke families must reconstruct a complete parent-linked journey back
/// to its publish (the ISSUE's >= 99% acceptance bar — with an unbounded
/// sink nothing is evicted, so the suite demands 100%), the trace report
/// must attribute hops and relay energy coherently, and the sweep rollup
/// sidecar must be byte-identical at any worker count.

namespace spms::exp {
namespace {

namespace fs = std::filesystem;

TelemetryOptions spans_on() {
  TelemetryOptions t;
  t.spans = true;
  return t;
}

class JourneyCompleteness : public ::testing::TestWithParam<const char*> {};

TEST_P(JourneyCompleteness, DeliveredItemsChainBackToTheirPublish) {
  const auto* info = find_scenario(GetParam());
  ASSERT_NE(info, nullptr);
  const auto jobs = info->make().expand();
  ASSERT_FALSE(jobs.empty());

  // One run per protocol arm, like the byte-identity suite.
  std::string seen;
  for (const auto& job : jobs) {
    const std::string proto{to_string(job.protocol)};
    if (seen.find(proto) != std::string::npos) continue;
    seen += proto;

    const auto r = run_experiment(job.config, spans_on());
    ASSERT_NE(r.spans, nullptr) << proto;
    const auto js = r.spans->journey_stats();
    EXPECT_EQ(js.delivered, r.deliveries) << proto;
    // The sink feeds the assembly every record — nothing is ring-evicted,
    // so every delivered span must close a complete chain.
    EXPECT_EQ(js.complete, js.delivered) << proto;
    EXPECT_EQ(js.orphaned, 0u) << proto;
    EXPECT_GE(js.completeness(), 0.99) << proto;
    if (r.deliveries > 0) EXPECT_GE(js.max_depth, 1u) << proto;
  }
}

INSTANTIATE_TEST_SUITE_P(SmokeFamilies, JourneyCompleteness,
                         ::testing::Values("smoke", "faults-smoke", "lifetime-smoke"),
                         [](const auto& info) {
                           std::string name{info.param};
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TraceReport, HopLatencyAndRelayEnergyAreCoherent) {
  const auto* info = find_scenario("smoke");
  ASSERT_NE(info, nullptr);
  const auto jobs = info->make().expand();
  // The SPMS arm: the only protocol with relays to attribute.
  const SweepJob* spms_job = nullptr;
  for (const auto& job : jobs) {
    if (job.protocol == ProtocolKind::kSpms) {
      spms_job = &job;
      break;
    }
  }
  ASSERT_NE(spms_job, nullptr);

  const auto r = run_experiment(spms_job->config, spans_on());
  ASSERT_NE(r.spans, nullptr);
  ASSERT_EQ(r.node_energy_uj.size(), r.nodes);

  const auto report = analysis::build_trace_report(*r.spans, r.node_energy_uj);
  ASSERT_FALSE(report.per_depth.empty());
  std::size_t hop_spans = 0;
  for (const auto& h : report.per_depth) {
    EXPECT_GE(h.depth, 1);
    EXPECT_GT(h.count, 0u);
    EXPECT_GE(h.mean_hop_ms, 0.0);
    EXPECT_GE(h.max_hop_ms, h.mean_hop_ms);
    // The chain to the root is at least as long as the last hop.
    EXPECT_GE(h.mean_total_ms, h.mean_hop_ms - 1e-9);
    hop_spans += h.count;
  }
  EXPECT_LE(hop_spans, report.journeys.delivered);

  // Every node that served a copy spent energy doing so.
  for (const auto& row : report.relays) {
    EXPECT_LT(row.node.v, r.nodes);
    if (row.served > 0 || row.relayed_data > 0) EXPECT_GT(row.energy_uj, 0.0);
  }
}

std::string slurp(const fs::path& p) {
  std::ostringstream ss;
  ss << std::ifstream{p}.rdbuf();
  return ss.str();
}

TEST(RollupSidecar, BytesAreIdenticalAtAnyWorkerCount) {
  const fs::path base = fs::path{::testing::TempDir()} / "spms_rollup_sidecars";
  fs::remove_all(base);
  fs::create_directories(base);
  const auto spec = find_scenario("smoke")->make();

  std::size_t points = 0;
  const auto run_with_jobs = [&](std::size_t jobs, const fs::path& out) {
    BatchOptions opts;
    opts.jobs = jobs;
    opts.rollup_out = out.string();
    const auto result = BatchRunner{opts}.run(spec);
    EXPECT_EQ(result.cached(), 0u);
    points = result.points().size();
    return slurp(out);
  };

  const auto serial = run_with_jobs(1, base / "serial.jsonl");
  const auto parallel = run_with_jobs(4, base / "parallel.jsonl");
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);

  // Structure: one rollup line per grid point, each carrying the summed
  // trace counters of its executed seeds.
  EXPECT_EQ(static_cast<std::size_t>(std::count(serial.begin(), serial.end(), '\n')), points);
  EXPECT_NE(serial.find(R"("type":"rollup","scenario":"smoke")"), std::string::npos);
  EXPECT_NE(serial.find(R"("counters":{)"), std::string::npos);
  EXPECT_NE(serial.find("trace.delivery"), std::string::npos);
  fs::remove_all(base);
}

TEST(RollupSidecar, CacheHitsAreAccountedNotAggregated) {
  const fs::path base = fs::path{::testing::TempDir()} / "spms_rollup_cache";
  fs::remove_all(base);
  fs::create_directories(base);
  const auto spec = find_scenario("smoke")->make();

  store::ResultStore store{base / "store"};
  const auto run_once = [&](const fs::path& out) {
    BatchOptions opts;
    opts.jobs = 2;
    opts.store = &store;
    opts.rollup_out = out.string();
    return BatchRunner{opts}.run(spec);
  };

  const auto cold = run_once(base / "cold.jsonl");
  EXPECT_EQ(cold.cached(), 0u);
  const auto warm = run_once(base / "warm.jsonl");
  EXPECT_EQ(warm.executed(), 0u);

  const auto cold_bytes = slurp(base / "cold.jsonl");
  const auto warm_bytes = slurp(base / "warm.jsonl");
  EXPECT_NE(cold_bytes.find("\"executed\":"), std::string::npos);
  // A fully-warm sweep has no metrics to aggregate: executed drops to 0 and
  // the counter map empties, but the rollup still names every point.
  EXPECT_NE(warm_bytes.find("\"executed\":0"), std::string::npos);
  EXPECT_NE(warm_bytes.find(R"("counters":{})"), std::string::npos);
  EXPECT_EQ(std::count(warm_bytes.begin(), warm_bytes.end(), '\n'),
            std::count(cold_bytes.begin(), cold_bytes.end(), '\n'));
  fs::remove_all(base);
}

TEST(SpanExports, FilesAreWrittenAndWellFormed) {
  const fs::path base = fs::path{::testing::TempDir()} / "spms_span_exports";
  fs::remove_all(base);
  fs::create_directories(base);

  ExperimentConfig cfg;
  cfg.node_count = 25;
  cfg.traffic.packets_per_node = 1;

  TelemetryOptions t;
  t.spans_out = (base / "spans.jsonl").string();
  t.perfetto_out = (base / "trace.json").string();
  const auto r = run_experiment(cfg, t);
  ASSERT_NE(r.spans, nullptr);

  const auto spans_bytes = slurp(base / "spans.jsonl");
  EXPECT_NE(spans_bytes.find(R"("type":"span")"), std::string::npos);
  EXPECT_NE(spans_bytes.find(R"("type":"span-summary")"), std::string::npos);
  EXPECT_NE(spans_bytes.find(R"("ring_dropped":0)"), std::string::npos);

  const auto perfetto_bytes = slurp(base / "trace.json");
  EXPECT_EQ(perfetto_bytes.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(perfetto_bytes.find(R"("ph":"X")"), std::string::npos);
  fs::remove_all(base);
}

}  // namespace
}  // namespace spms::exp
