#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "exp/aggregate.hpp"
#include "exp/batch.hpp"
#include "exp/scenario_registry.hpp"
#include "exp/store/canonical.hpp"
#include "exp/store/result_store.hpp"
#include "exp/telemetry.hpp"

/// The zero-perturbation contract, pinned: running any scenario family with
/// telemetry fully on (metric catalog + per-kind counters + sampler + trace
/// ring) must leave the run's serialized store bytes identical to a run with
/// telemetry fully off.  Also the unknown_item_deliveries surfacing: the
/// collector has counted deliveries of never-published items since the
/// beginning, but the count used to die inside the collector — it now flows
/// through RunResult, average(), aggregate() and the store schema (v4).

namespace spms::exp {
namespace {

namespace fs = std::filesystem;

TelemetryOptions fully_on() {
  TelemetryOptions t;
  t.metrics = true;
  t.sample_every_ms = 5.0;
  t.trace_ring = 512;
  t.spans = true;  // causal span assembly rides the same sink, same contract
  return t;
}

/// The exact JSONL line the result store would append for this config.
std::string store_line(const ExperimentConfig& cfg, const RunResult& r) {
  const auto canonical = store::canonical_config_json(cfg);
  return store::make_record_line(store::key_for_canonical(canonical), canonical,
                                 store::result_to_json(r));
}

class TelemetryByteIdentity : public ::testing::TestWithParam<const char*> {};

TEST_P(TelemetryByteIdentity, FullyOnTelemetryLeavesStoreBytesIdentical) {
  const auto* info = find_scenario(GetParam());
  ASSERT_NE(info, nullptr);
  auto jobs = info->make().expand();
  ASSERT_FALSE(jobs.empty());

  // One run per protocol arm of the family keeps the suite seconds-cheap
  // while still exercising every emit site the family reaches (SPMS verbs +
  // routing for one arm, SPIN verbs for the other; faults / battery /
  // mobility come from the family's base config).
  std::vector<ExperimentConfig> configs;
  std::string seen_protocols;
  for (const auto& job : jobs) {
    const std::string proto{to_string(job.protocol)};
    if (seen_protocols.find(proto) != std::string::npos) continue;
    seen_protocols += proto;
    auto cfg = job.config;
    if (std::string{GetParam()} == "fig12") {
      // fig12's full 169-node mobile grid is bench-sized; shrink the field
      // but keep what the family is here for — mobility epochs, DBF
      // reconvergence, route-change records.
      cfg.node_count = 49;
      cfg.traffic.packets_per_node = 4;
    }
    configs.push_back(cfg);
  }

  for (const auto& cfg : configs) {
    const auto off = run_experiment(cfg);
    const auto on = run_experiment(cfg, fully_on());

    // The contract, at store granularity: key + canonical config + result
    // are the same bytes, so cache hits and fresh runs stay interchangeable
    // whatever telemetry the fresh run carried.
    EXPECT_EQ(store_line(cfg, off), store_line(cfg, on))
        << GetParam() << " " << off.protocol;

    // And the telemetry actually observed the run rather than being inert.
    EXPECT_GT(on.series.samples(), 0u) << GetParam();
    ASSERT_FALSE(on.series.names.empty());
    // The executed-events gauge must have seen this run's clock: it is
    // nondecreasing and its final sample cannot exceed the run's own total.
    const auto it = std::find(on.series.names.begin(), on.series.names.end(),
                              "sched.events_executed");
    ASSERT_NE(it, on.series.names.end());
    const auto executed = on.series.column(
        static_cast<std::size_t>(it - on.series.names.begin()));
    EXPECT_TRUE(std::is_sorted(executed.begin(), executed.end()));
    EXPECT_GT(executed.back(), 0.0);
    EXPECT_LE(executed.back(), static_cast<double>(on.events_executed));
    EXPECT_TRUE(off.series.empty());  // no sampler attached -> no series
  }
}

INSTANTIATE_TEST_SUITE_P(ScenarioFamilies, TelemetryByteIdentity,
                         ::testing::Values("smoke", "faults-smoke", "lifetime-smoke",
                                           "fig12"),
                         [](const auto& info) {
                           std::string name{info.param};
                           for (auto& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

TEST(TelemetryBatch, StoreFilesAreByteIdenticalWithAndWithoutTelemetry) {
  const fs::path base = fs::path{::testing::TempDir()} / "spms_telemetry_stores";
  fs::remove_all(base);
  const auto spec = find_scenario("smoke")->make();

  const auto run_into = [&](const fs::path& dir, const TelemetryOptions& telemetry) {
    store::ResultStore store{dir};
    BatchOptions opts;
    opts.jobs = 1;  // keep the put() append order deterministic
    opts.store = &store;
    opts.telemetry = telemetry;
    const auto result = BatchRunner{opts}.run(spec);
    EXPECT_EQ(result.cached(), 0u);
    // Concatenate the store's JSONL files in filename order.
    std::vector<fs::path> files;
    for (const auto& e : fs::directory_iterator(dir)) {
      if (e.path().extension() == ".jsonl") files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    std::string bytes;
    for (const auto& f : files) {
      std::ostringstream ss;
      ss << std::ifstream{f}.rdbuf();
      bytes += ss.str();
    }
    return bytes;
  };

  const auto off_bytes = run_into(base / "off", TelemetryOptions{});
  const auto on_bytes = run_into(base / "on", fully_on());
  EXPECT_FALSE(off_bytes.empty());
  EXPECT_EQ(off_bytes, on_bytes);
  fs::remove_all(base);
}

// --- unknown_item_deliveries surfacing ---------------------------------------

TEST(UnknownItemDeliveries, SurfacesThroughRunnerAverageAndAggregate) {
  // A healthy run reports zero.
  ExperimentConfig cfg;
  cfg.node_count = 9;
  cfg.zone_radius_m = 12.0;
  cfg.traffic.packets_per_node = 1;
  const auto healthy = run_experiment(cfg);
  EXPECT_EQ(healthy.unknown_item_deliveries, 0u);

  // average() sums the count (like given_up: a defect tally, not a mean).
  RunResult a = healthy, b = healthy;
  a.unknown_item_deliveries = 2;
  b.unknown_item_deliveries = 3;
  EXPECT_EQ(average({a, b}).unknown_item_deliveries, 5u);

  const auto agg = aggregate({a, b});
  EXPECT_DOUBLE_EQ(agg.unknown_item_deliveries.mean, 2.5);
  EXPECT_DOUBLE_EQ(agg.unknown_item_deliveries.max, 3.0);
}

TEST(UnknownItemDeliveries, RoundTripsThroughTheStoreSchema) {
  RunResult r;
  r.protocol = "SPMS";
  r.unknown_item_deliveries = 7;
  const auto json = store::result_to_json(r);
  EXPECT_NE(json.find("\"unknown_item_deliveries\":7"), std::string::npos);
  const auto back = store::result_from_json(json);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(back->unknown_item_deliveries, 7u);
}

}  // namespace
}  // namespace spms::exp
