#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/random.hpp"

namespace spms::stats {
namespace {

TEST(SummaryTest, EmptySummaryIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 0.0);
  EXPECT_DOUBLE_EQ(s.max(), 0.0);
}

TEST(SummaryTest, SingleValue) {
  Summary s;
  s.add(42.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 42.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 42.0);
  EXPECT_DOUBLE_EQ(s.max(), 42.0);
  EXPECT_DOUBLE_EQ(s.sum(), 42.0);
}

TEST(SummaryTest, KnownMoments) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(SummaryTest, NegativeValues) {
  Summary s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), -3.0);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SummaryTest, MergeMatchesCombinedStream) {
  sim::Rng rng{11};
  Summary all, a, b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-5.0, 20.0);
    all.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(SummaryTest, MergeWithEmpty) {
  Summary a, b;
  a.add(1.0);
  a.add(2.0);
  a.merge(b);  // no-op
  EXPECT_EQ(a.count(), 2u);
  b.merge(a);  // copy
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(SummaryTest, WelfordStableForLargeOffsets) {
  // Catastrophic cancellation check: values with a huge common offset.
  Summary s;
  for (const double x : {1e9 + 4.0, 1e9 + 7.0, 1e9 + 13.0, 1e9 + 16.0}) s.add(x);
  EXPECT_NEAR(s.mean(), 1e9 + 10.0, 1e-3);
  EXPECT_NEAR(s.variance(), 22.5, 1e-3);
}

}  // namespace
}  // namespace spms::stats
