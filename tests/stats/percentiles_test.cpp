#include "stats/percentiles.hpp"

#include <gtest/gtest.h>

namespace spms::stats {
namespace {

TEST(PercentilesTest, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 0.0);
  EXPECT_EQ(p.count(), 0u);
}

TEST(PercentilesTest, SingleValue) {
  Percentiles p;
  p.add(7.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 7.0);
}

TEST(PercentilesTest, MedianOfOddCount) {
  Percentiles p;
  for (const double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(PercentilesTest, InterpolatesEvenCount) {
  Percentiles p;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 2.5);     // numpy-style linear interpolation
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 4.0);
}

TEST(PercentilesTest, KnownQuartiles) {
  Percentiles p;
  for (int i = 0; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(p.median(), 50.0);
  EXPECT_DOUBLE_EQ(p.p95(), 95.0);
  EXPECT_DOUBLE_EQ(p.p99(), 99.0);
}

TEST(PercentilesTest, InsertAfterQueryResorts) {
  Percentiles p;
  p.add(10.0);
  p.add(20.0);
  EXPECT_DOUBLE_EQ(p.median(), 15.0);
  p.add(0.0);  // arrives after the sort
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
}

}  // namespace
}  // namespace spms::stats
