#include "stats/percentiles.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spms::stats {
namespace {

TEST(PercentilesTest, EmptySampleHasDefinedNaNAnswer) {
  // Hardened contract: no observations means "no data", answered with quiet
  // NaN for every quantile and accessor — never a fabricated number that
  // could be mistaken for a measurement.
  Percentiles p;
  EXPECT_EQ(p.count(), 0u);
  EXPECT_TRUE(std::isnan(p.quantile(0.0)));
  EXPECT_TRUE(std::isnan(p.quantile(0.5)));
  EXPECT_TRUE(std::isnan(p.quantile(1.0)));
  EXPECT_TRUE(std::isnan(p.median()));
  EXPECT_TRUE(std::isnan(p.p95()));
  EXPECT_TRUE(std::isnan(p.p99()));
  // Still empty and still NaN on a repeat query (no state was corrupted).
  EXPECT_EQ(p.count(), 0u);
  EXPECT_TRUE(std::isnan(p.quantile(0.5)));
}

TEST(PercentilesTest, SingleValue) {
  Percentiles p;
  p.add(7.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 7.0);
  EXPECT_DOUBLE_EQ(p.quantile(0.5), 7.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 7.0);
}

TEST(PercentilesTest, MedianOfOddCount) {
  Percentiles p;
  for (const double x : {5.0, 1.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 3.0);
}

TEST(PercentilesTest, InterpolatesEvenCount) {
  Percentiles p;
  for (const double x : {1.0, 2.0, 3.0, 4.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.median(), 2.5);     // numpy-style linear interpolation
  EXPECT_DOUBLE_EQ(p.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.0), 4.0);
}

TEST(PercentilesTest, KnownQuartiles) {
  Percentiles p;
  for (int i = 0; i <= 100; ++i) p.add(static_cast<double>(i));
  EXPECT_DOUBLE_EQ(p.quantile(0.25), 25.0);
  EXPECT_DOUBLE_EQ(p.median(), 50.0);
  EXPECT_DOUBLE_EQ(p.p95(), 95.0);
  EXPECT_DOUBLE_EQ(p.p99(), 99.0);
}

#ifdef NDEBUG
TEST(PercentilesTest, OutOfRangeQuantileClampsInRelease) {
  // Debug builds assert on q outside [0,1]; release builds clamp to the
  // extremes instead of indexing out of bounds.
  Percentiles p;
  for (const double x : {1.0, 2.0, 3.0}) p.add(x);
  EXPECT_DOUBLE_EQ(p.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(p.quantile(1.5), 3.0);
}
#endif

TEST(PercentilesTest, InsertAfterQueryResorts) {
  Percentiles p;
  p.add(10.0);
  p.add(20.0);
  EXPECT_DOUBLE_EQ(p.median(), 15.0);
  p.add(0.0);  // arrives after the sort
  EXPECT_DOUBLE_EQ(p.median(), 10.0);
}

TEST(PercentilesTest, ReportsFootprintAndReservesGeometrically) {
  Percentiles p;
  EXPECT_EQ(p.sample_count(), 0u);
  EXPECT_EQ(p.memory_bytes(), 0u);
  p.add(1.0);
  // First allocation jumps straight to the reserve floor: growing a
  // million-sample buffer 1.5x-at-a-time out of push_back is exactly the
  // realloc churn the explicit policy removes.
  EXPECT_EQ(p.memory_bytes(), 1024u * sizeof(double));
  for (int i = 0; i < 2500; ++i) p.add(static_cast<double>(i));
  EXPECT_EQ(p.sample_count(), 2501u);
  EXPECT_EQ(p.memory_bytes(), 4096u * sizeof(double));  // floor doubled twice
}

TEST(PercentilesTest, SketchEngineBoundsMemory) {
  Percentiles p{PercentileOptions{.sketch = true, .compression = 50.0}};
  for (int i = 0; i < 100'000; ++i) p.add(static_cast<double>(i % 997));
  EXPECT_TRUE(p.is_sketch());
  EXPECT_EQ(p.sample_count(), 100'000u);
  // O(compression) memory, not one double per sample (800 KB here).
  EXPECT_LT(p.memory_bytes(), 64u * 1024u);
  EXPECT_TRUE(std::isnan(Percentiles{PercentileOptions{.sketch = true}}.quantile(0.5)));
}

}  // namespace
}  // namespace spms::stats
