#include "stats/aggregate.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

namespace spms::stats {
namespace {

TEST(SummaryDispersionTest, SampleStatsMatchHandComputation) {
  Summary s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Population variance 4 (the classic example); sample variance 32/7.
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);
  EXPECT_DOUBLE_EQ(s.sample_variance(), 32.0 / 7.0);
  EXPECT_DOUBLE_EQ(s.sample_stddev(), std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(s.stderr_mean(), std::sqrt(32.0 / 7.0) / std::sqrt(8.0));
}

TEST(SummaryDispersionTest, DegenerateCountsAreZero) {
  Summary s;
  EXPECT_EQ(s.sample_variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
  s.add(3.0);
  EXPECT_EQ(s.sample_variance(), 0.0);
  EXPECT_EQ(s.stderr_mean(), 0.0);
}

TEST(AggregateTest, SnapshotsASummary) {
  Summary s;
  s.add(1.0);
  s.add(3.0);
  const auto a = Aggregate::of(s);
  EXPECT_EQ(a.n, 2u);
  EXPECT_DOUBLE_EQ(a.mean, 2.0);
  EXPECT_DOUBLE_EQ(a.stddev, std::sqrt(2.0));          // sample variance 2
  EXPECT_DOUBLE_EQ(a.stderr_mean, std::sqrt(2.0) / std::sqrt(2.0));
  EXPECT_DOUBLE_EQ(a.min, 1.0);
  EXPECT_DOUBLE_EQ(a.max, 3.0);
}

TEST(AggregateTest, OfValuesAndStreaming) {
  const double xs[] = {2.0, 4.0, 9.0};
  const auto a = Aggregate::of_values(xs, 3);
  EXPECT_EQ(a.n, 3u);
  EXPECT_NEAR(a.mean, 5.0, 1e-12);
  EXPECT_NEAR(a.stddev, std::sqrt(13.0), 1e-12);
  std::ostringstream os;
  os << a;
  EXPECT_NE(os.str().find("n=3"), std::string::npos);
}

}  // namespace
}  // namespace spms::stats
