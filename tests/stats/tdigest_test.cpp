#include "stats/tdigest.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "sim/random.hpp"
#include "stats/percentiles.hpp"

/// Accuracy and determinism contract of the t-digest sketch.  Accuracy is
/// checked in *rank* space: for an estimate v of the q-quantile, the
/// fraction of exact samples below v must sit within a few percent of q —
/// the bound the t-digest paper states, and one that is distribution-free
/// (value-space tolerances would be meaningless on a lognormal tail).

namespace spms::stats {
namespace {

/// Fraction of (sorted) samples strictly below v, i.e. the empirical CDF.
double empirical_rank(const std::vector<double>& sorted, double v) {
  const auto it = std::lower_bound(sorted.begin(), sorted.end(), v);
  return static_cast<double>(it - sorted.begin()) / static_cast<double>(sorted.size());
}

void expect_rank_accuracy(std::vector<double> samples, double max_rank_error) {
  TDigest digest{100.0};
  for (const double x : samples) digest.add(x);
  std::sort(samples.begin(), samples.end());
  for (const double q : {0.01, 0.05, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double est = digest.quantile(q);
    EXPECT_NEAR(empirical_rank(samples, est), q, max_rank_error)
        << "q=" << q << " estimate=" << est;
  }
  // Extremes are tracked exactly, outside the centroids.
  EXPECT_DOUBLE_EQ(digest.quantile(0.0), samples.front());
  EXPECT_DOUBLE_EQ(digest.quantile(1.0), samples.back());
}

TEST(TDigestTest, EmptyIsNaN) {
  TDigest d;
  EXPECT_EQ(d.count(), 0u);
  EXPECT_TRUE(std::isnan(d.quantile(0.5)));
}

TEST(TDigestTest, SingleAndConstantStreams) {
  TDigest d;
  d.add(42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(d.quantile(1.0), 42.0);

  TDigest flat;
  for (int i = 0; i < 10'000; ++i) flat.add(7.5);
  EXPECT_DOUBLE_EQ(flat.quantile(0.25), 7.5);
  EXPECT_DOUBLE_EQ(flat.quantile(0.99), 7.5);
  EXPECT_EQ(flat.count(), 10'000u);
}

TEST(TDigestTest, UniformStreamRankAccuracy) {
  sim::Rng rng{20040625};
  std::vector<double> xs;
  xs.reserve(50'000);
  for (int i = 0; i < 50'000; ++i) xs.push_back(rng.uniform(0.0, 1000.0));
  expect_rank_accuracy(std::move(xs), 0.01);
}

TEST(TDigestTest, LognormalStreamRankAccuracy) {
  // Heavy right tail — the shape of a delay distribution.  Box-Muller from
  // the repo Rng keeps the stream deterministic.
  sim::Rng rng{7};
  std::vector<double> xs;
  xs.reserve(50'000);
  for (int i = 0; i < 25'000; ++i) {
    const double u1 = rng.uniform01();
    const double u2 = rng.uniform01();
    const double r = std::sqrt(-2.0 * std::log(u1 <= 0.0 ? 1e-300 : u1));
    xs.push_back(std::exp(r * std::cos(2.0 * M_PI * u2)));
    xs.push_back(std::exp(r * std::sin(2.0 * M_PI * u2)));
  }
  expect_rank_accuracy(std::move(xs), 0.015);
}

TEST(TDigestTest, AdversarialStreamsRankAccuracy) {
  // Sorted input is the classic streaming-quantile killer: every point lands
  // past the current tail centroid.
  std::vector<double> ascending;
  ascending.reserve(40'000);
  for (int i = 0; i < 40'000; ++i) ascending.push_back(static_cast<double>(i));
  expect_rank_accuracy(std::move(ascending), 0.01);

  std::vector<double> descending;
  descending.reserve(40'000);
  for (int i = 40'000; i > 0; --i) descending.push_back(static_cast<double>(i));
  expect_rank_accuracy(std::move(descending), 0.01);

  // Two-point mixture with a 1:1000 scale gap: quantiles must snap to the
  // correct cluster on both sides of the 0.7 split.
  std::vector<double> mixture;
  mixture.reserve(30'000);
  for (int i = 0; i < 30'000; ++i) mixture.push_back(i % 10 < 7 ? 1.0 : 1000.0);
  TDigest d;
  for (const double x : mixture) d.add(x);
  EXPECT_NEAR(d.quantile(0.35), 1.0, 1.0);
  EXPECT_NEAR(d.quantile(0.95), 1000.0, 1.0);
}

TEST(TDigestTest, CentroidCountStaysBounded) {
  TDigest d{100.0};
  sim::Rng rng{11};
  for (int i = 0; i < 200'000; ++i) d.add(rng.uniform(0.0, 1.0));
  (void)d.quantile(0.5);  // flush
  EXPECT_LE(d.centroid_count(), 2u * 100u + 10u);
  // Footprint is O(compression), not O(count): buffer + centroids, well
  // under a few hundred KB where the exact engine would hold 1.6 MB.
  EXPECT_LT(d.memory_bytes(), 100u * 1024u);
}

TEST(TDigestTest, DeterministicForIdenticalStreams) {
  sim::Rng rng_a{99};
  sim::Rng rng_b{99};
  TDigest a, b;
  for (int i = 0; i < 30'000; ++i) {
    a.add(rng_a.uniform(0.0, 10.0));
    b.add(rng_b.uniform(0.0, 10.0));
  }
  for (const double q : {0.01, 0.5, 0.95, 0.99}) {
    // Bit-identical, not merely close: the sketch is a pure function of the
    // insertion sequence (the --jobs independence of sketched aggregates
    // rests on this).
    EXPECT_EQ(a.quantile(q), b.quantile(q)) << q;
  }
}

TEST(TDigestTest, MergePreservesCountAndExtremes) {
  sim::Rng rng{5};
  TDigest a, b;
  std::vector<double> all;
  for (int i = 0; i < 20'000; ++i) {
    const double x = rng.uniform(-50.0, 50.0);
    all.push_back(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.size());
  std::sort(all.begin(), all.end());
  EXPECT_DOUBLE_EQ(a.min(), all.front());
  EXPECT_DOUBLE_EQ(a.max(), all.back());
  for (const double q : {0.05, 0.5, 0.95}) {
    EXPECT_NEAR(empirical_rank(all, a.quantile(q)), q, 0.015) << q;
  }
}

TEST(TDigestTest, MergeIsAssociativeWithinAccuracyBounds) {
  // (A+B)+C vs A+(B+C): t-digest merges are deterministic but only
  // approximately associative — both groupings must answer every quantile
  // within the sketch's own rank-accuracy budget of the pooled stream.
  sim::Rng rng{123};
  std::vector<double> pooled;
  TDigest a1, b1, c1, a2, b2, c2;
  for (int i = 0; i < 30'000; ++i) {
    const double x = rng.exponential(3.0);
    pooled.push_back(x);
    TDigest* first[] = {&a1, &b1, &c1};
    TDigest* second[] = {&a2, &b2, &c2};
    first[i % 3]->add(x);
    second[i % 3]->add(x);
  }
  a1.merge(b1);
  a1.merge(c1);  // (A+B)+C
  b2.merge(c2);
  a2.merge(b2);  // A+(B+C)
  std::sort(pooled.begin(), pooled.end());
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    const double left = a1.quantile(q);
    const double right = a2.quantile(q);
    EXPECT_NEAR(empirical_rank(pooled, left), q, 0.02) << q;
    EXPECT_NEAR(empirical_rank(pooled, right), q, 0.02) << q;
    EXPECT_NEAR(empirical_rank(pooled, left), empirical_rank(pooled, right), 0.02) << q;
  }
}

TEST(TDigestTest, AgreesWithExactEngineOnPercentilesFacade) {
  // The facade contract: sketch quantiles track the exact engine within a
  // rank hair on the same stream.
  Percentiles exact;
  Percentiles sketch{PercentileOptions{.sketch = true, .compression = 100.0}};
  sim::Rng rng{2004};
  std::vector<double> xs;
  for (int i = 0; i < 20'000; ++i) {
    const double x = rng.exponential(10.0);
    exact.add(x);
    sketch.add(x);
    xs.push_back(x);
  }
  EXPECT_FALSE(exact.is_sketch());
  EXPECT_TRUE(sketch.is_sketch());
  EXPECT_EQ(exact.sample_count(), sketch.sample_count());
  EXPECT_TRUE(sketch.samples().empty());  // nothing retained under the sketch
  EXPECT_LT(sketch.memory_bytes(), exact.memory_bytes());
  std::sort(xs.begin(), xs.end());
  for (const double q : {0.5, 0.95, 0.99}) {
    EXPECT_NEAR(empirical_rank(xs, sketch.quantile(q)),
                empirical_rank(xs, exact.quantile(q)), 0.01)
        << q;
  }
}

}  // namespace
}  // namespace spms::stats
