#include "core/spin.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/collector.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace spms::core {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;
  return mac;
}

struct Rig {
  Rig(std::vector<net::Point> pts, double zone_radius, std::size_t node_count,
      std::uint64_t seed = 1)
      : sim(seed),
        net(sim, net::RadioTable::mica2(), quiet_mac(), {}, std::move(pts), zone_radius),
        interest(node_count),
        proto(sim, net, interest, ProtocolParams{}) {
    proto.set_delivery_callback([this](net::NodeId node, net::DataId item, sim::TimePoint at) {
      collector.record_delivery(node, item, at);
      delivered.push_back(node);
    });
    sim.trace().set_sink([this](const sim::TraceEvent& e) { trace.push_back(e); });
  }

  net::DataId publish(net::NodeId source) {
    const net::DataId item{source, 0};
    collector.record_publish(item, sim.now(), interest.expected_count(item));
    proto.publish(source, item);
    return item;
  }

  [[nodiscard]] std::size_t trace_count(const std::string& prefix) const {
    std::size_t n = 0;
    for (const auto& e : trace) {
      if (e.category == "spin" && e.message.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }

  sim::Simulation sim;
  net::Network net;
  AllToAllInterest interest;
  SpinProtocol proto;
  Collector collector;
  std::vector<net::NodeId> delivered;
  std::vector<sim::TraceEvent> trace;
};

constexpr net::NodeId kA{0}, kB{1}, kC{2};

TEST(SpinProtocolTest, ThreeStageHandshake) {
  Rig rig({{0, 0}, {5, 0}}, 12.0, 2);
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
  // ADV(A) -> REQ(B) -> DATA(A) -> ADV(B).
  EXPECT_EQ(rig.net.counters().tx_adv, 2u);
  EXPECT_EQ(rig.net.counters().tx_req, 1u);
  EXPECT_EQ(rig.net.counters().tx_data, 1u);
}

TEST(SpinProtocolTest, EverythingAtMaximumPower) {
  // Zone radius 12 m -> level 3 of the MICA2 table (0.1995 mW, 22.86 m).
  Rig rig({{0, 0}, {5, 0}}, 12.0, 2);
  rig.publish(kA);
  rig.sim.run();
  // B transmitted one 2-byte REQ and one 2-byte ADV, both at the zone level
  // even though A is only 5 m away (0.0125 mW would have sufficed).
  const double frame_uj = 0.1995 * 0.1;  // 2 B * 0.05 ms/B * level power
  EXPECT_NEAR(rig.net.battery(kB).meter().protocol_tx_uj(), 2 * frame_uj, 1e-9);
}

TEST(SpinProtocolTest, OneRequestPerItemDespiteManyAdvs) {
  Rig rig({{0, 0}, {5, 0}, {10, 0}}, 22.0, 3);
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
  // B and C each requested exactly once (pending suppresses re-requests on
  // the later re-advertisements).
  EXPECT_EQ(rig.net.counters().tx_req, 2u);
  EXPECT_EQ(rig.net.counters().tx_data, 2u);
  EXPECT_EQ(rig.net.counters().tx_adv, 3u);  // each holder advertises once
}

TEST(SpinProtocolTest, PropagatesAcrossZones) {
  std::vector<net::Point> pts;
  for (int i = 0; i < 9; ++i) pts.push_back({5.0 * i, 0.0});
  Rig rig(std::move(pts), 12.0, 9);
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
}

TEST(SpinProtocolTest, RecoversFromTransientAdvertiserFailure) {
  Rig rig({{0, 0}, {5, 0}}, 12.0, 2);
  // A dies while B's REQ is in the air and repairs 20 ms later.
  rig.sim.at(sim::TimePoint::at(sim::Duration::ms(0.15)), [&] { rig.net.set_up(kA, false); });
  rig.sim.at(sim::TimePoint::at(sim::Duration::ms(20.0)), [&] { rig.net.set_up(kA, true); });
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
  EXPECT_GE(rig.net.counters().tx_req, 2u);  // original plus retry
}

TEST(SpinProtocolTest, RequesterCrashRecovery) {
  // B crashes after requesting; the DATA is lost; on repair B re-requests.
  Rig rig({{0, 0}, {5, 0}}, 12.0, 2);
  rig.sim.at(sim::TimePoint::at(sim::Duration::ms(0.3)), [&] { rig.net.set_up(kB, false); });
  rig.sim.at(sim::TimePoint::at(sim::Duration::ms(15.0)), [&] { rig.net.set_up(kB, true); });
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
}

TEST(SpinProtocolTest, SourceDownAtPublishAdvertisesOnRepair) {
  Rig rig({{0, 0}, {5, 0}}, 12.0, 2);
  rig.net.set_up(kA, false);
  rig.publish(kA);  // ADV cannot air; must not be lost forever
  rig.sim.at(sim::TimePoint::at(sim::Duration::ms(5.0)), [&] { rig.net.set_up(kA, true); });
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
}

TEST(SpinProtocolTest, AdvertisesAtMostOncePerItem) {
  Rig rig({{0, 0}, {5, 0}, {10, 0}}, 22.0, 3);
  rig.publish(kA);
  rig.sim.run();
  EXPECT_EQ(rig.trace_count("adv n0"), 1u);
  EXPECT_EQ(rig.trace_count("adv n1"), 1u);
  EXPECT_EQ(rig.trace_count("adv n2"), 1u);
}

TEST(SpinProtocolTest, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    Rig rig({{0, 0}, {5, 0}, {10, 0}}, 22.0, 3, seed);
    rig.publish(kA);
    rig.sim.run();
    return std::make_tuple(rig.collector.deliveries(), rig.collector.delay_ms().mean(),
                           rig.net.energy().total_uj());
  };
  EXPECT_EQ(run(9), run(9));
}

}  // namespace
}  // namespace spms::core
