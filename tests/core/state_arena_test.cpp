#include "core/state_arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

/// The arena's contract: bump allocation with correct alignment, wholesale
/// release, allocator-equality by arena identity, scoped propagation into
/// nested maps, and byte-identical container behaviour to the std default
/// (the SoA/arena rework's determinism pin).

namespace spms::core {
namespace {

TEST(StateArenaTest, AlignsAndBumps) {
  StateArena arena;
  void* a = arena.allocate(1, 1);
  void* b = arena.allocate(8, 8);
  void* c = arena.allocate(16, 16);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(b) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(c) % 16, 0u);
  EXPECT_NE(a, b);
  EXPECT_EQ(arena.bytes_used(), 1u + 8u + 16u);
  EXPECT_GE(arena.bytes_reserved(), arena.bytes_used());
}

TEST(StateArenaTest, OversizedRequestGetsDedicatedSlab) {
  StateArena arena{64};
  void* p = arena.allocate(1 << 16, 8);  // far beyond the first slab
  EXPECT_NE(p, nullptr);
  EXPECT_GE(arena.bytes_reserved(), std::size_t{1} << 16);
  // The arena remains usable afterwards.
  void* q = arena.allocate(32, 8);
  EXPECT_NE(q, nullptr);
}

TEST(StateArenaTest, SlabsGrowGeometrically) {
  StateArena arena{128};
  const std::size_t before = arena.bytes_reserved();
  for (int i = 0; i < 1000; ++i) arena.allocate(64, 8);
  // 64 KB of demand out of a 128-byte first slab: only a handful of slabs
  // (geometric growth), not one per allocation.
  EXPECT_GT(arena.bytes_reserved(), before);
  EXPECT_LT(arena.bytes_reserved(), 4u * 64u * 1024u);
}

TEST(ArenaAllocatorTest, EqualityFollowsArenaIdentity) {
  StateArena a, b;
  ArenaAllocator<int> aa{a}, aa2{a}, ab{b}, heap{};
  EXPECT_TRUE(aa == aa2);
  EXPECT_FALSE(aa == ab);
  EXPECT_FALSE(aa == heap);
  EXPECT_TRUE(heap == ArenaAllocator<long>{});
  // Rebinding preserves the arena.
  ArenaAllocator<double> rebound{aa};
  EXPECT_EQ(rebound.arena(), &a);
}

TEST(ArenaAllocatorTest, DefaultConstructedFallsBackToHeap) {
  ArenaAllocator<int> alloc;
  int* p = alloc.allocate(4);
  p[0] = 42;
  alloc.deallocate(p, 4);  // must actually free (heap path) without crashing
}

TEST(ArenaMapTest, BehavesLikeStdUnorderedMap) {
  StateArena arena;
  ArenaMap<int, std::string> m{ArenaMap<int, std::string>::allocator_type{arena}};
  std::unordered_map<int, std::string> ref;
  for (int i = 0; i < 500; ++i) {
    m[i * 7] = std::to_string(i);
    ref[i * 7] = std::to_string(i);
  }
  ASSERT_EQ(m.size(), ref.size());
  for (const auto& [k, v] : ref) {
    const auto it = m.find(k);
    ASSERT_NE(it, m.end()) << k;
    EXPECT_EQ(it->second, v);
  }
  // Identical bucket trajectory to the std container: the determinism
  // contract says the allocator changes where nodes live, never how the
  // table behaves (iteration order feeds RNG-consuming protocol paths).
  EXPECT_EQ(m.bucket_count(), ref.bucket_count());
  EXPECT_GT(arena.bytes_used(), 0u);
}

TEST(ArenaMap2Test, InnerMapsInheritTheArena) {
  StateArena arena;
  ArenaMap2<int, int, double> served{
      ArenaMap2<int, int, double>::allocator_type{ArenaAllocator<std::byte>{arena}}};
  const std::size_t before = arena.bytes_used();
  for (int item = 0; item < 20; ++item) {
    for (int node = 0; node < 30; ++node) {
      served[item][node] = item * 1000.0 + node;
    }
  }
  EXPECT_EQ(served.size(), 20u);
  EXPECT_EQ(served[7].size(), 30u);
  EXPECT_DOUBLE_EQ(served[7][13], 7013.0);
  // The inner maps' nodes and bucket arrays came from the arena, not the
  // global heap: 600 entries cost well over a couple of KB.
  EXPECT_GT(arena.bytes_used(), before + 2048u);
}

TEST(InlineVecTest, StaysInlineUpToNAndSpillsBeyond) {
  InlineVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_EQ(v.size(), 4u);
  v.push_back(4);  // spills to the heap
  v.push_back(5);
  ASSERT_EQ(v.size(), 6u);
  for (int i = 0; i < 6; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);
  EXPECT_EQ(v.front(), 0);
  EXPECT_EQ(v.back(), 5);
}

TEST(InlineVecTest, InsertAndEraseValueMatchVectorSemantics) {
  InlineVec<int, 2> v;
  v.push_back(1);
  v.push_back(3);
  v.insert(v.begin() + 1, 2);  // 1 2 3
  v.insert(v.begin(), 0);      // 0 1 2 3 (spilled)
  ASSERT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[static_cast<std::size_t>(i)], i);

  v.push_back(2);     // 0 1 2 3 2
  v.erase_value(2);   // 0 1 3 — removes every occurrence, order preserved
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], 0);
  EXPECT_EQ(v[1], 1);
  EXPECT_EQ(v[2], 3);
  v.erase_value(99);  // absent value: no-op
  EXPECT_EQ(v.size(), 3u);
}

TEST(InlineVecTest, ResizeClearAndCopyMove) {
  InlineVec<int, 2> v;
  v.resize(5);  // value-fills with T{}
  ASSERT_EQ(v.size(), 5u);
  EXPECT_EQ(v[4], 0);
  v[0] = 10;
  v.resize(1);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], 10);

  InlineVec<int, 2> big;
  for (int i = 0; i < 10; ++i) big.push_back(i);
  InlineVec<int, 2> copy{big};
  EXPECT_EQ(copy.size(), 10u);
  EXPECT_EQ(copy[9], 9);
  InlineVec<int, 2> moved{std::move(big)};
  EXPECT_EQ(moved.size(), 10u);
  EXPECT_EQ(moved[9], 9);
  EXPECT_TRUE(big.empty());  // moved-from: empty but reusable
  big.push_back(77);
  EXPECT_EQ(big.front(), 77);

  copy.clear();
  EXPECT_TRUE(copy.empty());
  copy = moved;  // copy-assign over a spilled-then-cleared vector
  EXPECT_EQ(copy.size(), 10u);
}

}  // namespace
}  // namespace spms::core
