#include <gtest/gtest.h>

#include "core/collector.hpp"
#include "core/interest.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace spms::core {
namespace {

TEST(AllToAllInterestTest, EveryoneButOriginWants) {
  AllToAllInterest interest(5);
  const net::DataId item{net::NodeId{2}, 0};
  EXPECT_FALSE(interest.wants(net::NodeId{2}, item));
  EXPECT_TRUE(interest.wants(net::NodeId{0}, item));
  EXPECT_TRUE(interest.wants(net::NodeId{4}, item));
  EXPECT_EQ(interest.expected_count(item), 4u);
}

class ClusterInterestTest : public ::testing::Test {
 protected:
  ClusterInterestTest()
      : sim(1),
        net(sim, net::RadioTable::mica2(), {}, {}, net::grid_deployment(7, 5.0), 20.0),
        interest(net, 20.0, 0.05, 99) {}

  sim::Simulation sim;
  net::Network net;
  ClusterInterest interest;
};

TEST_F(ClusterInterestTest, HeadsExistAndAreAssigned) {
  EXPECT_FALSE(interest.heads().empty());
  // Every node has a head, and each head is its own head.
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    EXPECT_TRUE(interest.head_of(net::NodeId{i}).valid());
  }
  for (const auto h : interest.heads()) {
    EXPECT_EQ(interest.head_of(h), h);
  }
}

TEST_F(ClusterInterestTest, OriginsHeadAlwaysWants) {
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    const net::DataId item{net::NodeId{i}, 3};
    const auto head = interest.head_of(net::NodeId{i});
    if (head == item.origin) continue;  // a head's own data has no collector
    EXPECT_TRUE(interest.wants(head, item)) << "head of node " << i;
  }
}

TEST_F(ClusterInterestTest, OriginNeverWantsItsOwnItem) {
  const net::DataId item{net::NodeId{5}, 0};
  EXPECT_FALSE(interest.wants(net::NodeId{5}, item));
}

TEST_F(ClusterInterestTest, BystanderInterestIsRareAndZoneLocal) {
  std::size_t bystanders = 0, outside_zone = 0, pairs = 0;
  for (std::uint32_t origin = 0; origin < net.size(); ++origin) {
    const net::DataId item{net::NodeId{origin}, 1};
    const auto head = interest.head_of(net::NodeId{origin});
    for (std::uint32_t node = 0; node < net.size(); ++node) {
      if (node == origin || net::NodeId{node} == head) continue;
      ++pairs;
      if (!interest.wants(net::NodeId{node}, item)) continue;
      ++bystanders;
      if (net.distance_between(net::NodeId{node}, net::NodeId{origin}) > net.zone_radius()) {
        ++outside_zone;
      }
    }
  }
  EXPECT_EQ(outside_zone, 0u);  // only zone members can be bystander-interested
  // ~5% of zone members; across all pairs this must stay well below 10%.
  EXPECT_LT(static_cast<double>(bystanders) / static_cast<double>(pairs), 0.10);
  EXPECT_GT(bystanders, 0u);
}

TEST_F(ClusterInterestTest, WantsIsDeterministic) {
  ClusterInterest again(net, 20.0, 0.05, 99);
  for (std::uint32_t origin = 0; origin < net.size(); origin += 3) {
    const net::DataId item{net::NodeId{origin}, 7};
    for (std::uint32_t node = 0; node < net.size(); ++node) {
      EXPECT_EQ(interest.wants(net::NodeId{node}, item), again.wants(net::NodeId{node}, item));
    }
  }
}

TEST_F(ClusterInterestTest, ExpectedCountMatchesWants) {
  for (std::uint32_t origin = 0; origin < net.size(); origin += 5) {
    const net::DataId item{net::NodeId{origin}, 2};
    std::size_t count = 0;
    for (std::uint32_t node = 0; node < net.size(); ++node) {
      count += interest.wants(net::NodeId{node}, item);
    }
    EXPECT_EQ(interest.expected_count(item), count);
  }
}

TEST(CollectorTest, TracksPublishAndDelivery) {
  Collector c;
  const net::DataId item{net::NodeId{0}, 0};
  c.record_publish(item, sim::TimePoint::at(sim::Duration::ms(1.0)), 2);
  EXPECT_EQ(c.published(), 1u);
  EXPECT_EQ(c.expected_deliveries(), 2u);
  EXPECT_FALSE(c.all_delivered());
  EXPECT_DOUBLE_EQ(c.delivery_ratio(), 0.0);

  c.record_delivery(net::NodeId{1}, item, sim::TimePoint::at(sim::Duration::ms(3.0)));
  c.record_delivery(net::NodeId{2}, item, sim::TimePoint::at(sim::Duration::ms(5.0)));
  EXPECT_TRUE(c.all_delivered());
  EXPECT_DOUBLE_EQ(c.delivery_ratio(), 1.0);
  EXPECT_DOUBLE_EQ(c.delay_ms().mean(), 3.0);  // (2 + 4) / 2
  EXPECT_DOUBLE_EQ(c.delay_ms().max(), 4.0);
}

TEST(CollectorTest, UnknownItemCounted) {
  Collector c;
  c.record_delivery(net::NodeId{1}, {net::NodeId{0}, 9}, sim::TimePoint::zero());
  EXPECT_EQ(c.unknown_item_deliveries(), 1u);
  EXPECT_EQ(c.deliveries(), 0u);
}

TEST(CollectorTest, DoublePublishIgnored) {
  Collector c;
  const net::DataId item{net::NodeId{0}, 0};
  c.record_publish(item, sim::TimePoint::zero(), 3);
  c.record_publish(item, sim::TimePoint::zero(), 5);
  EXPECT_EQ(c.published(), 1u);
  EXPECT_EQ(c.expected_deliveries(), 3u);
}

TEST(CollectorTest, EmptyCollectorRatioIsOne) {
  Collector c;
  EXPECT_DOUBLE_EQ(c.delivery_ratio(), 1.0);
  EXPECT_TRUE(c.all_delivered());
}

}  // namespace
}  // namespace spms::core
