#include <gtest/gtest.h>

#include <algorithm>
#include <memory>

#include "core/collector.hpp"
#include "core/spms.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

/// Tests for the paper's flagged extensions (Sections 3.4 and 6): multiple
/// SCONEs and relay data caching.

namespace spms::core {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;
  return mac;
}

struct Rig {
  Rig(std::vector<net::Point> pts, double zone_radius, SpmsExtensions ext,
      std::uint64_t seed = 1)
      : sim(seed),
        net(sim, net::RadioTable::mica2(), quiet_mac(), {}, std::move(pts), zone_radius),
        routing(net),
        interest(net.size()),
        proto(sim, net, routing, interest, ProtocolParams{}, ext) {
    proto.set_delivery_callback([this](net::NodeId node, net::DataId item, sim::TimePoint at) {
      collector.record_delivery(node, item, at);
      delivered.push_back(node);
    });
    sim.trace().set_sink([this](const sim::TraceEvent& e) {
      trace.push_back(e);
      if (on_trace) on_trace(e);
    });
  }

  net::DataId publish(net::NodeId source) {
    const net::DataId item{source, 0};
    collector.record_publish(item, sim.now(), interest.expected_count(item));
    proto.publish(source, item);
    return item;
  }

  [[nodiscard]] bool node_delivered(net::NodeId id) const {
    return std::find(delivered.begin(), delivered.end(), id) != delivered.end();
  }

  [[nodiscard]] std::size_t trace_count(const std::string& prefix) const {
    std::size_t n = 0;
    for (const auto& e : trace) {
      if (e.category == "spms" && e.message.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }

  sim::Simulation sim;
  net::Network net;
  routing::RoutingService routing;
  AllToAllInterest interest;
  SpmsProtocol proto;
  Collector collector;
  std::vector<net::NodeId> delivered;
  std::vector<sim::TraceEvent> trace;
  std::function<void(const sim::TraceEvent&)> on_trace;
};

// A -- r1 -- r2 -- r3 -- C in a line, 5 m pitch, one shared 21 m zone.
std::vector<net::Point> five_line() {
  return {{0, 0}, {5, 0}, {10, 0}, {15, 0}, {20, 0}};
}
constexpr net::NodeId kA{0}, kR1{1}, kR2{2}, kR3{3}, kC{4};

TEST(SpmsMultiScone, LadderWalksAllRememberedOriginators) {
  // C promotes holders as they advertise: r3 (closest), then r2, then r1 are
  // remembered with num_scones = 2.  Killing r3 AND r2 after their ADVs must
  // leave C recovering through the third originator, r1 — two concurrent
  // failures tolerated, as Section 3.4 promises for multiple SCONEs.
  SpmsExtensions ext;
  ext.num_scones = 2;
  Rig rig(five_line(), 21.0, ext);
  rig.on_trace = [&](const sim::TraceEvent& e) {
    // Crash each relay right after C's REQ to it goes out.
    if (e.message.rfind("req-direct n4 n0#0 to n3", 0) == 0 && rig.net.is_up(kR3)) {
      rig.sim.after(sim::Duration::ms(0.05), [&] { rig.net.set_up(kR3, false); });
    }
    if (e.message.rfind("req-direct n4 n0#0 to n2", 0) == 0 && rig.net.is_up(kR2)) {
      rig.sim.after(sim::Duration::ms(0.05), [&] { rig.net.set_up(kR2, false); });
    }
  };
  rig.publish(kA);
  rig.sim.run();

  EXPECT_TRUE(rig.node_delivered(kC));
  // The ladder reached r1 (the second SCONE) directly.
  EXPECT_GE(rig.trace_count("req-direct n4 n0#0 to n1"), 1u);
  EXPECT_GE(rig.trace_count("data n4"), 1u);
}

TEST(SpmsMultiScone, SingleSconeFallsBackToSourceInstead) {
  // Same crash schedule with the default single SCONE: r1 was forgotten, so
  // the ladder must resort to the source A instead.
  SpmsExtensions ext;
  ext.num_scones = 1;
  Rig rig(five_line(), 21.0, ext);
  rig.on_trace = [&](const sim::TraceEvent& e) {
    if (e.message.rfind("req-direct n4 n0#0 to n3", 0) == 0 && rig.net.is_up(kR3)) {
      rig.sim.after(sim::Duration::ms(0.05), [&] { rig.net.set_up(kR3, false); });
    }
    if (e.message.rfind("req-direct n4 n0#0 to n2", 0) == 0 && rig.net.is_up(kR2)) {
      rig.sim.after(sim::Duration::ms(0.05), [&] { rig.net.set_up(kR2, false); });
    }
  };
  rig.publish(kA);
  rig.sim.run();

  EXPECT_TRUE(rig.node_delivered(kC));
  EXPECT_GE(rig.trace_count("req-direct n4 n0#0 to n0"), 1u);  // the source
}

TEST(SpmsMultiScone, PromotionKeepsListBounded) {
  // With three closer-and-closer holders and num_scones = 1, only the two
  // most recent originators are addressable; behaviourally we just require
  // a clean full delivery (the bound is internal).
  SpmsExtensions ext;
  ext.num_scones = 1;
  Rig rig(five_line(), 21.0, ext);
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
}

TEST(SpmsRelayCaching, RelaysCacheAndAdvertise) {
  // Published protocol: a pure relay never advertises.  With the Section 6
  // extension it does, exactly once, after forwarding its first DATA copy.
  for (const bool caching : {false, true}) {
    SpmsExtensions ext;
    ext.relay_caching = caching;
    Rig rig({{0, 0}, {5, 0}, {10, 0}}, 12.0, ext);
    // Only C (n2) is interested; B (n1) can only touch the data as a relay.
    // AllToAllInterest wants everything, so instead watch who advertises:
    // without caching B only advertises after *requesting* like a receiver.
    rig.publish(net::NodeId{0});
    rig.sim.run();
    EXPECT_TRUE(rig.collector.all_delivered());
    EXPECT_GE(rig.trace_count("adv n1"), 1u);  // B holds the data either way here
  }
}

TEST(SpmsRelayCaching, UninterestedRelayCachesOnlyWithExtension) {
  class OnlyC final : public Interest {
   public:
    [[nodiscard]] bool wants(net::NodeId node, net::DataId item) const override {
      return node == net::NodeId{2} && node != item.origin;
    }
    [[nodiscard]] std::size_t expected_count(net::DataId) const override { return 1; }
  };

  for (const bool caching : {false, true}) {
    sim::Simulation sim{1};
    net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {},
                     {{0, 0}, {5, 0}, {10, 0}}, 12.0);
    routing::RoutingService routing(net);
    OnlyC interest;
    SpmsExtensions ext;
    ext.relay_caching = caching;
    SpmsProtocol proto(sim, net, routing, interest, ProtocolParams{}, ext);
    std::size_t relay_advs = 0;
    sim.trace().set_sink([&](const sim::TraceEvent& e) {
      if (e.category == "spms" && e.message.rfind("adv n1", 0) == 0) ++relay_advs;
    });
    proto.publish(net::NodeId{0}, {net::NodeId{0}, 0});
    sim.run();
    if (caching) {
      EXPECT_EQ(relay_advs, 1u) << "cached relay must re-advertise once";
    } else {
      EXPECT_EQ(relay_advs, 0u) << "published protocol: pure relays never advertise";
    }
  }
}

TEST(SpmsRelayCaching, ImprovesRecoveryPath) {
  // C pulls through r2 (multi-hop to A).  With caching, r2 now holds the
  // data; when a second consumer (r3) later asks, its acquisition can be
  // served locally even if the original holders are down.
  SpmsExtensions ext;
  ext.relay_caching = true;
  Rig rig(five_line(), 21.0, ext);
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
  // Everyone ends up holding (receivers by request, relays by caching), and
  // each holder advertised exactly once.
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_EQ(rig.trace_count("adv n" + std::to_string(i) + " "), 1u) << "node " << i;
  }
}

// --- Cross-zone dissemination (Section 6 future work) -----------------------

/// Only the far end of a long line is interested; everyone in between is a
/// bystander.  0..8 at 5 m pitch with a 12 m zone: node 8 sits three zones
/// away from the source — unreachable for published SPMS.
class FarEndOnly final : public Interest {
 public:
  [[nodiscard]] bool wants(net::NodeId node, net::DataId item) const override {
    return node == net::NodeId{8} && node != item.origin;
  }
  [[nodiscard]] std::size_t expected_count(net::DataId) const override { return 1; }
};

struct CrossZoneRig {
  explicit CrossZoneRig(SpmsExtensions ext)
      : sim(1),
        net(sim, net::RadioTable::mica2(), quiet_mac(), {}, line9(), 12.0),
        routing(net),
        proto(sim, net, routing, interest, ProtocolParams{}, ext) {
    proto.set_delivery_callback([this](net::NodeId node, net::DataId item, sim::TimePoint at) {
      collector.record_delivery(node, item, at);
    });
    sim.trace().set_sink([this](const sim::TraceEvent& e) {
      trace.push_back(e);
      if (on_trace) on_trace(e);
    });
  }
  static std::vector<net::Point> line9() {
    std::vector<net::Point> pts;
    for (int i = 0; i < 9; ++i) pts.push_back({5.0 * i, 0.0});
    return pts;
  }
  void publish() {
    const net::DataId item{net::NodeId{0}, 0};
    collector.record_publish(item, sim.now(), interest.expected_count(item));
    proto.publish(net::NodeId{0}, item);
  }
  [[nodiscard]] std::size_t trace_count(const std::string& prefix) const {
    std::size_t n = 0;
    for (const auto& e : trace) {
      if (e.category == "spms" && e.message.rfind(prefix, 0) == 0) ++n;
    }
    return n;
  }
  sim::Simulation sim;
  net::Network net;
  routing::RoutingService routing;
  FarEndOnly interest;
  SpmsProtocol proto;
  Collector collector;
  std::vector<sim::TraceEvent> trace;
  std::function<void(const sim::TraceEvent&)> on_trace;
};

TEST(SpmsCrossZone, PublishedProtocolCannotReachSeparateZones) {
  CrossZoneRig rig{SpmsExtensions{}};  // ttl = 0: published protocol
  rig.publish();
  rig.sim.run();
  EXPECT_EQ(rig.collector.deliveries(), 0u);
  EXPECT_EQ(rig.trace_count("courier-adv"), 0u);
}

TEST(SpmsCrossZone, MetadataCourierReachesTheFarZone) {
  SpmsExtensions ext;
  ext.cross_zone_ttl = 4;
  CrossZoneRig rig{ext};
  rig.publish();
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered())
      << rig.collector.deliveries() << "/" << rig.collector.expected_deliveries();
  EXPECT_GE(rig.trace_count("courier-adv"), 2u);      // at least two zone crossings
  EXPECT_GE(rig.trace_count("req-crosszone n8"), 1u); // the far node pulled
  EXPECT_GE(rig.trace_count("data n8"), 1u);
}

TEST(SpmsCrossZone, TtlBoundsThePropagation) {
  SpmsExtensions ext;
  ext.cross_zone_ttl = 1;  // one crossing: covers ~24 m, node 8 sits at 40 m
  CrossZoneRig rig{ext};
  rig.publish();
  rig.sim.run();
  EXPECT_EQ(rig.collector.deliveries(), 0u);
  EXPECT_GE(rig.trace_count("courier-adv"), 1u);
}

TEST(SpmsCrossZone, SurvivesTransientRelayFailureOnTheRequestPath) {
  SpmsExtensions ext;
  ext.cross_zone_ttl = 4;
  CrossZoneRig rig{ext};
  // Crash a mid-route relay (n4 on the 8->6->4->2->0 source route) the
  // moment the far node's first REQ goes out; it recovers 30 ms later and
  // the requester's bounded re-send along the same trail completes the pull.
  bool crashed = false;
  rig.on_trace = [&](const sim::TraceEvent& e) {
    if (!crashed && e.message.rfind("req-crosszone n8", 0) == 0) {
      crashed = true;
      rig.net.set_up(net::NodeId{4}, false);
      rig.sim.after(sim::Duration::ms(30.0), [&] { rig.net.set_up(net::NodeId{4}, true); });
    }
  };
  rig.publish();
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
  EXPECT_GE(rig.trace_count("req-crosszone n8"), 2u);  // original + re-send
}

TEST(SpmsCrossZone, InZoneNodesStillUseNormalOperation) {
  // All-to-all interest with the extension on: couriering must not disturb
  // the normal intra-zone protocol (bystanders are interested, so nobody
  // even couriers).
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {}, CrossZoneRig::line9(), 12.0);
  routing::RoutingService routing(net);
  AllToAllInterest interest(9);
  SpmsExtensions ext;
  ext.cross_zone_ttl = 4;
  SpmsProtocol proto(sim, net, routing, interest, ProtocolParams{}, ext);
  Collector collector;
  proto.set_delivery_callback([&](net::NodeId n, net::DataId i, sim::TimePoint at) {
    collector.record_delivery(n, i, at);
  });
  const net::DataId item{net::NodeId{0}, 0};
  collector.record_publish(item, sim.now(), interest.expected_count(item));
  proto.publish(net::NodeId{0}, item);
  sim.run();
  EXPECT_TRUE(collector.all_delivered());
}

}  // namespace
}  // namespace spms::core
