#include <gtest/gtest.h>

#include <memory>

#include "core/collector.hpp"
#include "core/spin.hpp"
#include "core/spms.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

/// Tests for the holder-side duplicate-service guard: a retry landing while
/// the previous DATA for the same (item, requester) is still fresh must be
/// dropped; one landing after the guard window must be served again.

namespace spms::core {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;
  return mac;
}

net::Packet req_packet(net::DataId item, net::NodeId requester, net::NodeId target,
                       std::uint16_t attempt) {
  net::Packet p;
  p.type = net::PacketType::kReq;
  p.item = item;
  p.requester = requester;
  p.target = target;
  p.dst = target;
  p.direct = true;
  p.attempt = attempt;
  p.size_bytes = 2;
  return p;
}

TEST(ServiceGuardTest, SpinDropsRetryInsideWindow) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {}, {{0, 0}, {5, 0}}, 12.0);
  AllToAllInterest interest(2);
  ProtocolParams params;
  SpinProtocol proto(sim, net, interest, params);
  Collector collector;
  proto.set_delivery_callback([&](net::NodeId n, net::DataId i, sim::TimePoint at) {
    collector.record_delivery(n, i, at);
  });

  const net::DataId item{net::NodeId{0}, 0};
  collector.record_publish(item, sim.now(), 1);
  proto.publish(net::NodeId{0}, item);
  sim.run();
  ASSERT_TRUE(collector.all_delivered());
  const auto data_before = net.counters().tx_data;

  // Hand-inject two stale REQs from node 1 within the guard window: only the
  // normal handshake's single DATA must have been sent, plus at most one
  // re-service for the first stale REQ (it arrives after the guard expired —
  // the run above took longer than the window), and none for the second.
  ASSERT_TRUE(net.send_to(net::NodeId{1}, req_packet(item, net::NodeId{1}, net::NodeId{0}, 7),
                          net::NodeId{0}));
  ASSERT_TRUE(net.send_to(net::NodeId{1}, req_packet(item, net::NodeId{1}, net::NodeId{0}, 8),
                          net::NodeId{0}));
  sim.run();
  EXPECT_LE(net.counters().tx_data, data_before + 1);
}

TEST(ServiceGuardTest, SpmsServesAgainAfterWindow) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {}, {{0, 0}, {5, 0}}, 12.0);
  routing::RoutingService routing(net);
  AllToAllInterest interest(2);
  ProtocolParams params;
  params.service_guard = sim::Duration::ms(10.0);
  SpmsProtocol proto(sim, net, routing, interest, params);
  Collector collector;
  proto.set_delivery_callback([&](net::NodeId n, net::DataId i, sim::TimePoint at) {
    collector.record_delivery(n, i, at);
  });

  const net::DataId item{net::NodeId{0}, 0};
  collector.record_publish(item, sim.now(), 1);
  proto.publish(net::NodeId{0}, item);
  sim.run();
  ASSERT_TRUE(collector.all_delivered());
  const auto base_data = net.counters().tx_data;

  // A stale REQ right away (inside the guard): dropped.
  sim.after(sim::Duration::ms(1.0), [&] {
    (void)net.send_to(net::NodeId{1}, req_packet(item, net::NodeId{1}, net::NodeId{0}, 9),
                      net::NodeId{0});
  });
  sim.run();
  EXPECT_EQ(net.counters().tx_data, base_data);

  // Another REQ after the guard window: served again (the requester
  // genuinely lost the data as far as the holder can tell).
  sim.after(sim::Duration::ms(50.0), [&] {
    (void)net.send_to(net::NodeId{1}, req_packet(item, net::NodeId{1}, net::NodeId{0}, 10),
                      net::NodeId{0});
  });
  sim.run();
  EXPECT_EQ(net.counters().tx_data, base_data + 1);
}

TEST(ServiceGuardTest, DistinctRequestersServedIndependently) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {},
                   {{0, 0}, {5, 0}, {0, 5}}, 12.0);
  routing::RoutingService routing(net);
  AllToAllInterest interest(3);
  SpmsProtocol proto(sim, net, routing, interest, ProtocolParams{});
  Collector collector;
  proto.set_delivery_callback([&](net::NodeId n, net::DataId i, sim::TimePoint at) {
    collector.record_delivery(n, i, at);
  });
  const net::DataId item{net::NodeId{0}, 0};
  collector.record_publish(item, sim.now(), 2);
  proto.publish(net::NodeId{0}, item);
  sim.run();
  // Both neighbors served despite arriving within one guard window of each
  // other — the guard is per (item, requester), not per item.
  EXPECT_TRUE(collector.all_delivered());
  EXPECT_EQ(net.counters().tx_data, 2u);
}

}  // namespace
}  // namespace spms::core
