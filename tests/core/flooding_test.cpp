#include "core/flooding.hpp"

#include <gtest/gtest.h>

#include "core/collector.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace spms::core {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;
  return mac;
}

struct Rig {
  Rig(std::vector<net::Point> pts, double zone_radius, std::size_t n)
      : sim(1),
        net(sim, net::RadioTable::mica2(), quiet_mac(), {}, std::move(pts), zone_radius),
        interest(n),
        proto(sim, net, interest, ProtocolParams{}) {
    proto.set_delivery_callback([this](net::NodeId node, net::DataId item, sim::TimePoint at) {
      collector.record_delivery(node, item, at);
    });
  }
  net::DataId publish(net::NodeId source) {
    const net::DataId item{source, 0};
    collector.record_publish(item, sim.now(), interest.expected_count(item));
    proto.publish(source, item);
    return item;
  }
  sim::Simulation sim;
  net::Network net;
  AllToAllInterest interest;
  FloodingProtocol proto;
  Collector collector;
};

TEST(FloodingTest, DeliversToEveryone) {
  std::vector<net::Point> pts;
  for (int i = 0; i < 9; ++i) pts.push_back({5.0 * i, 0.0});
  Rig rig(std::move(pts), 12.0, 9);
  rig.publish(net::NodeId{0});
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered());
}

TEST(FloodingTest, EveryNodeRebroadcastsExactlyOnce) {
  Rig rig({{0, 0}, {5, 0}, {10, 0}}, 22.0, 3);
  rig.publish(net::NodeId{0});
  rig.sim.run();
  // Implosion: 3 DATA transmissions for 2 deliveries, no ADV/REQ at all.
  EXPECT_EQ(rig.net.counters().tx_data, 3u);
  EXPECT_EQ(rig.net.counters().tx_adv, 0u);
  EXPECT_EQ(rig.net.counters().tx_req, 0u);
}

TEST(FloodingTest, SendsFullDataFrames) {
  // The whole point of SPIN's negotiation: flooding pays DATA airtime
  // everywhere.  40-byte frames at the zone power level from every node.
  Rig rig({{0, 0}, {5, 0}}, 12.0, 2);
  rig.publish(net::NodeId{0});
  rig.sim.run();
  const double data_uj = 0.1995 * 40 * 0.05;  // level-3 power * 40 B * 0.05 ms/B
  EXPECT_NEAR(rig.net.battery(net::NodeId{0}).meter().protocol_tx_uj(), data_uj, 1e-9);
  EXPECT_NEAR(rig.net.battery(net::NodeId{1}).meter().protocol_tx_uj(), data_uj, 1e-9);
}

}  // namespace
}  // namespace spms::core
