#include "core/spms.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "core/collector.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

/// SPMS protocol-conformance tests.  The scenarios mirror the paper's worked
/// examples: Section 3.3 (failure-free cases I and II on the A/B/C line) and
/// Section 3.5 (failure cases 1 and 2 on the A/r1/r2/C line), plus the two
/// fault-tolerance claims of Section 3.4.

namespace spms::core {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;  // deterministic: no random backoff
  return mac;
}

/// Interest that wants a fixed set of nodes.
class FixedInterest final : public Interest {
 public:
  explicit FixedInterest(std::vector<net::NodeId> wanted) : wanted_(std::move(wanted)) {}
  [[nodiscard]] bool wants(net::NodeId node, net::DataId item) const override {
    if (node == item.origin) return false;
    return std::find(wanted_.begin(), wanted_.end(), node) != wanted_.end();
  }
  [[nodiscard]] std::size_t expected_count(net::DataId item) const override {
    std::size_t n = 0;
    for (const auto id : wanted_) n += (id != item.origin);
    return n;
  }

 private:
  std::vector<net::NodeId> wanted_;
};

/// Full SPMS stack over an explicit deployment, with trace capture.
struct Rig {
  Rig(std::vector<net::Point> pts, double zone_radius, std::unique_ptr<Interest> interest_in,
      std::uint64_t seed = 1)
      : sim(seed),
        net(sim, net::RadioTable::mica2(), quiet_mac(), {}, std::move(pts), zone_radius),
        routing(net),
        interest(std::move(interest_in)),
        proto(sim, net, routing, *interest, ProtocolParams{}) {
    proto.set_delivery_callback([this](net::NodeId node, net::DataId item, sim::TimePoint at) {
      collector.record_delivery(node, item, at);
      delivered.emplace_back(node, item);
    });
    sim.trace().set_sink([this](const sim::TraceEvent& e) {
      trace.push_back(e);
      if (on_trace) on_trace(e);
    });
  }

  /// Publishes item 0 from `source` and records it with the collector.
  net::DataId publish(net::NodeId source) {
    const net::DataId item{source, 0};
    collector.record_publish(item, sim.now(), interest->expected_count(item));
    proto.publish(source, item);
    return item;
  }

  [[nodiscard]] bool node_delivered(net::NodeId id) const {
    return std::any_of(delivered.begin(), delivered.end(),
                       [&](const auto& d) { return d.first == id; });
  }

  /// Count of trace lines in category "spms" whose message starts with
  /// `prefix` and (optionally) contains `substr`.
  [[nodiscard]] std::size_t trace_count(const std::string& prefix,
                                        const std::string& substr = {}) const {
    std::size_t n = 0;
    for (const auto& e : trace) {
      if (e.category != "spms") continue;
      if (e.message.rfind(prefix, 0) != 0) continue;
      if (!substr.empty() && e.message.find(substr) == std::string::npos) continue;
      ++n;
    }
    return n;
  }

  sim::Simulation sim;
  net::Network net;
  routing::RoutingService routing;
  std::unique_ptr<Interest> interest;
  SpmsProtocol proto;
  Collector collector;
  std::vector<std::pair<net::NodeId, net::DataId>> delivered;
  std::vector<sim::TraceEvent> trace;
  std::function<void(const sim::TraceEvent&)> on_trace;
};

constexpr net::NodeId kA{0}, kB{1}, kC{2};

/// A -- 5 m -- B -- 5 m -- C, all mutual zone neighbors; A->C best path
/// goes through B (2 x 0.0125 mW < 0.05 mW direct).
std::vector<net::Point> abc_line() { return {{0, 0}, {5, 0}, {10, 0}}; }

// --- Section 3.3, Case I: both B and C need the data -------------------------

TEST(SpmsPaperExamples, CaseI_BothRelayAndDestinationRequest) {
  Rig rig(abc_line(), 12.0, std::make_unique<AllToAllInterest>(3));
  rig.publish(kA);
  rig.sim.run();

  EXPECT_TRUE(rig.node_delivered(kB));
  EXPECT_TRUE(rig.node_delivered(kC));
  EXPECT_TRUE(rig.collector.all_delivered());

  // B is A's next-hop neighbor: it requested directly from A.
  EXPECT_EQ(rig.trace_count("req-direct n1", "to n0"), 1u);
  // C waited for B's re-advertisement and then requested B directly —
  // never the source through the long path.
  EXPECT_EQ(rig.trace_count("req-direct n2", "to n1"), 1u);
  EXPECT_EQ(rig.trace_count("req-multihop n2"), 0u);
  // C's data came from B.
  EXPECT_EQ(rig.trace_count("data n2", "from n1"), 1u);
  // Every receiver re-advertised exactly once (A, B, C each advertise).
  EXPECT_EQ(rig.trace_count("adv"), 3u);
}

// --- Section 3.3, Case II: B does not request -------------------------------

TEST(SpmsPaperExamples, CaseII_RelayNotInterestedMultiHopPull) {
  Rig rig(abc_line(), 12.0, std::make_unique<FixedInterest>(std::vector<net::NodeId>{kC}));
  rig.publish(kA);
  rig.sim.run();

  EXPECT_TRUE(rig.node_delivered(kC));
  EXPECT_FALSE(rig.node_delivered(kB));

  // C timed out on tau_ADV and requested A through the shortest path (via B).
  EXPECT_EQ(rig.trace_count("req-multihop n2", "to n0 via n1"), 1u);
  // B relayed the REQ and the DATA but never cached or advertised.
  EXPECT_EQ(rig.trace_count("relay-req n1", "for n2 to n0"), 1u);
  EXPECT_EQ(rig.trace_count("relay-data n1", "for n2"), 1u);
  EXPECT_EQ(rig.trace_count("adv n1"), 0u);
  EXPECT_EQ(rig.trace_count("data n1"), 0u);
  // The DATA's final hop into C came from B ("sent in exactly the same
  // manner as the received request").
  EXPECT_EQ(rig.trace_count("data n2", "from n1"), 1u);
}

// --- Section 3.5 failure cases on A -- r1 -- r2 -- C ------------------------

constexpr net::NodeId kR1{1}, kR2{2}, kC4{3};

std::vector<net::Point> ar1r2c_line() { return {{0, 0}, {5, 0}, {10, 0}, {15, 0}}; }

TEST(SpmsPaperExamples, FailureCase1_RelayDiesBeforeAdvertising) {
  Rig rig(ar1r2c_line(), 16.0, std::make_unique<AllToAllInterest>(4));
  // r2 crashes right after hearing the source ADV, before it can do anything.
  rig.sim.at(sim::TimePoint::at(sim::Duration::ms(0.2)),
             [&] { rig.net.set_up(kR2, false); });
  rig.publish(kA);
  rig.sim.run();

  // C still gets the data…
  EXPECT_TRUE(rig.node_delivered(kC4));
  EXPECT_TRUE(rig.node_delivered(kR1));
  // …by eventually requesting the PRONE (r1) directly at a higher power
  // ("requests the data from the PRONE (r1) directly").
  EXPECT_GE(rig.trace_count("req-direct n3", "to n1"), 1u);
  EXPECT_EQ(rig.trace_count("data n3", "from n1"), 1u);
  // r2 never served anything.
  EXPECT_EQ(rig.trace_count("adv n2"), 0u);
}

TEST(SpmsPaperExamples, FailureCase2_RelayDiesAfterAdvertising) {
  Rig rig(ar1r2c_line(), 16.0, std::make_unique<AllToAllInterest>(4));
  // Crash r2 the moment C's direct REQ to it is in flight: r2's ADV is out,
  // but the REQ will land on a dead node.
  rig.on_trace = [&](const sim::TraceEvent& e) {
    if (e.category == "spms" && e.message.rfind("req-direct n3 n0#0 to n2", 0) == 0 &&
        rig.net.is_up(kR2)) {
      rig.sim.after(sim::Duration::ms(0.05), [&] { rig.net.set_up(kR2, false); });
    }
  };
  rig.publish(kA);
  rig.sim.run();

  // C requested r2 (its promoted PRONE) first…
  ASSERT_GE(rig.trace_count("req-direct n3", "to n2"), 1u);
  // …then fell back to the SCONE (r1) directly, as in the paper's Case 2.
  EXPECT_GE(rig.trace_count("req-direct n3", "to n1"), 1u);
  EXPECT_TRUE(rig.node_delivered(kC4));
  EXPECT_EQ(rig.trace_count("data n3", "from n1"), 1u);
}

// --- Section 3.4 fault-tolerance claims --------------------------------------

TEST(SpmsClaims, SourceFailureAfterFirstDeliveryStillDisseminates) {
  // Claim 1: "Failure of the source node after its data has been received by
  // any of its zone neighbor nodes" is tolerated.
  Rig rig(abc_line(), 12.0, std::make_unique<AllToAllInterest>(3));
  rig.on_trace = [&](const sim::TraceEvent& e) {
    if (e.category == "spms" && e.message.rfind("data n1", 0) == 0 && rig.net.is_up(kA)) {
      rig.sim.after(sim::Duration::ms(0.01), [&] { rig.net.set_up(kA, false); });
    }
  };
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.node_delivered(kB));
  EXPECT_TRUE(rig.node_delivered(kC));  // served by B, not the dead source
  EXPECT_EQ(rig.trace_count("data n2", "from n1"), 1u);
}

TEST(SpmsClaims, IntermediateFailureDuringRelayingIsTolerated) {
  // Claim 2: "Failure of any intermediate node during the entire protocol."
  // Kill r2 while it is relaying C's multi-hop REQ.
  Rig rig(ar1r2c_line(), 16.0,
          std::make_unique<FixedInterest>(std::vector<net::NodeId>{kC4}));
  rig.on_trace = [&](const sim::TraceEvent& e) {
    if (e.category == "spms" && e.message.rfind("relay-req n2", 0) == 0 && rig.net.is_up(kR2)) {
      rig.net.set_up(kR2, false);  // queue (with the forwarded REQ) is wiped
    }
  };
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.node_delivered(kC4));
}

TEST(SpmsClaims, TransientSourceFailureRecoversViaRetry) {
  // Two nodes only: B's REQ lands while A is down; A repairs; B's retry is
  // served.  Exercises the tau_DAT timer + retry path end to end.
  Rig rig({{0, 0}, {5, 0}}, 12.0, std::make_unique<AllToAllInterest>(2));
  rig.sim.at(sim::TimePoint::at(sim::Duration::ms(0.15)), [&] { rig.net.set_up(kA, false); });
  rig.sim.at(sim::TimePoint::at(sim::Duration::ms(20.0)), [&] { rig.net.set_up(kA, true); });
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.node_delivered(kB));
  EXPECT_GE(rig.trace_count("req-direct n1"), 2u);  // original + at least one retry
}

// --- Dissemination properties -------------------------------------------------

TEST(SpmsDissemination, PropagatesAcrossZones) {
  // 9 nodes in a 40 m line, zone radius 12 m: the far end is 3 zones away
  // from the source and can only be reached through re-advertisement.
  std::vector<net::Point> pts;
  for (int i = 0; i < 9; ++i) pts.push_back({5.0 * i, 0.0});
  Rig rig(std::move(pts), 12.0, std::make_unique<AllToAllInterest>(9));
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.collector.all_delivered()) << rig.collector.deliveries() << "/"
                                             << rig.collector.expected_deliveries();
  EXPECT_TRUE(rig.node_delivered(net::NodeId{8}));
}

TEST(SpmsDissemination, EveryReceiverAdvertisesExactlyOnce) {
  Rig rig(ar1r2c_line(), 16.0, std::make_unique<AllToAllInterest>(4));
  rig.publish(kA);
  rig.sim.run();
  ASSERT_TRUE(rig.collector.all_delivered());
  for (std::uint32_t i = 0; i < 4; ++i) {
    EXPECT_EQ(rig.trace_count("adv n" + std::to_string(i) + " "), 1u) << "node " << i;
  }
}

TEST(SpmsDissemination, DuplicateDataIsIgnored) {
  Rig rig(abc_line(), 12.0, std::make_unique<AllToAllInterest>(3));
  const auto item = rig.publish(kA);
  rig.sim.run();
  ASSERT_TRUE(rig.collector.all_delivered());
  const auto delivered_before = rig.collector.deliveries();
  // Replay a DATA frame at C: state.has suppresses a second delivery.
  net::Packet dup;
  dup.type = net::PacketType::kData;
  dup.item = item;
  dup.requester = kC;
  ASSERT_TRUE(rig.net.send_to(kA, dup, kC));
  rig.sim.run();
  EXPECT_EQ(rig.collector.deliveries(), delivered_before);
}

TEST(SpmsDissemination, UninterestedNodesNeverRequest) {
  Rig rig(abc_line(), 12.0, std::make_unique<FixedInterest>(std::vector<net::NodeId>{kB}));
  rig.publish(kA);
  rig.sim.run();
  EXPECT_TRUE(rig.node_delivered(kB));
  EXPECT_EQ(rig.trace_count("req-direct n2"), 0u);
  EXPECT_EQ(rig.trace_count("req-multihop n2"), 0u);
}

TEST(SpmsDissemination, DeterministicForSameSeed) {
  auto run = [](std::uint64_t seed) {
    Rig rig(ar1r2c_line(), 16.0, std::make_unique<AllToAllInterest>(4), seed);
    rig.publish(kA);
    rig.sim.run();
    return std::make_tuple(rig.collector.deliveries(), rig.collector.delay_ms().mean(),
                           rig.net.energy().total_uj(), rig.net.counters().tx_total());
  };
  EXPECT_EQ(run(42), run(42));
}

}  // namespace
}  // namespace spms::core
