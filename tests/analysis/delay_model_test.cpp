#include "analysis/delay_model.hpp"

#include <gtest/gtest.h>

namespace spms::analysis {
namespace {

TEST(DelayModelTest, CsmaDelayIsQuadratic) {
  DelayParams p;
  EXPECT_DOUBLE_EQ(csma_delay(p, 10.0), 0.01 * 100.0);
  EXPECT_DOUBLE_EQ(csma_delay(p, 0.0), 0.0);
}

TEST(DelayModelTest, PaperSpotValue_2_7865) {
  // Section 4.1: "DelaySPIN : DelaySPMS = 2.7865" at Ttx=0.05, Tproc=0.02,
  // A:D=1:30, G=0.01, n1=45, ns=5.
  DelayParams p;  // defaults are exactly those values
  EXPECT_NEAR(spin_to_spms_delay_ratio(p, 45.0, 5.0), 2.7865, 5e-4);
}

TEST(DelayModelTest, Equation1Terms) {
  // Eq. (1): three max-power channel accesses + airtime + 2 Tproc.
  DelayParams p;
  const double expected = 3 * 0.01 * 45 * 45 + (1 + 1 + 30) * 0.05 + 2 * 0.02;
  EXPECT_DOUBLE_EQ(spin_pair_delay(p, 45.0), expected);
}

TEST(DelayModelTest, Equation2Terms) {
  DelayParams p;
  const double expected = 0.01 * 45 * 45 + 2 * 0.01 * 25 + (1 + 1 + 30) * 0.05 + 2 * 0.02;
  EXPECT_DOUBLE_EQ(spms_pair_delay(p, 45.0, 5.0), expected);
}

TEST(DelayModelTest, SpmsNeverSlowerThanSpinOnePair) {
  // With ns <= n1 the SPMS pair delay can never exceed SPIN's (it saves two
  // max-power channel accesses).
  DelayParams p;
  for (double n1 = 2; n1 <= 200; n1 += 7) {
    for (double ns = 1; ns <= n1; ns += 3) {
      EXPECT_LE(spms_pair_delay(p, n1, ns), spin_pair_delay(p, n1) + 1e-12);
    }
  }
}

TEST(DelayModelTest, RatioApproachesThreeForLargeZones) {
  // As n1 -> inf with ns fixed, contention dominates and the ratio tends to
  // the 3-access/1-access limit of 3.
  DelayParams p;
  EXPECT_NEAR(spin_to_spms_delay_ratio(p, 2000.0, 5.0), 3.0, 0.01);
  EXPECT_GT(spin_to_spms_delay_ratio(p, 2000.0, 5.0),
            spin_to_spms_delay_ratio(p, 45.0, 5.0));
}

TEST(DelayModelTest, TwoHopIsTwoRounds) {
  DelayParams p;
  EXPECT_DOUBLE_EQ(spms_two_hop_delay(p, 45, 5), 2.0 * spms_round_time(p, 45, 5));
}

TEST(DelayModelTest, RelayNoRequestAddsTimeoutAndExtraHops) {
  DelayParams p;
  const double with_request = spms_two_hop_delay(p, 45, 5);
  const double without = spms_relay_no_request_delay(p, 45, 5);
  // Case a.b pays TOutADV but skips the relay's own REQ/DATA round; with the
  // paper constants it is the slower path for the destination.
  EXPECT_GT(without, p.tout_adv);
  EXPECT_NE(without, with_request);
}

TEST(DelayModelTest, KRelayWorstCaseGrowsLinearly) {
  DelayParams p;
  const double k2 = spms_k_relay_worst_delay(p, 2, 45, 5);
  const double k3 = spms_k_relay_worst_delay(p, 3, 45, 5);
  const double k4 = spms_k_relay_worst_delay(p, 4, 45, 5);
  EXPECT_NEAR(k3 - k2, spms_round_time(p, 45, 5), 1e-12);
  EXPECT_NEAR(k4 - k3, spms_round_time(p, 45, 5), 1e-12);
}

TEST(DelayModelTest, FailureCasesCostMoreThanTheEquivalentCleanExchange) {
  // Note the baseline: with the paper's constants a full extra T_round (two
  // max-power channel accesses) can cost MORE than a failure recovery, so
  // the meaningful comparison is against the clean exchange at the same
  // power levels.
  DelayParams p;
  EXPECT_GT(spms_failure_before_adv_delay(p, 45, 25, 5), spms_pair_delay(p, 45, 25));
  EXPECT_GT(spms_failure_after_adv_delay(p, 45, 25, 5), spms_round_time(p, 45, 5));
}

TEST(DelayModelTest, FailureBeforeAdvIncludesBothTimeouts) {
  DelayParams p;
  const double d = spms_failure_before_adv_delay(p, 45, 25, 5);
  EXPECT_GT(d, p.tout_adv + p.tout_dat);
}

TEST(DelayModelTest, JthFromLastFailure) {
  DelayParams p;
  // Failing nearer the destination (small j) wastes more completed rounds.
  const double early = spms_failure_jth_from_last_delay(p, 6, 5, 45, 5, 25);
  const double late = spms_failure_jth_from_last_delay(p, 6, 1, 45, 5, 25);
  EXPECT_GT(late, early);
}

TEST(DelayModelTest, GridDiscCountMatchesPaperDensities) {
  // 5 m pitch: 20 m radius covers 48 lattice points, 5.48 m covers 4 —
  // the deployment behind DESIGN.md's n1/ns choice.
  EXPECT_EQ(grid_disc_count(20.0, 5.0), 48u);
  EXPECT_EQ(grid_disc_count(5.48, 5.0), 4u);
  EXPECT_EQ(grid_disc_count(1.0, 5.0), 0u);
  EXPECT_EQ(grid_disc_count(5.0, 5.0), 4u);
  // Unit grid: r=1 -> 4 neighbors, r=sqrt(2) -> 8.
  EXPECT_EQ(grid_disc_count(1.0, 1.0), 4u);
  EXPECT_EQ(grid_disc_count(1.5, 1.0), 8u);
}

TEST(DelayModelTest, GridDiscCountApproachesContinuum) {
  // For large r the count approaches the disc area divided by cell area.
  const double r = 50.0, pitch = 1.0;
  const auto count = static_cast<double>(grid_disc_count(r, pitch));
  const double area = 3.14159265358979 * r * r;
  EXPECT_NEAR(count / area, 1.0, 0.01);
}

}  // namespace
}  // namespace spms::analysis
