#include "analysis/energy_model.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace spms::analysis {
namespace {

TEST(EnergyModelTest, RatioIsOneForSingleHop) {
  // k = 1: SPMS degenerates into SPIN (one hop at the "max" level):
  // (1 + 1) / (1 * (f + 2 - f)) = 1.
  EXPECT_DOUBLE_EQ(spin_to_spms_energy_ratio(1.0, {}), 1.0);
}

TEST(EnergyModelTest, ClosedFormMatchesDefinition) {
  const EnergyRatioParams p;
  for (double k = 1.0; k <= 32.0; k += 1.0) {
    const double ka = std::pow(k, p.alpha);
    const double expected = (ka + 1.0) / (k * (p.f * ka + 2.0 - p.f));
    EXPECT_NEAR(spin_to_spms_energy_ratio(k, p), expected, 1e-12);
  }
}

TEST(EnergyModelTest, ClosedFormMatchesAbsoluteModel) {
  // The paper's printed ratio must equal E_SPIN / E_SPMS computed from the
  // absolute chain energies with E1 = k^alpha Em, Er = Em and the unit
  // normalization A + D + R = 1, A = f.
  const EnergyRatioParams p;
  for (double k = 2.0; k <= 16.0; k += 1.0) {
    const double em = 1.0;
    const double e1 = std::pow(k, p.alpha) * em;
    const double adv = p.f, data_req = 1.0 - p.f;
    const double spin = spin_chain_energy(adv, data_req, 0.0, e1, em);
    const double spms = spms_chain_energy(k, adv, data_req, 0.0, e1, em, em);
    EXPECT_NEAR(spin_to_spms_energy_ratio(k, p), spin / spms, 1e-12) << "k=" << k;
  }
}

TEST(EnergyModelTest, SpinChainIndependentOfHopCount) {
  // "In case of SPIN it does not matter how many relay nodes there are."
  const double e = spin_chain_energy(1, 30, 1, 100.0, 1.0);
  EXPECT_DOUBLE_EQ(e, 32.0 * 101.0);
}

TEST(EnergyModelTest, SpmsChainScalesWithHops) {
  const double one = spms_chain_energy(1, 1, 30, 1, 100.0, 1.0, 1.0);
  const double two = spms_chain_energy(2, 1, 30, 1, 100.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(two, 2.0 * one);
}

TEST(EnergyModelTest, RatioRisesThenFallsWithRadius) {
  // Fig. 5's shape under the full formula: the per-hop ADV at maximum power
  // (k f k^alpha term) eventually dominates, so the ratio peaks and then
  // decays.  Around the peak SPMS wins by several x.
  const EnergyRatioParams p;
  const double peak_k = energy_ratio_peak_k(p);
  EXPECT_GT(peak_k, 2.0);
  EXPECT_LT(peak_k, 16.0);
  const double at_peak = spin_to_spms_energy_ratio(peak_k, p);
  EXPECT_GT(at_peak, 3.0);
  EXPECT_GT(at_peak, spin_to_spms_energy_ratio(1.0, p));
  EXPECT_GT(at_peak, spin_to_spms_energy_ratio(64.0, p));
}

TEST(EnergyModelTest, SmallerMetadataHelpsSpms) {
  // f = A/(A+D+R): the smaller the advertisement relative to the data, the
  // better SPMS's ratio (its per-hop full-power cost is the ADV).
  EnergyRatioParams big_meta{3.5, 0.2};
  EnergyRatioParams small_meta{3.5, 0.01};
  EXPECT_GT(spin_to_spms_energy_ratio(8.0, small_meta),
            spin_to_spms_energy_ratio(8.0, big_meta));
}

TEST(EnergyModelTest, MobilityBreakeven) {
  EXPECT_DOUBLE_EQ(mobility_breakeven_packets(1000.0, 20.0, 10.0), 100.0);
  // No per-packet gain -> SPMS can never amortize the DBF cost.
  EXPECT_TRUE(std::isinf(mobility_breakeven_packets(1000.0, 10.0, 10.0)));
  EXPECT_TRUE(std::isinf(mobility_breakeven_packets(1000.0, 5.0, 10.0)));
}

TEST(EnergyModelTest, BreakevenScalesWithDbfCost) {
  const double b1 = mobility_breakeven_packets(500.0, 20.0, 10.0);
  const double b2 = mobility_breakeven_packets(1000.0, 20.0, 10.0);
  EXPECT_DOUBLE_EQ(b2, 2.0 * b1);
}

}  // namespace
}  // namespace spms::analysis
