#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>
#include <string>

#include "obs/flight_recorder.hpp"
#include "obs/span_trace.hpp"

/// Unit invariants of the causal span assembly: span lifecycle folding,
/// parent chaining / depth, the journey census, relay tallies, the JSONL and
/// Perfetto exports, and the flight recorder's dump discipline.

namespace spms::obs {
namespace {

sim::TimePoint at(double ms) { return sim::TimePoint::zero() + sim::Duration::ms(ms); }

net::NodeId node(std::uint32_t v) { return net::NodeId{v}; }

net::DataId item(std::uint32_t origin, std::uint32_t seq) {
  return net::DataId{node(origin), seq};
}

/// A three-hop SPMS-style journey of item n0#0: n0 publishes, n1 pulls from
/// n0, n2 pulls from n1 (DATA carried by relay n9).
void feed_three_hop_journey(SpanTrace& spans) {
  const auto it = item(0, 0);
  spans.consume({.at = at(0.0), .kind = TraceKind::kPublish, .node = node(0), .item = it});
  spans.consume({.at = at(1.0), .kind = TraceKind::kSpmsAdv, .node = node(0), .item = it});
  spans.consume({.at = at(2.0), .kind = TraceKind::kSpmsReqDirect, .node = node(1),
                 .peer = node(0), .item = it});
  spans.consume({.at = at(3.0), .kind = TraceKind::kSpmsData, .node = node(1), .peer = node(0),
                 .parent = node(0), .item = it});
  spans.consume({.at = at(3.0), .kind = TraceKind::kDelivery, .node = node(1), .item = it,
                 .value = 3.0});
  spans.consume({.at = at(4.0), .kind = TraceKind::kSpmsReqMultihop, .node = node(2),
                 .peer = node(1), .via = node(9), .item = it});
  spans.consume({.at = at(4.5), .kind = TraceKind::kSpmsRelayReq, .node = node(9),
                 .peer = node(2), .via = node(1), .item = it});
  spans.consume({.at = at(5.5), .kind = TraceKind::kSpmsRelayData, .node = node(9),
                 .peer = node(2), .item = it});
  // The DATA's immediate transmitter is the relay n9; the causal parent is
  // the serving holder n1 (stamped from Packet::holder).
  spans.consume({.at = at(6.0), .kind = TraceKind::kSpmsData, .node = node(2), .peer = node(9),
                 .parent = node(1), .item = it});
  spans.consume({.at = at(6.0), .kind = TraceKind::kDelivery, .node = node(2), .item = it,
                 .value = 6.0});
}

TEST(SpanTrace, AssemblesParentLinkedJourney) {
  SpanTrace spans;
  feed_three_hop_journey(spans);

  ASSERT_EQ(spans.spans().size(), 3u);
  const Span* root = spans.find(item(0, 0), node(0));
  ASSERT_NE(root, nullptr);
  EXPECT_TRUE(root->root);
  EXPECT_TRUE(root->has_data);
  EXPECT_FALSE(root->parent.valid());
  EXPECT_EQ(spans.depth_of(*root), 0);

  const Span* hop1 = spans.find(item(0, 0), node(1));
  ASSERT_NE(hop1, nullptr);
  EXPECT_EQ(hop1->parent, node(0));
  EXPECT_EQ(hop1->data_src, node(0));
  EXPECT_TRUE(hop1->delivered);
  EXPECT_DOUBLE_EQ(hop1->t_first_req_ms, 2.0);
  EXPECT_DOUBLE_EQ(hop1->t_data_ms, 3.0);
  EXPECT_DOUBLE_EQ(hop1->delay_ms, 3.0);
  EXPECT_EQ(hop1->requests, 1u);
  EXPECT_EQ(spans.depth_of(*hop1), 1);

  const Span* hop2 = spans.find(item(0, 0), node(2));
  ASSERT_NE(hop2, nullptr);
  EXPECT_EQ(hop2->parent, node(1));   // the holder, not the relay
  EXPECT_EQ(hop2->data_src, node(9));  // the relay that carried the frame
  EXPECT_EQ(spans.depth_of(*hop2), 2);

  const auto js = spans.journey_stats();
  EXPECT_EQ(js.spans, 3u);
  EXPECT_EQ(js.delivered, 2u);
  EXPECT_EQ(js.complete, 2u);
  EXPECT_EQ(js.orphaned, 0u);
  EXPECT_EQ(js.max_depth, 2u);
  EXPECT_DOUBLE_EQ(js.completeness(), 1.0);
}

TEST(SpanTrace, RelayVerbsTallyPerNodeLoads) {
  SpanTrace spans;
  feed_three_hop_journey(spans);
  const auto loads = spans.relay_loads();
  ASSERT_EQ(loads.size(), 1u);
  EXPECT_EQ(loads[0].first, node(9));
  EXPECT_EQ(loads[0].second.req_frames, 1u);
  EXPECT_EQ(loads[0].second.data_frames, 1u);
}

TEST(SpanTrace, MissingParentRecordOrphansTheChain) {
  SpanTrace spans;
  const auto it = item(0, 0);
  // n2's data names n1 as parent, but n1's own span never got a data record
  // (e.g. it fell off a bounded ring) and no publish was seen either.
  spans.consume({.at = at(6.0), .kind = TraceKind::kSpmsData, .node = node(2), .peer = node(1),
                 .parent = node(1), .item = it});
  spans.consume({.at = at(6.0), .kind = TraceKind::kDelivery, .node = node(2), .item = it,
                 .value = 6.0});
  const Span* s = spans.find(it, node(2));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(spans.depth_of(*s), -1);
  const auto js = spans.journey_stats();
  EXPECT_EQ(js.delivered, 1u);
  EXPECT_EQ(js.complete, 0u);
  EXPECT_EQ(js.orphaned, 1u);
}

TEST(SpanTrace, ParentFallsBackToPeerWithoutHolderStamp) {
  // SPIN/flooding stamp parent == the transmitting holder; a record without
  // the stamp (legacy stream) falls back to the immediate peer.
  SpanTrace spans;
  const auto it = item(3, 1);
  spans.consume({.at = at(0.0), .kind = TraceKind::kPublish, .node = node(3), .item = it});
  spans.consume({.at = at(1.0), .kind = TraceKind::kSpinData, .node = node(4), .peer = node(3),
                 .item = it});
  const Span* s = spans.find(it, node(4));
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->parent, node(3));
  EXPECT_EQ(spans.depth_of(*s), 1);
}

TEST(SpanTrace, GiveUpClosesTheSpanWithoutData) {
  SpanTrace spans;
  const auto it = item(0, 2);
  spans.consume({.at = at(1.0), .kind = TraceKind::kSpmsReqDirect, .node = node(5),
                 .peer = node(0), .item = it});
  const Span* s = spans.find(it, node(5));
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->open());
  spans.consume({.at = at(9.0), .kind = TraceKind::kGiveUp, .node = node(5), .item = it,
                 .value = 3.0});
  EXPECT_FALSE(s->open());
  EXPECT_TRUE(s->gave_up);
  EXPECT_FALSE(s->has_data);
}

TEST(SpanTrace, JsonlExportCarriesSpansAndSummary) {
  SpanTrace spans;
  feed_three_hop_journey(spans);
  std::ostringstream out;
  spans.write_jsonl(out, /*ring_dropped=*/7);
  const std::string text = out.str();

  EXPECT_NE(text.find(R"("type":"span","item":"n0#0","node":0)"), std::string::npos);
  EXPECT_NE(text.find(R"("parent":1)"), std::string::npos);
  EXPECT_NE(text.find(R"("data_src":9)"), std::string::npos);
  EXPECT_NE(text.find(R"("type":"span-summary","spans":3,"delivered":2,"complete":2,)"
                      R"("orphaned":0,"max_depth":2)"),
            std::string::npos);
  EXPECT_NE(text.find(R"("ring_dropped":7)"), std::string::npos);
  // Exactly one line per span plus the summary.
  EXPECT_EQ(static_cast<std::size_t>(std::count(text.begin(), text.end(), '\n')), 4u);
}

TEST(SpanTrace, PerfettoExportEmitsSlicesAndFlowArrows) {
  SpanTrace spans;
  feed_three_hop_journey(spans);
  std::ostringstream out;
  spans.write_perfetto(out);
  const std::string text = out.str();

  EXPECT_EQ(text.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_NE(text.find(R"("name":"n0#0@n2")"), std::string::npos);
  EXPECT_NE(text.find(R"("ph":"X")"), std::string::npos);
  // Two resolved parent links -> two s/f flow pairs.
  std::size_t flows = 0;
  for (std::size_t pos = 0; (pos = text.find(R"("ph":"s")", pos)) != std::string::npos; ++pos) {
    ++flows;
  }
  EXPECT_EQ(flows, 2u);
}

// --- FlightRecorder ----------------------------------------------------------

TEST(FlightRecorder, DumpsRingAndOpenSpansOnAnomaly) {
  EventTrace events;
  events.enable_ring(8);
  SpanTrace spans;
  std::ostringstream out;
  FlightRecorder recorder{events, spans, out, /*max_dumps=*/2};

  const auto feed = [&](const TraceRecord& r) {
    events.emit(r);
    spans.consume(r);
    recorder.observe(r);
  };

  const auto it = item(0, 0);
  feed({.at = at(1.0), .kind = TraceKind::kSpmsReqDirect, .node = node(1), .peer = node(0),
        .item = it});
  EXPECT_EQ(recorder.dumps(), 0u);  // an open span alone is no anomaly

  feed({.at = at(9.0), .kind = TraceKind::kGiveUp, .node = node(1), .item = it, .value = 3.0});
  EXPECT_EQ(recorder.dumps(), 1u);

  const std::string text = out.str();
  EXPECT_NE(text.find(R"("type":"flight-dump","dump":1)"), std::string::npos);
  EXPECT_NE(text.find(R"("trigger":"give-up")"), std::string::npos);
  EXPECT_NE(text.find(R"("type":"flight-record")"), std::string::npos);
  // The span closed at the trigger instant (give-up), so no open spans.
  EXPECT_NE(text.find(R"("open_spans":0)"), std::string::npos);
}

TEST(FlightRecorder, CapsDumpsAndCountsSuppressed) {
  EventTrace events;
  events.enable_ring(4);
  SpanTrace spans;
  std::ostringstream out;
  FlightRecorder recorder{events, spans, out, /*max_dumps=*/1};

  for (std::uint32_t i = 0; i < 3; ++i) {
    const TraceRecord r{.at = at(1.0 + i), .kind = TraceKind::kGiveUp, .node = node(i),
                        .item = item(0, i), .value = 1.0};
    events.emit(r);
    spans.consume(r);
    recorder.observe(r);
  }
  EXPECT_EQ(recorder.dumps(), 1u);
  EXPECT_EQ(recorder.suppressed(), 2u);
}

}  // namespace
}  // namespace spms::obs
