#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/event_trace.hpp"
#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

/// Unit invariants of the obs layer: O(1) counter handles, pull gauges,
/// histogram bucketing, the typed trace's ring/sink/legacy contracts, and
/// the sampler's fixed-grid semantics.

namespace spms::obs {
namespace {

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistry, CounterRegistrationIsIdempotentAndHandlesAdd) {
  MetricsRegistry reg;
  const auto a = reg.counter("net.tx_adv");
  const auto b = reg.counter("net.tx_req");
  EXPECT_NE(a.idx, b.idx);
  EXPECT_EQ(reg.counter("net.tx_adv").idx, a.idx);  // register-or-get
  EXPECT_EQ(reg.counter_count(), 2u);

  reg.add(a);
  reg.add(a, 41);
  EXPECT_EQ(reg.counter_value("net.tx_adv"), 42u);
  EXPECT_EQ(reg.counter_value("net.tx_req"), 0u);
  EXPECT_EQ(reg.counter_value("never.registered"), 0u);
}

TEST(MetricsRegistry, InvalidCounterHandleIsACheckedNoOp) {
  MetricsRegistry reg;
  reg.counter("x");
  CounterHandle invalid;
  EXPECT_FALSE(invalid.valid());
  reg.add(invalid, 100);  // must not crash or touch anything
  EXPECT_EQ(reg.counter_value("x"), 0u);
}

TEST(MetricsRegistry, GaugesPullOnDemandAndReRegistrationReplaces) {
  MetricsRegistry reg;
  double source = 1.0;
  reg.register_gauge("g", [&source] { return source; });
  source = 7.0;  // gauge reads the live value, not registration-time state
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), 7.0);

  reg.register_gauge("g", [] { return -1.0; });
  EXPECT_EQ(reg.gauge_count(), 1u);  // replaced, not duplicated
  EXPECT_DOUBLE_EQ(reg.gauge_value("g"), -1.0);
  EXPECT_DOUBLE_EQ(reg.gauge_value("missing"), 0.0);
}

TEST(MetricsRegistry, GaugeSamplesFollowRegistrationOrder) {
  MetricsRegistry reg;
  reg.register_gauge("b", [] { return 2.0; });
  reg.register_gauge("a", [] { return 1.0; });
  const auto names = reg.gauge_names();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "b");
  EXPECT_EQ(names[1], "a");
  const auto row = reg.sample_gauges();
  ASSERT_EQ(row.size(), 2u);
  EXPECT_DOUBLE_EQ(row[0], 2.0);
  EXPECT_DOUBLE_EQ(row[1], 1.0);
}

TEST(MetricsRegistry, HistogramBucketsAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  const auto h = reg.histogram("delay", {1.0, 10.0});
  reg.observe(h, 0.5);   // <= 1        -> bucket 0
  reg.observe(h, 1.0);   // == bound    -> bucket 0 (inclusive)
  reg.observe(h, 5.0);   // (1, 10]     -> bucket 1
  reg.observe(h, 10.5);  // > last      -> +inf bucket
  const auto snaps = reg.histogram_snapshots();
  ASSERT_EQ(snaps.size(), 1u);
  const auto& s = snaps[0];
  ASSERT_EQ(s.counts.size(), 3u);  // bounds + implicit +inf
  EXPECT_EQ(s.counts[0], 2u);
  EXPECT_EQ(s.counts[1], 1u);
  EXPECT_EQ(s.counts[2], 1u);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 0.5);
  EXPECT_DOUBLE_EQ(s.max, 10.5);
  EXPECT_DOUBLE_EQ(s.sum, 0.5 + 1.0 + 5.0 + 10.5);
}

// --- EventTrace --------------------------------------------------------------

TraceRecord adv_record(std::uint32_t node, std::uint32_t origin, std::uint32_t seq) {
  return {.at = sim::TimePoint::zero() + sim::Duration::ms(1.5),
          .kind = TraceKind::kSpmsAdv,
          .node = net::NodeId{node},
          .item = net::DataId{net::NodeId{origin}, seq}};
}

TEST(EventTrace, DisabledByDefaultAndEmitIsDropped) {
  EventTrace t;
  EXPECT_FALSE(t.enabled());
  t.emit(adv_record(1, 0, 0));
  EXPECT_EQ(t.emitted(), 0u);
  EXPECT_TRUE(t.ring_snapshot().empty());
}

TEST(EventTrace, SinkReceivesEveryRecord) {
  EventTrace t;
  std::vector<TraceRecord> seen;
  t.set_sink([&seen](const TraceRecord& r) { seen.push_back(r); });
  EXPECT_TRUE(t.enabled());
  t.emit(adv_record(3, 0, 1));
  t.emit(adv_record(4, 0, 2));
  ASSERT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen[0].node, net::NodeId{3});
  EXPECT_EQ(seen[1].item.seq, 2u);
  EXPECT_EQ(t.emitted(), 2u);

  t.set_sink(nullptr);
  EXPECT_FALSE(t.enabled());
  t.emit(adv_record(5, 0, 3));
  EXPECT_EQ(seen.size(), 2u);
}

TEST(EventTrace, RingKeepsNewestRecordsOldestFirst) {
  EventTrace t;
  t.enable_ring(3);
  EXPECT_TRUE(t.enabled());
  for (std::uint32_t i = 0; i < 5; ++i) t.emit(adv_record(i, 0, i));
  const auto snap = t.ring_snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].node, net::NodeId{2});  // oldest retained
  EXPECT_EQ(snap[1].node, net::NodeId{3});
  EXPECT_EQ(snap[2].node, net::NodeId{4});  // newest
  EXPECT_EQ(t.emitted(), 5u);
  EXPECT_EQ(t.dropped(), 2u);

  t.enable_ring(0);
  EXPECT_FALSE(t.enabled());
  EXPECT_TRUE(t.ring_snapshot().empty());
}

TEST(FormatLegacy, ReproducesStringEraRenderings) {
  TraceRecord adv = adv_record(3, 0, 1);
  auto line = format_legacy(adv);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->category, "spms");
  EXPECT_EQ(line->message, "adv n3 n0#1");

  TraceRecord req{.kind = TraceKind::kSpmsReqMultihop,
                  .node = net::NodeId{7},
                  .peer = net::NodeId{2},
                  .via = net::NodeId{5},
                  .item = net::DataId{net::NodeId{1}, 4}};
  line = format_legacy(req);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->message, "req-multihop n7 n1#4 to n2 via n5");

  TraceRecord spin{.kind = TraceKind::kSpinData,
                   .node = net::NodeId{2},
                   .peer = net::NodeId{9},
                   .item = net::DataId{net::NodeId{9}, 0}};
  line = format_legacy(spin);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->category, "spin");
  EXPECT_EQ(line->message, "data n2 n9#0 from n9");

  TraceRecord down{.kind = TraceKind::kNodeDown, .node = net::NodeId{4}};
  line = format_legacy(down);
  ASSERT_TRUE(line.has_value());
  EXPECT_EQ(line->category, "failure");
  EXPECT_EQ(line->message, "node down");  // string era carried no node id

  // Cross-layer records never had a string rendering.
  EXPECT_FALSE(format_legacy(TraceRecord{.kind = TraceKind::kDelivery}).has_value());
  EXPECT_FALSE(format_legacy(TraceRecord{.kind = TraceKind::kFrameDrop}).has_value());
}

TEST(AppendRecordJson, RendersOnlyPopulatedFields) {
  std::string out;
  TraceRecord drop{.at = sim::TimePoint::zero() + sim::Duration::ms(2.0),
                   .kind = TraceKind::kFrameDrop,
                   .cause = static_cast<std::uint8_t>(DropCause::kLinkFault),
                   .node = net::NodeId{6},
                   .peer = net::NodeId{1},
                   .item = net::DataId{net::NodeId{1}, 3}};
  append_record_json(drop, out);
  EXPECT_EQ(out,
            R"({"t_ms":2,"kind":"frame-drop","cause":"link-fault","node":6,"peer":1,)"
            R"("item":"n1#3","value":0})");

  out.clear();
  TraceRecord publish{.kind = TraceKind::kPublish,
                      .node = net::NodeId{0},
                      .item = net::DataId{net::NodeId{0}, 0},
                      .value = 15.0};
  append_record_json(publish, out);
  // No cause member (kind carries none), no peer/via (invalid ids omitted).
  EXPECT_EQ(out, R"({"t_ms":0,"kind":"publish","node":0,"item":"n0#0","value":15})");
}

// --- Sampler -----------------------------------------------------------------

TEST(Sampler, SamplesOnFixedGridAtDispatchBoundaries) {
  MetricsRegistry reg;
  double v = 0.0;
  reg.register_gauge("v", [&v] { return v; });
  Sampler s{reg, sim::Duration::ms(10.0)};

  const auto at = [](double ms) { return sim::TimePoint::zero() + sim::Duration::ms(ms); };
  v = 1.0;
  s.observe(at(0.0));  // first dispatch samples immediately
  v = 2.0;
  s.observe(at(4.0));  // before the next due instant: no sample
  v = 3.0;
  s.observe(at(12.0));  // past 10ms: sample
  v = 4.0;

  const auto& series = s.series();
  ASSERT_EQ(series.samples(), 2u);
  ASSERT_EQ(series.names.size(), 1u);
  EXPECT_EQ(series.names[0], "v");
  EXPECT_DOUBLE_EQ(series.t_ms[0], 0.0);
  EXPECT_DOUBLE_EQ(series.t_ms[1], 12.0);
  EXPECT_DOUBLE_EQ(series.rows[0][0], 1.0);
  EXPECT_DOUBLE_EQ(series.rows[1][0], 3.0);
}

TEST(Sampler, BurstsYieldOneSampleAndGapsNeverCatchUp) {
  MetricsRegistry reg;
  reg.register_gauge("g", [] { return 1.0; });
  Sampler s{reg, sim::Duration::ms(10.0)};
  const auto at = [](double ms) { return sim::TimePoint::zero() + sim::Duration::ms(ms); };

  s.observe(at(0.0));
  // A long quiet gap: the grid advances past `now` in one step — the next
  // observation must not emit a backlog of catch-up samples.
  s.observe(at(95.0));
  s.observe(at(95.0));  // same-instant burst: one sample only
  s.observe(at(96.0));  // still before the next grid point (100ms)
  EXPECT_EQ(s.series().samples(), 2u);

  s.observe(at(100.0));  // on the grid point: due (due instants are inclusive)
  EXPECT_EQ(s.series().samples(), 3u);

  auto taken = s.take_series();
  EXPECT_EQ(taken.samples(), 3u);
  EXPECT_TRUE(s.series().empty());
}

}  // namespace
}  // namespace spms::obs
