#include <gtest/gtest.h>

#include "obs/metrics.hpp"
#include "obs/sampler.hpp"

/// Edge cases of the Sampler's fixed-grid semantics: intervals longer than
/// the whole run, zero-duration runs, and samples landing exactly on the
/// final grid boundary.

namespace spms::obs {
namespace {

sim::TimePoint at(double ms) { return sim::TimePoint::zero() + sim::Duration::ms(ms); }

MetricsRegistry one_gauge_registry() {
  MetricsRegistry reg;
  reg.register_gauge("g", [] { return 1.0; });
  return reg;
}

TEST(SamplerEdge, IntervalLongerThanRunStillYieldsTheFirstSample) {
  const auto reg = one_gauge_registry();
  Sampler s{reg, sim::Duration::ms(1e9)};
  // A short run: dispatches at 0, 1, 2 ms — far inside the first interval.
  s.observe(at(0.0));
  s.observe(at(1.0));
  s.observe(at(2.0));
  // next_due_ starts at zero, so the very first dispatch samples; the grid
  // then jumps past the run's end and nothing else fires.
  ASSERT_EQ(s.series().samples(), 1u);
  EXPECT_DOUBLE_EQ(s.series().t_ms[0], 0.0);
}

TEST(SamplerEdge, ZeroDurationRunSamplesExactlyOnce) {
  const auto reg = one_gauge_registry();
  Sampler s{reg, sim::Duration::ms(10.0)};
  // Every event of the run fires at t = 0 (e.g. a run that publishes and
  // immediately hits its event limit).
  s.observe(at(0.0));
  s.observe(at(0.0));
  s.observe(at(0.0));
  ASSERT_EQ(s.series().samples(), 1u);
  EXPECT_DOUBLE_EQ(s.series().t_ms[0], 0.0);
  EXPECT_EQ(s.series().rows[0].size(), 1u);
}

TEST(SamplerEdge, FinalBoundarySampleIsTakenWhenAnEventLandsOnIt) {
  const auto reg = one_gauge_registry();
  Sampler s{reg, sim::Duration::ms(10.0)};
  s.observe(at(0.0));   // grid: due 0 -> sampled, next due 10
  s.observe(at(5.0));   // inside the interval: no sample
  s.observe(at(10.0));  // exactly on the final boundary: sampled
  ASSERT_EQ(s.series().samples(), 2u);
  EXPECT_DOUBLE_EQ(s.series().t_ms[0], 0.0);
  EXPECT_DOUBLE_EQ(s.series().t_ms[1], 10.0);
}

TEST(SamplerEdge, NoDispatchesMeansNoSamples) {
  const auto reg = one_gauge_registry();
  Sampler s{reg, sim::Duration::ms(10.0)};
  // A run that never executes an event never calls the hook: the series
  // stays empty rather than inventing a t=0 row.
  EXPECT_EQ(s.series().samples(), 0u);
  EXPECT_TRUE(s.series().empty());
}

TEST(SamplerEdge, TakeSeriesResetsForReuse) {
  const auto reg = one_gauge_registry();
  Sampler s{reg, sim::Duration::ms(10.0)};
  s.observe(at(0.0));
  auto series = s.take_series();
  EXPECT_EQ(series.samples(), 1u);
  EXPECT_EQ(s.series().samples(), 0u);
}

}  // namespace
}  // namespace spms::obs
