#include "net/energy.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

/// Battery-subsystem invariants: clamped spending conserves energy to
/// floating-point rounding (spend + residual == initial charge), depletion gates both transmit and
/// receive, the depletion notification fires exactly once per node, idle
/// drain ticks deterministically and stops at its horizon, and heterogeneous
/// initial charges come from a dedicated RNG sub-stream.

namespace spms::net {
namespace {

MacParams quiet_mac() {
  MacParams mac;
  mac.num_slots = 1;
  mac.contention_g_ms = 0.0;
  return mac;
}

Packet adv(std::size_t bytes = 20) {
  Packet p;
  p.type = PacketType::kAdv;
  p.size_bytes = bytes;
  return p;
}

// --- Battery unit ------------------------------------------------------------

TEST(BatteryTest, InfiniteBatteryBehavesLikeThePlainMeter) {
  Battery b;
  EXPECT_FALSE(b.finite());
  EXPECT_FALSE(b.depleted());
  EXPECT_TRUE(std::isinf(b.remaining_uj()));
  EXPECT_DOUBLE_EQ(b.add_tx(3.0, EnergyUse::kProtocol), 3.0);
  EXPECT_DOUBLE_EQ(b.add_rx(2.0, EnergyUse::kRouting), 2.0);
  EXPECT_DOUBLE_EQ(b.add_idle(1.0), 1.0);
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.meter().protocol_tx_uj(), 3.0);
  EXPECT_DOUBLE_EQ(b.meter().routing_rx_uj(), 2.0);
  EXPECT_DOUBLE_EQ(b.idle_uj(), 1.0);
  EXPECT_DOUBLE_EQ(b.spent_uj(), 6.0);
}

TEST(BatteryTest, SpendClampsAtTheRemainingCharge) {
  Battery b;
  b.init_finite(10.0);
  EXPECT_TRUE(b.finite());
  EXPECT_DOUBLE_EQ(b.initial_charge_uj(), 10.0);
  EXPECT_DOUBLE_EQ(b.add_tx(6.0, EnergyUse::kProtocol), 6.0);
  EXPECT_FALSE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_uj(), 4.0);
  // The overdraw is clamped to what is left, and the battery dies.
  EXPECT_DOUBLE_EQ(b.add_rx(9.0, EnergyUse::kProtocol), 4.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_uj(), 0.0);
  // Dead batteries spend nothing, ever.
  EXPECT_DOUBLE_EQ(b.add_tx(1.0, EnergyUse::kProtocol), 0.0);
  EXPECT_DOUBLE_EQ(b.add_idle(1.0), 0.0);
  // Conservation: meter + idle == initial charge, exactly.
  EXPECT_DOUBLE_EQ(b.spent_uj() + b.remaining_uj(), b.initial_charge_uj());
}

TEST(BatteryTest, ExactExhaustionDepletes) {
  Battery b;
  b.init_finite(5.0);
  EXPECT_DOUBLE_EQ(b.add_tx(5.0, EnergyUse::kProtocol), 5.0);
  EXPECT_TRUE(b.depleted());
  EXPECT_DOUBLE_EQ(b.remaining_uj(), 0.0);
}

// --- Network integration -----------------------------------------------------

struct Rig {
  explicit Rig(BatteryParams battery, std::uint64_t seed = 7, std::size_t side = 3)
      : sim(seed),
        net(sim, RadioTable::mica2(), quiet_mac(), {}, grid_deployment(side, 5.0), 12.0,
            battery) {}
  sim::Simulation sim;
  Network net;
};

BatteryParams tiny(double capacity_uj) {
  BatteryParams b;
  b.finite = true;
  b.capacity_uj = capacity_uj;
  return b;
}

TEST(NetworkBatteryTest, RejectsNonsenseBatteryConfigs) {
  EXPECT_THROW(Rig{tiny(0.0)}, std::invalid_argument);
  auto bad_h = tiny(10.0);
  bad_h.heterogeneity = 1.0;
  EXPECT_THROW(Rig{bad_h}, std::invalid_argument);
}

TEST(NetworkBatteryTest, DepletedNodeCannotTransmit) {
  // A 20-byte frame at the 6 m coverage level costs the sender exactly
  // 0.05 mW x 1 ms = 0.05 uJ: one frame drains the whole budget.
  Rig rig{tiny(0.05)};
  auto& net = rig.net;
  ASSERT_TRUE(net.send(NodeId{0}, adv(), 6.0));
  rig.sim.run();
  EXPECT_TRUE(net.battery(NodeId{0}).depleted());
  const auto drops_before = net.counters().dropped_battery_dead;
  EXPECT_FALSE(net.send(NodeId{0}, adv(), 6.0));
  EXPECT_EQ(net.counters().dropped_battery_dead, drops_before + 1);
}

TEST(NetworkBatteryTest, DepletedNodeCannotReceive) {
  // Budget 0.15: node 0's first frame costs it 0.05 and each hearer 0.15
  // (rx power x 1 ms airtime), leaving hearers 1 and 3 exactly drained.
  Rig rig{tiny(0.15)};
  auto& net = rig.net;
  ASSERT_TRUE(net.send(NodeId{0}, adv(), 6.0));
  rig.sim.run();
  EXPECT_TRUE(net.battery(NodeId{1}).depleted());
  const double rx_node1 = net.battery(NodeId{1}).meter().protocol_rx_uj();
  const auto drops_before = net.counters().dropped_battery_dead;

  // Node 2 broadcasts over nodes 1 (dead) and 5 (alive): the live hearer is
  // charged, the dead one is a battery drop with no further rx spend.
  ASSERT_TRUE(net.send(NodeId{2}, adv(), 6.0));
  rig.sim.run();
  EXPECT_DOUBLE_EQ(net.battery(NodeId{1}).meter().protocol_rx_uj(), rx_node1);
  EXPECT_GT(net.battery(NodeId{5}).meter().protocol_rx_uj(), 0.0);
  EXPECT_GT(net.counters().dropped_battery_dead, drops_before);
}

TEST(NetworkBatteryTest, DepletionNotificationFiresExactlyOncePerNode) {
  Rig rig{tiny(0.05)};
  std::vector<std::uint32_t> notified;
  rig.net.set_on_depleted([&](NodeId id) { notified.push_back(id.v); });
  // Node 0's frame kills the sender (tx) and both hearers (clamped rx).
  ASSERT_TRUE(rig.net.send(NodeId{0}, adv(), 6.0));
  rig.sim.run();
  std::vector<std::uint32_t> expected{0, 1, 3};
  std::sort(notified.begin(), notified.end());
  EXPECT_EQ(notified, expected);
  // More deaths elsewhere extend the list but never repeat an id.
  ASSERT_TRUE(rig.net.send(NodeId{4}, adv(), 6.0));
  rig.sim.run();
  std::sort(notified.begin(), notified.end());
  EXPECT_EQ(std::adjacent_find(notified.begin(), notified.end()), notified.end())
      << "a node was notified twice";
  EXPECT_EQ(notified.size(), rig.net.depleted_count());
}

TEST(NetworkBatteryTest, IdleDrainTicksDeterministicallyAndStopsAtHorizon) {
  auto params = tiny(100.0);
  params.idle_drain_mw = 0.5;
  params.idle_tick = sim::Duration::ms(10.0);
  Rig rig{params};
  rig.net.start_idle_drain(sim::TimePoint::at(sim::Duration::ms(100)));
  rig.sim.run();
  // Exactly 10 ticks (t=10..100) of 0.5 mW x 10 ms = 5 uJ each, no traffic.
  for (std::uint32_t i = 0; i < rig.net.size(); ++i) {
    EXPECT_DOUBLE_EQ(rig.net.battery(NodeId{i}).idle_uj(), 50.0) << i;
    EXPECT_DOUBLE_EQ(rig.net.battery(NodeId{i}).remaining_uj(), 50.0) << i;
  }
  EXPECT_DOUBLE_EQ(rig.sim.now().to_ms(), 100.0) << "no tick past the horizon";
  EXPECT_DOUBLE_EQ(rig.net.energy().idle_uj, 9 * 50.0);
}

TEST(NetworkBatteryTest, EnergyConservationHoldsNetworkWide) {
  // Traffic + idle drain until most of the grid is dead: whatever happened,
  // spend + residual must equal the initial charge, node by node.
  auto params = tiny(1.0);
  params.idle_drain_mw = 0.05;
  params.idle_tick = sim::Duration::ms(5.0);
  Rig rig{params};
  rig.net.start_idle_drain(sim::TimePoint::at(sim::Duration::ms(200)));
  for (std::uint32_t i = 0; i < rig.net.size(); ++i) {
    rig.net.send(NodeId{i}, adv(), 6.0);
  }
  rig.sim.run();
  double initial = 0.0;
  double spent = 0.0;
  double residual = 0.0;
  for (std::uint32_t i = 0; i < rig.net.size(); ++i) {
    const auto& b = rig.net.battery(NodeId{i});
    EXPECT_NEAR(b.spent_uj() + b.remaining_uj(), b.initial_charge_uj(),
                1e-9 * b.initial_charge_uj())
        << i;
    initial += b.initial_charge_uj();
    spent += b.spent_uj();
    residual += b.remaining_uj();
  }
  EXPECT_GT(rig.net.depleted_count(), 0u);
  const auto summary = rig.net.battery_summary();
  EXPECT_DOUBLE_EQ(summary.initial_total_uj, initial);
  EXPECT_DOUBLE_EQ(summary.spent_total_uj, spent);
  EXPECT_NEAR(summary.spent_total_uj + summary.residual_mean_uj * 9.0,
              summary.initial_total_uj, 1e-9);
  EXPECT_NEAR(residual + spent, initial, 1e-9 * initial);
}

TEST(NetworkBatteryTest, HeterogeneousChargesAreSeededAndBounded) {
  auto params = tiny(100.0);
  params.heterogeneity = 0.3;
  Rig a{params, /*seed=*/42};
  Rig b{params, /*seed=*/42};
  Rig c{params, /*seed=*/43};
  bool any_differs_across_seeds = false;
  bool any_differs_within = false;
  double first = a.net.battery(NodeId{0}).initial_charge_uj();
  for (std::uint32_t i = 0; i < a.net.size(); ++i) {
    const double ai = a.net.battery(NodeId{i}).initial_charge_uj();
    EXPECT_GE(ai, 70.0);
    EXPECT_LT(ai, 130.0);
    EXPECT_DOUBLE_EQ(ai, b.net.battery(NodeId{i}).initial_charge_uj()) << "same seed";
    if (ai != c.net.battery(NodeId{i}).initial_charge_uj()) any_differs_across_seeds = true;
    if (ai != first) any_differs_within = true;
  }
  EXPECT_TRUE(any_differs_across_seeds);
  EXPECT_TRUE(any_differs_within);
}

TEST(NetworkBatteryTest, InitialChargesAreIndependentOfOtherRngConsumers) {
  // The init draws come from a dedicated fork of the root seed, so burning
  // draws from the simulation's root RNG (as deployment builders and fault
  // models do) must not shift them.
  auto params = tiny(100.0);
  params.heterogeneity = 0.3;
  sim::Simulation plain{11};
  Network n1{plain, RadioTable::mica2(), quiet_mac(), {}, grid_deployment(3, 5.0), 12.0,
             params};
  sim::Simulation burned{11};
  for (int i = 0; i < 1000; ++i) static_cast<void>(burned.rng().next());
  Network n2{burned, RadioTable::mica2(), quiet_mac(), {}, grid_deployment(3, 5.0), 12.0,
             params};
  for (std::uint32_t i = 0; i < n1.size(); ++i) {
    EXPECT_DOUBLE_EQ(n1.battery(NodeId{i}).initial_charge_uj(),
                     n2.battery(NodeId{i}).initial_charge_uj())
        << i;
  }
}

}  // namespace
}  // namespace spms::net
