#include "net/packet.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace spms::net {
namespace {

TEST(PacketTest, TypeNames) {
  EXPECT_STREQ(to_string(PacketType::kAdv), "ADV");
  EXPECT_STREQ(to_string(PacketType::kReq), "REQ");
  EXPECT_STREQ(to_string(PacketType::kData), "DATA");
  EXPECT_STREQ(to_string(PacketType::kRouteUpdate), "RTUP");
}

TEST(PacketTest, BroadcastDetection) {
  Packet p;
  EXPECT_TRUE(p.is_broadcast());
  p.dst = NodeId{3};
  EXPECT_FALSE(p.is_broadcast());
}

TEST(PacketTest, StreamFormatBroadcast) {
  Packet p;
  p.type = PacketType::kAdv;
  p.item = DataId{NodeId{1}, 7};
  p.src = NodeId{1};
  std::ostringstream os;
  os << p;
  EXPECT_EQ(os.str(), "ADV[n1#7] n1->*");
}

TEST(PacketTest, StreamFormatRequest) {
  Packet p;
  p.type = PacketType::kReq;
  p.item = DataId{NodeId{0}, 2};
  p.src = NodeId{5};
  p.dst = NodeId{4};
  p.requester = NodeId{5};
  p.target = NodeId{0};
  p.direct = true;
  std::ostringstream os;
  os << p;
  EXPECT_EQ(os.str(), "REQ[n0#2] n5->n4 req=n5 tgt=n0 direct");
}

TEST(IdsTest, NodeIdValidity) {
  EXPECT_FALSE(kNoNode.valid());
  EXPECT_TRUE(NodeId{0}.valid());
  EXPECT_TRUE(NodeId{42}.valid());
  EXPECT_LT(NodeId{1}, NodeId{2});
}

TEST(IdsTest, DataIdEquality) {
  const DataId a{NodeId{1}, 2};
  const DataId b{NodeId{1}, 2};
  const DataId c{NodeId{1}, 3};
  const DataId d{NodeId{2}, 2};
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, d);
}

TEST(IdsTest, HashDistinguishesOriginAndSeq) {
  const auto h = [](DataId d) { return std::hash<DataId>{}(d); };
  EXPECT_NE(h({NodeId{1}, 2}), h({NodeId{2}, 1}));
  EXPECT_EQ(h({NodeId{1}, 2}), h({NodeId{1}, 2}));
}

TEST(IdsTest, StreamFormats) {
  std::ostringstream os;
  os << NodeId{3} << " " << kNoNode << " " << DataId{NodeId{7}, 9};
  EXPECT_EQ(os.str(), "n3 n? n7#9");
}

}  // namespace
}  // namespace spms::net
