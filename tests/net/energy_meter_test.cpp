#include "net/energy.hpp"

#include <gtest/gtest.h>

#include "net/network.hpp"

namespace spms::net {
namespace {

TEST(EnergyMeterTest, StartsAtZero) {
  EnergyMeter m;
  EXPECT_DOUBLE_EQ(m.total_uj(), 0.0);
  EXPECT_DOUBLE_EQ(m.protocol_uj(), 0.0);
  EXPECT_DOUBLE_EQ(m.routing_uj(), 0.0);
}

TEST(EnergyMeterTest, SeparatesUseClasses) {
  EnergyMeter m;
  m.add_tx(1.0, EnergyUse::kProtocol);
  m.add_rx(2.0, EnergyUse::kProtocol);
  m.add_tx(4.0, EnergyUse::kRouting);
  m.add_rx(8.0, EnergyUse::kRouting);
  EXPECT_DOUBLE_EQ(m.protocol_tx_uj(), 1.0);
  EXPECT_DOUBLE_EQ(m.protocol_rx_uj(), 2.0);
  EXPECT_DOUBLE_EQ(m.routing_tx_uj(), 4.0);
  EXPECT_DOUBLE_EQ(m.routing_rx_uj(), 8.0);
  EXPECT_DOUBLE_EQ(m.protocol_uj(), 3.0);
  EXPECT_DOUBLE_EQ(m.routing_uj(), 12.0);
  EXPECT_DOUBLE_EQ(m.total_uj(), 15.0);
}

TEST(EnergyMeterTest, AccumulatesAndResets) {
  EnergyMeter m;
  for (int i = 0; i < 10; ++i) m.add_tx(0.5, EnergyUse::kProtocol);
  EXPECT_DOUBLE_EQ(m.protocol_tx_uj(), 5.0);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_uj(), 0.0);
}

TEST(EnergyBreakdownTest, Aggregates) {
  EnergyBreakdown b;
  b.protocol_tx_uj = 1.0;
  b.protocol_rx_uj = 2.0;
  b.routing_tx_uj = 3.0;
  b.routing_rx_uj = 4.0;
  EXPECT_DOUBLE_EQ(b.protocol_uj(), 3.0);
  EXPECT_DOUBLE_EQ(b.routing_uj(), 7.0);
  EXPECT_DOUBLE_EQ(b.total_uj(), 10.0);
}

TEST(NetCountersTest, TotalSumsAllTypes) {
  NetCounters c;
  c.tx_adv = 1;
  c.tx_req = 2;
  c.tx_data = 4;
  c.tx_route = 8;
  EXPECT_EQ(c.tx_total(), 15u);
}

}  // namespace
}  // namespace spms::net
