#include "net/radio.hpp"

#include <gtest/gtest.h>

namespace spms::net {
namespace {

TEST(RadioTableTest, Mica2TableMatchesPaper) {
  const auto radio = RadioTable::mica2();
  ASSERT_EQ(radio.num_levels(), 5u);
  EXPECT_DOUBLE_EQ(radio.level(0).power_mw, 3.1622);
  EXPECT_DOUBLE_EQ(radio.level(0).range_m, 91.44);
  EXPECT_DOUBLE_EQ(radio.level(4).power_mw, 0.0125);
  EXPECT_DOUBLE_EQ(radio.level(4).range_m, 5.48);
  EXPECT_DOUBLE_EQ(radio.max_range(), 91.44);
  EXPECT_DOUBLE_EQ(radio.weakest().power_mw, 0.0125);
}

TEST(RadioTableTest, CheapestLevelPicksWeakestCovering) {
  const auto radio = RadioTable::mica2();
  EXPECT_EQ(radio.cheapest_level_for(5.0), 4u);     // within 5.48
  EXPECT_EQ(radio.cheapest_level_for(5.48), 4u);    // boundary inclusive
  EXPECT_EQ(radio.cheapest_level_for(5.49), 3u);    // just beyond
  EXPECT_EQ(radio.cheapest_level_for(20.0), 2u);    // the reference zone radius
  EXPECT_EQ(radio.cheapest_level_for(50.0), 0u);
  EXPECT_EQ(radio.cheapest_level_for(91.44), 0u);
  EXPECT_EQ(radio.cheapest_level_for(91.45), std::nullopt);
}

TEST(RadioTableTest, CheapestLevelForZeroDistance) {
  const auto radio = RadioTable::mica2();
  EXPECT_EQ(radio.cheapest_level_for(0.0), 4u);  // weakest level suffices
}

TEST(RadioTableTest, MinPowerMatchesLevel) {
  const auto radio = RadioTable::mica2();
  EXPECT_DOUBLE_EQ(radio.min_power_for(5.0).value(), 0.0125);
  EXPECT_DOUBLE_EQ(radio.min_power_for(10.0).value(), 0.05);
  EXPECT_DOUBLE_EQ(radio.min_power_for(91.44).value(), 3.1622);
  EXPECT_EQ(radio.min_power_for(100.0), std::nullopt);
}

TEST(RadioTableTest, MinPowerIsMonotoneInDistance) {
  const auto radio = RadioTable::mica2();
  double prev = 0.0;
  for (double d = 1.0; d <= 91.0; d += 1.0) {
    const double p = radio.min_power_for(d).value();
    EXPECT_GE(p, prev) << "power must not decrease with distance, d=" << d;
    prev = p;
  }
}

TEST(RadioTableTest, RejectsEmptyTable) {
  EXPECT_THROW(RadioTable{std::vector<PowerLevel>{}}, std::invalid_argument);
}

TEST(RadioTableTest, RejectsNonDecreasingLevels) {
  EXPECT_THROW(RadioTable({{1.0, 10.0}, {2.0, 5.0}}), std::invalid_argument);   // power up
  EXPECT_THROW(RadioTable({{2.0, 10.0}, {1.0, 20.0}}), std::invalid_argument);  // range up
  EXPECT_THROW(RadioTable({{2.0, 10.0}, {2.0, 5.0}}), std::invalid_argument);   // power equal
}

TEST(RadioTableTest, RejectsNonPositiveValues) {
  EXPECT_THROW(RadioTable({{0.0, 10.0}}), std::invalid_argument);
  EXPECT_THROW(RadioTable({{1.0, -5.0}}), std::invalid_argument);
}

TEST(RadioTableTest, SingleLevelTableWorks) {
  const RadioTable radio({{1.0, 30.0}});
  EXPECT_EQ(radio.cheapest_level_for(29.0), 0u);
  EXPECT_EQ(radio.cheapest_level_for(31.0), std::nullopt);
}

}  // namespace
}  // namespace spms::net
