#include "net/topology.hpp"

#include <gtest/gtest.h>

#include "net/geometry.hpp"

namespace spms::net {
namespace {

TEST(GeometryTest, DistanceBasics) {
  EXPECT_DOUBLE_EQ(distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(distance_sq({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(distance({-3, 0}, {0, 4}), 5.0);
}

TEST(GeometryTest, PointArithmetic) {
  const Point p = Point{1, 2} + Point{3, 4};
  EXPECT_DOUBLE_EQ(p.x, 4.0);
  EXPECT_DOUBLE_EQ(p.y, 6.0);
  const Point q = Point{1, 2} - Point{3, 4};
  EXPECT_DOUBLE_EQ(q.x, -2.0);
  EXPECT_DOUBLE_EQ(q.y, -2.0);
}

TEST(TopologyTest, GridHasExpectedLayout) {
  const auto pts = grid_deployment(3, 5.0);
  ASSERT_EQ(pts.size(), 9u);
  EXPECT_EQ(pts[0], (Point{0, 0}));
  EXPECT_EQ(pts[1], (Point{5, 0}));   // row-major: column moves first
  EXPECT_EQ(pts[3], (Point{0, 5}));
  EXPECT_EQ(pts[8], (Point{10, 10}));
}

TEST(TopologyTest, GridNeighborSpacing) {
  const auto pts = grid_deployment(4, 2.5);
  // Adjacent points in a row are exactly one pitch apart.
  EXPECT_DOUBLE_EQ(distance(pts[0], pts[1]), 2.5);
  // Diagonal neighbors are pitch*sqrt(2).
  EXPECT_NEAR(distance(pts[0], pts[5]), 2.5 * std::sqrt(2.0), 1e-12);
}

TEST(TopologyTest, GridSideFor) {
  EXPECT_EQ(grid_side_for(1), 1u);
  EXPECT_EQ(grid_side_for(4), 2u);
  EXPECT_EQ(grid_side_for(5), 3u);
  EXPECT_EQ(grid_side_for(9), 3u);
  EXPECT_EQ(grid_side_for(10), 4u);
  EXPECT_EQ(grid_side_for(169), 13u);
  EXPECT_EQ(grid_side_for(225), 15u);
}

TEST(TopologyTest, RandomDeploymentWithinField) {
  sim::Rng rng{3};
  const auto pts = random_deployment(200, 50.0, rng);
  ASSERT_EQ(pts.size(), 200u);
  for (const auto& p : pts) {
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 50.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 50.0);
  }
}

TEST(TopologyTest, RandomDeploymentDeterministicPerSeed) {
  sim::Rng a{3}, b{3}, c{4};
  const auto pa = random_deployment(10, 50.0, a);
  const auto pb = random_deployment(10, 50.0, b);
  const auto pc = random_deployment(10, 50.0, c);
  EXPECT_EQ(pa, pb);
  EXPECT_NE(pa, pc);
}

// The DESIGN.md claim behind the deployment choice: a 5 m grid pitch gives
// zone sizes close to the paper's n1=45 (radius ~20 m) and ns=5 (lowest
// level, 5.48 m).
TEST(TopologyTest, FiveMeterPitchReproducesPaperZoneSizes) {
  const auto pts = grid_deployment(13, 5.0);  // 169 nodes
  const Point centre = pts[6 * 13 + 6];       // middle of the field
  auto count_within = [&](double r) {
    std::size_t c = 0;
    for (const auto& p : pts) {
      if (p != centre && distance(p, centre) <= r) ++c;
    }
    return c;
  };
  EXPECT_EQ(count_within(20.0), 48u);  // paper n1 = 45
  EXPECT_EQ(count_within(5.48), 4u);   // paper ns = 5
}

}  // namespace
}  // namespace spms::net
