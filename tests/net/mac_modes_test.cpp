#include <gtest/gtest.h>

#include "net/network.hpp"
#include "sim/simulation.hpp"

/// Tests for the alternative MAC models: the paper-style
/// infinite-parallelism mode and the explicit G*n^2 contention term.

namespace spms::net {
namespace {

class CountingAgent final : public Agent {
 public:
  explicit CountingAgent(sim::Simulation& sim) : sim_(sim) {}
  void on_receive(const Packet& p) override { received.emplace_back(sim_.now(), p); }
  std::vector<std::pair<sim::TimePoint, Packet>> received;

 private:
  sim::Simulation& sim_;
};

Packet small_packet(std::uint32_t seq) {
  Packet p;
  p.type = PacketType::kAdv;
  p.item = DataId{NodeId{0}, seq};
  p.size_bytes = 2;
  return p;
}

struct Rig {
  Rig(MacParams mac, std::vector<Point> pts)
      : sim(1), net(sim, RadioTable::mica2(), mac, {}, std::move(pts), 12.0) {
    for (std::uint32_t i = 0; i < net.size(); ++i) {
      agents.push_back(std::make_unique<CountingAgent>(sim));
      net.set_agent(NodeId{i}, agents.back().get());
    }
  }
  sim::Simulation sim;
  Network net;
  std::vector<std::unique_ptr<CountingAgent>> agents;
};

MacParams deterministic(bool infinite) {
  MacParams mac;
  mac.num_slots = 1;
  mac.infinite_parallelism = infinite;
  return mac;
}

TEST(InfiniteParallelismTest, FramesDoNotQueueBehindEachOther) {
  Rig rig(deterministic(true), {{0, 0}, {5, 0}});
  // Three frames submitted together: in queued mode they would arrive 0.1 ms
  // apart; in paper mode they all land at airtime + t_proc.
  for (std::uint32_t s = 0; s < 3; ++s) {
    Packet p = small_packet(s);
    p.dst = NodeId{1};
    ASSERT_TRUE(rig.net.send(NodeId{0}, p, 5.0));
  }
  rig.sim.run();
  ASSERT_EQ(rig.agents[1]->received.size(), 3u);
  const auto expected = sim::TimePoint::at(sim::Duration::ms(0.12));
  for (const auto& [at, p] : rig.agents[1]->received) EXPECT_EQ(at, expected);
}

TEST(InfiniteParallelismTest, NoCarrierSenseBlocking) {
  Rig rig(deterministic(true), {{0, 0}, {5, 0}, {10, 0}});
  // Two neighbors transmit simultaneously with overlapping discs; both
  // frames land at the same instant (no deferral).
  Packet a = small_packet(1);
  a.dst = NodeId{2};
  Packet b = small_packet(2);
  b.dst = NodeId{2};
  ASSERT_TRUE(rig.net.send(NodeId{0}, a, 12.0));
  ASSERT_TRUE(rig.net.send(NodeId{1}, b, 12.0));
  rig.sim.run();
  ASSERT_EQ(rig.agents[2]->received.size(), 2u);
  EXPECT_EQ(rig.agents[2]->received[0].first, rig.agents[2]->received[1].first);
}

TEST(InfiniteParallelismTest, EnergyAccountingUnchanged) {
  Rig queued(deterministic(false), {{0, 0}, {5, 0}});
  Rig paper(deterministic(true), {{0, 0}, {5, 0}});
  for (auto* rig : {&queued, &paper}) {
    Packet p = small_packet(0);
    p.dst = NodeId{1};
    ASSERT_TRUE(rig->net.send(NodeId{0}, p, 5.0));
    rig->sim.run();
  }
  EXPECT_DOUBLE_EQ(queued.net.energy().total_uj(), paper.net.energy().total_uj());
}

TEST(InfiniteParallelismTest, SenderCrashDuringBackoffDropsFrame) {
  MacParams mac;  // keep the 20-slot backoff so the crash can land inside it
  mac.infinite_parallelism = true;
  Rig rig(mac, {{0, 0}, {5, 0}});
  Packet p = small_packet(0);
  p.dst = NodeId{1};
  ASSERT_TRUE(rig.net.send(NodeId{0}, p, 5.0));
  rig.net.set_up(NodeId{0}, false);  // immediately: backoff still pending
  rig.sim.run();
  EXPECT_TRUE(rig.agents[1]->received.empty());
  EXPECT_EQ(rig.net.counters().dropped_sender_down, 1u);
}

TEST(ContentionTermTest, QuadraticDelayApplied) {
  MacParams mac;
  mac.num_slots = 1;
  mac.contention_g_ms = 0.01;
  mac.carrier_sense = false;
  Rig rig(mac, {{0, 0}, {5, 0}, {10, 0}});  // 2 contenders within 12 m of n0
  Packet p = small_packet(0);
  p.dst = NodeId{1};
  ASSERT_TRUE(rig.net.send(NodeId{0}, p, 12.0));
  rig.sim.run();
  // access = G*n^2 = 0.01 * 4 = 0.04 ms; + airtime 0.1 + t_proc 0.02.
  ASSERT_EQ(rig.agents[1]->received.size(), 1u);
  EXPECT_EQ(rig.agents[1]->received[0].first, sim::TimePoint::at(sim::Duration::ms(0.16)));
}

TEST(ContentionTermTest, ScalesWithDiscPopulation) {
  MacParams mac;
  mac.num_slots = 1;
  mac.contention_g_ms = 0.01;
  mac.carrier_sense = false;
  // 5 nodes in a line; a 5 m disc sees 1 contender, a 20 m disc sees 4.
  Rig rig(mac, {{0, 0}, {5, 0}, {10, 0}, {15, 0}, {20, 0}});
  Packet small = small_packet(0);
  small.dst = NodeId{1};
  ASSERT_TRUE(rig.net.send(NodeId{0}, small, 5.0));
  rig.sim.run();
  ASSERT_EQ(rig.agents[1]->received.size(), 1u);
  // 0.01*1 + 0.1 + 0.02
  EXPECT_EQ(rig.agents[1]->received[0].first, sim::TimePoint::at(sim::Duration::ms(0.13)));
}

}  // namespace
}  // namespace spms::net
