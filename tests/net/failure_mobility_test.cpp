#include <gtest/gtest.h>

#include "net/failure.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace spms::net {
namespace {

MacParams quiet_mac() {
  MacParams mac;
  mac.num_slots = 1;
  mac.contention_g_ms = 0.0;
  return mac;
}

struct Harness {
  explicit Harness(std::size_t side = 4, std::uint64_t seed = 9)
      : sim(seed),
        net(sim, RadioTable::mica2(), quiet_mac(), {}, grid_deployment(side, 5.0), 20.0) {}
  sim::Simulation sim;
  Network net;
};

TEST(FailureInjectorTest, InjectsAndAlwaysRepairs) {
  Harness h;
  FailureParams params;  // paper defaults: MTBF 50 ms, repair U(5,15) ms
  FailureInjector injector(h.sim, h.net, params);
  injector.start(sim::TimePoint::at(sim::Duration::ms(500)));
  h.sim.run();
  EXPECT_GT(injector.failures_injected(), 0u);
  // Every repair completes even past the horizon: the run ends fully up.
  for (std::size_t i = 0; i < h.net.size(); ++i) {
    EXPECT_TRUE(h.net.is_up(NodeId{static_cast<std::uint32_t>(i)})) << "node " << i;
  }
}

TEST(FailureInjectorTest, FailureCountScalesWithHorizon) {
  Harness a, b;
  FailureInjector ia(a.sim, a.net, {});
  FailureInjector ib(b.sim, b.net, {});
  ia.start(sim::TimePoint::at(sim::Duration::ms(100)));
  ib.start(sim::TimePoint::at(sim::Duration::ms(1000)));
  a.sim.run();
  b.sim.run();
  EXPECT_GT(ib.failures_injected(), ia.failures_injected() * 3);
}

TEST(FailureInjectorTest, MeanDowntimeNearMttr) {
  // Repair ~ U(5,15) ms: measure the fraction of time a node spends down and
  // compare with MTTR / (MTBF + MTTR) = 10/60.
  Harness h(4, 17);
  FailureParams params;
  FailureInjector injector(h.sim, h.net, params);
  const auto horizon = sim::TimePoint::at(sim::Duration::ms(20'000));
  injector.start(horizon);

  double down_ms = 0.0;
  sim::TimePoint last = h.sim.now();
  std::size_t down_count = 0;
  // Sample the network every 1 ms.
  std::function<void()> sampler = [&] {
    const double dt = (h.sim.now() - last).to_ms();
    last = h.sim.now();
    down_ms += dt * static_cast<double>(down_count) / static_cast<double>(h.net.size());
    down_count = 0;
    for (std::size_t i = 0; i < h.net.size(); ++i) {
      if (!h.net.is_up(NodeId{static_cast<std::uint32_t>(i)})) ++down_count;
    }
    if (h.sim.now() < horizon) h.sim.after(sim::Duration::ms(1.0), sampler);
  };
  h.sim.after(sim::Duration::ms(1.0), sampler);
  h.sim.run();
  const double frac = down_ms / 20'000.0;
  EXPECT_NEAR(frac, 10.0 / 60.0, 0.05);
}

TEST(FailureInjectorTest, NoFailuresAfterZeroHorizon) {
  Harness h;
  FailureInjector injector(h.sim, h.net, {});
  injector.start(h.sim.now());  // horizon == now: nothing may start
  h.sim.run();
  EXPECT_EQ(injector.failures_injected(), 0u);
}

TEST(FailureInjectorTest, FailureLandingExactlyOnTheHorizonIsNotInitiated) {
  // Regression pin for the horizon boundary: the renewal must treat the
  // horizon itself as past.  With a single node the injector's first draw is
  // reproducible from the same fork, so we can aim the horizon exactly at
  // the first failure instant.
  sim::Simulation sim{9};
  Network net(sim, RadioTable::mica2(), quiet_mac(), {}, {{0.0, 0.0}}, 20.0);
  FailureParams params;
  auto preview = sim.rng().fork(0xFA11);
  const auto first_wait = preview.exponential(params.mean_time_between_failures);
  FailureInjector injector(sim, net, params);
  injector.start(sim.now() + first_wait);  // horizon == first failure instant
  sim.run();
  EXPECT_EQ(injector.failures_injected(), 0u);
  // One nanosecond later the same failure is strictly inside the horizon.
  sim::Simulation sim2{9};
  Network net2(sim2, RadioTable::mica2(), quiet_mac(), {}, {{0.0, 0.0}}, 20.0);
  FailureInjector injector2(sim2, net2, params);
  injector2.start(sim2.now() + first_wait + sim::Duration::nanos(1));
  sim2.run();
  EXPECT_GE(injector2.failures_injected(), 1u);
}

TEST(MobilityProcessTest, EpochsMoveTheConfiguredFraction) {
  Harness h;
  MobilityParams params;
  params.epoch_interval = sim::Duration::ms(10);
  params.move_fraction = 0.25;  // 4 of 16 nodes
  params.field_side_m = 15.0;
  MobilityProcess mob(h.sim, h.net, params);
  mob.start(sim::TimePoint::at(sim::Duration::ms(35)));
  h.sim.run();
  EXPECT_EQ(mob.epochs(), 3u);       // t = 10, 20, 30
  EXPECT_EQ(mob.moves(), 3u * 4u);
}

TEST(MobilityProcessTest, MovedNodesStayInsideField) {
  Harness h;
  MobilityParams params;
  params.epoch_interval = sim::Duration::ms(5);
  params.move_fraction = 1.0;
  params.field_side_m = 15.0;
  MobilityProcess mob(h.sim, h.net, params);
  mob.start(sim::TimePoint::at(sim::Duration::ms(50)));
  h.sim.run();
  for (std::size_t i = 0; i < h.net.size(); ++i) {
    const auto p = h.net.position(NodeId{static_cast<std::uint32_t>(i)});
    EXPECT_GE(p.x, 0.0);
    EXPECT_LE(p.x, 15.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LE(p.y, 15.0);
  }
}

TEST(MobilityProcessTest, CallbackFiresPerEpoch) {
  Harness h;
  MobilityParams params;
  params.epoch_interval = sim::Duration::ms(10);
  params.field_side_m = 15.0;
  MobilityProcess mob(h.sim, h.net, params);
  int calls = 0;
  mob.set_on_moved([&] { ++calls; });
  mob.start(sim::TimePoint::at(sim::Duration::ms(45)));
  h.sim.run();
  EXPECT_EQ(calls, 4);
}

TEST(MobilityProcessTest, AtLeastOneNodeMovesForTinyFractions) {
  Harness h;
  MobilityParams params;
  params.epoch_interval = sim::Duration::ms(10);
  params.move_fraction = 0.001;  // rounds to 0, clamped to 1 mover
  params.field_side_m = 15.0;
  MobilityProcess mob(h.sim, h.net, params);
  mob.start(sim::TimePoint::at(sim::Duration::ms(10)));
  h.sim.run();
  EXPECT_EQ(mob.moves(), 1u);
}

TEST(MobilityProcessTest, DeterministicAcrossRunsWithSameSeed) {
  auto run = [](std::uint64_t seed) {
    Harness h(4, seed);
    MobilityParams params;
    params.epoch_interval = sim::Duration::ms(10);
    params.field_side_m = 15.0;
    MobilityProcess mob(h.sim, h.net, params);
    mob.start(sim::TimePoint::at(sim::Duration::ms(30)));
    h.sim.run();
    std::vector<Point> pts;
    for (std::size_t i = 0; i < h.net.size(); ++i) {
      pts.push_back(h.net.position(NodeId{static_cast<std::uint32_t>(i)}));
    }
    return pts;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace spms::net
