#include "net/spatial_grid.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <set>
#include <vector>

#include "net/network.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

/// \file spatial_grid_test.cpp
/// Property suite for the uniform-grid spatial index and its integration
/// into Network.  The grid only promises a conservative superset per disc
/// query; Network promises *exact* brute-force results (same inclusive
/// d^2 <= r^2 membership, ascending-id order).  Both promises are checked
/// against literal brute-force scans under random deployments, mobility
/// teleports, and up/down churn — any mismatch would silently change RNG
/// draw order and break byte-for-byte run reproducibility.

namespace spms::net {
namespace {

// --- SpatialGrid unit properties ---------------------------------------------

TEST(SpatialGridTest, VisitDiscCoversAllMembers) {
  std::mt19937_64 gen(42);
  std::uniform_real_distribution<double> coord(-50.0, 150.0);
  SpatialGrid grid;
  grid.reset(/*cell_size_m=*/20.0, /*expected_nodes=*/200);
  std::vector<Point> pts;
  for (std::uint32_t i = 0; i < 200; ++i) {
    pts.push_back({coord(gen), coord(gen)});
    grid.insert(i, pts.back());
  }
  for (int q = 0; q < 50; ++q) {
    const Point c{coord(gen), coord(gen)};
    const double r = std::uniform_real_distribution<double>(0.0, 60.0)(gen);
    std::set<std::uint32_t> visited;
    grid.visit_disc(c, r, [&](std::uint32_t id) { visited.insert(id); });
    for (std::uint32_t i = 0; i < 200; ++i) {
      if (distance_sq(pts[i], c) <= r * r) {
        EXPECT_TRUE(visited.count(i)) << "id " << i << " inside disc but not visited";
      }
    }
  }
}

TEST(SpatialGridTest, VisitDiscIsExactlyOncePerId) {
  SpatialGrid grid;
  grid.reset(10.0, 16);
  for (std::uint32_t i = 0; i < 16; ++i) {
    grid.insert(i, {static_cast<double>(i % 4) * 5.0, static_cast<double>(i / 4) * 5.0});
  }
  std::vector<std::uint32_t> visited;
  grid.visit_disc({7.5, 7.5}, 100.0, [&](std::uint32_t id) { visited.push_back(id); });
  std::sort(visited.begin(), visited.end());
  ASSERT_EQ(visited.size(), 16u);
  EXPECT_EQ(std::adjacent_find(visited.begin(), visited.end()), visited.end())
      << "an id was visited twice";
}

TEST(SpatialGridTest, MoveRelocatesAcrossCells) {
  SpatialGrid grid;
  grid.reset(10.0, 4);
  grid.insert(0, {5.0, 5.0});
  grid.insert(1, {5.0, 6.0});
  grid.move(0, {5.0, 5.0}, {95.0, 95.0});
  std::vector<std::uint32_t> near_old;
  grid.visit_disc({5.0, 5.0}, 2.0, [&](std::uint32_t id) { near_old.push_back(id); });
  EXPECT_EQ(near_old, (std::vector<std::uint32_t>{1}));
  std::vector<std::uint32_t> near_new;
  grid.visit_disc({95.0, 95.0}, 2.0, [&](std::uint32_t id) { near_new.push_back(id); });
  EXPECT_EQ(near_new, (std::vector<std::uint32_t>{0}));
}

TEST(SpatialGridTest, SameCellMoveKeepsMembership) {
  SpatialGrid grid;
  grid.reset(10.0, 1);
  grid.insert(0, {1.0, 1.0});
  grid.move(0, {1.0, 1.0}, {2.0, 2.0});  // same cell: early-return path
  int seen = 0;
  grid.visit_disc({2.0, 2.0}, 1.0, [&](std::uint32_t) { ++seen; });
  EXPECT_EQ(seen, 1);
}

TEST(SpatialGridTest, NegativeCoordinatesHashDistinctCells) {
  // key() packs truncated 32-bit cell coords; (-1, 0) and (0, -1) style
  // collisions would merge distant cells.  Place points around the origin
  // and check disc queries stay local.
  SpatialGrid grid;
  grid.reset(10.0, 4);
  grid.insert(0, {-5.0, -5.0});
  grid.insert(1, {5.0, 5.0});
  grid.insert(2, {-5.0, 5.0});
  grid.insert(3, {5.0, -5.0});
  std::vector<std::uint32_t> hits;
  grid.visit_disc({-5.0, -5.0}, 1.0, [&](std::uint32_t id) { hits.push_back(id); });
  EXPECT_EQ(hits, (std::vector<std::uint32_t>{0}));
}

// --- Network vs brute force --------------------------------------------------

/// Literal reference implementation of neighbors_within.
std::vector<NodeId> brute_neighbors(const Network& net, NodeId center, double radius_m,
                                    bool include_down) {
  std::vector<NodeId> out;
  const Point c = net.position(center);
  const double r2 = radius_m * radius_m;
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    const NodeId id{i};
    if (id == center) continue;
    if (!include_down && !net.is_up(id)) continue;
    if (distance_sq(net.position(id), c) <= r2) out.push_back(id);
  }
  return out;  // ascending by construction
}

std::size_t brute_contention(const Network& net, NodeId center, double radius_m) {
  std::size_t n = 0;
  const Point c = net.position(center);
  const double r2 = radius_m * radius_m;
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    const NodeId id{i};
    if (id == center || !net.is_up(id)) continue;
    if (distance_sq(net.position(id), c) <= r2) ++n;
  }
  return n;
}

class GridNetworkTest : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  static constexpr double kZone = 20.0;
  static constexpr std::size_t kNodes = 120;

  void build(std::mt19937_64& gen) {
    std::uniform_real_distribution<double> coord(0.0, 100.0);
    std::vector<Point> pts;
    for (std::size_t i = 0; i < kNodes; ++i) pts.push_back({coord(gen), coord(gen)});
    net = std::make_unique<Network>(sim, RadioTable::mica2(), MacParams{},
                                    EnergyModelParams{}, pts, kZone);
  }

  /// Checks every node as a query center at several radii, both liveness
  /// filters, against brute force.
  void check_all(const char* stage) {
    for (const double r : {kZone, kZone / 2.0, kZone * 2.5, 0.0}) {
      for (std::uint32_t i = 0; i < kNodes; ++i) {
        const NodeId id{i};
        for (const bool down : {true, false}) {
          ASSERT_EQ(net->neighbors_within(id, r, down), brute_neighbors(*net, id, r, down))
              << stage << ": center " << i << " r " << r << " include_down " << down;
        }
        ASSERT_EQ(net->contention_count(id, r), brute_contention(*net, id, r))
            << stage << ": center " << i << " r " << r;
      }
    }
  }

  sim::Simulation sim{7};
  std::unique_ptr<Network> net;
};

TEST_P(GridNetworkTest, MatchesBruteForceUnderChurn) {
  std::mt19937_64 gen(GetParam());
  build(gen);
  check_all("fresh deployment");

  // Mobility: teleport a third of the nodes, some far outside the original
  // field (negative coordinates included).
  std::uniform_real_distribution<double> far(-80.0, 180.0);
  std::uniform_int_distribution<std::uint32_t> pick(0, kNodes - 1);
  for (int i = 0; i < static_cast<int>(kNodes) / 3; ++i) {
    net->set_position(NodeId{pick(gen)}, {far(gen), far(gen)});
  }
  check_all("after teleports");

  // Churn: fail a random subset, then repair some of them.
  std::vector<NodeId> failed;
  for (int i = 0; i < 30; ++i) {
    const NodeId id{pick(gen)};
    net->set_up(id, false);
    failed.push_back(id);
  }
  check_all("after failures");
  for (std::size_t i = 0; i < failed.size(); i += 2) net->set_up(failed[i], true);
  check_all("after repairs");

  // Move nodes while some are down: down nodes keep their zone membership.
  for (int i = 0; i < 20; ++i) {
    net->set_position(NodeId{pick(gen)}, {far(gen), far(gen)});
  }
  check_all("teleports with downs");
}

INSTANTIATE_TEST_SUITE_P(Seeds, GridNetworkTest, ::testing::Values(1u, 2u, 3u, 4u, 5u));

TEST(GridNetworkTest2, ScratchBufferOverloadMatchesAllocatingOverload) {
  sim::Simulation sim{3};
  std::mt19937_64 gen(11);
  std::uniform_real_distribution<double> coord(0.0, 60.0);
  std::vector<Point> pts;
  for (int i = 0; i < 50; ++i) pts.push_back({coord(gen), coord(gen)});
  Network net(sim, RadioTable::mica2(), MacParams{}, EnergyModelParams{}, pts, 20.0);
  std::vector<NodeId> reused;  // deliberately reused dirty across queries
  for (std::uint32_t i = 0; i < 50; ++i) {
    net.neighbors_within(NodeId{i}, 20.0, /*include_down=*/true, reused);
    EXPECT_EQ(reused, net.neighbors_within(NodeId{i}, 20.0, /*include_down=*/true));
  }
}

}  // namespace
}  // namespace spms::net
