#include "net/network.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace spms::net {
namespace {

/// Test agent that records every reception with its timestamp.
class RecordingAgent final : public Agent {
 public:
  explicit RecordingAgent(sim::Simulation& sim) : sim_(sim) {}

  void on_receive(const Packet& p) override { received.emplace_back(sim_.now(), p); }
  void on_down() override { ++downs; }
  void on_up() override { ++ups; }

  std::vector<std::pair<sim::TimePoint, Packet>> received;
  int downs = 0;
  int ups = 0;

 private:
  sim::Simulation& sim_;
};

/// Deterministic MAC: no random backoff, no quadratic term.
MacParams quiet_mac() {
  MacParams mac;
  mac.num_slots = 1;
  mac.contention_g_ms = 0.0;
  return mac;
}

Packet adv_packet(DataId item, std::size_t bytes = 2) {
  Packet p;
  p.type = PacketType::kAdv;
  p.item = item;
  p.size_bytes = bytes;
  return p;
}

class NetworkTest : public ::testing::Test {
 protected:
  /// Builds a line of nodes spaced `pitch` apart with the given zone radius.
  void build_line(std::size_t count, double pitch, double zone_radius,
                  EnergyModelParams energy = {}) {
    std::vector<Point> pts;
    for (std::size_t i = 0; i < count; ++i) pts.push_back({static_cast<double>(i) * pitch, 0.0});
    net = std::make_unique<Network>(sim, RadioTable::mica2(), quiet_mac(), energy, pts,
                                    zone_radius);
    agents.clear();
    for (std::size_t i = 0; i < count; ++i) {
      agents.push_back(std::make_unique<RecordingAgent>(sim));
      net->set_agent(NodeId{static_cast<std::uint32_t>(i)}, agents.back().get());
    }
  }

  sim::Simulation sim{1};
  std::unique_ptr<Network> net;
  std::vector<std::unique_ptr<RecordingAgent>> agents;
};

TEST_F(NetworkTest, RejectsEmptyDeployment) {
  EXPECT_THROW(Network(sim, RadioTable::mica2(), {}, {}, {}, 20.0), std::invalid_argument);
}

TEST_F(NetworkTest, RejectsZoneRadiusBeyondRadio) {
  std::vector<Point> pts{{0, 0}};
  EXPECT_THROW(Network(sim, RadioTable::mica2(), {}, {}, pts, 100.0), std::invalid_argument);
  EXPECT_THROW(Network(sim, RadioTable::mica2(), {}, {}, pts, 0.0), std::invalid_argument);
}

TEST_F(NetworkTest, NeighborQueries) {
  build_line(5, 5.0, 12.0);  // nodes at x = 0,5,10,15,20
  const auto n0 = net->neighbors_within(NodeId{0}, 12.0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], NodeId{1});
  EXPECT_EQ(n0[1], NodeId{2});
  const auto n2 = net->neighbors_within(NodeId{2}, 12.0);
  EXPECT_EQ(n2.size(), 4u);  // everyone else
  EXPECT_DOUBLE_EQ(net->distance_between(NodeId{0}, NodeId{3}), 15.0);
}

TEST_F(NetworkTest, NeighborQueriesRespectDownFlag) {
  build_line(3, 5.0, 12.0);
  net->set_up(NodeId{1}, false);
  EXPECT_EQ(net->neighbors_within(NodeId{0}, 12.0, /*include_down=*/true).size(), 2u);
  EXPECT_EQ(net->neighbors_within(NodeId{0}, 12.0, /*include_down=*/false).size(), 1u);
  EXPECT_EQ(net->contention_count(NodeId{0}, 12.0), 1u);  // contention counts alive only
}

TEST_F(NetworkTest, BroadcastDeliversToDiscWithAirtimeAndProcessing) {
  build_line(4, 5.0, 12.0);  // 0,5,10,15
  ASSERT_TRUE(net->send(NodeId{0}, adv_packet({NodeId{0}, 1}), 12.0));
  sim.run();
  // Coverage 12 m from x=0 reaches nodes 1 (5 m) and 2 (10 m), not 3 (15 m).
  EXPECT_EQ(agents[1]->received.size(), 1u);
  EXPECT_EQ(agents[2]->received.size(), 1u);
  EXPECT_TRUE(agents[3]->received.empty());
  EXPECT_TRUE(agents[0]->received.empty());  // no self-delivery
  // Timing: airtime 2 B * 0.05 ms + t_proc 0.02 ms (no backoff in quiet_mac).
  EXPECT_EQ(agents[1]->received[0].first, sim::TimePoint::at(sim::Duration::ms(0.12)));
  // Source is stamped.
  EXPECT_EQ(agents[1]->received[0].second.src, NodeId{0});
}

TEST_F(NetworkTest, UnicastProcessedOnlyByDestination) {
  build_line(3, 5.0, 12.0);
  Packet p = adv_packet({NodeId{0}, 1});
  ASSERT_TRUE(net->send_to(NodeId{0}, p, NodeId{2}));
  sim.run();
  EXPECT_TRUE(agents[1]->received.empty());  // overhearer does not process
  ASSERT_EQ(agents[2]->received.size(), 1u);
  EXPECT_EQ(agents[2]->received[0].second.dst, NodeId{2});
}

TEST_F(NetworkTest, TxEnergyUsesCheapestCoveringLevel) {
  build_line(2, 5.0, 12.0);
  // 5 m -> level 5 (0.0125 mW); 2 bytes -> 0.1 ms airtime.
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  sim.run();
  EXPECT_NEAR(net->battery(NodeId{0}).meter().protocol_tx_uj(), 0.0125 * 0.1, 1e-12);
}

TEST_F(NetworkTest, RxEnergyChargedToAddressedReceivers) {
  build_line(3, 5.0, 12.0);
  ASSERT_TRUE(net->send(NodeId{0}, adv_packet({NodeId{0}, 1}), 12.0));
  sim.run();
  const double rx = net->energy_params().rx_power_mw * 0.1;  // rx power * airtime
  EXPECT_NEAR(net->battery(NodeId{1}).meter().protocol_rx_uj(), rx, 1e-12);
  EXPECT_NEAR(net->battery(NodeId{2}).meter().protocol_rx_uj(), rx, 1e-12);
}

TEST_F(NetworkTest, OverhearingChargesOnlyWhenEnabled) {
  EnergyModelParams energy;
  energy.charge_overhearing = false;
  build_line(3, 5.0, 12.0, energy);
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{2}));
  sim.run();
  EXPECT_DOUBLE_EQ(net->battery(NodeId{1}).meter().protocol_rx_uj(), 0.0);

  sim::Simulation sim2{1};
  energy.charge_overhearing = true;
  std::vector<Point> pts{{0, 0}, {5, 0}, {10, 0}};
  Network net2(sim2, RadioTable::mica2(), quiet_mac(), energy, pts, 12.0);
  Packet p = adv_packet({NodeId{0}, 1});
  p.dst = NodeId{2};
  ASSERT_TRUE(net2.send(NodeId{0}, p, 10.0));
  sim2.run();
  EXPECT_GT(net2.battery(NodeId{1}).meter().protocol_rx_uj(), 0.0);
}

TEST_F(NetworkTest, PerNodeTransmissionsSerialize) {
  build_line(2, 5.0, 12.0);
  // Two 2-byte frames from node 0: second starts after the first's airtime.
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 2}), NodeId{1}));
  sim.run();
  ASSERT_EQ(agents[1]->received.size(), 2u);
  EXPECT_EQ(agents[1]->received[0].first, sim::TimePoint::at(sim::Duration::ms(0.12)));
  EXPECT_EQ(agents[1]->received[1].first, sim::TimePoint::at(sim::Duration::ms(0.22)));
}

TEST_F(NetworkTest, CarrierSenseSerializesOverlappingDiscs) {
  build_line(3, 5.0, 12.0);  // 0,5,10
  // Node 0 and node 1 both transmit at t=0 with 12 m coverage; node 1 hears
  // node 0's transmission, so it must defer until it ends.
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{2}));
  ASSERT_TRUE(net->send_to(NodeId{1}, adv_packet({NodeId{1}, 1}), NodeId{2}));
  sim.run();
  ASSERT_EQ(agents[2]->received.size(), 2u);
  EXPECT_EQ(agents[2]->received[0].first, sim::TimePoint::at(sim::Duration::ms(0.12)));
  // Node 1 deferred to 0.1 (busy end), then transmitted 0.1 ms + t_proc.
  EXPECT_EQ(agents[2]->received[1].first, sim::TimePoint::at(sim::Duration::ms(0.22)));
}

TEST_F(NetworkTest, CarrierSenseAllowsSpatialReuse) {
  // Nodes 0-1 near the origin; nodes 2-3 far away: transmissions with small
  // discs do not interact, so both complete in parallel.
  std::vector<Point> pts{{0, 0}, {5, 0}, {1000, 0}, {1005, 0}};
  net = std::make_unique<Network>(sim, RadioTable::mica2(), quiet_mac(), EnergyModelParams{},
                                  pts, 12.0);
  agents.clear();
  for (std::uint32_t i = 0; i < 4; ++i) {
    agents.push_back(std::make_unique<RecordingAgent>(sim));
    net->set_agent(NodeId{i}, agents.back().get());
  }
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  ASSERT_TRUE(net->send_to(NodeId{2}, adv_packet({NodeId{2}, 1}), NodeId{3}));
  sim.run();
  ASSERT_EQ(agents[1]->received.size(), 1u);
  ASSERT_EQ(agents[3]->received.size(), 1u);
  EXPECT_EQ(agents[1]->received[0].first, agents[3]->received[0].first);  // no cross-blocking
}

TEST_F(NetworkTest, SendFromDownNodeFailsAndCounts) {
  build_line(2, 5.0, 12.0);
  net->set_up(NodeId{0}, false);
  EXPECT_FALSE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  EXPECT_EQ(net->counters().dropped_sender_down, 1u);
  sim.run();
  EXPECT_TRUE(agents[1]->received.empty());
}

TEST_F(NetworkTest, OutOfRangeSendFailsAndCounts) {
  build_line(2, 100.0, 12.0);  // 100 m apart, beyond the strongest level
  EXPECT_FALSE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  EXPECT_EQ(net->counters().dropped_out_of_range, 1u);
}

TEST_F(NetworkTest, DownReceiverMissesFrame) {
  build_line(2, 5.0, 12.0);
  net->set_up(NodeId{1}, false);
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  sim.run();
  EXPECT_TRUE(agents[1]->received.empty());
  EXPECT_DOUBLE_EQ(net->battery(NodeId{1}).meter().protocol_rx_uj(), 0.0);  // no rx while down
}

TEST_F(NetworkTest, ReceiverFailingDuringProcessingDropsFrame) {
  build_line(2, 5.0, 12.0);
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  // Fail node 1 between frame arrival (0.1 ms) and processing (0.12 ms).
  sim.at(sim::TimePoint::at(sim::Duration::ms(0.11)), [&] { net->set_up(NodeId{1}, false); });
  sim.run();
  EXPECT_TRUE(agents[1]->received.empty());
  EXPECT_EQ(net->counters().dropped_receiver_down, 1u);
}

TEST_F(NetworkTest, CrashClearsMacQueue) {
  build_line(2, 5.0, 12.0);
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 2}), NodeId{1}));
  // Crash the sender mid-first-transmission: both frames must vanish.
  sim.at(sim::TimePoint::at(sim::Duration::ms(0.05)), [&] { net->set_up(NodeId{0}, false); });
  sim.run();
  EXPECT_TRUE(agents[1]->received.empty());
}

TEST_F(NetworkTest, AgentHooksFireOnTransitions) {
  build_line(1, 5.0, 12.0);
  net->set_up(NodeId{0}, false);
  net->set_up(NodeId{0}, false);  // idempotent: no second hook
  net->set_up(NodeId{0}, true);
  EXPECT_EQ(agents[0]->downs, 1);
  EXPECT_EQ(agents[0]->ups, 1);
}

TEST_F(NetworkTest, CountersTrackFrameTypes) {
  build_line(3, 5.0, 12.0);
  Packet req = adv_packet({NodeId{0}, 1});
  req.type = PacketType::kReq;
  Packet data = adv_packet({NodeId{0}, 1}, 40);
  data.type = PacketType::kData;
  ASSERT_TRUE(net->send(NodeId{0}, adv_packet({NodeId{0}, 1}), 12.0));
  ASSERT_TRUE(net->send_to(NodeId{1}, req, NodeId{0}));
  ASSERT_TRUE(net->send_to(NodeId{0}, data, NodeId{1}));
  sim.run();
  EXPECT_EQ(net->counters().tx_adv, 1u);
  EXPECT_EQ(net->counters().tx_req, 1u);
  EXPECT_EQ(net->counters().tx_data, 1u);
  EXPECT_EQ(net->counters().tx_bytes, 2u + 2u + 40u);
  EXPECT_GT(net->counters().deliveries, 0u);
}

TEST_F(NetworkTest, ChargeHelpersAccountRoutingEnergy) {
  build_line(2, 5.0, 12.0);
  net->charge_tx(NodeId{0}, 100, 11.0, EnergyUse::kRouting);
  net->charge_rx(NodeId{1}, 100, EnergyUse::kRouting);
  // 11 m -> level 4 (0.05 mW, range 11.28 m); 100 B -> 5 ms airtime.
  const double rx = net->energy_params().rx_power_mw;
  EXPECT_NEAR(net->battery(NodeId{0}).meter().routing_tx_uj(), 0.05 * 5.0, 1e-12);
  EXPECT_NEAR(net->battery(NodeId{1}).meter().routing_rx_uj(), rx * 5.0, 1e-12);
  const auto total = net->energy();
  EXPECT_NEAR(total.routing_uj(), 0.05 * 5.0 + rx * 5.0, 1e-12);
  EXPECT_DOUBLE_EQ(total.protocol_uj(), 0.0);
}

TEST_F(NetworkTest, ChannelQuietForReflectsActivity) {
  build_line(2, 5.0, 12.0);
  EXPECT_TRUE(net->channel_quiet_for(NodeId{1}, sim::Duration::ms(1.0)));
  ASSERT_TRUE(net->send_to(NodeId{0}, adv_packet({NodeId{0}, 1}), NodeId{1}));
  sim.run_until(sim::TimePoint::at(sim::Duration::ms(0.05)));  // mid-airtime
  EXPECT_FALSE(net->channel_quiet_for(NodeId{1}, sim::Duration::ms(0.0)));
  sim.run();
  // Channel idle since 0.1 ms; quiet for 1 ms only once now >= 1.1 ms.
  sim.run_until(sim::TimePoint::at(sim::Duration::ms(0.5)));
  EXPECT_FALSE(net->channel_quiet_for(NodeId{1}, sim::Duration::ms(1.0)));
  sim.run_until(sim::TimePoint::at(sim::Duration::ms(1.2)));
  EXPECT_TRUE(net->channel_quiet_for(NodeId{1}, sim::Duration::ms(1.0)));
}

TEST_F(NetworkTest, MobilityChangesDeliveryDisc) {
  build_line(3, 5.0, 12.0);
  net->set_position(NodeId{2}, Point{200.0, 0.0});
  ASSERT_TRUE(net->send(NodeId{0}, adv_packet({NodeId{0}, 1}), 12.0));
  sim.run();
  EXPECT_EQ(agents[1]->received.size(), 1u);
  EXPECT_TRUE(agents[2]->received.empty());  // moved out of the disc
}

}  // namespace
}  // namespace spms::net
