#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace spms::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a{42}, b{42};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, SeedZeroIsUsable) {
  Rng r{0};
  std::set<std::uint64_t> vals;
  for (int i = 0; i < 50; ++i) vals.insert(r.next());
  EXPECT_GT(vals.size(), 45u);  // not stuck
}

TEST(RngTest, Uniform01InRange) {
  Rng r{7};
  for (int i = 0; i < 10'000; ++i) {
    const double x = r.uniform01();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(RngTest, Uniform01MeanNearHalf) {
  Rng r{7};
  double sum = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) sum += r.uniform01();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversInclusiveRange) {
  Rng r{3};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto v = r.uniform_int(0, 4);
    EXPECT_GE(v, 0);
    EXPECT_LE(v, 4);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, UniformIntSingleton) {
  Rng r{3};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(r.uniform_int(7, 7), 7);
}

TEST(RngTest, ExponentialMeanMatches) {
  Rng r{11};
  double sum = 0;
  const int n = 200'000;
  for (int i = 0; i < n; ++i) sum += r.exponential(50.0);
  EXPECT_NEAR(sum / n, 50.0, 1.0);
}

TEST(RngTest, ExponentialDurationIsPositive) {
  Rng r{11};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(r.exponential(Duration::ms(1.0)), Duration::zero());
  }
}

TEST(RngTest, BernoulliProbability) {
  Rng r{13};
  int hits = 0;
  const int n = 100'000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.05);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.05, 0.005);
}

TEST(RngTest, BernoulliExtremes) {
  Rng r{13};
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng root{99};
  Rng a = root.fork(0);
  Rng b = root.fork(1);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next() == b.next());
  EXPECT_LT(same, 3);
  // Forking again with the same id reproduces the stream.
  Rng a2 = root.fork(0);
  Rng a3 = Rng{99}.fork(0);
  for (int i = 0; i < 10; ++i) {
    const auto expected = a3.next();
    EXPECT_EQ(a2.next(), expected);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng r{5};
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

TEST(RngTest, UniformDurationWithinBounds) {
  Rng r{17};
  const auto lo = Duration::ms(5.0), hi = Duration::ms(15.0);
  for (int i = 0; i < 1000; ++i) {
    const auto d = r.uniform(lo, hi);
    EXPECT_GE(d, lo);
    EXPECT_LE(d, hi);
  }
}

}  // namespace
}  // namespace spms::sim
