#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace spms::sim {
namespace {

TEST(SchedulerTest, ExecutesInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(TimePoint::at(Duration::millis(3)), [&] { order.push_back(3); });
  s.schedule_at(TimePoint::at(Duration::millis(1)), [&] { order.push_back(1); });
  s.schedule_at(TimePoint::at(Duration::millis(2)), [&] { order.push_back(2); });
  EXPECT_EQ(s.run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(SchedulerTest, TiesBreakFifo) {
  Scheduler s;
  std::vector<int> order;
  const auto t = TimePoint::at(Duration::millis(1));
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(t, [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, NowAdvancesToFiringTime) {
  Scheduler s;
  TimePoint seen;
  s.schedule_at(TimePoint::at(Duration::ms(2.5)), [&] { seen = s.now(); });
  s.run();
  EXPECT_EQ(seen, TimePoint::at(Duration::ms(2.5)));
  EXPECT_EQ(s.now(), TimePoint::at(Duration::ms(2.5)));
}

TEST(SchedulerTest, ScheduleAfterIsRelative) {
  Scheduler s;
  TimePoint inner;
  s.schedule_at(TimePoint::at(Duration::millis(5)), [&] {
    s.schedule_after(Duration::millis(2), [&] { inner = s.now(); });
  });
  s.run();
  EXPECT_EQ(inner, TimePoint::at(Duration::millis(7)));
}

TEST(SchedulerTest, PastSchedulingClampsToNow) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(TimePoint::at(Duration::millis(5)), [&] {
    s.schedule_at(TimePoint::at(Duration::millis(1)), [&] {
      ran = true;
      EXPECT_EQ(s.now(), TimePoint::at(Duration::millis(5)));
    });
  });
  s.run();
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const auto h = s.schedule_at(TimePoint::at(Duration::millis(1)), [&] { ran = true; });
  s.cancel(h);
  EXPECT_EQ(s.run(), 0u);
  EXPECT_FALSE(ran);
}

TEST(SchedulerTest, CancelInvalidHandleIsNoop) {
  Scheduler s;
  s.cancel(EventHandle{});
  s.cancel(EventHandle{12345});
  EXPECT_EQ(s.run(), 0u);
}

TEST(SchedulerTest, CancelAlreadyFiredIsNoop) {
  Scheduler s;
  int runs = 0;
  const auto h = s.schedule_at(TimePoint::at(Duration::millis(1)), [&] { ++runs; });
  s.run();
  s.cancel(h);
  s.schedule_at(TimePoint::at(Duration::millis(2)), [&] { ++runs; });
  s.run();
  EXPECT_EQ(runs, 2);
}

TEST(SchedulerTest, CancelAfterFireKeepsPendingAccurate) {
  // Regression: a stale cancel used to park the id in the cancelled set
  // forever, underflowing pending() (size_t) and tripping run()'s
  // limit-hit logic on a drained queue.
  Scheduler s;
  const auto h = s.schedule_at(TimePoint::at(Duration::millis(1)), [] {});
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  s.cancel(h);  // already fired
  EXPECT_EQ(s.pending(), 0u);
  s.schedule_at(TimePoint::at(Duration::millis(2)), [] {});
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.run(/*max_events=*/1), 1u);
  EXPECT_FALSE(s.event_limit_hit());
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, DoubleCancelCountsOnce) {
  Scheduler s;
  const auto h = s.schedule_at(TimePoint::at(Duration::millis(1)), [] {});
  s.schedule_at(TimePoint::at(Duration::millis(2)), [] {});
  s.cancel(h);
  s.cancel(h);  // second cancel of the same pending event must be a no-op
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, RunUntilPushBackKeepsEventLive) {
  // pop_live removes an entry from the live set; run_until's push-back of a
  // beyond-horizon event must restore it or pending() undercounts.
  Scheduler s;
  const auto h = s.schedule_at(TimePoint::at(Duration::millis(1)), [] {});
  bool late_ran = false;
  s.schedule_at(TimePoint::at(Duration::millis(10)), [&] { late_ran = true; });
  s.cancel(h);
  EXPECT_EQ(s.run_until(TimePoint::at(Duration::millis(5))), 0u);
  EXPECT_EQ(s.pending(), 1u);
  const auto h2 = s.schedule_at(TimePoint::at(Duration::millis(11)), [] {});
  s.cancel(h2);  // cancelling the re-pushed neighbour must still work
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(late_ran);
  EXPECT_EQ(s.pending(), 0u);
}

TEST(SchedulerTest, PendingExcludesCancelled) {
  Scheduler s;
  const auto h1 = s.schedule_at(TimePoint::at(Duration::millis(1)), [] {});
  s.schedule_at(TimePoint::at(Duration::millis(2)), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(h1);
  EXPECT_EQ(s.pending(), 1u);
}

TEST(SchedulerTest, RunUntilStopsAtHorizon) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(TimePoint::at(Duration::millis(1)), [&] { order.push_back(1); });
  s.schedule_at(TimePoint::at(Duration::millis(5)), [&] { order.push_back(5); });
  const auto n = s.run_until(TimePoint::at(Duration::millis(3)));
  EXPECT_EQ(n, 1u);
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), TimePoint::at(Duration::millis(3)));
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 5}));
}

TEST(SchedulerTest, RunUntilInclusiveAtBoundary) {
  Scheduler s;
  bool ran = false;
  s.schedule_at(TimePoint::at(Duration::millis(3)), [&] { ran = true; });
  s.run_until(TimePoint::at(Duration::millis(3)));
  EXPECT_TRUE(ran);
}

TEST(SchedulerTest, RunUntilSkipsCancelledBeyondHorizon) {
  Scheduler s;
  bool late_ran = false;
  const auto h = s.schedule_at(TimePoint::at(Duration::millis(1)), [] {});
  s.schedule_at(TimePoint::at(Duration::millis(10)), [&] { late_ran = true; });
  s.cancel(h);
  EXPECT_EQ(s.run_until(TimePoint::at(Duration::millis(5))), 0u);
  EXPECT_FALSE(late_ran);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(late_ran);
}

TEST(SchedulerTest, EventLimitGuards) {
  Scheduler s;
  // A self-perpetuating event chain must be stopped by the guard.
  std::function<void()> loop = [&] { s.schedule_after(Duration::millis(1), loop); };
  s.schedule_after(Duration::millis(1), loop);
  const auto n = s.run(/*max_events=*/100);
  EXPECT_EQ(n, 100u);
  EXPECT_TRUE(s.event_limit_hit());
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int depth = 0;
  std::function<void(int)> nest = [&](int d) {
    depth = d;
    if (d < 10) s.schedule_after(Duration::millis(1), [&, d] { nest(d + 1); });
  };
  s.schedule_after(Duration::millis(1), [&] { nest(1); });
  s.run();
  EXPECT_EQ(depth, 10);
}

TEST(SimulationTest, FacadeWiresSchedulerAndRng) {
  Simulation sim{123};
  bool ran = false;
  sim.after(Duration::millis(1), [&] { ran = true; });
  EXPECT_EQ(sim.now(), TimePoint::zero());
  sim.run();
  EXPECT_TRUE(ran);
  EXPECT_EQ(sim.now(), TimePoint::at(Duration::millis(1)));
  // Rng accessible and deterministic given the seed.
  Simulation sim2{123};
  EXPECT_EQ(sim.rng().next(), sim2.rng().next());
}

TEST(SimulationTest, TraceSinkReceivesEvents) {
  Simulation sim{1};
  std::vector<TraceEvent> got;
  sim.trace().set_sink([&](const TraceEvent& e) { got.push_back(e); });
  EXPECT_TRUE(sim.trace().enabled());
  sim.trace().emit(sim.now(), "test", "hello");
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0].category, "test");
  EXPECT_EQ(got[0].message, "hello");
}

TEST(SimulationTest, TraceDisabledByDefault) {
  Simulation sim{1};
  EXPECT_FALSE(sim.trace().enabled());
  sim.trace().emit(sim.now(), "x", "y");  // must not crash
}

}  // namespace
}  // namespace spms::sim
