#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <limits>
#include <map>
#include <random>
#include <utility>
#include <vector>

/// \file scheduler_equivalence_test.cpp
/// Property suite pinning the handle-indexed heap scheduler to a trivially
/// correct reference model (an ordered map keyed on (time, seq), the seed's
/// semantics).  Both executors run identical randomly generated scripts —
/// schedules with heavy ties, cancels of live/fired/cancelled handles,
/// nested scheduling from callbacks, run_until at random horizons — and must
/// produce the same execution order, clock, and pending count.  Any
/// divergence here is a determinism break, which is a correctness bug for
/// this simulator (results are compared byte-for-byte across runs).

namespace spms::sim {
namespace {

/// Reference implementation: ordered map, O(n) cancel, no slot reuse.
/// Intentionally naive — its correctness is obvious by inspection.
class RefScheduler {
 public:
  struct Handle {
    std::uint64_t id = 0;
  };

  [[nodiscard]] TimePoint now() const { return now_; }
  [[nodiscard]] std::size_t pending() const { return q_.size(); }
  [[nodiscard]] bool event_limit_hit() const { return limit_hit_; }

  Handle schedule_at(TimePoint at, std::function<void()> fn) {
    if (at < now_) at = now_;
    const auto id = next_seq_++;
    q_.emplace(std::make_pair(at, id), std::move(fn));
    return Handle{id};
  }

  Handle schedule_after(Duration d, std::function<void()> fn) {
    return schedule_at(now_ + d, std::move(fn));
  }

  void cancel(Handle h) {
    for (auto it = q_.begin(); it != q_.end(); ++it) {
      if (it->first.second == h.id) {
        q_.erase(it);
        return;
      }
    }
  }

  std::size_t run(std::size_t max_events = std::numeric_limits<std::size_t>::max()) {
    std::size_t executed = 0;
    while (!q_.empty() && executed < max_events) {
      run_one();
      ++executed;
    }
    if (executed >= max_events && !q_.empty()) limit_hit_ = true;
    return executed;
  }

  std::size_t run_until(TimePoint until) {
    std::size_t executed = 0;
    while (!q_.empty() && q_.begin()->first.first <= until) {
      run_one();
      ++executed;
    }
    if (now_ < until) now_ = until;
    return executed;
  }

 private:
  void run_one() {
    auto it = q_.begin();
    now_ = it->first.first;
    auto fn = std::move(it->second);
    q_.erase(it);
    fn();
  }

  std::map<std::pair<TimePoint, std::uint64_t>, std::function<void()>> q_;
  TimePoint now_;
  std::uint64_t next_seq_ = 1;
  bool limit_hit_ = false;
};

// --- random script generation ------------------------------------------------

struct Cmd {
  enum Kind { kSchedule, kCancel, kRunUntil } kind = kSchedule;
  int t_units = 0;   ///< millis; drawn from a small domain to force ties
  int tag = 0;       ///< recorded by the callback on execution
  bool nested = false;  ///< callback schedules a child event
  std::size_t target = 0;  ///< kCancel: index into the handle log (any age)
};

std::vector<Cmd> make_script(std::uint64_t seed, std::size_t length) {
  std::mt19937_64 gen(seed);
  std::uniform_int_distribution<int> kind_die(0, 9);
  std::uniform_int_distribution<int> time_die(0, 20);  // ties are the point
  std::uniform_int_distribution<std::size_t> target_die(0, 1u << 20);
  std::vector<Cmd> script;
  int tag = 0;
  for (std::size_t i = 0; i < length; ++i) {
    Cmd cmd;
    const int k = kind_die(gen);
    if (k < 6) {
      cmd.kind = Cmd::kSchedule;
      cmd.t_units = time_die(gen);
      cmd.tag = tag++;
      cmd.nested = (k == 0);
    } else if (k < 9) {
      cmd.kind = Cmd::kCancel;
      cmd.target = target_die(gen);  // modulo'd at use: hits live and stale
    } else {
      cmd.kind = Cmd::kRunUntil;
      cmd.t_units = time_die(gen);
    }
    script.push_back(cmd);
  }
  return script;
}

/// Runs a script against a scheduler, logging execution order.  Cancels pick
/// from the full handle log, so they hit pending, fired, and already
/// cancelled events alike — exactly the traffic the generation counters must
/// survive.
template <typename S>
struct Executor {
  using Handle = decltype(std::declval<S&>().schedule_at(TimePoint{}, [] {}));

  S s;
  std::vector<int> order;
  std::vector<Handle> handles;
  std::size_t executed = 0;

  void run_script(const std::vector<Cmd>& script) {
    for (const Cmd& cmd : script) {
      switch (cmd.kind) {
        case Cmd::kSchedule: {
          const int tag = cmd.tag;
          const bool nested = cmd.nested;
          handles.push_back(s.schedule_at(
              TimePoint::at(Duration::millis(cmd.t_units)), [this, tag, nested] {
                order.push_back(tag);
                if (nested) {
                  s.schedule_after(Duration::millis(1),
                                   [this, tag] { order.push_back(tag + 100000); });
                }
              }));
          break;
        }
        case Cmd::kCancel:
          if (!handles.empty()) s.cancel(handles[cmd.target % handles.size()]);
          break;
        case Cmd::kRunUntil:
          executed += s.run_until(TimePoint::at(Duration::millis(cmd.t_units)));
          break;
      }
    }
    executed += s.run();
  }
};

TEST(SchedulerEquivalence, RandomScriptsMatchReferenceModel) {
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto script = make_script(seed, 400);
    Executor<Scheduler> real;
    Executor<RefScheduler> ref;
    real.run_script(script);
    ref.run_script(script);
    ASSERT_EQ(real.order, ref.order) << "divergence at seed " << seed;
    EXPECT_EQ(real.executed, ref.executed) << "seed " << seed;
    EXPECT_EQ(real.s.now(), ref.s.now()) << "seed " << seed;
    EXPECT_EQ(real.s.pending(), 0u) << "seed " << seed;
    EXPECT_EQ(ref.s.pending(), 0u) << "seed " << seed;
  }
}

TEST(SchedulerEquivalence, CancelStormMatchesReferenceModel) {
  // Cancel-heavy mix: most commands are cancels, so slots recycle hard and
  // almost every cancel is a stale-handle probe.
  std::mt19937_64 gen(99);
  std::uniform_int_distribution<int> time_die(0, 5);
  std::uniform_int_distribution<std::size_t> target_die(0, 1u << 20);
  std::vector<Cmd> script;
  int tag = 0;
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 4; ++i) {
      script.push_back(Cmd{Cmd::kSchedule, time_die(gen), tag++, false, 0});
    }
    for (int i = 0; i < 12; ++i) {
      script.push_back(Cmd{Cmd::kCancel, 0, 0, false, target_die(gen)});
    }
    script.push_back(Cmd{Cmd::kRunUntil, time_die(gen), 0, false, 0});
  }
  Executor<Scheduler> real;
  Executor<RefScheduler> ref;
  real.run_script(script);
  ref.run_script(script);
  EXPECT_EQ(real.order, ref.order);
  EXPECT_EQ(real.s.now(), ref.s.now());
}

// --- targeted regressions ----------------------------------------------------

TEST(SchedulerEquivalence, StaleHandleNeverCancelsRecycledSlot) {
  // The free list hands A's slot to B; A's stale handle carries the old
  // generation and must be ignored, or an unrelated event silently vanishes.
  Scheduler s;
  bool a_ran = false;
  bool b_ran = false;
  const auto ha = s.schedule_at(TimePoint::at(Duration::millis(1)), [&] { a_ran = true; });
  s.cancel(ha);  // frees A's slot
  const auto hb = s.schedule_at(TimePoint::at(Duration::millis(2)), [&] { b_ran = true; });
  EXPECT_NE(ha.id, hb.id);  // same slot, different generation
  s.cancel(ha);             // stale: must not touch B
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_FALSE(a_ran);
  EXPECT_TRUE(b_ran);
}

TEST(SchedulerEquivalence, FiredHandleNeverCancelsRecycledSlot) {
  // Same as above but A's slot is recycled by firing rather than cancelling.
  Scheduler s;
  int b_runs = 0;
  const auto ha = s.schedule_at(TimePoint::at(Duration::millis(1)), [] {});
  s.run();
  const auto hb = s.schedule_at(TimePoint::at(Duration::millis(2)), [&] { ++b_runs; });
  s.cancel(ha);  // A already fired; its slot now belongs to B
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(b_runs, 1);
  static_cast<void>(hb);
}

TEST(SchedulerEquivalence, HandleSurvivesManyGenerations) {
  // Recycle one slot hundreds of times; every retired handle must stay dead.
  Scheduler s;
  std::vector<EventHandle> retired;
  for (int i = 0; i < 300; ++i) {
    const auto h = s.schedule_at(TimePoint::at(Duration::millis(1)), [] {});
    s.cancel(h);
    retired.push_back(h);
  }
  int runs = 0;
  s.schedule_at(TimePoint::at(Duration::millis(1)), [&] { ++runs; });
  for (const auto h : retired) s.cancel(h);
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(s.run(), 1u);
  EXPECT_EQ(runs, 1);
}

TEST(SchedulerEquivalence, EventLimitHitIsStickyAcrossRuns) {
  // Satellite regression: once a run truncates, the flag must stay set even
  // if later run() calls drain cleanly — the experiment records "this run
  // hit its event budget" after the fact.
  Scheduler s;
  for (int i = 0; i < 3; ++i) {
    s.schedule_at(TimePoint::at(Duration::millis(i + 1)), [] {});
  }
  EXPECT_FALSE(s.event_limit_hit());
  EXPECT_EQ(s.run(/*max_events=*/1), 1u);
  EXPECT_TRUE(s.event_limit_hit());
  EXPECT_EQ(s.run(), 2u);  // drains fine...
  EXPECT_TRUE(s.event_limit_hit());  // ...but the flag is sticky
  s.schedule_at(TimePoint::at(Duration::millis(9)), [] {});
  s.run();
  EXPECT_TRUE(s.event_limit_hit());
}

TEST(SchedulerEquivalence, RunUntilAdvancesClockToHorizonWhenIdle) {
  Scheduler s;
  RefScheduler ref;
  EXPECT_EQ(s.run_until(TimePoint::at(Duration::millis(7))), 0u);
  EXPECT_EQ(ref.run_until(TimePoint::at(Duration::millis(7))), 0u);
  EXPECT_EQ(s.now(), ref.now());
  EXPECT_EQ(s.now(), TimePoint::at(Duration::millis(7)));
  // A horizon in the past runs nothing and never rewinds the clock.
  EXPECT_EQ(s.run_until(TimePoint::at(Duration::millis(3))), 0u);
  EXPECT_EQ(s.now(), TimePoint::at(Duration::millis(7)));
}

TEST(SchedulerEquivalence, PendingIsExactUnderChurn) {
  // pending() is now the heap size (O(1)); it must track live events exactly
  // through schedule/cancel/fire churn, with no lazy-cancel slop.
  Scheduler s;
  std::vector<EventHandle> hs;
  for (int i = 0; i < 100; ++i) {
    hs.push_back(s.schedule_at(TimePoint::at(Duration::millis(i % 7)), [] {}));
  }
  EXPECT_EQ(s.pending(), 100u);
  for (int i = 0; i < 100; i += 2) s.cancel(hs[i]);
  EXPECT_EQ(s.pending(), 50u);
  for (int i = 0; i < 100; i += 2) s.cancel(hs[i]);  // double cancels: no-ops
  EXPECT_EQ(s.pending(), 50u);
  EXPECT_EQ(s.run(), 50u);
  EXPECT_EQ(s.pending(), 0u);
}

}  // namespace
}  // namespace spms::sim
