#include "sim/footprint.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/scheduler.hpp"

/// \file footprint_group_test.cpp
/// Property test for the batch partitioner: Scheduler::build_groups must
/// compute exactly the connected components of the pairwise disc-conflict
/// graph — no missed conflict (would race), no spurious union (would only
/// serialize, but silently erode the speedup the partitioner exists for).
/// The grid-bucketed union-find is checked against a brute-force O(n^2)
/// model, comparing as partitions (same-group relations), not group ids.

namespace spms::sim {

/// White-box access to the batch/grouping internals (friend of Scheduler).
class SchedulerBatchTestPeer {
 public:
  explicit SchedulerBatchTestPeer(Scheduler& s) : s_(s) {}

  /// Pops the earliest same-time batch and partitions it; returns the
  /// group index of every batch member, in batch (seq) order.
  std::vector<std::uint32_t> pop_and_group() {
    s_.pop_batch(~std::size_t{0});
    s_.build_groups();
    std::vector<std::uint32_t> group(s_.batch_.size(), 0xffffffffu);
    for (std::size_t g = 0; g < s_.n_groups_; ++g) {
      for (const std::uint32_t idx : s_.groups_[g]) group[idx] = static_cast<std::uint32_t>(g);
    }
    return group;
  }

  [[nodiscard]] std::size_t batch_size() const { return s_.batch_.size(); }
  [[nodiscard]] std::size_t n_groups() const { return s_.n_groups_; }
  [[nodiscard]] const std::vector<std::uint32_t>& group_members(std::size_t g) const {
    return s_.groups_[g];
  }

  /// Executes the popped batch sequentially so the scheduler is left clean.
  void drain() { s_.run_batch_direct(); }

 private:
  Scheduler& s_;
};

namespace {

/// Brute-force reference: connected components of the conflict graph over
/// the same footprints, via O(n^2) union-find.
std::vector<std::uint32_t> reference_components(const std::vector<Footprint>& fps) {
  const std::size_t n = fps.size();
  std::vector<std::uint32_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<std::uint32_t>(i);
  const auto find = [&parent](std::uint32_t x) {
    while (parent[x] != x) x = parent[x];
    return x;
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (fps[i].kind != Footprint::Kind::kSpatial) continue;
    for (std::size_t j = i + 1; j < n; ++j) {
      if (fps[j].kind != Footprint::Kind::kSpatial) continue;
      if (Footprint::discs_conflict(fps[i], fps[j])) {
        parent[find(static_cast<std::uint32_t>(i))] = find(static_cast<std::uint32_t>(j));
      }
    }
  }
  std::vector<std::uint32_t> comp(n);
  for (std::size_t i = 0; i < n; ++i) comp[i] = find(static_cast<std::uint32_t>(i));
  return comp;
}

/// Schedules `fps` as one same-time batch and returns the partitioner's
/// group assignment (batch order == scheduling order).
std::vector<std::uint32_t> group_batch(const std::vector<Footprint>& fps) {
  Scheduler s;
  for (const Footprint& fp : fps) {
    s.schedule_at(TimePoint::at(Duration::millis(1)), [] {}, fp);
  }
  SchedulerBatchTestPeer peer{s};
  const auto groups = peer.pop_and_group();
  EXPECT_EQ(peer.batch_size(), fps.size());
  // Canonical-order invariant: members ascend within each group, and groups
  // are numbered by their first member.
  for (std::size_t g = 0; g < peer.n_groups(); ++g) {
    const auto& members = peer.group_members(g);
    EXPECT_FALSE(members.empty());
    if (members.empty()) continue;
    for (std::size_t k = 1; k < members.size(); ++k) {
      EXPECT_LT(members[k - 1], members[k]) << "group members out of seq order";
    }
    if (g > 0) {
      EXPECT_LT(peer.group_members(g - 1).front(), members.front())
          << "groups not numbered by first member";
    }
  }
  peer.drain();
  return groups;
}

void expect_same_partition(const std::vector<std::uint32_t>& got,
                           const std::vector<std::uint32_t>& want,
                           std::uint64_t seed) {
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t i = 0; i < got.size(); ++i) {
    for (std::size_t j = i + 1; j < got.size(); ++j) {
      EXPECT_EQ(got[i] == got[j], want[i] == want[j])
          << "pair (" << i << ", " << j << ") seed " << seed;
    }
  }
}

TEST(FootprintGroups, MatchesBruteForceComponentsOnRandomBatches) {
  for (std::uint64_t seed = 1; seed <= 60; ++seed) {
    std::mt19937_64 gen(seed);
    std::uniform_int_distribution<int> n_die(2, 64);
    std::uniform_real_distribution<double> pos_die(-200.0, 200.0);
    // Wildly mixed radii stress the bucketing: the grid cell is sized by the
    // batch max radius, so tiny discs land in huge cells.
    std::uniform_real_distribution<double> r_die(0.25, 40.0);
    std::uniform_int_distribution<int> local_die(0, 9);
    const int n = n_die(gen);
    std::vector<Footprint> fps;
    for (int i = 0; i < n; ++i) {
      if (local_die(gen) == 0) {
        fps.push_back(Footprint::local());
      } else {
        fps.push_back(Footprint::disc(pos_die(gen), pos_die(gen), r_die(gen)));
      }
    }
    expect_same_partition(group_batch(fps), reference_components(fps), seed);
  }
}

TEST(FootprintGroups, TransitiveOverlapChainsMergeIntoOneGroup) {
  // 0-10-20 chain: ends conflict only through the middle disc.
  const std::vector<Footprint> fps = {
      Footprint::disc(0.0, 0.0, 5.1),
      Footprint::disc(10.0, 0.0, 5.1),
      Footprint::disc(20.0, 0.0, 5.1),
      Footprint::disc(100.0, 0.0, 5.1),  // far away: own group
  };
  const auto groups = group_batch(fps);
  EXPECT_EQ(groups[0], groups[1]);
  EXPECT_EQ(groups[1], groups[2]);
  EXPECT_NE(groups[0], groups[3]);
}

TEST(FootprintGroups, ExactlyTouchingDiscsConflict) {
  // distance == r1 + r2 is inclusive (conservative under rounding).
  const std::vector<Footprint> fps = {
      Footprint::disc(0.0, 0.0, 4.0),
      Footprint::disc(10.0, 0.0, 6.0),
  };
  EXPECT_TRUE(Footprint::discs_conflict(fps[0], fps[1]));
  const auto groups = group_batch(fps);
  EXPECT_EQ(groups[0], groups[1]);
}

TEST(FootprintGroups, LocalFootprintsAreAlwaysSingletons) {
  std::vector<Footprint> fps;
  for (int i = 0; i < 8; ++i) fps.push_back(Footprint::local());
  // One fat disc covering everything: locals must still stand alone.
  fps.push_back(Footprint::disc(0.0, 0.0, 1e6));
  fps.push_back(Footprint::disc(1.0, 0.0, 1e6));
  const auto groups = group_batch(fps);
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 10; ++j) {
      if (i == j) continue;
      EXPECT_NE(groups[i], groups[j]) << "local event shares group " << i << "/" << j;
    }
  }
  EXPECT_EQ(groups[8], groups[9]);
}

}  // namespace
}  // namespace spms::sim
