#include "sim/time.hpp"

#include <gtest/gtest.h>

namespace spms::sim {
namespace {

TEST(DurationTest, ConstructorsAndAccessors) {
  EXPECT_EQ(Duration::millis(3).count_nanos(), 3'000'000);
  EXPECT_EQ(Duration::micros(3).count_nanos(), 3'000);
  EXPECT_EQ(Duration::seconds(1).count_nanos(), 1'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::ms(0.05).to_ms(), 0.05);
  EXPECT_DOUBLE_EQ(Duration::us(2.5).to_us(), 2.5);
}

TEST(DurationTest, MsRoundsToNearestNanosecond) {
  // 0.05 ms/byte is the paper's airtime constant; must be exactly 50 us.
  EXPECT_EQ(Duration::ms(0.05).count_nanos(), 50'000);
  EXPECT_EQ(Duration::ms(-0.05).count_nanos(), -50'000);
}

TEST(DurationTest, Arithmetic) {
  const auto a = Duration::millis(2);
  const auto b = Duration::millis(5);
  EXPECT_EQ((a + b).count_nanos(), 7'000'000);
  EXPECT_EQ((b - a).count_nanos(), 3'000'000);
  EXPECT_EQ((-a).count_nanos(), -2'000'000);
  EXPECT_EQ((a * 3).count_nanos(), 6'000'000);
  EXPECT_EQ((3 * a).count_nanos(), 6'000'000);
  EXPECT_DOUBLE_EQ(b / a, 2.5);
  EXPECT_EQ((a * 1.5).count_nanos(), 3'000'000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::zero(), Duration::nanos(0));
  EXPECT_GT(Duration::max(), Duration::seconds(1'000'000));
}

TEST(TimePointTest, EpochAndArithmetic) {
  const auto t0 = TimePoint::zero();
  const auto t1 = t0 + Duration::millis(10);
  EXPECT_EQ((t1 - t0).count_nanos(), 10'000'000);
  EXPECT_EQ(t1 - Duration::millis(10), t0);
  EXPECT_LT(t0, t1);
  EXPECT_DOUBLE_EQ(t1.to_ms(), 10.0);
}

TEST(TimePointTest, AtConstructor) {
  const auto t = TimePoint::at(Duration::ms(2.5));
  EXPECT_DOUBLE_EQ(t.since_epoch().to_ms(), 2.5);
}

}  // namespace
}  // namespace spms::sim
