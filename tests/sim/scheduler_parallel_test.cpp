#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <random>
#include <utility>
#include <vector>

#include "sim/random.hpp"
#include "sim/worker_pool.hpp"

/// \file scheduler_parallel_test.cpp
/// The parallel dispatch determinism contract, pinned at the scheduler
/// level: run_parallel() must produce the same observable behaviour as
/// run() — the same committed order of run_serial() closures, the same seq
/// numbers (and therefore firing order of children), the same RNG draw
/// sequence for backoff slots, the same final clock and counters — at any
/// worker count, on any mix of global/spatial/local footprints, under
/// cancellation traffic into batches and into the heap.
///
/// Observable order is recorded via run_serial (immediate when sequential,
/// canonical-commit order when parallel): raw callback interleaving across
/// disjoint groups is intentionally unordered, and everything the
/// simulator's outputs are built from flows through the journaled channels
/// exercised here.  Cancellation targets follow the model-code invariant
/// that a handle to a same-batch event only flows through state both events
/// touch (same group); cross-batch cancels aim strictly into the future.

namespace spms::sim {
namespace {

/// Random same-time-heavy workload over a shared scheduler + rng.  Events
/// record their tag through run_serial, spawn children (plain and backoff)
/// and cancel script events at strictly later timestamps.
struct ScriptEvent {
  int t_ms = 0;
  int tag = 0;
  double x = 0.0;           ///< footprint center (y = 0)
  int fp_kind = 0;          ///< 0 global, 1 spatial, 2 local
  bool spawn_child = false;
  bool spawn_backoff = false;
  std::size_t cancel_target = 0;  ///< index into the script, or kNoCancel
  static constexpr std::size_t kNoCancel = ~std::size_t{0};
};

std::vector<ScriptEvent> make_script(std::uint64_t seed, std::size_t n) {
  std::mt19937_64 gen(seed);
  std::uniform_int_distribution<int> time_die(0, 29);  // ~10 events per timestamp
  std::uniform_real_distribution<double> x_die(0.0, 400.0);
  std::uniform_int_distribution<int> kind_die(0, 19);
  std::uniform_int_distribution<int> coin(0, 3);
  std::vector<ScriptEvent> script;
  script.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    ScriptEvent e;
    e.t_ms = time_die(gen);
    e.tag = static_cast<int>(i);
    e.x = x_die(gen);
    // One global in a batch serializes it, so keep globals rare (1/20) but
    // present — the serialized batches exercise the degenerate path too.
    const int k = kind_die(gen);
    e.fp_kind = k == 0 ? 0 : (k <= 16 ? 1 : 2);
    e.spawn_child = coin(gen) == 0;
    e.spawn_backoff = coin(gen) == 1;
    e.cancel_target = ScriptEvent::kNoCancel;
    script.push_back(e);
  }
  // Wire cancels to targets at strictly later timestamps: same-batch
  // cross-group cancellation is outside the contract (handles to same-time
  // events only flow within a group in real model code).
  std::uniform_int_distribution<std::size_t> pick(0, n - 1);
  for (auto& e : script) {
    if (coin(gen) != 2) continue;
    for (int attempt = 0; attempt < 8; ++attempt) {
      const std::size_t j = pick(gen);
      if (script[j].t_ms > e.t_ms) {
        e.cancel_target = j;
        break;
      }
    }
  }
  return script;
}

struct ScriptOutcome {
  std::vector<int> order;       ///< run_serial-committed tag stream
  std::size_t executed = 0;
  std::uint64_t cancelled = 0;
  TimePoint final_now;
  std::uint64_t rng_probe = 0;  ///< draw after the run: pins the draw count
  Scheduler::ParallelStats stats;
};

/// Executes the script; `threads == 0` means the plain sequential run().
ScriptOutcome run_script(const std::vector<ScriptEvent>& script, std::size_t threads) {
  Scheduler s;
  Rng rng{12345};
  ScriptOutcome out;
  std::vector<EventHandle> handles(script.size());
  for (std::size_t i = 0; i < script.size(); ++i) {
    const ScriptEvent& e = script[i];
    Footprint fp = Footprint::global();
    if (e.fp_kind == 1) fp = Footprint::disc(e.x, 0.0, 5.0);
    if (e.fp_kind == 2) fp = Footprint::local();
    auto body = [&s, &rng, &out, &handles, e] {
      s.run_serial([&out, tag = e.tag] { out.order.push_back(tag); });
      if (e.spawn_child) {
        s.schedule_after(Duration::millis(1),
                         [&s, &out, tag = e.tag] {
                           s.run_serial([&out, tag] { out.order.push_back(tag + 100000); });
                         },
                         Footprint::disc(e.x, 0.0, 5.0));
      }
      if (e.spawn_backoff) {
        s.schedule_backoff(s.now(), Duration::micros(50), Duration::micros(10), 8, rng,
                           [&s, &out, tag = e.tag] {
                             s.run_serial([&out, tag] { out.order.push_back(tag + 200000); });
                           },
                           Footprint::disc(e.x, 0.0, 5.0));
      }
      if (e.cancel_target != ScriptEvent::kNoCancel) {
        s.cancel(handles[e.cancel_target]);
      }
    };
    handles[i] = s.schedule_at(TimePoint::at(Duration::millis(e.t_ms)), std::move(body), fp);
  }
  if (threads == 0) {
    out.executed = s.run();
  } else {
    WorkerPool pool{threads};
    out.executed = s.run_parallel(Scheduler::kDefaultMaxEvents, pool, rng);
  }
  out.cancelled = s.events_cancelled();
  out.final_now = s.now();
  out.rng_probe = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
  out.stats = s.parallel_stats();
  return out;
}

TEST(SchedulerParallel, RandomScriptsMatchSequentialAtAnyWorkerCount) {
  std::uint64_t total_parallel_batches = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto script = make_script(seed, 300);
    const auto seq = run_script(script, 0);
    for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
      const auto par = run_script(script, threads);
      ASSERT_EQ(seq.order, par.order) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(seq.executed, par.executed) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(seq.cancelled, par.cancelled) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(seq.final_now, par.final_now) << "seed " << seed << " threads " << threads;
      EXPECT_EQ(seq.rng_probe, par.rng_probe)
          << "rng draw sequence diverged: seed " << seed << " threads " << threads;
      EXPECT_GT(par.stats.batches, 0u);
      total_parallel_batches += par.stats.parallel_batches;
    }
  }
  // The scripts are same-time-heavy with mostly-spatial footprints; if
  // nothing ever reached the pool this suite would be vacuous.  (Aggregated
  // across seeds: any single batch is serialized by one global member.)
  EXPECT_GT(total_parallel_batches, 0u);
}

TEST(SchedulerParallel, DisjointFootprintBatchRunsOnPool) {
  Scheduler s;
  Rng rng{1};
  int ran = 0;
  for (int i = 0; i < 64; ++i) {
    s.schedule_at(
        TimePoint::at(Duration::millis(5)),
        [&ran, &s] {
          s.run_serial([&ran] { ++ran; });
        },
        Footprint::disc(i * 100.0, 0.0, 1.0));
  }
  WorkerPool pool{4};
  EXPECT_EQ(s.run_parallel(Scheduler::kDefaultMaxEvents, pool, rng), 64u);
  EXPECT_EQ(ran, 64);
  const auto& st = s.parallel_stats();
  EXPECT_EQ(st.batches, 1u);
  EXPECT_EQ(st.parallel_batches, 1u);
  EXPECT_EQ(st.parallel_events, 64u);
  EXPECT_EQ(st.parallel_groups, 64u);
}

TEST(SchedulerParallel, CancelOfLaterSameBatchSameGroupMemberWins) {
  // A (earlier seq) cancels B in the same timestamp batch.  Their discs
  // overlap, so they share a group and execute in seq order on one worker:
  // the cancel must land exactly as it does sequentially — B never runs.
  for (const std::size_t threads : {std::size_t{0}, std::size_t{1}, std::size_t{4}}) {
    Scheduler s;
    Rng rng{1};
    std::vector<int> order;
    EventHandle hb{};
    s.schedule_at(
        TimePoint::at(Duration::millis(1)),
        [&] {
          s.run_serial([&order] { order.push_back(1); });
          s.cancel(hb);
        },
        Footprint::disc(0.0, 0.0, 2.0));
    hb = s.schedule_at(
        TimePoint::at(Duration::millis(1)),
        [&] {
          s.run_serial([&order] { order.push_back(2); });
        },
        Footprint::disc(1.0, 0.0, 2.0));
    // An unrelated disjoint event keeps the batch pool-eligible (>= 2 groups).
    s.schedule_at(
        TimePoint::at(Duration::millis(1)),
        [&] {
          s.run_serial([&order] { order.push_back(3); });
        },
        Footprint::disc(500.0, 0.0, 2.0));
    std::size_t executed = 0;
    if (threads == 0) {
      executed = s.run();
    } else {
      WorkerPool pool{threads};
      executed = s.run_parallel(Scheduler::kDefaultMaxEvents, pool, rng);
    }
    EXPECT_EQ(executed, 2u) << "threads " << threads;
    EXPECT_EQ(order, (std::vector<int>{1, 3})) << "threads " << threads;
    EXPECT_EQ(s.events_cancelled(), 1u) << "threads " << threads;
    EXPECT_EQ(s.pending(), 0u) << "threads " << threads;
  }
}

TEST(SchedulerParallel, CancelFromBatchIntoFutureHeapEvent) {
  // A batch member cancels an event queued for a later time: the cancel is
  // journaled and must remove the heap entry at commit, before the next
  // batch pops.
  for (const std::size_t threads : {std::size_t{0}, std::size_t{4}}) {
    Scheduler s;
    Rng rng{1};
    bool later_ran = false;
    const auto h = s.schedule_at(TimePoint::at(Duration::millis(9)),
                                 [&later_ran] { later_ran = true; });
    for (int i = 0; i < 8; ++i) {
      s.schedule_at(
          TimePoint::at(Duration::millis(1)),
          [&s, h, i] {
            if (i == 3) s.cancel(h);
          },
          Footprint::disc(i * 100.0, 0.0, 1.0));
    }
    std::size_t executed = 0;
    if (threads == 0) {
      executed = s.run();
    } else {
      WorkerPool pool{threads};
      executed = s.run_parallel(Scheduler::kDefaultMaxEvents, pool, rng);
    }
    EXPECT_EQ(executed, 8u) << "threads " << threads;
    EXPECT_FALSE(later_ran) << "threads " << threads;
    EXPECT_EQ(s.events_cancelled(), 1u) << "threads " << threads;
    EXPECT_EQ(s.pending(), 0u) << "threads " << threads;
  }
}

TEST(SchedulerParallel, DeadScheduleStillBurnsSeqAndDraw) {
  // B cancels A's freshly scheduled backoff child before the batch commits.
  // The child's seq number and backoff draw must still be consumed at
  // commit — the sequential run consumed both before the cancel landed — or
  // every later seq/draw shifts.  Probed via the rng state after the run: a
  // later backoff event exposes any skipped draw.
  auto run_case = [](std::size_t threads) {
    Scheduler s;
    Rng rng{7};
    std::vector<int> order;
    EventHandle child{};
    s.schedule_at(
        TimePoint::at(Duration::millis(1)),
        [&] {
          child = s.schedule_backoff(s.now(), Duration::millis(5), Duration::micros(10), 16,
                                     rng,
                                     [&s, &order] {
                                       s.run_serial([&order] { order.push_back(100); });
                                     },
                                     Footprint::disc(0.0, 0.0, 2.0));
        },
        Footprint::disc(0.0, 0.0, 2.0));
    s.schedule_at(
        TimePoint::at(Duration::millis(1)), [&] { s.cancel(child); },
        Footprint::disc(1.0, 0.0, 2.0));  // overlaps A: same group, runs after A
    // Disjoint filler so the batch goes to the pool.
    s.schedule_at(TimePoint::at(Duration::millis(1)), [] {},
                  Footprint::disc(500.0, 0.0, 1.0));
    // A post-batch backoff: its draw index (and firing time) shifts if the
    // dead child's draw was not burned.
    s.schedule_at(TimePoint::at(Duration::millis(2)), [&] {
      s.schedule_backoff(s.now(), Duration::zero(), Duration::micros(10), 16, rng,
                         [&s, &order] {
                           s.run_serial([&order] { order.push_back(200); });
                         },
                         Footprint::global());
    });
    std::size_t executed = 0;
    if (threads == 0) {
      executed = s.run();
    } else {
      WorkerPool pool{threads};
      executed = s.run_parallel(Scheduler::kDefaultMaxEvents, pool, rng);
    }
    EXPECT_EQ(order, (std::vector<int>{200})) << "threads " << threads;
    const auto probe = static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30));
    return std::pair{executed, probe};
  };
  const auto [exec_seq, probe_seq] = run_case(0);
  const auto [exec_par, probe_par] = run_case(4);
  EXPECT_EQ(exec_seq, exec_par);
  EXPECT_EQ(probe_seq, probe_par) << "dead schedule op did not burn its backoff draw";
}

TEST(SchedulerParallel, StaleSpatialEpochDegradesBatchToDirect) {
  // Footprints tagged before invalidate_spatial_footprints() degrade to
  // global at pop — the batch runs direct, never on the pool.
  Scheduler s;
  Rng rng{1};
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(TimePoint::at(Duration::millis(1)), [] {},
                  Footprint::disc(i * 100.0, 0.0, 1.0));
  }
  s.invalidate_spatial_footprints();
  WorkerPool pool{4};
  EXPECT_EQ(s.run_parallel(Scheduler::kDefaultMaxEvents, pool, rng), 16u);
  EXPECT_EQ(s.parallel_stats().parallel_batches, 0u);
  // Tags minted after the bump parallelize again.
  for (int i = 0; i < 16; ++i) {
    s.schedule_at(s.now() + Duration::millis(1), [] {},
                  Footprint::disc(i * 100.0, 0.0, 1.0));
  }
  EXPECT_EQ(s.run_parallel(Scheduler::kDefaultMaxEvents, pool, rng), 16u);
  EXPECT_EQ(s.parallel_stats().parallel_batches, 1u);
}

TEST(SchedulerParallel, GlobalFootprintSerializesWholeBatch) {
  Scheduler s;
  Rng rng{1};
  for (int i = 0; i < 8; ++i) {
    s.schedule_at(TimePoint::at(Duration::millis(1)), [] {},
                  Footprint::disc(i * 100.0, 0.0, 1.0));
  }
  s.schedule_at(TimePoint::at(Duration::millis(1)), [] {});  // kGlobal
  WorkerPool pool{4};
  EXPECT_EQ(s.run_parallel(Scheduler::kDefaultMaxEvents, pool, rng), 9u);
  EXPECT_EQ(s.parallel_stats().batches, 1u);
  EXPECT_EQ(s.parallel_stats().parallel_batches, 0u);
}

}  // namespace
}  // namespace spms::sim
