#include "faults/models.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "faults/controller.hpp"
#include "net/failure.hpp"
#include "net/topology.hpp"
#include "sim/simulation.hpp"

/// Fault-subsystem invariants: ref-counted composition of overlapping
/// faults, permanent deaths beating repairs, model-specific targeting
/// (disks, k-hop neighborhoods, victim fractions), per-model RNG sub-stream
/// independence, and the at-or-after-horizon initiation boundary.

namespace spms::faults {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;
  mac.contention_g_ms = 0.0;
  return mac;
}

struct Harness {
  explicit Harness(std::size_t side = 4, std::uint64_t seed = 9,
                   net::BatteryParams battery = {})
      : sim(seed),
        net(sim, net::RadioTable::mica2(), quiet_mac(), {}, net::grid_deployment(side, 5.0),
            20.0, battery) {}
  sim::Simulation sim;
  net::Network net;
};

bool all_up(const net::Network& net) {
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    if (!net.is_up(net::NodeId{i})) return false;
  }
  return true;
}

std::size_t down_count(const net::Network& net) {
  std::size_t n = 0;
  for (std::uint32_t i = 0; i < net.size(); ++i) {
    if (!net.is_up(net::NodeId{i})) ++n;
  }
  return n;
}

TEST(FaultControllerTest, OverlappingFaultWindowsRepairOnlyWhenAllClose) {
  Harness h;
  FaultController ctrl(h.sim, h.net, {}, net::NodeId{0});
  const net::NodeId id{3};
  ctrl.fail(id);  // model A's window opens
  EXPECT_FALSE(h.net.is_up(id));
  ctrl.fail(id);  // model B's window overlaps
  ctrl.repair(id);
  EXPECT_FALSE(h.net.is_up(id)) << "one window still open";
  ctrl.repair(id);
  EXPECT_TRUE(h.net.is_up(id));
  // The observer saw exactly one down and one up transition.
  EXPECT_EQ(ctrl.stats().node_downs, 1u);
  EXPECT_EQ(ctrl.stats().node_repairs, 1u);
}

TEST(FaultControllerTest, PermanentDeathWinsOverAnyRepair) {
  Harness h;
  FaultController ctrl(h.sim, h.net, {}, net::NodeId{0});
  const net::NodeId id{5};
  ctrl.fail(id);
  ctrl.kill(id);
  ctrl.repair(id);  // the transient window closes, but the node stays dead
  EXPECT_FALSE(h.net.is_up(id));
  EXPECT_TRUE(ctrl.permanently_dead(id));
  EXPECT_EQ(ctrl.stats().permanent_deaths, 1u);
  EXPECT_EQ(ctrl.stats().node_repairs, 0u);
}

TEST(FaultControllerTest, CrashOnlyPlanMatchesLegacyFailureInjectorTimeline) {
  // The refactor contract: a crash-only FaultPlan reproduces
  // net::FailureInjector's event timeline exactly (same stream, same draw
  // order), so every pre-existing failure figure is unchanged.
  const auto horizon = sim::TimePoint::at(sim::Duration::ms(500));

  Harness legacy(4, 9);
  net::FailureInjector injector(legacy.sim, legacy.net, {});
  injector.start(horizon);
  legacy.sim.run();

  Harness modern(4, 9);
  FaultPlan plan;
  plan.crash.enabled = true;
  FaultController ctrl(modern.sim, modern.net, plan, net::NodeId{0});
  ctrl.start(horizon);
  modern.sim.run();

  EXPECT_GT(ctrl.stats().node_downs, 0u);
  EXPECT_EQ(ctrl.stats().node_downs, injector.failures_injected());
  EXPECT_TRUE(all_up(modern.net));
}

TEST(RegionOutageTest, BlackoutsTakeDisksDownTogetherAndRestoreThem) {
  Harness h(5, 21);
  FaultPlan plan;
  plan.region.enabled = true;
  plan.region.mean_time_between_outages = sim::Duration::ms(40.0);
  plan.region.radius_m = 8.0;
  plan.region.repair_min = sim::Duration::ms(10.0);
  plan.region.repair_max = sim::Duration::ms(20.0);
  FaultController ctrl(h.sim, h.net, plan, net::NodeId{0});

  // Sample the largest concurrent-down count right after each blackout.
  ctrl.start(sim::TimePoint::at(sim::Duration::ms(400)));
  h.sim.run();
  ctrl.finalize();

  const auto& stats = ctrl.stats();
  ASSERT_GT(stats.fault_events, 0u);
  // An 8 m disk on the 5 m grid always covers several nodes.
  EXPECT_GT(stats.node_downs, stats.fault_events);
  EXPECT_GT(stats.max_concurrent_down, 1u);
  EXPECT_EQ(stats.node_downs, stats.node_repairs) << "regions must restore completely";
  EXPECT_TRUE(all_up(h.net));
  // Every logged event carries the disk size.
  for (const auto& e : ctrl.observer().events()) {
    EXPECT_EQ(e.model, "region");
    EXPECT_GE(e.nodes_affected, 2u);
  }
}

TEST(BatteryDepletionTest, DepletedBatteriesDiePermanentlyThroughTheController) {
  // Energy-driven deaths: idle drain (1 mW, 1 ms tick) against a 5 uJ budget
  // dries every battery out by t = 5 ms; each depletion must become a
  // permanent fault-layer death, in deterministic order, with a timestamp.
  net::BatteryParams battery;
  battery.finite = true;
  battery.capacity_uj = 5.0;
  battery.idle_drain_mw = 1.0;
  battery.idle_tick = sim::Duration::ms(1.0);
  Harness h(4, 33, battery);  // 16 nodes
  FaultPlan plan;
  plan.battery.enabled = true;
  FaultController ctrl(h.sim, h.net, plan, net::NodeId{0});
  ctrl.start(sim::TimePoint::at(sim::Duration::ms(100)));
  h.net.start_idle_drain(sim::TimePoint::at(sim::Duration::ms(100)));
  h.sim.run();
  ctrl.finalize();

  EXPECT_EQ(ctrl.stats().permanent_deaths, 16u);
  EXPECT_EQ(ctrl.stats().node_repairs, 0u);
  EXPECT_EQ(down_count(h.net), 16u);
  EXPECT_EQ(h.net.depleted_count(), 16u);
  const auto* model = dynamic_cast<BatteryDepletionModel*>(ctrl.model("battery"));
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->deaths().size(), 16u);
  EXPECT_EQ(model->events_injected(), 16u);
  for (const auto v : model->deaths()) {
    EXPECT_FALSE(h.net.is_up(v));
    EXPECT_TRUE(ctrl.permanently_dead(v));
  }
  // All budgets are equal and drain on the same tick, so everyone died at
  // the 5th tick; the lifetime milestones all sit there too.
  EXPECT_DOUBLE_EQ(ctrl.stats().time_to_first_death_ms, 5.0);
  EXPECT_DOUBLE_EQ(ctrl.stats().time_to_10pct_dead_ms, 5.0);
  EXPECT_DOUBLE_EQ(ctrl.stats().half_life_ms, 5.0);
}

TEST(BatteryDepletionTest, InfiniteBatteriesNeverFireTheModel) {
  Harness h;
  FaultPlan plan;
  plan.battery.enabled = true;  // armed, but nothing can deplete
  FaultController ctrl(h.sim, h.net, plan, net::NodeId{0});
  ctrl.start(sim::TimePoint::at(sim::Duration::ms(100)));
  h.net.start_idle_drain(sim::TimePoint::at(sim::Duration::ms(100)));
  h.sim.run();
  EXPECT_EQ(ctrl.stats().permanent_deaths, 0u);
  EXPECT_DOUBLE_EQ(ctrl.stats().time_to_first_death_ms, -1.0);
  EXPECT_DOUBLE_EQ(ctrl.stats().half_life_ms, -1.0);
}

TEST(SinkChurnTest, TargetsExactlyTheKHopNeighborhood) {
  Harness h(5, 11);  // 5x5 grid, pitch 5 m
  FaultPlan plan;
  plan.sink_churn.enabled = true;
  plan.sink_churn.hops = 1;
  const net::NodeId sink{12};  // grid centre
  FaultController ctrl(h.sim, h.net, plan, sink);
  ctrl.start(sim::TimePoint::at(sim::Duration::ms(200)));

  const auto* churn = dynamic_cast<SinkChurnModel*>(ctrl.model("sink-churn"));
  ASSERT_NE(churn, nullptr);
  const auto expected = h.net.neighbors_within(sink, h.net.zone_radius());
  const std::set<std::uint32_t> expected_ids = [&] {
    std::set<std::uint32_t> s;
    for (const auto id : expected) s.insert(id.v);
    return s;
  }();
  ASSERT_FALSE(churn->targets().empty());
  std::set<std::uint32_t> target_ids;
  for (const auto id : churn->targets()) target_ids.insert(id.v);
  EXPECT_EQ(target_ids, expected_ids);
  EXPECT_EQ(target_ids.count(sink.v), 0u) << "the sink itself is never churned";

  h.sim.run();
  ctrl.finalize();
  EXPECT_GT(ctrl.stats().node_downs, 0u);
  EXPECT_TRUE(all_up(h.net));
}

TEST(LinkDegradationTest, RampReachesDropEndAtHorizonAndHealsAfter) {
  Harness h;
  FaultPlan plan;
  plan.link.enabled = true;
  plan.link.drop_start = 0.1;
  plan.link.drop_end = 0.5;
  FaultController ctrl(h.sim, h.net, plan, net::NodeId{0});
  const auto horizon = sim::TimePoint::at(sim::Duration::ms(100));
  ctrl.start(horizon);
  const auto* link = dynamic_cast<LinkDegradationModel*>(ctrl.model("link"));
  ASSERT_NE(link, nullptr);
  EXPECT_DOUBLE_EQ(link->drop_probability(sim::TimePoint::zero()), 0.1);
  EXPECT_DOUBLE_EQ(link->drop_probability(sim::TimePoint::at(sim::Duration::ms(50))), 0.3);
  EXPECT_DOUBLE_EQ(link->drop_probability(horizon), 0.0) << "healed at the horizon";
  EXPECT_DOUBLE_EQ(link->drop_probability(sim::TimePoint::at(sim::Duration::ms(150))), 0.0);
}

/// Event times of one model, from the observer log.
std::vector<sim::TimePoint> model_event_times(const FaultObserver& obs,
                                              std::string_view model) {
  std::vector<sim::TimePoint> times;
  for (const auto& e : obs.events()) {
    if (e.model == model) times.push_back(e.at);
  }
  return times;
}

TEST(StreamIndependenceTest, TogglingOneModelNeverPerturbsAnother) {
  // Each model draws from its own forked sub-stream on its own schedule, so
  // its initiation timeline is a pure function of that stream: region
  // blackout instants with region alone == with crash+battery stacked on
  // top, and vice versa for crash.
  const auto horizon = sim::TimePoint::at(sim::Duration::ms(400));
  const auto run_plan = [&](const FaultPlan& plan, std::string_view model) {
    Harness h(4, 77);
    FaultController ctrl(h.sim, h.net, plan, net::NodeId{0});
    ctrl.start(horizon);
    h.sim.run();
    return model_event_times(ctrl.observer(), model);
  };

  FaultPlan region_only;
  region_only.region.enabled = true;
  region_only.region.mean_time_between_outages = sim::Duration::ms(60.0);

  FaultPlan stacked = region_only;
  stacked.crash.enabled = true;
  stacked.battery.enabled = true;  // energy-driven: drawless, can't perturb anyone

  const auto region_alone = run_plan(region_only, "region");
  const auto region_stacked = run_plan(stacked, "region");
  ASSERT_FALSE(region_alone.empty());
  EXPECT_EQ(region_alone, region_stacked);

  FaultPlan crash_only;
  crash_only.crash.enabled = true;
  const auto crash_alone = run_plan(crash_only, "crash");
  const auto crash_stacked = run_plan(stacked, "crash");
  ASSERT_FALSE(crash_alone.empty());
  EXPECT_EQ(crash_alone, crash_stacked);

  // And the stream ids themselves are pairwise distinct.
  const std::set<std::uint64_t> streams{kCrashStream, kRegionStream, kBatteryStream,
                                        kLinkStream, kSinkChurnStream};
  EXPECT_EQ(streams.size(), 5u);
}

TEST(HorizonBoundaryTest, ModelsNeverInitiateAtOrAfterTheHorizon) {
  // Same construction as the FailureInjector regression, via the plan: aim
  // the horizon exactly at the crash model's first failure instant.
  sim::Simulation probe{13};
  auto preview = probe.rng().fork(kCrashStream);
  CrashRepairParams params;
  const auto first_wait = preview.exponential(params.mean_time_between_failures);

  Harness h(1, 13);
  FaultPlan plan;
  plan.crash.enabled = true;
  FaultController ctrl(h.sim, h.net, plan, net::NodeId{0});
  ctrl.start(h.sim.now() + first_wait);
  h.sim.run();
  EXPECT_EQ(ctrl.stats().node_downs, 0u);
}

}  // namespace
}  // namespace spms::faults
