#include "routing/bellman_ford.hpp"

#include <gtest/gtest.h>

#include <tuple>

#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace spms::routing {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;
  return mac;
}

struct Rig {
  Rig(std::vector<net::Point> pts, double radius, std::uint64_t seed = 1)
      : sim(seed), net(sim, net::RadioTable::mica2(), quiet_mac(), {}, std::move(pts), radius) {}
  sim::Simulation sim;
  net::Network net;
};

TEST(BellmanFordTest, MultiHopBeatsDirectOnALine) {
  // 0 -- 5 m -- 1 -- 5 m -- 2: direct 0->2 needs level 4 (0.05 mW), two
  // 5 m hops need 2 * 0.0125 = 0.025 mW: the relay wins.
  Rig rig({{0, 0}, {5, 0}, {10, 0}}, 12.0);
  RoutingService routing(rig.net);
  const auto route = routing.route(net::NodeId{0}, net::NodeId{2});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, net::NodeId{1});
  EXPECT_DOUBLE_EQ(route->cost, 0.025);
  EXPECT_EQ(route->hops, 2);
  EXPECT_FALSE(routing.is_next_hop_neighbor(net::NodeId{0}, net::NodeId{2}));
  EXPECT_TRUE(routing.is_next_hop_neighbor(net::NodeId{0}, net::NodeId{1}));
}

TEST(BellmanFordTest, SecondBestHasDistinctFirstHop) {
  Rig rig({{0, 0}, {5, 0}, {10, 0}}, 12.0);
  RoutingService routing(rig.net);
  const auto* entry = routing.table(net::NodeId{0}).find(net::NodeId{2});
  ASSERT_NE(entry, nullptr);
  ASSERT_TRUE(entry->best.valid());
  ASSERT_TRUE(entry->second.valid());
  EXPECT_NE(entry->best.next_hop, entry->second.next_hop);
  // The second path is the direct link at the higher level.
  EXPECT_EQ(entry->second.next_hop, net::NodeId{2});
  EXPECT_DOUBLE_EQ(entry->second.cost, 0.05);
  EXPECT_GE(entry->second.cost, entry->best.cost);
}

TEST(BellmanFordTest, AdjacentNodesRouteDirectly) {
  Rig rig({{0, 0}, {5, 0}, {10, 0}}, 12.0);
  RoutingService routing(rig.net);
  const auto route = routing.route(net::NodeId{0}, net::NodeId{1});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, net::NodeId{1});
  EXPECT_EQ(route->hops, 1);
}

TEST(BellmanFordTest, NoEntryOutsideZone) {
  Rig rig({{0, 0}, {5, 0}, {10, 0}, {30, 0}}, 12.0);
  RoutingService routing(rig.net);
  EXPECT_FALSE(routing.route(net::NodeId{0}, net::NodeId{3}).has_value());
  EXPECT_FALSE(routing.next_hop(net::NodeId{0}, net::NodeId{3}).valid());
}

TEST(BellmanFordTest, RoutesAreSymmetricInCost) {
  Rig rig(net::grid_deployment(5, 5.0), 15.0);
  RoutingService routing(rig.net);
  for (std::uint32_t a = 0; a < rig.net.size(); ++a) {
    for (std::uint32_t b = a + 1; b < rig.net.size(); ++b) {
      const auto ab = routing.route(net::NodeId{a}, net::NodeId{b});
      const auto ba = routing.route(net::NodeId{b}, net::NodeId{a});
      ASSERT_EQ(ab.has_value(), ba.has_value());
      if (ab) EXPECT_DOUBLE_EQ(ab->cost, ba->cost) << a << "->" << b;
    }
  }
}

TEST(BellmanFordTest, ConvergesWithStats) {
  Rig rig(net::grid_deployment(6, 5.0), 20.0);
  RoutingService routing(rig.net);
  const auto& stats = routing.last_stats();
  EXPECT_TRUE(stats.converged);
  EXPECT_GE(stats.rounds, 2u);  // at least one relaxation + one quiet round
  EXPECT_EQ(stats.messages, stats.rounds * rig.net.size());
  EXPECT_GT(stats.message_bytes, 0u);
}

TEST(BellmanFordTest, ChargesRoutingEnergy) {
  Rig rig(net::grid_deployment(4, 5.0), 15.0);
  RoutingService routing(rig.net);
  const auto energy = rig.net.energy();
  EXPECT_GT(energy.routing_tx_uj, 0.0);
  EXPECT_GT(energy.routing_rx_uj, 0.0);
  EXPECT_DOUBLE_EQ(energy.protocol_uj(), 0.0);
  EXPECT_NEAR(routing.last_stats().energy_uj, energy.routing_uj(), 1e-9);
}

TEST(BellmanFordTest, EnergyChargingCanBeDisabled) {
  Rig rig(net::grid_deployment(4, 5.0), 15.0);
  DbfParams params;
  params.charge_energy = false;
  RoutingService routing(rig.net, params);
  EXPECT_DOUBLE_EQ(rig.net.energy().routing_uj(), 0.0);
  EXPECT_GT(routing.last_stats().messages, 0u);
}

TEST(BellmanFordTest, RebuildFollowsMobility) {
  Rig rig({{0, 0}, {5, 0}, {10, 0}}, 12.0);
  RoutingService routing(rig.net);
  ASSERT_EQ(routing.next_hop(net::NodeId{0}, net::NodeId{2}), net::NodeId{1});
  // Move the relay away: the direct link becomes the only path.
  rig.net.set_position(net::NodeId{1}, {0, 50});
  routing.rebuild();
  const auto route = routing.route(net::NodeId{0}, net::NodeId{2});
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->next_hop, net::NodeId{2});
  EXPECT_EQ(route->hops, 1);
  // Cumulative stats advanced.
  EXPECT_GT(routing.total_stats().rounds, routing.last_stats().rounds);
}

TEST(BellmanFordTest, ZigZagPathThroughGrid) {
  // Diagonal destination: two 5 m axis hops (0.025) beat one 7.07 m hop
  // (level 4: 0.05).
  Rig rig(net::grid_deployment(2, 5.0), 12.0);
  RoutingService routing(rig.net);
  const auto route = routing.route(net::NodeId{0}, net::NodeId{3});
  ASSERT_TRUE(route.has_value());
  EXPECT_DOUBLE_EQ(route->cost, 0.025);
  EXPECT_EQ(route->hops, 2);
}

// ---------------------------------------------------------------------------
// Property sweep: DBF must agree with the Dijkstra reference on best-path
// costs for every (source, destination) pair, across deployments.
// ---------------------------------------------------------------------------

using SweepParam = std::tuple<std::size_t /*side*/, double /*pitch*/, double /*radius*/>;

class DbfAgreesWithDijkstra : public ::testing::TestWithParam<SweepParam> {};

TEST_P(DbfAgreesWithDijkstra, AllPairs) {
  const auto [side, pitch, radius] = GetParam();
  Rig rig(net::grid_deployment(side, pitch), radius);
  RoutingService routing(rig.net);
  ASSERT_TRUE(routing.last_stats().converged);
  const auto& zones = routing.zones();
  for (std::uint32_t a = 0; a < rig.net.size(); ++a) {
    for (std::uint32_t b = 0; b < rig.net.size(); ++b) {
      if (a == b) continue;
      const auto dbf = routing.route(net::NodeId{a}, net::NodeId{b});
      const auto ref = dijkstra_reference(rig.net, zones, net::NodeId{a}, net::NodeId{b});
      ASSERT_EQ(dbf.has_value(), ref.has_value()) << a << "->" << b;
      if (dbf) {
        // Costs must agree exactly; hop counts can differ between equal-cost
        // paths (the grid is full of ties), so only sanity-check them.
        EXPECT_NEAR(dbf->cost, ref->cost, 1e-12) << a << "->" << b;
        EXPECT_GE(dbf->hops, 1);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(GridSweep, DbfAgreesWithDijkstra,
                         ::testing::Values(SweepParam{3, 5.0, 12.0}, SweepParam{4, 5.0, 20.0},
                                           SweepParam{5, 5.0, 11.0}, SweepParam{4, 7.0, 22.0},
                                           SweepParam{6, 4.0, 15.0}, SweepParam{5, 10.0, 45.0}));

class DbfRandomDeployments : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DbfRandomDeployments, AgreesWithDijkstraAndIsSane) {
  sim::Simulation sim{GetParam()};
  auto pts = net::random_deployment(30, 40.0, sim.rng());
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {}, std::move(pts), 20.0);
  RoutingService routing(net);
  ASSERT_TRUE(routing.last_stats().converged);
  const auto& zones = routing.zones();
  for (std::uint32_t a = 0; a < net.size(); ++a) {
    for (std::uint32_t b = 0; b < net.size(); ++b) {
      if (a == b) continue;
      const auto dbf = routing.route(net::NodeId{a}, net::NodeId{b});
      const auto ref = dijkstra_reference(net, zones, net::NodeId{a}, net::NodeId{b});
      ASSERT_EQ(dbf.has_value(), ref.has_value());
      if (!dbf) continue;
      EXPECT_NEAR(dbf->cost, ref->cost, 1e-12);
      // A route never costs more than the direct link (which always exists
      // inside the zone).
      const auto direct = net.radio().min_power_for(net.distance_between(net::NodeId{a}, net::NodeId{b}));
      ASSERT_TRUE(direct.has_value());
      EXPECT_LE(dbf->cost, *direct + 1e-12);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DbfRandomDeployments, ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace spms::routing
