#include <gtest/gtest.h>

#include <limits>

#include "net/topology.hpp"
#include "routing/bellman_ford.hpp"
#include "sim/simulation.hpp"

/// Property tests for the second-best route semantics: for every
/// (source, destination), the stored second-best entry must equal the best
/// cost achievable through any first hop other than the best route's first
/// hop, computed from the converged distance vectors — the distance-vector
/// definition of "the cost of going to the destination through each of its
/// neighbors" (paper Section 3.2).

namespace spms::routing {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;
  return mac;
}

class SecondBestSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SecondBestSweep, MatchesExhaustiveDistinctFirstHopMinimum) {
  sim::Simulation sim{GetParam()};
  auto pts = net::random_deployment(25, 35.0, sim.rng());
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {}, std::move(pts), 20.0);
  RoutingService routing(net);
  ASSERT_TRUE(routing.last_stats().converged);
  const auto& zones = routing.zones();

  for (std::uint32_t a = 0; a < net.size(); ++a) {
    const net::NodeId from{a};
    for (const net::NodeId dest : zones.zone(from)) {
      const auto* entry = routing.table(from).find(dest);
      ASSERT_NE(entry, nullptr);
      ASSERT_TRUE(entry->best.valid());

      // Exhaustive recomputation: cost through first hop v equals
      // w(from,v) + best_v(dest) where best_v comes from v's own table
      // (v == dest contributes w(from,dest) directly).
      double best = std::numeric_limits<double>::infinity();
      double second = best;
      net::NodeId best_hop;
      for (const net::NodeId v : zones.zone(from)) {
        const auto w = net.radio().min_power_for(net.distance_between(from, v));
        ASSERT_TRUE(w.has_value());
        double via = std::numeric_limits<double>::infinity();
        if (v == dest) {
          via = *w;
        } else if (const auto r = routing.route(v, dest)) {
          via = *w + r->cost;
        }
        if (via < best) {
          second = best;
          best = via;
          best_hop = v;
        } else if (via < second) {
          second = via;
        }
      }

      EXPECT_NEAR(entry->best.cost, best, 1e-12) << from << "->" << dest;
      if (entry->second.valid()) {
        EXPECT_NE(entry->second.next_hop, entry->best.next_hop);
        EXPECT_NEAR(entry->second.cost, second, 1e-12) << from << "->" << dest;
        EXPECT_GE(entry->second.cost, entry->best.cost);
      } else {
        // No alternative first hop exists (isolated pair).
        EXPECT_TRUE(std::isinf(second)) << from << "->" << dest;
      }
      (void)best_hop;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SecondBestSweep, ::testing::Values(11, 12, 13));

TEST(SecondBestTest, PairHasNoSecondRoute) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {}, {{0, 0}, {5, 0}}, 12.0);
  RoutingService routing(net);
  const auto* entry = routing.table(net::NodeId{0}).find(net::NodeId{1});
  ASSERT_NE(entry, nullptr);
  EXPECT_TRUE(entry->best.valid());
  EXPECT_FALSE(entry->second.valid());  // only one possible first hop
}

TEST(SecondBestTest, TriangleHasBothRoutes) {
  // Equilateral-ish triangle: direct link plus a two-hop alternative.
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {},
                   {{0, 0}, {5, 0}, {2.5, 4.33}}, 12.0);
  RoutingService routing(net);
  for (std::uint32_t a = 0; a < 3; ++a) {
    for (std::uint32_t b = 0; b < 3; ++b) {
      if (a == b) continue;
      const auto* entry = routing.table(net::NodeId{a}).find(net::NodeId{b});
      ASSERT_NE(entry, nullptr);
      EXPECT_TRUE(entry->best.valid());
      EXPECT_TRUE(entry->second.valid()) << a << "->" << b;
      EXPECT_NE(entry->best.next_hop, entry->second.next_hop);
    }
  }
}

}  // namespace
}  // namespace spms::routing
