#include "routing/zone.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/simulation.hpp"

namespace spms::routing {
namespace {

net::MacParams quiet_mac() {
  net::MacParams mac;
  mac.num_slots = 1;
  return mac;
}

TEST(ZoneMapTest, LineZones) {
  sim::Simulation sim{1};
  std::vector<net::Point> pts{{0, 0}, {5, 0}, {10, 0}, {15, 0}};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {}, pts, 11.0);
  ZoneMap zones(net);
  EXPECT_EQ(zones.zone(net::NodeId{0}).size(), 2u);  // 5, 10
  EXPECT_EQ(zones.zone(net::NodeId{1}).size(), 3u);  // all others within 11
  EXPECT_TRUE(zones.in_zone(net::NodeId{0}, net::NodeId{2}));
  EXPECT_FALSE(zones.in_zone(net::NodeId{0}, net::NodeId{3}));
}

TEST(ZoneMapTest, MembershipIsSymmetric) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {},
                   net::grid_deployment(5, 7.0), 20.0);
  ZoneMap zones(net);
  for (std::uint32_t a = 0; a < net.size(); ++a) {
    for (std::uint32_t b = 0; b < net.size(); ++b) {
      if (a == b) continue;
      EXPECT_EQ(zones.in_zone(net::NodeId{a}, net::NodeId{b}),
                zones.in_zone(net::NodeId{b}, net::NodeId{a}));
    }
  }
}

TEST(ZoneMapTest, DownNodesRemainMembers) {
  // Zone membership is geometric; transient failures do not rebuild routing.
  sim::Simulation sim{1};
  std::vector<net::Point> pts{{0, 0}, {5, 0}, {10, 0}};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {}, pts, 11.0);
  net.set_up(net::NodeId{1}, false);
  ZoneMap zones(net);
  EXPECT_TRUE(zones.in_zone(net::NodeId{0}, net::NodeId{1}));
}

TEST(ZoneMapTest, MeanZoneSizeMatchesPaperReference) {
  // 169 nodes, 5 m pitch, 20 m radius: interior zones have 48 members
  // (the paper's n1 = 45); edges shrink the mean.
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), quiet_mac(), {},
                   net::grid_deployment(13, 5.0), 20.0);
  ZoneMap zones(net);
  EXPECT_GT(zones.mean_zone_size(), 25.0);
  EXPECT_LT(zones.mean_zone_size(), 48.0);
  // Centre node sees the full 48.
  EXPECT_EQ(zones.zone(net::NodeId{6 * 13 + 6}).size(), 48u);
}

}  // namespace
}  // namespace spms::routing
