/// \file ablation_mac.cpp
/// Ablations of the modelling decisions documented in DESIGN.md:
///   1. carrier sensing (spatial channel reuse) on/off — the mechanism
///      behind SPMS's delay advantage;
///   2. overhearing energy on/off — the paper's analysis omits redundant
///      reception cost; this quantifies what that omission hides;
///   3. flooding baseline — what SPIN's negotiation buys in the first place.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Ablation", "MAC / energy-model choices on the 49-node reference",
                      "not a paper figure; quantifies DESIGN.md decisions");

  auto base = bench::reference_config();
  base.node_count = 49;

  {
    exp::Table t({"carrier sense", "SPMS delay", "SPIN delay", "SPIN/SPMS"});
    for (const bool cs : {true, false}) {
      auto cfg = base;
      cfg.mac.carrier_sense = cs;
      const auto [spms_run, spin_run] = bench::run_pair(cfg);
      t.add_row({cs ? "on" : "off", exp::fmt(spms_run.mean_delay_ms, 2),
                 exp::fmt(spin_run.mean_delay_ms, 2),
                 exp::fmt(spin_run.mean_delay_ms / spms_run.mean_delay_ms, 2)});
    }
    t.print(std::cout);
    std::cout << "(without the shared channel, only airtime and backoff separate the\n"
               " protocols and the delay gap collapses — the paper's delay result is a\n"
               " contention effect, exactly as its Section 6 argues)\n\n";
  }

  {
    exp::Table t({"overhearing cost", "SPMS uJ/pkt", "SPIN uJ/pkt", "SPMS saving"});
    for (const bool oh : {false, true}) {
      auto cfg = base;
      cfg.energy.charge_overhearing = oh;
      const auto [spms_run, spin_run] = bench::run_pair(cfg);
      t.add_row({oh ? "charged" : "omitted", exp::fmt(spms_run.protocol_energy_per_item_uj, 2),
                 exp::fmt(spin_run.protocol_energy_per_item_uj, 2),
                 exp::fmt_pct(1.0 - spms_run.protocol_energy_per_item_uj /
                                        spin_run.protocol_energy_per_item_uj)});
    }
    t.print(std::cout);
    std::cout << "(SPIN's max-power unicasts wake the whole zone; charging overhearers\n"
               " widens SPMS's advantage — the paper notes \"the gain in SPMS will be\n"
               " higher if we take this into account\")\n\n";
  }

  {
    exp::Table t({"rx power (mW)", "SPMS uJ/pkt", "SPIN uJ/pkt", "SPMS saving"});
    for (const double rx : {0.0125, 0.05, 0.2, 0.8}) {
      auto cfg = base;
      cfg.energy.rx_power_mw = rx;
      const auto [spms_run, spin_run] = bench::run_pair(cfg);
      t.add_row({exp::fmt(rx, 4), exp::fmt(spms_run.protocol_energy_per_item_uj, 2),
                 exp::fmt(spin_run.protocol_energy_per_item_uj, 2),
                 exp::fmt_pct(1.0 - spms_run.protocol_energy_per_item_uj /
                                        spin_run.protocol_energy_per_item_uj)});
    }
    t.print(std::cout);
    std::cout << "(Er = Em = 0.0125 mW is the paper's analysis simplification and inflates\n"
               " SPMS's saving; a realistic receive draw compresses it into the paper's\n"
               " simulated 26-43% band — our default is 0.15 mW)\n\n";
  }

  {
    exp::Table t({"protocol", "uJ/pkt", "frames", "delivery"});
    for (const auto kind :
         {exp::ProtocolKind::kSpms, exp::ProtocolKind::kSpin, exp::ProtocolKind::kFlooding}) {
      auto cfg = base;
      cfg.protocol = kind;
      const auto r = exp::run_experiment(cfg);
      t.add_row({r.protocol, exp::fmt(r.protocol_energy_per_item_uj, 2),
                 std::to_string(r.net_counters.tx_total()), exp::fmt_pct(r.delivery_ratio)});
    }
    t.print(std::cout);
    std::cout << "(flooding = the Section 1 baseline: full DATA frames from every node)\n";
  }
  return 0;
}
