/// \file ablation_mac.cpp
/// Ablations of the modelling decisions documented in DESIGN.md:
///   1. carrier sensing (spatial channel reuse) on/off — the mechanism
///      behind SPMS's delay advantage;
///   2. overhearing energy on/off — the paper's analysis omits redundant
///      reception cost; this quantifies what that omission hides;
///   3. flooding baseline — what SPIN's negotiation buys in the first place.
///
/// Thin wrapper over the "ablation_mac" registry scenario (one variant per
/// ablation) + batch engine.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Ablation", "MAC / energy-model choices on the 49-node reference",
                      "not a paper figure; quantifies DESIGN.md decisions");

  const auto spec = bench::make_spec("ablation_mac");
  const auto batch = bench::run_spec(spec);
  const std::size_t n = spec.base.node_count;
  const double r = spec.base.zone_radius_m;
  const auto stats_of = [&](exp::ProtocolKind kind, const std::string& variant) {
    return batch.point(kind, n, r, variant).stats;
  };

  {
    exp::Table t({"carrier sense", "SPMS delay", "SPIN delay", "SPIN/SPMS"});
    for (const bool cs : {true, false}) {
      const std::string variant = cs ? "base" : "no-carrier-sense";
      const auto spms_pt = stats_of(exp::ProtocolKind::kSpms, variant);
      const auto spin_pt = stats_of(exp::ProtocolKind::kSpin, variant);
      t.add_row({cs ? "on" : "off", exp::fmt(spms_pt.mean_delay_ms.mean, 2),
                 exp::fmt(spin_pt.mean_delay_ms.mean, 2),
                 exp::fmt(spin_pt.mean_delay_ms.mean / spms_pt.mean_delay_ms.mean, 2)});
    }
    t.print(std::cout);
    std::cout << "(without the shared channel, only airtime and backoff separate the\n"
               " protocols and the delay gap collapses — the paper's delay result is a\n"
               " contention effect, exactly as its Section 6 argues)\n\n";
  }

  {
    exp::Table t({"overhearing cost", "SPMS uJ/pkt", "SPIN uJ/pkt", "SPMS saving"});
    for (const bool oh : {false, true}) {
      const std::string variant = oh ? "overhearing-charged" : "base";
      const auto spms_pt = stats_of(exp::ProtocolKind::kSpms, variant);
      const auto spin_pt = stats_of(exp::ProtocolKind::kSpin, variant);
      t.add_row({oh ? "charged" : "omitted",
                 exp::fmt(spms_pt.protocol_energy_per_item_uj.mean, 2),
                 exp::fmt(spin_pt.protocol_energy_per_item_uj.mean, 2),
                 exp::fmt_pct(1.0 - spms_pt.protocol_energy_per_item_uj.mean /
                                        spin_pt.protocol_energy_per_item_uj.mean)});
    }
    t.print(std::cout);
    std::cout << "(SPIN's max-power unicasts wake the whole zone; charging overhearers\n"
               " widens SPMS's advantage — the paper notes \"the gain in SPMS will be\n"
               " higher if we take this into account\")\n\n";
  }

  {
    exp::Table t({"rx power (mW)", "SPMS uJ/pkt", "SPIN uJ/pkt", "SPMS saving"});
    for (const auto& v : spec.variants) {
      if (v.name.rfind("rx-", 0) != 0) continue;
      const std::string& variant = v.name;
      const double rx = std::stod(variant.substr(3));
      const auto spms_pt = stats_of(exp::ProtocolKind::kSpms, variant);
      const auto spin_pt = stats_of(exp::ProtocolKind::kSpin, variant);
      t.add_row({exp::fmt(rx, 4), exp::fmt(spms_pt.protocol_energy_per_item_uj.mean, 2),
                 exp::fmt(spin_pt.protocol_energy_per_item_uj.mean, 2),
                 exp::fmt_pct(1.0 - spms_pt.protocol_energy_per_item_uj.mean /
                                        spin_pt.protocol_energy_per_item_uj.mean)});
    }
    t.print(std::cout);
    std::cout << "(Er = Em = 0.0125 mW is the paper's analysis simplification and inflates\n"
               " SPMS's saving; a realistic receive draw compresses it into the paper's\n"
               " simulated 26-43% band — our default is 0.15 mW)\n\n";
  }

  {
    // SPMS/SPIN come from the ablation grid's base cells; flooding is its
    // own one-point scenario so the rx/carrier-sense variants above don't
    // pay for baseline runs nobody reads.
    const auto flood_spec = bench::make_spec("flooding_baseline");
    const auto flood_batch = bench::run_spec(flood_spec);
    exp::Table t({"protocol", "uJ/pkt", "frames", "delivery"});
    const auto add = [&](const exp::PointResult& pt) {
      // Mean frames across seeds, matching the other columns' population.
      double frames = 0;
      for (const auto& run : pt.runs) frames += static_cast<double>(run.net_counters.tx_total());
      frames /= static_cast<double>(pt.runs.size());
      t.add_row({pt.stats.protocol, exp::fmt(pt.stats.protocol_energy_per_item_uj.mean, 2),
                 exp::fmt(frames, 0), exp::fmt_pct(pt.stats.delivery_ratio.mean)});
    };
    add(batch.point(exp::ProtocolKind::kSpms, n, r, "base"));
    add(batch.point(exp::ProtocolKind::kSpin, n, r, "base"));
    add(flood_batch.point(exp::ProtocolKind::kFlooding, n, r));
    t.print(std::cout);
    std::cout << "(flooding = the Section 1 baseline: full DATA frames from every node)\n";
  }
  return 0;
}
