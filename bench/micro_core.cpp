/// \file micro_core.cpp
/// google-benchmark micro-benchmarks for the substrate hot paths: event
/// scheduling, RNG, neighbor scans, DBF rebuilds and a small end-to-end run.

#include <benchmark/benchmark.h>

#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "routing/bellman_ford.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace spms;

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    sim::Scheduler sched;
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule_after(sim::Duration::micros(static_cast<std::int64_t>(i % 997)), [] {});
    }
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000);

void BM_RngExponential(benchmark::State& state) {
  sim::Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1.0));
  }
}
BENCHMARK(BM_RngExponential);

void BM_NeighborScan(benchmark::State& state) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), {}, {},
                   net::grid_deployment(static_cast<std::size_t>(state.range(0)), 5.0), 20.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.neighbors_within(net::NodeId{0}, 20.0));
  }
}
BENCHMARK(BM_NeighborScan)->Arg(7)->Arg(13)->Arg(15);

void BM_DbfRebuild(benchmark::State& state) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), {}, {},
                   net::grid_deployment(static_cast<std::size_t>(state.range(0)), 5.0), 20.0);
  routing::DbfParams params;
  params.charge_energy = false;
  routing::RoutingService routing(net, params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing.rebuild());
  }
}
BENCHMARK(BM_DbfRebuild)->Arg(7)->Arg(13)->Unit(benchmark::kMillisecond);

void BM_DijkstraReference(benchmark::State& state) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), {}, {}, net::grid_deployment(13, 5.0), 20.0);
  routing::ZoneMap zones(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::dijkstra_reference(net, zones, net::NodeId{0}, net::NodeId{84}));
  }
}
BENCHMARK(BM_DijkstraReference);

void BM_EndToEndSmallRun(benchmark::State& state) {
  for (auto _ : state) {
    exp::ExperimentConfig cfg;
    cfg.protocol = state.range(0) == 0 ? exp::ProtocolKind::kSpms : exp::ProtocolKind::kSpin;
    cfg.node_count = 25;
    cfg.zone_radius_m = 15.0;
    cfg.traffic.packets_per_node = 1;
    benchmark::DoNotOptimize(exp::run_experiment(cfg));
  }
}
BENCHMARK(BM_EndToEndSmallRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
