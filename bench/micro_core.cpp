/// \file micro_core.cpp
/// google-benchmark micro-benchmarks for the substrate hot paths: event
/// scheduling (including the cancel-heavy worst case), RNG, neighbor queries
/// under static and churning topologies, DBF rebuilds, a MAC broadcast storm
/// on large grids and a small end-to-end run.
///
/// Two derived metrics matter for the perf trajectory (EXPERIMENTS.md
/// "Performance"):
///  * items_per_second — scheduler events (or queries) per second; the
///    repo-wide events/sec figure the CI perf gate tracks.
///  * allocs_per_op    — global operator-new invocations per iteration,
///    counted by the override below; the pooling/SBO work drives this down.
///
/// Emit a machine-readable snapshot with:
///   bench_micro_core --benchmark_out=BENCH_micro_core.json \
///                    --benchmark_out_format=json

#include <benchmark/benchmark.h>

#include <vector>

// Counting operator new/delete (bench_common.hpp): allocs_per_op feeds the
// CI perf gate alongside items_per_second and peak_rss_mb.
#define SPMS_BENCH_COUNT_ALLOCS
#include "bench_common.hpp"

#include "exp/runner.hpp"
#include "net/topology.hpp"
#include "routing/bellman_ford.hpp"
#include "sim/simulation.hpp"

namespace {

using namespace spms;

/// RAII helper: snapshots the alloc counter around the timed loop and writes
/// the allocs_per_op and peak_rss_mb counters when the benchmark finishes.
/// Peak RSS is process-monotonic, so the number is a high-water mark up to
/// and including this benchmark, not a per-benchmark footprint — it gates
/// "the suite never ballooned", not "this case allocated X".
class AllocCounter {
 public:
  explicit AllocCounter(benchmark::State& state)
      : state_(state), start_(bench::alloc_count()) {}
  ~AllocCounter() {
    const auto total = bench::alloc_count() - start_;
    state_.counters["allocs_per_op"] = benchmark::Counter(
        static_cast<double>(total) / static_cast<double>(state_.iterations()));
    state_.counters["peak_rss_mb"] =
        benchmark::Counter(static_cast<double>(bench::peak_rss_bytes()) / (1024.0 * 1024.0));
  }

 private:
  benchmark::State& state_;
  std::size_t start_;
};

// --- scheduler ---------------------------------------------------------------

void BM_SchedulerScheduleRun(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  // The scheduler outlives the timed loop: each iteration schedules n events
  // and drains them, so construction cost is paid once, not per iteration.
  sim::Scheduler sched;
  AllocCounter allocs{state};
  for (auto _ : state) {
    for (std::size_t i = 0; i < n; ++i) {
      sched.schedule_after(sim::Duration::micros(static_cast<std::int64_t>(i % 997)), [] {});
    }
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerScheduleRun)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_SchedulerCancelHeavy(benchmark::State& state) {
  // The lazy-cancel worst case: half of everything scheduled is cancelled
  // before it can fire.  A lazy scheduler pays hashing on every schedule and
  // drags dead entries through the heap; true removal pays one O(log n)
  // sift per cancel and keeps the heap dense.
  const auto n = static_cast<std::size_t>(state.range(0));
  sim::Scheduler sched;
  std::vector<sim::EventHandle> handles;
  handles.reserve(n);
  AllocCounter allocs{state};
  for (auto _ : state) {
    handles.clear();
    for (std::size_t i = 0; i < n; ++i) {
      handles.push_back(
          sched.schedule_after(sim::Duration::micros(static_cast<std::int64_t>(i % 997)), [] {}));
    }
    for (std::size_t i = 0; i < n; i += 2) sched.cancel(handles[i]);
    benchmark::DoNotOptimize(sched.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_SchedulerCancelHeavy)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ParallelDispatch(benchmark::State& state) {
  // The parallel dispatch loop on its ideal input: waves of same-timestamp
  // events with pairwise-disjoint spatial footprints (every batch splits
  // into singleton groups).  Arg = worker count; Arg 1 measures the
  // sequential baseline through the same Simulation::run entry, so the
  // ratio is the dispatch overhead + scaling, nothing else.  On a 1-core
  // host the >1 arms measure pure overhead — the CI gate only pins Arg 1.
  const auto threads = static_cast<std::size_t>(state.range(0));
  constexpr std::size_t kEventsPerWave = 1024;
  constexpr std::size_t kWaves = 16;
  sim::Simulation sim{7};
  sim.set_threads(threads);
  AllocCounter allocs{state};
  for (auto _ : state) {
    for (std::size_t w = 0; w < kWaves; ++w) {
      const auto at = sim.now() + sim::Duration::ms(static_cast<double>(w + 1));
      for (std::size_t i = 0; i < kEventsPerWave; ++i) {
        // 10 m apart with 1 m discs: no pair conflicts, maximal group count.
        sim.at(at, [] {},
               sim::Footprint::disc(static_cast<double>(i) * 10.0, 0.0, 1.0));
      }
    }
    benchmark::DoNotOptimize(sim.run());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kEventsPerWave * kWaves));
}
BENCHMARK(BM_ParallelDispatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_RngExponential(benchmark::State& state) {
  sim::Rng rng{42};
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.exponential(1.0));
  }
}
BENCHMARK(BM_RngExponential);

// --- topology queries --------------------------------------------------------
// Arg is the grid side: 25/50/100 -> 625/2500/10000 nodes.  The seed bench
// used sides 7..15 (49..225 nodes) whose node arrays fit in L1 and hid the
// O(n) scan cliff entirely.

void BM_NeighborScan(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), {}, {}, net::grid_deployment(side, 5.0), 20.0);
  // Query from a mid-field node so the disc is fully interior.
  const net::NodeId center{static_cast<std::uint32_t>(net.size() / 2 + side / 2)};
  AllocCounter allocs{state};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.neighbors_within(center, 20.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NeighborScan)->Arg(25)->Arg(50)->Arg(100);

void BM_NeighborChurn(benchmark::State& state) {
  // Mobility worst case: every query is preceded by a teleport, so a spatial
  // index must pay its coherence cost (cell move) on every iteration.
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), {}, {}, net::grid_deployment(side, 5.0), 20.0);
  const double field = static_cast<double>(side - 1) * 5.0;
  sim::Rng rng{7};
  AllocCounter allocs{state};
  for (auto _ : state) {
    const net::NodeId mover{static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(net.size()) - 1))};
    net.set_position(mover, net::Point{rng.uniform(0.0, field), rng.uniform(0.0, field)});
    benchmark::DoNotOptimize(net.neighbors_within(mover, 20.0));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_NeighborChurn)->Arg(25)->Arg(50)->Arg(100);

// --- routing -----------------------------------------------------------------

void BM_DbfRebuild(benchmark::State& state) {
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), {}, {}, net::grid_deployment(side, 5.0), 20.0);
  routing::DbfParams params;
  params.charge_energy = false;
  routing::RoutingService routing(net, params);
  AllocCounter allocs{state};
  for (auto _ : state) {
    benchmark::DoNotOptimize(routing.rebuild());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_DbfRebuild)->Arg(13)->Arg(25)->Arg(50)->Unit(benchmark::kMillisecond);

void BM_DijkstraReference(benchmark::State& state) {
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), {}, {}, net::grid_deployment(13, 5.0), 20.0);
  routing::ZoneMap zones(net);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        routing::dijkstra_reference(net, zones, net::NodeId{0}, net::NodeId{84}));
  }
}
BENCHMARK(BM_DijkstraReference);

// --- MAC / delivery on large grids -------------------------------------------

void BM_MacBroadcastGrid(benchmark::State& state) {
  // A broadcast storm through the queued CSMA MAC on a side x side grid:
  // 64 senders spread across the field each broadcast one zone-radius DATA
  // frame, then the run drains to quiescence.  Every frame pays contention
  // counting, carrier-sense disc occupation and disc delivery — the three
  // per-frame topology scans this rewrite moves onto the spatial grid.
  // items_per_second == scheduler events/sec (the repo's headline metric).
  const auto side = static_cast<std::size_t>(state.range(0));
  sim::Simulation sim{1};
  net::Network net(sim, net::RadioTable::mica2(), {}, {}, net::grid_deployment(side, 5.0), 20.0);
  const std::size_t stride = std::max<std::size_t>(1, net.size() / 64);
  std::int64_t events = 0;
  AllocCounter allocs{state};
  for (auto _ : state) {
    for (std::size_t i = 0; i < net.size(); i += stride) {
      net::Packet p;
      p.type = net::PacketType::kData;
      p.size_bytes = 30;
      net.send(net::NodeId{static_cast<std::uint32_t>(i)}, p, 20.0);
    }
    events += static_cast<std::int64_t>(sim.run());
  }
  state.SetItemsProcessed(events);
}
BENCHMARK(BM_MacBroadcastGrid)->Arg(25)->Arg(50)->Arg(100)->Unit(benchmark::kMillisecond);

// --- end to end --------------------------------------------------------------

void run_end_to_end(benchmark::State& state, const exp::TelemetryOptions& telemetry) {
  // Full stack (deployment, DBF, protocol, MAC, collector) on the paper's
  // small grid.  Construction is part of the measured work on purpose: a
  // run_experiment call is the unit the batch engine parallelizes.
  // items_per_second == scheduler events/sec across the run.
  std::int64_t events = 0;
  AllocCounter allocs{state};
  for (auto _ : state) {
    exp::ExperimentConfig cfg;
    cfg.protocol = state.range(0) == 0 ? exp::ProtocolKind::kSpms : exp::ProtocolKind::kSpin;
    cfg.node_count = 25;
    cfg.zone_radius_m = 15.0;
    cfg.traffic.packets_per_node = 1;
    const auto r = exp::run_experiment(cfg, telemetry);
    events += static_cast<std::int64_t>(r.events_executed);
    benchmark::DoNotOptimize(&r);
  }
  state.SetItemsProcessed(events);
}

void BM_EndToEndSmallRun(benchmark::State& state) {
  // The telemetry-disabled path: this is the bench the CI perf gate compares
  // against BENCH_micro_core.json, so it pins the zero-cost-when-off claim.
  run_end_to_end(state, exp::TelemetryOptions{});
}
BENCHMARK(BM_EndToEndSmallRun)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EndToEndSmallRunTelemetry(benchmark::State& state) {
  // Everything on: full metric catalog, per-kind trace counters, 5ms gauge
  // sampling, and a trace ring — the worst-case in-memory telemetry load.
  // Compare events/sec against BM_EndToEndSmallRun for the enabled-path cost.
  exp::TelemetryOptions telemetry;
  telemetry.metrics = true;
  telemetry.sample_every_ms = 5.0;
  telemetry.trace_ring = 4096;
  run_end_to_end(state, telemetry);
}
BENCHMARK(BM_EndToEndSmallRunTelemetry)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

void BM_EndToEndSmallRunSpans(benchmark::State& state) {
  // Telemetry plus causal span assembly: every trace record additionally
  // folds into the per-(item, node) span table.  Compare against
  // BM_EndToEndSmallRunTelemetry for the assembly's incremental cost.
  exp::TelemetryOptions telemetry;
  telemetry.metrics = true;
  telemetry.sample_every_ms = 5.0;
  telemetry.trace_ring = 4096;
  telemetry.spans = true;
  run_end_to_end(state, telemetry);
}
BENCHMARK(BM_EndToEndSmallRunSpans)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
