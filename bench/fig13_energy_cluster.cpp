/// \file fig13_energy_cluster.cpp
/// Figure 13: energy per packet vs transmission radius for cluster-based
/// hierarchical communication, with and without transient failures.
/// Paper: "SPMS consumes 35-59% less energy than SPIN for the failure-free
/// case … in failure cases, the energy expended by the protocols is much
/// more than for the failure-free runs."
///
/// Thin wrapper over the "fig13" registry scenario (variants "clean" and
/// "failures") + batch engine; the Er = Em reception calibration lives in
/// the registry (see EXPERIMENTS.md).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 13", "energy per packet vs radius, cluster-based traffic",
                      "SPMS saves 35-59% failure-free; failures cost both more energy");

  const auto spec = bench::make_spec("fig13");
  const auto batch = bench::run_spec(spec);
  const std::size_t n = spec.base.node_count;

  exp::Table t({"radius (m)", "SPMS", "SPIN", "saving", "F-SPMS", "F-SPIN", "F saving"});
  for (const auto r : spec.zone_radii) {
    const auto& spms_clean = batch.point(exp::ProtocolKind::kSpms, n, r, "clean").stats;
    const auto& spin_clean = batch.point(exp::ProtocolKind::kSpin, n, r, "clean").stats;
    const auto& spms_fail = batch.point(exp::ProtocolKind::kSpms, n, r, "failures").stats;
    const auto& spin_fail = batch.point(exp::ProtocolKind::kSpin, n, r, "failures").stats;
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_clean.protocol_energy_per_item_uj.mean, 3),
               exp::fmt(spin_clean.protocol_energy_per_item_uj.mean, 3),
               exp::fmt_pct(1.0 - spms_clean.protocol_energy_per_item_uj.mean /
                                      spin_clean.protocol_energy_per_item_uj.mean),
               exp::fmt(spms_fail.protocol_energy_per_item_uj.mean, 3),
               exp::fmt(spin_fail.protocol_energy_per_item_uj.mean, 3),
               exp::fmt_pct(1.0 - spms_fail.protocol_energy_per_item_uj.mean /
                                      spin_fail.protocol_energy_per_item_uj.mean)});
  }
  t.print(std::cout);
  std::cout << "\n(energies in uJ/packet; cluster heads always interested, zone bystanders "
               "with p=0.05)\n";
  return 0;
}
