/// \file fig13_energy_cluster.cpp
/// Figure 13: energy per packet vs transmission radius for cluster-based
/// hierarchical communication, with and without transient failures.
/// Paper: "SPMS consumes 35-59% less energy than SPIN for the failure-free
/// case … in failure cases, the energy expended by the protocols is much
/// more than for the failure-free runs."

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 13", "energy per packet vs radius, cluster-based traffic",
                      "SPMS saves 35-59% failure-free; failures cost both more energy");

  exp::Table t({"radius (m)", "SPMS", "SPIN", "saving", "F-SPMS", "F-SPIN", "F saving"});
  for (const double r : {10.0, 15.0, 20.0, 25.0, 30.0}) {
    auto cfg = bench::reference_config();
    cfg.zone_radius_m = r;
    cfg.pattern = exp::TrafficPattern::kCluster;
    // This figure runs under the paper's stated reception assumption
    // Er = Em (0.0125 mW).  With so few deliveries per item, a realistic
    // receive draw would be dominated by the zone-wide ADV reception that
    // both protocols pay identically and would flatten the figure; the
    // paper's 35-59% band is only consistent with Er = Em here (see
    // EXPERIMENTS.md).
    cfg.energy.rx_power_mw = 0.0125;
    cfg.traffic.packets_per_node = 5;
    const auto [spms_clean, spin_clean] = bench::run_pair(cfg);
    bench::scaled_failures(cfg);
    const auto [spms_fail, spin_fail] = bench::run_pair(cfg);
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_clean.protocol_energy_per_item_uj, 3),
               exp::fmt(spin_clean.protocol_energy_per_item_uj, 3),
               exp::fmt_pct(1.0 - spms_clean.protocol_energy_per_item_uj /
                                      spin_clean.protocol_energy_per_item_uj),
               exp::fmt(spms_fail.protocol_energy_per_item_uj, 3),
               exp::fmt(spin_fail.protocol_energy_per_item_uj, 3),
               exp::fmt_pct(1.0 - spms_fail.protocol_energy_per_item_uj /
                                      spin_fail.protocol_energy_per_item_uj)});
  }
  t.print(std::cout);
  std::cout << "\n(energies in uJ/packet; cluster heads always interested, zone bystanders "
               "with p=0.05)\n";
  return 0;
}
