/// \file fig10_delay_vs_nodes_failures.cpp
/// Figure 10: mean delay vs network size with transient node failures
/// (F-SPMS / F-SPIN) next to the failure-free runs.  Paper: "the delay
/// increases in the failure cases … the difference between the failure free
/// and failure cases is not substantial [for small networks] but becomes
/// pronounced as the number of nodes increases."

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 10", "mean delay vs number of nodes, with transient failures",
                      "failures raise delay; effect grows with node count");

  exp::Table t({"nodes", "SPMS", "F-SPMS", "SPIN", "F-SPIN", "F-SPMS dlv", "F-SPIN dlv"});
  for (const std::size_t n : {std::size_t{25}, std::size_t{49}, std::size_t{100},
                              std::size_t{169}}) {
    auto cfg = bench::reference_config();
    cfg.node_count = n;
    const auto [spms_clean, spin_clean] = bench::run_pair(cfg);
    bench::scaled_failures(cfg);
    const auto [spms_fail, spin_fail] = bench::run_pair(cfg);
    t.add_row({std::to_string(n), exp::fmt(spms_clean.mean_delay_ms, 2),
               exp::fmt(spms_fail.mean_delay_ms, 2), exp::fmt(spin_clean.mean_delay_ms, 2),
               exp::fmt(spin_fail.mean_delay_ms, 2), exp::fmt_pct(spms_fail.delivery_ratio),
               exp::fmt_pct(spin_fail.delivery_ratio)});
  }
  t.print(std::cout);
  std::cout << "\n(delays in ms/packet; F-* columns are transient-failure runs with the\n"
               " churn scaled to this MAC's timescale — ~20% downtime duty cycle, a few\n"
               " failures per node while traffic is in flight, as in the paper's regime)\n";
  return 0;
}
