/// \file fig10_delay_vs_nodes_failures.cpp
/// Figure 10: mean delay vs network size with transient node failures
/// (F-SPMS / F-SPIN) next to the failure-free runs.  Paper: "the delay
/// increases in the failure cases … the difference between the failure free
/// and failure cases is not substantial [for small networks] but becomes
/// pronounced as the number of nodes increases."
///
/// Thin wrapper over the "fig10" registry scenario (variants "clean" and
/// "failures") + batch engine.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 10", "mean delay vs number of nodes, with transient failures",
                      "failures raise delay; effect grows with node count");

  const auto spec = bench::make_spec("fig10");
  const auto batch = bench::run_spec(spec);
  const double r = spec.base.zone_radius_m;

  exp::Table t({"nodes", "SPMS", "F-SPMS", "SPIN", "F-SPIN", "F-SPMS dlv", "F-SPIN dlv"});
  for (const auto n : spec.node_counts) {
    const auto& spms_clean = batch.point(exp::ProtocolKind::kSpms, n, r, "clean").stats;
    const auto& spin_clean = batch.point(exp::ProtocolKind::kSpin, n, r, "clean").stats;
    const auto& spms_fail = batch.point(exp::ProtocolKind::kSpms, n, r, "failures").stats;
    const auto& spin_fail = batch.point(exp::ProtocolKind::kSpin, n, r, "failures").stats;
    t.add_row({std::to_string(n), exp::fmt(spms_clean.mean_delay_ms.mean, 2),
               exp::fmt(spms_fail.mean_delay_ms.mean, 2),
               exp::fmt(spin_clean.mean_delay_ms.mean, 2),
               exp::fmt(spin_fail.mean_delay_ms.mean, 2),
               exp::fmt_pct(spms_fail.delivery_ratio.mean),
               exp::fmt_pct(spin_fail.delivery_ratio.mean)});
  }
  t.print(std::cout);
  std::cout << "\n(delays in ms/packet; F-* columns are transient-failure runs with the\n"
               " churn scaled to this MAC's timescale — ~20% downtime duty cycle, a few\n"
               " failures per node while traffic is in flight, as in the paper's regime)\n";
  return 0;
}
