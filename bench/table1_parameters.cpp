/// \file table1_parameters.cpp
/// Table 1 of the paper: the simulation parameters this repository runs
/// with, including the derived deployment constants (zone sizes n1/ns that
/// the analysis section relies on).

#include <iostream>

#include "analysis/delay_model.hpp"
#include "bench_common.hpp"
#include "net/radio.hpp"

int main() {
  using namespace spms;
  const auto cfg = bench::reference_config();

  bench::print_header("Table 1", "simulation parameters",
                      "MICA2 radio table, 0.05 ms/byte, ADV=REQ=2 B, DATA:REQ=20, "
                      "TOutADV=1.0 ms, TOutDAT=2.5 ms, failures exp(50 ms)/U(5,15) ms");

  exp::Table t({"parameter", "value", "source"});
  t.add_row({"packet arrivals (per node)", "Poisson, mean " +
                 exp::fmt(cfg.traffic.mean_interarrival.to_ms(), 2) + " ms", "Table 1"});
  t.add_row({"packets per node", std::to_string(cfg.traffic.packets_per_node),
             "Table 1 uses 10; bench default 2 (SPMS_BENCH_PACKETS overrides)"});
  t.add_row({"slot time", exp::fmt(cfg.mac.slot_time.to_ms(), 2) + " ms", "Table 1"});
  t.add_row({"number of slots", std::to_string(cfg.mac.num_slots), "Table 1"});
  t.add_row({"transmission time", exp::fmt(cfg.mac.t_tx_per_byte.to_ms(), 2) + " ms/byte",
             "Table 1"});
  t.add_row({"processing time", exp::fmt(cfg.mac.t_proc.to_ms(), 2) + " ms", "Table 1"});
  t.add_row({"ADV / REQ size", std::to_string(cfg.proto.adv_bytes) + " B", "Table 1"});
  t.add_row({"DATA size", std::to_string(cfg.proto.data_bytes) + " B (DATA:REQ = 20)",
             "Table 1"});
  t.add_row({"TOutADV", exp::fmt(cfg.proto.tout_adv.to_ms(), 1) + " ms", "Table 1"});
  t.add_row({"TOutDAT", exp::fmt(cfg.proto.tout_dat.to_ms(), 1) + " ms", "Table 1"});
  t.add_row({"failure inter-arrival", "exp, mean " +
                 exp::fmt(cfg.faults.crash.mean_time_between_failures.to_ms(), 0) + " ms",
             "Table 1"});
  t.add_row({"repair time", "U(" + exp::fmt(cfg.faults.crash.repair_min.to_ms(), 0) + ", " +
                 exp::fmt(cfg.faults.crash.repair_max.to_ms(), 0) + ") ms (MTTR 10 ms)",
             "Table 1"});

  const auto radio = net::RadioTable::mica2();
  for (std::size_t i = 0; i < radio.num_levels(); ++i) {
    t.add_row({"power level " + std::to_string(i + 1),
               exp::fmt(radio.level(i).power_mw, 4) + " mW -> " +
                   exp::fmt(radio.level(i).range_m, 2) + " m",
               "Table 1 (MICA2)"});
  }

  t.add_row({"grid pitch", exp::fmt(cfg.grid_pitch_m, 1) + " m", "DESIGN.md Section 6"});
  t.add_row({"zone radius (reference)", exp::fmt(cfg.zone_radius_m, 1) + " m", "Figs. 6/8/10"});
  t.add_row({"n1 (zone size at 20 m)",
             std::to_string(analysis::grid_disc_count(20.0, cfg.grid_pitch_m)),
             "paper's analysis uses 45"});
  t.add_row({"ns (zone size at 5.48 m)",
             std::to_string(analysis::grid_disc_count(5.48, cfg.grid_pitch_m)),
             "paper's analysis uses 5"});
  t.print(std::cout);
  return 0;
}
