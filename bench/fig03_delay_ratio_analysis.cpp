/// \file fig03_delay_ratio_analysis.cpp
/// Figure 3: analytical SPIN/SPMS end-to-end delay ratio as the
/// transmission radius varies, from the Section 4.1 closed forms (eqs. 1-2)
/// with station counts n(r) taken from the uniform grid density.
/// Also prints the paper's spot check: ratio = 2.7865 at n1=45, ns=5.

#include <iostream>

#include "analysis/delay_model.hpp"
#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 3", "SPIN:SPMS delay ratio vs transmission radius (analytical)",
                      "ratio grows with the radius toward the 3-access limit; "
                      "spot value 2.7865 at n1=45, ns=5");

  const analysis::DelayParams p;  // paper's constants
  const double pitch = 5.0;
  const double ns = static_cast<double>(analysis::grid_disc_count(5.48, pitch));

  exp::Table t({"radius (m)", "n1(r)", "SPIN delay (ms)", "SPMS delay (ms)", "ratio"});
  for (double r = 5.0; r <= 30.0; r += 2.5) {
    const double n1 = static_cast<double>(analysis::grid_disc_count(r, pitch));
    if (n1 < 1.0) continue;
    const double spin = analysis::spin_pair_delay(p, n1);
    const double spms = analysis::spms_pair_delay(p, n1, ns);
    t.add_row({exp::fmt(r, 1), exp::fmt(n1, 0), exp::fmt(spin, 3), exp::fmt(spms, 3),
               exp::fmt(spin / spms, 4)});
  }
  t.print(std::cout);

  std::cout << "\nspot check (paper Section 4.1, n1=45, ns=5):\n"
            << "  Delay_SPIN : Delay_SPMS = "
            << exp::fmt(analysis::spin_to_spms_delay_ratio(p, 45.0, 5.0), 4)
            << "   (paper prints 2.7865)\n";

  std::cout << "\nworst-case k-relay bound (eq. 3), n1=45, ns=5:\n";
  exp::Table t2({"k relays", "SPMS worst-case delay (ms)"});
  for (std::size_t k = 1; k <= 6; ++k) {
    t2.add_row({std::to_string(k), exp::fmt(analysis::spms_k_relay_worst_delay(p, k, 45, 5), 3)});
  }
  t2.print(std::cout);
  return 0;
}
