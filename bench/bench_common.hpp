#pragma once

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "exp/runner.hpp"
#include "exp/table.hpp"

/// \file bench_common.hpp
/// Shared scaffolding for the figure-reproduction binaries.
///
/// Each bench prints the series behind one table/figure of the paper.  The
/// reference workload follows Table 1 except where EXPERIMENTS.md documents
/// a calibration: packets_per_node defaults to 2 instead of 10 so the whole
/// bench suite completes in minutes (pass e.g. SPMS_BENCH_PACKETS=10 to run
/// the paper's full load).

namespace spms::bench {

/// Reference experiment configuration (paper Table 1 + DESIGN.md Section 6).
inline exp::ExperimentConfig reference_config() {
  exp::ExperimentConfig cfg;
  cfg.node_count = 169;
  cfg.grid_pitch_m = 5.0;
  cfg.zone_radius_m = 20.0;
  cfg.traffic.packets_per_node = 2;
  cfg.seed = 2004;  // DSN 2004
  if (const char* env = std::getenv("SPMS_BENCH_PACKETS")) {
    cfg.traffic.packets_per_node = std::max(1, std::atoi(env));
  }
  if (const char* env = std::getenv("SPMS_BENCH_SEED")) {
    cfg.seed = static_cast<std::uint64_t>(std::atoll(env));
  }
  return cfg;
}

/// Runs the same config under SPMS and SPIN; returns {spms, spin}.
inline std::pair<exp::RunResult, exp::RunResult> run_pair(exp::ExperimentConfig cfg) {
  cfg.protocol = exp::ProtocolKind::kSpms;
  auto spms_run = exp::run_experiment(cfg);
  cfg.protocol = exp::ProtocolKind::kSpin;
  auto spin_run = exp::run_experiment(cfg);
  return {std::move(spms_run), std::move(spin_run)};
}

/// Transient-failure regime for the failure figures.  Table 1's MTBF of
/// 50 ms belongs to the paper's unqueued simulator whose whole dissemination
/// lasts tens of milliseconds; our shared-channel runs stretch over seconds,
/// so the same *relative* churn (≈20% downtime duty cycle, a couple of
/// failures per node while traffic is in flight) maps to a scaled clock.
inline void scaled_failures(exp::ExperimentConfig& cfg) {
  cfg.inject_failures = true;
  cfg.failure.mean_time_between_failures = sim::Duration::ms(2500.0);
  cfg.failure.repair_min = sim::Duration::ms(250.0);
  cfg.failure.repair_max = sim::Duration::ms(750.0);
  cfg.activity_horizon = sim::Duration::ms(6000.0);
}

/// Standard bench header.
inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_claim) {
  std::cout << "==== " << id << ": " << title << " ====\n";
  std::cout << "paper: " << paper_claim << "\n\n";
}

}  // namespace spms::bench
