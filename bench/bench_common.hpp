#pragma once

#include <atomic>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <new>
#include <string>

#include "exp/batch.hpp"
#include "exp/runner.hpp"
#include "exp/scenario_registry.hpp"
#include "exp/store/result_store.hpp"
#include "exp/table.hpp"
#include "obs/process_stats.hpp"

/// \file bench_common.hpp
/// Shared scaffolding for the figure-reproduction binaries.
///
/// Each bench is a thin wrapper: it pulls its grid from the scenario
/// registry (src/exp/scenario_registry.hpp), executes it on the parallel
/// batch engine, and formats the rows the paper's figure plots.  The
/// reference workload follows Table 1 except where EXPERIMENTS.md documents
/// a calibration: packets_per_node defaults to 2 instead of 10 so the whole
/// bench suite completes in minutes (pass e.g. SPMS_BENCH_PACKETS=10 to run
/// the paper's full load).  SPMS_BENCH_SEEDS=K averages every cell over K
/// seeds; SPMS_JOBS caps the worker pool; SPMS_BENCH_STORE=DIR routes every
/// bench through the persistent result store, so a figure rerun after a
/// calibration tweak only pays for the changed cells.

// --- memory / allocation instrumentation -------------------------------------
//
// Define SPMS_BENCH_COUNT_ALLOCS before including this header to replace the
// global operator new/delete with counting wrappers and make alloc_count()
// live.  The replaceable allocation functions may be defined in exactly one
// translation unit per binary; every bench is a single .cpp, so the macro is
// safe there and the library itself never sees the overrides.

#ifdef SPMS_BENCH_COUNT_ALLOCS

namespace spms::bench::detail {
inline std::atomic<std::size_t> g_alloc_count{0};
}  // namespace spms::bench::detail

void* operator new(std::size_t size) {
  spms::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size) {
  spms::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size)) return p;
  throw std::bad_alloc{};
}
void* operator new(std::size_t size, std::align_val_t align) {
  spms::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t size, std::align_val_t align) {
  spms::bench::detail::g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align), size)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept { std::free(p); }

#endif  // SPMS_BENCH_COUNT_ALLOCS

namespace spms::bench {

/// Global operator-new invocations so far.  Always callable; only counts
/// (instead of pinning 0) in binaries compiled with SPMS_BENCH_COUNT_ALLOCS.
inline std::size_t alloc_count() {
#ifdef SPMS_BENCH_COUNT_ALLOCS
  return detail::g_alloc_count.load(std::memory_order_relaxed);
#else
  return 0;
#endif
}

/// Peak resident set size, in bytes — the shared utility the telemetry
/// gauge `process.peak_rss_bytes` also reads (obs/process_stats.hpp).
inline std::size_t peak_rss_bytes() { return obs::peak_rss_bytes(); }

/// Reference experiment configuration (delegates to the registry).
inline exp::ExperimentConfig reference_config() { return exp::reference_config(); }

/// Transient-failure regime for the failure figures (see the registry).
inline void scaled_failures(exp::ExperimentConfig& cfg) { exp::scaled_failures(cfg); }

/// Looks up a registry scenario (aborts loudly on a typo) and returns its
/// SweepSpec, fanned out to K consecutive seeds when SPMS_BENCH_SEEDS=K is
/// set (cells then report means).  Benches iterate the spec's axes to lay
/// out their tables.
inline exp::SweepSpec make_spec(const std::string& name) {
  const auto* info = exp::find_scenario(name);
  if (info == nullptr) {
    std::cerr << "bench: unknown scenario '" << name << "'\n";
    std::exit(2);
  }
  auto spec = info->make();
  std::size_t count = 1;
  if (const char* env = std::getenv("SPMS_BENCH_SEEDS")) {
    const long v = std::atol(env);
    if (v > 0) count = static_cast<std::size_t>(v);
  }
  spec.use_consecutive_seeds(count);
  return spec;
}

/// The process-wide bench store (opened lazily from SPMS_BENCH_STORE, null
/// when unset).  One instance serves every run_spec call of the binary so
/// back-to-back sweeps share the cache and the append handle.
inline exp::store::ResultStore* bench_store() {
  static const std::unique_ptr<exp::store::ResultStore> store =
      []() -> std::unique_ptr<exp::store::ResultStore> {
    const char* dir = std::getenv("SPMS_BENCH_STORE");
    if (dir == nullptr || *dir == '\0') return nullptr;
    try {
      auto s = std::make_unique<exp::store::ResultStore>(dir);
      s->load();
      if (s->corrupt_lines() > 0) {
        std::cerr << "bench store: skipped " << s->corrupt_lines() << " corrupt lines\n";
      }
      return s;
    } catch (const std::exception& e) {
      std::cerr << "bench: SPMS_BENCH_STORE=" << dir << ": " << e.what() << "\n";
      std::exit(2);
    }
  }();
  return store.get();
}

/// Executes a spec on the batch engine with the default worker pool,
/// resolved against the SPMS_BENCH_STORE cache when one is configured.
inline exp::BatchResult run_spec(const exp::SweepSpec& spec) {
  exp::BatchOptions options;
  options.jobs = 0;  // SPMS_JOBS env or hardware concurrency
  options.store = bench_store();
  auto batch = exp::BatchRunner{options}.run(spec);
  if (options.store != nullptr) {
    std::cerr << spec.name << ": executed " << batch.executed() << " jobs ("
              << batch.cached() << " cached)\n";
  }
  return batch;
}

/// Standard bench header.
inline void print_header(const std::string& id, const std::string& title,
                         const std::string& paper_claim) {
  std::cout << "==== " << id << ": " << title << " ====\n";
  std::cout << "paper: " << paper_claim << "\n\n";
}

}  // namespace spms::bench
