/// \file fig07_energy_vs_radius.cpp
/// Figure 7: dissemination energy per packet vs transmission (zone) radius,
/// 169 nodes, all-to-all, static, failure-free.  Paper: "as the
/// transmission radius increases, SPMS increasingly outperforms SPIN; at
/// low values of the radius the difference is not substantial."

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 7", "energy per packet vs transmission radius (169 nodes)",
                      "gap grows with radius; small at r<=10 m");

  exp::Table t({"radius (m)", "SPMS uJ/pkt", "SPIN uJ/pkt", "SPMS saving", "SPMS dlv",
                "SPIN dlv"});
  for (const double r : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    auto cfg = bench::reference_config();
    cfg.zone_radius_m = r;
    const auto [spms_run, spin_run] = bench::run_pair(cfg);
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_run.protocol_energy_per_item_uj, 2),
               exp::fmt(spin_run.protocol_energy_per_item_uj, 2),
               exp::fmt_pct(1.0 - spms_run.protocol_energy_per_item_uj /
                                      spin_run.protocol_energy_per_item_uj),
               exp::fmt_pct(spms_run.delivery_ratio), exp::fmt_pct(spin_run.delivery_ratio)});
  }
  t.print(std::cout);
  return 0;
}
