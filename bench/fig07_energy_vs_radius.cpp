/// \file fig07_energy_vs_radius.cpp
/// Figure 7: dissemination energy per packet vs transmission (zone) radius,
/// 169 nodes, all-to-all, static, failure-free.  Paper: "as the
/// transmission radius increases, SPMS increasingly outperforms SPIN; at
/// low values of the radius the difference is not substantial."
///
/// Thin wrapper over the "fig07" registry scenario + batch engine.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 7", "energy per packet vs transmission radius (169 nodes)",
                      "gap grows with radius; small at r<=10 m");

  const auto spec = bench::make_spec("fig07");
  const auto batch = bench::run_spec(spec);
  const std::size_t n = spec.base.node_count;

  exp::Table t({"radius (m)", "SPMS uJ/pkt", "SPIN uJ/pkt", "SPMS saving", "SPMS dlv",
                "SPIN dlv"});
  for (const auto r : spec.zone_radii) {
    const auto& spms_pt = batch.point(exp::ProtocolKind::kSpms, n, r).stats;
    const auto& spin_pt = batch.point(exp::ProtocolKind::kSpin, n, r).stats;
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_pt.protocol_energy_per_item_uj.mean, 2),
               exp::fmt(spin_pt.protocol_energy_per_item_uj.mean, 2),
               exp::fmt_pct(1.0 - spms_pt.protocol_energy_per_item_uj.mean /
                                      spin_pt.protocol_energy_per_item_uj.mean),
               exp::fmt_pct(spms_pt.delivery_ratio.mean),
               exp::fmt_pct(spin_pt.delivery_ratio.mean)});
  }
  t.print(std::cout);
  return 0;
}
