/// \file fig12_energy_mobility.cpp
/// Figure 12: energy per packet vs transmission radius with node mobility,
/// all-to-all.  SPMS must rebuild its routing tables (distributed
/// Bellman-Ford) after every movement epoch and the rebuild energy IS
/// included ("The energy expended in SPMS in forming routing tables is
/// included in the energy measurement").  Paper: SPMS still wins, but the
/// savings shrink to 5-21%.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 12", "energy per packet vs radius, mobile nodes (all-to-all)",
                      "SPMS wins by only 5-21% once DBF reconvergence is paid");

  exp::Table t({"radius (m)", "SPMS uJ/pkt (total)", "SPIN uJ/pkt", "SPMS saving",
                "DBF uJ", "epochs"});
  for (const double r : {10.0, 15.0, 20.0, 25.0}) {
    auto cfg = bench::reference_config();
    cfg.zone_radius_m = r;
    // The paper's full traffic load (10 packets/node): the break-even
    // analysis (bench/breakeven_mobility) shows a full-zone DBF rebuild
    // costs several hundred packets' worth of savings, so the figure only
    // lands in the paper's 5-21% winning band when enough packets flow
    // between reconvergences — exactly the paper's own point.
    cfg.traffic.packets_per_node = 10;
    cfg.mobility = true;
    // One reconvergence mid-run.
    cfg.mobility_params.epoch_interval = sim::Duration::ms(400);
    cfg.mobility_params.move_fraction = 0.05;
    cfg.activity_horizon = sim::Duration::ms(700);
    const auto [spms_run, spin_run] = bench::run_pair(cfg);
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_run.energy_per_item_uj, 2),
               exp::fmt(spin_run.energy_per_item_uj, 2),
               exp::fmt_pct(1.0 - spms_run.energy_per_item_uj / spin_run.energy_per_item_uj),
               exp::fmt(spms_run.energy.routing_uj(), 1),
               std::to_string(spms_run.mobility_epochs)});
  }
  t.print(std::cout);
  std::cout << "\n(SPMS column includes all DBF rebuild energy; SPIN keeps no tables)\n";
  return 0;
}
