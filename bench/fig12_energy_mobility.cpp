/// \file fig12_energy_mobility.cpp
/// Figure 12: energy per packet vs transmission radius with node mobility,
/// all-to-all.  SPMS must rebuild its routing tables (distributed
/// Bellman-Ford) after every movement epoch and the rebuild energy IS
/// included ("The energy expended in SPMS in forming routing tables is
/// included in the energy measurement").  Paper: SPMS still wins, but the
/// savings shrink to 5-21%.
///
/// Thin wrapper over the "fig12" registry scenario + batch engine; the
/// mobility calibration (10 packets/node, one reconvergence mid-run) lives
/// in the registry.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 12", "energy per packet vs radius, mobile nodes (all-to-all)",
                      "SPMS wins by only 5-21% once DBF reconvergence is paid");

  const auto spec = bench::make_spec("fig12");
  const auto batch = bench::run_spec(spec);
  const std::size_t n = spec.base.node_count;

  exp::Table t({"radius (m)", "SPMS uJ/pkt (total)", "SPIN uJ/pkt", "SPMS saving",
                "DBF uJ", "epochs"});
  for (const auto r : spec.zone_radii) {
    const auto& spms_pt = batch.point(exp::ProtocolKind::kSpms, n, r).stats;
    const auto& spin_pt = batch.point(exp::ProtocolKind::kSpin, n, r).stats;
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_pt.energy_per_item_uj.mean, 2),
               exp::fmt(spin_pt.energy_per_item_uj.mean, 2),
               exp::fmt_pct(1.0 - spms_pt.energy_per_item_uj.mean /
                                      spin_pt.energy_per_item_uj.mean),
               exp::fmt(spms_pt.routing_energy_uj.mean, 1),
               exp::fmt(spms_pt.mobility_epochs.mean, 0)});
  }
  t.print(std::cout);
  std::cout << "\n(SPMS column includes all DBF rebuild energy; SPIN keeps no tables)\n";
  return 0;
}
