/// \file scale.cpp
/// The scale-* scenario family as a bench binary: how far the simulator's
/// hot path actually scales.  Runs the registry's scale-{1k,10k,100k}
/// scenarios in ascending size order (add "1m" on the command line — or any
/// subset of {1k,10k,100k,1m} — for the million-node pass) and reports the
/// numbers the SoA/arena work is accountable for:
///
///  * events/sec     — scheduler events per wall-clock second of simulation;
///  * peak RSS       — process high-water mark after the run (ascending run
///                     order makes each row's peak its own footprint);
///  * bytes/node     — peak RSS divided by node count, the per-node memory
///                     figure EXPERIMENTS.md "Scaling" budgets against;
///  * allocs/run     — global operator-new count for the run (counted by the
///                     bench_common.hpp overrides).
///
/// SPMS_BENCH_THREADS="1 2 4 8" adds the intra-run thread-scaling axis:
/// each size is run once per listed worker count (--sim-threads semantics;
/// results are byte-identical at any count, which the bench asserts via the
/// executed-event totals) and every row reports events/sec plus its speedup
/// over that size's threads=1 row.  The default is "1" — one sequential row
/// per size, the historical behaviour — so the CI scale-smoke wall budget is
/// unaffected.  Thread-axis runs bypass the result store: rows would
/// otherwise be cache hits (the thread count never enters the config key)
/// and the timings meaningless.
///
/// Wired through the shared store/rollup plumbing like every other bench:
/// SPMS_BENCH_STORE=DIR caches results by config key (wall-clock and RSS are
/// then meaningless for cached rows — the `cached` column says so) and
/// SPMS_BENCH_ROLLUP=PREFIX writes one PREFIX-<scenario>.jsonl metrics
/// rollup sidecar per scenario.

#include <chrono>
#include <cstddef>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#define SPMS_BENCH_COUNT_ALLOCS
#include "bench_common.hpp"

namespace {

std::vector<std::size_t> thread_axis() {
  std::vector<std::size_t> out;
  if (const char* env = std::getenv("SPMS_BENCH_THREADS")) {
    std::string spec{env};
    for (char& c : spec) {
      if (c == ',') c = ' ';
    }
    std::istringstream in{spec};
    std::size_t v = 0;
    while (in >> v) {
      if (v > 0) out.push_back(v);
    }
  }
  if (out.empty()) out.push_back(1);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spms;

  std::vector<std::string> sizes;
  for (int i = 1; i < argc; ++i) sizes.emplace_back(argv[i]);
  if (sizes.empty()) sizes = {"1k", "10k", "100k"};

  const std::vector<std::size_t> threads = thread_axis();
  const bool thread_sweep = threads.size() > 1 || threads[0] != 1;

  bench::print_header("scale", "events/sec, peak RSS and bytes-per-node vs network size",
                      "throughput harness, not a paper figure (EXPERIMENTS.md \"Scaling\")");

  exp::Table t({"scenario", "nodes", "threads", "events", "wall s", "events/s", "speedup",
                "peak RSS MB", "bytes/node", "allocs/run", "delivery", "cached"});
  bool determinism_ok = true;
  for (const auto& size : sizes) {
    const auto spec = bench::make_spec("scale-" + size);

    double base_eps = 0.0;       // events/s of this size's threads=1 row
    std::size_t base_events = 0; // executed events at threads=1 (byte-identity proxy)
    for (const std::size_t n_threads : threads) {
      exp::set_sim_threads(n_threads);

      exp::BatchOptions options;
      options.jobs = 1;  // one job per scenario anyway; keep timing honest
      // A thread sweep times the same config repeatedly; the store would
      // turn every row after the first into a cache hit (the thread count
      // deliberately never enters the config key).
      options.store = thread_sweep ? nullptr : bench::bench_store();
      if (const char* prefix = std::getenv("SPMS_BENCH_ROLLUP")) {
        options.rollup_out = std::string{prefix} + "-" + spec.name + ".jsonl";
      }

      const auto allocs_before = bench::alloc_count();
      const auto t0 = std::chrono::steady_clock::now();
      const auto batch = exp::BatchRunner{options}.run(spec);
      const auto t1 = std::chrono::steady_clock::now();
      const auto allocs = bench::alloc_count() - allocs_before;

      const double wall_s = std::chrono::duration<double>(t1 - t0).count();
      std::size_t events = 0;
      double delivery = 0.0;
      for (const auto& r : batch.runs()) {
        events += r.events_executed;
        delivery = r.delivery_ratio;
      }
      const double eps = static_cast<double>(events) / wall_s;
      if (n_threads == threads.front()) {
        base_eps = eps;
        base_events = events;
      } else if (events != base_events) {
        // The determinism contract in one number: a diverging event count
        // means the parallel dispatch changed behaviour, not just speed.
        std::cerr << "scale: " << spec.name << " executed " << events << " events at "
                  << n_threads << " threads vs " << base_events << " at "
                  << threads.front() << " — NOT deterministic\n";
        determinism_ok = false;
      }
      const std::size_t rss = bench::peak_rss_bytes();
      const std::size_t nodes = spec.base.node_count;
      t.add_row({spec.name, std::to_string(nodes), std::to_string(n_threads),
                 std::to_string(events), exp::fmt(wall_s, 2), exp::fmt(eps, 0),
                 base_eps > 0.0 ? exp::fmt(eps / base_eps, 2) : "-",
                 exp::fmt(static_cast<double>(rss) / (1024.0 * 1024.0), 1),
                 exp::fmt(static_cast<double>(rss) / static_cast<double>(nodes), 0),
                 std::to_string(allocs), exp::fmt_pct(delivery),
                 std::to_string(batch.cached())});
    }
  }
  exp::set_sim_threads(0);
  t.print(std::cout);
  return determinism_ok ? 0 : 3;
}
