/// \file scale.cpp
/// The scale-* scenario family as a bench binary: how far the simulator's
/// hot path actually scales.  Runs the registry's scale-{1k,10k,100k}
/// scenarios in ascending size order (add "1m" on the command line — or any
/// subset of {1k,10k,100k,1m} — for the million-node pass) and reports the
/// numbers the SoA/arena work is accountable for:
///
///  * events/sec     — scheduler events per wall-clock second of simulation;
///  * peak RSS       — process high-water mark after the run (ascending run
///                     order makes each row's peak its own footprint);
///  * bytes/node     — peak RSS divided by node count, the per-node memory
///                     figure EXPERIMENTS.md "Scaling" budgets against;
///  * allocs/run     — global operator-new count for the run (counted by the
///                     bench_common.hpp overrides).
///
/// Wired through the shared store/rollup plumbing like every other bench:
/// SPMS_BENCH_STORE=DIR caches results by config key (wall-clock and RSS are
/// then meaningless for cached rows — the `cached` column says so) and
/// SPMS_BENCH_ROLLUP=PREFIX writes one PREFIX-<scenario>.jsonl metrics
/// rollup sidecar per scenario.

#include <chrono>
#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#define SPMS_BENCH_COUNT_ALLOCS
#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spms;

  std::vector<std::string> sizes;
  for (int i = 1; i < argc; ++i) sizes.emplace_back(argv[i]);
  if (sizes.empty()) sizes = {"1k", "10k", "100k"};

  bench::print_header("scale", "events/sec, peak RSS and bytes-per-node vs network size",
                      "throughput harness, not a paper figure (EXPERIMENTS.md \"Scaling\")");

  exp::Table t({"scenario", "nodes", "events", "wall s", "events/s", "peak RSS MB",
                "bytes/node", "allocs/run", "delivery", "cached"});
  for (const auto& size : sizes) {
    const auto spec = bench::make_spec("scale-" + size);

    exp::BatchOptions options;
    options.jobs = 1;  // one job per scenario anyway; keep timing honest
    options.store = bench::bench_store();
    if (const char* prefix = std::getenv("SPMS_BENCH_ROLLUP")) {
      options.rollup_out = std::string{prefix} + "-" + spec.name + ".jsonl";
    }

    const auto allocs_before = bench::alloc_count();
    const auto t0 = std::chrono::steady_clock::now();
    const auto batch = exp::BatchRunner{options}.run(spec);
    const auto t1 = std::chrono::steady_clock::now();
    const auto allocs = bench::alloc_count() - allocs_before;

    const double wall_s = std::chrono::duration<double>(t1 - t0).count();
    std::size_t events = 0;
    double delivery = 0.0;
    for (const auto& r : batch.runs()) {
      events += r.events_executed;
      delivery = r.delivery_ratio;
    }
    const std::size_t rss = bench::peak_rss_bytes();
    const std::size_t nodes = spec.base.node_count;
    t.add_row({spec.name, std::to_string(nodes), std::to_string(events),
               exp::fmt(wall_s, 2), exp::fmt(static_cast<double>(events) / wall_s, 0),
               exp::fmt(static_cast<double>(rss) / (1024.0 * 1024.0), 1),
               exp::fmt(static_cast<double>(rss) / static_cast<double>(nodes), 0),
               std::to_string(allocs), exp::fmt_pct(delivery),
               std::to_string(batch.cached())});
  }
  t.print(std::cout);
  return 0;
}
