/// \file breakeven_mobility.cpp
/// Section 5.1.3's break-even analysis: "at least 239.18 packets must be
/// successfully transmitted between two instances of network mobility for
/// SPMS to save energy compared to SPIN."
///
/// We measure all three inputs on the reference deployment — the DBF
/// rebuild energy, and the per-packet dissemination energy of both
/// protocols — and evaluate the same formula.  Thin wrapper over the
/// "mobility_breakeven" registry scenario + batch engine.

#include <iostream>

#include "analysis/energy_model.hpp"
#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Break-even", "packets needed between mobility events (Section 5.1.3)",
                      "paper's calibration: 239.18 packets");

  const auto spec = bench::make_spec("mobility_breakeven");
  const auto batch = bench::run_spec(spec);
  const std::size_t n = spec.base.node_count;

  exp::Table t({"radius (m)", "DBF rebuild uJ", "SPIN uJ/pkt", "SPMS uJ/pkt",
                "gain uJ/pkt", "break-even pkts"});
  for (const auto r : spec.zone_radii) {
    const auto& spms_pt = batch.point(exp::ProtocolKind::kSpms, n, r).stats;
    const auto& spin_pt = batch.point(exp::ProtocolKind::kSpin, n, r).stats;
    // The initial build is the cost of one reconvergence.
    const double dbf_uj = spms_pt.routing_energy_uj.mean;
    const double spin_pkt = spin_pt.protocol_energy_per_item_uj.mean;
    const double spms_pkt = spms_pt.protocol_energy_per_item_uj.mean;
    const double breakeven = analysis::mobility_breakeven_packets(dbf_uj, spin_pkt, spms_pkt);
    t.add_row({exp::fmt(r, 0), exp::fmt(dbf_uj, 1), exp::fmt(spin_pkt, 2),
               exp::fmt(spms_pkt, 2), exp::fmt(spin_pkt - spms_pkt, 2),
               exp::fmt(breakeven, 1)});
  }
  t.print(std::cout);
  std::cout << "\npaper's number at its calibration: 239.18 packets between mobility events.\n"
               "Same order of magnitude is the expected reproduction (the exact value\n"
               "depends on the DBF message sizes and zone population).\n";
  return 0;
}
