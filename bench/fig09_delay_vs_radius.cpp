/// \file fig09_delay_vs_radius.cpp
/// Figure 9: mean end-to-end delay vs transmission radius, 169 nodes,
/// all-to-all, static, failure-free.  Paper: "as the radius increases, the
/// delay drops for both SPIN and SPMS" (fewer zone-by-zone rounds offset
/// the extra contention), with SPMS below SPIN throughout.
///
/// Two MAC regimes are printed (EXPERIMENTS.md discusses the split); both
/// are variants of the "fig09" registry scenario:
///  * "shared" (our default): queueing at the senders makes SPIN's delay
///    *grow* with radius — bigger discs kill spatial reuse — so the SPMS
///    advantage widens;
///  * "round-mac" (paper-style MAC: no queueing, explicit T_csma = G n^2):
///    reproduces the paper's falling-delay-with-radius shape.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 9", "mean delay vs transmission radius (169 nodes)",
                      "delay falls with radius for both; SPMS below SPIN");

  const auto spec = bench::make_spec("fig09");
  const auto batch = bench::run_spec(spec);
  const std::size_t n = spec.base.node_count;

  std::cout << "shared-channel MAC (carrier sensing, spatial reuse):\n";
  exp::Table t({"radius (m)", "SPMS ms/pkt", "SPIN ms/pkt", "SPIN/SPMS"});
  for (const auto r : spec.zone_radii) {
    const auto& spms_pt = batch.point(exp::ProtocolKind::kSpms, n, r, "shared").stats;
    const auto& spin_pt = batch.point(exp::ProtocolKind::kSpin, n, r, "shared").stats;
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_pt.mean_delay_ms.mean, 2),
               exp::fmt(spin_pt.mean_delay_ms.mean, 2),
               exp::fmt(spin_pt.mean_delay_ms.mean / spms_pt.mean_delay_ms.mean, 2)});
  }
  t.print(std::cout);

  std::cout << "\nround-dominated regime (paper-style MAC: no queueing, backoff+airtime\n"
               "only) — isolates the paper's falling-with-radius mechanism, fewer\n"
               "zone-by-zone rounds at larger radii:\n";
  exp::Table t2({"radius (m)", "SPMS ms/pkt", "SPIN ms/pkt"});
  for (const auto r : spec.zone_radii) {
    const auto& spms_pt = batch.point(exp::ProtocolKind::kSpms, n, r, "round-mac").stats;
    const auto& spin_pt = batch.point(exp::ProtocolKind::kSpin, n, r, "round-mac").stats;
    t2.add_row({exp::fmt(r, 0), exp::fmt(spms_pt.mean_delay_ms.mean, 2),
                exp::fmt(spin_pt.mean_delay_ms.mean, 2)});
  }
  t2.print(std::cout);
  std::cout << "\n(the two regimes cannot coexist in one MAC: the paper's Fig. 8 delay gap\n"
               " is a contention/queueing effect, its Fig. 9 falling shape a round-count\n"
               " effect; EXPERIMENTS.md discusses the split)\n";
  return 0;
}
