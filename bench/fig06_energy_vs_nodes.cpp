/// \file fig06_energy_vs_nodes.cpp
/// Figure 6: dissemination energy per packet vs network size, all-to-all,
/// static, failure-free, zone radius 20 m.  Paper: "SPMS saves 26-43% of
/// energy compared to SPIN … the difference increases with increasing
/// sensor field size."  Static figures exclude the one-off DBF build cost
/// (the paper folds it in only for the mobility study).
///
/// Thin wrapper over the "fig06" registry scenario + batch engine.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 6", "energy per packet vs number of nodes (all-to-all, static)",
                      "SPMS saves 26-43%; gap widens with the field");

  const auto spec = bench::make_spec("fig06");
  const auto batch = bench::run_spec(spec);
  const double r = spec.base.zone_radius_m;

  exp::Table t({"nodes", "SPMS uJ/pkt", "SPIN uJ/pkt", "SPMS saving", "SPMS dlv", "SPIN dlv"});
  for (const auto n : spec.node_counts) {
    const auto& spms_pt = batch.point(exp::ProtocolKind::kSpms, n, r).stats;
    const auto& spin_pt = batch.point(exp::ProtocolKind::kSpin, n, r).stats;
    t.add_row({std::to_string(n), exp::fmt(spms_pt.protocol_energy_per_item_uj.mean, 2),
               exp::fmt(spin_pt.protocol_energy_per_item_uj.mean, 2),
               exp::fmt_pct(1.0 - spms_pt.protocol_energy_per_item_uj.mean /
                                      spin_pt.protocol_energy_per_item_uj.mean),
               exp::fmt_pct(spms_pt.delivery_ratio.mean),
               exp::fmt_pct(spin_pt.delivery_ratio.mean)});
  }
  t.print(std::cout);
  return 0;
}
