/// \file fig06_energy_vs_nodes.cpp
/// Figure 6: dissemination energy per packet vs network size, all-to-all,
/// static, failure-free, zone radius 20 m.  Paper: "SPMS saves 26-43% of
/// energy compared to SPIN … the difference increases with increasing
/// sensor field size."  Static figures exclude the one-off DBF build cost
/// (the paper folds it in only for the mobility study).

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 6", "energy per packet vs number of nodes (all-to-all, static)",
                      "SPMS saves 26-43%; gap widens with the field");

  exp::Table t({"nodes", "SPMS uJ/pkt", "SPIN uJ/pkt", "SPMS saving", "SPMS dlv", "SPIN dlv"});
  for (const std::size_t n : {std::size_t{25}, std::size_t{49}, std::size_t{100},
                              std::size_t{169}, std::size_t{225}}) {
    auto cfg = bench::reference_config();
    cfg.node_count = n;
    const auto [spms_run, spin_run] = bench::run_pair(cfg);
    t.add_row({std::to_string(n), exp::fmt(spms_run.protocol_energy_per_item_uj, 2),
               exp::fmt(spin_run.protocol_energy_per_item_uj, 2),
               exp::fmt_pct(1.0 - spms_run.protocol_energy_per_item_uj /
                                      spin_run.protocol_energy_per_item_uj),
               exp::fmt_pct(spms_run.delivery_ratio), exp::fmt_pct(spin_run.delivery_ratio)});
  }
  t.print(std::cout);
  return 0;
}
