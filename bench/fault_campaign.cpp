/// \file fault_campaign.cpp
/// The fault-tolerance campaign: every fault model against the crash-only
/// baseline (scenario "faults-models"), or the stacked worst case across
/// intensities ("faults-intensity" with the x0.5..x4 ladder).
///
/// The paper's resilience claim rests on one stressor — independent
/// per-node crash/repair.  This bench widens the verdict: correlated
/// region blackouts, permanent battery deaths, link-level fades, and
/// sink-neighborhood churn, each with recovery metrics (downtime, outage
/// deliveries, post-repair recovery latency) from the fault observer.
///
/// Run:  ./bench_fault_campaign [faults-models|faults-intensity|faults-smoke]
/// Env:  SPMS_BENCH_SEEDS=K (seeds per cell), SPMS_JOBS (workers),
///       SPMS_BENCH_STORE=DIR (resumable: reruns only pay for new cells).

#include <iostream>
#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spms;

  const std::string scenario = argc > 1 ? argv[1] : "faults-models";
  bench::print_header("Fault campaign", scenario + " (pluggable fault models)",
                      "fault tolerance must hold beyond independent crash/repair");

  const auto spec = bench::make_spec(scenario);
  const auto batch = bench::run_spec(spec);

  exp::Table t({"protocol", "nodes", "variant", "delivery", "delay_ms", "downs",
                "downtime_ms", "outage_dlv", "recovery_ms", "dead"});
  for (const auto& p : batch.points()) {
    const auto& s = p.stats;
    t.add_row({s.protocol, std::to_string(s.nodes), p.variant.empty() ? "-" : p.variant,
               exp::fmt_pct(s.delivery_ratio.mean), exp::fmt(s.mean_delay_ms.mean, 2),
               exp::fmt(s.failures_injected.mean, 1), exp::fmt(s.fault_downtime_ms.mean, 0),
               exp::fmt(s.fault_outage_deliveries.mean, 0),
               exp::fmt(s.fault_recovery_latency_ms.mean, 2),
               exp::fmt(s.fault_permanent_deaths.mean, 1)});
  }
  t.print(std::cout);
  std::cout << "\n(downs = node crash transitions; downtime_ms = node-ms spent down;\n"
               " outage_dlv = deliveries completed while >=1 node was down; recovery_ms =\n"
               " mean time from a repair to that node's next delivery; dead = permanent\n"
               " battery deaths.  Variants are the scaled fault regimes of EXPERIMENTS.md.)\n";
  return 0;
}
