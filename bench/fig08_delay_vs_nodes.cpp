/// \file fig08_delay_vs_nodes.cpp
/// Figure 8: mean end-to-end delay vs network size, all-to-all, static,
/// failure-free, zone radius 20 m.  Paper: "SPMS gets the packet across
/// almost 10 times faster than SPIN. The delay difference … widens with
/// increasing number of nodes."  Absolute values differ from the paper
/// (our MAC models channel occupancy; see EXPERIMENTS.md), the ordering
/// and the widening gap are the reproduced shape.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 8", "mean delay vs number of nodes (all-to-all, static)",
                      "SPMS ~10x faster; gap widens with node count");

  exp::Table t({"nodes", "SPMS ms/pkt", "SPIN ms/pkt", "SPIN/SPMS", "SPMS p95", "SPIN p95"});
  for (const std::size_t n : {std::size_t{25}, std::size_t{49}, std::size_t{100},
                              std::size_t{169}, std::size_t{225}}) {
    auto cfg = bench::reference_config();
    cfg.node_count = n;
    const auto [spms_run, spin_run] = bench::run_pair(cfg);
    t.add_row({std::to_string(n), exp::fmt(spms_run.mean_delay_ms, 2),
               exp::fmt(spin_run.mean_delay_ms, 2),
               exp::fmt(spin_run.mean_delay_ms / spms_run.mean_delay_ms, 2),
               exp::fmt(spms_run.p95_delay_ms, 2), exp::fmt(spin_run.p95_delay_ms, 2)});
  }
  t.print(std::cout);
  return 0;
}
