/// \file fig08_delay_vs_nodes.cpp
/// Figure 8: mean end-to-end delay vs network size, all-to-all, static,
/// failure-free, zone radius 20 m.  Paper: "SPMS gets the packet across
/// almost 10 times faster than SPIN. The delay difference … widens with
/// increasing number of nodes."  Absolute values differ from the paper
/// (our MAC models channel occupancy; see EXPERIMENTS.md), the ordering
/// and the widening gap are the reproduced shape.
///
/// Thin wrapper over the "fig08" registry scenario + batch engine.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 8", "mean delay vs number of nodes (all-to-all, static)",
                      "SPMS ~10x faster; gap widens with node count");

  const auto spec = bench::make_spec("fig08");
  const auto batch = bench::run_spec(spec);
  const double r = spec.base.zone_radius_m;

  exp::Table t({"nodes", "SPMS ms/pkt", "SPIN ms/pkt", "SPIN/SPMS", "SPMS p95", "SPIN p95"});
  for (const auto n : spec.node_counts) {
    const auto& spms_pt = batch.point(exp::ProtocolKind::kSpms, n, r).stats;
    const auto& spin_pt = batch.point(exp::ProtocolKind::kSpin, n, r).stats;
    t.add_row({std::to_string(n), exp::fmt(spms_pt.mean_delay_ms.mean, 2),
               exp::fmt(spin_pt.mean_delay_ms.mean, 2),
               exp::fmt(spin_pt.mean_delay_ms.mean / spms_pt.mean_delay_ms.mean, 2),
               exp::fmt(spms_pt.p95_delay_ms.mean, 2), exp::fmt(spin_pt.p95_delay_ms.mean, 2)});
  }
  t.print(std::cout);
  return 0;
}
