/// \file fig05_energy_ratio_analysis.cpp
/// Figure 5: analytical SPIN/SPMS energy ratio as the transmission radius
/// varies (Section 4.2).  Unit grid, node on every grid point, k = r,
/// energy law d^3.5, f = A/(A+D+R) with D = 32A and R = A.

#include <iostream>

#include "analysis/energy_model.hpp"
#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 5", "SPIN:SPMS energy ratio vs transmission radius (analytical)",
                      "SPMS saves more as the radius grows (text); under the printed "
                      "closed form the ratio peaks once the per-hop max-power ADV "
                      "(k f k^a term) starts to dominate");

  const analysis::EnergyRatioParams p;  // alpha = 3.5, f = 1/34
  exp::Table t({"radius k (grid units)", "E_SPIN : E_SPMS"});
  for (double k = 1.0; k <= 16.0; k += 1.0) {
    t.add_row({exp::fmt(k, 0), exp::fmt(analysis::spin_to_spms_energy_ratio(k, p), 4)});
  }
  t.print(std::cout);

  const double peak = analysis::energy_ratio_peak_k(p);
  std::cout << "\npeak of the closed form: k = " << exp::fmt(peak, 2)
            << ", ratio = " << exp::fmt(analysis::spin_to_spms_energy_ratio(peak, p), 3) << "\n";
  std::cout << "if relays re-advertised at hop power instead of the maximum (dropping the\n"
               "k*f*E1 term), the ratio would grow monotonically as ~k^2.5 — the likely\n"
               "reading behind the paper's 'SPMS does substantially better as the radius\n"
               "increases'; see EXPERIMENTS.md for the discussion.\n";
  return 0;
}
