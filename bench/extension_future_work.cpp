/// \file extension_future_work.cpp
/// Benchmarks the paper's flagged extensions (Sections 3.4 and 6):
///  * relay data caching — "can improve the fault tolerant property";
///  * multiple SCONEs — "for tolerating more than one concurrent failure".
/// Measured on the reference all-to-all workload under transient-failure
/// churn: delivery ratio, delay and energy with each extension toggled.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Extensions", "SPMS future-work features under failure churn",
                      "paper Section 6: relay caching should improve fault tolerance");

  auto base = bench::reference_config();
  base.node_count = 100;
  base.protocol = exp::ProtocolKind::kSpms;
  base.inject_failures = true;
  base.activity_horizon = sim::Duration::ms(2000);

  exp::Table t({"variant", "delivery", "mean delay (ms)", "uJ/pkt", "given up"});
  struct Variant {
    const char* name;
    core::SpmsExtensions ext;
  };
  core::SpmsExtensions caching;
  caching.relay_caching = true;
  core::SpmsExtensions scones2;
  scones2.num_scones = 2;
  core::SpmsExtensions both;
  both.relay_caching = true;
  both.num_scones = 2;
  const Variant variants[] = {
      {"published SPMS", {}},
      {"+ relay caching", caching},
      {"+ 2 SCONEs", scones2},
      {"+ caching + 2 SCONEs", both},
  };
  for (const auto& v : variants) {
    auto cfg = base;
    cfg.spms_ext = v.ext;
    const auto r = exp::run_experiment(cfg);
    t.add_row({v.name, exp::fmt_pct(r.delivery_ratio), exp::fmt(r.mean_delay_ms, 2),
               exp::fmt(r.protocol_energy_per_item_uj, 2), std::to_string(r.given_up)});
  }
  t.print(std::cout);

  std::cout << "\nfailure-free reference (energy cost of caching — every relay now\n"
               "re-advertises, trading ADV energy for robustness):\n";
  exp::Table t2({"variant", "delivery", "uJ/pkt"});
  for (const auto& v : variants) {
    auto cfg = base;
    cfg.inject_failures = false;
    cfg.spms_ext = v.ext;
    const auto r = exp::run_experiment(cfg);
    t2.add_row({v.name, exp::fmt_pct(r.delivery_ratio), exp::fmt(r.protocol_energy_per_item_uj, 2)});
  }
  t2.print(std::cout);
  return 0;
}
