/// \file extension_future_work.cpp
/// Benchmarks the paper's flagged extensions (Sections 3.4 and 6):
///  * relay data caching — "can improve the fault tolerant property";
///  * multiple SCONEs — "for tolerating more than one concurrent failure".
/// Measured on the reference all-to-all workload under transient-failure
/// churn: delivery ratio, delay and energy with each extension toggled.
///
/// Thin wrapper over the "extensions" registry scenario (one variant per
/// toggle, with "-clean" twins for the failure-free reference) + batch
/// engine.

#include <iostream>
#include <string>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Extensions", "SPMS future-work features under failure churn",
                      "paper Section 6: relay caching should improve fault tolerance");

  const auto spec = bench::make_spec("extensions");
  const auto batch = bench::run_spec(spec);
  const std::size_t n = spec.base.node_count;
  const double r = spec.base.zone_radius_m;

  const struct {
    const char* display;
    const char* variant;
  } variants[] = {
      {"published SPMS", "published"},
      {"+ relay caching", "relay-caching"},
      {"+ 2 SCONEs", "scones-2"},
      {"+ caching + 2 SCONEs", "caching+scones-2"},
  };

  exp::Table t({"variant", "delivery", "mean delay (ms)", "uJ/pkt", "given up"});
  for (const auto& v : variants) {
    const auto& pt = batch.point(exp::ProtocolKind::kSpms, n, r, v.variant).stats;
    t.add_row({v.display, exp::fmt_pct(pt.delivery_ratio.mean),
               exp::fmt(pt.mean_delay_ms.mean, 2),
               exp::fmt(pt.protocol_energy_per_item_uj.mean, 2),
               exp::fmt(pt.given_up.mean, 0)});
  }
  t.print(std::cout);

  std::cout << "\nfailure-free reference (energy cost of caching — every relay now\n"
               "re-advertises, trading ADV energy for robustness):\n";
  exp::Table t2({"variant", "delivery", "uJ/pkt"});
  for (const auto& v : variants) {
    const auto& pt =
        batch.point(exp::ProtocolKind::kSpms, n, r, std::string{v.variant} + "-clean").stats;
    t2.add_row({v.display, exp::fmt_pct(pt.delivery_ratio.mean),
                exp::fmt(pt.protocol_energy_per_item_uj.mean, 2)});
  }
  t2.print(std::cout);
  return 0;
}
