/// \file lifetime.cpp
/// The network-lifetime campaign: finite battery budgets turn the paper's
/// energy savings into the metric the energy-aware literature actually
/// ranks protocols by — how long the network lives.
///
/// Scenarios (see the registry / EXPERIMENTS.md):
///   lifetime-capacity  starved/tight/ample/infinite budgets, SPMS vs SPIN
///   lifetime-hetero    battery-health heterogeneity sweep at a fixed budget
///   lifetime-race      SPMS vs SPIN vs flooding on one shared budget
///   lifetime-smoke     16-node CI check (energy-driven deaths fire)
///
/// Run:  ./bench_lifetime [lifetime-capacity|lifetime-hetero|lifetime-race|lifetime-smoke]
/// Env:  SPMS_BENCH_SEEDS=K (seeds per cell), SPMS_JOBS (workers),
///       SPMS_BENCH_STORE=DIR (resumable: reruns only pay for new cells).

#include <iostream>
#include <string>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  using namespace spms;

  const std::string scenario = argc > 1 ? argv[1] : "lifetime-capacity";
  bench::print_header("Network lifetime", scenario + " (energy-coupled batteries)",
                      "energy-aware dissemination should outlive its rivals on one budget");

  const auto spec = bench::make_spec(scenario);
  const auto batch = bench::run_spec(spec);

  exp::Table t({"protocol", "nodes", "variant", "delivery", "dead", "first_death_ms",
                "t10pct_ms", "half_life_ms", "residual_uj", "res_sd", "gini"});
  for (const auto& p : batch.points()) {
    const auto& s = p.stats;
    t.add_row({s.protocol, std::to_string(s.nodes), p.variant.empty() ? "-" : p.variant,
               exp::fmt_pct(s.delivery_ratio.mean), exp::fmt(s.depleted_nodes.mean, 1),
               exp::fmt(s.time_to_first_death_ms.mean, 1),
               exp::fmt(s.time_to_10pct_dead_ms.mean, 1), exp::fmt(s.half_life_ms.mean, 1),
               exp::fmt(s.residual_mean_uj.mean, 1), exp::fmt(s.residual_stddev_uj.mean, 1),
               exp::fmt(s.residual_gini.mean, 4)});
  }
  t.print(std::cout);
  std::cout << "\n(dead = batteries drained (energy-driven permanent deaths);\n"
               " first_death_ms / t10pct_ms / half_life_ms = instants at which the first /\n"
               " 10% / 50% of the fleet died, -1 when never reached; residual_uj = mean\n"
               " charge left per node; gini = inequality of the residuals, 0 = even.\n"
               " Deaths come from actual consumption against the configured budget, not\n"
               " from a configured fraction.)\n";
  return 0;
}
