/// \file fig11_delay_vs_radius_failures.cpp
/// Figure 11: mean delay vs transmission radius under transient node
/// failures, 169 nodes.  Paper: "the delay difference between the failure
/// and the failure free runs for the small radii is small as there are less
/// intermediate hops. As the radius increases there are relay nodes whose
/// failure induces the delay in SPMS."

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 11", "mean delay vs transmission radius, with transient failures",
                      "failure penalty grows with radius (more relays to lose)");

  exp::Table t({"radius (m)", "SPMS", "F-SPMS", "SPIN", "F-SPIN"});
  for (const double r : {5.0, 10.0, 15.0, 20.0, 25.0, 30.0}) {
    auto cfg = bench::reference_config();
    cfg.zone_radius_m = r;
    const auto [spms_clean, spin_clean] = bench::run_pair(cfg);
    bench::scaled_failures(cfg);
    const auto [spms_fail, spin_fail] = bench::run_pair(cfg);
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_clean.mean_delay_ms, 2),
               exp::fmt(spms_fail.mean_delay_ms, 2), exp::fmt(spin_clean.mean_delay_ms, 2),
               exp::fmt(spin_fail.mean_delay_ms, 2)});
  }
  t.print(std::cout);
  return 0;
}
