/// \file fig11_delay_vs_radius_failures.cpp
/// Figure 11: mean delay vs transmission radius under transient node
/// failures, 169 nodes.  Paper: "the delay difference between the failure
/// and the failure free runs for the small radii is small as there are less
/// intermediate hops. As the radius increases there are relay nodes whose
/// failure induces the delay in SPMS."
///
/// Thin wrapper over the "fig11" registry scenario (variants "clean" and
/// "failures") + batch engine.

#include <iostream>

#include "bench_common.hpp"

int main() {
  using namespace spms;
  bench::print_header("Figure 11", "mean delay vs transmission radius, with transient failures",
                      "failure penalty grows with radius (more relays to lose)");

  const auto spec = bench::make_spec("fig11");
  const auto batch = bench::run_spec(spec);
  const std::size_t n = spec.base.node_count;

  exp::Table t({"radius (m)", "SPMS", "F-SPMS", "SPIN", "F-SPIN"});
  for (const auto r : spec.zone_radii) {
    const auto& spms_clean = batch.point(exp::ProtocolKind::kSpms, n, r, "clean").stats;
    const auto& spin_clean = batch.point(exp::ProtocolKind::kSpin, n, r, "clean").stats;
    const auto& spms_fail = batch.point(exp::ProtocolKind::kSpms, n, r, "failures").stats;
    const auto& spin_fail = batch.point(exp::ProtocolKind::kSpin, n, r, "failures").stats;
    t.add_row({exp::fmt(r, 0), exp::fmt(spms_clean.mean_delay_ms.mean, 2),
               exp::fmt(spms_fail.mean_delay_ms.mean, 2),
               exp::fmt(spin_clean.mean_delay_ms.mean, 2),
               exp::fmt(spin_fail.mean_delay_ms.mean, 2)});
  }
  t.print(std::cout);
  return 0;
}
